#include "mqsp/states/states.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

TEST(States, GhzUsesMinimumDimensionLevels) {
    const StateVector ghz = states::ghz({3, 6, 2});
    EXPECT_EQ(ghz.countNonZero(), 2U); // min dim = 2
    const double amp = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(ghz.at({0, 0, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(ghz.at({1, 1, 1}).real(), amp, 1e-12);
    EXPECT_TRUE(ghz.isNormalized(1e-12));
}

TEST(States, GhzOnUniformQutrits) {
    const StateVector ghz = states::ghz({3, 3, 3});
    EXPECT_EQ(ghz.countNonZero(), 3U);
    const double amp = 1.0 / std::sqrt(3.0);
    for (Level k = 0; k < 3; ++k) {
        EXPECT_NEAR(ghz.at({k, k, k}).real(), amp, 1e-12);
    }
}

TEST(States, WStateCountsAllExcitations) {
    // Terms = sum (d_i - 1) = 2 + 5 + 1 = 8 on [3,6,2].
    const StateVector w = states::wState({3, 6, 2});
    EXPECT_EQ(w.countNonZero(), 8U);
    EXPECT_TRUE(w.isNormalized(1e-12));
    const double amp = 1.0 / std::sqrt(8.0);
    EXPECT_NEAR(w.at({2, 0, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(w.at({0, 5, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(w.at({0, 0, 1}).real(), amp, 1e-12);
    EXPECT_NEAR(std::abs(w.at({1, 1, 0})), 0.0, 1e-12); // two excitations
}

TEST(States, WStateOnQubitsIsTextbookW) {
    const StateVector w = states::wState({2, 2, 2});
    EXPECT_EQ(w.countNonZero(), 3U);
    const double amp = 1.0 / std::sqrt(3.0);
    EXPECT_NEAR(w.at({1, 0, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(w.at({0, 1, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(w.at({0, 0, 1}).real(), amp, 1e-12);
}

TEST(States, EmbeddedWStateUsesOnlyLevelOne) {
    const StateVector w = states::embeddedWState({3, 6, 2});
    EXPECT_EQ(w.countNonZero(), 3U); // one term per qudit
    const double amp = 1.0 / std::sqrt(3.0);
    EXPECT_NEAR(w.at({1, 0, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(w.at({0, 1, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(w.at({0, 0, 1}).real(), amp, 1e-12);
    EXPECT_NEAR(std::abs(w.at({2, 0, 0})), 0.0, 1e-12); // level 2 unused
}

TEST(States, RandomIsNormalizedAndDense) {
    Rng rng(5);
    const StateVector state = states::random({3, 6, 2}, rng);
    EXPECT_TRUE(state.isNormalized(1e-10));
    EXPECT_EQ(state.countNonZero(1e-6), 36U); // dense with probability ~1
}

TEST(States, RandomIsDeterministicPerSeed) {
    Rng a(9);
    Rng b(9);
    const StateVector x = states::random({3, 4}, a);
    const StateVector y = states::random({3, 4}, b);
    EXPECT_NEAR(x.fidelityWith(y), 1.0, 1e-12);
}

TEST(States, RandomKindsDiffer) {
    Rng rng(3);
    const StateVector real = states::random({2, 3}, rng, states::RandomKind::RealUniform);
    for (std::uint64_t i = 0; i < real.size(); ++i) {
        EXPECT_NEAR(real[i].imag(), 0.0, 1e-12);
        EXPECT_GE(real[i].real(), 0.0);
    }
    const StateVector phase = states::random({2, 3}, rng, states::RandomKind::PhaseOnly);
    const double mag = 1.0 / std::sqrt(6.0);
    for (std::uint64_t i = 0; i < phase.size(); ++i) {
        EXPECT_NEAR(std::abs(phase[i]), mag, 1e-10);
    }
}

TEST(States, RandomSparseHonorsCount) {
    Rng rng(8);
    const StateVector state = states::randomSparse({3, 6, 2}, 7, rng);
    EXPECT_EQ(state.countNonZero(1e-12), 7U);
    EXPECT_TRUE(state.isNormalized(1e-10));
    EXPECT_THROW((void)states::randomSparse({2, 2}, 5, rng), InvalidArgumentError);
    EXPECT_THROW((void)states::randomSparse({2, 2}, 0, rng), InvalidArgumentError);
}

TEST(States, UniformHasEqualAmplitudes) {
    const StateVector state = states::uniform({3, 2});
    const double amp = 1.0 / std::sqrt(6.0);
    for (std::uint64_t i = 0; i < state.size(); ++i) {
        EXPECT_NEAR(state[i].real(), amp, 1e-12);
    }
}

TEST(States, BasisDelegatesToStateVector) {
    const StateVector state = states::basis({4, 3}, {3, 2});
    EXPECT_EQ(state.countNonZero(), 1U);
    EXPECT_NEAR(state.at({3, 2}).real(), 1.0, 1e-12);
}

TEST(States, CyclicShiftsWrapPerDimension) {
    // Start |0 0> on [3,2] with 2 shifts: {|00>, |11>}.
    const StateVector state = states::cyclic({3, 2}, {0, 0}, 2);
    EXPECT_EQ(state.countNonZero(), 2U);
    const double amp = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(state.at({0, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(state.at({1, 1}).real(), amp, 1e-12);
}

TEST(States, CyclicDeduplicatesCollidingWords) {
    // On [2,2], shift 2 returns to the start: 4 requested shifts yield only
    // 2 distinct words, amplitudes stay uniform.
    const StateVector state = states::cyclic({2, 2}, {0, 1}, 4);
    EXPECT_EQ(state.countNonZero(), 2U);
    EXPECT_TRUE(state.isNormalized(1e-12));
}

TEST(States, CyclicValidatesArguments) {
    EXPECT_THROW((void)states::cyclic({2, 2}, {0}, 1), InvalidArgumentError);
    EXPECT_THROW((void)states::cyclic({2, 2}, {0, 0}, 0), InvalidArgumentError);
}

TEST(States, DickeEnumeratesFixedWeight) {
    // Weight 1 on [2,2,2] is the W state.
    const StateVector dicke = states::dicke({2, 2, 2}, 1);
    EXPECT_NEAR(dicke.fidelityWith(states::wState({2, 2, 2})), 1.0, 1e-12);
    // Weight 2 on [2,2]: only |11>.
    const StateVector top = states::dicke({2, 2}, 2);
    EXPECT_EQ(top.countNonZero(), 1U);
    EXPECT_NEAR(top.at({1, 1}).real(), 1.0, 1e-12);
}

TEST(States, DickeMixedDimensions) {
    // Weight 2 on [3,2]: |2 0> and |1 1>.
    const StateVector dicke = states::dicke({3, 2}, 2);
    EXPECT_EQ(dicke.countNonZero(), 2U);
    const double amp = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(dicke.at({2, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(dicke.at({1, 1}).real(), amp, 1e-12);
}

TEST(States, DickeRejectsImpossibleWeight) {
    EXPECT_THROW((void)states::dicke({2, 2}, 5), InvalidArgumentError);
}

class StatesNormalizationProperty : public ::testing::TestWithParam<Dimensions> {};

TEST_P(StatesNormalizationProperty, AllGeneratorsNormalize) {
    Rng rng(77);
    EXPECT_TRUE(states::ghz(GetParam()).isNormalized(1e-10));
    EXPECT_TRUE(states::wState(GetParam()).isNormalized(1e-10));
    EXPECT_TRUE(states::embeddedWState(GetParam()).isNormalized(1e-10));
    EXPECT_TRUE(states::uniform(GetParam()).isNormalized(1e-10));
    EXPECT_TRUE(states::random(GetParam(), rng).isNormalized(1e-10));
    EXPECT_TRUE(states::dicke(GetParam(), 1).isNormalized(1e-10));
}

INSTANTIATE_TEST_SUITE_P(PaperRegisters, StatesNormalizationProperty,
                         ::testing::Values(Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3},
                                           Dimensions{6, 6, 5, 3, 3},
                                           Dimensions{5, 4, 2, 5, 5, 2},
                                           Dimensions{4, 7, 4, 4, 3, 5}));

} // namespace
} // namespace mqsp
