// Matrix decision diagrams (QMDD-style operator DDs, refs [28]/[31] of the
// paper) — validated against dense matrix algebra on small registers and
// used for DD-native circuit equivalence checking.

#include "mqsp/mdd/matrix_dd.hpp"

#include "mqsp/opt/optimizer.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mqsp {
namespace {

constexpr double kPi = std::numbers::pi;

/// Dense reference: the full-register matrix of a controlled op, built by
/// direct index arithmetic (independent of the simulator and the DD).
DenseMatrix denseOperator(const Dimensions& dims, const Operation& op) {
    const MixedRadix radix(dims);
    const auto total = static_cast<std::size_t>(radix.totalDimension());
    const DenseMatrix local = op.localMatrix(radix.dimensionAt(op.target));
    DenseMatrix m(total);
    for (std::size_t col = 0; col < total; ++col) {
        bool fires = true;
        for (const auto& ctrl : op.controls) {
            if (radix.digitAt(col, ctrl.qudit) != ctrl.level) {
                fires = false;
                break;
            }
        }
        const Level colDigit = radix.digitAt(col, op.target);
        if (!fires) {
            m(col, col) = Complex{1.0, 0.0};
            continue;
        }
        for (Level r = 0; r < radix.dimensionAt(op.target); ++r) {
            if (local(r, colDigit) == Complex{0.0, 0.0}) {
                continue;
            }
            const std::size_t row =
                col + (static_cast<std::size_t>(r) - colDigit) *
                          static_cast<std::size_t>(radix.strideAt(op.target));
            m(row, col) = local(r, colDigit);
        }
    }
    return m;
}

TEST(MatrixDD, IdentityHasOneNodePerLevel) {
    const MatrixDD id = MatrixDD::identity({3, 6, 2});
    EXPECT_EQ(id.nodeCount(), 3U);
    EXPECT_TRUE(id.toDenseMatrix().approxEquals(DenseMatrix::identity(36), 1e-12));
}

TEST(MatrixDD, SingleUncontrolledGate) {
    const Dimensions dims{3, 2};
    const Operation op = Operation::givens(0, 0, 2, 1.1, 0.4);
    const MatrixDD dd = MatrixDD::fromOperation(dims, op);
    EXPECT_TRUE(dd.toDenseMatrix().approxEquals(denseOperator(dims, op), 1e-10));
}

TEST(MatrixDD, ControlledGateControlAboveTarget) {
    const Dimensions dims{3, 2};
    const Operation op = Operation::givens(1, 0, 1, 0.9, -0.3, {{0, 2}});
    const MatrixDD dd = MatrixDD::fromOperation(dims, op);
    EXPECT_TRUE(dd.toDenseMatrix().approxEquals(denseOperator(dims, op), 1e-10));
}

TEST(MatrixDD, ControlledGateControlBelowTarget) {
    // The delta*I + (U - delta)*P construction.
    const Dimensions dims{3, 2};
    const Operation op = Operation::givens(0, 0, 1, 1.3, 0.7, {{1, 1}});
    const MatrixDD dd = MatrixDD::fromOperation(dims, op);
    EXPECT_TRUE(dd.toDenseMatrix().approxEquals(denseOperator(dims, op), 1e-10));
}

TEST(MatrixDD, ControlsOnBothSidesOfTheTarget) {
    const Dimensions dims{2, 3, 2};
    const Operation op = Operation::givens(1, 0, 2, 0.7, 0.1, {{0, 1}, {2, 1}});
    const MatrixDD dd = MatrixDD::fromOperation(dims, op);
    EXPECT_TRUE(dd.toDenseMatrix().approxEquals(denseOperator(dims, op), 1e-10));
}

TEST(MatrixDD, AllGateKindsAgainstDense) {
    const Dimensions dims{4, 3};
    const std::vector<Operation> ops = {
        Operation::hadamard(0), Operation::shift(0, 3, {{1, 2}}),
        Operation::levelSwap(0, 1, 3), Operation::phase(1, 0, 2, 0.8, {{0, 2}}),
        Operation::givens(1, 1, 2, 2.1, -1.0)};
    for (const auto& op : ops) {
        const MatrixDD dd = MatrixDD::fromOperation(dims, op);
        EXPECT_TRUE(dd.toDenseMatrix().approxEquals(denseOperator(dims, op), 1e-10))
            << op.toString();
    }
}

TEST(MatrixDD, MultiplyMatchesDenseProduct) {
    const Dimensions dims{3, 2};
    const Operation a = Operation::givens(0, 0, 1, 0.8, 0.2);
    const Operation b = Operation::givens(1, 0, 1, 1.4, -0.5, {{0, 1}});
    const MatrixDD da = MatrixDD::fromOperation(dims, a);
    const MatrixDD db = MatrixDD::fromOperation(dims, b);
    const DenseMatrix dense =
        denseOperator(dims, a).multiply(denseOperator(dims, b));
    EXPECT_TRUE(da.multiply(db).toDenseMatrix().approxEquals(dense, 1e-10));
}

TEST(MatrixDD, FromCircuitComposesInApplicationOrder) {
    const Dimensions dims{3, 3};
    Circuit circuit(dims);
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::shift(1, 1, {{0, 1}}));
    circuit.append(Operation::shift(1, 2, {{0, 2}}));
    const MatrixDD dd = MatrixDD::fromCircuit(circuit);
    // Column 0 of the unitary is the prepared GHZ state.
    const StateVector ghz = states::ghz(dims);
    const DenseMatrix dense = dd.toDenseMatrix();
    for (std::uint64_t i = 0; i < ghz.size(); ++i) {
        EXPECT_NEAR(std::abs(dense(static_cast<std::size_t>(i), 0) - ghz[i]), 0.0, 1e-10);
    }
}

TEST(MatrixDD, AdjointMatchesDenseAdjoint) {
    const Dimensions dims{3, 2};
    const Operation op = Operation::givens(0, 1, 2, 1.2, 0.9, {{1, 1}});
    const MatrixDD dd = MatrixDD::fromOperation(dims, op);
    EXPECT_TRUE(
        dd.adjoint().toDenseMatrix().approxEquals(denseOperator(dims, op).adjoint(),
                                                  1e-10));
}

TEST(MatrixDD, UnitarityViaHilbertSchmidt) {
    // Tr(U^dagger U) = D for any unitary.
    const Dimensions dims{3, 4};
    const MatrixDD dd =
        MatrixDD::fromOperation(dims, Operation::givens(1, 0, 3, 0.7, 0.3, {{0, 2}}));
    EXPECT_NEAR(dd.hilbertSchmidtOverlap(dd).real(), 12.0, 1e-9);
}

TEST(MatrixDD, EquivalenceDetectsEqualityUpToPhase) {
    const Dimensions dims{3, 2};
    Circuit a(dims);
    a.append(Operation::givens(0, 0, 1, 0.6, 0.0));
    a.append(Operation::phase(0, 0, 2, 0.5));
    // Same circuit with an extra global-phase-only difference: conjugating
    // by nothing — here just reorder two commuting ops.
    Circuit b(dims);
    b.append(Operation::givens(1, 0, 1, 0.0, 0.0)); // identity op
    b.append(Operation::givens(0, 0, 1, 0.6, 0.0));
    b.append(Operation::phase(0, 0, 2, 0.5));
    EXPECT_TRUE(MatrixDD::fromCircuit(a).equivalentUpToGlobalPhase(
        MatrixDD::fromCircuit(b)));
}

TEST(MatrixDD, EquivalenceRejectsDifferentUnitaries) {
    const Dimensions dims{3, 2};
    Circuit a(dims);
    a.append(Operation::givens(0, 0, 1, 0.6, 0.0));
    Circuit b(dims);
    b.append(Operation::givens(0, 0, 1, 0.7, 0.0));
    EXPECT_FALSE(MatrixDD::fromCircuit(a).equivalentUpToGlobalPhase(
        MatrixDD::fromCircuit(b)));
}

TEST(MatrixDD, OptimizerPreservesTheUnitaryExactly) {
    // Equivalence checking as a service: the optimizer must preserve the
    // full unitary (not just the action on |0...0>).
    Rng rng(5);
    const StateVector target = states::random({3, 2, 2}, rng);
    auto prep = prepareExact(target);
    const MatrixDD before = MatrixDD::fromCircuit(prep.circuit);
    (void)optimizeCircuit(prep.circuit);
    const MatrixDD after = MatrixDD::fromCircuit(prep.circuit);
    EXPECT_TRUE(before.equivalentUpToGlobalPhase(after, 1e-8));
}

TEST(MatrixDD, TranspilerPreservesTheUnitaryOnTheOriginalRegister) {
    // For 2-controlled ops (no ancillas) the lowered circuit must implement
    // the same unitary on the same register.
    const Dimensions dims{2, 3, 2};
    Circuit circuit(dims);
    circuit.append(Operation::givens(2, 0, 1, 1.234, 0.4, {{0, 1}, {1, 2}}));
    const auto lowered = transpileToTwoQudit(circuit);
    ASSERT_EQ(lowered.numAncillas, 0U);
    const MatrixDD original = MatrixDD::fromCircuit(circuit);
    const MatrixDD loweredDD = MatrixDD::fromCircuit(lowered.circuit);
    EXPECT_TRUE(original.equivalentUpToGlobalPhase(loweredDD, 1e-8));
}

TEST(MatrixDD, GateCompressionOnStructuredCircuits) {
    // A controlled gate's diagram is linear in the register size, not the
    // Hilbert dimension.
    const Dimensions dims{3, 4, 5, 2, 3, 2};
    const Operation op = Operation::givens(5, 0, 1, 1.0, 0.0, {{0, 2}});
    const MatrixDD dd = MatrixDD::fromOperation(dims, op);
    EXPECT_LE(dd.nodeCount(), 2U * dims.size());
}

TEST(MatrixDD, RegistersMustMatch) {
    const MatrixDD a = MatrixDD::identity({2, 2});
    const MatrixDD b = MatrixDD::identity({3});
    EXPECT_THROW((void)a.multiply(b), InvalidArgumentError);
    EXPECT_THROW((void)a.hilbertSchmidtOverlap(b), InvalidArgumentError);
}

class MatrixDDRandomCircuits : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixDDRandomCircuits, FromCircuitMatchesDenseProductChain) {
    Rng rng(GetParam());
    const Dimensions dims{3, 2, 2};
    const MixedRadix radix(dims);
    Circuit circuit(dims);
    DenseMatrix dense = DenseMatrix::identity(12);
    for (int i = 0; i < 12; ++i) {
        const auto target = static_cast<std::size_t>(rng.uniformIndex(3));
        const Dimension dim = radix.dimensionAt(target);
        auto a = static_cast<Level>(rng.uniformIndex(dim));
        auto b = static_cast<Level>(rng.uniformIndex(dim));
        if (a == b) {
            b = (b + 1) % dim;
        }
        std::vector<Control> controls;
        if (rng.uniform01() < 0.5) {
            const auto ctrl = (target + 1 + rng.uniformIndex(2)) % 3;
            controls.push_back(
                {ctrl, static_cast<Level>(rng.uniformIndex(radix.dimensionAt(ctrl)))});
        }
        const Operation op =
            Operation::givens(target, std::min(a, b), std::max(a, b),
                              rng.uniform(-kPi, kPi), rng.uniform(-kPi, kPi), controls);
        circuit.append(op);
        dense = denseOperator(dims, op).multiply(dense);
    }
    const MatrixDD dd = MatrixDD::fromCircuit(circuit);
    EXPECT_TRUE(dd.toDenseMatrix().approxEquals(dense, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixDDRandomCircuits,
                         ::testing::Values(31U, 32U, 33U, 34U, 35U, 36U));

} // namespace
} // namespace mqsp
