#include "mqsp/circuit/qasm.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

namespace mqsp {
namespace {

Circuit sampleCircuit() {
    Circuit circuit({3, 6, 2}, "qasm_sample");
    circuit.append(Operation::phase(0, 0, 1, -0.75));
    circuit.append(Operation::givens(0, 0, 2, 1.25, 0.5));
    circuit.append(Operation::givens(1, 2, 3, 0.33, -1.5, {{0, 2}}));
    circuit.append(Operation::phase(2, 0, 1, 2.0, {{0, 1}, {1, 4}}));
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::shift(1, 3, {{2, 1}}));
    circuit.append(Operation::levelSwap(1, 0, 5));
    return circuit;
}

void expectSameOps(const Circuit& a, const Circuit& b) {
    ASSERT_EQ(a.numOperations(), b.numOperations());
    EXPECT_EQ(a.dimensions(), b.dimensions());
    for (std::size_t i = 0; i < a.numOperations(); ++i) {
        const Operation& x = a[i];
        const Operation& y = b[i];
        EXPECT_EQ(x.kind, y.kind) << "op " << i;
        EXPECT_EQ(x.target, y.target);
        EXPECT_EQ(x.levelA, y.levelA);
        EXPECT_EQ(x.levelB, y.levelB);
        EXPECT_DOUBLE_EQ(x.theta, y.theta);
        EXPECT_DOUBLE_EQ(x.phi, y.phi);
        EXPECT_EQ(x.shiftAmount, y.shiftAmount);
        EXPECT_EQ(x.controls, y.controls);
    }
}

TEST(Qasm, EmitsHeaderRegisterAndGates) {
    const std::string text = toQasm(sampleCircuit());
    EXPECT_NE(text.find("MQSPQASM 1.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3] = [3, 6, 2];"), std::string::npos);
    EXPECT_NE(text.find("rxy q[0]"), std::string::npos);
    EXPECT_NE(text.find("rz q[0]"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("x q[1] (+3) ctl q[2]=1;"), std::string::npos);
    EXPECT_NE(text.find("swp q[1] (0, 5);"), std::string::npos);
    EXPECT_NE(text.find("ctl q[0]=1, q[1]=4;"), std::string::npos);
}

TEST(Qasm, RoundTripsExactly) {
    const Circuit original = sampleCircuit();
    const Circuit parsed = parseQasmString(toQasm(original));
    expectSameOps(original, parsed);
}

TEST(Qasm, RoundTripsSynthesizedCircuits) {
    Rng rng(5);
    const StateVector target = states::random({3, 4, 2}, rng);
    const auto prep = prepareExact(target);
    const Circuit parsed = parseQasmString(toQasm(prep.circuit));
    expectSameOps(prep.circuit, parsed);
    // Behavioural check on top of the structural one.
    EXPECT_NEAR(Simulator::preparationFidelity(parsed, target), 1.0, 1e-9);
}

TEST(Qasm, ToleratesCommentsAndWhitespace) {
    const std::string text = R"(
        // leading comment
        MQSPQASM 1.0;

        qreg q[2] = [3, 2];   // register comment
        h q[0];               // gate comment
          rxy   q[1]   ( 0 , 1 , 0.5 , -0.25 )   ctl   q[0]=2 ;
    )";
    const Circuit circuit = parseQasmString(text);
    ASSERT_EQ(circuit.numOperations(), 2U);
    EXPECT_EQ(circuit[1].kind, GateKind::GivensRotation);
    EXPECT_EQ(circuit[1].controls, (std::vector<Control>{{0, 2}}));
}

TEST(Qasm, RejectsMissingHeader) {
    EXPECT_THROW((void)parseQasmString("qreg q[1] = [2];\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(""), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString("MQSPQASM 2.0;\nqreg q[1] = [2];\n"),
                 InvalidArgumentError);
}

TEST(Qasm, RejectsBadRegister) {
    EXPECT_THROW((void)parseQasmString("MQSPQASM 1.0;\nqreg q[2] = [3];\n"),
                 InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString("MQSPQASM 1.0;\nqreg q[1] = [1];\n"),
                 InvalidArgumentError);
}

TEST(Qasm, RejectsUnknownGatesAndBadSyntax) {
    const std::string header = "MQSPQASM 1.0;\nqreg q[2] = [3, 2];\n";
    EXPECT_THROW((void)parseQasmString(header + "warp q[0];\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "h q[0]\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "h q[5];\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "rxy q[1] (0, 5, 1.0, 0.0);\n"),
                 InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "h q[0]; extra\n"), InvalidArgumentError);
}

TEST(Qasm, ErrorMessagesCarryLineNumbers) {
    const std::string text = "MQSPQASM 1.0;\nqreg q[1] = [2];\n\n// c\nbad q[0];\n";
    try {
        (void)parseQasmString(text);
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find("line 5"), std::string::npos)
            << error.what();
    }
}

TEST(QasmStream, YieldsGatesIncrementallyWithCursorBookkeeping) {
    std::istringstream in(toQasm(sampleCircuit()));
    GateStream stream(in);
    // The preamble is consumed eagerly: the register is known before any
    // gate has been read.
    EXPECT_EQ(stream.dimensions(), (Dimensions{3, 6, 2}));
    EXPECT_EQ(stream.opsRead(), 0U);
    EXPECT_FALSE(stream.eof());

    const Circuit expected = sampleCircuit();
    for (std::size_t i = 0; i < expected.numOperations(); ++i) {
        const auto op = stream.next();
        ASSERT_TRUE(op.has_value()) << "op " << i;
        EXPECT_EQ(op->kind, expected[i].kind) << "op " << i;
        EXPECT_EQ(stream.opsRead(), i + 1);
    }
    EXPECT_FALSE(stream.next().has_value());
    EXPECT_TRUE(stream.eof());
    // Exhausted streams stay exhausted.
    EXPECT_FALSE(stream.next().has_value());
    EXPECT_EQ(stream.opsRead(), sampleCircuit().numOperations());
}

TEST(QasmStream, DrainMatchesTheWholeCircuitParser) {
    const std::string text = toQasm(sampleCircuit());
    std::istringstream in(text);
    GateStream stream(in);
    Circuit drained(stream.dimensions(), "drained");
    while (const auto op = stream.next()) {
        drained.append(*op);
    }
    expectSameOps(parseQasmString(text), drained);
}

TEST(QasmStream, MalformedPreambleFailsAtConstruction) {
    const auto construct = [](const std::string& text) {
        std::istringstream in(text);
        (void)GateStream(in);
    };
    EXPECT_THROW(construct(""), InvalidArgumentError);
    EXPECT_THROW(construct("qreg q[1] = [2];\n"), InvalidArgumentError);
    EXPECT_THROW(construct("MQSPQASM 1.0;\n"), InvalidArgumentError);
    EXPECT_THROW(construct("MQSPQASM 1.0;\nh q[0];\n"), InvalidArgumentError);
}

TEST(QasmStream, StatementParsesOneValidatedGate) {
    const MixedRadix radix(Dimensions{3, 6, 2});
    const Operation op = parseQasmStatement("x q[1] (+3) ctl q[2]=1; // tail", radix);
    EXPECT_EQ(op.kind, GateKind::Shift);
    EXPECT_EQ(op.target, 1U);
    EXPECT_EQ(op.shiftAmount, 3U);
    EXPECT_EQ(op.controls, (std::vector<Control>{{2, 1}}));

    // Empty and comment-only statements are refused, not silently dropped.
    EXPECT_THROW((void)parseQasmStatement("", radix), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmStatement("  // nothing", radix), InvalidArgumentError);
    // Register admissibility is enforced, with the seeded line number in
    // the message.
    try {
        (void)parseQasmStatement("h q[9];", radix, 7);
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find("line 7"), std::string::npos)
            << error.what();
    }
}

TEST(QasmStream, OversizedIntegersAreRefusedNotUndefined) {
    const std::string header = "MQSPQASM 1.0;\nqreg q[1] = [2];\n";
    try {
        (void)parseQasmString(header + "x q[99999999999999999999] (+1);\n");
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find("overflows"), std::string::npos)
            << error.what();
    }
}

TEST(QasmStream, EveryTruncatedPrefixParsesOrThrowsInvalidArgument) {
    // A torn stream — connection dropped mid-line, file truncated mid-token
    // — must either parse (the tear landed on a statement boundary) or
    // throw InvalidArgumentError. Never a bare stdlib exception, never a
    // crash, and the streaming reader must agree with the whole-circuit
    // parser on which prefixes are acceptable.
    const std::string text = toQasm(sampleCircuit());
    std::size_t parsed = 0;
    std::size_t rejected = 0;
    for (std::size_t cut = 0; cut <= text.size(); ++cut) {
        const std::string prefix = text.substr(0, cut);
        bool wholeOk = false;
        try {
            (void)parseQasmString(prefix);
            wholeOk = true;
            ++parsed;
        } catch (const InvalidArgumentError&) {
            ++rejected;
        }
        bool streamOk = false;
        try {
            std::istringstream in(prefix);
            GateStream stream(in);
            while (stream.next().has_value()) {
            }
            streamOk = true;
        } catch (const InvalidArgumentError&) {
        }
        EXPECT_EQ(wholeOk, streamOk) << "prefix of " << cut << " bytes";
    }
    EXPECT_GT(parsed, 0U);
    EXPECT_GT(rejected, 0U);
}

/// Deterministic xorshift64 — the fuzz corpus must be reproducible.
struct Xorshift {
    std::uint64_t state = 0x9E3779B97F4A7C15ULL;
    std::uint64_t operator()() {
        state ^= state << 13U;
        state ^= state >> 7U;
        state ^= state << 17U;
        return state;
    }
};

TEST(QasmStream, ByteSoupAndMutatedTextNeverEscapeAsBareExceptions) {
    const std::string valid = toQasm(sampleCircuit());
    Xorshift next;
    std::size_t rejected = 0;
    for (int round = 0; round < 2000; ++round) {
        std::string text;
        if (round % 2 == 0) {
            // Pure byte soup, control bytes and NULs included.
            const std::size_t length = next() % 96;
            for (std::size_t i = 0; i < length; ++i) {
                text += static_cast<char>(next() % 256);
            }
        } else {
            // Mutated valid text: gets deep into the gate grammar instead
            // of dying at the header.
            text = valid;
            for (int flips = 0; flips < 3; ++flips) {
                text[next() % text.size()] = static_cast<char>(next() % 256);
            }
        }
        try {
            (void)parseQasmString(text);
        } catch (const InvalidArgumentError&) {
            ++rejected;
        }
        // Any other exception type escapes and fails the test.
    }
    EXPECT_GT(rejected, 0U);
}

TEST(Qasm, RoundTripsEveryBenchmarkFamilyCircuit) {
    Rng rng(9);
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        for (int which = 0; which < 4; ++which) {
            const StateVector target = which == 0   ? states::ghz(dims)
                                       : which == 1 ? states::wState(dims)
                                       : which == 2 ? states::embeddedWState(dims)
                                                    : states::random(dims, rng);
            SynthesisOptions lean;
            lean.emitIdentityOperations = false;
            const auto prep = prepareExact(target, lean);
            const Circuit parsed = parseQasmString(toQasm(prep.circuit));
            expectSameOps(prep.circuit, parsed);
        }
    }
}

} // namespace
} // namespace mqsp
