#include "mqsp/circuit/qasm.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

Circuit sampleCircuit() {
    Circuit circuit({3, 6, 2}, "qasm_sample");
    circuit.append(Operation::phase(0, 0, 1, -0.75));
    circuit.append(Operation::givens(0, 0, 2, 1.25, 0.5));
    circuit.append(Operation::givens(1, 2, 3, 0.33, -1.5, {{0, 2}}));
    circuit.append(Operation::phase(2, 0, 1, 2.0, {{0, 1}, {1, 4}}));
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::shift(1, 3, {{2, 1}}));
    circuit.append(Operation::levelSwap(1, 0, 5));
    return circuit;
}

void expectSameOps(const Circuit& a, const Circuit& b) {
    ASSERT_EQ(a.numOperations(), b.numOperations());
    EXPECT_EQ(a.dimensions(), b.dimensions());
    for (std::size_t i = 0; i < a.numOperations(); ++i) {
        const Operation& x = a[i];
        const Operation& y = b[i];
        EXPECT_EQ(x.kind, y.kind) << "op " << i;
        EXPECT_EQ(x.target, y.target);
        EXPECT_EQ(x.levelA, y.levelA);
        EXPECT_EQ(x.levelB, y.levelB);
        EXPECT_DOUBLE_EQ(x.theta, y.theta);
        EXPECT_DOUBLE_EQ(x.phi, y.phi);
        EXPECT_EQ(x.shiftAmount, y.shiftAmount);
        EXPECT_EQ(x.controls, y.controls);
    }
}

TEST(Qasm, EmitsHeaderRegisterAndGates) {
    const std::string text = toQasm(sampleCircuit());
    EXPECT_NE(text.find("MQSPQASM 1.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3] = [3, 6, 2];"), std::string::npos);
    EXPECT_NE(text.find("rxy q[0]"), std::string::npos);
    EXPECT_NE(text.find("rz q[0]"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("x q[1] (+3) ctl q[2]=1;"), std::string::npos);
    EXPECT_NE(text.find("swp q[1] (0, 5);"), std::string::npos);
    EXPECT_NE(text.find("ctl q[0]=1, q[1]=4;"), std::string::npos);
}

TEST(Qasm, RoundTripsExactly) {
    const Circuit original = sampleCircuit();
    const Circuit parsed = parseQasmString(toQasm(original));
    expectSameOps(original, parsed);
}

TEST(Qasm, RoundTripsSynthesizedCircuits) {
    Rng rng(5);
    const StateVector target = states::random({3, 4, 2}, rng);
    const auto prep = prepareExact(target);
    const Circuit parsed = parseQasmString(toQasm(prep.circuit));
    expectSameOps(prep.circuit, parsed);
    // Behavioural check on top of the structural one.
    EXPECT_NEAR(Simulator::preparationFidelity(parsed, target), 1.0, 1e-9);
}

TEST(Qasm, ToleratesCommentsAndWhitespace) {
    const std::string text = R"(
        // leading comment
        MQSPQASM 1.0;

        qreg q[2] = [3, 2];   // register comment
        h q[0];               // gate comment
          rxy   q[1]   ( 0 , 1 , 0.5 , -0.25 )   ctl   q[0]=2 ;
    )";
    const Circuit circuit = parseQasmString(text);
    ASSERT_EQ(circuit.numOperations(), 2U);
    EXPECT_EQ(circuit[1].kind, GateKind::GivensRotation);
    EXPECT_EQ(circuit[1].controls, (std::vector<Control>{{0, 2}}));
}

TEST(Qasm, RejectsMissingHeader) {
    EXPECT_THROW((void)parseQasmString("qreg q[1] = [2];\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(""), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString("MQSPQASM 2.0;\nqreg q[1] = [2];\n"),
                 InvalidArgumentError);
}

TEST(Qasm, RejectsBadRegister) {
    EXPECT_THROW((void)parseQasmString("MQSPQASM 1.0;\nqreg q[2] = [3];\n"),
                 InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString("MQSPQASM 1.0;\nqreg q[1] = [1];\n"),
                 InvalidArgumentError);
}

TEST(Qasm, RejectsUnknownGatesAndBadSyntax) {
    const std::string header = "MQSPQASM 1.0;\nqreg q[2] = [3, 2];\n";
    EXPECT_THROW((void)parseQasmString(header + "warp q[0];\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "h q[0]\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "h q[5];\n"), InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "rxy q[1] (0, 5, 1.0, 0.0);\n"),
                 InvalidArgumentError);
    EXPECT_THROW((void)parseQasmString(header + "h q[0]; extra\n"), InvalidArgumentError);
}

TEST(Qasm, ErrorMessagesCarryLineNumbers) {
    const std::string text = "MQSPQASM 1.0;\nqreg q[1] = [2];\n\n// c\nbad q[0];\n";
    try {
        (void)parseQasmString(text);
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find("line 5"), std::string::npos)
            << error.what();
    }
}

TEST(Qasm, RoundTripsEveryBenchmarkFamilyCircuit) {
    Rng rng(9);
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        for (int which = 0; which < 4; ++which) {
            const StateVector target = which == 0   ? states::ghz(dims)
                                       : which == 1 ? states::wState(dims)
                                       : which == 2 ? states::embeddedWState(dims)
                                                    : states::random(dims, rng);
            SynthesisOptions lean;
            lean.emitIdentityOperations = false;
            const auto prep = prepareExact(target, lean);
            const Circuit parsed = parseQasmString(toQasm(prep.circuit));
            expectSameOps(prep.circuit, parsed);
        }
    }
}

} // namespace
} // namespace mqsp
