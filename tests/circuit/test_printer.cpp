#include "mqsp/circuit/printer.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mqsp {
namespace {

Circuit sampleCircuit() {
    Circuit circuit({3, 6, 2}, "sample");
    circuit.append(Operation::phase(0, 0, 1, -0.75));
    circuit.append(Operation::givens(0, 0, 1, 1.25, 0.5));
    circuit.append(Operation::givens(1, 2, 3, 0.33, -1.5, {{0, 2}}));
    circuit.append(Operation::phase(2, 0, 1, 2.0, {{0, 1}, {1, 4}}));
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::shift(1, 3, {{2, 1}}));
    circuit.append(Operation::levelSwap(1, 0, 5, {{0, 1}}));
    return circuit;
}

TEST(PrinterText, ContainsHeaderOpsAndFooter) {
    const std::string text = circuitToText(sampleCircuit());
    EXPECT_NE(text.find("circuit \"sample\""), std::string::npos);
    EXPECT_NE(text.find("[1x3,1x6,1x2]"), std::string::npos);
    EXPECT_NE(text.find("R(2,3"), std::string::npos);
    EXPECT_NE(text.find("ops=7"), std::string::npos);
}

TEST(PrinterJson, RoundTripsAllOperations) {
    const Circuit original = sampleCircuit();
    std::stringstream stream;
    printCircuitJsonLines(stream, original);
    const Circuit parsed = parseCircuitJsonLines(stream);

    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_EQ(parsed.dimensions(), original.dimensions());
    ASSERT_EQ(parsed.numOperations(), original.numOperations());
    for (std::size_t i = 0; i < original.numOperations(); ++i) {
        const Operation& a = original[i];
        const Operation& b = parsed[i];
        EXPECT_EQ(a.kind, b.kind) << "op " << i;
        EXPECT_EQ(a.target, b.target);
        EXPECT_EQ(a.levelA, b.levelA);
        EXPECT_EQ(a.levelB, b.levelB);
        EXPECT_DOUBLE_EQ(a.theta, b.theta);
        EXPECT_DOUBLE_EQ(a.phi, b.phi);
        EXPECT_EQ(a.shiftAmount, b.shiftAmount);
        EXPECT_EQ(a.controls, b.controls);
    }
}

TEST(PrinterJson, RoundTripPreservesFullDoublePrecision) {
    Circuit circuit({2}, "precise");
    circuit.append(Operation::givens(0, 0, 1, 0.1234567890123456789, -2.718281828459045));
    std::stringstream stream;
    printCircuitJsonLines(stream, circuit);
    const Circuit parsed = parseCircuitJsonLines(stream);
    EXPECT_DOUBLE_EQ(parsed[0].theta, circuit[0].theta);
    EXPECT_DOUBLE_EQ(parsed[0].phi, circuit[0].phi);
}

TEST(PrinterJson, EmptyCircuitRoundTrips) {
    const Circuit original({4, 2}, "empty");
    std::stringstream stream;
    printCircuitJsonLines(stream, original);
    const Circuit parsed = parseCircuitJsonLines(stream);
    EXPECT_EQ(parsed.numOperations(), 0U);
    EXPECT_EQ(parsed.dimensions(), (Dimensions{4, 2}));
}

TEST(PrinterJson, RejectsMissingHeader) {
    std::stringstream stream;
    EXPECT_THROW((void)parseCircuitJsonLines(stream), InvalidArgumentError);
}

TEST(PrinterJson, RejectsUnknownKind) {
    std::stringstream stream;
    stream << "{\"name\":\"x\",\"dims\":[2]}\n";
    stream << "{\"kind\":\"warp\",\"target\":0,\"levelA\":0,\"levelB\":1,\"theta\":0,"
              "\"phi\":0,\"shift\":0,\"controls\":[]}\n";
    EXPECT_THROW((void)parseCircuitJsonLines(stream), InvalidArgumentError);
}

/// Feed `text` through the parser and require the error message to carry
/// `fragment` — malformed circuit files must say which line and key broke.
void expectParseError(const std::string& text, const std::string& fragment) {
    std::stringstream stream(text);
    try {
        (void)parseCircuitJsonLines(stream);
        FAIL() << "expected InvalidArgumentError for input:\n" << text;
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
            << "input:\n" << text << "\nproduced: " << error.what();
    }
}

constexpr const char* kHeader = "{\"name\":\"x\",\"dims\":[3,2]}\n";

TEST(PrinterJson, RejectsNonNumericValueNamingKeyAndLine) {
    expectParseError(std::string(kHeader) +
                         "{\"kind\":\"phase\",\"target\":zero,\"levelA\":0,\"levelB\":1,"
                         "\"theta\":0,\"phi\":0,\"shift\":0,\"controls\":[]}\n",
                     "value for key 'target'");
    expectParseError(std::string(kHeader) +
                         "{\"kind\":\"phase\",\"target\":0,\"levelA\":0,\"levelB\":1,"
                         "\"theta\":fast,\"phi\":0,\"shift\":0,\"controls\":[]}\n",
                     "value for key 'theta'");
}

TEST(PrinterJson, RejectsTruncatedOperationLine) {
    // A line cut mid-object (torn write, truncated download) names the
    // first missing key instead of crashing in a raw substring scan.
    expectParseError(std::string(kHeader) + "{\"kind\":\"phase\",\"target\":0\n",
                     "missing key 'levelA'");
    expectParseError(std::string(kHeader) + "{\"kind\":\"phase\"\n", "missing key 'target'");
}

TEST(PrinterJson, RejectsMalformedControlPairs) {
    const std::string prefix = "{\"kind\":\"phase\",\"target\":1,\"levelA\":0,\"levelB\":1,"
                               "\"theta\":0,\"phi\":0,\"shift\":0,";
    expectParseError(std::string(kHeader) + prefix + "\"controls\":[[0,q]]}\n",
                     "control pair in:");
    expectParseError(std::string(kHeader) + prefix + "\"controls\":[[0,-1]]}\n",
                     "control pair in:");
    expectParseError(std::string(kHeader) + prefix + "\"controls\":[[01]]}\n",
                     "malformed control pair");
}

TEST(PrinterJson, RejectsUnterminatedControlsArray) {
    expectParseError(std::string(kHeader) +
                         "{\"kind\":\"phase\",\"target\":1,\"levelA\":0,\"levelB\":1,"
                         "\"theta\":0,\"phi\":0,\"shift\":0,\"controls\":[",
                     "unterminated controls array");
}

TEST(PrinterJson, RejectsBadHeaderDims) {
    expectParseError("{\"name\":\"x\",\"dims\":[3,q]}\n", "dims entry in:");
    expectParseError("{\"name\":\"x\",\"dims\":[3,-2]}\n", "dims entry in:");
    expectParseError("{\"name\":\"x\",\"dims\":[3,2", "unterminated dims in:");
    expectParseError("{\"name\":\"x\"}\n", "missing dims array");
}

} // namespace
} // namespace mqsp
