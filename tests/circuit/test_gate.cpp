#include "mqsp/circuit/gate.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mqsp {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(HadamardMatrix, QutritMatchesPaperExample2) {
    // Example 2 of the paper: H |0> on a qutrit yields the uniform state.
    const DenseMatrix h = hadamardMatrix(3);
    const auto out = h.apply({{1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}});
    const double amp = 1.0 / std::sqrt(3.0);
    for (const auto& value : out) {
        EXPECT_NEAR(value.real(), amp, 1e-12);
        EXPECT_NEAR(value.imag(), 0.0, 1e-12);
    }
}

TEST(HadamardMatrix, IsUnitaryForVariousDimensions) {
    for (const Dimension dim : {2U, 3U, 5U, 7U, 9U}) {
        EXPECT_TRUE(hadamardMatrix(dim).isUnitary()) << "dim=" << dim;
    }
}

TEST(HadamardMatrix, QubitCaseIsTextbookHadamard) {
    const DenseMatrix h = hadamardMatrix(2);
    const double s = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(h(0, 0).real(), s, 1e-12);
    EXPECT_NEAR(h(0, 1).real(), s, 1e-12);
    EXPECT_NEAR(h(1, 0).real(), s, 1e-12);
    EXPECT_NEAR(h(1, 1).real(), -s, 1e-12);
}

TEST(ShiftMatrix, CyclicIncrement) {
    const DenseMatrix x = shiftMatrix(3, 1);
    // |0> -> |1>, |1> -> |2>, |2> -> |0>
    const auto out = x.apply({{1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}});
    EXPECT_NEAR(out[1].real(), 1.0, 1e-12);
    const auto wrap = x.apply({{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}});
    EXPECT_NEAR(wrap[0].real(), 1.0, 1e-12);
    EXPECT_TRUE(x.isUnitary());
}

TEST(ShiftMatrix, ShiftByTwoComposesFromShiftByOne) {
    const DenseMatrix x1 = shiftMatrix(5, 1);
    const DenseMatrix x2 = shiftMatrix(5, 2);
    EXPECT_TRUE(x1.multiply(x1).approxEquals(x2));
}

TEST(GivensMatrix, ThetaZeroIsIdentity) {
    EXPECT_TRUE(givensMatrix(4, 1, 3, 0.0, 0.7).approxEquals(DenseMatrix::identity(4)));
}

TEST(GivensMatrix, FullRotationIsMinusIdentityOnSubspace) {
    // R(2 pi) = -I on the two-level subspace, identity elsewhere.
    const DenseMatrix r = givensMatrix(3, 0, 1, 2.0 * kPi, 0.0);
    EXPECT_NEAR(r(0, 0).real(), -1.0, 1e-12);
    EXPECT_NEAR(r(1, 1).real(), -1.0, 1e-12);
    EXPECT_NEAR(r(2, 2).real(), 1.0, 1e-12);
}

TEST(GivensMatrix, IsUnitaryForRandomParameters) {
    for (const double theta : {0.1, 1.0, 2.5, -1.2}) {
        for (const double phi : {0.0, 0.5, -2.0, kPi}) {
            EXPECT_TRUE(givensMatrix(5, 1, 4, theta, phi).isUnitary())
                << "theta=" << theta << " phi=" << phi;
        }
    }
}

TEST(GivensMatrix, AnglesAddForSameAxis) {
    const DenseMatrix a = givensMatrix(3, 0, 2, 0.7, 1.1);
    const DenseMatrix b = givensMatrix(3, 0, 2, 0.5, 1.1);
    const DenseMatrix sum = givensMatrix(3, 0, 2, 1.2, 1.1);
    EXPECT_TRUE(a.multiply(b).approxEquals(sum, 1e-12));
}

TEST(GivensMatrix, MatchesPaperGeneratorConvention) {
    // R(theta, phi) = exp(-i theta/2 (cos phi X + sin phi Y)) restricted to
    // the subspace; at phi = 0 the off-diagonals are -i sin(theta/2).
    const double theta = 1.3;
    const DenseMatrix r = givensMatrix(2, 0, 1, theta, 0.0);
    EXPECT_NEAR(r(0, 1).imag(), -std::sin(theta / 2.0), 1e-12);
    EXPECT_NEAR(r(1, 0).imag(), -std::sin(theta / 2.0), 1e-12);
    EXPECT_NEAR(r(0, 0).real(), std::cos(theta / 2.0), 1e-12);
}

TEST(GivensMatrix, RejectsBadLevels) {
    EXPECT_THROW((void)givensMatrix(3, 0, 3, 1.0, 0.0), InvalidArgumentError);
    EXPECT_THROW((void)givensMatrix(3, 1, 1, 1.0, 0.0), InvalidArgumentError);
}

TEST(PhaseMatrix, AppliesOppositePhases) {
    const double theta = 0.9;
    const DenseMatrix z = phaseMatrix(4, 1, 2, theta);
    EXPECT_NEAR(std::arg(z(1, 1)), theta / 2.0, 1e-12);
    EXPECT_NEAR(std::arg(z(2, 2)), -theta / 2.0, 1e-12);
    EXPECT_NEAR(z(0, 0).real(), 1.0, 1e-12);
    EXPECT_NEAR(z(3, 3).real(), 1.0, 1e-12);
    EXPECT_TRUE(z.isUnitary());
}

TEST(PhaseMatrix, DecomposesIntoGivensRotations) {
    // The paper's identity: Z(t) = R(-pi/2, 0) * R(t, pi/2) * R(pi/2, 0).
    const double t = 0.77;
    const DenseMatrix lhs = phaseMatrix(2, 0, 1, t);
    const DenseMatrix rhs = givensMatrix(2, 0, 1, -kPi / 2.0, 0.0)
                                .multiply(givensMatrix(2, 0, 1, t, kPi / 2.0))
                                .multiply(givensMatrix(2, 0, 1, kPi / 2.0, 0.0));
    EXPECT_TRUE(lhs.approxEquals(rhs, 1e-12))
        << "deviation=" << lhs.maxDeviation(rhs);
}

TEST(Operation, FactoriesPopulateFields) {
    const Operation r = Operation::givens(2, 1, 3, 0.5, -0.25, {{0, 1}});
    EXPECT_EQ(r.kind, GateKind::GivensRotation);
    EXPECT_EQ(r.target, 2U);
    EXPECT_EQ(r.levelA, 1U);
    EXPECT_EQ(r.levelB, 3U);
    EXPECT_DOUBLE_EQ(r.theta, 0.5);
    EXPECT_DOUBLE_EQ(r.phi, -0.25);
    EXPECT_EQ(r.numControls(), 1U);

    const Operation z = Operation::phase(0, 0, 1, 1.5);
    EXPECT_EQ(z.kind, GateKind::PhaseRotation);
    EXPECT_DOUBLE_EQ(z.theta, 1.5);

    const Operation h = Operation::hadamard(1);
    EXPECT_EQ(h.kind, GateKind::Hadamard);

    const Operation x = Operation::shift(1, 2);
    EXPECT_EQ(x.kind, GateKind::Shift);
    EXPECT_EQ(x.shiftAmount, 2U);
}

TEST(LevelSwapMatrix, ExactTransposition) {
    const DenseMatrix x = levelSwapMatrix(4, 1, 3);
    EXPECT_TRUE(x.isUnitary());
    const auto out = x.apply({{0.1, 0.0}, {0.2, 0.0}, {0.3, 0.0}, {0.4, 0.0}});
    EXPECT_NEAR(out[0].real(), 0.1, 1e-12);
    EXPECT_NEAR(out[1].real(), 0.4, 1e-12);
    EXPECT_NEAR(out[2].real(), 0.3, 1e-12);
    EXPECT_NEAR(out[3].real(), 0.2, 1e-12);
    // Unlike the Givens rotation at theta = pi, there are no phases.
    EXPECT_TRUE(x.multiply(x).approxEquals(DenseMatrix::identity(4), 1e-12));
    EXPECT_THROW((void)levelSwapMatrix(3, 0, 3), InvalidArgumentError);
}

TEST(Operation, LevelSwapFactoryAndProperties) {
    const Operation x = Operation::levelSwap(1, 0, 2, {{0, 1}});
    EXPECT_EQ(x.kind, GateKind::LevelSwap);
    EXPECT_EQ(x.numControls(), 1U);
    EXPECT_FALSE(x.isIdentity());
    // Self-inverse.
    const DenseMatrix product = x.localMatrix(3).multiply(x.inverse().localMatrix(3));
    EXPECT_TRUE(product.approxEquals(DenseMatrix::identity(3), 1e-12));
    EXPECT_NE(x.toString().find("X(0,2)"), std::string::npos);
    EXPECT_THROW((void)Operation::levelSwap(0, 1, 1), InvalidArgumentError);
}

TEST(Operation, FactoriesRejectEqualLevels) {
    EXPECT_THROW((void)Operation::givens(0, 1, 1, 0.5, 0.0), InvalidArgumentError);
    EXPECT_THROW((void)Operation::phase(0, 2, 2, 0.5), InvalidArgumentError);
}

TEST(Operation, IdentityDetection) {
    EXPECT_TRUE(Operation::givens(0, 0, 1, 0.0, 0.3).isIdentity());
    EXPECT_FALSE(Operation::givens(0, 0, 1, 0.1, 0.3).isIdentity());
    EXPECT_TRUE(Operation::phase(0, 0, 1, 0.0).isIdentity());
    EXPECT_FALSE(Operation::phase(0, 0, 1, 0.2).isIdentity());
    EXPECT_TRUE(Operation::shift(0, 0).isIdentity());
    EXPECT_FALSE(Operation::shift(0, 1).isIdentity());
    EXPECT_FALSE(Operation::hadamard(0).isIdentity());
}

TEST(Operation, InverseUndoesRotation) {
    const Operation r = Operation::givens(0, 0, 2, 0.8, 0.4);
    const DenseMatrix product = r.localMatrix(3).multiply(r.inverse().localMatrix(3));
    EXPECT_TRUE(product.approxEquals(DenseMatrix::identity(3), 1e-12));
}

TEST(Operation, InverseOfHadamardAndShiftRejected) {
    EXPECT_THROW((void)Operation::hadamard(0).inverse(), InvalidArgumentError);
    EXPECT_THROW((void)Operation::shift(0, 1).inverse(), InvalidArgumentError);
}

TEST(Operation, LocalMatrixRespectsDimension) {
    const Operation r = Operation::givens(0, 0, 4, 1.0, 0.0);
    EXPECT_EQ(r.localMatrix(5).size(), 5U);
    EXPECT_THROW((void)r.localMatrix(3), InvalidArgumentError);
}

TEST(Operation, ToStringIsReadable) {
    const Operation r = Operation::givens(1, 0, 2, 0.5, 0.25, {{2, 1}});
    const std::string text = r.toString();
    EXPECT_NE(text.find("R(0,2"), std::string::npos);
    EXPECT_NE(text.find("q1"), std::string::npos);
    EXPECT_NE(text.find("q2=1"), std::string::npos);
}

} // namespace
} // namespace mqsp
