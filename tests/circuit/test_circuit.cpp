#include "mqsp/circuit/circuit.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(Circuit, StartsEmpty) {
    const Circuit circuit({3, 2}, "test");
    EXPECT_TRUE(circuit.empty());
    EXPECT_EQ(circuit.numOperations(), 0U);
    EXPECT_EQ(circuit.name(), "test");
    EXPECT_EQ(circuit.numQudits(), 2U);
}

TEST(Circuit, AppendValidatesTarget) {
    Circuit circuit({3, 2});
    EXPECT_THROW(circuit.append(Operation::givens(2, 0, 1, 0.5, 0.0)), InvalidArgumentError);
}

TEST(Circuit, AppendValidatesLevels) {
    Circuit circuit({3, 2});
    // Level 2 is fine on the qutrit (site 0) but not on the qubit (site 1).
    EXPECT_NO_THROW(circuit.append(Operation::givens(0, 0, 2, 0.5, 0.0)));
    EXPECT_THROW(circuit.append(Operation::givens(1, 0, 2, 0.5, 0.0)), InvalidArgumentError);
}

TEST(Circuit, AppendValidatesControls) {
    Circuit circuit({3, 2});
    EXPECT_THROW(circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0, {{5, 0}})),
                 InvalidArgumentError);
    EXPECT_THROW(circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0, {{0, 1}})),
                 InvalidArgumentError); // control on the target
    EXPECT_THROW(circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0, {{1, 2}})),
                 InvalidArgumentError); // control level beyond qubit
    EXPECT_NO_THROW(circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0, {{1, 1}})));
}

TEST(Circuit, AppendRejectsDuplicateControlQudits) {
    Circuit circuit({3, 3, 3});
    EXPECT_THROW(circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0, {{1, 0}, {1, 2}})),
                 InvalidArgumentError);
    EXPECT_THROW(circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0, {{1, 1}, {1, 1}})),
                 InvalidArgumentError);
    EXPECT_NO_THROW(
        circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0, {{1, 1}, {2, 1}})));
}

TEST(Circuit, AppendValidatesShiftAmount) {
    Circuit circuit({3});
    EXPECT_THROW(circuit.append(Operation::shift(0, 3)), InvalidArgumentError);
    EXPECT_NO_THROW(circuit.append(Operation::shift(0, 2)));
}

TEST(Circuit, OperationsKeepApplicationOrder) {
    Circuit circuit({2, 2});
    circuit.append(Operation::givens(0, 0, 1, 0.1, 0.0));
    circuit.append(Operation::givens(1, 0, 1, 0.2, 0.0));
    EXPECT_EQ(circuit[0].theta, 0.1);
    EXPECT_EQ(circuit[1].theta, 0.2);
    EXPECT_THROW((void)circuit[2], InvalidArgumentError);
}

TEST(Circuit, AppendCircuitRequiresSameRegister) {
    Circuit a({2, 2});
    Circuit b({2, 2});
    b.append(Operation::givens(0, 0, 1, 0.5, 0.0));
    a.append(b);
    EXPECT_EQ(a.numOperations(), 1U);
    const Circuit c({3, 2});
    EXPECT_THROW(a.append(c), InvalidArgumentError);
}

TEST(Circuit, InvertedReversesAndNegates) {
    Circuit circuit({3});
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.3));
    circuit.append(Operation::phase(0, 0, 2, 0.7));
    const Circuit inv = circuit.inverted();
    EXPECT_EQ(inv.numOperations(), 2U);
    EXPECT_EQ(inv[0].kind, GateKind::PhaseRotation);
    EXPECT_DOUBLE_EQ(inv[0].theta, -0.7);
    EXPECT_EQ(inv[1].kind, GateKind::GivensRotation);
    EXPECT_DOUBLE_EQ(inv[1].theta, -0.5);
}

TEST(CircuitStats, CountsKindsAndControls) {
    Circuit circuit({3, 6, 2});
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0));                 // 0 controls
    circuit.append(Operation::givens(1, 0, 1, 0.5, 0.0, {{0, 1}}));       // 1 control
    circuit.append(Operation::phase(2, 0, 1, 0.5, {{0, 1}, {1, 2}}));     // 2 controls
    circuit.append(Operation::hadamard(0));
    const CircuitStats stats = circuit.stats();
    EXPECT_EQ(stats.numOperations, 4U);
    EXPECT_EQ(stats.numRotations, 2U);
    EXPECT_EQ(stats.numPhases, 1U);
    EXPECT_EQ(stats.numOther, 1U);
    EXPECT_EQ(stats.numControlledOps, 2U);
    EXPECT_EQ(stats.totalControls, 3U);
    EXPECT_EQ(stats.maxControls, 2U);
    EXPECT_DOUBLE_EQ(stats.medianControls, 0.5); // counts {0,1,2,0} -> median 0.5
}

TEST(CircuitStats, MedianOddCount) {
    Circuit circuit({2, 2, 2});
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0));
    circuit.append(Operation::givens(1, 0, 1, 0.5, 0.0, {{0, 1}}));
    circuit.append(Operation::givens(2, 0, 1, 0.5, 0.0, {{0, 1}, {1, 1}}));
    EXPECT_DOUBLE_EQ(circuit.stats().medianControls, 1.0);
}

TEST(CircuitStats, DepthAccountsForSiteOverlap) {
    Circuit circuit({2, 2, 2});
    // Two ops on disjoint sites can run in parallel -> depth 1.
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0));
    circuit.append(Operation::givens(1, 0, 1, 0.5, 0.0));
    EXPECT_EQ(circuit.stats().depthEstimate, 1U);
    // A controlled op on both sites serializes -> depth 2.
    circuit.append(Operation::givens(1, 0, 1, 0.5, 0.0, {{0, 1}}));
    EXPECT_EQ(circuit.stats().depthEstimate, 2U);
}

TEST(Circuit, RemoveIdentityOperations) {
    Circuit circuit({3});
    circuit.append(Operation::givens(0, 0, 1, 0.0, 0.3)); // identity
    circuit.append(Operation::givens(0, 0, 1, 0.4, 0.3));
    circuit.append(Operation::phase(0, 0, 1, 0.0)); // identity
    EXPECT_EQ(circuit.removeIdentityOperations(), 2U);
    EXPECT_EQ(circuit.numOperations(), 1U);
    EXPECT_DOUBLE_EQ(circuit[0].theta, 0.4);
}

TEST(CircuitStats, EmptyCircuit) {
    const Circuit circuit({2});
    const CircuitStats stats = circuit.stats();
    EXPECT_EQ(stats.numOperations, 0U);
    EXPECT_DOUBLE_EQ(stats.medianControls, 0.0);
    EXPECT_EQ(stats.depthEstimate, 0U);
}

} // namespace
} // namespace mqsp
