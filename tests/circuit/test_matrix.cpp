#include "mqsp/circuit/matrix.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(DenseMatrix, ZeroConstruction) {
    const DenseMatrix m(3);
    EXPECT_EQ(m.size(), 3U);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(m(i, j), (Complex{0.0, 0.0}));
        }
    }
}

TEST(DenseMatrix, IdentityConstruction) {
    const DenseMatrix id = DenseMatrix::identity(4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_EQ(id(i, j), (i == j ? Complex{1.0, 0.0} : Complex{0.0, 0.0}));
        }
    }
    EXPECT_TRUE(id.isUnitary());
}

TEST(DenseMatrix, IndexBoundsChecked) {
    DenseMatrix m(2);
    EXPECT_THROW((void)m(2, 0), InvalidArgumentError);
    EXPECT_THROW((void)m(0, 2), InvalidArgumentError);
}

TEST(DenseMatrix, MultiplyAgainstIdentity) {
    DenseMatrix m(2);
    m(0, 0) = {1.0, 2.0};
    m(0, 1) = {3.0, -1.0};
    m(1, 0) = {0.0, 0.5};
    m(1, 1) = {-2.0, 0.0};
    const DenseMatrix id = DenseMatrix::identity(2);
    EXPECT_TRUE(m.multiply(id).approxEquals(m));
    EXPECT_TRUE(id.multiply(m).approxEquals(m));
}

TEST(DenseMatrix, MultiplyMatchesManualComputation) {
    DenseMatrix a(2);
    a(0, 0) = {1.0, 0.0};
    a(0, 1) = {2.0, 0.0};
    a(1, 0) = {3.0, 0.0};
    a(1, 1) = {4.0, 0.0};
    DenseMatrix b(2);
    b(0, 0) = {0.0, 1.0};
    b(1, 1) = {1.0, 0.0};
    const DenseMatrix c = a.multiply(b);
    EXPECT_EQ(c(0, 0), (Complex{0.0, 1.0}));
    EXPECT_EQ(c(0, 1), (Complex{2.0, 0.0}));
    EXPECT_EQ(c(1, 0), (Complex{0.0, 3.0}));
    EXPECT_EQ(c(1, 1), (Complex{4.0, 0.0}));
}

TEST(DenseMatrix, MultiplyRejectsSizeMismatch) {
    EXPECT_THROW((void)DenseMatrix(2).multiply(DenseMatrix(3)), InvalidArgumentError);
}

TEST(DenseMatrix, AdjointConjugatesAndTransposes) {
    DenseMatrix m(2);
    m(0, 1) = {1.0, 2.0};
    const DenseMatrix adj = m.adjoint();
    EXPECT_EQ(adj(1, 0), (Complex{1.0, -2.0}));
    EXPECT_EQ(adj(0, 1), (Complex{0.0, 0.0}));
}

TEST(DenseMatrix, ApplyMatchesMatrixVectorProduct) {
    DenseMatrix m(2);
    m(0, 0) = {0.0, 0.0};
    m(0, 1) = {1.0, 0.0};
    m(1, 0) = {1.0, 0.0};
    m(1, 1) = {0.0, 0.0};
    const auto out = m.apply({{0.25, 0.0}, {0.75, 0.0}});
    EXPECT_EQ(out[0], (Complex{0.75, 0.0}));
    EXPECT_EQ(out[1], (Complex{0.25, 0.0}));
    EXPECT_THROW((void)m.apply(std::vector<Complex>(3)), InvalidArgumentError);
}

TEST(DenseMatrix, UnitarityDetection) {
    DenseMatrix swap(2);
    swap(0, 1) = {1.0, 0.0};
    swap(1, 0) = {1.0, 0.0};
    EXPECT_TRUE(swap.isUnitary());

    DenseMatrix notUnitary(2);
    notUnitary(0, 0) = {2.0, 0.0};
    notUnitary(1, 1) = {1.0, 0.0};
    EXPECT_FALSE(notUnitary.isUnitary());
}

TEST(DenseMatrix, MaxDeviation) {
    DenseMatrix a(2);
    DenseMatrix b(2);
    b(1, 1) = {0.0, 0.25};
    EXPECT_DOUBLE_EQ(a.maxDeviation(b), 0.25);
    EXPECT_TRUE(a.approxEquals(b, 0.3));
    EXPECT_FALSE(a.approxEquals(b, 0.2));
}

} // namespace
} // namespace mqsp
