#include "mqsp/complexnum/complex_table.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

TEST(ComplexTable, StartsEmpty) {
    ComplexTable table;
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.size(), 0U);
}

TEST(ComplexTable, InsertAssignsSequentialIds) {
    ComplexTable table;
    EXPECT_EQ(table.lookup({1.0, 0.0}), 0U);
    EXPECT_EQ(table.lookup({0.0, 1.0}), 1U);
    EXPECT_EQ(table.lookup({0.5, 0.5}), 2U);
    EXPECT_EQ(table.size(), 3U);
}

TEST(ComplexTable, DuplicateLookupReturnsSameId) {
    ComplexTable table;
    const auto id = table.lookup({0.25, -0.75});
    EXPECT_EQ(table.lookup({0.25, -0.75}), id);
    EXPECT_EQ(table.size(), 1U);
}

TEST(ComplexTable, UnifiesWithinTolerance) {
    ComplexTable table(1e-6);
    const auto id = table.lookup({1.0, 0.0});
    EXPECT_EQ(table.lookup({1.0 + 5e-7, -5e-7}), id);
    EXPECT_EQ(table.size(), 1U);
    EXPECT_NE(table.lookup({1.0 + 5e-5, 0.0}), id);
    EXPECT_EQ(table.size(), 2U);
}

TEST(ComplexTable, NearBucketBoundaryStillUnifies) {
    // Values straddling a grid cell boundary must still unify; the probe
    // covers adjacent buckets.
    const double tol = 1e-6;
    ComplexTable table(tol);
    // Pick a value right below a multiple of the cell size (4 * tol).
    const double cell = 4.0 * tol;
    const double value = 10.0 * cell - 1e-9;
    const auto id = table.lookup({value, 0.0});
    EXPECT_EQ(table.lookup({value + 5e-7, 0.0}), id);
    EXPECT_EQ(table.size(), 1U);
}

TEST(ComplexTable, ValueOfReturnsCanonicalEntry) {
    ComplexTable table;
    const auto id = table.lookup({0.125, 0.25});
    EXPECT_EQ(table.valueOf(id), (Complex{0.125, 0.25}));
    EXPECT_THROW((void)table.valueOf(99), InvalidArgumentError);
}

TEST(ComplexTable, ContainsQueriesWithoutInserting) {
    ComplexTable table;
    EXPECT_FALSE(table.contains({1.0, 1.0}));
    table.lookup({1.0, 1.0});
    EXPECT_TRUE(table.contains({1.0, 1.0}));
    EXPECT_TRUE(table.contains({1.0 + 1e-12, 1.0}));
    EXPECT_FALSE(table.contains({2.0, 1.0}));
    EXPECT_EQ(table.size(), 1U);
}

TEST(ComplexTable, ClearResetsEverything) {
    ComplexTable table;
    table.lookup({1.0, 0.0});
    table.lookup({2.0, 0.0});
    table.clear();
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.lookup({3.0, 0.0}), 0U);
}

TEST(ComplexTable, RejectsNonPositiveTolerance) {
    EXPECT_THROW(ComplexTable(0.0), InvalidArgumentError);
    EXPECT_THROW(ComplexTable(-1e-9), InvalidArgumentError);
}

TEST(ComplexTable, CountsDistinctValuesUnderNoise) {
    // 20 base values, each looked up 50 times with noise far below the
    // tolerance: the table must hold exactly 20 entries.
    ComplexTable table(1e-8);
    Rng rng(5);
    std::vector<Complex> bases;
    for (int i = 0; i < 20; ++i) {
        bases.emplace_back(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    for (int round = 0; round < 50; ++round) {
        for (const auto& base : bases) {
            table.lookup(base + Complex{rng.uniform(-1e-10, 1e-10),
                                        rng.uniform(-1e-10, 1e-10)});
        }
    }
    EXPECT_EQ(table.size(), bases.size());
}

TEST(ComplexTable, LargeRandomStressKeepsIdsStable) {
    ComplexTable table;
    Rng rng(77);
    std::vector<Complex> values;
    std::vector<std::size_t> ids;
    for (int i = 0; i < 2000; ++i) {
        const Complex value{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
        values.push_back(value);
        ids.push_back(table.lookup(value));
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_EQ(table.lookup(values[i]), ids[i]);
    }
}

} // namespace
} // namespace mqsp
