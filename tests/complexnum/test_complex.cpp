#include "mqsp/complexnum/complex.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(ApproxEqual, ExactValuesMatch) {
    EXPECT_TRUE(approxEqual({0.5, -0.25}, {0.5, -0.25}));
}

TEST(ApproxEqual, WithinToleranceMatches) {
    EXPECT_TRUE(approxEqual({1.0, 0.0}, {1.0 + 5e-11, -5e-11}));
    EXPECT_FALSE(approxEqual({1.0, 0.0}, {1.0 + 5e-9, 0.0}));
}

TEST(ApproxEqual, ComparesComponentwise) {
    // Componentwise comparison: both components must be within tolerance.
    EXPECT_FALSE(approxEqual({1.0, 0.0}, {1.0, 1e-9}));
    EXPECT_TRUE(approxEqual({1.0, 0.0}, {1.0, 1e-11}));
}

TEST(ApproxZero, DetectsSmallValues) {
    EXPECT_TRUE(approxZero({0.0, 0.0}));
    EXPECT_TRUE(approxZero({1e-12, -1e-12}));
    EXPECT_FALSE(approxZero({1e-9, 0.0}));
    EXPECT_FALSE(approxZero({0.0, -1e-9}));
}

TEST(ApproxOne, DetectsUnitValue) {
    EXPECT_TRUE(approxOne({1.0, 0.0}));
    EXPECT_TRUE(approxOne({1.0 - 1e-12, 1e-12}));
    EXPECT_FALSE(approxOne({-1.0, 0.0}));
    EXPECT_FALSE(approxOne({0.0, 1.0}));
}

TEST(SquaredMagnitude, MatchesDefinition) {
    EXPECT_DOUBLE_EQ(squaredMagnitude({3.0, 4.0}), 25.0);
    EXPECT_DOUBLE_EQ(squaredMagnitude({0.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(squaredMagnitude({-0.5, 0.0}), 0.25);
}

TEST(ToString, RealOnly) {
    EXPECT_EQ(toString({0.5, 0.0}), "0.5");
    EXPECT_EQ(toString({-2.0, 0.0}), "-2");
    EXPECT_EQ(toString({0.0, 0.0}), "0");
}

TEST(ToString, ImaginaryOnly) {
    EXPECT_EQ(toString({0.0, 1.0}), "1i");
    EXPECT_EQ(toString({0.0, -0.25}), "-0.25i");
}

TEST(ToString, MixedSigns) {
    EXPECT_EQ(toString({-0.5, 0.5}), "-0.5+0.5i");
    EXPECT_EQ(toString({0.5, -0.5}), "0.5-0.5i");
}

TEST(Tolerance, CustomToleranceIsRespected) {
    EXPECT_TRUE(approxEqual({1.0, 0.0}, {1.4, 0.0}, 0.5));
    EXPECT_FALSE(approxEqual({1.0, 0.0}, {1.6, 0.0}, 0.5));
    EXPECT_TRUE(approxZero({0.3, -0.3}, 0.5));
}

} // namespace
} // namespace mqsp
