#include "mqsp/support/error.hpp"
#include "mqsp/support/timing.hpp"
#include "mqsp/support/version.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace mqsp {
namespace {

TEST(Error, HierarchyIsCatchable) {
    // Every library error derives from mqsp::Error derives from
    // std::runtime_error, so callers can catch at any granularity.
    try {
        requireThat(false, "boom");
        FAIL() << "expected throw";
    } catch (const InvalidArgumentError& e) {
        EXPECT_EQ(std::string(e.what()), "boom");
    }
    try {
        ensureThat(false, "internal");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_EQ(std::string(e.what()), "internal");
    }
    EXPECT_THROW(detail::throwInvalidArgument("x"), std::runtime_error);
    EXPECT_THROW(detail::throwInternal("y"), std::runtime_error);
}

TEST(Error, ChecksPassSilently) {
    EXPECT_NO_THROW(requireThat(true, "unused"));
    EXPECT_NO_THROW(ensureThat(true, "unused"));
}

TEST(Error, InternalAndInvalidAreDistinct) {
    bool caughtInvalid = false;
    try {
        ensureThat(false, "internal bug");
    } catch (const InvalidArgumentError&) {
        caughtInvalid = true;
    } catch (const InternalError&) {
    }
    EXPECT_FALSE(caughtInvalid);
}

TEST(WallTimer, MeasuresElapsedTime) {
    WallTimer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double elapsed = timer.elapsedSeconds();
    EXPECT_GE(elapsed, 0.015);
    EXPECT_LT(elapsed, 5.0);
}

TEST(WallTimer, ResetRestartsTheClock) {
    WallTimer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    timer.reset();
    EXPECT_LT(timer.elapsedSeconds(), 0.015);
}

TEST(Version, IsSemanticVersionString) {
    const std::string version = versionString();
    EXPECT_FALSE(version.empty());
    EXPECT_NE(version.find('.'), std::string::npos);
}

} // namespace
} // namespace mqsp
