#include "mqsp/support/rwlock.hpp"

#include "mqsp/support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace mqsp::support {
namespace {

/// Spin until `predicate` holds (bounded; fails the test on timeout).
template <typename Predicate>
void awaitOrFail(const Predicate& predicate, const char* what) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!predicate()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "timed out waiting for " << what;
        std::this_thread::yield();
    }
}

TEST(RwLock, ReadersShareTheLockSimultaneously) {
    RwLock lock;
    constexpr unsigned kReaders = 6;
    std::atomic<unsigned> inside{0};
    std::atomic<bool> sawAllInside{false};
    parallel::runOnThreads(kReaders, [&](unsigned) {
        const SharedLockGuard guard(lock);
        inside.fetch_add(1);
        // Every reader waits until all of them hold the lock at once —
        // possible only if shared ownership genuinely overlaps.
        awaitOrFail([&] { return inside.load() == kReaders; }, "all readers inside");
        sawAllInside.store(true);
    });
    EXPECT_TRUE(sawAllInside.load());
    EXPECT_EQ(lock.activeReaders(), 0U);
}

TEST(RwLock, WriterExcludesReadersAndOtherWriters) {
    RwLock lock;
    std::atomic<int> insideWriter{0};
    std::atomic<int> maxSimultaneous{0};
    constexpr unsigned kThreads = 7;
    // A storm of writers incrementing a non-atomic counter under the
    // exclusive lock: any overlap corrupts the count (and trips TSan).
    std::uint64_t plainCounter = 0;
    parallel::runOnThreads(kThreads, [&](unsigned) {
        for (int i = 0; i < 200; ++i) {
            const ExclusiveLockGuard guard(lock);
            const int now = insideWriter.fetch_add(1) + 1;
            int seen = maxSimultaneous.load();
            while (now > seen && !maxSimultaneous.compare_exchange_weak(seen, now)) {
            }
            ++plainCounter;
            insideWriter.fetch_sub(1);
        }
    });
    EXPECT_EQ(maxSimultaneous.load(), 1);
    EXPECT_EQ(plainCounter, kThreads * 200ULL);
    EXPECT_FALSE(lock.writerActive());
}

TEST(RwLock, WaitingWriterBlocksUntilReadersDrain) {
    RwLock lock;
    lock.lockShared();
    std::atomic<bool> writerAcquired{false};
    std::thread writer([&] {
        const ExclusiveLockGuard guard(lock);
        writerAcquired.store(true);
    });
    // The writer registers as waiting but cannot acquire while the
    // reader holds the lock — observed through the lock's own state, not
    // through sleeps.
    awaitOrFail([&] { return lock.waitingWriters() == 1; }, "writer to register");
    EXPECT_FALSE(writerAcquired.load());
    EXPECT_FALSE(lock.writerActive());
    lock.unlockShared();
    writer.join();
    EXPECT_TRUE(writerAcquired.load());
}

TEST(RwLock, WriterPreferenceAdmitsTheWriterBeforeQueuedReaders) {
    RwLock lock;
    lock.lockShared(); // reader 1 holds the lock
    std::atomic<int> nextTicket{0};
    std::atomic<int> writerTicket{-1};
    std::atomic<int> readerTicket{-1};
    std::thread writer([&] {
        const ExclusiveLockGuard guard(lock);
        writerTicket.store(nextTicket.fetch_add(1));
    });
    awaitOrFail([&] { return lock.waitingWriters() == 1; }, "writer to register");
    // Reader 2 arrives while the writer waits: preference says it must
    // queue behind the writer even though the lock is only shared now.
    std::thread reader([&] {
        const SharedLockGuard guard(lock);
        readerTicket.store(nextTicket.fetch_add(1));
    });
    // Nothing can move while reader 1 holds the lock: the writer waits on
    // the active reader, and reader 2 waits on the registered writer — so
    // both tickets are deterministically unassigned here.
    EXPECT_EQ(writerTicket.load(), -1);
    EXPECT_EQ(readerTicket.load(), -1);
    // Release reader 1: the writer must win by policy, not by timing.
    lock.unlockShared();
    writer.join();
    reader.join();
    EXPECT_EQ(writerTicket.load(), 0);
    EXPECT_EQ(readerTicket.load(), 1);
}

TEST(RwLock, MixedStormMaintainsExclusionInvariants) {
    RwLock lock;
    std::atomic<int> readers{0};
    std::atomic<int> writers{0};
    std::atomic<bool> violation{false};
    parallel::runOnThreads(8, [&](unsigned index) {
        const bool isWriter = index % 4 == 0; // 2 writers, 6 readers
        for (int i = 0; i < 300; ++i) {
            if (isWriter) {
                const ExclusiveLockGuard guard(lock);
                writers.fetch_add(1);
                if (readers.load() != 0 || writers.load() != 1) {
                    violation.store(true);
                }
                writers.fetch_sub(1);
            } else {
                const SharedLockGuard guard(lock);
                readers.fetch_add(1);
                if (writers.load() != 0) {
                    violation.store(true);
                }
                readers.fetch_sub(1);
            }
        }
    });
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(lock.activeReaders(), 0U);
    EXPECT_EQ(lock.waitingWriters(), 0U);
    EXPECT_FALSE(lock.writerActive());
}

} // namespace
} // namespace mqsp::support
