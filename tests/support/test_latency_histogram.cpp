#include "mqsp/support/latency_histogram.hpp"

#include "mqsp/support/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace mqsp::support {
namespace {

TEST(LatencyHistogram, BucketBoundariesFollowBitWidth) {
    // Bucket b holds samples whose bit width is b: 0 is its own bucket,
    // each power of two opens the next one.
    EXPECT_EQ(LatencyHistogram::bucketFor(0), 0U);
    EXPECT_EQ(LatencyHistogram::bucketFor(1), 1U);
    EXPECT_EQ(LatencyHistogram::bucketFor(2), 2U);
    EXPECT_EQ(LatencyHistogram::bucketFor(3), 2U);
    EXPECT_EQ(LatencyHistogram::bucketFor(4), 3U);
    EXPECT_EQ(LatencyHistogram::bucketFor(1023), 10U);
    EXPECT_EQ(LatencyHistogram::bucketFor(1024), 11U);
    EXPECT_EQ(LatencyHistogram::bucketFor(std::numeric_limits<std::uint64_t>::max()), 64U);

    EXPECT_EQ(LatencyHistogram::bucketUpperBoundNs(0), 0U);
    EXPECT_EQ(LatencyHistogram::bucketUpperBoundNs(1), 1U);
    EXPECT_EQ(LatencyHistogram::bucketUpperBoundNs(2), 3U);
    EXPECT_EQ(LatencyHistogram::bucketUpperBoundNs(10), 1023U);
    EXPECT_EQ(LatencyHistogram::bucketUpperBoundNs(64),
              std::numeric_limits<std::uint64_t>::max());

    // Round trip: every sample is bounded by its own bucket's upper bound,
    // and exceeds the previous bucket's.
    for (const std::uint64_t ns : {0ULL, 1ULL, 7ULL, 8ULL, 1000ULL, 123456789ULL}) {
        const std::size_t bucket = LatencyHistogram::bucketFor(ns);
        EXPECT_LE(ns, LatencyHistogram::bucketUpperBoundNs(bucket)) << ns;
        if (bucket > 0) {
            EXPECT_GT(ns, LatencyHistogram::bucketUpperBoundNs(bucket - 1)) << ns;
        }
    }
}

TEST(LatencyHistogram, RecordFillsTheRightBucketAndTracksExactMax) {
    LatencyHistogram histogram;
    EXPECT_EQ(histogram.count(), 0U);
    EXPECT_EQ(histogram.maxNs(), 0U);
    EXPECT_EQ(histogram.quantileNs(0.5), 0U);

    histogram.record(0);
    histogram.record(5);    // bucket 3
    histogram.record(6);    // bucket 3
    histogram.record(900);  // bucket 10
    EXPECT_EQ(histogram.count(), 4U);
    EXPECT_EQ(histogram.bucketCount(0), 1U);
    EXPECT_EQ(histogram.bucketCount(3), 2U);
    EXPECT_EQ(histogram.bucketCount(10), 1U);
    EXPECT_EQ(histogram.maxNs(), 900U); // exact, not the 1023 bucket bound
}

TEST(LatencyHistogram, QuantilesReturnNearestRankBucketUpperBounds) {
    LatencyHistogram histogram;
    // 10 samples: ranks 1..10 land in buckets 3 (x5), 10 (x4), 21 (x1).
    for (int i = 0; i < 5; ++i) {
        histogram.record(7); // bucket 3, bound 7
    }
    for (int i = 0; i < 4; ++i) {
        histogram.record(1000); // bucket 10, bound 1023
    }
    histogram.record(2'000'000); // bucket 21, bound 2097151
    EXPECT_EQ(histogram.quantileNs(0.50), 7U);       // rank 5
    EXPECT_EQ(histogram.quantileNs(0.60), 1023U);    // rank 6
    EXPECT_EQ(histogram.quantileNs(0.90), 1023U);    // rank 9
    EXPECT_EQ(histogram.quantileNs(0.99), 2097151U); // rank 10
    EXPECT_EQ(histogram.quantileNs(1.0), 2097151U);
    // Monotone in q.
    EXPECT_LE(histogram.quantileNs(0.25), histogram.quantileNs(0.75));
}

TEST(LatencyHistogram, ConcurrentIncrementsSumExactly) {
    LatencyHistogram histogram;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 5000;
    parallel::runOnThreads(kThreads, [&](unsigned) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            // Mix buckets so the threads contend on several counters; the
            // per-bucket split is deterministic by construction.
            histogram.record(i % 2 == 0 ? 10 : 100000);
        }
    });
    EXPECT_EQ(histogram.count(), kThreads * kPerThread);
    EXPECT_EQ(histogram.bucketCount(LatencyHistogram::bucketFor(10)),
              kThreads * kPerThread / 2);
    EXPECT_EQ(histogram.bucketCount(LatencyHistogram::bucketFor(100000)),
              kThreads * kPerThread / 2);
    EXPECT_EQ(histogram.maxNs(), 100000U);
}

TEST(LatencyHistogram, ResetForgetsEverySample) {
    LatencyHistogram histogram;
    histogram.record(42);
    histogram.record(7777);
    ASSERT_EQ(histogram.count(), 2U);
    histogram.reset();
    EXPECT_EQ(histogram.count(), 0U);
    EXPECT_EQ(histogram.maxNs(), 0U);
    EXPECT_EQ(histogram.quantileNs(0.99), 0U);
}

} // namespace
} // namespace mqsp::support
