#include "mqsp/support/parse.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace mqsp {
namespace {

TEST(TryUint64, ParsesPlainDecimals) {
    EXPECT_EQ(parse::tryUint64("0"), 0U);
    EXPECT_EQ(parse::tryUint64("42"), 42U);
    EXPECT_EQ(parse::tryUint64("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(TryUint64, RejectsEmptyAndSigns) {
    EXPECT_FALSE(parse::tryUint64("").has_value());
    EXPECT_FALSE(parse::tryUint64("-1").has_value());
    EXPECT_FALSE(parse::tryUint64("+1").has_value());
    EXPECT_FALSE(parse::tryUint64("-0").has_value());
}

TEST(TryUint64, RejectsTrailingAndEmbeddedJunk) {
    EXPECT_FALSE(parse::tryUint64("12x").has_value());
    EXPECT_FALSE(parse::tryUint64("1 2").has_value());
    EXPECT_FALSE(parse::tryUint64(" 12").has_value());
    EXPECT_FALSE(parse::tryUint64("12 ").has_value());
    EXPECT_FALSE(parse::tryUint64("q").has_value());
    EXPECT_FALSE(parse::tryUint64("0x10").has_value());
    EXPECT_FALSE(parse::tryUint64("1e3").has_value());
    EXPECT_FALSE(parse::tryUint64("12.0").has_value());
}

TEST(TryUint64, RejectsOverflow) {
    // One past 2^64 - 1, and something absurdly long.
    EXPECT_FALSE(parse::tryUint64("18446744073709551616").has_value());
    EXPECT_FALSE(parse::tryUint64("99999999999999999999999999").has_value());
}

TEST(TryDouble, ParsesFixedAndScientific) {
    EXPECT_DOUBLE_EQ(parse::tryDouble("0").value(), 0.0);
    EXPECT_DOUBLE_EQ(parse::tryDouble("-2.5").value(), -2.5);
    EXPECT_DOUBLE_EQ(parse::tryDouble("1e3").value(), 1000.0);
    EXPECT_DOUBLE_EQ(parse::tryDouble("-1.25E-2").value(), -0.0125);
    EXPECT_DOUBLE_EQ(parse::tryDouble(".5").value(), 0.5);
}

TEST(TryDouble, RejectsEmptyAndJunk) {
    EXPECT_FALSE(parse::tryDouble("").has_value());
    EXPECT_FALSE(parse::tryDouble("abc").has_value());
    EXPECT_FALSE(parse::tryDouble("1.5x").has_value());
    EXPECT_FALSE(parse::tryDouble("1.5 ").has_value());
    EXPECT_FALSE(parse::tryDouble(" 1.5").has_value());
    EXPECT_FALSE(parse::tryDouble("1,5").has_value());
}

TEST(ClipForMessage, ShortTextPassesThrough) {
    EXPECT_EQ(parse::clipForMessage("hello"), "hello");
    EXPECT_EQ(parse::clipForMessage(""), "");
}

TEST(ClipForMessage, MasksControlBytes) {
    // Quoted untrusted text must not smuggle newlines (which would break a
    // one-line wire reply) or terminal escapes into a diagnostic.
    EXPECT_EQ(parse::clipForMessage(std::string("a\nb\rc\x1b[31md\x7f", 12)), "a?b?c?[31md?");
    EXPECT_EQ(parse::clipForMessage(std::string(1, '\0')), "?");
}

TEST(ClipForMessage, LongTextIsTruncatedWithEllipsis) {
    const std::string longText(500, 'a');
    const std::string clipped = parse::clipForMessage(longText);
    EXPECT_EQ(clipped.size(), 96U + 3U);
    EXPECT_EQ(clipped.substr(96), "...");
    EXPECT_EQ(parse::clipForMessage(longText, 8), std::string(8, 'a') + "...");
}

TEST(ParseUint64Throwing, SuccessAndErrorMessage) {
    EXPECT_EQ(parse::uint64("7", "--shots"), 7U);
    try {
        (void)parse::uint64("junk", "--shots");
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("--shots"), std::string::npos) << what;
        EXPECT_NE(what.find("non-negative integer"), std::string::npos) << what;
        EXPECT_NE(what.find("'junk'"), std::string::npos) << what;
    }
}

TEST(ParseUint64Throwing, OverlongInputIsClippedInMessage) {
    const std::string attack(4000, '9');
    try {
        (void)parse::uint64(attack + "x", "--count");
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        // The diagnostic quotes at most the clipped prefix, never the
        // whole hostile token.
        EXPECT_LT(std::string(error.what()).size(), 256U);
    }
}

TEST(ParseRealThrowing, SuccessAndErrorMessage) {
    EXPECT_DOUBLE_EQ(parse::real("-0.5", "--approx"), -0.5);
    try {
        (void)parse::real("half", "--approx");
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("--approx"), std::string::npos) << what;
        EXPECT_NE(what.find("expects a number"), std::string::npos) << what;
        EXPECT_NE(what.find("'half'"), std::string::npos) << what;
    }
}

} // namespace
} // namespace mqsp
