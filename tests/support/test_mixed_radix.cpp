#include "mqsp/support/error.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mqsp {
namespace {

TEST(MixedRadix, SingleQuditStrides) {
    const MixedRadix radix({5});
    EXPECT_EQ(radix.numQudits(), 1U);
    EXPECT_EQ(radix.totalDimension(), 5U);
    EXPECT_EQ(radix.strideAt(0), 1U);
}

TEST(MixedRadix, MixedStridesMostSignificantFirst) {
    const MixedRadix radix({3, 6, 2});
    EXPECT_EQ(radix.totalDimension(), 36U);
    EXPECT_EQ(radix.strideAt(0), 12U);
    EXPECT_EQ(radix.strideAt(1), 2U);
    EXPECT_EQ(radix.strideAt(2), 1U);
}

TEST(MixedRadix, IndexOfMatchesManualComputation) {
    const MixedRadix radix({3, 6, 2});
    EXPECT_EQ(radix.indexOf({0, 0, 0}), 0U);
    EXPECT_EQ(radix.indexOf({0, 0, 1}), 1U);
    EXPECT_EQ(radix.indexOf({0, 1, 0}), 2U);
    EXPECT_EQ(radix.indexOf({1, 0, 0}), 12U);
    EXPECT_EQ(radix.indexOf({2, 5, 1}), 35U);
}

TEST(MixedRadix, DigitsOfInvertsIndexOf) {
    const MixedRadix radix({4, 3, 5, 2});
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        const auto digits = radix.digitsOf(index);
        EXPECT_EQ(radix.indexOf(digits), index);
    }
}

TEST(MixedRadix, DigitAtAgreesWithDigitsOf) {
    const MixedRadix radix({2, 7, 3});
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        const auto digits = radix.digitsOf(index);
        for (std::size_t site = 0; site < radix.numQudits(); ++site) {
            EXPECT_EQ(radix.digitAt(index, site), digits[site]);
        }
    }
}

TEST(MixedRadix, IncrementWalksAllIndicesInOrder) {
    const MixedRadix radix({3, 2, 4});
    Digits digits(3, 0);
    std::uint64_t expected = 0;
    do {
        EXPECT_EQ(radix.indexOf(digits), expected);
        ++expected;
    } while (radix.increment(digits));
    EXPECT_EQ(expected, radix.totalDimension());
    EXPECT_EQ(digits, (Digits{0, 0, 0}));
}

TEST(MixedRadix, RejectsDimensionBelowTwo) {
    EXPECT_THROW(MixedRadix({3, 1, 2}), InvalidArgumentError);
    EXPECT_THROW(MixedRadix({0}), InvalidArgumentError);
}

TEST(MixedRadix, RejectsEmptyDimensionList) {
    EXPECT_THROW(MixedRadix(Dimensions{}), InvalidArgumentError);
}

TEST(MixedRadix, RejectsOutOfRangeDigits) {
    const MixedRadix radix({3, 2});
    EXPECT_THROW((void)radix.indexOf({3, 0}), InvalidArgumentError);
    EXPECT_THROW((void)radix.indexOf({0, 2}), InvalidArgumentError);
    EXPECT_THROW((void)radix.indexOf({0}), InvalidArgumentError);
    EXPECT_THROW((void)radix.digitsOf(6), InvalidArgumentError);
}

TEST(MixedRadix, UniformDetection) {
    EXPECT_TRUE(MixedRadix({2, 2, 2}).isUniform());
    EXPECT_TRUE(MixedRadix({7}).isUniform());
    EXPECT_FALSE(MixedRadix({2, 3}).isUniform());
}

TEST(MixedRadix, KetStringFormat) {
    EXPECT_EQ(MixedRadix::toKetString({2, 0, 1}), "|2 0 1>");
}

TEST(ParseDimensionSpec, PlainList) {
    EXPECT_EQ(parseDimensionSpec("3,6,2"), (Dimensions{3, 6, 2}));
}

TEST(ParseDimensionSpec, GroupedNotation) {
    EXPECT_EQ(parseDimensionSpec("[1x3,1x6,1x2]"), (Dimensions{3, 6, 2}));
    EXPECT_EQ(parseDimensionSpec("[3x4,1x7]"), (Dimensions{4, 4, 4, 7}));
    EXPECT_EQ(parseDimensionSpec("2x6, 1x5, 2x3"), (Dimensions{6, 6, 5, 3, 3}));
}

TEST(ParseDimensionSpec, RejectsGarbage) {
    EXPECT_THROW(parseDimensionSpec(""), InvalidArgumentError);
    EXPECT_THROW(parseDimensionSpec("3,,2"), InvalidArgumentError);
    EXPECT_THROW(parseDimensionSpec("0x3"), InvalidArgumentError);
    EXPECT_THROW(parseDimensionSpec("2x1"), InvalidArgumentError);
}

/// The thrown message must name the offending entry — the error is the
/// user's only clue which piece of a long spec was malformed.
void expectSpecError(const std::string& spec, const std::string& fragment) {
    try {
        (void)parseDimensionSpec(spec);
        FAIL() << "expected InvalidArgumentError for spec '" << spec << "'";
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
            << "spec '" << spec << "' produced: " << error.what();
    }
}

TEST(ParseDimensionSpec, NonNumericEntriesNameTheEntry) {
    expectSpecError("2xq", "dimension in entry '2xq'");
    expectSpecError("3,6,two", "dimension in entry 'two'");
    expectSpecError("qx2", "count in entry 'qx2'");
    expectSpecError("2.5", "dimension in entry '2.5'");
}

TEST(ParseDimensionSpec, RejectsSignedEntries) {
    // Raw stoull would silently wrap "-3" to a huge unsigned value; the
    // strict parser refuses any sign character outright.
    expectSpecError("-3x2", "count in entry '-3x2'");
    expectSpecError("3,-6,2", "dimension in entry '-6'");
    expectSpecError("+2", "dimension in entry '+2'");
}

TEST(ParseDimensionSpec, RejectsDanglingCross) {
    expectSpecError("3x", "malformed CountxDimension entry '3x'");
    expectSpecError("x3", "malformed CountxDimension entry 'x3'");
}

TEST(ParseDimensionSpec, RejectsOverflowingDimension) {
    // Past 64 bits, and past the 32-bit Dimension type.
    expectSpecError("99999999999999999999999999", "dimension in entry");
    expectSpecError("4294967296", "dimension overflows in entry '4294967296'");
}

TEST(ParseDimensionSpec, RejectsHugeRegisters) {
    // A count that would allocate gigabytes must refuse before sizing
    // anything, in one entry or accumulated across entries.
    expectSpecError("2000000x2", "register exceeds");
    expectSpecError("1000000x2,1000000x3", "register exceeds");
    expectSpecError("99999999999999999999x2", "count in entry");
}

TEST(ParseDimensionSpec, AcceptsRegisterAtTheQuditCap) {
    const Dimensions dims = parseDimensionSpec("1048576x2");
    EXPECT_EQ(dims.size(), 1048576U);
    EXPECT_EQ(dims.front(), 2U);
}

TEST(FormatDimensionSpec, RoundTripsGroupedRuns) {
    EXPECT_EQ(formatDimensionSpec({4, 4, 4, 7, 3, 5}), "[3x4,1x7,1x3,1x5]");
    EXPECT_EQ(formatDimensionSpec({3, 6, 2}), "[1x3,1x6,1x2]");
    EXPECT_EQ(parseDimensionSpec(formatDimensionSpec({6, 6, 5, 3, 3})),
              (Dimensions{6, 6, 5, 3, 3}));
}

class MixedRadixRoundTrip : public ::testing::TestWithParam<Dimensions> {};

TEST_P(MixedRadixRoundTrip, AllIndicesRoundTrip) {
    const MixedRadix radix(GetParam());
    const std::uint64_t total = radix.totalDimension();
    std::uint64_t product = 1;
    for (const auto d : GetParam()) {
        product *= d;
    }
    EXPECT_EQ(total, product);
    for (std::uint64_t index = 0; index < total; ++index) {
        EXPECT_EQ(radix.indexOf(radix.digitsOf(index)), index);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperRegisters, MixedRadixRoundTrip,
                         ::testing::Values(Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3},
                                           Dimensions{6, 6, 5, 3, 3},
                                           Dimensions{5, 4, 2, 5, 5, 2},
                                           Dimensions{4, 7, 4, 4, 3, 5}, Dimensions{2, 2},
                                           Dimensions{2, 2, 2, 2, 2, 2, 2, 2}));

} // namespace
} // namespace mqsp
