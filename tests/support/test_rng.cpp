#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mqsp {
namespace {

TEST(Rng, DeterministicWithSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    bool anyDifferent = false;
    for (int i = 0; i < 10; ++i) {
        anyDifferent |= a.uniform01() != b.uniform01();
    }
    EXPECT_TRUE(anyDifferent);
}

TEST(Rng, Uniform01StaysInRange) {
    Rng rng;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.5, 3.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 3.5);
    }
}

TEST(Rng, UniformIndexCoversRangeAndRejectsZero) {
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.uniformIndex(5);
        EXPECT_LT(v, 5U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5U);
    EXPECT_THROW(rng.uniformIndex(0), InvalidArgumentError);
}

TEST(Rng, ChildSeedsAreDistinct) {
    Rng rng(123);
    std::set<std::uint64_t> seeds;
    for (int i = 0; i < 100; ++i) {
        seeds.insert(rng.childSeed());
    }
    EXPECT_EQ(seeds.size(), 100U);
}

TEST(Rng, GaussianHasPlausibleMoments) {
    Rng rng(2024);
    double sum = 0.0;
    double sumSquares = 0.0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sumSquares += v * v;
    }
    const double mean = sum / kSamples;
    const double variance = sumSquares / kSamples - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(variance, 1.0, 0.05);
}

} // namespace
} // namespace mqsp
