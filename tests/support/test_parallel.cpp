// Tests for the parallel execution layer (support/parallel.hpp): pool
// lifecycle, chunk coverage across grain-size edge cases, exception
// propagation out of workers, nested-use refusal, and the ordered-chunk
// determinism contract of parallelReduce.

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mqsp::parallel {
namespace {

/// Every test runs the library-wide entry points at a known thread count
/// and restores the previous configuration afterwards (the library's own
/// ScopedThreadCount), so suites can run in any order (and under any
/// MQSP_THREADS).
using ScopedThreads = ScopedThreadCount;

TEST(ExecutionConfig, ResolvePrefersExplicitRequest) {
    EXPECT_EQ(resolveThreadCount(3), 3U);
    EXPECT_EQ(resolveThreadCount(1), 1U);
}

TEST(ExecutionConfig, ResolveFallsBackToHardware) {
    // With no request and no env var the hardware count wins.
    const char* saved = std::getenv("MQSP_THREADS");
    const std::string savedValue = saved ? saved : "";
    ::unsetenv("MQSP_THREADS");
    EXPECT_EQ(resolveThreadCount(0), hardwareThreads());
    EXPECT_GE(hardwareThreads(), 1U);
    if (saved != nullptr) {
        ::setenv("MQSP_THREADS", savedValue.c_str(), 1);
    }
}

TEST(ExecutionConfig, ResolveReadsEnvironment) {
    const char* saved = std::getenv("MQSP_THREADS");
    const std::string savedValue = saved ? saved : "";
    ::setenv("MQSP_THREADS", "5", 1);
    EXPECT_EQ(resolveThreadCount(0), 5U);
    // An explicit request still wins over the environment.
    EXPECT_EQ(resolveThreadCount(2), 2U);
    // 0 means automatic, same as unset.
    ::setenv("MQSP_THREADS", "0", 1);
    EXPECT_EQ(resolveThreadCount(0), hardwareThreads());
    ::setenv("MQSP_THREADS", "banana", 1);
    EXPECT_THROW((void)resolveThreadCount(0), InvalidArgumentError);
    ::setenv("MQSP_THREADS", "-2", 1);
    EXPECT_THROW((void)resolveThreadCount(0), InvalidArgumentError);
    if (saved != nullptr) {
        ::setenv("MQSP_THREADS", savedValue.c_str(), 1);
    } else {
        ::unsetenv("MQSP_THREADS");
    }
}

TEST(ExecutionConfig, GlobalConfigReflectsSetting) {
    const ScopedThreads scope(3);
    EXPECT_EQ(globalThreads(), 3U);
    EXPECT_EQ(globalExecutionConfig(), ExecutionConfig{3});
}

TEST(ScopedThreadCountGuard, PinsAndRestoresTheGlobalWidth) {
    const ScopedThreads outer(2);
    {
        const ScopedThreadCount pin(5);
        EXPECT_EQ(globalThreads(), 5U);
    }
    EXPECT_EQ(globalThreads(), 2U);
    {
        const ScopedThreadCount follow(0); // 0 = follow the ambient setting
        EXPECT_EQ(globalThreads(), 2U);
    }
    EXPECT_EQ(globalThreads(), 2U);
}

TEST(ScopedThreadCountGuard, NoOpInsideParallelRegion) {
    const ScopedThreads outer(2);
    parallelFor(std::uint64_t{0}, std::uint64_t{8}, 1, [&](std::uint64_t, std::uint64_t) {
        // Reconfiguring mid-region is forbidden; the guard must degrade to
        // a no-op instead of throwing out of the worker.
        const ScopedThreadCount nested(5);
        EXPECT_EQ(globalThreads(), 2U);
    });
    EXPECT_EQ(globalThreads(), 2U);
}

TEST(TaskPoolLifecycle, ConstructAndDestroyRepeatedly) {
    for (unsigned threads = 1; threads <= 8; ++threads) {
        TaskPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        std::atomic<std::uint64_t> sum{0};
        auto body = [&sum](std::uint64_t begin, std::uint64_t end) {
            sum.fetch_add(end - begin, std::memory_order_relaxed);
        };
        pool.run(0, 1000, 7, detail::ChunkFnRef(body));
        EXPECT_EQ(sum.load(), 1000U);
    }
}

TEST(TaskPoolLifecycle, GlobalReconfigurationCycles) {
    const unsigned previous = globalThreads();
    for (const unsigned threads : {4U, 1U, 2U, 1U, 4U}) {
        setGlobalThreads(threads);
        EXPECT_EQ(globalThreads(), threads);
        std::vector<int> hits(257, 0);
        parallelFor(std::uint64_t{0}, hits.size(), 16,
                    [&](std::uint64_t begin, std::uint64_t end) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                            hits[i] += 1;
                        }
                    });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                  static_cast<int>(hits.size()));
    }
    setGlobalThreads(previous);
}

class ParallelForCoverage : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelForCoverage, EveryIndexVisitedExactlyOnce) {
    const ScopedThreads scope(GetParam());
    // Grain edge cases: 1 (maximal chunking), a non-divisor, the exact
    // range length, larger than the range, and the clamp of grain 0.
    for (const std::uint64_t grain : {std::uint64_t{1}, std::uint64_t{3}, std::uint64_t{100},
                                      std::uint64_t{1000}, std::uint64_t{0}}) {
        std::vector<std::atomic<int>> visits(100);
        parallelFor(std::uint64_t{0}, visits.size(), grain,
                    [&](std::uint64_t begin, std::uint64_t end) {
                        ASSERT_LE(begin, end);
                        for (std::uint64_t i = begin; i < end; ++i) {
                            visits[i].fetch_add(1, std::memory_order_relaxed);
                        }
                    });
        for (const auto& count : visits) {
            EXPECT_EQ(count.load(), 1);
        }
    }
}

TEST_P(ParallelForCoverage, EmptyRangeRunsNothing) {
    const ScopedThreads scope(GetParam());
    bool called = false;
    parallelFor(std::uint64_t{5}, std::uint64_t{5}, 4,
                [&](std::uint64_t, std::uint64_t) { called = true; });
    parallelFor(std::uint64_t{7}, std::uint64_t{3}, 4,
                [&](std::uint64_t, std::uint64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST_P(ParallelForCoverage, ExceptionPropagatesToCaller) {
    const ScopedThreads scope(GetParam());
    EXPECT_THROW(
        parallelFor(std::uint64_t{0}, std::uint64_t{1000}, 10,
                    [&](std::uint64_t begin, std::uint64_t end) {
                        // Fires whichever chunk covers index 500, whatever
                        // the partition (including the inline whole-range
                        // chunk at 1 thread).
                        if (begin <= 500 && 500 < end) {
                            throw std::runtime_error("chunk failed");
                        }
                    }),
        std::runtime_error);
    // The pool survives a throwing region and keeps working.
    std::atomic<std::uint64_t> sum{0};
    parallelFor(std::uint64_t{0}, std::uint64_t{100}, 10,
                [&](std::uint64_t begin, std::uint64_t end) {
                    sum.fetch_add(end - begin, std::memory_order_relaxed);
                });
    EXPECT_EQ(sum.load(), 100U);
}

TEST_P(ParallelForCoverage, LibraryExceptionTypeSurvives) {
    const ScopedThreads scope(GetParam());
    try {
        parallelFor(std::uint64_t{0}, std::uint64_t{64}, 4, [&](std::uint64_t, std::uint64_t) {
            mqsp::detail::throwInvalidArgument("typed failure");
        });
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        EXPECT_STREQ(error.what(), "typed failure");
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForCoverage, ::testing::Values(1U, 2U, 4U),
                         [](const auto& paramInfo) {
                             return "t" + std::to_string(paramInfo.param);
                         });

TEST(NestedUseRefusal, InnerCallsRunInlineWithoutDeadlock) {
    const ScopedThreads scope(4);
    std::atomic<std::uint64_t> total{0};
    std::atomic<int> nestedParallelObserved{0};
    parallelFor(std::uint64_t{0}, std::uint64_t{64}, 1, [&](std::uint64_t, std::uint64_t) {
        EXPECT_TRUE(insideParallelRegion());
        // The nested region must refuse the pool (it would deadlock a
        // 1-worker pool and over-subscribe any other) and run inline.
        parallelFor(std::uint64_t{0}, std::uint64_t{100}, 1,
                    [&](std::uint64_t begin, std::uint64_t end) {
                        if (begin == 0 && end == 100) {
                            nestedParallelObserved.fetch_add(1);
                        }
                        total.fetch_add(end - begin, std::memory_order_relaxed);
                    });
    });
    EXPECT_EQ(total.load(), 64U * 100U);
    // Inline execution hands the nested body the whole range in one chunk.
    EXPECT_EQ(nestedParallelObserved.load(), 64);
    EXPECT_FALSE(insideParallelRegion());
}

TEST(NestedUseRefusal, ReconfigurationInsideRegionIsRefused) {
    const ScopedThreads scope(2);
    EXPECT_THROW(parallelFor(std::uint64_t{0}, std::uint64_t{8}, 1,
                             [&](std::uint64_t, std::uint64_t) { setGlobalThreads(3); }),
                 InternalError);
}

TEST(ParallelReduceDeterminism, SumBitIdenticalAcrossThreadCounts) {
    // An ill-conditioned sum: magnitudes spanning ~16 decimal orders, so any
    // reassociation of the additions changes the low bits.
    std::vector<double> values(10'000);
    for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = (i % 7 == 0 ? 1e12 : 1e-4) * (1.0 + static_cast<double>(i % 97) / 96.0);
    }
    const auto sumAt = [&](unsigned threads) {
        const ScopedThreads scope(threads);
        return parallelReduce(
            std::uint64_t{0}, values.size(), 128, 0.0,
            [&](std::uint64_t begin, std::uint64_t end) {
                double sum = 0.0;
                for (std::uint64_t i = begin; i < end; ++i) {
                    sum += values[i];
                }
                return sum;
            },
            [](double acc, double partial) { return acc + partial; });
    };
    const double serial = sumAt(1);
    EXPECT_EQ(serial, sumAt(2));
    EXPECT_EQ(serial, sumAt(4));
    EXPECT_EQ(serial, sumAt(7));
}

TEST(ParallelReduceDeterminism, MatchesManualChunkOrderedSum) {
    std::vector<double> values(1000);
    for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = 1.0 / (1.0 + static_cast<double>(i));
    }
    constexpr std::uint64_t kGrain = 64;
    double expected = 0.0;
    for (std::uint64_t chunkBegin = 0; chunkBegin < values.size(); chunkBegin += kGrain) {
        const std::uint64_t chunkEnd = std::min<std::uint64_t>(chunkBegin + kGrain,
                                                               values.size());
        double partial = 0.0;
        for (std::uint64_t i = chunkBegin; i < chunkEnd; ++i) {
            partial += values[i];
        }
        expected += partial;
    }
    const ScopedThreads scope(4);
    const double actual = parallelReduce(
        std::uint64_t{0}, values.size(), kGrain, 0.0,
        [&](std::uint64_t begin, std::uint64_t end) {
            double sum = 0.0;
            for (std::uint64_t i = begin; i < end; ++i) {
                sum += values[i];
            }
            return sum;
        },
        [](double acc, double partial) { return acc + partial; });
    EXPECT_EQ(expected, actual);
}

TEST(ParallelReduceDeterminism, EmptyRangeYieldsIdentity) {
    const ScopedThreads scope(4);
    const double result = parallelReduce(
        std::uint64_t{10}, std::uint64_t{10}, 8, 42.0,
        [](std::uint64_t, std::uint64_t) { return 1.0; },
        [](double acc, double partial) { return acc + partial; });
    EXPECT_EQ(result, 42.0);
}

} // namespace
} // namespace mqsp::parallel
