// Streaming replay end to end: MQSP-QASM text -> GateStream ->
// EvaluationBackend::verifyStream, across thread counts. The streaming
// path inherits the deterministic-interning contract of the DD session,
// so checkpoint fidelities and the session dd_nodes must be bit-identical
// at every width — including the deliberately odd t7 — and must agree
// with the non-streaming replay of the same circuit. Torn and hostile
// streams must fail cleanly (InvalidArgumentError, session intact), never
// corrupt state or escape as bare stdlib exceptions.

#include "mqsp/circuit/qasm.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace mqsp {
namespace {

using ScopedThreads = parallel::ScopedThreadCount;

/// One streamed replay on a fresh dd backend: QASM text in, checkpoint
/// trace and session pool size out.
struct StreamOutcome {
    std::vector<double> checkpointFidelities;
    std::vector<std::uint64_t> checkpointNodes;
    double finalFidelity = 0.0;
    std::uint64_t ddNodes = 0;
    std::uint64_t ops = 0;
};

StreamOutcome replayStream(const std::string& text, const EvalState& target,
                           std::uint64_t checkpointInterval) {
    const DdBackend backend;
    std::istringstream in(text);
    GateStream stream(in);
    VerifyRequest request;
    request.target = &target;
    request.checkpointInterval = checkpointInterval;
    const VerifyReport report = backend.verifyStream(stream, request);
    StreamOutcome outcome;
    for (const ReplayCheckpoint& checkpoint : report.checkpoints) {
        outcome.checkpointFidelities.push_back(checkpoint.fidelity);
        outcome.checkpointNodes.push_back(checkpoint.ddNodes);
    }
    outcome.finalFidelity = report.fidelity;
    outcome.ddNodes = report.ddNodes;
    outcome.ops = report.ops;
    return outcome;
}

TEST(StreamingDeterminism, CheckpointTraceBitIdenticalAcrossThreadCounts) {
    for (const Dimensions& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        const StateVector ghz = states::ghz(dims);
        const auto prep = prepareExact(ghz);
        const std::string text = toQasm(prep.circuit);
        const EvalState target(ghz);

        StreamOutcome base;
        {
            const ScopedThreads scope(1);
            base = replayStream(text, target, 4);
        }
        EXPECT_EQ(base.ops, prep.circuit.numOperations());
        EXPECT_NEAR(base.finalFidelity, 1.0, 1e-9);
        ASSERT_EQ(base.checkpointFidelities.size(), prep.circuit.numOperations() / 4);

        for (const unsigned threads : {2U, 4U, 7U}) {
            const ScopedThreads scope(threads);
            const StreamOutcome outcome = replayStream(text, target, 4);
            // Bit-identical, not merely close: EXPECT_EQ on the doubles.
            EXPECT_EQ(outcome.finalFidelity, base.finalFidelity)
                << "final fidelity at " << threads << " threads";
            EXPECT_EQ(outcome.ddNodes, base.ddNodes)
                << "dd_nodes at " << threads << " threads";
            ASSERT_EQ(outcome.checkpointFidelities.size(),
                      base.checkpointFidelities.size());
            for (std::size_t i = 0; i < base.checkpointFidelities.size(); ++i) {
                EXPECT_EQ(outcome.checkpointFidelities[i], base.checkpointFidelities[i])
                    << "checkpoint " << i << " at " << threads << " threads";
                EXPECT_EQ(outcome.checkpointNodes[i], base.checkpointNodes[i])
                    << "checkpoint " << i << " at " << threads << " threads";
            }
        }
    }
}

TEST(StreamingDeterminism, StreamedReplayAgreesWithNonStreamingReplay) {
    const Dimensions dims{3, 6, 2};
    const StateVector ghz = states::ghz(dims);
    const auto prep = prepareExact(ghz);
    const EvalState target(ghz);
    const ScopedThreads scope(1);

    const StreamOutcome streamed = replayStream(toQasm(prep.circuit), target, 0);

    // The same circuit replayed whole on an equally fresh backend: same
    // fidelity, same interned pool.
    const DdBackend whole;
    const VerifyReport report = whole.verify({&prep.circuit, &target});
    EXPECT_FALSE(report.failed) << report.error;
    EXPECT_NEAR(streamed.finalFidelity, report.fidelity, 1e-12);
    EXPECT_EQ(streamed.ddNodes, report.ddNodes);

    // And a CircuitSource drain — streaming from an in-memory circuit
    // rather than from text — is the same replay again.
    const DdBackend fromCircuit;
    CircuitSource source(prep.circuit);
    VerifyRequest request;
    request.target = &target;
    const VerifyReport drained = fromCircuit.verifyStream(source, request);
    EXPECT_EQ(drained.fidelity, streamed.finalFidelity);
    EXPECT_EQ(drained.ddNodes, streamed.ddNodes);
}

TEST(StreamingDeterminism, TornStreamThrowsAndLeavesTheSessionServing) {
    const Dimensions dims{3, 6, 2};
    const StateVector ghz = states::ghz(dims);
    const auto prep = prepareExact(ghz);
    const EvalState target(ghz);
    const std::string text = toQasm(prep.circuit);
    // Tear the text mid-token, inside the gate section.
    const std::string torn = text.substr(0, text.size() * 2 / 3 + 1);

    const DdBackend backend;
    {
        std::istringstream in(torn);
        GateStream stream(in);
        VerifyRequest request;
        request.target = &target;
        EXPECT_THROW((void)backend.verifyStream(stream, request), InvalidArgumentError);
    }
    // The failure is the stream's, not the session's: the same backend
    // verifies the full circuit immediately afterwards.
    const VerifyReport report = backend.verify({&prep.circuit, &target});
    EXPECT_FALSE(report.failed) << report.error;
    EXPECT_NEAR(report.fidelity, 1.0, 1e-9);
}

TEST(StreamingDeterminism, ByteSoupStreamsFailAsInvalidArgumentOnly) {
    // Hostile bytes after a valid preamble: the replay must reject via
    // InvalidArgumentError (line-numbered parse errors), never crash or
    // leak another exception type out of the backend.
    const std::string preamble = "MQSPQASM 1.0;\nqreg q[3] = [3, 6, 2];\n";
    std::uint64_t state = 0x9E3779B97F4A7C15ULL;
    const auto next = [&state] {
        state ^= state << 13U;
        state ^= state >> 7U;
        state ^= state << 17U;
        return state;
    };
    const DdBackend backend;
    std::size_t rejected = 0;
    for (int round = 0; round < 200; ++round) {
        std::string text = preamble;
        const std::size_t length = next() % 48;
        for (std::size_t i = 0; i < length; ++i) {
            text += static_cast<char>(next() % 256);
        }
        std::istringstream in(text);
        try {
            GateStream stream(in);
            (void)backend.verifyStream(stream, {});
        } catch (const InvalidArgumentError&) {
            ++rejected;
        }
        // Any other exception type escapes and fails the test.
    }
    EXPECT_GT(rejected, 0U);
}

} // namespace
} // namespace mqsp
