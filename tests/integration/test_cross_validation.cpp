// Randomized cross-validation: decision-diagram evaluation (dd/evaluate.cpp)
// against the dense state-vector simulator on random mixed-radix states,
// seeded and repeatable — the first step toward DD-native verification
// replacing the dense simulator as the default (ROADMAP). Two layers:
//
//  1. representation: a diagram built from a random dense state must
//     reproduce every amplitude (amplitudeOf / toStateVector) to 1e-10;
//  2. simulation: DD-native replay of the synthesized preparation circuit
//     (DecisionDiagram::simulateCircuit) must agree with the dense
//     simulator (Simulator::runFromZero) amplitude-by-amplitude to 1e-10.

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mqsp {
namespace {

constexpr double kTol = 1e-10;
constexpr std::uint64_t kSuiteSeed = 0xc405'5a11'dADEULL;
constexpr int kStatesPerRegister = 3;

std::vector<Dimensions> crossValidationRegisters() {
    return {
        {3, 6, 2},
        {9, 5, 6, 3},
        {2, 2, 2, 2, 2},
        {4, 3, 2, 5},
        {7, 2, 3},
    };
}

TEST(CrossValidation, DiagramReproducesEveryRandomAmplitude) {
    Rng seeder(kSuiteSeed);
    for (const auto& dims : crossValidationRegisters()) {
        for (int draw = 0; draw < kStatesPerRegister; ++draw) {
            Rng rng(seeder.childSeed());
            const StateVector state = states::random(dims, rng);
            const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);

            EXPECT_NEAR(dd.normSquared(), 1.0, kTol);
            EXPECT_NEAR(dd.fidelityWith(state), 1.0, kTol);

            const StateVector roundTrip = dd.toStateVector();
            ASSERT_EQ(roundTrip.size(), state.size());
            for (std::uint64_t i = 0; i < state.size(); ++i) {
                const Digits digits = state.radix().digitsOf(i);
                const Complex viaPath = dd.amplitudeOf(digits);
                EXPECT_NEAR(viaPath.real(), state[i].real(), kTol)
                    << formatDimensionSpec(dims) << " draw " << draw << " index " << i;
                EXPECT_NEAR(viaPath.imag(), state[i].imag(), kTol);
                EXPECT_NEAR(roundTrip[i].real(), state[i].real(), kTol);
                EXPECT_NEAR(roundTrip[i].imag(), state[i].imag(), kTol);
            }
        }
    }
}

TEST(CrossValidation, DdSimulationMatchesDenseSimulatorOnRandomStates) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Rng seeder(kSuiteSeed);
    for (const auto& dims : crossValidationRegisters()) {
        for (int draw = 0; draw < kStatesPerRegister; ++draw) {
            Rng rng(seeder.childSeed());
            const StateVector target = states::random(dims, rng);
            const auto prep = prepareExact(target, lean);

            const StateVector dense = Simulator::runFromZero(prep.circuit);
            const DecisionDiagram simulated =
                DecisionDiagram::simulateCircuit(prep.circuit);

            for (std::uint64_t i = 0; i < dense.size(); ++i) {
                const Complex viaDd = simulated.amplitudeOf(dense.radix().digitsOf(i));
                EXPECT_NEAR(viaDd.real(), dense[i].real(), kTol)
                    << formatDimensionSpec(dims) << " draw " << draw << " index " << i;
                EXPECT_NEAR(viaDd.imag(), dense[i].imag(), kTol);
            }
            // And both must hit the synthesis target itself.
            EXPECT_NEAR(dense.fidelityWith(target), 1.0, 1e-9);
            EXPECT_NEAR(simulated.fidelityWith(target), 1.0, 1e-9);
        }
    }
}

TEST(CrossValidation, InnerProductAgreesWithDenseOverlap) {
    Rng seeder(kSuiteSeed);
    for (const auto& dims : crossValidationRegisters()) {
        Rng rngA(seeder.childSeed());
        Rng rngB(seeder.childSeed());
        const StateVector a = states::random(dims, rngA);
        const StateVector b = states::random(dims, rngB);
        const DecisionDiagram ddA = DecisionDiagram::fromStateVector(a);
        const DecisionDiagram ddB = DecisionDiagram::fromStateVector(b);

        Complex denseOverlap{0.0, 0.0};
        for (std::uint64_t i = 0; i < a.size(); ++i) {
            denseOverlap += std::conj(a[i]) * b[i];
        }
        const Complex ddOverlap = ddA.innerProductWith(ddB);
        EXPECT_NEAR(ddOverlap.real(), denseOverlap.real(), kTol)
            << formatDimensionSpec(dims);
        EXPECT_NEAR(ddOverlap.imag(), denseOverlap.imag(), kTol);
    }
}

TEST(CrossValidation, RerunWithTheSameSeedIsBitwiseRepeatable) {
    const Dimensions dims{3, 4, 2};
    Rng first(kSuiteSeed);
    Rng second(kSuiteSeed);
    const StateVector a = states::random(dims, first);
    const StateVector b = states::random(dims, second);
    for (std::uint64_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].real(), b[i].real());
        EXPECT_EQ(a[i].imag(), b[i].imag());
    }
}

} // namespace
} // namespace mqsp
