// Randomized cross-validation: decision-diagram evaluation (dd/evaluate.cpp)
// against the dense state-vector simulator on random mixed-radix states,
// seeded and repeatable — the safety net under DD-native verification
// (ROADMAP). Three layers:
//
//  1. representation: a diagram built from a random dense state must
//     reproduce every amplitude (amplitudeOf / toStateVector) to 1e-10;
//  2. simulation: DD-native replay of the synthesized preparation circuit
//     (DecisionDiagram::simulateCircuit) must agree with the dense
//     simulator (Simulator::runFromZero) amplitude-by-amplitude to 1e-10;
//  3. backends: the pluggable DenseBackend and DdBackend (sim/backend.hpp)
//     must agree on preparation fidelity and circuit equivalence to 1e-10
//     on randomized registers — the parity contract that makes the dd
//     backend a drop-in verification substrate — and the dd backend alone
//     must verify structured states on a register too large for dense
//     allocation.

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

namespace mqsp {
namespace {

constexpr double kTol = 1e-10;
constexpr std::uint64_t kSuiteSeed = 0xc405'5a11'dADEULL;
constexpr int kStatesPerRegister = 3;

std::vector<Dimensions> crossValidationRegisters() {
    return {
        {3, 6, 2},
        {9, 5, 6, 3},
        {2, 2, 2, 2, 2},
        {4, 3, 2, 5},
        {7, 2, 3},
    };
}

TEST(CrossValidation, DiagramReproducesEveryRandomAmplitude) {
    Rng seeder(kSuiteSeed);
    for (const auto& dims : crossValidationRegisters()) {
        for (int draw = 0; draw < kStatesPerRegister; ++draw) {
            Rng rng(seeder.childSeed());
            const StateVector state = states::random(dims, rng);
            const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);

            EXPECT_NEAR(dd.normSquared(), 1.0, kTol);
            EXPECT_NEAR(dd.fidelityWith(state), 1.0, kTol);

            const StateVector roundTrip = dd.toStateVector();
            ASSERT_EQ(roundTrip.size(), state.size());
            for (std::uint64_t i = 0; i < state.size(); ++i) {
                const Digits digits = state.radix().digitsOf(i);
                const Complex viaPath = dd.amplitudeOf(digits);
                EXPECT_NEAR(viaPath.real(), state[i].real(), kTol)
                    << formatDimensionSpec(dims) << " draw " << draw << " index " << i;
                EXPECT_NEAR(viaPath.imag(), state[i].imag(), kTol);
                EXPECT_NEAR(roundTrip[i].real(), state[i].real(), kTol);
                EXPECT_NEAR(roundTrip[i].imag(), state[i].imag(), kTol);
            }
        }
    }
}

TEST(CrossValidation, DdSimulationMatchesDenseSimulatorOnRandomStates) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Rng seeder(kSuiteSeed);
    for (const auto& dims : crossValidationRegisters()) {
        for (int draw = 0; draw < kStatesPerRegister; ++draw) {
            Rng rng(seeder.childSeed());
            const StateVector target = states::random(dims, rng);
            const auto prep = prepareExact(target, lean);

            const StateVector dense = Simulator::runFromZero(prep.circuit);
            const DecisionDiagram simulated =
                DecisionDiagram::simulateCircuit(prep.circuit);

            for (std::uint64_t i = 0; i < dense.size(); ++i) {
                const Complex viaDd = simulated.amplitudeOf(dense.radix().digitsOf(i));
                EXPECT_NEAR(viaDd.real(), dense[i].real(), kTol)
                    << formatDimensionSpec(dims) << " draw " << draw << " index " << i;
                EXPECT_NEAR(viaDd.imag(), dense[i].imag(), kTol);
            }
            // And both must hit the synthesis target itself.
            EXPECT_NEAR(dense.fidelityWith(target), 1.0, 1e-9);
            EXPECT_NEAR(simulated.fidelityWith(target), 1.0, 1e-9);
        }
    }
}

TEST(CrossValidation, InnerProductAgreesWithDenseOverlap) {
    Rng seeder(kSuiteSeed);
    for (const auto& dims : crossValidationRegisters()) {
        Rng rngA(seeder.childSeed());
        Rng rngB(seeder.childSeed());
        const StateVector a = states::random(dims, rngA);
        const StateVector b = states::random(dims, rngB);
        const DecisionDiagram ddA = DecisionDiagram::fromStateVector(a);
        const DecisionDiagram ddB = DecisionDiagram::fromStateVector(b);

        Complex denseOverlap{0.0, 0.0};
        for (std::uint64_t i = 0; i < a.size(); ++i) {
            denseOverlap += std::conj(a[i]) * b[i];
        }
        const Complex ddOverlap = ddA.innerProductWith(ddB);
        EXPECT_NEAR(ddOverlap.real(), denseOverlap.real(), kTol)
            << formatDimensionSpec(dims);
        EXPECT_NEAR(ddOverlap.imag(), denseOverlap.imag(), kTol);
    }
}

// --- backend-parity suite --------------------------------------------------

TEST(BackendParity, FidelityAgreesToTenDigitsOnRandomRegisters) {
    const DenseBackend dense;
    const DdBackend dd;
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Rng seeder(kSuiteSeed);
    for (const auto& dims : crossValidationRegisters()) {
        for (int draw = 0; draw < kStatesPerRegister; ++draw) {
            Rng rng(seeder.childSeed());
            const StateVector target = states::random(dims, rng);
            const auto prep = prepareExact(target, lean);
            const EvalState targetState(target);

            const double viaDense = dense.preparationFidelity(prep.circuit, targetState);
            const double viaDd = dd.preparationFidelity(prep.circuit, targetState);
            EXPECT_NEAR(viaDense, viaDd, kTol)
                << formatDimensionSpec(dims) << " draw " << draw;
            EXPECT_NEAR(viaDense, 1.0, 1e-9);
            EXPECT_NEAR(viaDd, 1.0, 1e-9);
        }
    }
}

TEST(BackendParity, ApproximatedFidelityAgreesBelowOne) {
    // A deliberately approximated circuit: both backends must report the
    // *same* sub-unit fidelity, not merely agree at 1.
    const DenseBackend dense;
    const DdBackend dd;
    Rng rng(kSuiteSeed);
    const Dimensions dims{4, 3, 2, 5};
    const StateVector target = states::random(dims, rng);
    const auto prep = prepareApproximated(target, 0.98);
    ASSERT_LT(prep.approx.fidelity, 1.0);

    const EvalState targetState(target);
    const double viaDense = dense.preparationFidelity(prep.circuit, targetState);
    const double viaDd = dd.preparationFidelity(prep.circuit, targetState);
    EXPECT_NEAR(viaDense, viaDd, kTol);
    EXPECT_NEAR(viaDense, prep.approx.fidelity, 1e-6);
}

TEST(BackendParity, EquivalenceVerdictsAgreeOnRandomRegisters) {
    const DenseBackend dense;
    const DdBackend dd;
    SynthesisOptions faithful;
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Rng seeder(kSuiteSeed);
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{4, 3, 2}, Dimensions{7, 2, 3}}) {
        Rng rng(seeder.childSeed());
        const StateVector target = states::random(dims, rng);
        const auto full = prepareExact(target, faithful);
        const auto elided = prepareExact(target, lean);

        // Identity elision preserves the unitary: both backends say yes.
        EXPECT_TRUE(dense.circuitsEquivalent(full.circuit, elided.circuit, 1e-8));
        EXPECT_TRUE(dd.circuitsEquivalent(full.circuit, elided.circuit, 1e-8));

        // A deliberately broken copy: both backends say no.
        Circuit broken = elided.circuit;
        broken.append(Operation::givens(0, 0, 1, 0.7, 0.3, {}));
        EXPECT_FALSE(dense.circuitsEquivalent(full.circuit, broken, 1e-8));
        EXPECT_FALSE(dd.circuitsEquivalent(full.circuit, broken, 1e-8));
    }
}

TEST(BackendParity, StructuredDiagramBuildersMatchDenseGenerators) {
    for (const auto& dims : crossValidationRegisters()) {
        const std::vector<std::pair<DecisionDiagram, StateVector>> pairs = [&] {
            std::vector<std::pair<DecisionDiagram, StateVector>> list;
            list.emplace_back(DecisionDiagram::ghzState(dims), states::ghz(dims));
            list.emplace_back(DecisionDiagram::wState(dims), states::wState(dims));
            list.emplace_back(DecisionDiagram::embeddedWState(dims),
                              states::embeddedWState(dims));
            list.emplace_back(DecisionDiagram::uniformState(dims), states::uniform(dims));
            const Digits zeros(dims.size(), 0);
            list.emplace_back(DecisionDiagram::cyclicState(dims, zeros, 4),
                              states::cyclic(dims, zeros, 4));
            list.emplace_back(DecisionDiagram::dickeState(dims, 2),
                              states::dicke(dims, 2));
            return list;
        }();
        for (const auto& [diagram, state] : pairs) {
            EXPECT_TRUE(diagram.checkInvariants().empty()) << diagram.checkInvariants();
            EXPECT_NEAR(diagram.normSquared(), 1.0, kTol);
            for (std::uint64_t i = 0; i < state.size(); ++i) {
                const Digits digits = state.radix().digitsOf(i);
                const Complex amp = diagram.amplitudeOf(digits);
                EXPECT_NEAR(amp.real(), state[i].real(), kTol)
                    << formatDimensionSpec(dims) << " index " << i;
                EXPECT_NEAR(amp.imag(), state[i].imag(), kTol);
            }
        }
    }
}

TEST(BackendParity, CyclicAndDickeAgreeAcrossBackendsOnMixedRadixRegisters) {
    // Dense-vs-dd parity at 1e-10 for the two DD-native DAG families: the
    // synthesized circuit replays to the same fidelity on both substrates,
    // and the DD-native diagrams match the dense generators' states.
    const DenseBackend dense;
    const DdBackend dd;
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        const Digits zeros(dims.size(), 0);
        const std::vector<StateVector> targets = {
            states::cyclic(dims, zeros, 6),
            states::dicke(dims, 2),
        };
        for (const auto& target : targets) {
            const auto prep = prepareExact(target, lean);
            const EvalState targetState(target);
            const double viaDense = dense.preparationFidelity(prep.circuit, targetState);
            const double viaDd = dd.preparationFidelity(prep.circuit, targetState);
            EXPECT_NEAR(viaDense, viaDd, kTol) << formatDimensionSpec(dims);
            EXPECT_NEAR(viaDense, 1.0, 1e-9);
        }
    }
}

TEST(BackendParity, CyclicAndDickeApproximatedFidelityAgreesBelowOne) {
    // The sub-unit case: an approximated cyclic/dicke preparation (pruned
    // through the dense tree pipeline — the DAG builders refuse --approx)
    // must report the *same* sub-unit fidelity on both backends.
    const DenseBackend dense;
    const DdBackend dd;
    const Dimensions dims{9, 5, 6, 3};

    // A mixed cyclic/dicke superposition prunes non-trivially (the pure
    // families are already equal-amplitude, so pruning is all-or-nothing).
    StateVector target = states::dicke(dims, 3);
    const StateVector blend = states::cyclic(dims, Digits(dims.size(), 0), 6);
    for (std::uint64_t i = 0; i < target.size(); ++i) {
        target[i] = target[i] + Complex{0.35, 0.0} * blend[i];
    }
    target.normalize();

    const auto prep = prepareApproximated(target, 0.9);
    ASSERT_LT(prep.approx.fidelity, 1.0);
    const EvalState targetState(target);
    const double viaDense = dense.preparationFidelity(prep.circuit, targetState);
    const double viaDd = dd.preparationFidelity(prep.circuit, targetState);
    EXPECT_NEAR(viaDense, viaDd, kTol);
    EXPECT_NEAR(viaDense, prep.approx.fidelity, 1e-6);
}

TEST(BackendParity, CyclicAndDickeVerifyPastTheDenseCeilingDdOnly) {
    // 2^27 ≈ 1.34e8 amplitudes: the dense backend refuses the register,
    // the dd backend builds, synthesizes, replays and verifies both new
    // families without ever materializing an amplitude vector.
    const Dimensions dims(27, 2);
    ASSERT_GE(MixedRadix(dims).totalDimension(), std::uint64_t{100'000'000});
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    const DenseBackend dense;
    const DdBackend dd;
    const std::vector<DecisionDiagram> targets = [&] {
        std::vector<DecisionDiagram> list;
        list.push_back(dd.ddSession()->dickeState(dims, 2));
        list.push_back(dd.ddSession()->cyclicState(dims, Digits(27, 0), 2));
        return list;
    }();
    for (const auto& target : targets) {
        const Circuit circuit = synthesize(target, lean);
        EXPECT_THROW((void)dense.runFromZero(circuit), InvalidArgumentError);
        const double fidelity = dd.preparationFidelity(circuit, EvalState(target));
        EXPECT_NEAR(fidelity, 1.0, 1e-10);
    }
    // The whole chain ran on the backend's session store.
    const auto stats = dd.ddSession()->stats();
    EXPECT_GT(stats.unique.hits, 0U);
    EXPECT_GT(stats.poolNodes, 0U);
}

TEST(BackendParity, DdBackendVerifiesPastTheDenseCeiling) {
    // 2^27 ≈ 1.34e8 amplitudes: the dense backend refuses the register
    // outright, the dd backend prepares and verifies it in milliseconds.
    const Dimensions dims(27, 2);
    ASSERT_GE(MixedRadix(dims).totalDimension(), std::uint64_t{100'000'000});

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const DecisionDiagram target = DecisionDiagram::ghzState(dims);
    const Circuit circuit = synthesize(target, lean);

    const DenseBackend dense;
    EXPECT_THROW((void)dense.runFromZero(circuit), InvalidArgumentError);
    EXPECT_THROW((void)dense.preparationFidelity(circuit, EvalState(target)),
                 InvalidArgumentError);

    const DdBackend dd;
    const double fidelity = dd.preparationFidelity(circuit, EvalState(target));
    EXPECT_NEAR(fidelity, 1.0, 1e-9);

    // The whole chain never allocates O(∏dims): spot-check amplitudes too.
    const EvalState out = dd.runFromZero(circuit);
    const double amp = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(out.amplitudeOf(Digits(27, 0)).real(), amp, 1e-9);
    EXPECT_NEAR(out.amplitudeOf(Digits(27, 1)).real(), amp, 1e-9);
    EXPECT_NEAR(out.amplitudeOf([&] {
                       Digits d(27, 1);
                       d.back() = 0;
                       return d;
                   }()).real(),
                0.0, 1e-12);
}

TEST(BackendParity, UniformReplayStaysPolynomialPastTheCeiling) {
    // The uniform superposition is the adversarial case for DD replay: its
    // intermediate states are product superpositions, which without the
    // per-gate reduction + memoized rebuild in simulateCircuit would blow
    // up to the full exponential tree. This must finish in well under a
    // second on 2^27 amplitudes.
    const Dimensions dims(27, 2);
    const DecisionDiagram target = DecisionDiagram::uniformState(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const Circuit circuit = synthesize(target, lean);
    const double fidelity = DdBackend().preparationFidelity(circuit, EvalState(target));
    EXPECT_NEAR(fidelity, 1.0, 1e-9);
}

TEST(CrossValidation, RerunWithTheSameSeedIsBitwiseRepeatable) {
    const Dimensions dims{3, 4, 2};
    Rng first(kSuiteSeed);
    Rng second(kSuiteSeed);
    const StateVector a = states::random(dims, first);
    const StateVector b = states::random(dims, second);
    for (std::uint64_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].real(), b[i].real());
        EXPECT_EQ(a[i].imag(), b[i].imag());
    }
}

} // namespace
} // namespace mqsp
