// Cross-module integration: chains that exercise synthesis, optimization,
// QASM round trips, transpilation, routing, DD-native simulation and
// entanglement analysis together, asserting bitwise/amplitude-level
// consistency at every joint.

#include "mqsp/analysis/entanglement.hpp"
#include "mqsp/circuit/qasm.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/hardware/router.hpp"
#include "mqsp/opt/optimizer.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mqsp {
namespace {

TEST(FullStack, SynthesizeOptimizeQasmSimulate) {
    Rng rng(1);
    const StateVector target = states::random({3, 4, 2}, rng);
    auto prep = prepareExact(target); // paper-faithful: has identity ops
    (void)optimizeCircuit(prep.circuit);
    const Circuit parsed = parseQasmString(toQasm(prep.circuit));
    EXPECT_NEAR(Simulator::preparationFidelity(parsed, target), 1.0, 1e-9);
}

TEST(FullStack, OptimizedCircuitsStillMatchOnDDSimulation) {
    Rng rng(2);
    const StateVector target = states::random({2, 3, 3}, rng);
    auto prep = prepareExact(target);
    (void)optimizeCircuit(prep.circuit);
    const DecisionDiagram simulated = DecisionDiagram::simulateCircuit(prep.circuit);
    EXPECT_NEAR(simulated.fidelityWith(target), 1.0, 1e-8);
}

TEST(FullStack, TranspiledCircuitSurvivesQasmRoundTrip) {
    const StateVector target = states::ghz({3, 3});
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    const auto lowered = transpileToTwoQudit(prep.circuit);

    std::stringstream stream(toQasm(lowered.circuit));
    const Circuit parsed = parseQasm(stream);
    ASSERT_EQ(parsed.numOperations(), lowered.circuit.numOperations());
    const StateVector a = Simulator::runFromZero(lowered.circuit);
    const StateVector b = Simulator::runFromZero(parsed);
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-10);
}

TEST(FullStack, RoutedOptimizedCircuitPreparesTheState) {
    const Dimensions dims{3, 3, 3};
    const StateVector target = states::wState(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    const auto lowered = transpileToTwoQudit(prep.circuit);
    ASSERT_EQ(lowered.numAncillas, 0U);

    auto routed = routeCircuit(lowered.circuit, Architecture::linearChain(dims));
    // The optimizer must preserve the routed circuit too (it contains
    // shifts and level swaps from the SWAP ladders).
    (void)optimizeCircuit(routed.circuit);
    EXPECT_NEAR(Simulator::preparationFidelity(routed.circuit, target), 1.0, 1e-8);
}

TEST(FullStack, ApproximatedStateKeepsItsEntanglementProfile) {
    // Approximation at high fidelity must not change entanglement much:
    // compare entropies of the exact and approximated prepared states.
    Rng rng(3);
    const StateVector target = states::random({3, 4, 2}, rng);
    const auto approx = prepareApproximated(target, 0.99);
    const StateVector prepared = Simulator::runFromZero(approx.circuit);
    const double exactEntropy = analysis::entanglementEntropy(target, {0});
    const double approxEntropy = analysis::entanglementEntropy(prepared, {0});
    EXPECT_NEAR(exactEntropy, approxEntropy, 0.2);
}

TEST(FullStack, SerializedDiagramRoundTripsThroughSynthesis) {
    Rng rng(4);
    const StateVector target = states::random({3, 6, 2}, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    std::stringstream stream;
    dd.serialize(stream);
    const DecisionDiagram restored = DecisionDiagram::deserialize(stream);
    const Circuit circuit = synthesize(restored);
    EXPECT_NEAR(Simulator::preparationFidelity(circuit, target), 1.0, 1e-9);
}

TEST(FullStack, SamplingThePreparedCircuitMatchesTheTargetDistribution) {
    const StateVector target = states::wState({2, 2, 2, 2});
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    const StateVector prepared = Simulator::runFromZero(prep.circuit);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(prepared);

    Rng rng(5);
    const auto histogram = dd.sampleHistogram(rng, 8000);
    // All 4 single-excitation outcomes, near-uniform, nothing else.
    EXPECT_EQ(histogram.size(), 4U);
    for (const auto& [index, count] : histogram) {
        EXPECT_NEAR(static_cast<double>(count) / 8000.0, 0.25, 0.05) << index;
    }
}

TEST(FullStack, EveryPipelineStageAgreesOnTheGhzState) {
    // One state, five independent representations of the prepared result:
    // dense simulation, DD simulation, diagram reconstruction, QASM round
    // trip, optimizer output — all must agree pairwise.
    const StateVector target = states::ghz({3, 6, 2});
    const auto prep = prepareExact(target);

    const StateVector dense = Simulator::runFromZero(prep.circuit);
    const StateVector viaDD =
        DecisionDiagram::simulateCircuit(prep.circuit).toStateVector();
    const StateVector viaDiagram = prep.diagram.toStateVector();
    const StateVector viaQasm =
        Simulator::runFromZero(parseQasmString(toQasm(prep.circuit)));
    Circuit optimized = prep.circuit;
    (void)optimizeCircuit(optimized);
    const StateVector viaOpt = Simulator::runFromZero(optimized);

    for (const StateVector* state : {&dense, &viaDD, &viaDiagram, &viaQasm, &viaOpt}) {
        EXPECT_NEAR(state->fidelityWith(target), 1.0, 1e-9);
    }
}

} // namespace
} // namespace mqsp
