// End-to-end pipeline tests: state -> DD -> (approximate) -> circuit ->
// simulate -> compare. These integrate every module of the library.

#include "mqsp/approx/approximation.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(Pipeline, ExactPreparationOnAllPaperRegisters) {
    Rng rng(2024);
    const std::vector<Dimensions> registers = {
        {3, 6, 2}, {9, 5, 6, 3}, {6, 6, 5, 3, 3}, {5, 4, 2, 5, 5, 2}, {4, 7, 4, 4, 3, 5}};
    for (const auto& dims : registers) {
        const StateVector target = states::random(dims, rng);
        const auto result = prepareExact(target);
        EXPECT_NEAR(Simulator::preparationFidelity(result.circuit, target), 1.0, 1e-8)
            << formatDimensionSpec(dims);
    }
}

TEST(Pipeline, ApproximatePreparationOnAllPaperRegisters) {
    Rng rng(2025);
    const std::vector<Dimensions> registers = {
        {3, 6, 2}, {9, 5, 6, 3}, {6, 6, 5, 3, 3}, {5, 4, 2, 5, 5, 2}};
    for (const auto& dims : registers) {
        const StateVector target = states::random(dims, rng);
        const auto result = prepareApproximated(target, 0.98);
        const double fidelity = Simulator::preparationFidelity(result.circuit, target);
        EXPECT_GE(fidelity + 1e-8, 0.98) << formatDimensionSpec(dims);
        EXPECT_NEAR(fidelity, result.approx.fidelity, 1e-7);
    }
}

TEST(Pipeline, ApproximationShrinksRandomCircuits) {
    Rng rng(11);
    const StateVector target = states::random({9, 5, 6, 3}, rng);
    const auto exact = prepareExact(target);
    const auto approx = prepareApproximated(target, 0.98);
    EXPECT_LE(approx.circuit.numOperations(), exact.circuit.numOperations());
    EXPECT_LT(approx.diagram.nodeCount(NodeCountMode::Slots),
              exact.diagram.nodeCount(NodeCountMode::Slots));
}

TEST(Pipeline, StructuredStatesKeepFidelityOneUnderApproximation) {
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        for (int which = 0; which < 3; ++which) {
            const StateVector target = which == 0   ? states::ghz(dims)
                                       : which == 1 ? states::wState(dims)
                                                    : states::embeddedWState(dims);
            const auto approx = prepareApproximated(target, 0.98);
            EXPECT_NEAR(Simulator::preparationFidelity(approx.circuit, target), 1.0, 1e-9);
        }
    }
}

TEST(Pipeline, SynthesisAfterManualPruneAndReduce) {
    // Drive the three Figure-2 stages by hand and verify the final circuit.
    Rng rng(3);
    const StateVector target = states::random({3, 4, 2}, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    ApproximationOptions options;
    options.fidelityThreshold = 0.95;
    const auto report = approximate(dd, options);
    const Circuit circuit = synthesize(dd);
    const StateVector prepared = Simulator::runFromZero(circuit);
    EXPECT_NEAR(prepared.fidelityWith(target), report.fidelity, 1e-8);
    EXPECT_GE(report.fidelity + 1e-10, 0.95);
}

TEST(Pipeline, PreparedStateMatchesDiagramNotJustFidelity) {
    // The circuit must reproduce the approximated diagram's state exactly
    // (amplitude-wise), not merely achieve the fidelity bound.
    Rng rng(8);
    const StateVector target = states::random({3, 6, 2}, rng);
    const auto result = prepareApproximated(target, 0.9);
    const StateVector fromDiagram = result.diagram.toStateVector();
    const StateVector fromCircuit = Simulator::runFromZero(result.circuit);
    EXPECT_NEAR(fromCircuit.fidelityWith(fromDiagram), 1.0, 1e-9);
}

TEST(Pipeline, FullStackDownToTwoQuditGates) {
    // state -> DD -> approximate -> synthesize -> transpile -> simulate.
    Rng rng(21);
    const StateVector target = states::random({3, 3, 2}, rng);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareApproximated(target, 0.97, lean);
    const auto lowered = transpileToTwoQudit(prep.circuit);
    const StateVector out = Simulator::runFromZero(lowered.circuit);

    std::uint64_t scale = 1;
    for (std::size_t a = 0; a < lowered.numAncillas; ++a) {
        scale *= 2;
    }
    Complex overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < target.size(); ++i) {
        overlap += std::conj(target[i]) * out[i * scale];
    }
    EXPECT_GE(squaredMagnitude(overlap) + 1e-8, 0.97);
}

TEST(Pipeline, UniformStateCollapsesToControlFreeCircuit) {
    // The uniform state is a full tensor product; after reduction, synthesis
    // emits zero controls on every qudit (§4.3's best case).
    const StateVector target = states::uniform({3, 4, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    dd.reduce();
    const Circuit circuit = synthesize(dd);
    EXPECT_EQ(circuit.stats().maxControls, 0U);
    EXPECT_NEAR(Simulator::preparationFidelity(circuit, target), 1.0, 1e-9);
}

} // namespace
} // namespace mqsp
