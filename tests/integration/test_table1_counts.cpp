// Pinned reproductions of every structured-state row of the paper's Table 1.
// Operations, Nodes (dense tree for the exact column, tree-slot count for
// the approximated column) and DistinctC are asserted at the *exact* paper
// values wherever our counting model and the paper agree (all Operations,
// all exact Nodes, 7/9 approximated Nodes, 8/9 DistinctC). The remaining
// cells differ by <= 1.5% and are asserted at our model's value with the
// paper's value quoted next to it; EXPERIMENTS.md discusses each.
//
// #Controls: we assert the median control count of the path-control model
// (controls = root-to-node path, the paper's Example 5). The paper's printed
// medians match this model on the larger rows (GHZ 4q/6q, W 4q/6q, Emb-W 6q,
// random 3q/5q/6q) and disagree by +-1 on four small rows and on random 4q,
// where the paper's own table is internally inconsistent (its approximated
// median 2.82 exceeds its exact median 2.0 although approximation can only
// remove controls). See EXPERIMENTS.md §Controls.
//
// The register orders for the two 6-qudit rows are the ones implied by the
// paper's node counts (the grouped Count x Dim notation lists a multiset;
// see DESIGN.md).

#include "mqsp/approx/approximation.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

struct Table1Row {
    std::string name;
    Dimensions dims;
    std::uint64_t nodesExact;  // "Nodes" (exact column), paper value
    std::size_t distinctC;     // "DistinctC" — ours (paper's in comment)
    std::size_t operations;    // "Operations", paper value
    double medianControls;     // path-model median (paper's in comment)
    std::uint64_t nodesApprox; // "Nodes" (approximated column)
};

StateVector makeState(const std::string& name, const Dimensions& dims) {
    if (name.find("GHZ") != std::string::npos) {
        return states::ghz(dims);
    }
    if (name.find("EmbW") != std::string::npos) {
        return states::embeddedWState(dims);
    }
    return states::wState(dims);
}

class Table1StructuredRow : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1StructuredRow, MatchesPaper) {
    const auto& row = GetParam();
    const StateVector state = makeState(row.name, row.dims);

    // Exact column.
    const auto exact = prepareExact(state);
    EXPECT_EQ(exact.diagram.nodeCount(NodeCountMode::DenseTree), row.nodesExact);
    EXPECT_EQ(exact.diagram.distinctComplexCount(), row.distinctC);
    EXPECT_EQ(exact.circuit.numOperations(), row.operations);
    EXPECT_DOUBLE_EQ(exact.circuit.stats().medianControls, row.medianControls);

    // Approximated column: structured states are untouched by the 98%
    // threshold; operations and controls stay identical, and the node count
    // becomes the tree-slot count of the (unchanged) nonzero structure.
    const auto approx = prepareApproximated(state, 0.98);
    EXPECT_EQ(approx.circuit.numOperations(), row.operations);
    EXPECT_DOUBLE_EQ(approx.circuit.stats().medianControls, row.medianControls);
    EXPECT_DOUBLE_EQ(approx.approx.fidelity, 1.0);
    EXPECT_EQ(approx.diagram.nodeCount(NodeCountMode::TreeSlots), row.nodesApprox);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1StructuredRow,
    ::testing::Values(
        // Emb. W-State (paper: ops 21/49/91; approx nodes 22/50/92;
        // distinctC 5/7/12 — ours 5/7/11; controls 2/3/3 — path model
        // 1/2/3).
        Table1Row{"EmbW3", {3, 6, 2}, 58, 5, 21, 1.0, 22},
        Table1Row{"EmbW4", {9, 5, 6, 3}, 1135, 7, 49, 2.0, 50},
        Table1Row{"EmbW6", {4, 7, 4, 4, 3, 5}, 8657, 11, 91, 3.0, 92},
        // GHZ (paper: ops 19/51/73; approx nodes 20/52/74; distinctC 3;
        // controls 2/2/2 — path model 1/2/2).
        Table1Row{"GHZ3", {3, 6, 2}, 58, 3, 19, 1.0, 20},
        Table1Row{"GHZ4", {9, 5, 6, 3}, 1135, 3, 51, 2.0, 52},
        Table1Row{"GHZ6", {4, 7, 4, 4, 3, 5}, 8657, 3, 73, 2.0, 74},
        // W-State (paper: ops 37/186/262; approx nodes 38/185/259 — ours
        // 38/187/263, the tree-slot model, within 1.6%; distinctC 5/11/14 —
        // ours 5/9/11, a function of the normalization scheme's value set;
        // controls 2/2/4 — path model 1/2/4).
        Table1Row{"W3", {3, 6, 2}, 58, 5, 37, 1.0, 38},
        Table1Row{"W4", {9, 5, 6, 3}, 1135, 9, 186, 2.0, 187},
        Table1Row{"W6", {4, 7, 4, 4, 3, 5}, 8657, 11, 262, 4.0, 263}),
    [](const ::testing::TestParamInfo<Table1Row>& paramInfo) { return paramInfo.param.name; });

TEST(Table1Random, ExactColumnCountsAreDenseTreeDriven) {
    // Random rows: Operations = dense-tree edges = Nodes - 1, DistinctC =
    // Nodes. Path-model control medians: 2/3/4/5/5 (the paper prints
    // 2/2/4/5/5; see the header comment for the 4-qudit discrepancy).
    struct RandomRow {
        Dimensions dims;
        std::uint64_t nodes;
        double medianControls;
    };
    const std::vector<RandomRow> rows = {
        {{3, 6, 2}, 58, 2.0},
        {{9, 5, 6, 3}, 1135, 3.0},
        {{6, 6, 5, 3, 3}, 2383, 4.0},
        {{5, 4, 2, 5, 5, 2}, 3266, 5.0},
        {{4, 7, 4, 4, 3, 5}, 8657, 5.0},
    };
    Rng rng(1);
    for (const auto& row : rows) {
        const StateVector state = states::random(row.dims, rng);
        const auto exact = prepareExact(state);
        EXPECT_EQ(exact.diagram.nodeCount(NodeCountMode::DenseTree), row.nodes);
        EXPECT_EQ(exact.circuit.numOperations(), row.nodes - 1);
        EXPECT_EQ(exact.diagram.distinctComplexCount(), row.nodes);
        EXPECT_DOUBLE_EQ(exact.circuit.stats().medianControls, row.medianControls)
            << formatDimensionSpec(row.dims);
    }
}

TEST(Table1Random, ApproximatedColumnShrinksAndKeepsFidelity) {
    // The paper's shape: nodes shrink visibly, ops shrink a little, fidelity
    // lands at ~0.99 for the 0.98 threshold.
    Rng rng(2);
    const StateVector state = states::random({9, 5, 6, 3}, rng);
    const auto exact = prepareExact(state);
    const auto approx = prepareApproximated(state, 0.98);
    EXPECT_LT(approx.diagram.nodeCount(NodeCountMode::TreeSlots),
              exact.diagram.nodeCount(NodeCountMode::DenseTree));
    EXPECT_LE(approx.circuit.numOperations(), exact.circuit.numOperations());
    EXPECT_GE(approx.approx.fidelity + 1e-10, 0.98);
    EXPECT_LE(approx.approx.fidelity, 1.0);
}

} // namespace
} // namespace mqsp
