// Thread-count determinism: the parallel execution layer must not change
// results. parallelReduce-based norms and inner products are bit-identical
// at 1 and at N threads (ordered-chunk contract); full prepare + verify
// pipelines produce end states identical to 1e-12 (in fact bit-identical:
// each amplitude's arithmetic is independent of the partition) across
// ghz / w / random targets on mixed-radix registers.

#include "mqsp/circuit/qasm.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/sim/density_simulator.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/parallel.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace mqsp {
namespace {

using ScopedThreads = parallel::ScopedThreadCount;

struct Target {
    std::string family;
    Dimensions dims;
};

std::vector<Target> targets() {
    return {
        {"ghz", {3, 4, 2, 5}},
        {"ghz", {2, 2, 2, 2, 2, 2, 2, 2, 2, 2}},
        {"w", {3, 6, 2}},
        {"w", {2, 3, 2, 3, 2}},
        {"random", {9, 5, 6, 3}},
        {"random", {4, 4, 4, 4}},
    };
}

StateVector makeTarget(const Target& target) {
    if (target.family == "ghz") {
        return states::ghz(target.dims);
    }
    if (target.family == "w") {
        return states::wState(target.dims);
    }
    Rng rng(12345);
    return states::random(target.dims, rng);
}

TEST(ThreadDeterminism, NormsBitIdenticalAcrossThreadCounts) {
    for (const auto& target : targets()) {
        const StateVector state = makeTarget(target);
        double norm1 = 0.0;
        Complex inner1{0.0, 0.0};
        {
            const ScopedThreads scope(1);
            norm1 = state.normSquared();
            inner1 = state.innerProduct(state);
        }
        for (const unsigned threads : {2U, 4U}) {
            const ScopedThreads scope(threads);
            // Bit-identical, not merely close: EXPECT_EQ on the doubles.
            EXPECT_EQ(norm1, state.normSquared())
                << target.family << " norm at " << threads << " threads";
            const Complex innerN = state.innerProduct(state);
            EXPECT_EQ(inner1.real(), innerN.real())
                << target.family << " inner product at " << threads << " threads";
            EXPECT_EQ(inner1.imag(), innerN.imag());
        }
    }
}

TEST(ThreadDeterminism, PrepVerifyEndStatesIdenticalAcrossThreadCounts) {
    for (const auto& target : targets()) {
        const StateVector state = makeTarget(target);
        const auto prep = prepareExact(state);

        StateVector out1;
        double fidelity1 = 0.0;
        {
            const ScopedThreads scope(1);
            out1 = Simulator::runFromZero(prep.circuit);
            fidelity1 = state.fidelityWith(out1);
        }
        EXPECT_NEAR(fidelity1, 1.0, 1e-9);

        for (const unsigned threads : {2U, 4U}) {
            const ScopedThreads scope(threads);
            const StateVector outN = Simulator::runFromZero(prep.circuit);
            ASSERT_EQ(out1.size(), outN.size());
            for (std::uint64_t i = 0; i < out1.size(); ++i) {
                EXPECT_NEAR(out1[i].real(), outN[i].real(), 1e-12)
                    << target.family << " amplitude " << i << " at " << threads
                    << " threads";
                EXPECT_NEAR(out1[i].imag(), outN[i].imag(), 1e-12);
            }
            EXPECT_NEAR(state.fidelityWith(outN), fidelity1, 1e-12);
        }
    }
}

TEST(ThreadDeterminism, BackendVerificationIdenticalAcrossThreadCounts) {
    for (const auto& target : targets()) {
        const StateVector state = makeTarget(target);
        const auto prep = prepareExact(state);
        const EvalState evalTarget(state);

        double fidelity1 = 0.0;
        {
            const ScopedThreads scope(1);
            fidelity1 = DenseBackend().preparationFidelity(prep.circuit, evalTarget);
        }
        for (const unsigned threads : {2U, 4U}) {
            const ScopedThreads scope(threads);
            const double fidelityN =
                DenseBackend().preparationFidelity(prep.circuit, evalTarget);
            EXPECT_NEAR(fidelityN, fidelity1, 1e-12) << target.family;
        }
    }
}

// The density-matrix kernels (sim/density_simulator.cpp) run on the same
// ordered-chunk parallelFor/parallelReduce contract as the dense
// simulator: every (row, col) cell's arithmetic is independent of the
// partition, and the reductions sum fixed per-grain partials in index
// order. Fidelity, trace, and purity must therefore be bit-identical —
// EXPECT_EQ on the doubles — at every thread count.
TEST(ThreadDeterminism, DensityReplayBitIdenticalAcrossThreadCounts) {
    const std::vector<Target> noisyTargets = {
        {"ghz", {3, 4, 2}},
        {"w", {3, 6, 2}},
        {"random", {4, 4, 4}},
    };
    NoiseModel noise;
    noise.singleQuditError = 1e-4;
    noise.twoQuditError = 1e-3;
    for (const auto& target : noisyTargets) {
        const StateVector state = makeTarget(target);
        const auto prep = prepareExact(state);

        double fidelity1 = 0.0;
        double trace1 = 0.0;
        double purity1 = 0.0;
        {
            const ScopedThreads scope(1);
            const DensityMatrix rho =
                NoisySimulator(parallel::ExecutionConfig{1}).run(prep.circuit, noise);
            fidelity1 = rho.fidelityWithPure(state);
            trace1 = rho.trace();
            purity1 = rho.purity();
        }
        EXPECT_NEAR(trace1, 1.0, 1e-9) << target.family;
        EXPECT_GT(fidelity1, 0.9) << target.family;

        for (const unsigned threads : {2U, 4U, 7U}) {
            const ScopedThreads scope(threads);
            const DensityMatrix rho =
                NoisySimulator(parallel::ExecutionConfig{threads}).run(prep.circuit, noise);
            EXPECT_EQ(rho.fidelityWithPure(state), fidelity1)
                << target.family << " fidelity at " << threads << " threads";
            EXPECT_EQ(rho.trace(), trace1)
                << target.family << " trace at " << threads << " threads";
            EXPECT_EQ(rho.purity(), purity1)
                << target.family << " purity at " << threads << " threads";
        }
    }
}

// Synthesis is compute-parallel / emit-sequential (synth/synthesizer.cpp):
// the cascade solves fan out, but emission replays the historical
// traversal order, so the circuit — and its QASM text — must be
// byte-identical at every thread count.
TEST(ThreadDeterminism, SynthesisQasmByteIdenticalAcrossThreadCounts) {
    for (const auto& target : targets()) {
        const StateVector state = makeTarget(target);
        const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);

        std::string qasm1;
        {
            const ScopedThreads scope(1);
            qasm1 = toQasm(synthesize(dd));
        }
        EXPECT_FALSE(qasm1.empty());

        for (const unsigned threads : {2U, 4U}) {
            const ScopedThreads scope(threads);
            EXPECT_EQ(toQasm(synthesize(dd)), qasm1)
                << target.family << " QASM at " << threads << " threads";
        }
    }
}

/// Controlled-gate-heavy circuits exercise the hoisted (block, inner)
/// control checks; the digit-check decomposition must agree with the
/// generic per-index digitAt walk for every control placement.
TEST(ThreadDeterminism, HoistedControlChecksMatchDigitWalk) {
    const Dimensions dims{3, 2, 4, 2};
    const MixedRadix radix(dims);
    Rng rng(777);
    StateVector state = states::random(dims, rng);
    // Controls on a more-significant site, a less-significant site, and
    // both; targets at the register edges and middle.
    const std::vector<Operation> ops = {
        Operation::givens(1, 0, 1, 0.7, 0.3, {{0, 2}}),
        Operation::givens(1, 0, 1, 0.7, 0.3, {{2, 3}}),
        Operation::givens(2, 1, 3, 1.2, -0.4, {{0, 1}, {3, 1}}),
        Operation::hadamard(0, {{2, 2}, {1, 1}}),
        Operation::shift(3, 1, {{0, 0}, {2, 0}}),
        Operation::phase(2, 0, 2, -0.9, {{1, 1}}),
    };
    StateVector expected = state;
    for (const auto& op : ops) {
        // Reference: the pre-hoist semantics, computed directly.
        const Dimension dim = radix.dimensionAt(op.target);
        const DenseMatrix local = op.localMatrix(dim);
        std::vector<Complex> next(expected.amplitudes().begin(), expected.amplitudes().end());
        const std::uint64_t stride = radix.strideAt(op.target);
        for (std::uint64_t base = 0; base < radix.totalDimension(); ++base) {
            if (radix.digitAt(base, op.target) != 0) {
                continue;
            }
            bool satisfied = true;
            for (const auto& ctrl : op.controls) {
                if (radix.digitAt(base, ctrl.qudit) != ctrl.level) {
                    satisfied = false;
                    break;
                }
            }
            if (op.kind == GateKind::GivensRotation || op.kind == GateKind::PhaseRotation ||
                op.kind == GateKind::LevelSwap) {
                // Two-level walk checks the controls on the index whose
                // target digit is levelA.
                const std::uint64_t idxA =
                    base + static_cast<std::uint64_t>(op.levelA) * stride;
                satisfied = true;
                for (const auto& ctrl : op.controls) {
                    if (radix.digitAt(idxA, ctrl.qudit) != ctrl.level) {
                        satisfied = false;
                        break;
                    }
                }
                if (!satisfied) {
                    continue;
                }
                const std::uint64_t idxB =
                    base + static_cast<std::uint64_t>(op.levelB) * stride;
                const Complex va = expected[idxA];
                const Complex vb = expected[idxB];
                next[idxA] = local(op.levelA, op.levelA) * va + local(op.levelA, op.levelB) * vb;
                next[idxB] = local(op.levelB, op.levelA) * va + local(op.levelB, op.levelB) * vb;
            } else {
                if (!satisfied) {
                    continue;
                }
                for (Dimension r = 0; r < dim; ++r) {
                    Complex acc{0.0, 0.0};
                    for (Dimension c = 0; c < dim; ++c) {
                        acc += local(r, c) *
                               expected[base + static_cast<std::uint64_t>(c) * stride];
                    }
                    next[base + static_cast<std::uint64_t>(r) * stride] = acc;
                }
            }
        }
        expected = StateVector(dims, std::move(next));

        Simulator::apply(state, op);
        for (std::uint64_t i = 0; i < state.size(); ++i) {
            ASSERT_NEAR(state[i].real(), expected[i].real(), 1e-12) << op.toString();
            ASSERT_NEAR(state[i].imag(), expected[i].imag(), 1e-12) << op.toString();
        }
    }
}

// --- shared-session batch determinism ---------------------------------------
//
// `DdBackend::verifyBatch` fans items out across the pool while
// every item interns into the backend's one shared DdSession. The sharded
// uniquing table guarantees the set of distinct node keys — and therefore
// the final `dd_nodes` — is a function of the work alone, not of the thread
// count or the interleaving; fidelities are bit-identical because every
// node key carries bit-equal weights no matter which thread interned it.
//
// The families are curated so no two distinct targets produce bucketed-
// equal-but-bit-different weights on a shared key (e.g. a ghz 1/sqrt(2)
// racing a cyclic sqrt(0.5) into the same bucket would make "who interns
// first" observable in the last ulp).

struct SharedSessionFixture {
    std::vector<StateVector> denseTargets;
    std::vector<Circuit> circuits;
    std::vector<EvalState> evalTargets;
    std::vector<VerifyRequest> items;

    SharedSessionFixture() {
        denseTargets.push_back(states::ghz({3, 4, 2, 3}));
        denseTargets.push_back(states::wState({2, 3, 2, 3}));
        denseTargets.push_back(states::cyclic({3, 4, 2, 3}, {1, 0, 1, 0}, 4));
        denseTargets.push_back(states::dicke({2, 3, 2}, 2));
        evalTargets.reserve(denseTargets.size());
        for (const auto& target : denseTargets) {
            circuits.push_back(prepareExact(target).circuit);
            evalTargets.emplace_back(target);
        }
        for (std::size_t i = 0; i < denseTargets.size(); ++i) {
            items.push_back({&circuits[i], &evalTargets[i]});
        }
    }
};

/// Run the fixture's batch on a fresh backend pinned to `threads`; also
/// build the cyclic and dicke targets as session diagrams first, so the
/// level-synchronous parallel builders contribute to the session's node
/// population at every thread count.
struct SharedSessionRun {
    std::vector<double> fidelities;
    std::uint64_t poolNodes = 0;

    SharedSessionRun(const SharedSessionFixture& fixture, unsigned threads,
                     bool reverseItems = false) {
        const DdBackend backend(Tolerance::kDefault, parallel::ExecutionConfig{threads});
        const auto session = backend.ddSession();
        const DecisionDiagram cyclicDd = session->cyclicState({3, 4, 2, 3}, {1, 0, 1, 0}, 4);
        const DecisionDiagram dickeDd = session->dickeState({2, 3, 2}, 2);
        EXPECT_NEAR(cyclicDd.normSquared(), 1.0, 1e-9);
        EXPECT_NEAR(dickeDd.normSquared(), 1.0, 1e-9);

        std::vector<VerifyRequest> items = fixture.items;
        if (reverseItems) {
            std::reverse(items.begin(), items.end());
        }
        const auto results = backend.verifyBatch(items);
        for (const auto& result : results) {
            EXPECT_FALSE(result.failed) << result.error;
            fidelities.push_back(result.fidelity);
        }
        if (reverseItems) {
            std::reverse(fidelities.begin(), fidelities.end());
        }
        poolNodes = session->stats().poolNodes;
    }
};

TEST(SharedSessionDeterminism, BatchFidelitiesBitIdenticalAcrossThreadCounts) {
    const SharedSessionFixture fixture;
    const SharedSessionRun baseline(fixture, 1);
    ASSERT_EQ(baseline.fidelities.size(), fixture.items.size());
    for (const double fidelity : baseline.fidelities) {
        EXPECT_NEAR(fidelity, 1.0, 1e-9);
    }
    for (const unsigned threads : {2U, 4U, 7U}) {
        const SharedSessionRun run(fixture, threads);
        ASSERT_EQ(run.fidelities.size(), baseline.fidelities.size());
        for (std::size_t i = 0; i < run.fidelities.size(); ++i) {
            // Bit-identical, not merely close.
            EXPECT_EQ(run.fidelities[i], baseline.fidelities[i])
                << "item " << i << " at " << threads << " threads";
        }
    }
}

TEST(SharedSessionDeterminism, SessionNodeCountInvariantAcrossThreadCounts) {
    const SharedSessionFixture fixture;
    const SharedSessionRun baseline(fixture, 1);
    EXPECT_GT(baseline.poolNodes, 1U);
    for (const unsigned threads : {2U, 4U, 7U}) {
        const SharedSessionRun run(fixture, threads);
        EXPECT_EQ(run.poolNodes, baseline.poolNodes) << threads << " threads";
    }
}

TEST(SharedSessionDeterminism, ItemOrderDoesNotChangeFidelitiesOrNodeCount) {
    const SharedSessionFixture fixture;
    const SharedSessionRun forward(fixture, 4);
    const SharedSessionRun reversed(fixture, 4, /*reverseItems=*/true);
    ASSERT_EQ(reversed.fidelities.size(), forward.fidelities.size());
    for (std::size_t i = 0; i < forward.fidelities.size(); ++i) {
        EXPECT_EQ(reversed.fidelities[i], forward.fidelities[i]) << "item " << i;
    }
    EXPECT_EQ(reversed.poolNodes, forward.poolNodes);
}

// --- session-backed intra-apply determinism ----------------------------------
//
// Single-item DdBackend calls fan *within* one diagram: gate application
// rebuilds all target-level nodes in parallel against the session's
// sharded uniquing table (dd/apply.cpp), and equivalence checking fans
// multiply's top-level product cells out on the shared operator store
// (mdd/matrix_dd.cpp). Both compute in parallel and intern sequentially
// in canonical order, so the session's `dd_nodes` and every fidelity are
// functions of the work alone — invariant across thread counts and item
// order, bit-for-bit.

struct SessionApplyFixture {
    std::vector<StateVector> denseTargets;
    std::vector<Circuit> circuits;

    SessionApplyFixture() {
        Rng rng(424242);
        denseTargets.push_back(states::random({9, 5, 6, 3}, rng));
        denseTargets.push_back(states::ghz({3, 4, 2, 5}));
        denseTargets.push_back(states::wState({2, 3, 2, 3, 2}));
        for (const auto& target : denseTargets) {
            circuits.push_back(prepareExact(target).circuit);
        }
    }
};

/// Replay and verify every fixture item on a fresh backend pinned to
/// `threads`, optionally in reverse item order (results are re-indexed to
/// the fixture order either way, so runs compare element-wise).
struct SessionApplyRun {
    std::vector<double> replayFidelities;
    std::vector<double> verifyFidelities;
    std::uint64_t poolNodes = 0;

    SessionApplyRun(const SessionApplyFixture& fixture, unsigned threads,
                    bool reverseItems = false) {
        const DdBackend backend(Tolerance::kDefault, parallel::ExecutionConfig{threads});
        std::vector<std::size_t> order(fixture.circuits.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            order[i] = i;
        }
        if (reverseItems) {
            std::reverse(order.begin(), order.end());
        }
        replayFidelities.resize(order.size(), 0.0);
        verifyFidelities.resize(order.size(), 0.0);
        for (const std::size_t i : order) {
            const EvalState out = backend.runFromZero(fixture.circuits[i]);
            replayFidelities[i] =
                fixture.denseTargets[i].fidelityWith(out.toStateVector(4096));
            verifyFidelities[i] = backend.preparationFidelity(
                fixture.circuits[i], EvalState(fixture.denseTargets[i]));
        }
        poolNodes = backend.ddSession()->stats().poolNodes;
    }
};

TEST(SessionApplyDeterminism, FidelitiesBitIdenticalAcrossThreadCounts) {
    const SessionApplyFixture fixture;
    const SessionApplyRun baseline(fixture, 1);
    for (std::size_t i = 0; i < baseline.replayFidelities.size(); ++i) {
        EXPECT_NEAR(baseline.replayFidelities[i], 1.0, 1e-9) << "item " << i;
        EXPECT_NEAR(baseline.verifyFidelities[i], 1.0, 1e-9) << "item " << i;
    }
    for (const unsigned threads : {2U, 4U, 7U}) {
        const SessionApplyRun run(fixture, threads);
        for (std::size_t i = 0; i < run.replayFidelities.size(); ++i) {
            // Bit-identical, not merely close.
            EXPECT_EQ(run.replayFidelities[i], baseline.replayFidelities[i])
                << "replay item " << i << " at " << threads << " threads";
            EXPECT_EQ(run.verifyFidelities[i], baseline.verifyFidelities[i])
                << "verify item " << i << " at " << threads << " threads";
        }
    }
}

TEST(SessionApplyDeterminism, SessionNodeCountInvariantAcrossThreadCounts) {
    const SessionApplyFixture fixture;
    const SessionApplyRun baseline(fixture, 1);
    EXPECT_GT(baseline.poolNodes, 1U);
    for (const unsigned threads : {2U, 4U, 7U}) {
        const SessionApplyRun run(fixture, threads);
        EXPECT_EQ(run.poolNodes, baseline.poolNodes) << threads << " threads";
    }
}

TEST(SessionApplyDeterminism, ItemOrderDoesNotChangeFidelitiesOrNodeCount) {
    const SessionApplyFixture fixture;
    const SessionApplyRun forward(fixture, 4);
    const SessionApplyRun reversed(fixture, 4, /*reverseItems=*/true);
    ASSERT_EQ(reversed.replayFidelities.size(), forward.replayFidelities.size());
    for (std::size_t i = 0; i < forward.replayFidelities.size(); ++i) {
        EXPECT_EQ(reversed.replayFidelities[i], forward.replayFidelities[i])
            << "replay item " << i;
        EXPECT_EQ(reversed.verifyFidelities[i], forward.verifyFidelities[i])
            << "verify item " << i;
    }
    EXPECT_EQ(reversed.poolNodes, forward.poolNodes);
}

} // namespace
} // namespace mqsp
