// Edge-of-the-envelope registers: single qudits, one large qudit, deep
// qubit-only chains, and two-level everything — places where off-by-one
// bugs in mixed-radix handling, tree construction or cascade emission like
// to hide.

#include "mqsp/approx/approximation.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(EdgeRegisters, SingleQubit) {
    Rng rng(1);
    const StateVector target = states::random({2}, rng);
    const auto prep = prepareExact(target);
    // One node, paper-faithful: 1 phase + 1 rotation.
    EXPECT_EQ(prep.circuit.numOperations(), 2U);
    EXPECT_NEAR(Simulator::preparationFidelity(prep.circuit, target), 1.0, 1e-10);
}

TEST(EdgeRegisters, SingleLargeQudit) {
    Rng rng(2);
    const StateVector target = states::random({16}, rng);
    const auto prep = prepareExact(target);
    EXPECT_EQ(prep.circuit.numOperations(), 16U); // d ops for the single node
    EXPECT_EQ(prep.circuit.stats().maxControls, 0U);
    EXPECT_NEAR(Simulator::preparationFidelity(prep.circuit, target), 1.0, 1e-10);
}

TEST(EdgeRegisters, DeepQubitChain) {
    // Ten qubits: 1024 amplitudes, depth-10 tree, deep control chains.
    const Dimensions dims(10, Dimension{2});
    const StateVector target = states::wState(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    EXPECT_NEAR(Simulator::preparationFidelity(prep.circuit, target), 1.0, 1e-9);
    // DD-native verification agrees.
    const DecisionDiagram simulated = DecisionDiagram::simulateCircuit(prep.circuit);
    EXPECT_NEAR(simulated.fidelityWith(target), 1.0, 1e-8);
}

TEST(EdgeRegisters, TwoSitesMaximallyAsymmetric) {
    Rng rng(3);
    const StateVector target = states::random({2, 12}, rng);
    const auto prep = prepareExact(target);
    EXPECT_NEAR(Simulator::preparationFidelity(prep.circuit, target), 1.0, 1e-9);
    const StateVector flipped = states::random({12, 2}, rng);
    const auto prepFlipped = prepareExact(flipped);
    EXPECT_NEAR(Simulator::preparationFidelity(prepFlipped.circuit, flipped), 1.0, 1e-9);
}

TEST(EdgeRegisters, ApproximationOnDeepChains) {
    Rng rng(4);
    const Dimensions dims(8, Dimension{2});
    const StateVector target = states::random(dims, rng);
    const auto result = prepareApproximated(target, 0.95);
    const double fidelity = Simulator::preparationFidelity(result.circuit, target);
    EXPECT_GE(fidelity + 1e-9, 0.95);
    EXPECT_NEAR(fidelity, result.approx.fidelity, 1e-8);
}

TEST(EdgeRegisters, SynthesisFromReducedStructuredDiagrams) {
    // Reduction shares sub-trees; the traversal must still visit each
    // shared child once per path and produce the exact state.
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        for (int which = 0; which < 3; ++which) {
            const StateVector target = which == 0   ? states::ghz(dims)
                                       : which == 1 ? states::wState(dims)
                                                    : states::embeddedWState(dims);
            DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
            dd.reduce();
            dd.garbageCollect();
            for (const bool elide : {true, false}) {
                SynthesisOptions options;
                options.elideTensorProductControls = elide;
                options.emitIdentityOperations = false;
                const Circuit circuit = synthesize(dd, options);
                EXPECT_NEAR(Simulator::preparationFidelity(circuit, target), 1.0, 1e-9)
                    << formatDimensionSpec(dims) << " which=" << which
                    << " elide=" << elide;
            }
        }
    }
}

TEST(EdgeRegisters, AmplitudeAtTheVeryLastIndex) {
    // Basis state at the maximal flat index stresses stride arithmetic.
    const Dimensions dims{5, 4, 3};
    Digits top{4, 3, 2};
    const StateVector target = StateVector::basis(dims, top);
    const auto prep = prepareExact(target);
    EXPECT_NEAR(Simulator::preparationFidelity(prep.circuit, target), 1.0, 1e-10);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    EXPECT_NEAR(std::abs(dd.amplitudeOf(top)), 1.0, 1e-12);
}

TEST(EdgeRegisters, NearZeroAmplitudesAtToleranceBoundary) {
    // Amplitudes straddling the zero tolerance: below-threshold entries
    // become structural zeros, above-threshold ones survive.
    StateVector state({2, 2});
    state[0] = Complex{1.0, 0.0};
    state[1] = Complex{5e-11, 0.0};  // below default tolerance -> dropped
    state[2] = Complex{5e-9, 0.0};   // above -> kept
    state[3] = Complex{0.0, 0.0};
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({0, 1})), 0.0, 1e-15);
    EXPECT_GT(std::abs(dd.amplitudeOf({1, 0})), 0.0);
    EXPECT_EQ(dd.checkInvariants(), "");
}

class EdgeRegisterSweep : public ::testing::TestWithParam<Dimensions> {};

TEST_P(EdgeRegisterSweep, ExactPipelineOnUnusualShapes) {
    Rng rng(99);
    const StateVector target = states::random(GetParam(), rng);
    const auto prep = prepareExact(target);
    EXPECT_NEAR(Simulator::preparationFidelity(prep.circuit, target), 1.0, 1e-9);
    EXPECT_EQ(prep.diagram.checkInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Shapes, EdgeRegisterSweep,
                         ::testing::Values(Dimensions{2, 16}, Dimensions{16, 2},
                                           Dimensions{2, 2, 2, 2, 2, 2, 2},
                                           Dimensions{11, 3}, Dimensions{3, 11},
                                           Dimensions{7, 7}, Dimensions{2, 3, 5, 7}));

} // namespace
} // namespace mqsp
