// Unit tests for the shared CLI argument helpers (tools/cli_args.hpp) used
// by mqsp_prep, mqsp_sim and the benchmark harness.

#include "cli_args.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mqsp::cli {
namespace {

/// argv builder: the pointers stay valid while the Args object lives.
struct Args {
    explicit Args(std::vector<const char*> words) : storage(std::move(words)) {
        storage.insert(storage.begin(), "prog");
    }
    [[nodiscard]] int argc() const { return static_cast<int>(storage.size()); }
    [[nodiscard]] char** argv() {
        return const_cast<char**>(storage.data());
    }
    std::vector<const char*> storage;
};

TEST(CliArgs, ValuePresentAndAbsent) {
    Args args({"--dims", "3,6,2", "--qasm"});
    EXPECT_EQ(argValue(args.argc(), args.argv(), "--dims"), "3,6,2");
    EXPECT_FALSE(argValue(args.argc(), args.argv(), "--state").has_value());
    // A trailing flag has no following value.
    EXPECT_FALSE(argValue(args.argc(), args.argv(), "--qasm").has_value());
}

TEST(CliArgs, LastOccurrenceWins) {
    Args args({"--seed", "1", "--seed", "2"});
    EXPECT_EQ(argValue(args.argc(), args.argv(), "--seed"), "2");
    EXPECT_EQ(argUint(args.argc(), args.argv(), "--seed", 0), 2u);
}

TEST(CliArgs, FlagDetection) {
    Args args({"--verify", "--dims", "3,2"});
    EXPECT_TRUE(argFlag(args.argc(), args.argv(), "--verify"));
    EXPECT_FALSE(argFlag(args.argc(), args.argv(), "--optimize"));
    // A value is not a flag match target, but literal matches anywhere count.
    EXPECT_TRUE(argFlag(args.argc(), args.argv(), "3,2"));
}

TEST(CliArgs, UintParsesAndFallsBack) {
    Args args({"--reps", "40"});
    EXPECT_EQ(argUint(args.argc(), args.argv(), "--reps", 7), 40u);
    EXPECT_EQ(argUint(args.argc(), args.argv(), "--warmup", 7), 7u);
}

TEST(CliArgs, UintRejectsMalformedInputNamingTheFlag) {
    Args args({"--seed", "12abc"});
    try {
        (void)argUint(args.argc(), args.argv(), "--seed", 0);
        FAIL() << "expected mqsp::InvalidArgumentError";
    } catch (const mqsp::InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find("--seed"), std::string::npos);
        EXPECT_NE(std::string(error.what()).find("12abc"), std::string::npos);
    }
}

TEST(CliArgs, UintRejectsNegativeAndEmpty) {
    Args negative({"--reps", "-3"});
    EXPECT_THROW((void)argUint(negative.argc(), negative.argv(), "--reps", 0),
                 mqsp::InvalidArgumentError);
    Args empty({"--reps", ""});
    EXPECT_THROW((void)argUint(empty.argc(), empty.argv(), "--reps", 0),
                 mqsp::InvalidArgumentError);
}

TEST(CliArgs, DoubleParsesAndFallsBack) {
    Args args({"--approx", "0.98"});
    EXPECT_DOUBLE_EQ(argDouble(args.argc(), args.argv(), "--approx", 1.0), 0.98);
    EXPECT_DOUBLE_EQ(argDouble(args.argc(), args.argv(), "--threshold", 1.0), 1.0);
}

TEST(CliArgs, DoubleRejectsTrailingGarbage) {
    Args args({"--approx", "0.98x"});
    EXPECT_THROW((void)argDouble(args.argc(), args.argv(), "--approx", 1.0),
                 mqsp::InvalidArgumentError);
}

} // namespace
} // namespace mqsp::cli
