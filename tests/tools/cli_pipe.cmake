# CTest script: the documented shell pipe `mqsp_prep --qasm | mqsp_sim
# --qasm -`, with no temp file in between. execute_process chains the two
# COMMANDs through a native pipe, so mqsp_sim genuinely reads its circuit
# from stdin. -DSTREAM=1 switches the consumer to the gate-by-gate replay
# (`--stream --checkpoint 1`), pinning that the streaming reader works off
# a pipe it can never rewind and that every checkpoint reports norm2 1.0.
# Run via:
#   cmake -DMQSP_PREP=... -DMQSP_SIM=... [-DSTREAM=1] -P cli_pipe.cmake

if(STREAM)
  set(sim_args --qasm - --stream --checkpoint 1 --backend dd)
else()
  set(sim_args --qasm - --print-state --shots 50 --seed 7)
endif()

execute_process(
  COMMAND ${MQSP_PREP} --dims 3,6,2 --state ghz --qasm
  COMMAND ${MQSP_SIM} ${sim_args}
  OUTPUT_VARIABLE sim_stdout
  ERROR_VARIABLE pipe_stderr
  RESULTS_VARIABLE pipe_results)
foreach(result IN LISTS pipe_results)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "pipe failed (${pipe_results}): ${pipe_stderr}\n${sim_stdout}")
  endif()
endforeach()

if(STREAM)
  if(NOT sim_stdout MATCHES "streaming circuit on \\[1x3,1x6,1x2\\]: dd backend")
    message(FATAL_ERROR "--stream did not announce the streamed register:\n${sim_stdout}")
  endif()
  # Per-gate checkpoints: the replay is unitary, so norm2 holds at every one.
  if(NOT sim_stdout MATCHES "checkpoint op 1: norm2 1\\.000000000")
    message(FATAL_ERROR "--checkpoint 1 emitted no first checkpoint:\n${sim_stdout}")
  endif()
  if(NOT sim_stdout MATCHES "streamed [0-9]+ ops: norm2 1\\.000000000")
    message(FATAL_ERROR "--stream final norm2 is not 1.0:\n${sim_stdout}")
  endif()
else()
  # GHZ on [3,6,2]: exactly the |0 0 0> and |1 1 1> kets, each at p = 0.5 —
  # the same contract the temp-file round trip pins, now through stdin.
  foreach(ket "|0 0 0>" "|1 1 1>")
    if(NOT sim_stdout MATCHES "\\${ket}")
      message(FATAL_ERROR "piped mqsp_sim output missing ${ket}:\n${sim_stdout}")
    endif()
  endforeach()
  if(NOT sim_stdout MATCHES "p = 0\\.500000")
    message(FATAL_ERROR "piped mqsp_sim output missing p = 0.5 amplitudes:\n${sim_stdout}")
  endif()
endif()

message(STATUS "cli_pipe OK")
