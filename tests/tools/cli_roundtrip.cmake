# CTest script: mqsp_prep --qasm must leave a clean, parseable MQSP-QASM
# circuit on stdout (statistics belong on stderr), and mqsp_sim must
# replay it to the expected GHZ state. Run via:
#   cmake -DMQSP_PREP=... -DMQSP_SIM=... -DWORK_DIR=... -P cli_roundtrip.cmake

set(qasm_file ${WORK_DIR}/cli_roundtrip_ghz.qasm)

execute_process(
  COMMAND ${MQSP_PREP} --dims 3,6,2 --state ghz --verify --qasm
  OUTPUT_FILE ${qasm_file}
  ERROR_VARIABLE prep_stderr
  RESULT_VARIABLE prep_result)
if(NOT prep_result EQUAL 0)
  message(FATAL_ERROR "mqsp_prep failed (${prep_result}): ${prep_stderr}")
endif()

# The statistics report must be on stderr...
if(NOT prep_stderr MATCHES "verified fidelity : 1\\.0")
  message(FATAL_ERROR "mqsp_prep stderr missing fidelity report: ${prep_stderr}")
endif()

# ...and stdout must be pure MQSP-QASM, header first.
file(READ ${qasm_file} qasm_text)
if(NOT qasm_text MATCHES "^MQSPQASM 1\\.0;")
  message(FATAL_ERROR "--qasm stdout does not start with the MQSPQASM header:\n${qasm_text}")
endif()
if(qasm_text MATCHES "register|diagram nodes|operations")
  message(FATAL_ERROR "--qasm stdout polluted with statistics:\n${qasm_text}")
endif()

execute_process(
  COMMAND ${MQSP_SIM} --qasm ${qasm_file} --print-state --shots 100 --seed 7
  OUTPUT_VARIABLE sim_stdout
  ERROR_VARIABLE sim_stderr
  RESULT_VARIABLE sim_result)
if(NOT sim_result EQUAL 0)
  message(FATAL_ERROR "mqsp_sim failed (${sim_result}): ${sim_stderr}")
endif()

# GHZ on [3,6,2]: exactly the |0 0 0> and |1 1 1> kets, each at p = 0.5.
foreach(ket "|0 0 0>" "|1 1 1>")
  if(NOT sim_stdout MATCHES "\\${ket}")
    message(FATAL_ERROR "mqsp_sim output missing ${ket}:\n${sim_stdout}")
  endif()
endforeach()
if(NOT sim_stdout MATCHES "p = 0\\.500000")
  message(FATAL_ERROR "mqsp_sim output missing p = 0.5 amplitudes:\n${sim_stdout}")
endif()

message(STATUS "cli_roundtrip OK")
