# CTest script: negative-path CLI check. Runs
#   ${TOOL} ${TOOL_ARGS}
# and requires a NONZERO exit code plus a stderr line matching EXPECT —
# pinning that malformed untrusted input dies with one actionable message
# instead of a raw stdlib exception trace or a silent wrap-around.
#
# Optional: WRITE_FILE/FILE_CONTENT materialize a (deliberately broken)
# input fixture before the run; "\n" in FILE_CONTENT becomes a newline.

if(DEFINED WRITE_FILE)
  string(REPLACE "\\n" "\n" file_content "${FILE_CONTENT}")
  file(WRITE ${WRITE_FILE} "${file_content}")
endif()

separate_arguments(tool_args UNIX_COMMAND "${TOOL_ARGS}")
execute_process(
  COMMAND ${TOOL} ${tool_args}
  OUTPUT_VARIABLE run_stdout
  ERROR_VARIABLE run_stderr
  RESULT_VARIABLE run_result)

if(run_result EQUAL 0)
  message(FATAL_ERROR
    "expected a failure exit code for: ${TOOL} ${TOOL_ARGS}\n"
    "stdout: ${run_stdout}\nstderr: ${run_stderr}")
endif()

if(NOT run_stderr MATCHES "${EXPECT}")
  message(FATAL_ERROR
    "stderr did not match '${EXPECT}' for: ${TOOL} ${TOOL_ARGS}\n"
    "exit: ${run_result}\nstderr: ${run_stderr}")
endif()

# A clean refusal is one diagnostic, not an unwound stack trace: no raw
# stdlib exception names may leak through.
if(run_stderr MATCHES "std::|terminate|Aborted")
  message(FATAL_ERROR "stderr leaked a raw exception for: ${TOOL} ${TOOL_ARGS}\n${run_stderr}")
endif()

message(STATUS "cli_error OK: ${TOOL_ARGS}")
