# CTest script: golden-file round trip for one fixture circuit. Runs
#   mqsp_prep --dims <PREP_DIMS> --state <PREP_STATE> [--seed <PREP_SEED>]
#             [--backend <PREP_BACKEND>] --verify --qasm
# and diffs the emitted MQSP-QASM against the committed golden file — this
# pins the MQSP-QASM dialect at the CLI layer. The stderr fidelity report
# must show exact preparation (whatever the evaluation backend), and
# mqsp_sim must replay the golden circuit on the same backend.
#
# Regenerate a golden after an *intentional* dialect change with -DUPDATE=1:
#   cmake -DMQSP_PREP=build/tools/mqsp_prep -DMQSP_SIM=build/tools/mqsp_sim \
#         -DGOLDEN_DIR=tests/tools/golden -DWORK_DIR=/tmp -DCASE_NAME=ghz_362 \
#         -DPREP_DIMS=3,6,2 -DPREP_STATE=ghz -DUPDATE=1 -P cli_golden.cmake

set(golden_file ${GOLDEN_DIR}/${CASE_NAME}.qasm)
set(actual_suffix ${CASE_NAME})
if(DEFINED PREP_THREADS)
  # Thread variants diff against the SAME golden file — synthesis is
  # compute-parallel / emit-sequential, so the QASM must be byte-identical
  # at any --threads. Only the scratch file name gets a suffix (the t1 and
  # tN tests may run concurrently under ctest -j).
  set(actual_suffix ${CASE_NAME}_t${PREP_THREADS})
endif()
set(actual_file ${WORK_DIR}/golden_actual_${actual_suffix}.qasm)

set(prep_args --dims ${PREP_DIMS} --state ${PREP_STATE})
if(DEFINED PREP_SEED)
  list(APPEND prep_args --seed ${PREP_SEED})
endif()
set(sim_args "")
if(DEFINED PREP_THREADS)
  list(APPEND prep_args --threads ${PREP_THREADS})
  list(APPEND sim_args --threads ${PREP_THREADS})
endif()
if(DEFINED PREP_BACKEND)
  list(APPEND prep_args --backend ${PREP_BACKEND})
  list(APPEND sim_args --backend ${PREP_BACKEND})
  # The stderr report must name the backend that actually ran.
  set(expected_backend_line "backend           : ${PREP_BACKEND}")
endif()

execute_process(
  COMMAND ${MQSP_PREP} ${prep_args} --verify --qasm
  OUTPUT_FILE ${actual_file}
  ERROR_VARIABLE prep_stderr
  RESULT_VARIABLE prep_result)
if(NOT prep_result EQUAL 0)
  message(FATAL_ERROR "mqsp_prep failed (${prep_result}): ${prep_stderr}")
endif()

# Exact synthesis must verify at fidelity 1 (the golden fidelity output).
if(NOT prep_stderr MATCHES "verified fidelity : 1\\.0000000")
  message(FATAL_ERROR "mqsp_prep fidelity not exact for ${CASE_NAME}: ${prep_stderr}")
endif()
if(DEFINED expected_backend_line AND NOT prep_stderr MATCHES "${expected_backend_line}")
  message(FATAL_ERROR
    "mqsp_prep did not run on the ${PREP_BACKEND} backend for ${CASE_NAME}: ${prep_stderr}")
endif()

if(UPDATE)
  file(READ ${actual_file} actual_text)
  file(WRITE ${golden_file} "${actual_text}")
  message(STATUS "updated golden ${golden_file}")
  return()
endif()

if(NOT EXISTS ${golden_file})
  message(FATAL_ERROR "missing golden file ${golden_file}; regenerate with -DUPDATE=1")
endif()

file(READ ${golden_file} golden_text)
file(READ ${actual_file} actual_text)
if(NOT golden_text STREQUAL actual_text)
  message(FATAL_ERROR
    "MQSP-QASM output for ${CASE_NAME} differs from the committed golden.\n"
    "golden: ${golden_file}\nactual: ${actual_file}\n"
    "If the dialect change is intentional, regenerate with -DUPDATE=1 "
    "(see the header of cli_golden.cmake).")
endif()

# The golden circuit must still replay through the simulator (on the same
# backend the fixture targets).
execute_process(
  COMMAND ${MQSP_SIM} --qasm ${golden_file} ${sim_args}
  OUTPUT_VARIABLE sim_stdout
  ERROR_VARIABLE sim_stderr
  RESULT_VARIABLE sim_result)
if(NOT sim_result EQUAL 0)
  message(FATAL_ERROR "mqsp_sim failed on golden ${CASE_NAME} (${sim_result}): ${sim_stderr}")
endif()
if(NOT sim_stdout MATCHES "circuit on")
  message(FATAL_ERROR "mqsp_sim did not report the parsed circuit:\n${sim_stdout}")
endif()

message(STATUS "cli_golden ${CASE_NAME} OK")
