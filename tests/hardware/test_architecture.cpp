#include "mqsp/hardware/architecture.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(Architecture, AllToAllConnectsEveryPair) {
    const auto arch = Architecture::allToAll({3, 6, 2, 4});
    EXPECT_EQ(arch.numSites(), 4U);
    EXPECT_EQ(arch.numEdges(), 6U);
    for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = 0; b < 4; ++b) {
            EXPECT_EQ(arch.connected(a, b), a != b);
        }
    }
}

TEST(Architecture, LinearChainConnectsNeighboursOnly) {
    const auto arch = Architecture::linearChain({2, 2, 2, 2});
    EXPECT_TRUE(arch.connected(0, 1));
    EXPECT_TRUE(arch.connected(2, 3));
    EXPECT_FALSE(arch.connected(0, 2));
    EXPECT_FALSE(arch.connected(0, 3));
    EXPECT_EQ(arch.numEdges(), 3U);
}

TEST(Architecture, RingAddsWrapAround) {
    const auto arch = Architecture::ring({3, 3, 3, 3});
    EXPECT_TRUE(arch.connected(3, 0));
    EXPECT_FALSE(arch.connected(0, 2));
    EXPECT_EQ(arch.numEdges(), 4U);
    EXPECT_THROW((void)Architecture::ring({2, 2}), InvalidArgumentError);
}

TEST(Architecture, ConnectivityIsSymmetric) {
    const Architecture arch("custom", {2, 3, 2}, {{0, 1}, {1, 2}});
    EXPECT_TRUE(arch.connected(0, 1));
    EXPECT_TRUE(arch.connected(1, 0));
    EXPECT_FALSE(arch.connected(0, 0));
}

TEST(Architecture, RejectsBadEdges) {
    EXPECT_THROW(Architecture("x", {2, 2}, {{0, 5}}), InvalidArgumentError);
    EXPECT_THROW(Architecture("x", {2, 2}, {{1, 1}}), InvalidArgumentError);
}

TEST(Architecture, RejectsDisconnectedGraphs) {
    EXPECT_THROW(Architecture("x", {2, 2, 2, 2}, {{0, 1}, {2, 3}}), InvalidArgumentError);
    EXPECT_THROW(Architecture("x", {2, 2}, {}), InvalidArgumentError);
}

TEST(Architecture, RejectsBadDimensions) {
    EXPECT_THROW(Architecture("x", {}, {}), InvalidArgumentError);
    EXPECT_THROW(Architecture("x", {2, 1}, {{0, 1}}), InvalidArgumentError);
}

TEST(Architecture, ShortestPathOnChain) {
    const auto arch = Architecture::linearChain({2, 2, 2, 2, 2});
    EXPECT_EQ(arch.shortestPath(0, 4), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(arch.shortestPath(2, 2), (std::vector<std::size_t>{2}));
    EXPECT_EQ(arch.shortestPath(3, 1), (std::vector<std::size_t>{3, 2, 1}));
}

TEST(Architecture, ShortestPathUsesRingWrapAround) {
    const auto arch = Architecture::ring({2, 2, 2, 2, 2, 2});
    const auto path = arch.shortestPath(0, 5);
    EXPECT_EQ(path, (std::vector<std::size_t>{0, 5}));
    EXPECT_EQ(arch.shortestPath(0, 3).size(), 4U); // either way is 3 hops
}

TEST(Architecture, NoiseModelDefaultsAndOverrides) {
    NoiseModel noisy;
    noisy.twoQuditError = 0.05;
    const auto arch = Architecture::allToAll({2, 2}, noisy);
    EXPECT_DOUBLE_EQ(arch.noise().twoQuditError, 0.05);
    EXPECT_DOUBLE_EQ(arch.noise().singleQuditError, 1e-4);
}

} // namespace
} // namespace mqsp
