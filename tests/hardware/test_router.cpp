#include "mqsp/hardware/router.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mqsp {
namespace {

constexpr double kPi = std::numbers::pi;

StateVector randomState(const Dimensions& dims, std::uint64_t seed) {
    Rng rng(seed);
    return states::random(dims, rng);
}

/// Exhaustive process check: the routed circuit must equal the original on
/// every basis state of the register.
void expectSameProcess(const Circuit& original, const Circuit& routed, double tol = 1e-9) {
    const MixedRadix& radix = original.radix();
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        StateVector input(original.dimensions());
        input[0] = Complex{0.0, 0.0};
        input[index] = Complex{1.0, 0.0};
        const StateVector want = Simulator::run(original, input);
        const StateVector got = Simulator::run(routed, input);
        for (std::uint64_t i = 0; i < want.size(); ++i) {
            EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, tol)
                << "input " << index << " amplitude " << i;
        }
    }
}

TEST(Swap, ExchangesQutritPairExactly) {
    Circuit circuit({3, 3});
    appendSwap(circuit, 0, 1);
    const MixedRadix radix({3, 3});
    for (std::uint64_t index = 0; index < 9; ++index) {
        StateVector input({3, 3});
        input[0] = Complex{0.0, 0.0};
        input[index] = Complex{1.0, 0.0};
        const StateVector out = Simulator::run(circuit, input);
        const auto digits = radix.digitsOf(index);
        EXPECT_NEAR(out.at({digits[1], digits[0]}).real(), 1.0, 1e-12)
            << "index " << index;
    }
}

TEST(Swap, ExchangesSuperpositionsWithPhases) {
    // Not just permutation of basis states: amplitudes and phases must move.
    Circuit circuit({4, 4});
    appendSwap(circuit, 0, 1);
    const StateVector input = randomState({4, 4}, 3);
    const StateVector out = Simulator::run(circuit, input);
    const MixedRadix radix({4, 4});
    for (std::uint64_t index = 0; index < 16; ++index) {
        const auto digits = radix.digitsOf(index);
        EXPECT_NEAR(std::abs(out.at({digits[1], digits[0]}) - input.at(digits)), 0.0,
                    1e-10);
    }
}

TEST(Swap, SelfInverse) {
    Circuit circuit({5, 5});
    appendSwap(circuit, 0, 1);
    appendSwap(circuit, 0, 1);
    const StateVector input = randomState({5, 5}, 9);
    const StateVector out = Simulator::run(circuit, input);
    for (std::uint64_t i = 0; i < input.size(); ++i) {
        EXPECT_NEAR(std::abs(out[i] - input[i]), 0.0, 1e-10);
    }
}

TEST(Swap, RejectsDifferentDimensions) {
    Circuit circuit({3, 2});
    EXPECT_THROW(appendSwap(circuit, 0, 1), InvalidArgumentError);
}

TEST(Router, PassesThroughWhenAllPairsCoupled) {
    const Dimensions dims{3, 3, 3};
    Circuit circuit(dims);
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::givens(2, 0, 1, 0.7, 0.2, {{0, 1}}));
    const auto arch = Architecture::allToAll(dims);
    const auto routed = routeCircuit(circuit, arch);
    EXPECT_EQ(routed.swapsInserted, 0U);
    EXPECT_EQ(routed.circuit.numOperations(), 2U);
}

TEST(Router, InsertsSwapsOnAChain) {
    const Dimensions dims{3, 3, 3};
    Circuit circuit(dims);
    circuit.append(Operation::givens(2, 0, 1, 1.1, -0.4, {{0, 2}}));
    const auto arch = Architecture::linearChain(dims);
    const auto routed = routeCircuit(circuit, arch);
    EXPECT_EQ(routed.swapsInserted, 2U); // there and back
    expectSameProcess(circuit, routed.circuit);
}

TEST(Router, LongerChainsRouteAcrossSeveralHops) {
    const Dimensions dims{2, 2, 2, 2};
    Circuit circuit(dims);
    circuit.append(Operation::givens(3, 0, 1, kPi / 3.0, 0.8, {{0, 1}}));
    const auto arch = Architecture::linearChain(dims);
    const auto routed = routeCircuit(circuit, arch);
    EXPECT_EQ(routed.swapsInserted, 4U);
    expectSameProcess(circuit, routed.circuit);
}

TEST(Router, MixedCircuitOnChain) {
    const Dimensions dims{3, 3, 3};
    Circuit circuit(dims);
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::givens(1, 0, 2, 0.9, 0.1, {{0, 1}}));
    circuit.append(Operation::phase(2, 0, 1, 1.3, {{0, 2}}));
    circuit.append(Operation::shift(2, 1, {{1, 1}}));
    const auto arch = Architecture::linearChain(dims);
    const auto routed = routeCircuit(circuit, arch);
    expectSameProcess(circuit, routed.circuit);
}

TEST(Router, RejectsRegisterMismatchAndMultiControls) {
    Circuit circuit({3, 3});
    circuit.append(Operation::givens(1, 0, 1, 0.5, 0.0, {{0, 1}}));
    EXPECT_THROW((void)routeCircuit(circuit, Architecture::allToAll({3, 3, 3})),
                 InvalidArgumentError);

    Circuit multi({2, 2, 2});
    multi.append(Operation::givens(2, 0, 1, 0.5, 0.0, {{0, 1}, {1, 1}}));
    EXPECT_THROW((void)routeCircuit(multi, Architecture::allToAll({2, 2, 2})),
                 InvalidArgumentError);
}

TEST(Router, RejectsRoutingThroughMismatchedDimensions) {
    // Control must travel through a site of different dimension -> error.
    const Dimensions dims{3, 2, 3};
    Circuit circuit(dims);
    circuit.append(Operation::givens(2, 0, 1, 0.5, 0.0, {{0, 1}}));
    const auto arch = Architecture::linearChain(dims);
    EXPECT_THROW((void)routeCircuit(circuit, arch), InvalidArgumentError);
}

TEST(Router, EndToEndStatePreparationOnAChain) {
    // Full stack: synthesize -> transpile -> route -> simulate.
    const Dimensions dims{3, 3, 3};
    const StateVector target = states::ghz(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    const auto lowered = transpileToTwoQudit(prep.circuit);

    // The transpiled register may have ancillas; route on a chain over it.
    const auto arch = Architecture::linearChain(lowered.circuit.dimensions());
    const auto routed = routeCircuit(lowered.circuit, arch);

    const StateVector out = Simulator::runFromZero(routed.circuit);
    std::uint64_t scale = 1;
    for (std::size_t a = 0; a < lowered.numAncillas; ++a) {
        scale *= 2;
    }
    Complex overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < target.size(); ++i) {
        overlap += std::conj(target[i]) * out[i * scale];
    }
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-8);
}

TEST(FidelityEstimator, MultipliesPerOpErrors) {
    NoiseModel noise;
    noise.singleQuditError = 0.01;
    noise.twoQuditError = 0.1;
    Circuit circuit({2, 2, 2});
    circuit.append(Operation::hadamard(0));                                   // 0.99
    circuit.append(Operation::givens(1, 0, 1, 0.5, 0.0, {{0, 1}}));           // 0.9
    circuit.append(Operation::givens(2, 0, 1, 0.5, 0.0, {{0, 1}, {1, 1}}));   // 0.9^2
    EXPECT_NEAR(estimateCircuitFidelity(circuit, noise), 0.99 * 0.9 * 0.81, 1e-12);
}

TEST(FidelityEstimator, RoutedCircuitsCostMoreOnSparseTopologies) {
    const Dimensions dims{3, 3, 3, 3};
    Circuit circuit(dims);
    circuit.append(Operation::givens(3, 0, 1, 0.4, 0.0, {{0, 1}}));
    const auto chainRouted = routeCircuit(circuit, Architecture::linearChain(dims));
    const auto fullRouted = routeCircuit(circuit, Architecture::allToAll(dims));
    const NoiseModel noise;
    EXPECT_LT(estimateCircuitFidelity(chainRouted.circuit, noise),
              estimateCircuitFidelity(fullRouted.circuit, noise));
}

} // namespace
} // namespace mqsp
