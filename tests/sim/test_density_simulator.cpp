#include "mqsp/sim/density_simulator.hpp"

#include "mqsp/hardware/router.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

TEST(DensityMatrix, ZeroStateConstruction) {
    const DensityMatrix rho({3, 2});
    EXPECT_EQ(rho.size(), 6U);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.matrix()(0, 0).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, FromPureMatchesProjector) {
    Rng rng(3);
    const StateVector psi = states::random({3, 2}, rng);
    const DensityMatrix rho = DensityMatrix::fromPure(psi);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
    EXPECT_NEAR(rho.fidelityWithPure(psi), 1.0, 1e-10);
    // Off-diagonal structure: rho_ij = psi_i conj(psi_j).
    EXPECT_NEAR(std::abs(rho.matrix()(1, 4) - psi[1] * std::conj(psi[4])), 0.0, 1e-12);
}

TEST(DensityMatrix, RejectsHugeRegisters) {
    EXPECT_THROW(DensityMatrix({9, 9, 9, 9}), InvalidArgumentError);
}

TEST(NoisySimulator, UnitaryAgreesWithStateVectorSimulator) {
    Rng rng(7);
    const Dimensions dims{3, 2, 2};
    const StateVector input = states::random(dims, rng);
    Circuit circuit(dims);
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::givens(1, 0, 1, 0.9, -0.4, {{0, 2}}));
    circuit.append(Operation::phase(2, 0, 1, 1.3, {{0, 1}, {1, 1}}));
    circuit.append(Operation::levelSwap(0, 0, 2));
    circuit.append(Operation::shift(0, 1, {{2, 1}}));

    DensityMatrix rho = DensityMatrix::fromPure(input);
    for (const auto& op : circuit.operations()) {
        NoisySimulator::applyUnitary(rho, op);
    }
    const StateVector want = Simulator::run(circuit, input);
    EXPECT_NEAR(rho.fidelityWithPure(want), 1.0, 1e-9);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
}

TEST(NoisySimulator, DepolarizingPreservesTraceAndMixes) {
    Rng rng(9);
    DensityMatrix rho = DensityMatrix::fromPure(states::random({3, 2}, rng));
    NoisySimulator::applyDepolarizing(rho, 0, 0.3);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_LT(rho.purity(), 1.0);
    EXPECT_THROW(NoisySimulator::applyDepolarizing(rho, 5, 0.1), InvalidArgumentError);
    EXPECT_THROW(NoisySimulator::applyDepolarizing(rho, 0, 1.5), InvalidArgumentError);
}

TEST(NoisySimulator, FullDepolarizingYieldsMaximallyMixedSite) {
    // strength = 1 on a single-qudit register: rho -> I/d.
    const StateVector psi = states::basis({3}, {1});
    DensityMatrix rho = DensityMatrix::fromPure(psi);
    NoisySimulator::applyDepolarizing(rho, 0, 1.0);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            const double expected = (i == j) ? 1.0 / 3.0 : 0.0;
            EXPECT_NEAR(std::abs(rho.matrix()(i, j) - Complex{expected, 0.0}), 0.0, 1e-12);
        }
    }
}

TEST(NoisySimulator, ZeroNoiseRunMatchesPureSimulation) {
    const Dimensions dims{3, 3};
    const StateVector target = states::ghz(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);

    NoiseModel noiseless;
    noiseless.singleQuditError = 0.0;
    noiseless.twoQuditError = 0.0;
    const DensityMatrix rho = NoisySimulator().run(prep.circuit, noiseless);
    EXPECT_NEAR(rho.fidelityWithPure(target), 1.0, 1e-9);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
}

TEST(NoisySimulator, NoiseDegradesFidelityMonotonically) {
    const Dimensions dims{3, 3};
    const StateVector target = states::ghz(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);

    double previous = 1.1;
    for (const double eps : {0.0, 0.001, 0.01, 0.05}) {
        NoiseModel noise;
        noise.singleQuditError = eps / 10.0;
        noise.twoQuditError = eps;
        const DensityMatrix rho = NoisySimulator().run(prep.circuit, noise);
        const double fidelity = rho.fidelityWithPure(target);
        EXPECT_LT(fidelity, previous);
        EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
        previous = fidelity;
    }
}

TEST(NoisySimulator, EstimatorTracksSimulatedFidelityAtSmallNoise) {
    // The product-of-(1-eps) estimate must agree with the density-matrix
    // simulation to first order in the error rate.
    const Dimensions dims{3, 3};
    const StateVector target = states::ghz(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);

    NoiseModel noise;
    noise.singleQuditError = 1e-4;
    noise.twoQuditError = 1e-3;
    const double simulated =
        NoisySimulator().run(prep.circuit, noise).fidelityWithPure(target);
    const double estimated = estimateCircuitFidelity(prep.circuit, noise);
    // Depolarizing noise can land partly back on the target, so the
    // simulation sits at or above the estimate; both are within O(eps^2
    // * ops) of each other.
    EXPECT_GE(simulated + 1e-6, estimated);
    EXPECT_NEAR(simulated, estimated, 5e-3);
}

} // namespace
} // namespace mqsp
