#include "mqsp/sim/simulator.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mqsp {
namespace {

constexpr double kPi = std::numbers::pi;

StateVector randomState(const Dimensions& dims, std::uint64_t seed) {
    Rng rng(seed);
    const MixedRadix radix(dims);
    std::vector<Complex> amps(radix.totalDimension());
    for (auto& a : amps) {
        a = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    }
    StateVector state(dims, std::move(amps));
    state.normalize();
    return state;
}

TEST(Simulator, HadamardOnQutritZeroGivesUniform) {
    Circuit circuit({3});
    circuit.append(Operation::hadamard(0));
    const StateVector out = Simulator::runFromZero(circuit);
    const double amp = 1.0 / std::sqrt(3.0);
    for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(out[i].real(), amp, 1e-12);
        EXPECT_NEAR(out[i].imag(), 0.0, 1e-12);
    }
}

TEST(Simulator, GhzFromPaperFigure1) {
    // Figure 1 of the paper: qutrit Hadamard, then +1 controlled on level 1
    // and +2 controlled on level 2 prepare the two-qutrit GHZ state.
    Circuit circuit({3, 3});
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::shift(1, 1, {{0, 1}}));
    circuit.append(Operation::shift(1, 2, {{0, 2}}));
    const StateVector out = Simulator::runFromZero(circuit);
    const double amp = 1.0 / std::sqrt(3.0);
    EXPECT_NEAR(out.at({0, 0}).real(), amp, 1e-12);
    EXPECT_NEAR(out.at({1, 1}).real(), amp, 1e-12);
    EXPECT_NEAR(out.at({2, 2}).real(), amp, 1e-12);
    EXPECT_EQ(out.countNonZero(1e-9), 3U);
}

TEST(Simulator, GivensMovesAmplitudeBetweenChosenLevels) {
    Circuit circuit({4});
    circuit.append(Operation::givens(0, 0, 3, kPi, 0.0));
    const StateVector out = Simulator::runFromZero(circuit);
    // R(pi, 0): |0> -> -i |3>.
    EXPECT_NEAR(std::abs(out[3]), 1.0, 1e-12);
    EXPECT_NEAR(out[3].imag(), -1.0, 1e-12);
    EXPECT_NEAR(std::abs(out[0]), 0.0, 1e-12);
}

TEST(Simulator, ControlGatesFireOnlyOnMatchingLevel) {
    Circuit circuit({3, 2});
    // Put the control qutrit into level 2, then apply a controlled flip.
    circuit.append(Operation::givens(0, 0, 2, kPi, 0.0));
    circuit.append(Operation::givens(1, 0, 1, kPi, 0.0, {{0, 2}}));
    const StateVector out = Simulator::runFromZero(circuit);
    EXPECT_NEAR(std::abs(out.at({2, 1})), 1.0, 1e-12);

    Circuit miss({3, 2});
    miss.append(Operation::givens(0, 0, 2, kPi, 0.0));
    miss.append(Operation::givens(1, 0, 1, kPi, 0.0, {{0, 1}})); // wrong level
    const StateVector outMiss = Simulator::runFromZero(miss);
    EXPECT_NEAR(std::abs(outMiss.at({2, 0})), 1.0, 1e-12);
}

TEST(Simulator, MultiControlRequiresAllLevels) {
    Circuit circuit({2, 2, 2});
    circuit.append(Operation::givens(0, 0, 1, kPi, 0.0));
    // Control on q0=1 and q1=0: satisfied after the first flip.
    circuit.append(Operation::givens(2, 0, 1, kPi, 0.0, {{0, 1}, {1, 0}}));
    const StateVector out = Simulator::runFromZero(circuit);
    EXPECT_NEAR(std::abs(out.at({1, 0, 1})), 1.0, 1e-12);

    Circuit blocked({2, 2, 2});
    blocked.append(Operation::givens(0, 0, 1, kPi, 0.0));
    blocked.append(Operation::givens(2, 0, 1, kPi, 0.0, {{0, 1}, {1, 1}}));
    const StateVector outBlocked = Simulator::runFromZero(blocked);
    EXPECT_NEAR(std::abs(outBlocked.at({1, 0, 0})), 1.0, 1e-12);
}

TEST(Simulator, ApplyMatchesDenseMatrixOnRandomStates) {
    // Property: for every gate kind, applying via the simulator equals
    // multiplying the single-qudit dense matrix into the right slot.
    const Dimensions dims{3, 4, 2};
    const StateVector input = randomState(dims, 99);
    const MixedRadix radix(dims);

    const std::vector<Operation> ops = {
        Operation::givens(1, 1, 3, 0.77, -0.4), Operation::phase(1, 0, 2, 1.1),
        Operation::hadamard(1), Operation::shift(1, 3)};
    for (const auto& op : ops) {
        StateVector viaSim = input;
        Simulator::apply(viaSim, op);

        // Reference: gather each fiber along site 1 and multiply.
        const DenseMatrix m = op.localMatrix(4);
        StateVector reference = input;
        for (std::uint64_t base = 0; base < radix.totalDimension(); ++base) {
            if (radix.digitAt(base, 1) != 0) {
                continue;
            }
            std::vector<Complex> fiber(4);
            for (Level k = 0; k < 4; ++k) {
                fiber[k] = input[base + k * radix.strideAt(1)];
            }
            const auto transformed = m.apply(fiber);
            for (Level k = 0; k < 4; ++k) {
                reference[base + k * radix.strideAt(1)] = transformed[k];
            }
        }
        EXPECT_NEAR(viaSim.fidelityWith(reference), 1.0, 1e-10)
            << "op: " << op.toString();
        // Fidelity hides per-amplitude phase mistakes; compare directly too.
        for (std::uint64_t i = 0; i < viaSim.size(); ++i) {
            EXPECT_NEAR(std::abs(viaSim[i] - reference[i]), 0.0, 1e-10);
        }
    }
}

TEST(Simulator, LevelSwapPermutesWithoutPhases) {
    Circuit circuit({4, 2});
    circuit.append(Operation::givens(0, 0, 2, 1.1, 0.7)); // populate levels 0 and 2
    circuit.append(Operation::levelSwap(0, 0, 2));
    const StateVector withSwap = Simulator::runFromZero(circuit);

    Circuit reference({4, 2});
    reference.append(Operation::givens(0, 0, 2, 1.1, 0.7));
    const StateVector plain = Simulator::runFromZero(reference);

    // The swap exchanges the level-0 and level-2 amplitudes exactly.
    EXPECT_NEAR(std::abs(withSwap.at({0, 0}) - plain.at({2, 0})), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(withSwap.at({2, 0}) - plain.at({0, 0})), 0.0, 1e-12);
}

TEST(Simulator, ControlledLevelSwap) {
    Circuit circuit({2, 3});
    circuit.append(Operation::givens(0, 0, 1, kPi, 0.0)); // control to |1>
    circuit.append(Operation::levelSwap(1, 0, 2, {{0, 1}}));
    const StateVector out = Simulator::runFromZero(circuit);
    EXPECT_NEAR(std::abs(out.at({1, 2})), 1.0, 1e-12);
}

TEST(Simulator, UnitarityPreservesNorm) {
    Rng rng(7);
    const Dimensions dims{3, 6, 2};
    StateVector state = randomState(dims, 3);
    Circuit circuit(dims);
    for (int i = 0; i < 50; ++i) {
        const auto site = static_cast<std::size_t>(rng.uniformIndex(3));
        const Dimension dim = MixedRadix(dims).dimensionAt(site);
        const auto a = static_cast<Level>(rng.uniformIndex(dim));
        auto b = static_cast<Level>(rng.uniformIndex(dim));
        if (a == b) {
            b = (b + 1) % dim;
        }
        circuit.append(Operation::givens(site, std::min(a, b), std::max(a, b),
                                         rng.uniform(-kPi, kPi), rng.uniform(-kPi, kPi)));
    }
    const StateVector out = Simulator::run(circuit, state);
    EXPECT_NEAR(out.norm(), 1.0, 1e-10);
}

TEST(Simulator, InverseCircuitRestoresState) {
    const Dimensions dims{4, 3};
    const StateVector input = randomState(dims, 21);
    Circuit circuit(dims);
    circuit.append(Operation::givens(0, 0, 2, 0.9, 0.3));
    circuit.append(Operation::phase(1, 0, 1, -1.2, {{0, 2}}));
    circuit.append(Operation::givens(1, 1, 2, 2.2, -0.8, {{0, 1}}));
    const StateVector forward = Simulator::run(circuit, input);
    const StateVector back = Simulator::run(circuit.inverted(), forward);
    for (std::uint64_t i = 0; i < input.size(); ++i) {
        EXPECT_NEAR(std::abs(back[i] - input[i]), 0.0, 1e-10);
    }
}

TEST(Simulator, RunRejectsMismatchedRegisters) {
    const Circuit circuit({2, 2});
    const StateVector state({3});
    EXPECT_THROW((void)Simulator::run(circuit, state), InvalidArgumentError);
}

TEST(Simulator, PreparationFidelityOfEmptyCircuit) {
    const Circuit circuit({3, 2});
    const StateVector zero({3, 2});
    EXPECT_NEAR(Simulator::preparationFidelity(circuit, zero), 1.0, 1e-12);
}

} // namespace
} // namespace mqsp
