// Unit tests for the pluggable evaluation-backend layer (sim/backend.hpp):
// backend resolution and auto-selection, EvalState representation handling
// and mixed dense/diagram overlaps, the dense backend's ceiling guard, and
// per-operation apply parity between the two substrates.

#include "mqsp/sim/backend.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace mqsp {
namespace {

TEST(BackendResolution, ForcedNamesResolveRegardlessOfSize) {
    EXPECT_EQ(resolveBackendKind("dense", 10), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("dense", std::uint64_t{1} << 40U), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("dd", 10), BackendKind::Dd);
    EXPECT_EQ(resolveBackendKind("dd", std::uint64_t{1} << 40U), BackendKind::Dd);
}

TEST(BackendResolution, AutoSwitchesAtTheThreshold) {
    EXPECT_EQ(resolveBackendKind("auto", kAutoBackendThreshold), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("auto", kAutoBackendThreshold + 1), BackendKind::Dd);
    EXPECT_EQ(resolveBackendKind("auto", 36), BackendKind::Dense);
}

TEST(BackendResolution, UnknownSpecThrows) {
    EXPECT_THROW((void)resolveBackendKind("sparse", 10), InvalidArgumentError);
    EXPECT_THROW((void)resolveBackendKind("", 10), InvalidArgumentError);
}

TEST(BackendResolution, FactoriesProduceTheRequestedKind) {
    EXPECT_EQ(makeBackend(BackendKind::Dense)->kind(), BackendKind::Dense);
    EXPECT_EQ(makeBackend(BackendKind::Dd)->kind(), BackendKind::Dd);
    EXPECT_STREQ(makeBackend("auto", 10)->name(), "dense");
    EXPECT_STREQ(makeBackend("auto", kAutoBackendThreshold + 1)->name(), "dd");
}

TEST(EvalStateTest, RepresentationAccessorsGuard) {
    const EvalState dense(states::ghz({2, 2}));
    EXPECT_TRUE(dense.isDense());
    EXPECT_FALSE(dense.isDiagram());
    EXPECT_NO_THROW((void)dense.dense());
    EXPECT_THROW((void)dense.diagram(), InvalidArgumentError);

    const EvalState diagram(DecisionDiagram::ghzState({2, 2}));
    EXPECT_TRUE(diagram.isDiagram());
    EXPECT_THROW((void)diagram.dense(), InvalidArgumentError);
    EXPECT_EQ(diagram.totalDimension(), 4u);
}

TEST(EvalStateTest, OverlapsAgreeAcrossAllRepresentationPairs) {
    const Dimensions dims{3, 6, 2};
    const StateVector ghzDense = states::ghz(dims);
    const StateVector wDense = states::wState(dims);
    const EvalState dd1(DecisionDiagram::ghzState(dims));
    const EvalState dd2(DecisionDiagram::wState(dims));
    const EvalState dv1(ghzDense);
    const EvalState dv2(wDense);

    const Complex reference = ghzDense.innerProduct(wDense);
    for (const auto* lhs : {&dd1, &dv1}) {
        for (const auto* rhs : {&dd2, &dv2}) {
            const Complex overlap = lhs->overlapWith(*rhs);
            EXPECT_NEAR(overlap.real(), reference.real(), 1e-10);
            EXPECT_NEAR(overlap.imag(), reference.imag(), 1e-10);
        }
    }
    EXPECT_NEAR(dd1.fidelityWith(dv1), 1.0, 1e-10);
    EXPECT_NEAR(dd1.normSquared(), 1.0, 1e-10);
    EXPECT_NEAR(dv1.normSquared(), 1.0, 1e-10);
}

TEST(EvalStateTest, ToStateVectorHonorsTheCeiling) {
    const EvalState small(DecisionDiagram::ghzState({2, 2}));
    EXPECT_EQ(small.toStateVector().size(), 4u);
    EXPECT_THROW((void)small.toStateVector(/*ceiling=*/3), InvalidArgumentError);

    const EvalState big(DecisionDiagram::ghzState(Dimensions(27, 2)));
    EXPECT_THROW((void)big.toStateVector(), InvalidArgumentError);
    EXPECT_NO_THROW((void)big.toDiagram());
}

TEST(DenseBackendTest, RefusesPastItsCeilingWithAClearError) {
    const DenseBackend backend(/*maxAmplitudes=*/32);
    const Circuit big(Dimensions{4, 4, 4}); // 64 amplitudes
    try {
        (void)backend.runFromZero(big);
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("dense backend ceiling"), std::string::npos) << what;
        EXPECT_NE(what.find("--backend dd"), std::string::npos) << what;
    }
}

TEST(ApplyParity, PerOperationApplicationMatchesAcrossBackends) {
    const Dimensions dims{3, 4, 2};
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    Rng rng(12345);
    const StateVector target = states::random(dims, rng);
    const auto prep = prepareExact(target, lean);

    const DenseBackend dense;
    const DdBackend dd;
    EvalState dv{StateVector(dims)};
    EvalState diagram{DecisionDiagram::zeroState(dims)};
    for (const Operation& op : prep.circuit.operations()) {
        dense.apply(dv, op);
        dd.apply(diagram, op);
    }
    for (std::uint64_t i = 0; i < dv.dense().size(); ++i) {
        const Digits digits = dv.radix().digitsOf(i);
        const Complex a = dv.amplitudeOf(digits);
        const Complex b = diagram.amplitudeOf(digits);
        EXPECT_NEAR(a.real(), b.real(), 1e-10) << "index " << i;
        EXPECT_NEAR(a.imag(), b.imag(), 1e-10);
    }
    // Applying with the wrong representation is a caller error.
    EXPECT_THROW(dense.apply(diagram, prep.circuit.operations().front()),
                 InvalidArgumentError);
    EXPECT_THROW(dd.apply(dv, prep.circuit.operations().front()), InvalidArgumentError);
}

TEST(RunFromZeroTest, BothBackendsPrepareTheSameState) {
    const Dimensions dims{2, 3, 2};
    const StateVector target = states::wState(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);

    const EvalState dense = DenseBackend().runFromZero(prep.circuit);
    const EvalState diagram = DdBackend().runFromZero(prep.circuit);
    EXPECT_TRUE(dense.isDense());
    EXPECT_TRUE(diagram.isDiagram());
    EXPECT_NEAR(dense.fidelityWith(diagram), 1.0, 1e-10);
    EXPECT_NEAR(dense.fidelityWith(EvalState(target)), 1.0, 1e-9);
}

} // namespace
} // namespace mqsp
