// Unit tests for the pluggable evaluation-backend layer (sim/backend.hpp):
// backend resolution and auto-selection, EvalState representation handling
// and mixed dense/diagram overlaps, the dense backend's ceiling guard,
// per-operation apply parity between the two substrates, and the batched
// prepare-and-verify API (concurrent-item semantics and per-item errors).

#include "mqsp/sim/backend.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace mqsp {
namespace {

TEST(BackendResolution, ForcedNamesResolveRegardlessOfSize) {
    EXPECT_EQ(resolveBackendKind("dense", 10), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("dense", std::uint64_t{1} << 40U), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("dd", 10), BackendKind::Dd);
    EXPECT_EQ(resolveBackendKind("dd", std::uint64_t{1} << 40U), BackendKind::Dd);
}

TEST(BackendResolution, AutoSwitchesAtTheThreshold) {
    EXPECT_EQ(resolveBackendKind("auto", kAutoBackendThreshold), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("auto", kAutoBackendThreshold + 1), BackendKind::Dd);
    EXPECT_EQ(resolveBackendKind("auto", 36), BackendKind::Dense);
}

TEST(BackendResolution, UnknownSpecThrows) {
    EXPECT_THROW((void)resolveBackendKind("sparse", 10), InvalidArgumentError);
    EXPECT_THROW((void)resolveBackendKind("", 10), InvalidArgumentError);
}

TEST(BackendResolution, FactoriesProduceTheRequestedKind) {
    EXPECT_EQ(makeBackend(BackendKind::Dense)->kind(), BackendKind::Dense);
    EXPECT_EQ(makeBackend(BackendKind::Dd)->kind(), BackendKind::Dd);
    EXPECT_STREQ(makeBackend("auto", 10)->name(), "dense");
    EXPECT_STREQ(makeBackend("auto", kAutoBackendThreshold + 1)->name(), "dd");
}

TEST(EvalStateTest, RepresentationAccessorsGuard) {
    const EvalState dense(states::ghz({2, 2}));
    EXPECT_TRUE(dense.isDense());
    EXPECT_FALSE(dense.isDiagram());
    EXPECT_NO_THROW((void)dense.dense());
    EXPECT_THROW((void)dense.diagram(), InvalidArgumentError);

    const EvalState diagram(DecisionDiagram::ghzState({2, 2}));
    EXPECT_TRUE(diagram.isDiagram());
    EXPECT_THROW((void)diagram.dense(), InvalidArgumentError);
    EXPECT_EQ(diagram.totalDimension(), 4u);
}

TEST(EvalStateTest, OverlapsAgreeAcrossAllRepresentationPairs) {
    const Dimensions dims{3, 6, 2};
    const StateVector ghzDense = states::ghz(dims);
    const StateVector wDense = states::wState(dims);
    const EvalState dd1(DecisionDiagram::ghzState(dims));
    const EvalState dd2(DecisionDiagram::wState(dims));
    const EvalState dv1(ghzDense);
    const EvalState dv2(wDense);

    const Complex reference = ghzDense.innerProduct(wDense);
    for (const auto* lhs : {&dd1, &dv1}) {
        for (const auto* rhs : {&dd2, &dv2}) {
            const Complex overlap = lhs->overlapWith(*rhs);
            EXPECT_NEAR(overlap.real(), reference.real(), 1e-10);
            EXPECT_NEAR(overlap.imag(), reference.imag(), 1e-10);
        }
    }
    EXPECT_NEAR(dd1.fidelityWith(dv1), 1.0, 1e-10);
    EXPECT_NEAR(dd1.normSquared(), 1.0, 1e-10);
    EXPECT_NEAR(dv1.normSquared(), 1.0, 1e-10);
}

TEST(EvalStateTest, ToStateVectorHonorsTheCeiling) {
    const EvalState small(DecisionDiagram::ghzState({2, 2}));
    EXPECT_EQ(small.toStateVector().size(), 4u);
    EXPECT_THROW((void)small.toStateVector(/*ceiling=*/3), InvalidArgumentError);

    const EvalState big(DecisionDiagram::ghzState(Dimensions(27, 2)));
    EXPECT_THROW((void)big.toStateVector(), InvalidArgumentError);
    EXPECT_NO_THROW((void)big.toDiagram());
}

TEST(DenseBackendTest, RefusesPastItsCeilingWithAClearError) {
    const DenseBackend backend(/*maxAmplitudes=*/32);
    const Circuit big(Dimensions{4, 4, 4}); // 64 amplitudes
    try {
        (void)backend.runFromZero(big);
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("dense backend ceiling"), std::string::npos) << what;
        EXPECT_NE(what.find("--backend dd"), std::string::npos) << what;
    }
}

TEST(ApplyParity, PerOperationApplicationMatchesAcrossBackends) {
    const Dimensions dims{3, 4, 2};
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    Rng rng(12345);
    const StateVector target = states::random(dims, rng);
    const auto prep = prepareExact(target, lean);

    const DenseBackend dense;
    const DdBackend dd;
    EvalState dv{StateVector(dims)};
    EvalState diagram{DecisionDiagram::zeroState(dims)};
    for (const Operation& op : prep.circuit.operations()) {
        dense.apply(dv, op);
        dd.apply(diagram, op);
    }
    for (std::uint64_t i = 0; i < dv.dense().size(); ++i) {
        const Digits digits = dv.radix().digitsOf(i);
        const Complex a = dv.amplitudeOf(digits);
        const Complex b = diagram.amplitudeOf(digits);
        EXPECT_NEAR(a.real(), b.real(), 1e-10) << "index " << i;
        EXPECT_NEAR(a.imag(), b.imag(), 1e-10);
    }
    // Applying with the wrong representation is a caller error.
    EXPECT_THROW(dense.apply(diagram, prep.circuit.operations().front()),
                 InvalidArgumentError);
    EXPECT_THROW(dd.apply(dv, prep.circuit.operations().front()), InvalidArgumentError);
}

TEST(RunFromZeroTest, BothBackendsPrepareTheSameState) {
    const Dimensions dims{2, 3, 2};
    const StateVector target = states::wState(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);

    const EvalState dense = DenseBackend().runFromZero(prep.circuit);
    const EvalState diagram = DdBackend().runFromZero(prep.circuit);
    EXPECT_TRUE(dense.isDense());
    EXPECT_TRUE(diagram.isDiagram());
    EXPECT_NEAR(dense.fidelityWith(diagram), 1.0, 1e-10);
    EXPECT_NEAR(dense.fidelityWith(EvalState(target)), 1.0, 1e-9);
}

using ScopedThreads = parallel::ScopedThreadCount;

TEST(ExecutionConfigPlumbing, BackendsCarryTheConfigTheyWereBuiltWith) {
    const ScopedThreads scope(3);
    EXPECT_EQ(DenseBackend().executionConfig().threads, 3U);
    EXPECT_EQ(makeBackend(BackendKind::Dd)->executionConfig().threads, 3U);
    const auto pinned = makeBackend(BackendKind::Dense, parallel::ExecutionConfig{1});
    EXPECT_EQ(pinned->executionConfig().threads, 1U);
}

TEST(ExecutionConfigPlumbing, EntryPointsPinTheirConfigAndRestoreTheAmbientWidth) {
    const ScopedThreads ambient(2);
    const auto backend = makeBackend(BackendKind::Dense, parallel::ExecutionConfig{4});
    const StateVector target = states::ghz({3, 3});
    const auto prep = prepareExact(target);
    const EvalState evalTarget(target);
    EXPECT_NEAR(backend->preparationFidelity(prep.circuit, evalTarget), 1.0, 1e-9);
    EXPECT_EQ(parallel::globalThreads(), 2U);
    const auto results = backend->verifyBatch({{&prep.circuit, &evalTarget}});
    ASSERT_EQ(results.size(), 1U);
    EXPECT_NEAR(results.front().fidelity, 1.0, 1e-9);
    EXPECT_EQ(parallel::globalThreads(), 2U);
}

/// Batch fixture: a handful of independent prepare-and-verify items on
/// small mixed-radix registers.
struct BatchFixture {
    std::vector<StateVector> targets;
    std::vector<Circuit> circuits;
    std::vector<EvalState> evalTargets;
    std::vector<VerifyRequest> items;

    BatchFixture() {
        SynthesisOptions lean;
        lean.emitIdentityOperations = false;
        const std::vector<Dimensions> registers = {
            {3, 6, 2}, {2, 2, 2, 2}, {3, 3, 3}, {9, 5, 6, 3}, {2, 3, 2}};
        Rng rng(99);
        for (const auto& dims : registers) {
            targets.push_back(states::random(dims, rng));
            circuits.push_back(prepareExact(targets.back(), lean).circuit);
        }
        // Fill evalTargets completely before taking addresses: a growing
        // vector would invalidate the earlier items' pointers.
        evalTargets.reserve(targets.size());
        for (const auto& target : targets) {
            evalTargets.emplace_back(target);
        }
        for (std::size_t i = 0; i < targets.size(); ++i) {
            items.push_back({&circuits[i], &evalTargets[i]});
        }
    }
};

class BatchVerify : public ::testing::TestWithParam<unsigned> {};

TEST_P(BatchVerify, AllItemsVerifyOnBothBackends) {
    const ScopedThreads scope(GetParam());
    const BatchFixture fixture;
    for (const BackendKind kind : {BackendKind::Dense, BackendKind::Dd}) {
        const auto backend = makeBackend(kind);
        const auto results = backend->verifyBatch(fixture.items);
        ASSERT_EQ(results.size(), fixture.items.size());
        for (const auto& result : results) {
            EXPECT_FALSE(result.failed) << result.error;
            EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
        }
    }
}

TEST_P(BatchVerify, MatchesSequentialFidelities) {
    const BatchFixture fixture;
    const auto backend = makeBackend(BackendKind::Dense);
    std::vector<double> sequential;
    {
        const ScopedThreads scope(1);
        for (const auto& item : fixture.items) {
            sequential.push_back(backend->preparationFidelity(*item.circuit, *item.target));
        }
    }
    const ScopedThreads scope(GetParam());
    const auto results = backend->verifyBatch(fixture.items);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_NEAR(results[i].fidelity, sequential[i], 1e-12);
    }
}

TEST_P(BatchVerify, PerItemFailureDoesNotAbortSiblings) {
    const ScopedThreads scope(GetParam());
    BatchFixture fixture;
    // Make item 2 fail on the dense backend: a register past a tiny ceiling.
    const DenseBackend tiny(16);
    const auto results = tiny.verifyBatch(fixture.items);
    ASSERT_EQ(results.size(), fixture.items.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const bool fits = fixture.targets[i].size() <= 16;
        EXPECT_EQ(results[i].failed, !fits) << "item " << i;
        if (fits) {
            EXPECT_NEAR(results[i].fidelity, 1.0, 1e-9);
        } else {
            EXPECT_NE(results[i].error.find("ceiling"), std::string::npos);
        }
    }
}

TEST_P(BatchVerify, EmptyBatchIsANoOp) {
    const ScopedThreads scope(GetParam());
    EXPECT_TRUE(DenseBackend().verifyBatch({}).empty());
}

TEST_P(BatchVerify, RepeatedItemsResolveFromTheSharedSessionCache) {
    // All batch items of a DdBackend intern into the backend's one shared
    // DdSession (there is no per-item escape hatch), so a repeated item is
    // served by session state the first run left behind: its nodes hit in
    // the uniquing table instead of allocating, and its overlap traversal
    // hits the session compute cache. An exactly-reproduced target resolves
    // by root identity before the compute cache is even consulted, so the
    // batch includes a mismatched (fidelity < 1) pair whose overlap must
    // descend — that descent is what the cache persists across calls.
    const Dimensions dims{3, 4, 2};
    const StateVector ghz = states::ghz(dims);
    const auto prep = prepareExact(ghz);
    const EvalState ghzTarget(ghz);
    const EvalState wTarget(states::wState(dims));
    const DdBackend backend(Tolerance::kDefault, parallel::ExecutionConfig{GetParam()});
    const std::vector<VerifyRequest> items = {{&prep.circuit, &ghzTarget},
                                                {&prep.circuit, &wTarget}};

    const auto first = backend.verifyBatch(items);
    ASSERT_EQ(first.size(), items.size());
    EXPECT_NEAR(first[0].fidelity, 1.0, 1e-9);
    EXPECT_LT(first[1].fidelity, 0.5); // |<w|ghz>|^2 — genuinely mismatched
    const std::uint64_t poolAfterFirst = backend.ddSession()->stats().poolNodes;

    // Replay the whole batch on the same backend: every node re-resolves
    // from the shared table (no growth), the mismatched overlap resolves
    // from the compute cache, and the fidelities come out bit-identical.
    const auto second = backend.verifyBatch(items);
    ASSERT_EQ(second.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_FALSE(second[i].failed) << second[i].error;
        EXPECT_EQ(second[i].fidelity, first[i].fidelity) << "item " << i;
    }
    const dd::DdSessionStats stats = backend.ddSession()->stats();
    EXPECT_EQ(stats.poolNodes, poolAfterFirst);
    EXPECT_GT(stats.unique.hits, 0U);
    EXPECT_GT(stats.cache.hits, 0U);
    EXPECT_GT(stats.cacheHitRate(), 0.0);
}

/// "t<threads>" row labels (built without operator+ folding, which trips a
/// gcc-12 -Wrestrict false positive when two instantiations inline it).
std::string threadTag(const ::testing::TestParamInfo<unsigned>& paramInfo) {
    std::string name = "t";
    name += std::to_string(paramInfo.param);
    return name;
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchVerify, ::testing::Values(1U, 2U, 4U), threadTag);

TEST(ZeroStateSeed, BothBackendsSeedTheComputationalZero) {
    const Dimensions dims{3, 4, 2};
    const EvalState dense = DenseBackend().zeroState(dims);
    ASSERT_TRUE(dense.isDense());
    EXPECT_NEAR(squaredMagnitude(dense.dense()[0]), 1.0, 1e-12);

    const DdBackend dd;
    const EvalState diagram = dd.zeroState(dims);
    ASSERT_TRUE(diagram.isDiagram());
    EXPECT_NEAR(diagram.fidelityWith(dense), 1.0, 1e-12);
    // The zero state lives on the backend's session, like every other
    // state the backend evaluates.
    EXPECT_GT(dd.ddSession()->stats().poolNodes, 0U);
}

TEST(SingleVerify, ReportCarriesFidelityOpsAndSessionMetrics) {
    const StateVector ghz = states::ghz({3, 4, 2});
    const auto prep = prepareExact(ghz);
    const EvalState target(ghz);
    const DdBackend backend;
    const VerifyReport report = backend.verify({&prep.circuit, &target});
    EXPECT_FALSE(report.failed) << report.error;
    EXPECT_NEAR(report.fidelity, 1.0, 1e-9);
    EXPECT_EQ(report.ops, prep.circuit.numOperations());
    EXPECT_GT(report.ddNodes, 0U);
    EXPECT_TRUE(report.checkpoints.empty());

    // Repeats re-run the same replay; the session serves the repeats from
    // its caches, and the report's deltas measure exactly that. The target
    // is deliberately mismatched (fidelity < 1): an exactly-reproduced
    // target resolves by root identity before the compute cache is even
    // consulted, so only a descending overlap exercises it.
    const EvalState mismatched(states::wState({3, 4, 2}));
    const VerifyReport repeated = backend.verify({&prep.circuit, &mismatched, 3});
    EXPECT_FALSE(repeated.failed) << repeated.error;
    EXPECT_LT(repeated.fidelity, 1.0);
    EXPECT_GT(repeated.cacheHits, 0U);
}

TEST(SingleVerify, NullItemsFailInTheReportNotByThrowing) {
    const StateVector ghz = states::ghz({2, 2});
    const auto prep = prepareExact(ghz);
    const EvalState target(ghz);
    EXPECT_TRUE(DenseBackend().verify({nullptr, &target}).failed);
    EXPECT_TRUE(DenseBackend().verify({&prep.circuit, nullptr}).failed);
    const VerifyReport report = DenseBackend().verify({nullptr, nullptr});
    EXPECT_TRUE(report.failed);
    EXPECT_FALSE(report.error.empty());
}

class StreamVerify : public ::testing::TestWithParam<unsigned> {};

TEST_P(StreamVerify, DrainingACircuitSourceMatchesWholeCircuitReplay) {
    const ScopedThreads scope(GetParam());
    const StateVector ghz = states::ghz({3, 4, 2});
    const auto prep = prepareExact(ghz);
    const EvalState target(ghz);
    for (const BackendKind kind : {BackendKind::Dense, BackendKind::Dd}) {
        const auto backend = makeBackend(kind);
        CircuitSource source(prep.circuit);
        VerifyRequest request;
        request.target = &target;
        EvalState finalState;
        const VerifyReport report = backend->verifyStream(source, request, &finalState);
        EXPECT_FALSE(report.failed) << report.error;
        EXPECT_NEAR(report.fidelity, 1.0, 1e-9) << backendName(kind);
        EXPECT_EQ(report.ops, prep.circuit.numOperations());
        // The final state is handed out for further use and matches the
        // non-streaming replay of the same circuit.
        EXPECT_NEAR(finalState.fidelityWith(EvalState(ghz)), 1.0, 1e-9);
    }
}

TEST_P(StreamVerify, CheckpointsLandAtTheConfiguredCadence) {
    const ScopedThreads scope(GetParam());
    const StateVector ghz = states::ghz({3, 4, 2});
    const auto prep = prepareExact(ghz);
    const EvalState target(ghz);
    const DdBackend backend;
    CircuitSource source(prep.circuit);
    VerifyRequest request;
    request.target = &target;
    request.checkpointInterval = 2;
    const VerifyReport report = backend.verifyStream(source, request);
    const std::uint64_t expected = prep.circuit.numOperations() / 2;
    ASSERT_EQ(report.checkpoints.size(), expected);
    for (std::size_t i = 0; i < report.checkpoints.size(); ++i) {
        EXPECT_EQ(report.checkpoints[i].opIndex, 2 * (i + 1));
        EXPECT_GT(report.checkpoints[i].ddNodes, 0U);
        EXPECT_GE(report.checkpoints[i].fidelity, 0.0);
        EXPECT_LE(report.checkpoints[i].fidelity, 1.0 + 1e-9);
    }
}

TEST_P(StreamVerify, NullTargetReportsTheStateNorm) {
    const ScopedThreads scope(GetParam());
    const StateVector ghz = states::ghz({3, 2});
    const auto prep = prepareExact(ghz);
    const auto backend = makeBackend(BackendKind::Dd);
    CircuitSource source(prep.circuit);
    const VerifyReport report = backend->verifyStream(source, {});
    // Unitary replay preserves the norm; with no target the report's
    // fidelity is the norm² probe.
    EXPECT_NEAR(report.fidelity, 1.0, 1e-9);
}

TEST_P(StreamVerify, ReverifyAppendedReplaysOnlyTheDelta) {
    const ScopedThreads scope(GetParam());
    const StateVector ghz = states::ghz({3, 4, 2});
    const auto prep = prepareExact(ghz);
    const EvalState target(ghz);
    const DdBackend backend;

    Circuit grown = prep.circuit;
    EvalState replayed = backend.zeroState(grown.dimensions());
    const VerifyReport base = backend.reverifyAppended(grown, 0, replayed, target);
    EXPECT_NEAR(base.fidelity, 1.0, 1e-9);
    EXPECT_EQ(base.ops, grown.numOperations());

    // Grow by an identity pair: the verdict must stay fidelity 1, reached
    // by replaying exactly the two appended gates.
    const std::uint64_t fromOp = grown.numOperations();
    grown.append(Operation::levelSwap(0, 0, 1));
    grown.append(Operation::levelSwap(0, 0, 1));
    const VerifyReport delta = backend.reverifyAppended(grown, fromOp, replayed, target);
    EXPECT_NEAR(delta.fidelity, 1.0, 1e-9);
    EXPECT_EQ(delta.ops, 2U);

    // The incremental fidelity agrees with a from-scratch replay of the
    // grown circuit.
    EXPECT_NEAR(backend.preparationFidelity(grown, target), delta.fidelity, 1e-12);

    // A cursor past the end is a caller bug, reported as such.
    EXPECT_THROW((void)backend.reverifyAppended(grown, grown.numOperations() + 1,
                                                replayed, target),
                 InvalidArgumentError);
}

TEST(StreamVerifySession, AppendedDeltaResolvesFromTheSessionCache) {
    // Replay the same delta twice on one backend session: the second pass
    // repeats identical (gate, state) applications and overlaps, so the
    // report's cache deltas must show hits. The target is mismatched
    // (fidelity < 1) so the overlap genuinely descends — a reproduced
    // target resolves by root identity without touching the cache.
    // Single-threaded so the raw counters are deterministic.
    const ScopedThreads scope(1);
    const Dimensions dims{3, 4, 2};
    const StateVector ghz = states::ghz(dims);
    const auto prep = prepareExact(ghz);
    const EvalState target(states::wState(dims));
    const DdBackend backend;

    Circuit grown = prep.circuit;
    EvalState first = backend.zeroState(dims);
    const VerifyReport warmup = backend.reverifyAppended(grown, 0, first, target);
    EXPECT_LT(warmup.fidelity, 1.0);

    EvalState second = backend.zeroState(dims);
    const VerifyReport rerun = backend.reverifyAppended(grown, 0, second, target);
    EXPECT_EQ(rerun.fidelity, warmup.fidelity);
    EXPECT_GT(rerun.cacheHits, 0U);
    EXPECT_GT(rerun.cacheLookups, 0U);
}

INSTANTIATE_TEST_SUITE_P(Threads, StreamVerify, ::testing::Values(1U, 2U, 4U), threadTag);

} // namespace
} // namespace mqsp
