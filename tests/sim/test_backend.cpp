// Unit tests for the pluggable evaluation-backend layer (sim/backend.hpp):
// backend resolution and auto-selection, EvalState representation handling
// and mixed dense/diagram overlaps, the dense backend's ceiling guard,
// per-operation apply parity between the two substrates, and the batched
// prepare-and-verify API (concurrent-item semantics and per-item errors).

#include "mqsp/sim/backend.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace mqsp {
namespace {

TEST(BackendResolution, ForcedNamesResolveRegardlessOfSize) {
    EXPECT_EQ(resolveBackendKind("dense", 10), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("dense", std::uint64_t{1} << 40U), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("dd", 10), BackendKind::Dd);
    EXPECT_EQ(resolveBackendKind("dd", std::uint64_t{1} << 40U), BackendKind::Dd);
}

TEST(BackendResolution, AutoSwitchesAtTheThreshold) {
    EXPECT_EQ(resolveBackendKind("auto", kAutoBackendThreshold), BackendKind::Dense);
    EXPECT_EQ(resolveBackendKind("auto", kAutoBackendThreshold + 1), BackendKind::Dd);
    EXPECT_EQ(resolveBackendKind("auto", 36), BackendKind::Dense);
}

TEST(BackendResolution, UnknownSpecThrows) {
    EXPECT_THROW((void)resolveBackendKind("sparse", 10), InvalidArgumentError);
    EXPECT_THROW((void)resolveBackendKind("", 10), InvalidArgumentError);
}

TEST(BackendResolution, FactoriesProduceTheRequestedKind) {
    EXPECT_EQ(makeBackend(BackendKind::Dense)->kind(), BackendKind::Dense);
    EXPECT_EQ(makeBackend(BackendKind::Dd)->kind(), BackendKind::Dd);
    EXPECT_STREQ(makeBackend("auto", 10)->name(), "dense");
    EXPECT_STREQ(makeBackend("auto", kAutoBackendThreshold + 1)->name(), "dd");
}

TEST(EvalStateTest, RepresentationAccessorsGuard) {
    const EvalState dense(states::ghz({2, 2}));
    EXPECT_TRUE(dense.isDense());
    EXPECT_FALSE(dense.isDiagram());
    EXPECT_NO_THROW((void)dense.dense());
    EXPECT_THROW((void)dense.diagram(), InvalidArgumentError);

    const EvalState diagram(DecisionDiagram::ghzState({2, 2}));
    EXPECT_TRUE(diagram.isDiagram());
    EXPECT_THROW((void)diagram.dense(), InvalidArgumentError);
    EXPECT_EQ(diagram.totalDimension(), 4u);
}

TEST(EvalStateTest, OverlapsAgreeAcrossAllRepresentationPairs) {
    const Dimensions dims{3, 6, 2};
    const StateVector ghzDense = states::ghz(dims);
    const StateVector wDense = states::wState(dims);
    const EvalState dd1(DecisionDiagram::ghzState(dims));
    const EvalState dd2(DecisionDiagram::wState(dims));
    const EvalState dv1(ghzDense);
    const EvalState dv2(wDense);

    const Complex reference = ghzDense.innerProduct(wDense);
    for (const auto* lhs : {&dd1, &dv1}) {
        for (const auto* rhs : {&dd2, &dv2}) {
            const Complex overlap = lhs->overlapWith(*rhs);
            EXPECT_NEAR(overlap.real(), reference.real(), 1e-10);
            EXPECT_NEAR(overlap.imag(), reference.imag(), 1e-10);
        }
    }
    EXPECT_NEAR(dd1.fidelityWith(dv1), 1.0, 1e-10);
    EXPECT_NEAR(dd1.normSquared(), 1.0, 1e-10);
    EXPECT_NEAR(dv1.normSquared(), 1.0, 1e-10);
}

TEST(EvalStateTest, ToStateVectorHonorsTheCeiling) {
    const EvalState small(DecisionDiagram::ghzState({2, 2}));
    EXPECT_EQ(small.toStateVector().size(), 4u);
    EXPECT_THROW((void)small.toStateVector(/*ceiling=*/3), InvalidArgumentError);

    const EvalState big(DecisionDiagram::ghzState(Dimensions(27, 2)));
    EXPECT_THROW((void)big.toStateVector(), InvalidArgumentError);
    EXPECT_NO_THROW((void)big.toDiagram());
}

TEST(DenseBackendTest, RefusesPastItsCeilingWithAClearError) {
    const DenseBackend backend(/*maxAmplitudes=*/32);
    const Circuit big(Dimensions{4, 4, 4}); // 64 amplitudes
    try {
        (void)backend.runFromZero(big);
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("dense backend ceiling"), std::string::npos) << what;
        EXPECT_NE(what.find("--backend dd"), std::string::npos) << what;
    }
}

TEST(ApplyParity, PerOperationApplicationMatchesAcrossBackends) {
    const Dimensions dims{3, 4, 2};
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    Rng rng(12345);
    const StateVector target = states::random(dims, rng);
    const auto prep = prepareExact(target, lean);

    const DenseBackend dense;
    const DdBackend dd;
    EvalState dv{StateVector(dims)};
    EvalState diagram{DecisionDiagram::zeroState(dims)};
    for (const Operation& op : prep.circuit.operations()) {
        dense.apply(dv, op);
        dd.apply(diagram, op);
    }
    for (std::uint64_t i = 0; i < dv.dense().size(); ++i) {
        const Digits digits = dv.radix().digitsOf(i);
        const Complex a = dv.amplitudeOf(digits);
        const Complex b = diagram.amplitudeOf(digits);
        EXPECT_NEAR(a.real(), b.real(), 1e-10) << "index " << i;
        EXPECT_NEAR(a.imag(), b.imag(), 1e-10);
    }
    // Applying with the wrong representation is a caller error.
    EXPECT_THROW(dense.apply(diagram, prep.circuit.operations().front()),
                 InvalidArgumentError);
    EXPECT_THROW(dd.apply(dv, prep.circuit.operations().front()), InvalidArgumentError);
}

TEST(RunFromZeroTest, BothBackendsPrepareTheSameState) {
    const Dimensions dims{2, 3, 2};
    const StateVector target = states::wState(dims);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);

    const EvalState dense = DenseBackend().runFromZero(prep.circuit);
    const EvalState diagram = DdBackend().runFromZero(prep.circuit);
    EXPECT_TRUE(dense.isDense());
    EXPECT_TRUE(diagram.isDiagram());
    EXPECT_NEAR(dense.fidelityWith(diagram), 1.0, 1e-10);
    EXPECT_NEAR(dense.fidelityWith(EvalState(target)), 1.0, 1e-9);
}

using ScopedThreads = parallel::ScopedThreadCount;

TEST(ExecutionConfigPlumbing, BackendsCarryTheConfigTheyWereBuiltWith) {
    const ScopedThreads scope(3);
    EXPECT_EQ(DenseBackend().executionConfig().threads, 3U);
    EXPECT_EQ(makeBackend(BackendKind::Dd)->executionConfig().threads, 3U);
    const auto pinned = makeBackend(BackendKind::Dense, parallel::ExecutionConfig{1});
    EXPECT_EQ(pinned->executionConfig().threads, 1U);
}

TEST(ExecutionConfigPlumbing, EntryPointsPinTheirConfigAndRestoreTheAmbientWidth) {
    const ScopedThreads ambient(2);
    const auto backend = makeBackend(BackendKind::Dense, parallel::ExecutionConfig{4});
    const StateVector target = states::ghz({3, 3});
    const auto prep = prepareExact(target);
    const EvalState evalTarget(target);
    EXPECT_NEAR(backend->preparationFidelity(prep.circuit, evalTarget), 1.0, 1e-9);
    EXPECT_EQ(parallel::globalThreads(), 2U);
    const auto results = backend->prepareAndVerifyBatch({{&prep.circuit, &evalTarget}});
    ASSERT_EQ(results.size(), 1U);
    EXPECT_NEAR(results.front().fidelity, 1.0, 1e-9);
    EXPECT_EQ(parallel::globalThreads(), 2U);
}

/// Batch fixture: a handful of independent prepare-and-verify items on
/// small mixed-radix registers.
struct BatchFixture {
    std::vector<StateVector> targets;
    std::vector<Circuit> circuits;
    std::vector<EvalState> evalTargets;
    std::vector<BatchVerifyItem> items;

    BatchFixture() {
        SynthesisOptions lean;
        lean.emitIdentityOperations = false;
        const std::vector<Dimensions> registers = {
            {3, 6, 2}, {2, 2, 2, 2}, {3, 3, 3}, {9, 5, 6, 3}, {2, 3, 2}};
        Rng rng(99);
        for (const auto& dims : registers) {
            targets.push_back(states::random(dims, rng));
            circuits.push_back(prepareExact(targets.back(), lean).circuit);
        }
        // Fill evalTargets completely before taking addresses: a growing
        // vector would invalidate the earlier items' pointers.
        evalTargets.reserve(targets.size());
        for (const auto& target : targets) {
            evalTargets.emplace_back(target);
        }
        for (std::size_t i = 0; i < targets.size(); ++i) {
            items.push_back({&circuits[i], &evalTargets[i]});
        }
    }
};

class BatchVerify : public ::testing::TestWithParam<unsigned> {};

TEST_P(BatchVerify, AllItemsVerifyOnBothBackends) {
    const ScopedThreads scope(GetParam());
    const BatchFixture fixture;
    for (const BackendKind kind : {BackendKind::Dense, BackendKind::Dd}) {
        const auto backend = makeBackend(kind);
        const auto results = backend->prepareAndVerifyBatch(fixture.items);
        ASSERT_EQ(results.size(), fixture.items.size());
        for (const auto& result : results) {
            EXPECT_FALSE(result.failed) << result.error;
            EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
        }
    }
}

TEST_P(BatchVerify, MatchesSequentialFidelities) {
    const BatchFixture fixture;
    const auto backend = makeBackend(BackendKind::Dense);
    std::vector<double> sequential;
    {
        const ScopedThreads scope(1);
        for (const auto& item : fixture.items) {
            sequential.push_back(backend->preparationFidelity(*item.circuit, *item.target));
        }
    }
    const ScopedThreads scope(GetParam());
    const auto results = backend->prepareAndVerifyBatch(fixture.items);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_NEAR(results[i].fidelity, sequential[i], 1e-12);
    }
}

TEST_P(BatchVerify, PerItemFailureDoesNotAbortSiblings) {
    const ScopedThreads scope(GetParam());
    BatchFixture fixture;
    // Make item 2 fail on the dense backend: a register past a tiny ceiling.
    const DenseBackend tiny(16);
    const auto results = tiny.prepareAndVerifyBatch(fixture.items);
    ASSERT_EQ(results.size(), fixture.items.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const bool fits = fixture.targets[i].size() <= 16;
        EXPECT_EQ(results[i].failed, !fits) << "item " << i;
        if (fits) {
            EXPECT_NEAR(results[i].fidelity, 1.0, 1e-9);
        } else {
            EXPECT_NE(results[i].error.find("ceiling"), std::string::npos);
        }
    }
}

TEST_P(BatchVerify, EmptyBatchIsANoOp) {
    const ScopedThreads scope(GetParam());
    EXPECT_TRUE(DenseBackend().prepareAndVerifyBatch({}).empty());
}

TEST_P(BatchVerify, RepeatedItemsResolveFromTheSharedSessionCache) {
    // All batch items of a DdBackend intern into the backend's one shared
    // DdSession (there is no per-item escape hatch), so a repeated item is
    // served by session state the first run left behind: its nodes hit in
    // the uniquing table instead of allocating, and its overlap traversal
    // hits the session compute cache. An exactly-reproduced target resolves
    // by root identity before the compute cache is even consulted, so the
    // batch includes a mismatched (fidelity < 1) pair whose overlap must
    // descend — that descent is what the cache persists across calls.
    const Dimensions dims{3, 4, 2};
    const StateVector ghz = states::ghz(dims);
    const auto prep = prepareExact(ghz);
    const EvalState ghzTarget(ghz);
    const EvalState wTarget(states::wState(dims));
    const DdBackend backend(Tolerance::kDefault, parallel::ExecutionConfig{GetParam()});
    const std::vector<BatchVerifyItem> items = {{&prep.circuit, &ghzTarget},
                                                {&prep.circuit, &wTarget}};

    const auto first = backend.prepareAndVerifyBatch(items);
    ASSERT_EQ(first.size(), items.size());
    EXPECT_NEAR(first[0].fidelity, 1.0, 1e-9);
    EXPECT_LT(first[1].fidelity, 0.5); // |<w|ghz>|^2 — genuinely mismatched
    const std::uint64_t poolAfterFirst = backend.ddSession()->stats().poolNodes;

    // Replay the whole batch on the same backend: every node re-resolves
    // from the shared table (no growth), the mismatched overlap resolves
    // from the compute cache, and the fidelities come out bit-identical.
    const auto second = backend.prepareAndVerifyBatch(items);
    ASSERT_EQ(second.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_FALSE(second[i].failed) << second[i].error;
        EXPECT_EQ(second[i].fidelity, first[i].fidelity) << "item " << i;
    }
    const dd::DdSessionStats stats = backend.ddSession()->stats();
    EXPECT_EQ(stats.poolNodes, poolAfterFirst);
    EXPECT_GT(stats.unique.hits, 0U);
    EXPECT_GT(stats.cache.hits, 0U);
    EXPECT_GT(stats.cacheHitRate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchVerify, ::testing::Values(1U, 2U, 4U),
                         [](const auto& paramInfo) {
                             return "t" + std::to_string(paramInfo.param);
                         });

} // namespace
} // namespace mqsp
