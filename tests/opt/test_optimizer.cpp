#include "mqsp/opt/optimizer.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mqsp {
namespace {

constexpr double kPi = std::numbers::pi;

/// Exhaustive process equivalence on every basis state of the register.
void expectSameProcess(const Circuit& a, const Circuit& b, double tol = 1e-9) {
    ASSERT_EQ(a.dimensions(), b.dimensions());
    const MixedRadix& radix = a.radix();
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        StateVector input(a.dimensions());
        input[0] = Complex{0.0, 0.0};
        input[index] = Complex{1.0, 0.0};
        const StateVector wantState = Simulator::run(a, input);
        const StateVector gotState = Simulator::run(b, input);
        for (std::uint64_t i = 0; i < wantState.size(); ++i) {
            EXPECT_NEAR(std::abs(gotState[i] - wantState[i]), 0.0, tol)
                << "input " << index << " amplitude " << i;
        }
    }
}

TEST(Optimizer, MergesAdjacentSameAxisRotations) {
    Circuit circuit({3});
    circuit.append(Operation::givens(0, 0, 1, 0.4, 0.7));
    circuit.append(Operation::givens(0, 0, 1, 0.6, 0.7));
    const Circuit original = circuit;
    const auto report = optimizeCircuit(circuit);
    EXPECT_EQ(report.mergedRotations, 1U);
    EXPECT_EQ(circuit.numOperations(), 1U);
    EXPECT_DOUBLE_EQ(circuit[0].theta, 1.0);
    expectSameProcess(original, circuit);
}

TEST(Optimizer, CancelsOpFollowedByInverse) {
    Circuit circuit({4, 2});
    circuit.append(Operation::givens(0, 1, 3, 1.1, -0.2, {{1, 1}}));
    circuit.append(Operation::givens(0, 1, 3, -1.1, -0.2, {{1, 1}}));
    const auto report = optimizeCircuit(circuit);
    EXPECT_EQ(circuit.numOperations(), 0U);
    EXPECT_EQ(report.droppedIdentities, 1U);
}

TEST(Optimizer, MergesAcrossCommutingOps) {
    // The middle op acts on a disjoint site, so the outer rotations merge.
    Circuit circuit({3, 2});
    circuit.append(Operation::givens(0, 0, 1, 0.3, 0.0));
    circuit.append(Operation::givens(1, 0, 1, 0.9, 0.4));
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0));
    const Circuit original = circuit;
    (void)optimizeCircuit(circuit);
    EXPECT_EQ(circuit.numOperations(), 2U);
    expectSameProcess(original, circuit);
}

TEST(Optimizer, DoesNotMergeAcrossBlockingOps) {
    // The middle op shares the target site: merging would be wrong.
    Circuit circuit({3});
    circuit.append(Operation::givens(0, 0, 1, 0.3, 0.0));
    circuit.append(Operation::givens(0, 1, 2, 0.9, 0.4));
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0));
    const Circuit original = circuit;
    (void)optimizeCircuit(circuit);
    EXPECT_EQ(circuit.numOperations(), 3U);
    expectSameProcess(original, circuit);
}

TEST(Optimizer, DoesNotMergeDifferentAxes) {
    Circuit circuit({3});
    circuit.append(Operation::givens(0, 0, 1, 0.3, 0.0));
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.1)); // different phi
    (void)optimizeCircuit(circuit);
    EXPECT_EQ(circuit.numOperations(), 2U);
}

TEST(Optimizer, ControlOrderIsNotSemantic) {
    Circuit circuit({2, 2, 2});
    circuit.append(Operation::givens(2, 0, 1, 0.3, 0.0, {{0, 1}, {1, 0}}));
    circuit.append(Operation::givens(2, 0, 1, 0.4, 0.0, {{1, 0}, {0, 1}}));
    const Circuit original = circuit;
    (void)optimizeCircuit(circuit);
    EXPECT_EQ(circuit.numOperations(), 1U);
    expectSameProcess(original, circuit);
}

TEST(Optimizer, MergesFullControlFanIntoUncontrolledOp) {
    // The same rotation fired for every level of the control equals the
    // uncontrolled rotation.
    Circuit circuit({3, 2});
    for (Level k = 0; k < 3; ++k) {
        circuit.append(Operation::givens(1, 0, 1, 0.8, 0.2, {{0, k}}));
    }
    const Circuit original = circuit;
    const auto report = optimizeCircuit(circuit);
    EXPECT_EQ(report.mergedControlFans, 2U);
    EXPECT_EQ(circuit.numOperations(), 1U);
    EXPECT_TRUE(circuit[0].controls.empty());
    expectSameProcess(original, circuit);
}

TEST(Optimizer, PartialFanIsLeftAlone) {
    Circuit circuit({3, 2});
    circuit.append(Operation::givens(1, 0, 1, 0.8, 0.2, {{0, 0}}));
    circuit.append(Operation::givens(1, 0, 1, 0.8, 0.2, {{0, 2}}));
    const Circuit original = circuit;
    (void)optimizeCircuit(circuit);
    EXPECT_EQ(circuit.numOperations(), 2U);
    expectSameProcess(original, circuit);
}

TEST(Optimizer, FanMergePeelsOneControlOfMany) {
    // Fan over q1's two levels with a shared control on q0: the q1 control
    // disappears, the q0 control stays.
    Circuit circuit({2, 2, 2});
    circuit.append(Operation::givens(2, 0, 1, 1.2, 0.0, {{0, 1}, {1, 0}}));
    circuit.append(Operation::givens(2, 0, 1, 1.2, 0.0, {{0, 1}, {1, 1}}));
    const Circuit original = circuit;
    (void)optimizeCircuit(circuit);
    ASSERT_EQ(circuit.numOperations(), 1U);
    EXPECT_EQ(circuit[0].controls, (std::vector<Control>{{0, 1}}));
    expectSameProcess(original, circuit);
}

TEST(Optimizer, FanPlusRotationMergeComposes) {
    // After the fan merge the op can further merge with a neighbouring
    // uncontrolled rotation on the same axis.
    Circuit circuit({2, 3});
    circuit.append(Operation::givens(1, 0, 2, 0.3, 0.1));
    circuit.append(Operation::givens(1, 0, 2, 0.5, 0.1, {{0, 0}}));
    circuit.append(Operation::givens(1, 0, 2, 0.5, 0.1, {{0, 1}}));
    const Circuit original = circuit;
    (void)optimizeCircuit(circuit);
    EXPECT_EQ(circuit.numOperations(), 1U);
    EXPECT_DOUBLE_EQ(circuit[0].theta, 0.8);
    expectSameProcess(original, circuit);
}

TEST(Optimizer, ShortensFaithfulSynthesisOutput) {
    // Paper-faithful circuits carry identity ops; the optimizer must strip
    // them without touching semantics (same effect as the elision mode).
    const StateVector target = states::ghz({3, 6, 2});
    auto prep = prepareExact(target);
    const std::size_t before = prep.circuit.numOperations();
    const auto report = optimizeCircuit(prep.circuit);
    EXPECT_LT(prep.circuit.numOperations(), before);
    EXPECT_GT(report.droppedIdentities, 0U);
    EXPECT_NEAR(Simulator::preparationFidelity(prep.circuit, target), 1.0, 1e-9);
}

TEST(Optimizer, ReportsRoundsAndCounts) {
    Circuit circuit({2});
    circuit.append(Operation::givens(0, 0, 1, 0.5, 0.0));
    circuit.append(Operation::givens(0, 0, 1, -0.5, 0.0));
    const auto report = optimizeCircuit(circuit);
    EXPECT_EQ(report.opsBefore, 2U);
    EXPECT_EQ(report.opsAfter, 0U);
    EXPECT_GE(report.rounds, 1U);
}

class OptimizerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerFuzz, RandomCircuitsKeepTheirSemantics) {
    Rng rng(GetParam());
    const Dimensions dims{3, 2, 4};
    const MixedRadix radix(dims);
    Circuit circuit(dims);
    for (int i = 0; i < 60; ++i) {
        const auto target = static_cast<std::size_t>(rng.uniformIndex(3));
        const Dimension dim = radix.dimensionAt(target);
        auto a = static_cast<Level>(rng.uniformIndex(dim));
        auto b = static_cast<Level>(rng.uniformIndex(dim));
        if (a == b) {
            b = (b + 1) % dim;
        }
        std::vector<Control> controls;
        if (rng.uniform01() < 0.5) {
            std::size_t ctrl = (target + 1 + rng.uniformIndex(2)) % 3;
            controls.push_back(
                {ctrl, static_cast<Level>(rng.uniformIndex(radix.dimensionAt(ctrl)))});
        }
        // Small discrete angle set to provoke merges and cancellations.
        const double angles[] = {0.0, kPi / 4, -kPi / 4, kPi / 2};
        const double phis[] = {0.0, kPi / 2};
        if (rng.uniform01() < 0.7) {
            circuit.append(Operation::givens(target, std::min(a, b), std::max(a, b),
                                             angles[rng.uniformIndex(4)],
                                             phis[rng.uniformIndex(2)], controls));
        } else {
            circuit.append(Operation::phase(target, std::min(a, b), std::max(a, b),
                                            angles[rng.uniformIndex(4)], controls));
        }
    }
    Circuit optimized = circuit;
    const auto report = optimizeCircuit(optimized);
    EXPECT_LE(report.opsAfter, report.opsBefore);
    expectSameProcess(circuit, optimized, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzz,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U, 9U, 10U));

} // namespace
} // namespace mqsp
