#include "mqsp/analysis/observables.hpp"

#include "mqsp/linalg/eigen.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

using namespace analysis;

TEST(GellMann, QubitBasisIsThePauliBasis) {
    // d = 2: symmetric = X, antisymmetric = Y, diagonal = Z.
    const DenseMatrix x = gellMannSymmetric(2, 0, 1);
    EXPECT_NEAR(x(0, 1).real(), 1.0, 1e-12);
    const DenseMatrix y = gellMannAntisymmetric(2, 0, 1);
    EXPECT_NEAR(y(0, 1).imag(), -1.0, 1e-12);
    EXPECT_NEAR(y(1, 0).imag(), 1.0, 1e-12);
    const DenseMatrix z = gellMannDiagonal(2, 1);
    EXPECT_NEAR(z(0, 0).real(), 1.0, 1e-12);
    EXPECT_NEAR(z(1, 1).real(), -1.0, 1e-12);
}

TEST(GellMann, BasisSizeIsDSquaredMinusOne) {
    for (const Dimension dim : {2U, 3U, 5U, 7U}) {
        EXPECT_EQ(gellMannBasis(dim).size(), static_cast<std::size_t>(dim) * dim - 1);
    }
}

TEST(GellMann, AllElementsHermitianTracelessOrthogonal) {
    for (const Dimension dim : {2U, 3U, 4U, 6U}) {
        const auto basis = gellMannBasis(dim);
        for (std::size_t a = 0; a < basis.size(); ++a) {
            EXPECT_TRUE(isHermitian(basis[a])) << "dim " << dim << " element " << a;
            EXPECT_NEAR(std::abs(traceOf(basis[a])), 0.0, 1e-12);
            for (std::size_t b = a; b < basis.size(); ++b) {
                // Tr(G_a G_b) = 2 delta_ab.
                const Complex product = traceOf(basis[a].multiply(basis[b]));
                EXPECT_NEAR(product.real(), a == b ? 2.0 : 0.0, 1e-10)
                    << "dim " << dim << " pair " << a << "," << b;
                EXPECT_NEAR(product.imag(), 0.0, 1e-10);
            }
        }
    }
}

TEST(GellMann, RejectsBadIndices) {
    EXPECT_THROW((void)gellMannSymmetric(3, 1, 1), InvalidArgumentError);
    EXPECT_THROW((void)gellMannSymmetric(3, 2, 1), InvalidArgumentError);
    EXPECT_THROW((void)gellMannAntisymmetric(3, 0, 3), InvalidArgumentError);
    EXPECT_THROW((void)gellMannDiagonal(3, 0), InvalidArgumentError);
    EXPECT_THROW((void)gellMannDiagonal(3, 3), InvalidArgumentError);
}

TEST(Expectation, BasisStateDiagonalObservable) {
    // <2| Z_l |2> on a qutrit in |2>.
    const StateVector state = states::basis({3}, {2});
    const DenseMatrix z1 = gellMannDiagonal(3, 1); // diag(1,-1,0)
    EXPECT_NEAR(expectation(state, 0, z1), 0.0, 1e-12);
    const DenseMatrix z2 = gellMannDiagonal(3, 2); // sqrt(1/3) diag(1,1,-2)
    EXPECT_NEAR(expectation(state, 0, z2), -2.0 * std::sqrt(1.0 / 3.0), 1e-12);
}

TEST(Expectation, OffDiagonalObservableOnSuperposition) {
    // (|0> + |1>)/sqrt(2): <X_{01}> = 1.
    const double a = 1.0 / std::sqrt(2.0);
    const StateVector state({3}, {{a, 0.0}, {a, 0.0}, {0.0, 0.0}});
    EXPECT_NEAR(expectation(state, 0, gellMannSymmetric(3, 0, 1)), 1.0, 1e-12);
    EXPECT_NEAR(expectation(state, 0, gellMannAntisymmetric(3, 0, 1)), 0.0, 1e-12);
}

TEST(Expectation, ActsOnTheRequestedSiteOnly) {
    // |0>|1> on [2,2]: Z on site 0 gives +1, on site 1 gives -1.
    const StateVector state = states::basis({2, 2}, {0, 1});
    const DenseMatrix z = gellMannDiagonal(2, 1);
    EXPECT_NEAR(expectation(state, 0, z), 1.0, 1e-12);
    EXPECT_NEAR(expectation(state, 1, z), -1.0, 1e-12);
}

TEST(Expectation, ValidatesArguments) {
    const StateVector state({3, 2});
    EXPECT_THROW((void)expectation(state, 5, gellMannDiagonal(3, 1)), InvalidArgumentError);
    EXPECT_THROW((void)expectation(state, 0, gellMannDiagonal(2, 1)), InvalidArgumentError);
    DenseMatrix notHermitian(3);
    notHermitian(0, 1) = Complex{1.0, 0.0};
    EXPECT_THROW((void)expectation(state, 0, notHermitian), InvalidArgumentError);
}

TEST(Variance, ZeroForEigenstatesPositiveOtherwise) {
    const DenseMatrix z = gellMannDiagonal(2, 1);
    const StateVector eigen = states::basis({2}, {1});
    EXPECT_NEAR(variance(eigen, 0, z), 0.0, 1e-12);

    const double a = 1.0 / std::sqrt(2.0);
    const StateVector plus({2}, {{a, 0.0}, {a, 0.0}});
    EXPECT_NEAR(variance(plus, 0, z), 1.0, 1e-12); // <Z^2>=1, <Z>=0
}

TEST(BlochVector, PureProductSiteHasFullNorm) {
    // For a pure reduced state, |b|^2 = 2(1 - 1/d).
    Rng rng(5);
    const StateVector local = states::random({3}, rng);
    const StateVector product = local.kron(states::basis({2}, {0}));
    EXPECT_NEAR(blochNormSquared(product, 0), 2.0 * (1.0 - 1.0 / 3.0), 1e-8);
}

TEST(BlochVector, MaximallyMixedSiteHasZeroNorm) {
    // GHZ marginals are maximally mixed over the populated levels; for the
    // qutrit GHZ the site-0 marginal is I/3 -> Bloch vector 0.
    const StateVector ghz = states::ghz({3, 3});
    EXPECT_NEAR(blochNormSquared(ghz, 0), 0.0, 1e-10);
}

TEST(BlochVector, DetectsPartialEntanglement) {
    // W-state marginals are mixed but not maximally: strictly between.
    const StateVector w = states::wState({2, 2, 2});
    const double norm2 = blochNormSquared(w, 0);
    EXPECT_GT(norm2, 0.1);
    EXPECT_LT(norm2, 2.0 * (1.0 - 0.5) - 1e-6);
}

TEST(BlochVector, SizeMatchesBasis) {
    const StateVector state = states::uniform({3, 6, 2});
    EXPECT_EQ(blochVector(state, 0).size(), 8U);
    EXPECT_EQ(blochVector(state, 1).size(), 35U);
    EXPECT_EQ(blochVector(state, 2).size(), 3U);
}

} // namespace
} // namespace mqsp
