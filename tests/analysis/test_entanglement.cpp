#include "mqsp/analysis/entanglement.hpp"

#include "mqsp/linalg/eigen.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

using analysis::entanglementEntropy;
using analysis::purity;
using analysis::reducedDensityMatrix;
using analysis::renyi2Entropy;
using analysis::schmidtRank;
using analysis::schmidtSpectrum;

TEST(ReducedDensityMatrix, ValidatesArguments) {
    const StateVector state({2, 2});
    EXPECT_THROW((void)reducedDensityMatrix(state, {}), InvalidArgumentError);
    EXPECT_THROW((void)reducedDensityMatrix(state, {5}), InvalidArgumentError);
    EXPECT_THROW((void)reducedDensityMatrix(state, {0, 0}), InvalidArgumentError);
}

TEST(ReducedDensityMatrix, ProductStateIsPureLocally) {
    const StateVector state = states::uniform({3}).kron(states::basis({2}, {1}));
    const DenseMatrix rho = reducedDensityMatrix(state, {0});
    EXPECT_EQ(rho.size(), 3U);
    EXPECT_NEAR(traceOf(rho).real(), 1.0, 1e-12);
    EXPECT_NEAR(purity(rho), 1.0, 1e-12);
    // rho = |u><u| for the uniform qutrit: every entry 1/3.
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_NEAR(rho(i, j).real(), 1.0 / 3.0, 1e-12);
        }
    }
}

TEST(ReducedDensityMatrix, GhzMarginalIsMaximallyMixedOnMatchingLevels) {
    const StateVector ghz = states::ghz({3, 3});
    const DenseMatrix rho = reducedDensityMatrix(ghz, {0});
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            const double expected = (i == j) ? 1.0 / 3.0 : 0.0;
            EXPECT_NEAR(std::abs(rho(i, j) - Complex{expected, 0.0}), 0.0, 1e-12);
        }
    }
}

TEST(ReducedDensityMatrix, KeepAllReturnsFullProjector) {
    Rng rng(3);
    const StateVector state = states::random({2, 3}, rng);
    const DenseMatrix rho = reducedDensityMatrix(state, {0, 1});
    EXPECT_NEAR(purity(rho), 1.0, 1e-10);
    EXPECT_NEAR(traceOf(rho).real(), 1.0, 1e-10);
}

TEST(ReducedDensityMatrix, KeepSiteOrderControlsIndexing) {
    // |psi> = |0>_a |1>_b : keeping {1, 0} indexes (b, a).
    const StateVector state = StateVector::basis({2, 3}, {0, 1});
    const DenseMatrix rho = reducedDensityMatrix(state, {1, 0});
    // Kept index = b * 2 + a = 1 * 2 + 0 = 2.
    EXPECT_NEAR(rho(2, 2).real(), 1.0, 1e-12);
}

TEST(Entropy, ProductStatesHaveZeroEntropy) {
    Rng rng(5);
    const StateVector left = states::random({3}, rng);
    const StateVector right = states::random({4, 2}, rng);
    const StateVector product = left.kron(right);
    EXPECT_NEAR(entanglementEntropy(product, {0}), 0.0, 1e-8);
    EXPECT_EQ(schmidtRank(product, {0}), 1U);
}

TEST(Entropy, GhzAcrossTheCutIsLog2OfBranchCount) {
    // GHZ with m branches has Schmidt spectrum {1/m, ..., 1/m}.
    const StateVector ghz33 = states::ghz({3, 3});
    EXPECT_NEAR(entanglementEntropy(ghz33, {0}), std::log2(3.0), 1e-8);
    EXPECT_EQ(schmidtRank(ghz33, {0}), 3U);

    const StateVector ghzMixed = states::ghz({3, 6, 2}); // min dim 2 -> 2 branches
    EXPECT_NEAR(entanglementEntropy(ghzMixed, {0}), 1.0, 1e-8);
}

TEST(Entropy, SymmetricAcrossTheBipartition) {
    Rng rng(11);
    const StateVector state = states::random({3, 4, 2}, rng);
    // S(A) == S(B) for pure global states.
    EXPECT_NEAR(entanglementEntropy(state, {0}), entanglementEntropy(state, {1, 2}), 1e-7);
    EXPECT_NEAR(entanglementEntropy(state, {0, 1}), entanglementEntropy(state, {2}), 1e-7);
}

TEST(Entropy, WStateQubitMarginal) {
    // W on n qubits: one-qubit marginal diag(1 - 1/n, 1/n).
    const StateVector w = states::wState({2, 2, 2});
    const DenseMatrix rho = reducedDensityMatrix(w, {0});
    EXPECT_NEAR(rho(0, 0).real(), 2.0 / 3.0, 1e-10);
    EXPECT_NEAR(rho(1, 1).real(), 1.0 / 3.0, 1e-10);
    const double expected =
        -(2.0 / 3.0) * std::log2(2.0 / 3.0) - (1.0 / 3.0) * std::log2(1.0 / 3.0);
    EXPECT_NEAR(entanglementEntropy(w, {0}), expected, 1e-8);
}

TEST(Entropy, Renyi2LowerBoundsVonNeumann) {
    Rng rng(13);
    for (int round = 0; round < 5; ++round) {
        const StateVector state = states::random({3, 3, 2}, rng);
        const double s1 = entanglementEntropy(state, {0});
        const double s2 = renyi2Entropy(state, {0});
        EXPECT_LE(s2, s1 + 1e-8);
        EXPECT_GE(s2, -1e-10);
    }
}

TEST(Entropy, SchmidtSpectrumSumsToOne) {
    Rng rng(17);
    const StateVector state = states::random({3, 6, 2}, rng);
    const auto spectrum = schmidtSpectrum(state, {1});
    double sum = 0.0;
    for (const double p : spectrum) {
        EXPECT_GE(p, -1e-12);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-8);
    // Descending order.
    for (std::size_t i = 1; i < spectrum.size(); ++i) {
        EXPECT_GE(spectrum[i - 1] + 1e-12, spectrum[i]);
    }
}

TEST(Entropy, EntropyBoundedByLocalDimension) {
    Rng rng(19);
    const StateVector state = states::random({2, 6, 3}, rng);
    // Qubit cut: at most 1 bit regardless of the other side's size.
    EXPECT_LE(entanglementEntropy(state, {0}), 1.0 + 1e-8);
    // Random states are near maximally entangled across small cuts.
    EXPECT_GE(entanglementEntropy(state, {0}), 0.5);
}

class EntropySymmetryProperty : public ::testing::TestWithParam<Dimensions> {};

TEST_P(EntropySymmetryProperty, PureStateEntropyIsCutSymmetric) {
    Rng rng(23);
    const StateVector state = states::random(GetParam(), rng);
    const std::size_t n = GetParam().size();
    for (std::size_t cut = 1; cut < n; ++cut) {
        std::vector<std::size_t> left;
        std::vector<std::size_t> right;
        for (std::size_t site = 0; site < n; ++site) {
            (site < cut ? left : right).push_back(site);
        }
        EXPECT_NEAR(entanglementEntropy(state, left), entanglementEntropy(state, right),
                    1e-7)
            << "cut " << cut;
    }
}

INSTANTIATE_TEST_SUITE_P(Registers, EntropySymmetryProperty,
                         ::testing::Values(Dimensions{2, 2}, Dimensions{3, 6, 2},
                                           Dimensions{2, 3, 4}, Dimensions{3, 3, 3}));

} // namespace
} // namespace mqsp
