#include "mqsp/approx/approximation.hpp"

#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(Approximation, RejectsBadThreshold) {
    DecisionDiagram dd = DecisionDiagram::fromStateVector(states::uniform({2, 2}));
    ApproximationOptions options;
    options.fidelityThreshold = 0.0;
    EXPECT_THROW((void)approximate(dd, options), InvalidArgumentError);
    options.fidelityThreshold = 1.5;
    EXPECT_THROW((void)approximate(dd, options), InvalidArgumentError);
}

TEST(Approximation, RejectsReducedDiagrams) {
    // Pruning bookkeeping needs unique parents; a reduced diagram with
    // multi-parent sharing must be rejected, not silently mis-pruned.
    // (The W state's "all zeros below" sub-trees are shared across parents.)
    DecisionDiagram dd = DecisionDiagram::fromStateVector(states::wState({3, 3, 2}));
    dd.reduce();
    EXPECT_THROW((void)approximate(dd), InvalidArgumentError);
}

TEST(Approximation, EmptyDiagramIsNoop) {
    const StateVector zero({2, 2}, std::vector<Complex>(4, Complex{0.0, 0.0}));
    DecisionDiagram dd = DecisionDiagram::fromStateVector(zero);
    const auto report = approximate(dd);
    EXPECT_DOUBLE_EQ(report.removedMass, 0.0);
    EXPECT_DOUBLE_EQ(report.fidelity, 1.0);
}

TEST(Approximation, StructuredStatesSurviveUntouched) {
    // Table 1: "Due to the regular structure of the first three benchmarks,
    // the approximation shows no effect" — every GHZ/W amplitude carries
    // more than 2% of the mass, so nothing fits the 0.98 budget.
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        for (int which = 0; which < 3; ++which) {
            const StateVector state = which == 0   ? states::ghz(dims)
                                      : which == 1 ? states::wState(dims)
                                                   : states::embeddedWState(dims);
            DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
            const auto report = approximate(dd);
            EXPECT_DOUBLE_EQ(report.removedMass, 0.0);
            EXPECT_NEAR(dd.fidelityWith(state), 1.0, 1e-10);
        }
    }
}

TEST(Approximation, FidelityGuaranteeHolds) {
    // Property over random states: the renormalized approximate state has
    // fidelity >= threshold against the original (the §4.3 guarantee).
    Rng rng(41);
    for (const double threshold : {0.90, 0.95, 0.98, 0.999}) {
        for (int round = 0; round < 5; ++round) {
            const StateVector state = states::random({3, 6, 2}, rng);
            DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
            ApproximationOptions options;
            options.fidelityThreshold = threshold;
            const auto report = approximate(dd, options);
            const double actual = dd.fidelityWith(state);
            EXPECT_GE(actual + 1e-10, threshold)
                << "threshold " << threshold << " round " << round;
            EXPECT_NEAR(actual, report.fidelity, 1e-9);
            EXPECT_EQ(dd.checkInvariants(), "");
        }
    }
}

TEST(Approximation, RemovesSomethingFromRandomStates) {
    Rng rng(7);
    const StateVector state = states::random({3, 6, 2}, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const auto before = dd.nodeCount(NodeCountMode::Slots);
    const auto report = approximate(dd);
    EXPECT_GT(report.removedLeafEdges + report.removedInternalNodes, 0U);
    EXPECT_LT(dd.nodeCount(NodeCountMode::Slots), before);
    EXPECT_LE(report.removedMass, 0.02 + 1e-12);
}

TEST(Approximation, ThresholdOneRemovesNothing) {
    Rng rng(13);
    const StateVector state = states::random({3, 4, 2}, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    ApproximationOptions options;
    options.fidelityThreshold = 1.0;
    const auto report = approximate(dd, options);
    EXPECT_DOUBLE_EQ(report.removedMass, 0.0);
    EXPECT_NEAR(dd.fidelityWith(state), 1.0, 1e-10);
}

TEST(Approximation, LowerThresholdPrunesMore) {
    Rng rng(29);
    const StateVector state = states::random({3, 6, 2}, rng);
    std::vector<std::uint64_t> slots;
    for (const double threshold : {0.999, 0.98, 0.90, 0.70}) {
        DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
        ApproximationOptions options;
        options.fidelityThreshold = threshold;
        (void)approximate(dd, options);
        slots.push_back(dd.nodeCount(NodeCountMode::Slots));
    }
    for (std::size_t i = 1; i < slots.size(); ++i) {
        EXPECT_LE(slots[i], slots[i - 1]);
    }
    EXPECT_LT(slots.back(), slots.front());
}

TEST(Approximation, SparseStateWholeSubtreePruning) {
    // A sparse state with one tiny isolated branch: pruning must remove the
    // whole branch (an internal node), not just a leaf.
    StateVector state({2, 2, 2});
    state[0] = Complex{0.0, 0.0};
    state.at({0, 0, 0}) = Complex{0.9, 0.0};
    state.at({0, 1, 1}) = Complex{0.42, 0.0};
    state.at({1, 0, 0}) = Complex{0.1, 0.0}; // mass 0.01 < 2% budget
    state.normalize();
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const auto report = approximate(dd);
    EXPECT_GT(report.removedInternalNodes + report.removedLeafEdges, 0U);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({1, 0, 0})), 0.0, 1e-12);
    EXPECT_GE(dd.fidelityWith(state), 0.98);
}

TEST(Approximation, ReductionMergesAfterPruning) {
    // After pruning, the two surviving identical branches merge (Example 6).
    StateVector state({3, 2});
    state[0] = Complex{0.0, 0.0};
    const double shared = 0.5;
    state.at({0, 0}) = Complex{std::sqrt(0.495) * shared * std::sqrt(2.0), 0.0};
    state.at({0, 1}) = Complex{std::sqrt(0.495) * shared * std::sqrt(2.0), 0.0};
    state.at({1, 0}) = Complex{std::sqrt(0.495) * shared * std::sqrt(2.0), 0.0};
    state.at({1, 1}) = Complex{std::sqrt(0.495) * shared * std::sqrt(2.0), 0.0};
    state.at({2, 0}) = Complex{std::sqrt(0.01), 0.0};
    state.normalize();
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const auto report = approximate(dd);
    EXPECT_GT(report.mergedNodes, 0U);
    EXPECT_TRUE(dd.isTensorProductNode(dd.rootNode()));
}

class ApproximationFidelitySweep
    : public ::testing::TestWithParam<std::tuple<Dimensions, double>> {};

TEST_P(ApproximationFidelitySweep, GuaranteeHoldsAcrossRegistersAndThresholds) {
    const auto& [dims, threshold] = GetParam();
    Rng rng(97);
    const StateVector state = states::random(dims, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    ApproximationOptions options;
    options.fidelityThreshold = threshold;
    const auto report = approximate(dd, options);
    EXPECT_GE(dd.fidelityWith(state) + 1e-10, threshold);
    EXPECT_GE(report.fidelity + 1e-10, threshold);
    EXPECT_EQ(dd.checkInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproximationFidelitySweep,
    ::testing::Combine(::testing::Values(Dimensions{2, 2, 2}, Dimensions{3, 6, 2},
                                         Dimensions{4, 3, 2}, Dimensions{2, 5, 3}),
                       ::testing::Values(0.999, 0.99, 0.98, 0.95, 0.85)));

} // namespace
} // namespace mqsp
