// Concurrency contract of the reader-writer dispatcher: read-path verbs
// genuinely overlap, write-path verbs exclude, a fixed command storm
// yields thread-count- and order-invariant deterministic outcomes, and
// the high-water-mark GC fires exactly when the pool crosses the trigger.

#include "mqsp/serve/service.hpp"

#include "mqsp/support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace mqsp::serve {
namespace {

/// Run one line and require an "OK ..." reply; returns the reply line.
std::string ok(VerificationService& service, const std::string& line) {
    const Response response = service.handleLine(line);
    EXPECT_EQ(response.line.rfind("OK ", 0), 0U)
        << "line '" << line << "' replied: " << response.line;
    return response.line;
}

/// Value of `key=` in a reply line ("OK id=1 fidelity=1.000 ..."), or "".
std::string field(const std::string& reply, const std::string& key) {
    const std::string needle = " " + key + "=";
    const auto pos = reply.find(needle);
    if (pos == std::string::npos) {
        return "";
    }
    const auto start = pos + needle.size();
    const auto end = reply.find(' ', start);
    return reply.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

std::uint64_t uintField(const std::string& reply, const std::string& key) {
    return std::stoull(field(reply, key));
}

/// Spin until `predicate` holds; returns false on timeout (never hangs).
template <typename Predicate>
bool awaitFor(const Predicate& predicate) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!predicate()) {
        if (std::chrono::steady_clock::now() >= deadline) {
            return false;
        }
        std::this_thread::yield();
    }
    return true;
}

// The pin for the overlapping-readers contract: reader A blocks *inside*
// the shared section (via the test hook) until reader B has fully
// completed another read command. Under the old single-mutex dispatch B
// could never finish while A held the lock — the await below would time
// out; under reader-writer dispatch B sails through.
TEST(ServeServiceConcurrent, TwoReadCommandsOverlap) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 3,6,2");

    std::atomic<bool> readerAInside{false};
    std::atomic<bool> readerBDone{false};
    std::atomic<bool> overlapped{false};
    service.setReadPathHookForTests([&](Verb verb) {
        if (verb != Verb::Stats) {
            return; // only reader A (STATS?) blocks
        }
        readerAInside.store(true);
        overlapped.store(awaitFor([&] { return readerBDone.load(); }));
    });

    std::thread readerA([&] { ok(service, "STATS?"); });
    std::thread readerB([&] {
        ASSERT_TRUE(awaitFor([&] { return readerAInside.load(); }));
        ok(service, "VERIFY --id 1"); // completes while A holds shared ownership
        readerBDone.store(true);
    });
    readerA.join();
    readerB.join();
    EXPECT_TRUE(overlapped.load())
        << "a second read command could not complete while the first held the read path";
}

// The inverse pin: a writer (PREP) issued while a reader sits inside the
// shared section must NOT complete until the reader leaves.
TEST(ServeServiceConcurrent, WriteCommandWaitsForActiveReaders) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 3,6,2");

    std::atomic<bool> readerInside{false};
    std::atomic<bool> releaseReader{false};
    std::atomic<bool> writerDone{false};
    service.setReadPathHookForTests([&](Verb) {
        readerInside.store(true);
        awaitFor([&] { return releaseReader.load(); });
    });

    std::thread reader([&] { ok(service, "VERIFY --id 1"); });
    ASSERT_TRUE(awaitFor([&] { return readerInside.load(); }));
    std::thread writer([&] {
        ok(service, "PREP:W --dims 3,6,2");
        writerDone.store(true);
    });
    // The writer cannot finish while the reader is parked in the shared
    // section. A short real-time window is the best negative check
    // available; the positive half (it completes after release) is exact.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(writerDone.load());
    releaseReader.store(true);
    reader.join();
    writer.join();
    EXPECT_TRUE(writerDone.load());
}

// One fixed command list, dealt round-robin to T threads: every
// deterministic outcome — per-verb counts, prepared/verified/error
// totals, and the post-GC pool size — is identical for every T and every
// interleaving. This is the serving-layer restatement of the session
// contract that dd_nodes depends only on WHAT was interned, never on who
// interned it first.
TEST(ServeServiceConcurrent, CommandStormOutcomesAreThreadCountInvariant) {
    // The storm references ids 1 and 2, prepared serially up front; storm
    // PREPs allocate fresh ids and are never referenced.
    std::vector<std::string> storm;
    for (int i = 0; i < 12; ++i) {
        storm.emplace_back("VERIFY --id 1");
        storm.emplace_back("STATS?");
        storm.emplace_back("VERIFY --id 2 --repeat 2");
        storm.emplace_back("LIMITS?");
        storm.emplace_back("PREP:UNIFORM --dims 2,2");
        storm.emplace_back("GC");
        storm.emplace_back("HELP");
        storm.emplace_back("VERIFY --id 9999"); // deterministic ERR
        storm.emplace_back("BATCH");
    }

    std::map<std::string, std::uint64_t> firstVerbCounts;
    std::uint64_t firstPoolAfterGc = 0;
    bool haveBaseline = false;
    for (const unsigned threads : {1U, 2U, 4U, 7U}) {
        VerificationService service;
        ok(service, "PREP:GHZ --dims 3,6,2");
        ok(service, "PREP:W --dims 3,6,2");
        parallel::runOnThreads(threads, [&](unsigned index) {
            for (std::size_t i = index; i < storm.size(); i += threads) {
                // ERR replies are expected for the bad-id probes; the
                // contract here is "exactly one reply, service survives".
                const Response response = service.handleLine(storm[i]);
                ASSERT_FALSE(response.line.empty());
                ASSERT_TRUE(response.line.rfind("OK ", 0) == 0 ||
                            response.line.rfind("ERR ", 0) == 0)
                    << response.line;
            }
        });

        // Serial epilogue: compact to the live set and snapshot.
        const std::string gc = ok(service, "GC");
        const std::uint64_t poolAfterGc = uintField(gc, "nodes_after");
        const std::string stats = ok(service, "STATS?");

        EXPECT_EQ(uintField(stats, "prepared"), 2U + 12U) << "threads=" << threads;
        EXPECT_EQ(uintField(stats, "errors"), 12U) << "threads=" << threads;
        // verified = 12 VERIFYs x1 + 12 VERIFYs x2 + 12 BATCHes over a
        // registry that only ever grows during the storm: BATCH item
        // counts vary with interleaving, so assert bounds, not equality.
        const std::uint64_t verified = uintField(stats, "verified");
        EXPECT_GE(verified, 12U + 24U + 12U * 2U) << "threads=" << threads;
        EXPECT_LE(verified, 12U + 24U + 12U * 14U) << "threads=" << threads;

        std::map<std::string, std::uint64_t> verbCounts;
        for (const char* key : {"prep", "verify", "batch", "stats", "limits", "help", "gc"}) {
            verbCounts[key] = uintField(stats, std::string(key) + ".count");
        }
        EXPECT_EQ(verbCounts["verify"], 2U * 12U + 12U); // incl. the ERR probes
        EXPECT_EQ(verbCounts["prep"], 2U + 12U);
        EXPECT_EQ(verbCounts["gc"], 12U + 1U); // storm GCs + the epilogue GC
        // The epilogue STATS? records its own latency only after its
        // reply is formatted, so it reports just the 12 in-storm ones.
        EXPECT_EQ(verbCounts["stats"], 12U);

        if (!haveBaseline) {
            haveBaseline = true;
            firstVerbCounts = verbCounts;
            firstPoolAfterGc = poolAfterGc;
        } else {
            EXPECT_EQ(verbCounts, firstVerbCounts) << "threads=" << threads;
            EXPECT_EQ(poolAfterGc, firstPoolAfterGc) << "threads=" << threads;
        }
    }
}

// The watermark policy fires exactly at the crossing, not before: a PREP
// landing the pool exactly ON the trigger does not collect, the next
// growth past it does — and the ratchet keeps a saturated live set from
// re-collecting on every subsequent command.
TEST(ServeServiceConcurrent, WatermarkGcFiresExactlyOnCrossing) {
    // Probe run: measure the deterministic pool sizes this test pivots on.
    std::uint64_t poolAfterGhz = 0;
    std::uint64_t poolAfterBoth = 0;
    {
        VerificationService probe;
        ok(probe, "PREP:GHZ --dims 3,6,2");
        poolAfterGhz = probe.session()->stats().poolNodes;
        ok(probe, "PREP:W --dims 3,6,2");
        poolAfterBoth = probe.session()->stats().poolNodes;
    }
    ASSERT_GT(poolAfterBoth, poolAfterGhz);

    ServiceLimits limits;
    limits.gcWatermarkNodes = poolAfterGhz; // first PREP lands exactly on it
    VerificationService service(limits);
    EXPECT_EQ(service.gcWatermark(), poolAfterGhz);

    ok(service, "PREP:GHZ --dims 3,6,2"); // pool == watermark: no fire
    EXPECT_EQ(uintField(ok(service, "STATS?"), "auto_gc_runs"), 0U);

    ok(service, "PREP:W --dims 3,6,2"); // pool > watermark: fires once
    const std::string stats = ok(service, "STATS?");
    EXPECT_EQ(uintField(stats, "auto_gc_runs"), 1U);
    EXPECT_EQ(uintField(stats, "gc_runs"), 0U); // no explicit GC involved

    // Both targets are live, so the collection could not get back under
    // the watermark — the ratchet must stop pool-neutral reads (STATS?,
    // LIMITS?, HELP intern nothing) from running futile collections.
    ok(service, "STATS?");
    ok(service, "LIMITS?");
    EXPECT_EQ(uintField(ok(service, "STATS?"), "auto_gc_runs"), 1U);

    // A read CAN cross the trigger: VERIFY replays the circuit, interning
    // intermediate nodes, so the pool grows past the ratcheted trigger
    // and the read-path epilogue collects — fire #2 without any writer.
    ok(service, "VERIFY --id 1");
    EXPECT_EQ(uintField(ok(service, "STATS?"), "auto_gc_runs"), 2U);

    // Dropping the W target shrinks the live set; the explicit GC resets
    // the trigger to the watermark, and growth past it fires again.
    ok(service, "DROP --id 2");
    ok(service, "GC");
    EXPECT_EQ(uintField(ok(service, "STATS?"), "gc_runs"), 1U);
    ok(service, "PREP:W --dims 3,6,2"); // crosses the watermark again
    EXPECT_EQ(uintField(ok(service, "STATS?"), "auto_gc_runs"), 3U);
}

// Acceptance pin: a 100-cycle prep/verify/drop session against a small
// node budget stays under --max-nodes throughout WITHOUT any client ever
// issuing GC — the watermark policy alone keeps the pool bounded.
TEST(ServeServiceConcurrent, WatermarkKeepsHundredCycleSessionUnderBudget) {
    ServiceLimits limits;
    limits.maxSessionNodes = 512; // watermark defaults to 80%: 409
    VerificationService service(limits);
    EXPECT_EQ(service.gcWatermark(), 409U);

    std::uint64_t previousId = 0;
    for (int cycle = 1; cycle <= 100; ++cycle) {
        // A fresh random state every cycle: genuinely new nodes each time,
        // so the pool grows until the watermark reclaims the dropped ones.
        const std::string prep = ok(service, "PREP:RANDOM --dims 2,2,2 --seed " +
                                                 std::to_string(cycle));
        const std::uint64_t id = uintField(prep, "id");
        ok(service, "VERIFY --id " + std::to_string(id));
        if (previousId != 0) {
            ok(service, "DROP --id " + std::to_string(previousId));
        }
        previousId = id;
        EXPECT_LE(service.session()->stats().poolNodes, limits.maxSessionNodes)
            << "cycle " << cycle;
    }

    const std::string stats = ok(service, "STATS?");
    EXPECT_EQ(uintField(stats, "gc_runs"), 0U); // no explicit GC ever ran
    EXPECT_GT(uintField(stats, "auto_gc_runs"), 0U);
    EXPECT_EQ(uintField(stats, "prepared"), 100U);
    EXPECT_EQ(uintField(stats, "resident"), 1U);
}

// STATS? surfaces per-verb latency: exact deterministic counts plus
// parseable (non-deterministic) microsecond quantiles, and only for verbs
// actually seen.
TEST(ServeServiceConcurrent, StatsReportsPerVerbLatency) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 3,6,2");
    ok(service, "VERIFY");
    ok(service, "VERIFY");
    ok(service, "STATS?");

    const std::string stats = ok(service, "STATS?");
    EXPECT_EQ(uintField(stats, "prep.count"), 1U);
    EXPECT_EQ(uintField(stats, "verify.count"), 2U);
    // A command records its latency after its reply is built, so the
    // first STATS? reported no stats latency and this one reports one.
    EXPECT_EQ(uintField(stats, "stats.count"), 1U);
    for (const char* key : {"prep", "verify", "stats"}) {
        for (const char* metric : {".p50_us", ".p99_us", ".max_us"}) {
            const std::string value = field(stats, std::string(key) + metric);
            ASSERT_NE(value, "") << key << metric;
            EXPECT_GE(std::stod(value), 0.0) << key << metric;
        }
    }
    // Verbs never dispatched report nothing.
    EXPECT_EQ(field(stats, "drop.count"), "");
    EXPECT_EQ(field(stats, "gc.count"), "");
    EXPECT_EQ(field(stats, "quit.count"), "");
}

} // namespace
} // namespace mqsp::serve
