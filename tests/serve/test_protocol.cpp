#include "mqsp/serve/protocol.hpp"

#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>

namespace mqsp::serve {
namespace {

void expectParseError(const std::string& line, const std::string& fragment) {
    try {
        (void)parseRequest(line);
        FAIL() << "expected InvalidArgumentError for line '" << line << "'";
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
            << "line '" << line << "' produced: " << error.what();
    }
}

TEST(ServeProtocol, ParsesPrepWithFamilyAndOptions) {
    const Request request = parseRequest("PREP:GHZ --dims 3,6,2 --approx 0.95");
    EXPECT_EQ(request.verb, Verb::Prep);
    EXPECT_EQ(request.family, "ghz");
    ASSERT_EQ(request.options.size(), 2U);
    EXPECT_EQ(request.options[0].first, "dims");
    EXPECT_EQ(request.options[0].second, "3,6,2");
    ASSERT_NE(request.option("approx"), nullptr);
    EXPECT_EQ(*request.option("approx"), "0.95");
    EXPECT_EQ(request.option("seed"), nullptr);
}

TEST(ServeProtocol, VerbsAreCaseInsensitiveAndFamilyIsLowercased) {
    EXPECT_EQ(parseRequest("prep:DiCkE --dims 2,2").family, "dicke");
    EXPECT_EQ(parseRequest("verify").verb, Verb::Verify);
    EXPECT_EQ(parseRequest("Gc").verb, Verb::Gc);
    EXPECT_EQ(parseRequest("hElP").verb, Verb::Help);
}

TEST(ServeProtocol, QueryVerbsAcceptBothSpellings) {
    EXPECT_EQ(parseRequest("STATS?").verb, Verb::Stats);
    EXPECT_EQ(parseRequest("stats").verb, Verb::Stats);
    EXPECT_EQ(parseRequest("LIMITS?").verb, Verb::Limits);
    EXPECT_EQ(parseRequest("limits").verb, Verb::Limits);
    EXPECT_EQ(parseRequest("QUIT").verb, Verb::Quit);
    EXPECT_EQ(parseRequest("exit").verb, Verb::Quit);
}

TEST(ServeProtocol, TokenizesAcrossTabsAndCarriageReturns) {
    const Request request = parseRequest("\tVERIFY\t--id  7\r");
    EXPECT_EQ(request.verb, Verb::Verify);
    ASSERT_NE(request.option("id"), nullptr);
    EXPECT_EQ(*request.option("id"), "7");
}

TEST(ServeProtocol, LastOptionWins) {
    const Request request = parseRequest("VERIFY --id 1 --id 2");
    ASSERT_NE(request.option("id"), nullptr);
    EXPECT_EQ(*request.option("id"), "2");
}

TEST(ServeProtocol, VerbNamesRoundTrip) {
    EXPECT_STREQ(verbName(Verb::Prep), "PREP");
    EXPECT_STREQ(verbName(Verb::Stats), "STATS?");
    EXPECT_STREQ(verbName(Verb::Limits), "LIMITS?");
    EXPECT_STREQ(verbName(Verb::Quit), "QUIT");
}

TEST(ServeProtocol, RejectsMalformedLines) {
    expectParseError("", "empty command line");
    expectParseError("   \t  ", "empty command line");
    expectParseError("GARBAGE", "unknown command 'GARBAGE'");
    expectParseError("PREP --dims 2,2", "PREP requires a state family");
    expectParseError("PREP:", "PREP requires a state family");
    expectParseError("PREP:GHZ:EXTRA", "malformed family");
    expectParseError("VERIFY:GHZ", "only PREP takes a :<FAMILY> suffix");
    expectParseError("VERIFY id 3", "expected an option (--key value), got 'id'");
    expectParseError("VERIFY --id", "option '--id' expects a value");
    expectParseError("VERIFY --", "expected an option");
    expectParseError("VERIFY --i=d 3", "malformed option name '--i=d'");
}

/// Deterministic xorshift64 — the fuzz corpus must be reproducible.
struct Xorshift {
    std::uint64_t state = 0x9E3779B97F4A7C15ULL;
    std::uint64_t operator()() {
        state ^= state << 13U;
        state ^= state >> 7U;
        state ^= state << 17U;
        return state;
    }
};

TEST(ServeProtocol, RandomByteSoupNeverEscapesAsBareException) {
    // Whatever arrives on the wire, the parser either yields a Request or
    // throws InvalidArgumentError — never a bare stdlib exception, never a
    // crash. Embedded NULs and control bytes included.
    Xorshift next;
    std::size_t rejected = 0;
    for (int round = 0; round < 2000; ++round) {
        std::string line;
        const std::size_t length = next() % 64;
        for (std::size_t i = 0; i < length; ++i) {
            line += static_cast<char>(next() % 256);
        }
        try {
            (void)parseRequest(line);
        } catch (const InvalidArgumentError&) {
            ++rejected;
        }
        // Any other exception type escapes and fails the test.
    }
    EXPECT_GT(rejected, 0U);
}

TEST(ServeProtocol, MutatedValidLinesParseOrThrowInvalidArgumentOnly) {
    // Start from valid commands and flip a few bytes: these lines get deep
    // into the grammar (family split, option pairing, key charset) instead
    // of dying at the verb, and the unmutated rounds pin that the corpus
    // really covers the accepting paths.
    const std::string templates[] = {
        "PREP:GHZ --dims 3,6,2",
        "PREP:DICKE --dims 2,2,2 --weight 2",
        "PREP:RANDOM --dims 2,2 --seed 7 --approx 0.9",
        "VERIFY --id 1 --repeat 10",
        "BATCH",
        "DROP --id 2",
        "GC",
        "STATS?",
        "LIMITS?",
        "HELP",
        "QUIT",
    };
    Xorshift next;
    std::size_t parsed = 0;
    std::size_t rejected = 0;
    for (int round = 0; round < 2000; ++round) {
        std::string line = templates[next() % std::size(templates)];
        const std::size_t mutations = next() % 4; // 0 = keep the line valid
        for (std::size_t m = 0; m < mutations && !line.empty(); ++m) {
            line[next() % line.size()] = static_cast<char>(next() % 256);
        }
        try {
            (void)parseRequest(line);
            ++parsed;
        } catch (const InvalidArgumentError&) {
            ++rejected;
        }
    }
    // The corpus exercised both outcomes.
    EXPECT_GT(parsed, 0U);
    EXPECT_GT(rejected, 0U);
}

TEST(ServeProtocol, ParsesStreamingVerbs) {
    EXPECT_EQ(parseRequest("STREAM --dims 3,6,2").verb, Verb::Stream);
    EXPECT_EQ(parseRequest("stream --dims 2,2 --checkpoint 4").verb, Verb::Stream);
    EXPECT_EQ(parseRequest("REVERIFY").verb, Verb::Reverify);
    EXPECT_EQ(parseRequest("reverify --id 3").verb, Verb::Reverify);
    EXPECT_EQ(parseRequest("APPEND --gate h q[0];").verb, Verb::Append);
    EXPECT_STREQ(verbName(Verb::Stream), "STREAM");
    EXPECT_STREQ(verbName(Verb::Append), "APPEND");
    EXPECT_STREQ(verbName(Verb::Reverify), "REVERIFY");
    // All three mutate resident state, so they dispatch on the write path.
    EXPECT_FALSE(isReadPathVerb(Verb::Stream));
    EXPECT_FALSE(isReadPathVerb(Verb::Append));
    EXPECT_FALSE(isReadPathVerb(Verb::Reverify));
}

TEST(ServeProtocol, GateOptionCapturesTheRestOfTheLine) {
    // The MQSP-QASM statement grammar uses spaces freely, so --gate cannot
    // be a single token: it swallows everything to the end of the line.
    const Request request =
        parseRequest("APPEND --id 2 --gate rxy q[1] (0, 1, 0.5, -0.25) ctl q[0]=2;");
    EXPECT_EQ(request.verb, Verb::Append);
    ASSERT_NE(request.option("id"), nullptr);
    EXPECT_EQ(*request.option("id"), "2");
    ASSERT_NE(request.option("gate"), nullptr);
    EXPECT_EQ(*request.option("gate"), "rxy q[1] (0, 1, 0.5, -0.25) ctl q[0]=2;");

    // Surrounding whitespace and the CR of a telnet-style client are
    // trimmed off the captured statement.
    EXPECT_EQ(*parseRequest("APPEND --gate   h q[0];  \r").option("gate"), "h q[0];");

    // Anything after --gate belongs to the statement, not to the command:
    // later "options" are part of the captured text.
    const Request swallowed = parseRequest("APPEND --gate h q[0]; --id 9");
    EXPECT_EQ(swallowed.option("id"), nullptr);
    EXPECT_EQ(*swallowed.option("gate"), "h q[0]; --id 9");
}

TEST(ServeProtocol, GateOptionRequiresAStatement) {
    expectParseError("APPEND --gate", "expects a gate statement");
    expectParseError("APPEND --gate    ", "expects a gate statement");
    expectParseError("APPEND --gate \t\r", "expects a gate statement");
}

} // namespace
} // namespace mqsp::serve
