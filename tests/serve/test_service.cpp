#include "mqsp/serve/service.hpp"

#include "mqsp/dd/decision_diagram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace mqsp::serve {
namespace {

/// Run one line and require an "OK ..." reply; returns the reply line.
std::string ok(VerificationService& service, const std::string& line) {
    const Response response = service.handleLine(line);
    EXPECT_EQ(response.line.rfind("OK ", 0), 0U)
        << "line '" << line << "' replied: " << response.line;
    return response.line;
}

/// Run one line and require an "ERR ..." reply carrying `fragment`.
std::string err(VerificationService& service, const std::string& line,
                const std::string& fragment) {
    const Response response = service.handleLine(line);
    EXPECT_EQ(response.line.rfind("ERR ", 0), 0U)
        << "line '" << line << "' replied: " << response.line;
    EXPECT_NE(response.line.find(fragment), std::string::npos)
        << "line '" << line << "' replied: " << response.line;
    EXPECT_FALSE(response.closeConnection);
    return response.line;
}

/// Value of `key=` in a reply line ("OK id=1 fidelity=1.000 ..."), or "".
std::string field(const std::string& reply, const std::string& key) {
    const std::string needle = " " + key + "=";
    const auto pos = reply.find(needle);
    if (pos == std::string::npos) {
        return "";
    }
    const auto start = pos + needle.size();
    const auto end = reply.find(' ', start);
    return reply.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

std::uint64_t uintField(const std::string& reply, const std::string& key) {
    return std::stoull(field(reply, key));
}

TEST(ServeService, PrepVerifyLifecycle) {
    VerificationService service;
    const std::string prep = ok(service, "PREP:GHZ --dims 3,6,2");
    EXPECT_EQ(field(prep, "id"), "1");
    EXPECT_EQ(field(prep, "family"), "ghz");
    EXPECT_EQ(field(prep, "dims"), "[1x3,1x6,1x2]");
    EXPECT_EQ(field(prep, "amplitudes"), "36");
    EXPECT_EQ(field(prep, "approx_fidelity"), ""); // exact prep: no fidelity field

    const std::string verify = ok(service, "VERIFY");
    EXPECT_EQ(field(verify, "id"), "1");
    EXPECT_EQ(field(verify, "fidelity"), "1.000000000");
    EXPECT_EQ(field(verify, "repeats"), "1");

    const std::string byId = ok(service, "VERIFY --id 1 --repeat 3");
    EXPECT_EQ(field(byId, "fidelity"), "1.000000000");
    EXPECT_EQ(field(byId, "repeats"), "3");
}

TEST(ServeService, BatchDropAndStatsCounters) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 3,6,2");
    ok(service, "PREP:W --dims 3,6,2");
    ok(service, "PREP:UNIFORM --dims 2,2,2");

    const std::string batch = ok(service, "BATCH");
    EXPECT_EQ(field(batch, "items"), "3");
    EXPECT_EQ(field(batch, "failures"), "0");
    EXPECT_EQ(field(batch, "min_fidelity"), "1.000000000");

    const std::string drop = ok(service, "DROP --id 2");
    EXPECT_EQ(field(drop, "dropped"), "2");
    EXPECT_EQ(field(drop, "resident"), "2");
    err(service, "DROP --id 2", "no prepared target with id 2");
    err(service, "VERIFY --id 2", "no prepared target with id 2");

    const std::string stats = ok(service, "STATS?");
    EXPECT_EQ(field(stats, "resident"), "2");
    EXPECT_EQ(field(stats, "prepared"), "3");
    EXPECT_EQ(field(stats, "dropped"), "1");
    EXPECT_EQ(field(stats, "verified"), "3"); // the three batch items
    EXPECT_EQ(field(stats, "errors"), "2");
    EXPECT_NE(field(stats, "dd_nodes"), "");
    EXPECT_NE(field(stats, "unique_hit_rate"), "");
    EXPECT_NE(field(stats, "cache_hit_rate"), "");

    // Ids are never reused: the next prep gets 4, not 2.
    EXPECT_EQ(field(ok(service, "PREP:GHZ --dims 2,2"), "id"), "4");
}

TEST(ServeService, GcCompactsToLiveRootsAndVerificationSurvives) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 3,6,2");
    ok(service, "PREP:W --dims 3,6,2");
    ok(service, "PREP:DICKE --dims 3,6,2 --weight 3");
    ok(service, "DROP --id 3");
    ok(service, "DROP --id 2");
    const std::uint64_t before = service.session()->stats().poolNodes;

    const std::string gc = ok(service, "GC");
    EXPECT_EQ(uintField(gc, "nodes_before"), before);
    EXPECT_EQ(uintField(gc, "live_roots"), 1U);
    EXPECT_LT(uintField(gc, "nodes_after"), before);

    // dd_nodes after GC is exactly the live-root reachable set: the GHZ
    // diagram's internal nodes plus the terminal.
    const dd::DdSession reference;
    const std::uint64_t expected =
        reference.ghzState({3, 6, 2}).nodeCount(NodeCountMode::Internal) + 1;
    EXPECT_EQ(uintField(gc, "nodes_after"), expected);
    EXPECT_EQ(service.session()->stats().poolNodes, expected);

    // A second GC is a no-op, and the surviving target still verifies.
    const std::string again = ok(service, "GC");
    EXPECT_EQ(uintField(again, "nodes_before"), expected);
    EXPECT_EQ(uintField(again, "nodes_after"), expected);
    EXPECT_EQ(field(ok(service, "VERIFY --id 1"), "fidelity"), "1.000000000");
}

TEST(ServeService, RepeatVerificationsHitTheComputeCacheAcrossGc) {
    VerificationService service;
    // An approximated target: its fidelity is < 1, so repeat verification
    // cannot shortcut on root identity and must run the cached inner
    // product (exact targets short-circuit before the cache).
    const std::string prep = ok(service, "PREP:RANDOM --dims 2,2,2,2 --seed 7 --approx 0.9");
    const std::string fidelity = field(prep, "approx_fidelity");
    ASSERT_NE(fidelity, "");
    ASSERT_LT(std::stod(fidelity), 1.0);

    EXPECT_EQ(field(ok(service, "VERIFY --repeat 2"), "fidelity"), fidelity);
    const std::uint64_t hitsBefore = service.session()->stats().cache.hits;
    EXPECT_GT(hitsBefore, 0U);

    ok(service, "GC");
    EXPECT_EQ(field(ok(service, "VERIFY --repeat 2"), "fidelity"), fidelity);
    EXPECT_GT(service.session()->stats().cache.hits, hitsBefore);
}

TEST(ServeService, HundredCyclesKeepThePoolBounded) {
    VerificationService service;
    std::uint64_t steadyPool = 0;
    for (int cycle = 1; cycle <= 100; ++cycle) {
        const std::string family = (cycle % 2 == 0) ? "PREP:W" : "PREP:GHZ";
        const std::string prep = ok(service, family + " --dims 3,6,2");
        const std::uint64_t id = uintField(prep, "id");
        EXPECT_EQ(field(ok(service, "VERIFY --id " + std::to_string(id)), "fidelity"),
                  "1.000000000");
        if (cycle > 1) {
            ok(service, "DROP --id " + std::to_string(id));
        }
        // Interning dedups the repeated families: after both have been
        // built once, later cycles add no nodes at all.
        const std::uint64_t pool = service.session()->stats().poolNodes;
        if (cycle == 2) {
            steadyPool = pool;
        }
        if (cycle > 2) {
            EXPECT_EQ(pool, steadyPool) << "cycle " << cycle;
        }
    }

    // One resident target remains (id 1, GHZ): GC pins the pool to exactly
    // its reachable set.
    const std::string gc = ok(service, "GC");
    EXPECT_EQ(uintField(gc, "live_roots"), 1U);
    const dd::DdSession reference;
    EXPECT_EQ(uintField(gc, "nodes_after"),
              reference.ghzState({3, 6, 2}).nodeCount(NodeCountMode::Internal) + 1);
    EXPECT_EQ(field(ok(service, "VERIFY --id 1"), "fidelity"), "1.000000000");
}

TEST(ServeService, AdmissionLimitsRefuseWithoutKillingTheSession) {
    ServiceLimits limits;
    limits.maxAmplitudes = 100;
    VerificationService service(limits);
    ok(service, "PREP:GHZ --dims 3,6,2"); // 36 amplitudes: admitted
    err(service, "PREP:GHZ --dims 3,6,2,4", "admission: register has 144 amplitudes");
    // The refusal left the resident target serving.
    EXPECT_EQ(field(ok(service, "VERIFY"), "fidelity"), "1.000000000");
}

TEST(ServeService, NodeBudgetGatesNewPrepsButKeepsVerifying) {
    ServiceLimits limits;
    limits.maxSessionNodes = 4; // absurdly small: one GHZ prep exceeds it
    VerificationService service(limits);
    ok(service, "PREP:GHZ --dims 3,6,2"); // pool starts under budget: admitted
    err(service, "PREP:W --dims 3,6,2", "session node budget exhausted");
    EXPECT_EQ(field(ok(service, "VERIFY --id 1"), "fidelity"), "1.000000000");
    // GC cannot shrink below the live set here, but DROP + GC can.
    ok(service, "DROP --id 1");
    ok(service, "GC");
    ok(service, "PREP:UNIFORM --dims 2,2"); // pool back under budget: admitted
}

TEST(ServeService, VerifyRepeatIsBounded) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 2,2");
    err(service, "VERIFY --repeat 0", "--repeat needs a value in [1, 10000]");
    err(service, "VERIFY --repeat 10001", "--repeat needs a value in [1, 10000]");
}

TEST(ServeService, MalformedInputsAnswerErrAndKeepServing) {
    VerificationService service;
    err(service, "GARBAGE", "unknown command 'GARBAGE'");
    err(service, "PREP:GHZ", "PREP requires --dims");
    err(service, "PREP:GHZ --dims 2xq", "dimension in entry '2xq'");
    err(service, "PREP:GHZ --dims -3x2", "count in entry '-3x2'");
    err(service, "PREP:NOSUCH --dims 2,2", "unknown state family 'nosuch'");
    err(service, "PREP:DICKE --dims 2,2 --weight 99", "--weight needs a value in [0, 2]");
    err(service, "PREP:GHZ --dims 2,2 --weight 1", "--weight only applies to PREP:DICKE");
    err(service, "PREP:GHZ --dims 2,2 --approx 1.5", "--approx needs a fidelity in (0, 1]");
    err(service, "PREP:GHZ --dims 2,2 --wieght 1", "PREP does not take option --wieght");
    err(service, "VERIFY --id junk", "--id expects a non-negative integer");
    err(service, "VERIFY", "nothing prepared yet");
    err(service, "BATCH", "nothing prepared yet");
    err(service, "DROP", "DROP requires --id");
    err(service, "GC --id 1", "GC does not take option --id");

    // After all that abuse the service still serves normally.
    ok(service, "PREP:GHZ --dims 3,6,2");
    EXPECT_EQ(field(ok(service, "VERIFY"), "fidelity"), "1.000000000");
    EXPECT_EQ(field(ok(service, "STATS?"), "errors"), "14");
}

TEST(ServeService, OversizedLinesAreRefusedBeforeParsing) {
    ServiceLimits limits;
    limits.maxLineLength = 64;
    VerificationService service(limits);
    const std::string longLine = "PREP:GHZ --dims " + std::string(128, '2');
    err(service, longLine, "line too long");
    ok(service, "PREP:GHZ --dims 2,2"); // short lines still served
}

TEST(ServeService, BlankLinesAndCommentsProduceNoReply) {
    VerificationService service;
    EXPECT_EQ(service.handleLine("").line, "");
    EXPECT_EQ(service.handleLine("   \t ").line, "");
    EXPECT_EQ(service.handleLine("# a scripted session comment").line, "");
    // None of those counted as commands or errors.
    const std::string stats = ok(service, "STATS?");
    EXPECT_EQ(field(stats, "commands"), "1");
    EXPECT_EQ(field(stats, "errors"), "0");
}

TEST(ServeService, QuitClosesTheConnection) {
    VerificationService service;
    const Response response = service.handleLine("QUIT");
    EXPECT_EQ(response.line, "OK bye");
    EXPECT_TRUE(response.closeConnection);
    // HELP and LIMITS? answer one line and keep the connection.
    EXPECT_FALSE(service.handleLine("HELP").closeConnection);
    const std::string limitsReply = ok(service, "LIMITS?");
    EXPECT_EQ(field(limitsReply, "max_amplitudes"), "268435456");
    EXPECT_EQ(field(limitsReply, "max_nodes"), "1048576");
    EXPECT_EQ(field(limitsReply, "max_line"), "4096");
    EXPECT_EQ(field(limitsReply, "max_repeat"), "10000");
}

TEST(ServeService, FuzzedWireLinesNeverThrowAndServiceSurvives) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 2,2,2");
    std::uint64_t state = 0xDEADBEEFCAFEF00DULL;
    const auto next = [&state]() {
        state ^= state << 13U;
        state ^= state >> 7U;
        state ^= state << 17U;
        return state;
    };
    for (int round = 0; round < 500; ++round) {
        std::string line;
        const std::size_t length = next() % 96;
        for (std::size_t i = 0; i < length; ++i) {
            line += static_cast<char>(next() % 256);
        }
        // handleLine's contract: never throws, one OK/ERR line (or empty
        // for blank/comment lines), and the connection stays open.
        const Response response = service.handleLine(line);
        if (!response.line.empty()) {
            const bool okReply = response.line.rfind("OK ", 0) == 0;
            const bool errReply = response.line.rfind("ERR ", 0) == 0;
            EXPECT_TRUE(okReply || errReply) << "round " << round << ": " << response.line;
            EXPECT_EQ(response.line.find('\n'), std::string::npos);
        }
    }
    // The resident target survived the abuse.
    EXPECT_EQ(field(ok(service, "VERIFY --id 1"), "fidelity"), "1.000000000");
}

TEST(ServeStream, StreamAppendReverifyLifecycle) {
    VerificationService service;
    const std::string stream = ok(service, "STREAM --dims 3,6,2 --checkpoint 2");
    EXPECT_EQ(field(stream, "id"), "1");
    EXPECT_EQ(field(stream, "family"), "stream");
    EXPECT_EQ(field(stream, "dims"), "[1x3,1x6,1x2]");
    EXPECT_EQ(field(stream, "checkpoint"), "2");

    // Gates go straight into the resident state; the reply carries the
    // running op count, and a checkpoint line lands exactly on cadence.
    const std::string first = ok(service, "APPEND --gate swp q[0] (0, 1);");
    EXPECT_EQ(field(first, "kind"), "stream");
    EXPECT_EQ(uintField(first, "ops"), 1U);
    EXPECT_EQ(field(first, "checkpoint"), ""); // off-cadence: no checkpoint field
    const std::string second =
        ok(service, "APPEND --gate rxy q[1] (0, 1, 0.7, 0.1) ctl q[0]=1;");
    EXPECT_EQ(uintField(second, "ops"), 2U);
    EXPECT_EQ(field(second, "checkpoint"), "1");
    EXPECT_EQ(field(second, "fidelity"), "1.000000000"); // unitarity: norm2 holds

    const std::string reverify = ok(service, "REVERIFY");
    EXPECT_EQ(field(reverify, "kind"), "stream");
    EXPECT_EQ(field(reverify, "fidelity"), "1.000000000");
    EXPECT_EQ(uintField(reverify, "ops"), 2U);
    EXPECT_EQ(uintField(reverify, "checkpoints"), 1U);

    // A stream has no independent target, so VERIFY refuses it by name.
    err(service, "VERIFY", "use REVERIFY");
}

TEST(ServeStream, AppendGrowsPreparedTargetsAndReverifyReplaysTheDelta) {
    VerificationService service;
    ok(service, "PREP:GHZ --dims 3,6,2");

    // First REVERIFY replays the whole circuit: the cursor starts at 0.
    const std::string full = ok(service, "REVERIFY");
    EXPECT_EQ(field(full, "kind"), "prepared");
    EXPECT_EQ(field(full, "fidelity"), "1.000000000");
    const std::uint64_t total = uintField(full, "total_ops");
    EXPECT_GT(total, 0U);
    EXPECT_EQ(uintField(full, "delta_ops"), total);

    // Append an identity pair: circuit and target advance together, so the
    // next REVERIFY replays exactly the two appended gates.
    ok(service, "APPEND --gate swp q[0] (0, 1);");
    const std::string grown = ok(service, "APPEND --gate swp q[0] (0, 1);");
    EXPECT_EQ(field(grown, "kind"), "prepared");
    EXPECT_EQ(uintField(grown, "ops"), total + 2);

    const std::string delta = ok(service, "REVERIFY");
    EXPECT_EQ(uintField(delta, "delta_ops"), 2U);
    EXPECT_EQ(uintField(delta, "total_ops"), total + 2);
    EXPECT_EQ(field(delta, "fidelity"), "1.000000000");
    // The delta is an identity, and hash-consing makes structural identity
    // root identity: the replay lands back on the old root, so the diff
    // shows pure sharing.
    EXPECT_GT(uintField(delta, "shared_nodes"), 0U);
    EXPECT_EQ(uintField(delta, "new_nodes"), 0U);
    EXPECT_EQ(uintField(delta, "dropped_nodes"), 0U);

    // Nothing appended since: a further REVERIFY is a zero-op delta.
    const std::string idle = ok(service, "REVERIFY");
    EXPECT_EQ(uintField(idle, "delta_ops"), 0U);
    EXPECT_EQ(field(idle, "fidelity"), "1.000000000");
}

TEST(ServeStream, StreamSessionsSkipBatchAndSurviveGc) {
    VerificationService service;
    ok(service, "STREAM --dims 3,6,2");
    ok(service, "APPEND --gate rxy q[0] (0, 1, 1.1, 0.2);");

    // With only a stream resident there is nothing for BATCH to replay.
    err(service, "BATCH", "nothing prepared yet");

    ok(service, "PREP:W --dims 3,6,2");
    const std::string batch = ok(service, "BATCH");
    EXPECT_EQ(uintField(batch, "items"), 1U); // the stream entry is skipped
    EXPECT_EQ(uintField(batch, "failures"), 0U);

    // Materialize the prepared target's replay cursor, then compact. Both
    // the streamed state and the replay cursor are live roots: GC must
    // keep them, and the idle REVERIFY afterwards needs no re-replay.
    ok(service, "REVERIFY --id 2");
    ok(service, "GC");
    const std::string stream = ok(service, "REVERIFY --id 1");
    EXPECT_EQ(field(stream, "kind"), "stream");
    EXPECT_EQ(field(stream, "fidelity"), "1.000000000");
    EXPECT_EQ(uintField(stream, "ops"), 1U);
    const std::string idle = ok(service, "REVERIFY --id 2");
    EXPECT_EQ(uintField(idle, "delta_ops"), 0U);
    EXPECT_EQ(field(idle, "fidelity"), "1.000000000");
}

TEST(ServeStream, BadStreamInputKeepsServing) {
    VerificationService service;
    err(service, "STREAM", "STREAM requires --dims");
    err(service, "APPEND --gate h q[0];", "nothing prepared yet");

    ok(service, "STREAM --dims 3,6,2");
    err(service, "APPEND", "APPEND requires --gate");
    err(service, "APPEND --gate warp q[0];", "unknown gate");
    err(service, "APPEND --gate h q[9];", "parseQasm");

    // Parse failures must not have advanced the stream.
    const std::string append = ok(service, "APPEND --gate h q[0];");
    EXPECT_EQ(uintField(append, "ops"), 1U);

    const std::string stats = ok(service, "STATS?");
    EXPECT_EQ(uintField(stats, "streams"), 1U);
    EXPECT_EQ(uintField(stats, "appended"), 1U); // failed APPENDs don't count
    EXPECT_EQ(uintField(stats, "reverified"), 0U);
}

} // namespace
} // namespace mqsp::serve
