#include "mqsp/linalg/eigen.hpp"

#include "mqsp/circuit/gate.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

DenseMatrix randomHermitian(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    DenseMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = Complex{rng.uniform(-1.0, 1.0), 0.0};
        for (std::size_t j = i + 1; j < n; ++j) {
            const Complex value{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
            m(i, j) = value;
            m(j, i) = std::conj(value);
        }
    }
    return m;
}

TEST(IsHermitian, DetectsHermitianAndNot) {
    EXPECT_TRUE(isHermitian(randomHermitian(4, 1)));
    DenseMatrix bad(2);
    bad(0, 1) = Complex{1.0, 0.0};
    bad(1, 0) = Complex{0.5, 0.0};
    EXPECT_FALSE(isHermitian(bad));
}

TEST(TraceOf, SumsDiagonal) {
    DenseMatrix m(3);
    m(0, 0) = {1.0, 0.0};
    m(1, 1) = {0.0, 2.0};
    m(2, 2) = {-0.5, 0.0};
    const Complex t = traceOf(m);
    EXPECT_NEAR(t.real(), 0.5, 1e-12);
    EXPECT_NEAR(t.imag(), 2.0, 1e-12);
}

TEST(EigenHermitian, DiagonalMatrixIsItsOwnSpectrum) {
    DenseMatrix m(3);
    m(0, 0) = {3.0, 0.0};
    m(1, 1) = {-1.0, 0.0};
    m(2, 2) = {2.0, 0.0};
    const auto result = eigenHermitian(m);
    ASSERT_EQ(result.values.size(), 3U);
    EXPECT_NEAR(result.values[0], -1.0, 1e-10);
    EXPECT_NEAR(result.values[1], 2.0, 1e-10);
    EXPECT_NEAR(result.values[2], 3.0, 1e-10);
}

TEST(EigenHermitian, PauliXSpectrum) {
    DenseMatrix x(2);
    x(0, 1) = {1.0, 0.0};
    x(1, 0) = {1.0, 0.0};
    const auto result = eigenHermitian(x);
    EXPECT_NEAR(result.values[0], -1.0, 1e-10);
    EXPECT_NEAR(result.values[1], 1.0, 1e-10);
}

TEST(EigenHermitian, PauliYSpectrumComplexEntries) {
    DenseMatrix y(2);
    y(0, 1) = {0.0, -1.0};
    y(1, 0) = {0.0, 1.0};
    const auto result = eigenHermitian(y);
    EXPECT_NEAR(result.values[0], -1.0, 1e-10);
    EXPECT_NEAR(result.values[1], 1.0, 1e-10);
}

TEST(EigenHermitian, RejectsNonHermitian) {
    DenseMatrix bad(2);
    bad(0, 1) = {1.0, 0.0};
    EXPECT_THROW((void)eigenHermitian(bad), InvalidArgumentError);
    EXPECT_THROW((void)eigenHermitian(DenseMatrix{}), InvalidArgumentError);
}

class EigenRandomProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenRandomProperty, ReconstructionAndOrthonormality) {
    const std::size_t n = GetParam();
    const DenseMatrix m = randomHermitian(n, 100 + n);
    const auto result = eigenHermitian(m);

    // Eigenvalues ascending.
    for (std::size_t k = 1; k < n; ++k) {
        EXPECT_LE(result.values[k - 1], result.values[k] + 1e-12);
    }
    // Eigenvector matrix unitary.
    EXPECT_TRUE(result.vectors.isUnitary(1e-8));
    // A v_k == lambda_k v_k.
    for (std::size_t k = 0; k < n; ++k) {
        std::vector<Complex> v(n);
        for (std::size_t i = 0; i < n; ++i) {
            v[i] = result.vectors(i, k);
        }
        const auto mv = m.apply(v);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(std::abs(mv[i] - result.values[k] * v[i]), 0.0, 1e-7)
                << "n=" << n << " k=" << k << " i=" << i;
        }
    }
    // Trace preserved.
    double sum = 0.0;
    for (const double value : result.values) {
        sum += value;
    }
    EXPECT_NEAR(sum, traceOf(m).real(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenRandomProperty,
                         ::testing::Values(1U, 2U, 3U, 4U, 6U, 9U, 16U, 25U));

TEST(EigenHermitian, DegenerateSpectrum) {
    // Projector onto a 2D subspace of C^4: eigenvalues {0, 0, 1, 1}.
    DenseMatrix p(4);
    p(0, 0) = {0.5, 0.0};
    p(0, 1) = {0.5, 0.0};
    p(1, 0) = {0.5, 0.0};
    p(1, 1) = {0.5, 0.0};
    p(2, 2) = {1.0, 0.0};
    const auto result = eigenHermitian(p);
    EXPECT_NEAR(result.values[0], 0.0, 1e-10);
    EXPECT_NEAR(result.values[1], 0.0, 1e-10);
    EXPECT_NEAR(result.values[2], 1.0, 1e-10);
    EXPECT_NEAR(result.values[3], 1.0, 1e-10);
}

} // namespace
} // namespace mqsp
