// Tier-1 coverage for the shared benchmark harness (bench/harness.hpp):
// the statistics aggregation on known samples, case selection (smoke and
// filters), metric averaging, failure capture, and the shape of the
// mqsp-bench-v1 JSON report every driver emits.

#include "harness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mqsp::bench {
namespace {

TEST(HarnessStats, EmptyInputIsAllZero) {
    const CaseStats stats = computeStats({});
    EXPECT_EQ(stats.minNs, 0.0);
    EXPECT_EQ(stats.medianNs, 0.0);
    EXPECT_EQ(stats.meanNs, 0.0);
    EXPECT_EQ(stats.stddevNs, 0.0);
}

TEST(HarnessStats, SingleSample) {
    const CaseStats stats = computeStats({42});
    EXPECT_EQ(stats.minNs, 42.0);
    EXPECT_EQ(stats.medianNs, 42.0);
    EXPECT_EQ(stats.meanNs, 42.0);
    EXPECT_EQ(stats.stddevNs, 0.0);  // sample stddev undefined for n=1
}

TEST(HarnessStats, OddCountMedianIsMiddleElement) {
    const CaseStats stats = computeStats({5, 1, 3});
    EXPECT_EQ(stats.minNs, 1.0);
    EXPECT_EQ(stats.medianNs, 3.0);
    EXPECT_EQ(stats.meanNs, 3.0);
    EXPECT_DOUBLE_EQ(stats.stddevNs, 2.0);  // sqrt(((2)^2 + 0 + (2)^2) / 2)
}

TEST(HarnessStats, EvenCountMedianAveragesTheMiddlePair) {
    const CaseStats stats = computeStats({4, 1, 3, 2});
    EXPECT_EQ(stats.minNs, 1.0);
    EXPECT_DOUBLE_EQ(stats.medianNs, 2.5);
    EXPECT_DOUBLE_EQ(stats.meanNs, 2.5);
}

TEST(HarnessStats, KnownStddev) {
    // Samples 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population variance 4,
    // sample variance 32/7.
    const CaseStats stats = computeStats({2, 4, 4, 4, 5, 5, 7, 9});
    EXPECT_DOUBLE_EQ(stats.meanNs, 5.0);
    EXPECT_NEAR(stats.stddevNs, std::sqrt(32.0 / 7.0), 1e-12);
}

Harness makeTwoCaseHarness() {
    Harness harness("unit_test_driver");
    CaseSpec fast;
    fast.name = "fast case";
    fast.dims = {3, 2};
    fast.reps = 4;
    fast.smoke = true;
    fast.body = [](Repetition& rep) {
        rep.time([] {});
        rep.metric("ops", 10.0);
        if (rep.index() == 0) {
            rep.metric("first_rep_only", 7.0);
        }
    };
    harness.add(fast);
    CaseSpec slow;
    slow.name = "slow case";
    slow.reps = 2;
    slow.smoke = false;
    slow.body = [](Repetition& rep) { rep.metric("ops", 20.0); };
    harness.add(slow);
    return harness;
}

TEST(HarnessExecute, FullModeRunsEveryCaseAtItsRepCount) {
    const Harness harness = makeTwoCaseHarness();
    RunOptions options;
    options.warmup = 0;
    const auto results = harness.execute(options);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].name, "fast case");
    EXPECT_EQ(results[0].dims, "[1x3,1x2]");
    EXPECT_EQ(results[0].reps, 4);
    EXPECT_EQ(results[0].timesNs.size(), 4u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_EQ(results[1].name, "slow case");
    EXPECT_EQ(results[1].dims, "");  // dimension-less case
    EXPECT_EQ(results[1].timesNs.size(), 2u);
}

TEST(HarnessExecute, SmokeModeSelectsSmokeCasesWithOneRep) {
    const Harness harness = makeTwoCaseHarness();
    RunOptions options;
    options.smoke = true;
    const auto results = harness.execute(options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].name, "fast case");
    EXPECT_EQ(results[0].reps, 1);
    EXPECT_EQ(results[0].warmup, 0);
    EXPECT_EQ(results[0].timesNs.size(), 1u);
}

TEST(HarnessExecute, CaseFilterMatchesNameOrDims) {
    const Harness harness = makeTwoCaseHarness();
    RunOptions options;
    options.warmup = 0;
    options.caseFilter = "slow";
    auto results = harness.execute(options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].name, "slow case");

    options.caseFilter = "[1x3";
    results = harness.execute(options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].name, "fast case");
}

TEST(HarnessExecute, MetricsAverageOverTheRepsThatRecordedThem) {
    const Harness harness = makeTwoCaseHarness();
    RunOptions options;
    options.warmup = 0;
    const auto results = harness.execute(options);
    ASSERT_EQ(results[0].metrics.size(), 2u);
    EXPECT_EQ(results[0].metrics[0].name, "ops");
    EXPECT_EQ(results[0].metrics[0].count, 4);
    EXPECT_DOUBLE_EQ(results[0].metrics[0].sum, 40.0);
    // first_rep_only was recorded once; its average must not be diluted.
    EXPECT_EQ(results[0].metrics[1].name, "first_rep_only");
    EXPECT_EQ(results[0].metrics[1].count, 1);
    EXPECT_DOUBLE_EQ(results[0].metrics[1].sum, 7.0);
}

TEST(HarnessExecute, RepsOverrideWins) {
    const Harness harness = makeTwoCaseHarness();
    RunOptions options;
    options.warmup = 0;
    options.repsOverride = 3;
    const auto results = harness.execute(options);
    EXPECT_EQ(results[0].timesNs.size(), 3u);
    EXPECT_EQ(results[1].timesNs.size(), 3u);
}

TEST(HarnessExecute, ThrowingBodyMarksTheCaseFailed) {
    Harness harness("unit_test_driver");
    CaseSpec spec;
    spec.name = "boom";
    spec.body = [](Repetition& rep) {
        if (rep.index() == 1) {
            throw std::runtime_error("deliberate failure");
        }
        rep.time([] {});
    };
    harness.add(spec);
    RunOptions options;
    options.warmup = 0;
    const auto results = harness.execute(options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].failed);
    EXPECT_EQ(results[0].error, "deliberate failure");
    EXPECT_EQ(results[0].timesNs.size(), 1u);  // the completed rep is kept
}

TEST(HarnessExecute, DoubleTimeCallIsALogicError) {
    Harness harness("unit_test_driver");
    CaseSpec spec;
    spec.name = "double time";
    spec.body = [](Repetition& rep) {
        rep.time([] {});
        rep.time([] {});
    };
    harness.add(spec);
    RunOptions options;
    options.warmup = 0;
    const auto results = harness.execute(options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].failed);
}

TEST(HarnessExecute, UntimedBodyFallsBackToWholeBodyTime) {
    Harness harness("unit_test_driver");
    CaseSpec spec;
    spec.name = "untimed";
    spec.body = [](Repetition&) {};
    harness.add(spec);
    RunOptions options;
    options.warmup = 0;
    options.repsOverride = 2;
    const auto results = harness.execute(options);
    ASSERT_EQ(results[0].timesNs.size(), 2u);
    EXPECT_GE(results[0].timesNs[0], 0);
}

TEST(HarnessJson, ReportHasTheSchemaFieldsOfEveryDriver) {
    const Harness harness = makeTwoCaseHarness();
    RunOptions options;
    options.warmup = 1;
    const auto results = harness.execute(options);
    std::ostringstream out;
    writeJsonReport(out, harness.driver(), options, results);
    const std::string json = out.str();

    EXPECT_NE(json.find("\"schema\": \"mqsp-bench-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"driver\": \"unit_test_driver\""), std::string::npos);
    EXPECT_NE(json.find("\"mode\": \"full\""), std::string::npos);
    EXPECT_NE(json.find("\"filter\": \"\""), std::string::npos);
    EXPECT_NE(json.find("\"case\": \"fast case\""), std::string::npos);
    EXPECT_NE(json.find("\"dims\": \"[1x3,1x2]\""), std::string::npos);
    EXPECT_NE(json.find("\"reps\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"warmup\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"times_ns\": ["), std::string::npos);
    EXPECT_NE(json.find("\"min_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"median_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"mean_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"stddev_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"ops\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"first_rep_only\": 7"), std::string::npos);
    // No case failed, so the failure fields must be absent.
    EXPECT_EQ(json.find("\"failed\""), std::string::npos);
}

TEST(HarnessJson, FailedCaseCarriesErrorAndEscapesStrings) {
    RunOptions options;
    CaseResult result;
    result.name = "needs \"escaping\"\n";
    result.failed = true;
    result.error = "path\\to\\failure";
    std::ostringstream out;
    writeJsonReport(out, "d", options, {result});
    const std::string json = out.str();
    EXPECT_NE(json.find("\"case\": \"needs \\\"escaping\\\"\\n\""), std::string::npos);
    EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
    EXPECT_NE(json.find("\"error\": \"path\\\\to\\\\failure\""), std::string::npos);
}

TEST(HarnessJson, BalancedBracesAndBrackets) {
    const Harness harness = makeTwoCaseHarness();
    RunOptions options;
    options.warmup = 0;
    const auto results = harness.execute(options);
    std::ostringstream out;
    writeJsonReport(out, harness.driver(), options, results);
    const std::string json = out.str();
    int braces = 0;
    int brackets = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (inString) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                inString = false;
            }
            continue;
        }
        if (c == '"') {
            inString = true;
        } else if (c == '{') {
            ++braces;
        } else if (c == '}') {
            --braces;
        } else if (c == '[') {
            ++brackets;
        } else if (c == ']') {
            --brackets;
        }
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(inString);
}

} // namespace
} // namespace mqsp::bench
