#include "mqsp/statevec/state_vector.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace mqsp {
namespace {

TEST(StateVector, DefaultConstructionIsZeroKet) {
    const StateVector state({3, 2});
    EXPECT_EQ(state.size(), 6U);
    EXPECT_EQ(state[0], (Complex{1.0, 0.0}));
    for (std::uint64_t i = 1; i < state.size(); ++i) {
        EXPECT_EQ(state[i], (Complex{0.0, 0.0}));
    }
    EXPECT_TRUE(state.isNormalized());
}

TEST(StateVector, AdoptsAmplitudeVector) {
    const std::vector<Complex> amps{{0.6, 0.0}, {0.0, 0.8}};
    const StateVector state({2}, amps);
    EXPECT_EQ(state[0], amps[0]);
    EXPECT_EQ(state[1], amps[1]);
    EXPECT_TRUE(state.isNormalized());
}

TEST(StateVector, RejectsWrongLength) {
    EXPECT_THROW(StateVector({2, 2}, std::vector<Complex>(3)), InvalidArgumentError);
}

TEST(StateVector, DigitAccess) {
    StateVector state({3, 2});
    state.at({2, 1}) = Complex{0.5, 0.0};
    EXPECT_EQ(state[5], (Complex{0.5, 0.0}));
}

TEST(StateVector, NormAndNormalize) {
    StateVector state({2}, {{3.0, 0.0}, {4.0, 0.0}});
    EXPECT_DOUBLE_EQ(state.norm(), 5.0);
    EXPECT_DOUBLE_EQ(state.normSquared(), 25.0);
    state.normalize();
    EXPECT_TRUE(state.isNormalized());
    EXPECT_NEAR(state[0].real(), 0.6, 1e-12);
}

TEST(StateVector, NormalizeRejectsZeroVector) {
    StateVector state({2}, std::vector<Complex>(2, Complex{0.0, 0.0}));
    EXPECT_THROW(state.normalize(), InvalidArgumentError);
}

TEST(StateVector, InnerProductIsConjugateLinear) {
    const StateVector a({2}, {{1.0, 0.0}, {0.0, 0.0}});
    const StateVector b({2}, {{0.0, 1.0}, {0.0, 0.0}});
    // <a|b> = conj(1) * i = i
    EXPECT_NEAR(a.innerProduct(b).imag(), 1.0, 1e-12);
    // <b|a> = conj(i) * 1 = -i
    EXPECT_NEAR(b.innerProduct(a).imag(), -1.0, 1e-12);
}

TEST(StateVector, InnerProductRejectsMismatchedRegisters) {
    const StateVector a({2});
    const StateVector b({3});
    EXPECT_THROW((void)a.innerProduct(b), InvalidArgumentError);
}

TEST(StateVector, FidelityIsPhaseInvariant) {
    const StateVector a({2}, {{1.0, 0.0}, {0.0, 0.0}});
    const StateVector b({2}, {{0.0, 1.0}, {0.0, 0.0}}); // i * |0>
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-12);
}

TEST(StateVector, FidelityOfOrthogonalStatesIsZero) {
    const StateVector a = StateVector::basis({2, 2}, {0, 1});
    const StateVector b = StateVector::basis({2, 2}, {1, 0});
    EXPECT_NEAR(a.fidelityWith(b), 0.0, 1e-12);
}

TEST(StateVector, CountNonZero) {
    const StateVector state({2, 2}, {{1.0, 0.0}, {0.0, 0.0}, {1e-14, 0.0}, {0.0, 0.5}});
    EXPECT_EQ(state.countNonZero(), 2U);
}

TEST(StateVector, KronComposesRegisters) {
    const StateVector a({2}, {{0.0, 0.0}, {1.0, 0.0}}); // |1>
    const StateVector b({3}, {{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}}); // |2>
    const StateVector joint = a.kron(b);
    EXPECT_EQ(joint.dimensions(), (Dimensions{2, 3}));
    EXPECT_EQ(joint.at({1, 2}), (Complex{1.0, 0.0}));
    EXPECT_EQ(joint.countNonZero(), 1U);
}

TEST(StateVector, KronOfNormalizedStatesIsNormalized) {
    Rng rng(3);
    std::vector<Complex> ampsA(3);
    std::vector<Complex> ampsB(4);
    for (auto& a : ampsA) {
        a = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    }
    for (auto& b : ampsB) {
        b = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    }
    StateVector a({3}, ampsA);
    StateVector b({4}, ampsB);
    a.normalize();
    b.normalize();
    EXPECT_TRUE(a.kron(b).isNormalized(1e-9));
}

TEST(StateVector, BasisPlacesSingleAmplitude) {
    const StateVector state = StateVector::basis({3, 6, 2}, {2, 4, 1});
    EXPECT_EQ(state.countNonZero(), 1U);
    EXPECT_EQ(state.at({2, 4, 1}), (Complex{1.0, 0.0}));
}

TEST(StateVector, StreamOutputListsNonZeroTerms) {
    const StateVector state({2, 2}, {{0.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}});
    std::ostringstream out;
    out << state;
    EXPECT_EQ(out.str(), "(1) |0 1>");
}

TEST(StateVector, StreamOutputOfZeroVector) {
    const StateVector state({2}, std::vector<Complex>(2, Complex{0.0, 0.0}));
    std::ostringstream out;
    out << state;
    EXPECT_EQ(out.str(), "0");
}

class StateVectorNormProperty : public ::testing::TestWithParam<Dimensions> {};

TEST_P(StateVectorNormProperty, RandomVectorsNormalizeToUnit) {
    Rng rng(11);
    const MixedRadix radix(GetParam());
    std::vector<Complex> amps(radix.totalDimension());
    for (auto& a : amps) {
        a = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    }
    StateVector state(GetParam(), std::move(amps));
    state.normalize();
    EXPECT_TRUE(state.isNormalized(1e-10));
    EXPECT_NEAR(state.fidelityWith(state), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Registers, StateVectorNormProperty,
                         ::testing::Values(Dimensions{2}, Dimensions{5}, Dimensions{3, 6, 2},
                                           Dimensions{9, 5, 6, 3}, Dimensions{2, 2, 2, 2}));

} // namespace
} // namespace mqsp
