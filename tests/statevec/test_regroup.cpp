#include "mqsp/statevec/regroup.hpp"

#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

TEST(GroupDimensions, PacksAdjacentSites) {
    EXPECT_EQ(groupDimensions({2, 2, 2, 2, 2, 2}, {2, 1, 3}), (Dimensions{4, 2, 8}));
    EXPECT_EQ(groupDimensions({3, 2}, {2}), (Dimensions{6}));
    EXPECT_EQ(groupDimensions({3, 2}, {1, 1}), (Dimensions{3, 2}));
}

TEST(GroupDimensions, ValidatesCoverage) {
    EXPECT_THROW((void)groupDimensions({2, 2}, {3}), InvalidArgumentError);
    EXPECT_THROW((void)groupDimensions({2, 2}, {1}), InvalidArgumentError);
    EXPECT_THROW((void)groupDimensions({2, 2}, {}), InvalidArgumentError);
    EXPECT_THROW((void)groupDimensions({2, 2}, {0, 2}), InvalidArgumentError);
}

TEST(GroupSites, AmplitudesCarryOverVerbatim) {
    Rng rng(3);
    const StateVector qubits = states::random({2, 2, 2, 2}, rng);
    const StateVector grouped = groupSites(qubits, {2, 2});
    EXPECT_EQ(grouped.dimensions(), (Dimensions{4, 4}));
    for (std::uint64_t i = 0; i < qubits.size(); ++i) {
        EXPECT_EQ(grouped[i], qubits[i]);
    }
}

TEST(GroupSites, DigitMappingMatchesMixedRadixSemantics) {
    // |1 0 1 1> over qubits packs to |2 3> over two ququarts.
    const StateVector qubits = StateVector::basis({2, 2, 2, 2}, {1, 0, 1, 1});
    const StateVector grouped = groupSites(qubits, {2, 2});
    EXPECT_NEAR(grouped.at({2, 3}).real(), 1.0, 1e-12);
}

TEST(GroupSites, GhzOverQubitsBecomesGhzOverQudits) {
    // The 4-qubit GHZ packs into the ququart-pair state (|00>+|33>)/sqrt(2).
    const StateVector ghz = states::ghz({2, 2, 2, 2});
    const StateVector grouped = groupSites(ghz, {2, 2});
    EXPECT_NEAR(grouped.at({0, 0}).real(), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(grouped.at({3, 3}).real(), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_EQ(grouped.countNonZero(), 2U);
}

TEST(SplitSites, InvertsGroupSites) {
    Rng rng(5);
    const StateVector original = states::random({2, 3, 2, 2}, rng);
    const StateVector grouped = groupSites(original, {2, 2});
    const StateVector restored = splitSites(grouped, {{2, 3}, {2, 2}});
    EXPECT_EQ(restored.dimensions(), original.dimensions());
    EXPECT_NEAR(restored.fidelityWith(original), 1.0, 1e-12);
}

TEST(SplitSites, ValidatesFactorizations) {
    const StateVector state({6, 4});
    EXPECT_THROW((void)splitSites(state, {{2, 2}, {2, 2}}), InvalidArgumentError);
    EXPECT_THROW((void)splitSites(state, {{2, 3}}), InvalidArgumentError);
    EXPECT_THROW((void)splitSites(state, {{6, 1}, {2, 2}}), InvalidArgumentError);
    EXPECT_NO_THROW((void)splitSites(state, {{2, 3}, {2, 2}}));
    EXPECT_NO_THROW((void)splitSites(state, {{6}, {4}}));
}

TEST(GroupSites, RoundTripPreservesNormAndEntanglementStructure) {
    Rng rng(7);
    const StateVector state = states::random({2, 2, 3}, rng);
    const StateVector grouped = groupSites(state, {2, 1});
    EXPECT_TRUE(grouped.isNormalized(1e-10));
    // Flat amplitudes identical => inner products with any relabeled state
    // identical.
    const StateVector other = states::random({2, 2, 3}, rng);
    const StateVector otherGrouped = groupSites(other, {2, 1});
    EXPECT_NEAR(std::abs(state.innerProduct(other) -
                         grouped.innerProduct(otherGrouped)),
                0.0, 1e-12);
}

} // namespace
} // namespace mqsp
