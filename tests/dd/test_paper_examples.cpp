// Reproductions of the worked examples in the paper (Examples 1-6 and the
// decision diagram of Figure 3), pinned as tests so the implementation
// provably matches the publication's semantics.

#include "mqsp/circuit/gate.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/statevec/state_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

TEST(PaperExamples, Example1QutritUniformState) {
    // |psi> = sqrt(1/3)(|0> + |1> + |2|) is a valid qutrit state.
    const double amp = std::sqrt(1.0 / 3.0);
    const StateVector state({3}, {{amp, 0.0}, {amp, 0.0}, {amp, 0.0}});
    EXPECT_TRUE(state.isNormalized(1e-12));
}

TEST(PaperExamples, Example2QutritHadamard) {
    // H |0> equals the state of Example 1.
    Circuit circuit({3});
    circuit.append(Operation::hadamard(0));
    const StateVector out = Simulator::runFromZero(circuit);
    const double amp = std::sqrt(1.0 / 3.0);
    for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(out[i].real(), amp, 1e-12);
        EXPECT_NEAR(out[i].imag(), 0.0, 1e-12);
    }
}

StateVector figure3State() {
    // 1/sqrt(3) (|00> - |11> + |21>) on a qutrit-qubit register (Example 4).
    const double amp = 1.0 / std::sqrt(3.0);
    StateVector state({3, 2});
    state[0] = Complex{0.0, 0.0};
    state.at({0, 0}) = Complex{amp, 0.0};
    state.at({1, 1}) = Complex{-amp, 0.0};
    state.at({2, 1}) = Complex{amp, 0.0};
    return state;
}

TEST(PaperExamples, Figure3VectorHasDimensionSix) {
    // "The vector's dimension is 6, which results from combining the local
    //  dimensionalities of the qutrit 3 and the qubit 2."
    const StateVector state = figure3State();
    EXPECT_EQ(state.size(), 6U);
}

TEST(PaperExamples, Figure3RootHasThreeEdges) {
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(figure3State());
    const DDNode& root = dd.node(dd.rootNode());
    EXPECT_EQ(root.edges.size(), 3U);
    for (const auto& edge : root.edges) {
        EXPECT_FALSE(edge.isZeroStub());
    }
}

TEST(PaperExamples, Figure3SharedQubitNode) {
    // "the 2nd and 3rd edges of the root node connect to the same qubit
    //  node, making use of redundancy" — true after reduction: both
    //  sub-vectors are (0, ±1/sqrt(3)) with the sign in the edge weight...
    //  in our canonical scheme the phase stays in the terminal edge, so the
    //  sub-trees differ only by the -1 and do NOT merge; the |11> and |21>
    //  branches match the paper's figure exactly (weights -1 and 1 at the
    //  qubit level).
    DecisionDiagram dd = DecisionDiagram::fromStateVector(figure3State());
    const DDNode& root = dd.node(dd.rootNode());
    const DDNode& child1 = dd.node(root.edges[1].node);
    const DDNode& child2 = dd.node(root.edges[2].node);
    // Both children route everything to level 1 of the qubit.
    EXPECT_TRUE(child1.edges[0].isZeroStub());
    EXPECT_TRUE(child2.edges[0].isZeroStub());
    EXPECT_FALSE(child1.edges[1].isZeroStub());
    EXPECT_FALSE(child2.edges[1].isZeroStub());
    // The figure's -1 / +1 weights: the sign difference lives at the qubit
    // level edge weights.
    EXPECT_NEAR(child1.edges[1].weight.real(), -1.0, 1e-12);
    EXPECT_NEAR(child2.edges[1].weight.real(), 1.0, 1e-12);
}

TEST(PaperExamples, Figure3AmplitudeReconstruction) {
    // "for the bitstring |11>, the computation involves multiplying
    //  1/sqrt(3) * -1 * 1" — the reconstructed amplitude must equal
    //  -1/sqrt(3) whatever the internal normalization.
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(figure3State());
    EXPECT_NEAR(dd.amplitudeOf({1, 1}).real(), -1.0 / std::sqrt(3.0), 1e-12);
    EXPECT_NEAR(dd.amplitudeOf({0, 0}).real(), 1.0 / std::sqrt(3.0), 1e-12);
    EXPECT_NEAR(dd.amplitudeOf({2, 1}).real(), 1.0 / std::sqrt(3.0), 1e-12);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({0, 1})), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({1, 0})), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({2, 0})), 0.0, 1e-12);
}

TEST(PaperExamples, Example3GhzCircuitFigure1) {
    // Figure 1: Hadamard on the first qutrit, then controlled +1 / +2
    // increments prepare 1/sqrt(3)(|00> + |11> + |22>).
    Circuit circuit({3, 3});
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::shift(1, 1, {{0, 1}}));
    circuit.append(Operation::shift(1, 2, {{0, 2}}));

    const double amp = 1.0 / std::sqrt(3.0);
    StateVector ghz({3, 3});
    ghz[0] = Complex{0.0, 0.0};
    ghz.at({0, 0}) = Complex{amp, 0.0};
    ghz.at({1, 1}) = Complex{amp, 0.0};
    ghz.at({2, 2}) = Complex{amp, 0.0};
    EXPECT_NEAR(Simulator::preparationFidelity(circuit, ghz), 1.0, 1e-12);
}

TEST(PaperExamples, Example6TensorReductionAfterPruning) {
    // Figure 2 sketch: after pruning the low-contribution successor (0.1)
    // of a root with weights (sqrt .5, sqrt .4, sqrt .1) whose two surviving
    // children are identical, the reduced diagram shares one child and the
    // root becomes a tensor-product node.
    StateVector state({3, 2});
    const double a = std::sqrt(0.25); // shared child: uniform qubit
    state[0] = Complex{0.0, 0.0};
    state.at({0, 0}) = Complex{std::sqrt(0.5) * a * std::sqrt(2.0), 0.0};
    state.at({0, 1}) = Complex{std::sqrt(0.5) * a * std::sqrt(2.0), 0.0};
    state.at({1, 0}) = Complex{std::sqrt(0.4) * a * std::sqrt(2.0), 0.0};
    state.at({1, 1}) = Complex{std::sqrt(0.4) * a * std::sqrt(2.0), 0.0};
    state.at({2, 0}) = Complex{std::sqrt(0.1), 0.0};
    // (|2 1> stays 0 so the third child differs from the first two.)
    state.normalize();

    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_FALSE(dd.isTensorProductNode(dd.rootNode()));
    // Prune the smallest-contribution child (the |2 x> branch, mass 0.1).
    dd.cutEdge(dd.rootNode(), 2);
    dd.renormalize();
    dd.normalizeRoot();
    dd.reduce();
    EXPECT_TRUE(dd.isTensorProductNode(dd.rootNode()));
    EXPECT_NEAR(dd.normSquared(), 1.0, 1e-10);
}

} // namespace
} // namespace mqsp
