// The session-scoped DD memory subsystem (dd/unique_table.{hpp,cpp}):
// open-addressed uniquing table (collision handling, growth, hit/miss
// counters), the operation/compute cache, the two node-store regimes
// (private append vs session interning), and DdSession reuse across
// diagrams — targets, replays, and repeat verification sharing one pool.

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/dd/unique_table.hpp"
#include "mqsp/mdd/matrix_dd.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

namespace mqsp {
namespace {

constexpr double kTol = 1e-10;

std::vector<DDEdge> edgeList(std::initializer_list<std::pair<NodeRef, double>> spec) {
    std::vector<DDEdge> edges;
    for (const auto& [node, weight] : spec) {
        edges.push_back(DDEdge{node, Complex{weight, 0.0}});
    }
    return edges;
}

// --- UniqueTable -----------------------------------------------------------

TEST(UniqueTable, FindOrInsertDeduplicatesStructuralTwins) {
    dd::UniqueTable table(kTol);
    const auto edges = edgeList({{0, 1.0}});

    EXPECT_EQ(table.findOrInsert(2, edges, 41), 41U);
    EXPECT_EQ(table.findOrInsert(2, edges, 99), 41U); // twin: canonical ref wins
    EXPECT_EQ(table.size(), 1U);

    const auto& stats = table.stats();
    EXPECT_EQ(stats.lookups, 2U);
    EXPECT_EQ(stats.misses, 1U);
    EXPECT_EQ(stats.hits, 1U);
}

TEST(UniqueTable, DistinguishesSiteChildrenAndWeights) {
    dd::UniqueTable table(kTol);
    EXPECT_EQ(table.findOrInsert(0, edgeList({{0, 1.0}}), 1), 1U);
    EXPECT_EQ(table.findOrInsert(1, edgeList({{0, 1.0}}), 2), 2U); // site differs
    EXPECT_EQ(table.findOrInsert(0, edgeList({{5, 1.0}}), 3), 3U); // child differs
    EXPECT_EQ(table.findOrInsert(0, edgeList({{0, 0.5}}), 4), 4U); // weight differs
    EXPECT_EQ(table.findOrInsert(0, edgeList({{0, 1.0}, {0, 1.0}}), 5), 5U); // arity differs
    EXPECT_EQ(table.size(), 5U);
    EXPECT_EQ(table.stats().hits, 0U);
}

TEST(UniqueTable, WeightsMergeWithinToleranceBucketsOnly) {
    dd::UniqueTable table(1e-6);
    const NodeRef first = table.findOrInsert(0, edgeList({{0, 0.5}}), 1);
    // Deep inside the same bucket: merges.
    EXPECT_EQ(table.findOrInsert(0, edgeList({{0, 0.5 + 1e-9}}), 2), first);
    // Far outside: distinct.
    EXPECT_EQ(table.findOrInsert(0, edgeList({{0, 0.5 + 1e-3}}), 3), 3U);
}

TEST(UniqueTable, GrowsPastInitialCapacityAndKeepsEveryEntry) {
    dd::UniqueTable table(kTol, /*initialCapacity=*/16);
    constexpr NodeRef kCount = 3000;
    for (NodeRef i = 0; i < kCount; ++i) {
        ASSERT_EQ(table.findOrInsert(0, edgeList({{i, 1.0}}), i + 1), i + 1);
    }
    EXPECT_EQ(table.size(), kCount);
    EXPECT_GT(table.stats().grows, 0U);
    EXPECT_GE(table.capacity(), kCount);
    // Every key still resolves to its original canonical ref after growth.
    for (NodeRef i = 0; i < kCount; ++i) {
        ASSERT_EQ(table.findOrInsert(0, edgeList({{i, 1.0}}), kNoNode), i + 1);
    }
    EXPECT_EQ(table.stats().hits, kCount);
}

TEST(UniqueTable, PureLookupMissDoesNotRecord) {
    dd::UniqueTable table(kTol);
    EXPECT_EQ(table.findOrInsert(0, edgeList({{0, 1.0}}), kNoNode), kNoNode);
    EXPECT_EQ(table.size(), 0U);
    EXPECT_EQ(table.stats().misses, 1U);
}

// --- ComputeCache ----------------------------------------------------------

TEST(ComputeCache, StoresAndRetrievesPerOperationKeys) {
    dd::ComputeCache cache(kTol, /*slots=*/64);
    const Complex ratio{0.5, 0.25};
    EXPECT_FALSE(cache.lookup(dd::ComputeCache::Op::Add, 1, 2, ratio).has_value());

    cache.store(dd::ComputeCache::Op::Add, 1, 2, ratio,
                dd::ComputeCache::Result{7, Complex{2.0, 0.0}});
    const auto hit = cache.lookup(dd::ComputeCache::Op::Add, 1, 2, ratio);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->node, 7U);
    EXPECT_EQ(hit->value, (Complex{2.0, 0.0}));

    // Same operands, different operation: distinct entry space.
    EXPECT_FALSE(cache.lookup(dd::ComputeCache::Op::InnerProduct, 1, 2, ratio).has_value());
    // Different ratio bucket: miss.
    EXPECT_FALSE(
        cache.lookup(dd::ComputeCache::Op::Add, 1, 2, Complex{0.75, 0.25}).has_value());

    const auto& stats = cache.stats();
    EXPECT_EQ(stats.lookups, 4U);
    EXPECT_EQ(stats.hits, 1U);
    EXPECT_EQ(stats.misses, 3U);
    EXPECT_NEAR(stats.hitRate(), 0.25, 1e-12);
}

TEST(ComputeCache, ConflictingKeysEvict) {
    dd::ComputeCache cache(kTol, /*slots=*/1); // every key maps to one slot
    cache.store(dd::ComputeCache::Op::Add, 1, 2, Complex{1.0, 0.0},
                dd::ComputeCache::Result{7, Complex{1.0, 0.0}});
    cache.store(dd::ComputeCache::Op::Add, 3, 4, Complex{1.0, 0.0},
                dd::ComputeCache::Result{8, Complex{1.0, 0.0}});
    EXPECT_EQ(cache.stats().evictions, 1U);
    EXPECT_FALSE(
        cache.lookup(dd::ComputeCache::Op::Add, 1, 2, Complex{1.0, 0.0}).has_value());
    ASSERT_TRUE(
        cache.lookup(dd::ComputeCache::Op::Add, 3, 4, Complex{1.0, 0.0}).has_value());
}

// --- DdNodeStore -----------------------------------------------------------

TEST(DdNodeStore, PrivateStoreAppendsWithoutUniquing) {
    dd::DdNodeStore store(dd::DdNodeStore::Mode::Private);
    EXPECT_EQ(store.size(), 1U); // the terminal
    const NodeRef a = store.allocate(0, edgeList({{0, 1.0}}));
    const NodeRef b = store.allocate(0, edgeList({{0, 1.0}}));
    EXPECT_NE(a, b); // structural twins stay distinct (historical tree semantics)
    EXPECT_EQ(store.size(), 3U);
}

TEST(DdNodeStore, InterningStoreDeduplicatesWithoutCreatingGarbage) {
    dd::DdNodeStore store(dd::DdNodeStore::Mode::Interning, kTol);
    const NodeRef a = store.allocate(0, edgeList({{0, 1.0}}));
    const NodeRef b = store.allocate(0, edgeList({{0, 1.0}}));
    EXPECT_EQ(a, b);
    EXPECT_EQ(store.size(), 2U); // terminal + one canonical node, no garbage
    EXPECT_EQ(store.uniqueTable().stats().hits, 1U);
}

TEST(DdNodeStore, InterningStoreRefusesInPlaceMutation) {
    dd::DdNodeStore store(dd::DdNodeStore::Mode::Interning, kTol);
    const NodeRef a = store.allocate(0, edgeList({{0, 1.0}}));
    EXPECT_THROW((void)store.mutableNode(a), InvalidArgumentError);
}

// --- DdSession: builders, reuse, lifetime ---------------------------------

TEST(DdSession, RepeatedBuildsShareEveryNode) {
    const Dimensions dims{3, 6, 2};
    dd::DdSession session;
    const DecisionDiagram first = session.wState(dims);
    const std::size_t poolAfterFirst = first.poolSize();
    const DecisionDiagram second = session.wState(dims);

    EXPECT_TRUE(first.sharesStoreWith(second));
    EXPECT_EQ(second.poolSize(), poolAfterFirst); // second build allocated nothing
    EXPECT_EQ(first.rootNode(), second.rootNode());
    EXPECT_NEAR(squaredMagnitude(first.innerProductWith(second)), 1.0, kTol);
}

TEST(DdSession, DiagramsOfDifferentFamiliesShareCommonSubtrees) {
    const Dimensions dims{3, 4, 2, 3};
    dd::DdSession session;
    const DecisionDiagram w = session.wState(dims);
    const std::size_t poolAfterW = w.poolSize();
    // The embedded W state reuses the all-|0> suffix chains the full W
    // state already interned: the session pool grows by less than a
    // private embedded-W build would allocate.
    const DecisionDiagram embedded = session.embeddedWState(dims);
    const std::size_t sessionGrowth = embedded.poolSize() - poolAfterW;
    const std::size_t privateSize = DecisionDiagram::embeddedWState(dims).poolSize() - 1;
    EXPECT_LT(sessionGrowth, privateSize);
    EXPECT_GT(session.stats().unique.hits, 0U);

    // Both diagrams still evaluate correctly.
    const StateVector denseW = states::wState(dims);
    const StateVector denseEmb = states::embeddedWState(dims);
    EXPECT_NEAR(w.fidelityWith(denseW), 1.0, kTol);
    EXPECT_NEAR(embedded.fidelityWith(denseEmb), 1.0, kTol);
}

TEST(DdSession, SessionBuildersMatchPrivateBuildersAmplitudeForAmplitude) {
    const Dimensions dims{3, 6, 2};
    dd::DdSession session;
    const std::vector<std::pair<DecisionDiagram, StateVector>> pairs = [&] {
        std::vector<std::pair<DecisionDiagram, StateVector>> list;
        list.emplace_back(session.ghzState(dims), states::ghz(dims));
        list.emplace_back(session.wState(dims), states::wState(dims));
        list.emplace_back(session.embeddedWState(dims), states::embeddedWState(dims));
        list.emplace_back(session.uniformState(dims), states::uniform(dims));
        list.emplace_back(session.cyclicState(dims, Digits(dims.size(), 0), 6),
                          states::cyclic(dims, Digits(dims.size(), 0), 6));
        list.emplace_back(session.dickeState(dims, 2), states::dicke(dims, 2));
        return list;
    }();
    for (const auto& [diagram, state] : pairs) {
        EXPECT_TRUE(diagram.sessionBacked());
        EXPECT_TRUE(diagram.checkInvariants().empty()) << diagram.checkInvariants();
        for (std::uint64_t i = 0; i < state.size(); ++i) {
            const Digits digits = state.radix().digitsOf(i);
            const Complex amp = diagram.amplitudeOf(digits);
            EXPECT_NEAR(amp.real(), state[i].real(), kTol) << "index " << i;
            EXPECT_NEAR(amp.imag(), state[i].imag(), kTol) << "index " << i;
        }
    }
}

TEST(DdSession, ReplayInternsIntoTheTargetsPool) {
    const Dimensions dims{3, 3, 3};
    dd::DdSession session;
    const DecisionDiagram target = session.ghzState(dims);

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const Circuit circuit = synthesize(target, lean);

    const DecisionDiagram replayed = session.simulate(circuit);
    EXPECT_TRUE(replayed.sharesStoreWith(target));
    EXPECT_NEAR(squaredMagnitude(target.innerProductWith(replayed)), 1.0, 1e-9);
    // The replay re-derived the target's structure through the table:
    // its hits include the target's own nodes.
    EXPECT_GT(session.stats().unique.hits, 0U);
}

TEST(DdSession, InternImportsForeignDiagramsAndAliasesOwnOnes) {
    const Dimensions dims{3, 6, 2};
    Rng rng(0xDD5E55'10ULL);
    const StateVector state = states::random(dims, rng);

    dd::DdSession session;
    const DecisionDiagram imported = session.intern(DecisionDiagram::fromStateVector(state));
    EXPECT_TRUE(imported.sessionBacked());
    EXPECT_NEAR(imported.fidelityWith(state), 1.0, kTol);

    // Interning a session-backed diagram is an O(1) alias, not a copy.
    const std::size_t pool = imported.poolSize();
    const DecisionDiagram aliased = session.intern(imported);
    EXPECT_EQ(aliased.poolSize(), pool);
    EXPECT_EQ(aliased.rootNode(), imported.rootNode());
}

TEST(DdSession, SessionDiagramsRefuseMutatorsAndSkipReduce) {
    const Dimensions dims{3, 3};
    dd::DdSession session;
    DecisionDiagram diagram = session.ghzState(dims);

    EXPECT_THROW(diagram.cutEdge(diagram.rootNode(), 0), InvalidArgumentError);
    EXPECT_THROW(diagram.renormalize(), InvalidArgumentError);
    // Already canonical: reduce is a structural no-op, GC never remaps.
    const std::size_t pool = diagram.poolSize();
    EXPECT_EQ(diagram.reduce(), 0U);
    diagram.garbageCollect();
    EXPECT_EQ(diagram.poolSize(), pool);
}

TEST(DdSession, CopyOfSessionDiagramAliasesThePool) {
    const Dimensions dims(16, 2);
    dd::DdSession session;
    const DecisionDiagram original = session.uniformState(dims);
    const DecisionDiagram copy = original; // NOLINT(performance-unnecessary-copy-initialization)
    EXPECT_TRUE(copy.sharesStoreWith(original));
    EXPECT_EQ(copy.rootNode(), original.rootNode());
}

TEST(DdSession, SerializationDetachesFromTheSessionPool) {
    const Dimensions dims{3, 6, 2};
    dd::DdSession session;
    const DecisionDiagram ghz = session.ghzState(dims);
    (void)session.wState(dims); // unrelated nodes in the same pool

    std::stringstream stream;
    ghz.serialize(stream);
    const DecisionDiagram parsed = DecisionDiagram::deserialize(stream);
    EXPECT_FALSE(parsed.sessionBacked());
    // Only GHZ-reachable nodes round-trip, not the session's W nodes.
    EXPECT_LT(parsed.poolSize(), ghz.poolSize());
    EXPECT_NEAR(squaredMagnitude(parsed.innerProductWith(ghz)), 1.0, kTol);
}

TEST(DdSession, DiagramsOutliveTheSessionObject) {
    const Dimensions dims{3, 3, 3};
    DecisionDiagram survivor;
    {
        dd::DdSession session;
        survivor = session.ghzState(dims);
    } // session gone; the shared store lives through the diagram's ref
    EXPECT_NEAR(survivor.fidelityWith(states::ghz(dims)), 1.0, kTol);
}

TEST(DdSession, StatsResetClearsCountersButKeepsNodes) {
    const Dimensions dims{3, 6, 2};
    dd::DdSession session;
    (void)session.wState(dims);
    (void)session.wState(dims);
    ASSERT_GT(session.stats().unique.hits, 0U);
    const std::uint64_t pool = session.stats().poolNodes;

    session.resetStats();
    EXPECT_EQ(session.stats().unique.lookups, 0U);
    EXPECT_EQ(session.stats().cache.lookups, 0U);
    EXPECT_EQ(session.stats().poolNodes, pool);
}

TEST(DdSession, RepeatVerificationHitsTheOperationCache) {
    // An approximated circuit prepares a state that differs from the exact
    // target, so verification must genuinely traverse node pairs — the
    // case the session operation cache exists for. The second verification
    // resolves from the cache at the root pair instead of re-walking.
    const Dimensions dims{4, 3, 2, 5};
    Rng rng(0xCAFEULL);
    const StateVector target = states::random(dims, rng);
    const auto prep = prepareApproximated(target, 0.98);
    ASSERT_LT(prep.approx.fidelity, 1.0);

    const DdBackend backend;
    const EvalState evalTarget(target);
    const double first = backend.preparationFidelity(prep.circuit, evalTarget);
    const auto afterFirst = backend.ddSession()->stats();
    const double second = backend.preparationFidelity(prep.circuit, evalTarget);
    const auto afterSecond = backend.ddSession()->stats();

    EXPECT_NEAR(first, prep.approx.fidelity, 1e-6);
    EXPECT_EQ(second, first); // cached overlap is the identical double
    EXPECT_GT(afterSecond.cache.hits, afterFirst.cache.hits);
    // No new structure on the second run: the pool did not grow.
    EXPECT_EQ(afterSecond.poolNodes, afterFirst.poolNodes);
}

TEST(DdSession, PastCeilingFamiliesStayPolynomial) {
    // 2^27 amplitudes: dicke and cyclic exist only as DAG builders; their
    // session diagrams must stay tiny and verify exactly.
    const Dimensions dims(27, 2);
    dd::DdSession session;
    const DecisionDiagram dicke = session.dickeState(dims, 2);
    EXPECT_LE(dicke.nodeCount(NodeCountMode::Internal), 27U * 3U);
    EXPECT_NEAR(dicke.normSquared(), 1.0, kTol);

    const DecisionDiagram cyclic = session.cyclicState(dims, Digits(27, 0), 2);
    EXPECT_LE(cyclic.nodeCount(NodeCountMode::Internal), 27U * 2U);
    EXPECT_NEAR(cyclic.normSquared(), 1.0, kTol);
    // GHZ on a qubit register IS the 2-shift cyclic state of |0...0>.
    EXPECT_NEAR(squaredMagnitude(cyclic.innerProductWith(session.ghzState(dims))), 1.0,
                1e-9);
}

// --- MatrixDdStore ---------------------------------------------------------

TEST(MatrixDdStore, SharedStoreCrossesDiagramBoundaries) {
    const Dimensions dims{3, 2};
    Rng rng(7);
    const StateVector target = states::random(dims, rng);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);

    const auto store = std::make_shared<MatrixDdStore>();
    const MatrixDD a = MatrixDD::fromCircuit(prep.circuit, Tolerance::kDefault, store);
    const std::size_t afterFirst = store->size();
    const MatrixDD b = MatrixDD::fromCircuit(prep.circuit, Tolerance::kDefault, store);

    // The identical circuit recompiles without allocating a single node...
    EXPECT_EQ(store->size(), afterFirst);
    EXPECT_GT(store->uniqueStats().hits, 0U);
    // ...lands on the same canonical root, and the equivalence check
    // short-circuits on root identity.
    EXPECT_EQ(a.root().node, b.root().node);
    EXPECT_TRUE(a.equivalentUpToGlobalPhase(b, 1e-9));
}

} // namespace
} // namespace mqsp
