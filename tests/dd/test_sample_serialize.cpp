#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace mqsp {
namespace {

TEST(DDSample, BasisStateAlwaysReturnsItself) {
    const StateVector state = StateVector::basis({3, 6, 2}, {2, 4, 1});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(dd.sampleOutcome(rng), (Digits{2, 4, 1}));
    }
}

TEST(DDSample, RejectsZeroAndUnnormalizedDiagrams) {
    const StateVector zero({2, 2}, std::vector<Complex>(4, Complex{0.0, 0.0}));
    const DecisionDiagram empty = DecisionDiagram::fromStateVector(zero);
    Rng rng(2);
    EXPECT_THROW((void)empty.sampleOutcome(rng), InvalidArgumentError);

    const StateVector unnormalized({2}, {{2.0, 0.0}, {0.0, 0.0}});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(unnormalized);
    EXPECT_THROW((void)dd.sampleOutcome(rng), InvalidArgumentError);
}

TEST(DDSample, GhzOnlyYieldsDiagonalOutcomes) {
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(states::ghz({3, 3}));
    Rng rng(3);
    std::array<int, 3> counts{};
    for (int i = 0; i < 3000; ++i) {
        const Digits outcome = dd.sampleOutcome(rng);
        ASSERT_EQ(outcome[0], outcome[1]);
        ++counts[outcome[0]];
    }
    // Each branch has probability 1/3; a 3000-sample run stays within 5 sigma.
    for (const int count : counts) {
        EXPECT_NEAR(count, 1000, 5 * std::sqrt(3000.0 * (1.0 / 3) * (2.0 / 3)));
    }
}

TEST(DDSample, HistogramMatchesBornRule) {
    Rng stateRng(5);
    const StateVector state = states::random({3, 2}, stateRng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    Rng rng(7);
    constexpr std::uint64_t kShots = 40000;
    const auto histogram = dd.sampleHistogram(rng, kShots);
    for (std::uint64_t index = 0; index < state.size(); ++index) {
        const double p = squaredMagnitude(state[index]);
        const auto it = histogram.find(index);
        const double observed =
            (it == histogram.end() ? 0.0 : static_cast<double>(it->second)) / kShots;
        const double sigma = std::sqrt(p * (1.0 - p) / kShots);
        EXPECT_NEAR(observed, p, 6.0 * sigma + 1e-3) << "index " << index;
    }
}

TEST(DDSample, WorksOnReducedDiagrams) {
    DecisionDiagram dd = DecisionDiagram::fromStateVector(states::uniform({3, 4, 2}));
    dd.reduce();
    Rng rng(11);
    const auto histogram = dd.sampleHistogram(rng, 2400);
    // All 24 outcomes should appear for a uniform state with 2400 shots.
    EXPECT_EQ(histogram.size(), 24U);
}

TEST(DDSerialize, RoundTripsRandomStates) {
    Rng rng(13);
    const StateVector state = states::random({3, 6, 2}, rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);

    std::stringstream stream;
    dd.serialize(stream);
    const DecisionDiagram parsed = DecisionDiagram::deserialize(stream);

    EXPECT_EQ(parsed.dimensions(), dd.dimensions());
    EXPECT_EQ(parsed.checkInvariants(), "");
    EXPECT_NEAR(parsed.fidelityWith(state), 1.0, 1e-12);
    // Exact amplitude agreement, not just fidelity.
    const MixedRadix radix(dd.dimensions());
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        const auto digits = radix.digitsOf(index);
        EXPECT_NEAR(std::abs(parsed.amplitudeOf(digits) - dd.amplitudeOf(digits)), 0.0,
                    1e-15);
    }
}

TEST(DDSerialize, RoundTripsReducedAndPrunedDiagrams) {
    Rng rng(17);
    const StateVector state = states::random({3, 4, 2}, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    // Prune one leaf so the pruned flag participates in the round trip.
    const DDNode& root = dd.node(dd.rootNode());
    const NodeRef child = root.edges[0].node;
    const NodeRef grandchild = dd.node(child).edges[0].node;
    dd.cutEdge(grandchild, 0);
    dd.renormalize();
    dd.normalizeRoot();
    dd.reduce();
    dd.garbageCollect();

    std::stringstream stream;
    dd.serialize(stream);
    const DecisionDiagram parsed = DecisionDiagram::deserialize(stream);
    EXPECT_EQ(parsed.nodeCount(NodeCountMode::Internal),
              dd.nodeCount(NodeCountMode::Internal));
    EXPECT_EQ(parsed.nodeCount(NodeCountMode::TreeSlots),
              dd.nodeCount(NodeCountMode::TreeSlots));
    EXPECT_NEAR(parsed.fidelityWith(dd.toStateVector()), 1.0, 1e-12);
}

TEST(DDSerialize, RoundTripsTheEmptyDiagram) {
    const StateVector zero({2, 3}, std::vector<Complex>(6, Complex{0.0, 0.0}));
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(zero);
    std::stringstream stream;
    dd.serialize(stream);
    const DecisionDiagram parsed = DecisionDiagram::deserialize(stream);
    EXPECT_EQ(parsed.rootNode(), kNoNode);
    EXPECT_EQ(parsed.dimensions(), (Dimensions{2, 3}));
}

TEST(DDSerialize, RejectsMalformedInput) {
    {
        std::stringstream stream("garbage\n");
        EXPECT_THROW((void)DecisionDiagram::deserialize(stream), InvalidArgumentError);
    }
    {
        std::stringstream stream("mqsp-dd v1\ndims 2 2\nroot 1 1 0\n");
        // Missing node table and end line.
        EXPECT_THROW((void)DecisionDiagram::deserialize(stream), InvalidArgumentError);
    }
    {
        // Dangling node reference.
        std::stringstream stream(
            "mqsp-dd v1\ndims 2\nroot 1 1 0\nnode 1 0 2 9 1 0 0 - 0 0 0\nend\n");
        EXPECT_THROW((void)DecisionDiagram::deserialize(stream), InvalidArgumentError);
    }
    {
        // Edge count contradicting the dimension.
        std::stringstream stream(
            "mqsp-dd v1\ndims 3\nroot 1 1 0\nnode 1 0 2 0 1 0 0 - 0 0 0\nend\n");
        EXPECT_THROW((void)DecisionDiagram::deserialize(stream), InvalidArgumentError);
    }
}

} // namespace
} // namespace mqsp
