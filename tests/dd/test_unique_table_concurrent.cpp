// Concurrency stress tests for the sharded uniquing table, the chunked
// node pool, and the striped compute cache (dd/unique_table.{hpp,cpp}).
// These run threads through parallel::runOnThreads — plain std::threads
// behind a start barrier, bypassing the TaskPool's one-region-at-a-time
// submission — so the findOrInsert/store/lookup bodies genuinely overlap.
// The suite is part of the TSan CI job: the assertions below check the
// uniquing invariants, TSan checks the memory orderings.

#include "mqsp/dd/unique_table.hpp"
#include "mqsp/support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace mqsp {
namespace {

constexpr double kTol = 1e-10;

std::vector<DDEdge> keyEdges(NodeRef child, double weight) {
    return {DDEdge{child, Complex{weight, 0.0}}};
}

// --- sharded findOrInsert --------------------------------------------------

TEST(ConcurrentUniqueTable, OverlappingKeySetsYieldOneRefPerDistinctKey) {
    // Every thread interns the same kKeys distinct keys, each starting at a
    // different offset so insertion races are spread over the whole key
    // range (and all 16 shards). Exactly one node may be created per key:
    // losers of a race must receive the winner's canonical ref.
    constexpr unsigned kThreads = 7;
    constexpr NodeRef kKeys = 600;

    dd::DdNodeStore store(dd::DdNodeStore::Mode::Interning, kTol);
    std::vector<std::vector<NodeRef>> got(kThreads, std::vector<NodeRef>(kKeys, kNoNode));
    parallel::runOnThreads(kThreads, [&](unsigned thread) {
        for (NodeRef i = 0; i < kKeys; ++i) {
            const NodeRef k = (i + thread * 83) % kKeys;
            // Distinct site + weight per key: keys land in every shard.
            got[thread][k] =
                store.allocate(k % 11, keyEdges(0, 1.0 / static_cast<double>(k + 1)));
        }
    });

    // Post-hoc scan: the pool holds the terminal plus exactly one node per
    // distinct key, the table one entry per key.
    EXPECT_EQ(store.size(), static_cast<std::size_t>(kKeys) + 1);
    EXPECT_EQ(store.uniqueTable().size(), static_cast<std::size_t>(kKeys));
    for (NodeRef k = 0; k < kKeys; ++k) {
        for (unsigned thread = 1; thread < kThreads; ++thread) {
            ASSERT_EQ(got[thread][k], got[0][k]) << "key " << k << " thread " << thread;
        }
        // The canonical ref names a node with the key's structure.
        const DDNode& node = store.node(got[0][k]);
        ASSERT_EQ(node.site, k % 11);
        ASSERT_EQ(node.edges.size(), 1U);
    }
    // Per-shard key sets are thread-count invariant, so so are the summed
    // counters: every thread's every call was one lookup, and each key
    // missed exactly once.
    const dd::UniqueTableStats stats = store.uniqueTable().stats();
    EXPECT_EQ(stats.lookups, static_cast<std::uint64_t>(kThreads) * kKeys);
    EXPECT_EQ(stats.misses, kKeys);
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1) * kKeys);
}

TEST(ConcurrentUniqueTable, InsertStormAcrossGrowBoundaries) {
    // Small initial capacity + enough keys to force several per-shard
    // rehashes while other threads are probing the same shard. Entries
    // recorded before a grow must survive it (canonical refs stable).
    constexpr unsigned kThreads = 4;
    constexpr NodeRef kKeys = 3000;

    dd::UniqueTable table(kTol, /*initialCapacity=*/16,
                          dd::UniqueTable::Concurrency::Sharded);
    std::atomic<NodeRef> nextRef{1};
    std::vector<std::vector<NodeRef>> got(kThreads, std::vector<NodeRef>(kKeys, kNoNode));
    parallel::runOnThreads(kThreads, [&](unsigned thread) {
        const auto makeFresh = [&]() -> NodeRef {
            return nextRef.fetch_add(1, std::memory_order_relaxed);
        };
        for (NodeRef i = 0; i < kKeys; ++i) {
            const NodeRef k = (i + thread * 977) % kKeys;
            got[thread][k] =
                table.findOrInsert(0, keyEdges(k, 1.0), dd::detail::MakeNodeFnRef(makeFresh));
        }
    });

    EXPECT_EQ(table.size(), static_cast<std::size_t>(kKeys));
    EXPECT_GT(table.stats().grows, 0U);
    // makeFresh ran exactly once per distinct key.
    EXPECT_EQ(nextRef.load(), kKeys + 1);
    // Serial pure lookups agree with what every racing thread was handed.
    for (NodeRef k = 0; k < kKeys; ++k) {
        const NodeRef canonical = table.findOrInsert(0, keyEdges(k, 1.0), kNoNode);
        ASSERT_NE(canonical, kNoNode) << "key " << k << " lost by a grow";
        for (unsigned thread = 0; thread < kThreads; ++thread) {
            ASSERT_EQ(got[thread][k], canonical) << "key " << k << " thread " << thread;
        }
    }
}

// --- chunked pool ----------------------------------------------------------

TEST(ConcurrentNodePool, RacingAppendsKeepStableAddressesAndDistinctSlots) {
    // Appends race across block-creation boundaries (64, 128, 256, ...);
    // every append must land in its own slot and remain readable at a
    // stable address while later blocks are created.
    constexpr unsigned kThreads = 6;
    constexpr std::uint32_t kPerThread = 500;

    dd::detail::ChunkedNodePool<DDNode> pool;
    std::vector<std::vector<std::uint32_t>> indices(kThreads);
    parallel::runOnThreads(kThreads, [&](unsigned thread) {
        indices[thread].reserve(kPerThread);
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
            const std::uint32_t index =
                pool.append(DDNode{thread * kPerThread + i, {}});
            indices[thread].push_back(index);
            // Read-back through the public accessor: the slot just written
            // is visible to its writer at a stable address.
            ASSERT_EQ(pool.at(index).site, thread * kPerThread + i);
        }
    });

    EXPECT_EQ(pool.size(), static_cast<std::size_t>(kThreads) * kPerThread);
    std::vector<bool> seen(pool.size(), false);
    for (unsigned thread = 0; thread < kThreads; ++thread) {
        for (const std::uint32_t index : indices[thread]) {
            ASSERT_FALSE(seen[index]) << "slot " << index << " handed out twice";
            seen[index] = true;
        }
    }
}

// --- striped compute cache -------------------------------------------------

TEST(ConcurrentComputeCache, PublishAndReadRacesNeverTearAnEntry) {
    // Writers publish entries whose fields are arithmetically linked
    // (value == (node, -node)); readers race on the same keys. A torn read
    // would surface as a hit whose fields disagree — the striped locks and
    // whole-entry copies must make that impossible.
    constexpr unsigned kWriters = 3;
    constexpr unsigned kReaders = 4;
    constexpr NodeRef kKeys = 512;
    constexpr int kRounds = 40;

    dd::ComputeCache cache(kTol, /*slots=*/256); // fewer slots than keys: evictions race
    parallel::runOnThreads(kWriters + kReaders, [&](unsigned thread) {
        if (thread < kWriters) {
            for (int round = 0; round < kRounds; ++round) {
                for (NodeRef k = 0; k < kKeys; ++k) {
                    const auto v = static_cast<double>(k);
                    cache.store(dd::ComputeCache::Op::Add, k, k + 1, Complex{1.0, 0.0},
                                dd::ComputeCache::Result{k, Complex{v, -v}});
                }
            }
            return;
        }
        for (int round = 0; round < kRounds; ++round) {
            for (NodeRef k = 0; k < kKeys; ++k) {
                const auto hit =
                    cache.lookup(dd::ComputeCache::Op::Add, k, k + 1, Complex{1.0, 0.0});
                if (!hit.has_value()) {
                    continue; // evicted or not yet published: a miss, never garbage
                }
                const auto v = static_cast<double>(hit->node);
                ASSERT_EQ(hit->node, k);
                ASSERT_EQ(hit->value.real(), v);
                ASSERT_EQ(hit->value.imag(), -v);
            }
        }
    });

    const dd::ComputeCacheStats stats = cache.stats();
    EXPECT_EQ(stats.lookups, static_cast<std::uint64_t>(kReaders) * kRounds * kKeys);
    EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST(ConcurrentComputeCache, LazyAllocationRaceInitializesOnce) {
    // First store() allocates the entry array; concurrent first-stores and
    // lookups race on that initialization (double-checked allocated_ flag).
    constexpr unsigned kThreads = 8;
    dd::ComputeCache cache(kTol, /*slots=*/64);
    parallel::runOnThreads(kThreads, [&](unsigned thread) {
        const NodeRef k = thread;
        cache.store(dd::ComputeCache::Op::InnerProduct, k, k, Complex{},
                    dd::ComputeCache::Result{kNoNode, Complex{1.0, 0.0}});
        const auto hit = cache.lookup(dd::ComputeCache::Op::InnerProduct, k, k, Complex{});
        // Distinct keys may collide in 64 slots, but this thread's own
        // store is the newest write to its slot only if nobody evicted it;
        // either way the lookup must return a coherent entry or miss.
        if (hit.has_value()) {
            ASSERT_EQ(hit->value.imag(), 0.0);
        }
    });
    EXPECT_EQ(cache.stats().lookups, kThreads);
}

} // namespace
} // namespace mqsp
