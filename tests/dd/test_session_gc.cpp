#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/dd/unique_table.hpp"
#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mqsp {
namespace {

const Dimensions kDims{3, 6, 2};

/// Exact amplitude-by-amplitude equality: a GC is a pure renumbering, so
/// the represented state must survive bit-for-bit, not just approximately.
void expectSameState(const StateVector& expected, const DecisionDiagram& diagram) {
    const StateVector actual = diagram.toStateVector();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::uint64_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].real(), expected[i].real()) << "amplitude " << i;
        EXPECT_EQ(actual[i].imag(), expected[i].imag()) << "amplitude " << i;
    }
}

TEST(SessionGc, CompactsPoolToTheLiveRootReachableSet) {
    const dd::DdSession session;
    DecisionDiagram ghz = session.ghzState(kDims);
    DecisionDiagram w = session.wState(kDims);
    // Transient garbage the GC must reclaim.
    { const DecisionDiagram dead = session.dickeState(kDims, 3); }
    { const DecisionDiagram dead = session.cyclicState(kDims, Digits{0, 0, 0}, 6); }
    const std::uint64_t before = session.stats().poolNodes;

    const StateVector ghzState = ghz.toStateVector();
    const StateVector wState = w.toStateVector();

    const dd::DdSessionGcStats stats = session.garbageCollect({&ghz, &w});
    EXPECT_EQ(stats.nodesBefore, before);
    EXPECT_EQ(stats.liveRoots, 2U);
    EXPECT_LT(stats.nodesAfter, stats.nodesBefore);
    EXPECT_EQ(session.stats().poolNodes, stats.nodesAfter);

    // The compacted pool holds exactly what a fresh session holds after
    // building only the live states: the union of their reachable sets
    // (plus the terminal), nothing else.
    const dd::DdSession fresh;
    const DecisionDiagram freshGhz = fresh.ghzState(kDims);
    const DecisionDiagram freshW = fresh.wState(kDims);
    EXPECT_EQ(stats.nodesAfter, fresh.stats().poolNodes);

    expectSameState(ghzState, ghz);
    expectSameState(wState, w);
}

TEST(SessionGc, SingleRootCompactsToItsReachableNodesPlusTerminal) {
    const dd::DdSession session;
    DecisionDiagram keep = session.wState(kDims);
    { const DecisionDiagram dead = session.ghzState(kDims); }

    const dd::DdSessionGcStats stats = session.garbageCollect({&keep});
    EXPECT_EQ(stats.nodesAfter, keep.nodeCount(NodeCountMode::Internal) + 1);
    // Roots were renumbered into the compacted space.
    EXPECT_LT(keep.rootNode(), stats.nodesAfter);
}

TEST(SessionGc, SecondPassIsIdempotent) {
    const dd::DdSession session;
    DecisionDiagram keep = session.ghzState(kDims);
    { const DecisionDiagram dead = session.uniformState(kDims); }

    const dd::DdSessionGcStats first = session.garbageCollect({&keep});
    const dd::DdSessionGcStats second = session.garbageCollect({&keep});
    EXPECT_EQ(second.nodesBefore, first.nodesAfter);
    EXPECT_EQ(second.nodesAfter, first.nodesAfter);
    EXPECT_EQ(second.cacheEntriesEvicted, 0U);
}

TEST(SessionGc, EmptyLiveListKeepsOnlyTheTerminal) {
    const dd::DdSession session;
    { const DecisionDiagram dead = session.wState(kDims); }
    const dd::DdSessionGcStats stats = session.garbageCollect({});
    EXPECT_EQ(stats.liveRoots, 0U);
    EXPECT_EQ(stats.nodesAfter, 1U);
}

TEST(SessionGc, DuplicateAndAliasedRootsRemapExactlyOnce) {
    const dd::DdSession session;
    DecisionDiagram ghz = session.ghzState(kDims);
    DecisionDiagram alias = ghz; // session-backed copy: O(1), shares the store
    { const DecisionDiagram dead = session.dickeState(kDims, 2); }
    const StateVector expected = ghz.toStateVector();

    // The same object listed twice and an aliasing copy must each end up
    // remapped exactly once — a double remap would renumber a root through
    // the compacted space a second time and corrupt it.
    const dd::DdSessionGcStats stats =
        session.garbageCollect({&ghz, &alias, &ghz});
    EXPECT_EQ(stats.liveRoots, 3U);
    EXPECT_EQ(ghz.rootNode(), alias.rootNode());
    expectSameState(expected, ghz);
    expectSameState(expected, alias);
}

TEST(SessionGc, ComputeCacheEntriesSurviveCompaction) {
    const dd::DdSession session;
    DecisionDiagram ghz = session.ghzState(kDims);
    DecisionDiagram w = session.wState(kDims);

    const Complex first = ghz.innerProductWith(w);
    const std::uint64_t hitsBefore = session.stats().cache.hits;
    const Complex repeat = ghz.innerProductWith(w);
    EXPECT_EQ(repeat, first);
    EXPECT_GT(session.stats().cache.hits, hitsBefore);

    const dd::DdSessionGcStats stats = session.garbageCollect({&ghz, &w});
    // Every cached pair names live nodes: nothing to evict, and the
    // remapped entries still answer the repeat verification.
    EXPECT_EQ(stats.cacheEntriesEvicted, 0U);
    const std::uint64_t hitsAfterGc = session.stats().cache.hits;
    const Complex postGc = ghz.innerProductWith(w);
    EXPECT_EQ(postGc, first);
    EXPECT_GT(session.stats().cache.hits, hitsAfterGc);
}

TEST(SessionGc, CacheEntriesNamingDeadNodesAreEvicted) {
    const dd::DdSession session;
    DecisionDiagram keep = session.ghzState(kDims);
    std::uint64_t evictedByGc = 0;
    {
        const DecisionDiagram dead = session.dickeState(kDims, 3);
        (void)keep.innerProductWith(dead);
        const dd::DdSessionGcStats stats = session.garbageCollect({&keep});
        evictedByGc = stats.cacheEntriesEvicted;
    }
    EXPECT_GT(evictedByGc, 0U);
    EXPECT_GE(session.stats().cache.evictions, evictedByGc);
}

TEST(SessionGc, RebuiltTableInternsSurvivorsWithoutNewNodes) {
    const dd::DdSession session;
    DecisionDiagram keep = session.wState(kDims);
    { const DecisionDiagram dead = session.ghzState(kDims); }
    const dd::DdSessionGcStats stats = session.garbageCollect({&keep});

    // Re-building a live state after GC must resolve every node from the
    // rebuilt uniquing table — the pool does not grow by a single node.
    const DecisionDiagram again = session.wState(kDims);
    EXPECT_EQ(session.stats().poolNodes, stats.nodesAfter);
    EXPECT_EQ(again.rootNode(), keep.rootNode());
}

TEST(SessionGc, SurvivesRepeatedBuildCollectCycles) {
    const dd::DdSession session;
    std::uint64_t steadyState = 0;
    for (int cycle = 0; cycle < 20; ++cycle) {
        DecisionDiagram keep = session.ghzState(kDims);
        { const DecisionDiagram dead = session.dickeState(kDims, 2); }
        const dd::DdSessionGcStats stats = session.garbageCollect({&keep});
        if (cycle == 0) {
            steadyState = stats.nodesAfter;
        }
        // The compacted size is a pure function of the live set: cycling
        // build/collect must not leak nodes into the "live" count.
        EXPECT_EQ(stats.nodesAfter, steadyState) << "cycle " << cycle;
        EXPECT_EQ(session.garbageCollect({&keep}).nodesAfter, steadyState);
    }
}

TEST(SessionGc, RejectsNullAndForeignDiagrams) {
    const dd::DdSession session;
    DecisionDiagram keep = session.ghzState(kDims);
    EXPECT_THROW((void)session.garbageCollect({nullptr}), InvalidArgumentError);

    DecisionDiagram foreign = DecisionDiagram::ghzState(kDims); // private store
    EXPECT_THROW((void)session.garbageCollect({&keep, &foreign}), InvalidArgumentError);

    const dd::DdSession other;
    DecisionDiagram otherBacked = other.ghzState(kDims);
    EXPECT_THROW((void)session.garbageCollect({&otherBacked}), InvalidArgumentError);
}

} // namespace
} // namespace mqsp
