#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

TEST(DDMetrics, DenseTreeCountMatchesPaperTable1Registers) {
    // Table 1 reports the same "Nodes" for every state on a register: the
    // dense splitting tree including one leaf per amplitude.
    EXPECT_EQ(DecisionDiagram::denseTreeNodeCount({3, 6, 2}), 58U);
    EXPECT_EQ(DecisionDiagram::denseTreeNodeCount({9, 5, 6, 3}), 1135U);
    EXPECT_EQ(DecisionDiagram::denseTreeNodeCount({6, 6, 5, 3, 3}), 2383U);
    EXPECT_EQ(DecisionDiagram::denseTreeNodeCount({5, 4, 2, 5, 5, 2}), 3266U);
    EXPECT_EQ(DecisionDiagram::denseTreeNodeCount({4, 7, 4, 4, 3, 5}), 8657U);
}

TEST(DDMetrics, InternalCountForRandomStateIsFullTree) {
    Rng rng;
    const StateVector state = states::random({3, 6, 2}, rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    // Internal nodes of the dense tree over (3, 6, 2): 1 + 3 + 18 = 22.
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), 22U);
    // Slots: root + all child positions = 1 + (3 + 18 + 36) = 58.
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Slots), 58U);
}

TEST(DDMetrics, SlotsCountSkipsZeroSubtrees) {
    const StateVector state = states::ghz({3, 6, 2});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    // GHZ over (3,6,2) has min(dims)=2 branches: nonzero internal nodes are
    // root(3 slots) + 2 x dim-6 (12) + 2 x dim-2 (4) -> slots = 1 + 19 = 20
    // (the paper's approximated "Nodes" for this row).
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Slots), 20U);
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), 5U);
}

TEST(DDMetrics, DistinctComplexMatchesPaperForGhz) {
    // {0, 1/sqrt(2)-ish branch weights, 1} -> 3 distinct values (Table 1).
    const DecisionDiagram dd =
        DecisionDiagram::fromStateVector(states::ghz({3, 6, 2}));
    EXPECT_EQ(dd.distinctComplexCount(), 3U);
    const DecisionDiagram dd4 =
        DecisionDiagram::fromStateVector(states::ghz({9, 5, 6, 3}));
    EXPECT_EQ(dd4.distinctComplexCount(), 3U);
}

TEST(DDMetrics, DistinctComplexMatchesPaperForWStates) {
    const DecisionDiagram w =
        DecisionDiagram::fromStateVector(states::wState({3, 6, 2}));
    EXPECT_EQ(w.distinctComplexCount(), 5U); // Table 1, W-State 3-qudit row
    const DecisionDiagram embw =
        DecisionDiagram::fromStateVector(states::embeddedWState({3, 6, 2}));
    EXPECT_EQ(embw.distinctComplexCount(), 5U); // Table 1, Emb. W-State row
}

TEST(DDMetrics, NodeContributionsSumAlongLevels) {
    Rng rng(5);
    const StateVector state = states::random({3, 4, 2}, rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const auto contributions = dd.nodeContributions();
    // Root carries all the mass.
    EXPECT_NEAR(contributions[dd.rootNode()], 1.0, 1e-10);
    // Contributions of the root's children sum to 1 (dense random state).
    const DDNode& root = dd.node(dd.rootNode());
    double sum = 0.0;
    for (const auto& edge : root.edges) {
        ASSERT_FALSE(edge.isZeroStub());
        sum += contributions[edge.node];
    }
    EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(DDMetrics, ContributionEqualsSubtreeMass) {
    // The contribution of a node equals the probability mass of all basis
    // states routed through it (§4.3).
    const StateVector state = states::wState({3, 3});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const auto contributions = dd.nodeContributions();
    const DDNode& root = dd.node(dd.rootNode());
    // W(3,3) has 4 terms: |01>,|02>,|10>,|20| each 1/4. Root edge 0 leads to
    // the child holding |01>,|02> -> mass 1/2.
    ASSERT_FALSE(root.edges[0].isZeroStub());
    EXPECT_NEAR(contributions[root.edges[0].node], 0.5, 1e-10);
    ASSERT_FALSE(root.edges[1].isZeroStub());
    EXPECT_NEAR(contributions[root.edges[1].node], 0.25, 1e-10);
}

TEST(DDMetrics, TensorProductDetectionAfterReduce) {
    // |psi> = (uniform qutrit) x (uniform qubit): after reduction the root's
    // three edges share one child -> tensor-product node.
    const StateVector state = states::uniform({3, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_FALSE(dd.isTensorProductNode(dd.rootNode())); // tree: 3 children
    dd.reduce();
    EXPECT_TRUE(dd.isTensorProductNode(dd.rootNode()));
}

TEST(DDMetrics, TensorProductFalseForEntangledStates) {
    DecisionDiagram dd = DecisionDiagram::fromStateVector(states::ghz({3, 3}));
    dd.reduce();
    EXPECT_FALSE(dd.isTensorProductNode(dd.rootNode()));
}

TEST(DDMetrics, CheckInvariantsFlagsNothingOnFreshDiagrams) {
    Rng rng(8);
    for (const auto& dims :
         {Dimensions{2, 2}, Dimensions{3, 6, 2}, Dimensions{5, 4, 2, 5, 5, 2}}) {
        const DecisionDiagram dd =
            DecisionDiagram::fromStateVector(states::random(dims, rng));
        EXPECT_EQ(dd.checkInvariants(), "");
    }
}

TEST(DDMetrics, DistinctComplexCountsForRandomDenseState) {
    Rng rng(12);
    const StateVector state = states::random({3, 6, 2}, rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    // All 36 leaf weights, 21 inner norms and the root weight are expected
    // to be pairwise distinct for a continuous random state; zero stubs do
    // not occur. 36 + 21 + 1 = 58 (Table 1 reports DistinctC = Nodes = 58).
    EXPECT_EQ(dd.distinctComplexCount(), 58U);
}

} // namespace
} // namespace mqsp
