#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

TEST(DDConstruct, BasisStateYieldsSinglePath) {
    const StateVector state = StateVector::basis({3, 2}, {2, 1});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_EQ(dd.checkInvariants(), "");
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), 2U);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({2, 1})), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({0, 0})), 0.0, 1e-12);
}

TEST(DDConstruct, RootWeightIsVectorNorm) {
    // Construction is defined for unnormalized vectors too: the norm lands
    // in the root weight.
    const StateVector state({2}, {{3.0, 0.0}, {4.0, 0.0}});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_NEAR(dd.rootWeight().real(), 5.0, 1e-12);
    EXPECT_NEAR(dd.rootWeight().imag(), 0.0, 1e-12);
    EXPECT_NEAR(dd.amplitudeOf({0}).real(), 3.0, 1e-12);
}

TEST(DDConstruct, ZeroVectorGivesEmptyDiagram) {
    const StateVector state({2, 2}, std::vector<Complex>(4, Complex{0.0, 0.0}));
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_EQ(dd.rootNode(), kNoNode);
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), 0U);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({1, 1})), 0.0, 1e-12);
}

TEST(DDConstruct, UpperWeightsAreRealNonNegative) {
    // The fixed normalization scheme pushes phases into the terminal edges;
    // every weight above the lowest level is a real non-negative norm.
    Rng rng;
    const StateVector state = states::random({3, 4, 2}, rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    ASSERT_NE(dd.rootNode(), kNoNode);
    // Walk all internal nodes except the lowest level.
    std::vector<NodeRef> stack{dd.rootNode()};
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        const DDNode& n = dd.node(ref);
        if (n.isTerminal() || n.site + 1 == dd.numQudits()) {
            continue;
        }
        for (const auto& edge : n.edges) {
            if (edge.isZeroStub()) {
                continue;
            }
            EXPECT_NEAR(edge.weight.imag(), 0.0, 1e-12);
            EXPECT_GE(edge.weight.real(), 0.0);
            stack.push_back(edge.node);
        }
    }
}

TEST(DDConstruct, NormalizationInvariantHolds) {
    Rng rng(4);
    const StateVector state = states::random({3, 6, 2}, rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_EQ(dd.checkInvariants(), "");
    EXPECT_NEAR(std::abs(dd.rootWeight()), 1.0, 1e-12);
}

TEST(DDConstruct, ZeroSubtreesBecomeStubs) {
    const StateVector state = states::ghz({3, 3});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    // GHZ on two qutrits: the root has three nonzero edges, each child has
    // exactly one nonzero edge (the matching level).
    const DDNode& root = dd.node(dd.rootNode());
    ASSERT_EQ(root.edges.size(), 3U);
    for (std::size_t k = 0; k < 3; ++k) {
        ASSERT_FALSE(root.edges[k].isZeroStub());
        const DDNode& child = dd.node(root.edges[k].node);
        for (std::size_t m = 0; m < 3; ++m) {
            EXPECT_EQ(child.edges[m].isZeroStub(), m != k);
        }
    }
}

TEST(DDConstructDense, MaterializesTheFullTree) {
    const StateVector state = states::ghz({3, 6, 2});
    const DecisionDiagram dense = DecisionDiagram::fromStateVectorDense(state);
    // Internal nodes of the dense tree over (3,6,2): 1 + 3 + 18 = 22,
    // regardless of the state's sparsity.
    EXPECT_EQ(dense.nodeCount(NodeCountMode::Internal), 22U);
    // The represented state is still exact.
    EXPECT_NEAR(dense.fidelityWith(state), 1.0, 1e-10);
    for (const auto& digits :
         {Digits{0, 0, 0}, Digits{1, 1, 1}, Digits{2, 5, 1}, Digits{0, 3, 0}}) {
        EXPECT_NEAR(std::abs(dense.amplitudeOf(digits) - state.at(digits)), 0.0, 1e-12);
    }
}

TEST(DDConstructDense, BaselineSynthesisCostsTheFullTree) {
    const StateVector state = states::ghz({3, 3, 3});
    const DecisionDiagram dense = DecisionDiagram::fromStateVectorDense(state);
    SynthesisOptions options;
    options.elideTensorProductControls = false;
    const Circuit baseline = synthesize(dense, options);
    // ops = sum of dims over all internal tree nodes = 3 + 9 + 27 = 39.
    EXPECT_EQ(baseline.numOperations(), 39U);
    EXPECT_NEAR(Simulator::preparationFidelity(baseline, state), 1.0, 1e-9);
    // The DD-aware circuit is much shorter but prepares the same state.
    const auto sparse = prepareExact(state);
    EXPECT_LT(sparse.circuit.numOperations(), baseline.numOperations());
}

class DDRoundTrip : public ::testing::TestWithParam<Dimensions> {};

TEST_P(DDRoundTrip, AmplitudesMatchForRandomStates) {
    Rng rng(17);
    const StateVector state = states::random(GetParam(), rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    EXPECT_EQ(dd.checkInvariants(), "");

    const MixedRadix radix(GetParam());
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        const auto digits = radix.digitsOf(index);
        EXPECT_NEAR(std::abs(dd.amplitudeOf(digits) - state[index]), 0.0, 1e-10)
            << "index " << index;
    }
}

TEST_P(DDRoundTrip, ToStateVectorReconstructsExactly) {
    Rng rng(31);
    const StateVector state = states::random(GetParam(), rng);
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const StateVector rebuilt = dd.toStateVector();
    for (std::uint64_t i = 0; i < state.size(); ++i) {
        EXPECT_NEAR(std::abs(rebuilt[i] - state[i]), 0.0, 1e-10);
    }
    EXPECT_NEAR(dd.fidelityWith(state), 1.0, 1e-10);
    EXPECT_NEAR(dd.normSquared(), 1.0, 1e-10);
}

TEST_P(DDRoundTrip, StructuredStatesRoundTrip) {
    for (const auto* name : {"ghz", "w", "embw", "uniform"}) {
        StateVector state({2});
        const std::string which = name;
        if (which == "ghz") {
            state = states::ghz(GetParam());
        } else if (which == "w") {
            state = states::wState(GetParam());
        } else if (which == "embw") {
            state = states::embeddedWState(GetParam());
        } else {
            state = states::uniform(GetParam());
        }
        const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
        EXPECT_EQ(dd.checkInvariants(), "") << which;
        EXPECT_NEAR(dd.fidelityWith(state), 1.0, 1e-10) << which;
    }
}

INSTANTIATE_TEST_SUITE_P(Registers, DDRoundTrip,
                         ::testing::Values(Dimensions{2, 2}, Dimensions{3, 6, 2},
                                           Dimensions{9, 5, 6, 3}, Dimensions{2, 3, 4},
                                           Dimensions{5, 2, 3, 2}));

} // namespace
} // namespace mqsp
