// Structural diagram diffing (dd::diffDiagrams): the primitive behind
// incremental re-verification's root-diff reporting. Hash-consing makes
// NodeRef identity structural identity within one session, so the diff is
// a pair of reachability marks plus one counting pass — these tests pin
// the counting invariants and the same-store requirement.

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/dd/unique_table.hpp"
#include "mqsp/support/error.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

const Dimensions kDims{3, 6, 2};

TEST(DiagramDiff, IdenticalRootsShareEverything) {
    const dd::DdSession session;
    const DecisionDiagram ghz = session.ghzState(kDims);
    const dd::DiagramDiffStats stats = dd::diffDiagrams(ghz, ghz);
    EXPECT_EQ(stats.nodesA, stats.nodesB);
    EXPECT_GT(stats.shared, 0U);
    EXPECT_EQ(stats.shared, stats.nodesA);
    EXPECT_EQ(stats.added, 0U);
    EXPECT_EQ(stats.removed, 0U);
}

TEST(DiagramDiff, CountsArePartitionedByReachability) {
    const dd::DdSession session;
    const DecisionDiagram ghz = session.ghzState(kDims);
    const DecisionDiagram w = session.wState(kDims);
    const dd::DiagramDiffStats stats = dd::diffDiagrams(ghz, w);
    // The marks partition each side: everything reachable from A is either
    // shared with B or removed, and vice versa.
    EXPECT_EQ(stats.nodesA, stats.shared + stats.removed);
    EXPECT_EQ(stats.nodesB, stats.shared + stats.added);
    EXPECT_GT(stats.nodesA, 0U);
    EXPECT_GT(stats.nodesB, 0U);

    // The diff is symmetric with the roles swapped.
    const dd::DiagramDiffStats reverse = dd::diffDiagrams(w, ghz);
    EXPECT_EQ(reverse.nodesA, stats.nodesB);
    EXPECT_EQ(reverse.nodesB, stats.nodesA);
    EXPECT_EQ(reverse.shared, stats.shared);
    EXPECT_EQ(reverse.added, stats.removed);
    EXPECT_EQ(reverse.removed, stats.added);
}

TEST(DiagramDiff, AppliedGateShowsUpAsAddedNodes) {
    // The incremental re-verification use: snapshot a replay state, apply
    // a delta, and diff old root against new root. An identity delta
    // changes nothing; a real delta adds nodes without invalidating the
    // old snapshot (session diagrams are immutable).
    const dd::DdSession session;
    DecisionDiagram state = session.zeroState(kDims);
    const DecisionDiagram before = state;
    state.applyOperation(Operation::givens(0, 0, 1, 1.1, 0.3));
    const dd::DiagramDiffStats stats = dd::diffDiagrams(before, state);
    EXPECT_GT(stats.added, 0U);
    EXPECT_EQ(stats.nodesB, stats.shared + stats.added);

    const dd::DiagramDiffStats unchanged = dd::diffDiagrams(before, before);
    EXPECT_EQ(unchanged.added, 0U);
    EXPECT_EQ(unchanged.removed, 0U);
}

TEST(DiagramDiff, RefusesDiagramsFromDifferentStores) {
    const dd::DdSession a;
    const dd::DdSession b;
    const DecisionDiagram onA = a.ghzState(kDims);
    const DecisionDiagram onB = b.ghzState(kDims);
    try {
        (void)dd::diffDiagrams(onA, onB);
        FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& error) {
        EXPECT_NE(std::string(error.what()).find("different stores"), std::string::npos)
            << error.what();
    }
}

} // namespace
} // namespace mqsp
