// DD-native gate application and inner products (the simulation substrate
// of the paper's reference [12]), validated against the dense simulator.

#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mqsp {
namespace {

constexpr double kPi = std::numbers::pi;

void expectMatchesDense(const Circuit& circuit, double tol = 1e-9) {
    const DecisionDiagram dd = DecisionDiagram::simulateCircuit(circuit);
    const StateVector dense = Simulator::runFromZero(circuit);
    EXPECT_EQ(dd.checkInvariants(), "");
    const StateVector fromDD = dd.toStateVector();
    for (std::uint64_t i = 0; i < dense.size(); ++i) {
        EXPECT_NEAR(std::abs(fromDD[i] - dense[i]), 0.0, tol) << "amplitude " << i;
    }
}

TEST(DDApply, ZeroStateDiagram) {
    const DecisionDiagram dd = DecisionDiagram::zeroState({3, 2});
    EXPECT_NEAR(std::abs(dd.amplitudeOf({0, 0}) - Complex{1.0, 0.0}), 0.0, 1e-12);
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), 2U);
}

TEST(DDApply, HadamardOnZero) {
    Circuit circuit({3});
    circuit.append(Operation::hadamard(0));
    expectMatchesDense(circuit);
}

TEST(DDApply, SingleRotationWithPhases) {
    Circuit circuit({4});
    circuit.append(Operation::givens(0, 1, 3, 1.2, -0.7));
    circuit.append(Operation::givens(0, 0, 1, 0.4, 0.3));
    circuit.append(Operation::phase(0, 0, 2, 0.9));
    expectMatchesDense(circuit);
}

TEST(DDApply, ControlledOperations) {
    Circuit circuit({3, 3});
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::shift(1, 1, {{0, 1}}));
    circuit.append(Operation::shift(1, 2, {{0, 2}}));
    expectMatchesDense(circuit);
    // This is Figure 1's GHZ circuit: the DD result must be the GHZ state.
    const DecisionDiagram dd = DecisionDiagram::simulateCircuit(circuit);
    EXPECT_NEAR(dd.fidelityWith(states::ghz({3, 3})), 1.0, 1e-10);
}

TEST(DDApply, MultiControlledOperations) {
    Circuit circuit({2, 3, 2});
    circuit.append(Operation::givens(0, 0, 1, 0.8, 0.0));
    circuit.append(Operation::givens(1, 0, 2, 1.1, 0.5, {{0, 1}}));
    circuit.append(Operation::givens(2, 0, 1, kPi / 3.0, -0.2, {{0, 1}, {1, 2}}));
    expectMatchesDense(circuit);
}

TEST(DDApply, RejectsControlsBelowTheTarget) {
    DecisionDiagram dd = DecisionDiagram::zeroState({2, 2});
    EXPECT_THROW(dd.applyOperation(Operation::givens(0, 0, 1, 0.5, 0.0, {{1, 1}})),
                 InvalidArgumentError);
}

TEST(DDApply, LevelSwapAndShiftKinds) {
    Circuit circuit({4, 3});
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::levelSwap(0, 0, 3));
    circuit.append(Operation::shift(1, 2, {{0, 3}}));
    expectMatchesDense(circuit);
}

TEST(DDApply, NormStaysOneThroughLongCircuits) {
    Rng rng(5);
    const Dimensions dims{3, 2, 3};
    const MixedRadix radix(dims);
    Circuit circuit(dims);
    for (int i = 0; i < 40; ++i) {
        const auto target = static_cast<std::size_t>(rng.uniformIndex(3));
        const Dimension dim = radix.dimensionAt(target);
        auto a = static_cast<Level>(rng.uniformIndex(dim));
        auto b = static_cast<Level>(rng.uniformIndex(dim));
        if (a == b) {
            b = (b + 1) % dim;
        }
        std::vector<Control> controls;
        if (target > 0 && rng.uniform01() < 0.4) {
            const auto ctrl = static_cast<std::size_t>(rng.uniformIndex(target));
            controls.push_back(
                {ctrl, static_cast<Level>(rng.uniformIndex(radix.dimensionAt(ctrl)))});
        }
        circuit.append(Operation::givens(target, std::min(a, b), std::max(a, b),
                                         rng.uniform(-kPi, kPi), rng.uniform(-kPi, kPi),
                                         controls));
    }
    const DecisionDiagram dd = DecisionDiagram::simulateCircuit(circuit);
    EXPECT_NEAR(std::abs(dd.rootWeight()), 1.0, 1e-8);
    expectMatchesDense(circuit, 1e-7);
}

TEST(DDApply, SynthesizedCircuitsReproduceTheirTargetsNatively) {
    // The fully DD-native verification loop: target -> DD -> circuit ->
    // DD simulation -> DD inner product. No dense vector anywhere.
    Rng rng(7);
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{2, 3, 4}}) {
        const StateVector target = states::random(dims, rng);
        const DecisionDiagram targetDD = DecisionDiagram::fromStateVector(target);
        const auto prep = prepareExact(target);
        const DecisionDiagram prepared = DecisionDiagram::simulateCircuit(prep.circuit);
        const Complex overlap = targetDD.innerProductWith(prepared);
        EXPECT_NEAR(std::abs(overlap), 1.0, 1e-8) << formatDimensionSpec(dims);
    }
}

TEST(DDInnerProduct, MatchesDenseInnerProduct) {
    Rng rng(11);
    const Dimensions dims{3, 4, 2};
    const StateVector a = states::random(dims, rng);
    const StateVector b = states::random(dims, rng);
    const DecisionDiagram da = DecisionDiagram::fromStateVector(a);
    const DecisionDiagram db = DecisionDiagram::fromStateVector(b);
    const Complex native = da.innerProductWith(db);
    const Complex dense = a.innerProduct(b);
    EXPECT_NEAR(std::abs(native - dense), 0.0, 1e-10);
    // Conjugate symmetry.
    EXPECT_NEAR(std::abs(db.innerProductWith(da) - std::conj(native)), 0.0, 1e-10);
}

TEST(DDInnerProduct, SelfInnerProductIsOne) {
    Rng rng(13);
    const DecisionDiagram dd =
        DecisionDiagram::fromStateVector(states::random({3, 6, 2}, rng));
    EXPECT_NEAR(std::abs(dd.innerProductWith(dd) - Complex{1.0, 0.0}), 0.0, 1e-10);
}

TEST(DDInnerProduct, OrthogonalStates) {
    const DecisionDiagram a =
        DecisionDiagram::fromStateVector(StateVector::basis({3, 2}, {0, 0}));
    const DecisionDiagram b =
        DecisionDiagram::fromStateVector(StateVector::basis({3, 2}, {2, 1}));
    EXPECT_NEAR(std::abs(a.innerProductWith(b)), 0.0, 1e-12);
}

TEST(DDInnerProduct, RegisterMismatchRejected) {
    const DecisionDiagram a = DecisionDiagram::zeroState({2, 2});
    const DecisionDiagram b = DecisionDiagram::zeroState({3, 2});
    EXPECT_THROW((void)a.innerProductWith(b), InvalidArgumentError);
}

TEST(DDInnerProduct, WorksOnReducedDiagrams) {
    DecisionDiagram a = DecisionDiagram::fromStateVector(states::uniform({3, 4, 2}));
    a.reduce();
    a.garbageCollect();
    const DecisionDiagram b =
        DecisionDiagram::fromStateVector(states::uniform({3, 4, 2}));
    EXPECT_NEAR(std::abs(a.innerProductWith(b) - Complex{1.0, 0.0}), 0.0, 1e-10);
}

class DDApplyRandomCircuits : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DDApplyRandomCircuits, AgreesWithDenseSimulatorOnAllGateKinds) {
    Rng rng(GetParam());
    const Dimensions dims{3, 4, 2};
    const MixedRadix radix(dims);
    Circuit circuit(dims);
    for (int i = 0; i < 25; ++i) {
        const auto target = static_cast<std::size_t>(rng.uniformIndex(3));
        const Dimension dim = radix.dimensionAt(target);
        auto a = static_cast<Level>(rng.uniformIndex(dim));
        auto b = static_cast<Level>(rng.uniformIndex(dim));
        if (a == b) {
            b = (b + 1) % dim;
        }
        std::vector<Control> controls;
        if (target > 0 && rng.uniform01() < 0.5) {
            const auto ctrl = static_cast<std::size_t>(rng.uniformIndex(target));
            controls.push_back(
                {ctrl, static_cast<Level>(rng.uniformIndex(radix.dimensionAt(ctrl)))});
        }
        switch (rng.uniformIndex(5)) {
        case 0:
            circuit.append(Operation::hadamard(target, controls));
            break;
        case 1:
            circuit.append(Operation::shift(
                target, static_cast<Level>(rng.uniformIndex(dim)), controls));
            break;
        case 2:
            circuit.append(Operation::levelSwap(target, std::min(a, b), std::max(a, b),
                                                controls));
            break;
        case 3:
            circuit.append(Operation::phase(target, std::min(a, b), std::max(a, b),
                                            rng.uniform(-kPi, kPi), controls));
            break;
        default:
            circuit.append(Operation::givens(target, std::min(a, b), std::max(a, b),
                                             rng.uniform(-kPi, kPi),
                                             rng.uniform(-kPi, kPi), controls));
            break;
        }
    }
    expectMatchesDense(circuit, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DDApplyRandomCircuits,
                         ::testing::Values(21U, 22U, 23U, 24U, 25U, 26U, 27U, 28U));

} // namespace
} // namespace mqsp
