// Fuzzing the decision-diagram transform surface: random sequences of
// cuts, renormalizations, reductions and garbage collections must keep the
// structural invariants intact and the represented state consistent with a
// shadow dense vector maintained alongside.

#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

class DDTransformFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DDTransformFuzz, RandomTransformSequencesKeepInvariants) {
    Rng rng(GetParam());
    const Dimensions dims{3, 4, 2};
    StateVector shadow = states::random(dims, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(shadow);

    for (int step = 0; step < 30; ++step) {
        const auto action = rng.uniformIndex(5);
        if (action == 0) {
            // Cut a random edge of a random reachable internal node and
            // zero the corresponding block of the shadow vector.
            if (dd.rootNode() == kNoNode) {
                continue;
            }
            // Walk a random path to pick a node.
            NodeRef current = dd.rootNode();
            std::vector<NodeRef> pathNodes{current};
            while (true) {
                const DDNode& n = dd.node(current);
                if (n.isTerminal()) {
                    break;
                }
                std::vector<std::size_t> nonZero;
                for (std::size_t k = 0; k < n.edges.size(); ++k) {
                    if (!n.edges[k].isZeroStub()) {
                        nonZero.push_back(k);
                    }
                }
                if (nonZero.empty()) {
                    break;
                }
                current = n.edges[nonZero[rng.uniformIndex(nonZero.size())]].node;
                if (!dd.node(current).isTerminal()) {
                    pathNodes.push_back(current);
                }
            }
            const NodeRef victim = pathNodes[rng.uniformIndex(pathNodes.size())];
            const DDNode& node = dd.node(victim);
            const auto edgeIndex = rng.uniformIndex(node.edges.size());
            // Zero the shadow block: all basis states whose digits route
            // through (victim, edgeIndex). Recompute the shadow from the
            // diagram instead — cutting is easier to mirror that way.
            dd.cutEdge(victim, edgeIndex);
            dd.renormalize();
            if (dd.rootNode() == kNoNode) {
                break; // everything pruned; done with this round
            }
            dd.normalizeRoot();
            shadow = dd.toStateVector();
            if (shadow.norm() > 0.0) {
                shadow.normalize();
            }
        } else if (action == 1) {
            dd.renormalize();
        } else if (action == 2) {
            (void)dd.reduce();
        } else if (action == 3) {
            dd.garbageCollect();
        } else {
            if (dd.rootNode() != kNoNode) {
                dd.normalizeRoot();
            }
        }
        // Invariants after every step.
        EXPECT_EQ(dd.checkInvariants(), "") << "seed " << GetParam() << " step " << step;
        if (dd.rootNode() != kNoNode && shadow.norm() > 0.0) {
            EXPECT_NEAR(dd.fidelityWith(shadow), 1.0, 1e-7)
                << "seed " << GetParam() << " step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DDTransformFuzz,
                         ::testing::Values(101U, 102U, 103U, 104U, 105U, 106U, 107U,
                                           108U, 109U, 110U));

} // namespace
} // namespace mqsp
