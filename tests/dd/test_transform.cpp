#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

TEST(DDTransform, CutLeafEdgeRemovesAmplitude) {
    Rng rng;
    const StateVector state = states::random({2, 2}, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    // Cut |0 0>: the leaf edge 0 of the root's child 0.
    const DDNode& root = dd.node(dd.rootNode());
    const NodeRef child = root.edges[0].node;
    dd.cutEdge(child, 0);
    dd.renormalize();
    EXPECT_NEAR(std::abs(dd.amplitudeOf({0, 0})), 0.0, 1e-12);
    // Remaining amplitudes keep their relative values.
    const Complex a01 = dd.amplitudeOf({0, 1});
    const Complex a11 = dd.amplitudeOf({1, 1});
    const Complex ratioBefore = state.at({0, 1}) / state.at({1, 1});
    EXPECT_NEAR(std::abs(a01 / a11 - ratioBefore), 0.0, 1e-10);
    EXPECT_EQ(dd.checkInvariants(), "");
}

TEST(DDTransform, RenormalizeTracksRemovedMassInRootWeight) {
    // Equal four-amplitude state: cutting one amplitude leaves norm sqrt(3/4).
    const StateVector state = states::uniform({2, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const NodeRef child = dd.node(dd.rootNode()).edges[0].node;
    dd.cutEdge(child, 0);
    dd.renormalize();
    EXPECT_NEAR(std::abs(dd.rootWeight()), std::sqrt(0.75), 1e-12);
    dd.normalizeRoot();
    EXPECT_NEAR(std::abs(dd.rootWeight()), 1.0, 1e-12);
    EXPECT_NEAR(dd.normSquared(), 1.0, 1e-10);
}

TEST(DDTransform, CuttingWholeNodeDropsSubtree) {
    const StateVector state = states::uniform({3, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    dd.cutEdge(dd.rootNode(), 2);
    dd.renormalize();
    EXPECT_NEAR(std::abs(dd.amplitudeOf({2, 0})), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(dd.amplitudeOf({2, 1})), 0.0, 1e-12);
    EXPECT_EQ(dd.checkInvariants(), "");
}

TEST(DDTransform, NodesDyingFromCutsAreDropped) {
    const StateVector state = states::uniform({2, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    // Cut both leaf edges of the root's child 0: the child dies and the
    // root's edge 0 must become a stub after renormalization.
    const NodeRef child = dd.node(dd.rootNode()).edges[0].node;
    dd.cutEdge(child, 0);
    dd.cutEdge(child, 1);
    dd.renormalize();
    EXPECT_TRUE(dd.node(dd.rootNode()).edges[0].isZeroStub());
    EXPECT_EQ(dd.checkInvariants(), "");
}

TEST(DDTransform, CuttingEverythingYieldsEmptyDiagram) {
    const StateVector state = StateVector::basis({2, 2}, {0, 0});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const NodeRef child = dd.node(dd.rootNode()).edges[0].node;
    dd.cutEdge(child, 0);
    dd.renormalize();
    EXPECT_EQ(dd.rootNode(), kNoNode);
    EXPECT_NEAR(dd.normSquared(), 0.0, 1e-12);
}

TEST(DDTransform, ReduceMergesIdenticalSubtrees) {
    // Uniform product state: every node at one level is identical.
    const StateVector state = states::uniform({3, 4, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const auto before = dd.nodeCount(NodeCountMode::Internal);
    EXPECT_EQ(before, 1U + 3U + 12U);
    const std::size_t merged = dd.reduce();
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), 3U);
    EXPECT_EQ(merged, before - 3U);
    // Reduction must preserve semantics exactly.
    EXPECT_NEAR(dd.fidelityWith(state), 1.0, 1e-10);
    EXPECT_EQ(dd.checkInvariants(), "");
}

TEST(DDTransform, ReducePreservesRandomStates) {
    Rng rng(23);
    const StateVector state = states::random({3, 6, 2}, rng);
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    dd.reduce();
    // A continuous random state has no identical sub-trees; nothing merges,
    // and the amplitudes stay exact either way.
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), 22U);
    EXPECT_NEAR(dd.fidelityWith(state), 1.0, 1e-10);
}

TEST(DDTransform, ReduceIsIdempotent) {
    const StateVector state = states::ghz({3, 6, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    dd.reduce();
    const auto afterFirst = dd.nodeCount(NodeCountMode::Internal);
    EXPECT_EQ(dd.reduce(), 0U);
    EXPECT_EQ(dd.nodeCount(NodeCountMode::Internal), afterFirst);
}

TEST(DDTransform, GarbageCollectCompactsPool) {
    const StateVector state = states::uniform({3, 4, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    dd.reduce();
    const auto reachable = dd.nodeCount(NodeCountMode::Internal);
    EXPECT_LT(reachable, dd.poolSize());
    dd.garbageCollect();
    EXPECT_EQ(dd.poolSize(), reachable + 1U); // + the terminal
    EXPECT_NEAR(dd.fidelityWith(state), 1.0, 1e-10);
    EXPECT_EQ(dd.checkInvariants(), "");
}

TEST(DDTransform, GarbageCollectOnEmptyDiagram) {
    const StateVector state({2, 2}, std::vector<Complex>(4, Complex{0.0, 0.0}));
    DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    dd.garbageCollect();
    EXPECT_EQ(dd.rootNode(), kNoNode);
}

TEST(DDTransform, DotExportMentionsAllLevels) {
    const StateVector state = states::ghz({3, 2});
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
    const std::string dot = dd.toDot();
    EXPECT_NE(dot.find("digraph DD"), std::string::npos);
    EXPECT_NE(dot.find("q1"), std::string::npos);
    EXPECT_NE(dot.find("q0"), std::string::npos);
    EXPECT_NE(dot.find("root"), std::string::npos);
}

} // namespace
} // namespace mqsp
