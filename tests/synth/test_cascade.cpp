#include "mqsp/synth/rotation_cascade.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

std::vector<Complex> basisE0(std::size_t dim) {
    std::vector<Complex> v(dim, Complex{0.0, 0.0});
    v[0] = Complex{1.0, 0.0};
    return v;
}

void expectRealizes(const std::vector<Complex>& weights, double tol = 1e-10) {
    const auto steps = cascadeFor(weights);
    const auto out = applyCascade(steps, basisE0(weights.size()));
    ASSERT_EQ(out.size(), weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        EXPECT_NEAR(std::abs(out[i] - weights[i]), 0.0, tol)
            << "level " << i << ": got " << toString(out[i]) << " want "
            << toString(weights[i]);
    }
}

TEST(Cascade, RejectsSingleLevel) {
    EXPECT_THROW((void)cascadeFor({Complex{1.0, 0.0}}), InvalidArgumentError);
}

TEST(Cascade, EmitsExactlyDimSteps) {
    // Paper-faithful counting: one phase + (d-1) rotations per node.
    for (std::size_t dim : {2U, 3U, 6U, 9U}) {
        std::vector<Complex> w(dim, Complex{1.0 / std::sqrt(double(dim)), 0.0});
        const auto steps = cascadeFor(w);
        EXPECT_EQ(steps.size(), dim);
        EXPECT_EQ(steps[0].kind, CascadeStep::Kind::Phase);
        for (std::size_t i = 1; i < steps.size(); ++i) {
            EXPECT_EQ(steps[i].kind, CascadeStep::Kind::Rotation);
            EXPECT_EQ(steps[i].levelA, i - 1);
            EXPECT_EQ(steps[i].levelB, i);
        }
    }
}

TEST(Cascade, TrivialE0IsAllIdentity) {
    const auto steps = cascadeFor({Complex{1.0, 0.0}, Complex{0.0, 0.0}});
    for (const auto& step : steps) {
        EXPECT_NEAR(step.theta, 0.0, 1e-12);
    }
}

TEST(Cascade, RealizesRealUniform) {
    const double a = 1.0 / std::sqrt(3.0);
    expectRealizes({{a, 0.0}, {a, 0.0}, {a, 0.0}});
}

TEST(Cascade, RealizesSingleHighLevel) {
    // Amplitude entirely on the last level: the rotations walk it down the
    // adjacent-pair chain.
    expectRealizes({{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}});
}

TEST(Cascade, RealizesNegativeAndComplexPhases) {
    const double a = 1.0 / std::sqrt(3.0);
    expectRealizes({{-a, 0.0}, {0.0, a}, {a, 0.0}});
}

TEST(Cascade, RealizesPhaseOnLevelZero) {
    // The leading phase rotation must fix arg(w_0) exactly.
    const double a = 1.0 / std::sqrt(2.0);
    expectRealizes({{0.0, a}, {a, 0.0}});
    expectRealizes({{-a, 0.0}, {0.0, -a}});
}

TEST(Cascade, RealizesVectorWithInteriorZeros) {
    const double a = 1.0 / std::sqrt(2.0);
    expectRealizes({{a, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, -a}});
    expectRealizes({{0.0, 0.0}, {a, 0.0}, {0.0, 0.0}, {a, 0.0}});
    expectRealizes({{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}});
}

class CascadeRandomProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CascadeRandomProperty, RealizesRandomNormalizedVectors) {
    const std::size_t dim = GetParam();
    Rng rng(1000 + dim);
    for (int round = 0; round < 25; ++round) {
        std::vector<Complex> w(dim);
        double norm = 0.0;
        for (auto& value : w) {
            value = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
            norm += squaredMagnitude(value);
        }
        norm = std::sqrt(norm);
        for (auto& value : w) {
            value /= norm;
        }
        expectRealizes(w);
    }
}

TEST_P(CascadeRandomProperty, RealizesRandomSparseVectors) {
    const std::size_t dim = GetParam();
    Rng rng(2000 + dim);
    for (int round = 0; round < 25; ++round) {
        std::vector<Complex> w(dim, Complex{0.0, 0.0});
        // Between 1 and dim nonzero entries at random positions.
        const auto nnz = 1 + rng.uniformIndex(dim);
        double norm = 0.0;
        for (std::uint64_t i = 0; i < nnz; ++i) {
            const auto at = rng.uniformIndex(dim);
            w[at] = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        }
        for (const auto& value : w) {
            norm += squaredMagnitude(value);
        }
        if (norm == 0.0) {
            w[0] = Complex{1.0, 0.0};
            norm = 1.0;
        }
        norm = std::sqrt(norm);
        for (auto& value : w) {
            value /= norm;
        }
        expectRealizes(w);
    }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, CascadeRandomProperty,
                         ::testing::Values(2U, 3U, 4U, 5U, 6U, 7U, 9U, 12U));

} // namespace
} // namespace mqsp
