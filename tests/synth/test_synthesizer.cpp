#include "mqsp/synth/synthesizer.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/rng.hpp"

#include <gtest/gtest.h>

namespace mqsp {
namespace {

void expectPrepares(const StateVector& target, const Circuit& circuit, double tol = 1e-9) {
    EXPECT_NEAR(Simulator::preparationFidelity(circuit, target), 1.0, tol);
}

TEST(Synthesizer, EmptyDiagramGivesEmptyCircuit) {
    const StateVector zero({2, 2}, std::vector<Complex>(4, Complex{0.0, 0.0}));
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(zero);
    const Circuit circuit = synthesize(dd);
    EXPECT_TRUE(circuit.empty());
}

TEST(Synthesizer, PreparesBasisState) {
    const StateVector target = StateVector::basis({3, 6, 2}, {2, 4, 1});
    const auto result = prepareExact(target);
    expectPrepares(target, result.circuit);
}

TEST(Synthesizer, PreparesGhzOnQutritPair) {
    const StateVector target = states::ghz({3, 3});
    const auto result = prepareExact(target);
    expectPrepares(target, result.circuit);
}

TEST(Synthesizer, PreparesStatesWithComplexPhases) {
    StateVector target({3, 2});
    target[0] = Complex{0.0, 0.0};
    target.at({0, 0}) = Complex{0.0, 0.5};
    target.at({1, 1}) = Complex{-0.5, 0.0};
    target.at({2, 0}) = Complex{0.5, -0.5};
    target.normalize();
    const auto result = prepareExact(target);
    expectPrepares(target, result.circuit);
}

TEST(Synthesizer, PaperFaithfulOpCountPerNode) {
    // GHZ [3,6,2]: nonzero tree nodes contribute dim ops each:
    // 3 + 2*6 + 2*2 = 19 — Table 1's "Operations" for this row.
    const auto result = prepareExact(states::ghz({3, 6, 2}));
    EXPECT_EQ(result.circuit.numOperations(), 19U);
}

TEST(Synthesizer, ElisionModeShortensCircuits) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const StateVector target = states::ghz({3, 6, 2});
    const auto faithful = prepareExact(target);
    const auto short_ = prepareExact(target, lean);
    EXPECT_LT(short_.circuit.numOperations(), faithful.circuit.numOperations());
    expectPrepares(target, short_.circuit);
    expectPrepares(target, faithful.circuit);
}

TEST(Synthesizer, ControlsFollowThePathFromRoot) {
    const auto result = prepareExact(states::ghz({3, 3, 3}));
    // Root node ops carry no controls; level-1 ops carry one control on the
    // root qudit; level-2 ops carry two controls.
    for (const auto& op : result.circuit.operations()) {
        EXPECT_EQ(op.numControls(), op.target) << op.toString();
        for (std::size_t i = 0; i < op.controls.size(); ++i) {
            EXPECT_EQ(op.controls[i].qudit, i);
        }
    }
}

TEST(Synthesizer, ControlLevelsEncodeTheEdgeIndex) {
    // For GHZ, the branch through level k is controlled at level k (the
    // paper's Example 5 semantics).
    const auto result = prepareExact(states::ghz({3, 3}));
    for (const auto& op : result.circuit.operations()) {
        if (op.target == 1) {
            ASSERT_EQ(op.numControls(), 1U);
            // The level-1 node reached via edge k holds amplitude on level k.
            EXPECT_EQ(op.controls[0].qudit, 0U);
        }
    }
}

TEST(Synthesizer, TensorProductElisionDropsControls) {
    // Product state: (uniform qutrit) x (uniform qubit). After reduction the
    // root is a tensor node, so the qubit ops lose their control.
    const StateVector target = states::uniform({3, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    dd.reduce();

    SynthesisOptions withElision;
    withElision.elideTensorProductControls = true;
    const Circuit elided = synthesize(dd, withElision);
    SynthesisOptions without;
    without.elideTensorProductControls = false;
    const Circuit plain = synthesize(dd, without);

    EXPECT_LT(elided.stats().totalControls, plain.stats().totalControls);
    EXPECT_EQ(elided.stats().maxControls, 0U); // fully product state
    expectPrepares(target, elided);
    expectPrepares(target, plain);
}

TEST(Synthesizer, LinearComplexityInDiagramNodes) {
    // Operations = sum of dims over nonzero nodes <= dim * nodes: the op
    // count scales with the diagram, not the Hilbert space.
    Rng rng(3);
    const StateVector sparse = states::randomSparse({4, 4, 4, 4}, 4, rng);
    const auto result = prepareExact(sparse);
    // 4 nonzero amplitudes: at most 4 nodes per level, each emitting <= 4 ops.
    EXPECT_LE(result.circuit.numOperations(), 4U * 4U * 4U);
    expectPrepares(sparse, result.circuit);
}

TEST(Synthesizer, ApproximatedPipelineMeetsFidelityThreshold) {
    Rng rng(55);
    const StateVector target = states::random({3, 6, 2}, rng);
    const auto result = prepareApproximated(target, 0.98);
    const double fidelity = Simulator::preparationFidelity(result.circuit, target);
    EXPECT_GE(fidelity + 1e-9, 0.98);
    EXPECT_NEAR(fidelity, result.approx.fidelity, 1e-8);
}

TEST(Synthesizer, ApproximatedPipelineIsExactOnStructuredStates) {
    for (const auto& dims : {Dimensions{3, 6, 2}, Dimensions{9, 5, 6, 3}}) {
        const StateVector target = states::wState(dims);
        const auto result = prepareApproximated(target, 0.98);
        expectPrepares(target, result.circuit);
    }
}

struct SynthesizerCase {
    std::string name;
    Dimensions dims;
};

class SynthesizerFidelityProperty : public ::testing::TestWithParam<SynthesizerCase> {};

TEST_P(SynthesizerFidelityProperty, ExactPipelineReachesFidelityOne) {
    const auto& param = GetParam();
    Rng rng(7);
    std::vector<StateVector> targets;
    targets.push_back(states::ghz(param.dims));
    targets.push_back(states::wState(param.dims));
    targets.push_back(states::embeddedWState(param.dims));
    targets.push_back(states::uniform(param.dims));
    targets.push_back(states::random(param.dims, rng));
    targets.push_back(states::random(param.dims, rng, states::RandomKind::PhaseOnly));
    targets.push_back(states::randomSparse(
        param.dims, 1 + rng.uniformIndex(MixedRadix(param.dims).totalDimension()), rng));

    for (const auto& target : targets) {
        const auto result = prepareExact(target);
        EXPECT_NEAR(Simulator::preparationFidelity(result.circuit, target), 1.0, 1e-9);
        // Identity elision must never change semantics.
        SynthesisOptions lean;
        lean.emitIdentityOperations = false;
        const auto leanResult = prepareExact(target, lean);
        EXPECT_NEAR(Simulator::preparationFidelity(leanResult.circuit, target), 1.0, 1e-9);
        EXPECT_LE(leanResult.circuit.numOperations(), result.circuit.numOperations());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registers, SynthesizerFidelityProperty,
    ::testing::Values(SynthesizerCase{"qubits2", {2, 2}},
                      SynthesizerCase{"qutritPair", {3, 3}},
                      SynthesizerCase{"paper3q", {3, 6, 2}},
                      SynthesizerCase{"paper4q", {9, 5, 6, 3}},
                      SynthesizerCase{"mixed4", {2, 3, 4, 2}},
                      SynthesizerCase{"qubits5", {2, 2, 2, 2, 2}}),
    [](const ::testing::TestParamInfo<SynthesizerCase>& paramInfo) { return paramInfo.param.name; });

} // namespace
} // namespace mqsp
