#include "mqsp/transpile/transpiler.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mqsp {
namespace {

/// Check that the lowered circuit acts like the original on EVERY basis
/// state of the original register (ancillas in and out at |0>). This is a
/// full process check, not just one state.
void expectEquivalent(const Circuit& original, const TranspileResult& lowered,
                      double tol = 1e-9) {
    const MixedRadix radix = original.radix();
    const MixedRadix extended = lowered.circuit.radix();
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        // Original register basis state...
        StateVector input(original.dimensions());
        input[0] = Complex{0.0, 0.0};
        input[index] = Complex{1.0, 0.0};
        const StateVector want = Simulator::run(original, input);

        // ... embedded with ancillas at |0> (ancillas are least significant,
        // so the embedded flat index is index * 2^numAncillas).
        StateVector extendedInput(lowered.circuit.dimensions());
        extendedInput[0] = Complex{0.0, 0.0};
        std::uint64_t scale = 1;
        for (std::size_t a = 0; a < lowered.numAncillas; ++a) {
            scale *= 2;
        }
        extendedInput[index * scale] = Complex{1.0, 0.0};
        const StateVector got = Simulator::run(lowered.circuit, extendedInput);

        // Every amplitude must match with ancillas back at |0>.
        for (std::uint64_t out = 0; out < extended.totalDimension(); ++out) {
            const Complex expected =
                (out % scale == 0) ? want[out / scale] : Complex{0.0, 0.0};
            EXPECT_NEAR(std::abs(got[out] - expected), 0.0, tol)
                << "input " << index << " output " << out;
        }
    }
}

TEST(Transpiler, PassesThroughUncontrolledOps) {
    Circuit circuit({3, 2});
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::givens(1, 0, 1, 0.7, 0.2, {{0, 2}}));
    const auto result = transpileToTwoQudit(circuit);
    EXPECT_EQ(result.numAncillas, 0U);
    EXPECT_EQ(result.circuit.numOperations(), 2U);
    expectEquivalent(circuit, result);
}

TEST(Transpiler, DoublyControlledRotationOnQubits) {
    Circuit circuit({2, 2, 2});
    circuit.append(Operation::givens(2, 0, 1, 1.234, 0.4, {{0, 1}, {1, 1}}));
    const auto result = transpileToTwoQudit(circuit);
    EXPECT_EQ(result.numAncillas, 0U);
    for (const auto& op : result.circuit.operations()) {
        EXPECT_LE(op.numControls(), 1U);
    }
    expectEquivalent(circuit, result);
}

TEST(Transpiler, DoublyControlledRotationOnMixedDims) {
    // The critical case the plain Barenco identity gets wrong: a control
    // qudit with a *third* level. The block construction must cancel the
    // stray rotations on every non-matching level.
    Circuit circuit({4, 3, 2});
    circuit.append(Operation::givens(2, 0, 1, 0.913, -0.7, {{0, 2}, {1, 1}}));
    const auto result = transpileToTwoQudit(circuit);
    expectEquivalent(circuit, result);
}

TEST(Transpiler, DoublyControlledPhaseRotation) {
    Circuit circuit({3, 3, 3});
    circuit.append(Operation::phase(2, 0, 2, 0.81, {{0, 1}, {1, 2}}));
    const auto result = transpileToTwoQudit(circuit);
    expectEquivalent(circuit, result);
}

TEST(Transpiler, TriplyControlledUsesOneAncilla) {
    Circuit circuit({2, 3, 2, 2});
    circuit.append(Operation::givens(3, 0, 1, 2.1, 0.9, {{0, 1}, {1, 2}, {2, 1}}));
    const auto result = transpileToTwoQudit(circuit);
    EXPECT_EQ(result.numAncillas, 1U);
    for (const auto& op : result.circuit.operations()) {
        EXPECT_LE(op.numControls(), 1U);
    }
    expectEquivalent(circuit, result);
}

TEST(Transpiler, QuadruplyControlledUsesTwoAncillas) {
    Circuit circuit({2, 2, 2, 2, 2});
    circuit.append(
        Operation::givens(4, 0, 1, 1.5, -0.3, {{0, 1}, {1, 1}, {2, 1}, {3, 1}}));
    const auto result = transpileToTwoQudit(circuit);
    EXPECT_EQ(result.numAncillas, 2U);
    expectEquivalent(circuit, result);
}

TEST(Transpiler, RejectsMultiControlledHadamard) {
    Circuit circuit({3, 3, 3});
    circuit.append(Operation::hadamard(2, {{0, 1}, {1, 1}}));
    EXPECT_THROW((void)transpileToTwoQudit(circuit), InvalidArgumentError);
}

TEST(Transpiler, SequenceOfMultiControlledOps) {
    Circuit circuit({3, 2, 2});
    circuit.append(Operation::hadamard(0));
    circuit.append(Operation::givens(1, 0, 1, 0.8, 0.1, {{0, 1}}));
    circuit.append(Operation::givens(2, 0, 1, 1.1, -0.5, {{0, 2}, {1, 1}}));
    circuit.append(Operation::phase(2, 0, 1, 0.4, {{0, 0}, {1, 0}}));
    const auto result = transpileToTwoQudit(circuit);
    expectEquivalent(circuit, result);
}

TEST(Transpiler, EstimateMatchesEmittedCountForTwoControls) {
    Circuit circuit({4, 3, 2});
    circuit.append(Operation::givens(2, 0, 1, 0.9, 0.0, {{0, 2}, {1, 1}}));
    const auto result = transpileToTwoQudit(circuit);
    EXPECT_EQ(estimateTwoQuditCost(circuit), result.circuit.numOperations());
}

TEST(Transpiler, EstimateMatchesEmittedCountForChains) {
    Circuit circuit({2, 3, 2, 2});
    circuit.append(Operation::givens(3, 0, 1, 2.1, 0.9, {{0, 1}, {1, 2}, {2, 1}}));
    const auto result = transpileToTwoQudit(circuit);
    EXPECT_EQ(estimateTwoQuditCost(circuit), result.circuit.numOperations());
}

TEST(Transpiler, EstimateGrowsLinearlyInControlCount) {
    // The paper cites [36] for linear-complexity transpilation; the ancilla
    // chain adds a constant-size AND block per extra control.
    std::vector<std::size_t> costs;
    for (std::size_t k = 2; k <= 6; ++k) {
        Dimensions dims(k + 1, Dimension{2});
        Circuit circuit(dims);
        std::vector<Control> controls;
        for (std::size_t c = 0; c < k; ++c) {
            controls.push_back({c, 1});
        }
        circuit.append(Operation::givens(k, 0, 1, 1.0, 0.0, controls));
        costs.push_back(estimateTwoQuditCost(circuit));
    }
    for (std::size_t i = 1; i < costs.size(); ++i) {
        EXPECT_EQ(costs[i] - costs[i - 1], costs[1] - costs[0])
            << "non-linear growth at k=" << i + 2;
    }
}

TEST(Transpiler, EndToEndSynthesizedGhzCircuit) {
    const StateVector target = states::ghz({3, 3});
    const auto prep = prepareExact(target);
    const auto lowered = transpileToTwoQudit(prep.circuit);
    // Run the lowered circuit from zero: the original-register state must be
    // the GHZ state with ancillas (if any) back at zero.
    const StateVector out = Simulator::runFromZero(lowered.circuit);
    std::uint64_t scale = 1;
    for (std::size_t a = 0; a < lowered.numAncillas; ++a) {
        scale *= 2;
    }
    Complex overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < target.size(); ++i) {
        overlap += std::conj(target[i]) * out[i * scale];
    }
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-9);
}

TEST(Transpiler, EndToEndRandomStateWithDeepControls) {
    Rng rng(31);
    const StateVector target = states::random({2, 3, 2}, rng);
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    const auto lowered = transpileToTwoQudit(prep.circuit);
    const StateVector out = Simulator::runFromZero(lowered.circuit);
    std::uint64_t scale = 1;
    for (std::size_t a = 0; a < lowered.numAncillas; ++a) {
        scale *= 2;
    }
    Complex overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < target.size(); ++i) {
        overlap += std::conj(target[i]) * out[i * scale];
    }
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-8);
}

TEST(Transpiler, FewerControlsMeansFewerTwoQuditOps) {
    // The §4.3 claim: control elision (tensor reduction) translates into
    // cheaper transpiled circuits.
    const StateVector target = states::uniform({3, 3, 2});
    DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    dd.reduce();
    SynthesisOptions with;
    with.elideTensorProductControls = true;
    SynthesisOptions without;
    without.elideTensorProductControls = false;
    const std::size_t cheap = estimateTwoQuditCost(synthesize(dd, with));
    const std::size_t costly = estimateTwoQuditCost(synthesize(dd, without));
    EXPECT_LT(cheap, costly);
}

} // namespace
} // namespace mqsp
