// Scaling: the synthesis routine is linear in the number of decision-diagram
// nodes (§3.3). This bench grows random registers and reports DD size and
// synthesis time; time divided by dd_nodes should stay flat, confirming the
// linear-complexity claim. The timed region is synthesize() alone (diagram
// construction is setup).

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/synth/synthesizer.hpp"

#include <stdexcept>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    const std::vector<Dimensions> registers{
        {3, 2},          {3, 3, 2},       {3, 4, 3, 2},    {4, 4, 3, 3, 2},
        {4, 4, 4, 3, 3}, {5, 4, 4, 4, 3}, {5, 5, 4, 4, 4}, {6, 5, 5, 4, 4, 2},
    };

    Harness harness("scaling_synthesis");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& dims : registers) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = "random";
        spec.dims = dims;
        spec.reps = 10;
        spec.smoke = dims.size() == 2;
        spec.body = [dims, caseSeed](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            const StateVector state = states::random(dims, rng);
            const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
            Circuit circuit;
            rep.time([&] { circuit = synthesize(dd); });
            rep.metric("amplitudes", static_cast<double>(state.size()));
            rep.metric("dd_nodes",
                       static_cast<double>(dd.nodeCount(NodeCountMode::Internal)));
            rep.metric("operations", static_cast<double>(circuit.numOperations()));
            // Keep the synthesizer honest.
            if (circuit.numOperations() == 0) {
                throw std::runtime_error("unexpected empty circuit");
            }
        };
        harness.add(std::move(spec));
    }

    // Thread-scaling rows on the largest register: the cascade solves fan
    // out across pool workers (compute-parallel / emit-sequential, see
    // synth/synthesizer.cpp), so `operations` and `dd_nodes` are identical
    // at every width — all four rows feed the metrics gate; only timings
    // scale. The harness pins the case's thread count around the body.
    {
        const Dimensions dims{6, 5, 5, 4, 4, 2};
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        for (const unsigned threads : {1U, 2U, 4U, 8U}) {
            CaseSpec spec;
            spec.name = "random scaling";
            spec.dims = dims;
            spec.threads = threads;
            spec.reps = 10;
            spec.smoke = threads == 4;
            spec.body = [dims, caseSeed](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector state = states::random(dims, rng);
                const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
                Circuit circuit;
                rep.time([&] { circuit = synthesize(dd); });
                rep.metric("amplitudes", static_cast<double>(state.size()));
                rep.metric("dd_nodes",
                           static_cast<double>(dd.nodeCount(NodeCountMode::Internal)));
                rep.metric("operations", static_cast<double>(circuit.numOperations()));
                if (circuit.numOperations() == 0) {
                    throw std::runtime_error("unexpected empty circuit");
                }
            };
            harness.add(std::move(spec));
        }
    }
    return harness.main(argc, argv);
}
