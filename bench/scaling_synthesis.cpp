// Scaling: the synthesis routine is linear in the number of decision-diagram
// nodes (§3.3). This bench grows random registers and reports DD size,
// synthesis time, and the time-per-node ratio, which should stay flat.

#include "bench_common.hpp"

#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    const std::vector<Dimensions> registers{
        {3, 2},          {3, 3, 2},       {3, 4, 3, 2},   {4, 4, 3, 3, 2},
        {4, 4, 4, 3, 3}, {5, 4, 4, 4, 3}, {5, 5, 4, 4, 4}, {6, 5, 5, 4, 4, 2},
    };
    constexpr int kRuns = 10;

    std::printf("Synthesis scaling on dense random states (%d runs each)\n\n", kRuns);
    std::printf("%-22s %10s %12s %14s %16s\n", "register", "amplitudes", "DD nodes",
                "synth[ms]", "ns per node");

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& dims : registers) {
        double nodes = 0.0;
        double seconds = 0.0;
        std::uint64_t amplitudes = 0;
        for (int run = 0; run < kRuns; ++run) {
            Rng rng(seeder.childSeed());
            const StateVector state = states::random(dims, rng);
            amplitudes = state.size();
            const DecisionDiagram dd = DecisionDiagram::fromStateVector(state);
            nodes += static_cast<double>(dd.nodeCount(NodeCountMode::Internal));
            const WallTimer timer;
            const Circuit circuit = synthesize(dd);
            seconds += timer.elapsedSeconds();
            // Keep the optimizer honest.
            if (circuit.numOperations() == 0) {
                std::printf("unexpected empty circuit\n");
                return 1;
            }
        }
        nodes /= kRuns;
        seconds /= kRuns;
        std::printf("%-22s %10llu %12.0f %14.3f %16.1f\n",
                    formatDimensionSpec(dims).c_str(),
                    static_cast<unsigned long long>(amplitudes), nodes,
                    seconds * 1e3, seconds * 1e9 / nodes);
    }
    std::printf("\nFlat ns-per-node confirms the linear-complexity claim.\n");
    return 0;
}
