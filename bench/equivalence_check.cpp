// DD-native equivalence checking (matrix decision diagrams, refs [28]/[31])
// through the dd evaluation backend: verify that every transformation stage
// of the toolchain — identity elision, peephole optimization, transpilation
// to two-level gates — preserves the *full unitary* of the synthesized
// circuit, not merely its action on |0...0>. Reports diagram sizes; an
// inequivalence fails the case. The timed region is the backend's
// equivalence checks (matrix-DD construction and comparison).

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/mdd/matrix_dd.hpp"
#include "mqsp/opt/optimizer.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <stdexcept>
#include <string>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    struct EquivalenceCase {
        const char* label;
        Dimensions dims;
        bool smoke = false;
    };
    const EquivalenceCase cases[] = {
        {"GHZ", {3, 6, 2}, true},
        {"W", {3, 6, 2}, false},
        {"Emb. W", {3, 6, 2}, false},
        {"GHZ", {2, 3, 2, 2}, false},
        {"random", {3, 3, 2}, false},
    };

    Harness harness("equivalence_check");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& testCase : cases) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = testCase.label;
        spec.dims = testCase.dims;
        spec.backend = "dd";
        spec.reps = 5;
        spec.smoke = testCase.smoke;
        spec.body = [label = std::string(testCase.label), dims = testCase.dims,
                     caseSeed](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            StateVector target({2});
            if (label == "GHZ") {
                target = states::ghz(dims);
            } else if (label == "W") {
                target = states::wState(dims);
            } else if (label == "Emb. W") {
                target = states::embeddedWState(dims);
            } else {
                target = states::random(dims, rng);
            }

            SynthesisOptions faithful;
            const auto full = prepareExact(target, faithful);
            SynthesisOptions leanOptions;
            leanOptions.emitIdentityOperations = false;
            const auto lean = prepareExact(target, leanOptions);

            Circuit optimized = full.circuit;
            (void)optimizeCircuit(optimized);

            // Transpile only when no ancillas are needed (same register).
            const auto lowered = transpileToTwoQudit(lean.circuit);

            bool elidedOk = false;
            bool optimizedOk = false;
            bool transpiledOk = true;
            const DdBackend backend;
            // Size metric outside the timed region: the measured quantity is
            // the backend's equivalence checks. Each check compiles both
            // circuits (the stateless-interface cost), so the reference is
            // rebuilt per comparison — unlike the pre-backend code, which
            // amortized it across the three stages.
            const std::uint64_t nodes = MatrixDD::fromCircuit(full.circuit).nodeCount();
            rep.time([&] {
                elidedOk = backend.circuitsEquivalent(full.circuit, lean.circuit, 1e-8);
                optimizedOk = backend.circuitsEquivalent(full.circuit, optimized, 1e-8);
                if (lowered.numAncillas == 0) {
                    transpiledOk =
                        backend.circuitsEquivalent(full.circuit, lowered.circuit, 1e-7);
                }
            });

            rep.metric("ops", static_cast<double>(full.circuit.numOperations()));
            rep.metric("nodes", static_cast<double>(nodes));
            rep.metric("eq_elided", elidedOk ? 1.0 : 0.0);
            rep.metric("eq_optimized", optimizedOk ? 1.0 : 0.0);
            if (lowered.numAncillas == 0) {
                rep.metric("eq_transpiled", transpiledOk ? 1.0 : 0.0);
            }
            if (!elidedOk || !optimizedOk || !transpiledOk) {
                throw std::runtime_error("toolchain stage broke unitary equivalence");
            }
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
