// DD-native equivalence checking (matrix decision diagrams, refs [28]/[31]):
// verify that every transformation stage of the toolchain — identity
// elision, peephole optimization, transpilation to two-level gates —
// preserves the *full unitary* of the synthesized circuit, not merely its
// action on |0...0>. Reports diagram sizes and check times.

#include "bench_common.hpp"

#include "mqsp/mdd/matrix_dd.hpp"
#include "mqsp/opt/optimizer.hpp"
#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    struct Case {
        const char* label;
        Dimensions dims;
    };
    const Case cases[] = {
        {"GHZ", {3, 6, 2}},
        {"W", {3, 6, 2}},
        {"Emb. W", {3, 6, 2}},
        {"GHZ", {2, 3, 2, 2}},
        {"random", {3, 3, 2}},
    };

    std::printf("Unitary-level equivalence of toolchain stages (matrix DDs)\n\n");
    std::printf("%-10s %-14s %8s %8s %9s %9s %9s %10s\n", "state", "register", "ops",
                "nodes", "==elided", "==opt", "==2q", "time[ms]");

    Rng rng(Rng::kDefaultSeed);
    for (const auto& testCase : cases) {
        StateVector target({2});
        const std::string label = testCase.label;
        if (label == "GHZ") {
            target = states::ghz(testCase.dims);
        } else if (label == "W") {
            target = states::wState(testCase.dims);
        } else if (label == "Emb. W") {
            target = states::embeddedWState(testCase.dims);
        } else {
            target = states::random(testCase.dims, rng);
        }

        SynthesisOptions faithful;
        const auto full = prepareExact(target, faithful);
        SynthesisOptions leanOptions;
        leanOptions.emitIdentityOperations = false;
        const auto lean = prepareExact(target, leanOptions);

        Circuit optimized = full.circuit;
        (void)optimizeCircuit(optimized);

        const WallTimer timer;
        const MatrixDD reference = MatrixDD::fromCircuit(full.circuit);
        const bool elidedOk = reference.equivalentUpToGlobalPhase(
            MatrixDD::fromCircuit(lean.circuit), 1e-8);
        const bool optimizedOk = reference.equivalentUpToGlobalPhase(
            MatrixDD::fromCircuit(optimized), 1e-8);

        // Transpile only when no ancillas are needed (same register).
        bool transpiledOk = true;
        const auto lowered = transpileToTwoQudit(lean.circuit);
        if (lowered.numAncillas == 0) {
            transpiledOk = reference.equivalentUpToGlobalPhase(
                MatrixDD::fromCircuit(lowered.circuit), 1e-7);
        }
        const double ms = timer.elapsedSeconds() * 1e3;

        std::printf("%-10s %-14s %8zu %8llu %9s %9s %9s %10.2f\n", testCase.label,
                    formatDimensionSpec(testCase.dims).c_str(),
                    full.circuit.numOperations(),
                    static_cast<unsigned long long>(reference.nodeCount()),
                    elidedOk ? "yes" : "NO", optimizedOk ? "yes" : "NO",
                    lowered.numAncillas == 0 ? (transpiledOk ? "yes" : "NO") : "(anc)",
                    ms);
        if (!elidedOk || !optimizedOk || !transpiledOk) {
            return 1;
        }
    }
    return 0;
}
