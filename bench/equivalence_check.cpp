// DD-native equivalence checking (matrix decision diagrams, refs [28]/[31]):
// verify that every transformation stage of the toolchain — identity
// elision, peephole optimization, transpilation to two-level gates —
// preserves the *full unitary* of the synthesized circuit, not merely its
// action on |0...0>. Reports diagram sizes; an inequivalence fails the case.
// The timed region is the matrix-DD construction and comparison.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/mdd/matrix_dd.hpp"
#include "mqsp/opt/optimizer.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <stdexcept>
#include <string>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    struct EquivalenceCase {
        const char* label;
        Dimensions dims;
        bool smoke = false;
    };
    const EquivalenceCase cases[] = {
        {"GHZ", {3, 6, 2}, true},
        {"W", {3, 6, 2}, false},
        {"Emb. W", {3, 6, 2}, false},
        {"GHZ", {2, 3, 2, 2}, false},
        {"random", {3, 3, 2}, false},
    };

    Harness harness("equivalence_check");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& testCase : cases) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = testCase.label;
        spec.dims = testCase.dims;
        spec.reps = 5;
        spec.smoke = testCase.smoke;
        spec.body = [label = std::string(testCase.label), dims = testCase.dims,
                     caseSeed](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            StateVector target({2});
            if (label == "GHZ") {
                target = states::ghz(dims);
            } else if (label == "W") {
                target = states::wState(dims);
            } else if (label == "Emb. W") {
                target = states::embeddedWState(dims);
            } else {
                target = states::random(dims, rng);
            }

            SynthesisOptions faithful;
            const auto full = prepareExact(target, faithful);
            SynthesisOptions leanOptions;
            leanOptions.emitIdentityOperations = false;
            const auto lean = prepareExact(target, leanOptions);

            Circuit optimized = full.circuit;
            (void)optimizeCircuit(optimized);

            // Transpile only when no ancillas are needed (same register).
            const auto lowered = transpileToTwoQudit(lean.circuit);

            bool elidedOk = false;
            bool optimizedOk = false;
            bool transpiledOk = true;
            std::uint64_t nodes = 0;
            rep.time([&] {
                const MatrixDD reference = MatrixDD::fromCircuit(full.circuit);
                nodes = reference.nodeCount();
                elidedOk = reference.equivalentUpToGlobalPhase(
                    MatrixDD::fromCircuit(lean.circuit), 1e-8);
                optimizedOk = reference.equivalentUpToGlobalPhase(
                    MatrixDD::fromCircuit(optimized), 1e-8);
                if (lowered.numAncillas == 0) {
                    transpiledOk = reference.equivalentUpToGlobalPhase(
                        MatrixDD::fromCircuit(lowered.circuit), 1e-7);
                }
            });

            rep.metric("ops", static_cast<double>(full.circuit.numOperations()));
            rep.metric("nodes", static_cast<double>(nodes));
            rep.metric("eq_elided", elidedOk ? 1.0 : 0.0);
            rep.metric("eq_optimized", optimizedOk ? 1.0 : 0.0);
            if (lowered.numAncillas == 0) {
                rep.metric("eq_transpiled", transpiledOk ? 1.0 : 0.0);
            }
            if (!elidedOk || !optimizedOk || !transpiledOk) {
                throw std::runtime_error("toolchain stage broke unitary equivalence");
            }
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
