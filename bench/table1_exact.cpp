// Regenerates the "Exact (Averaged)" column group of the paper's Table 1:
// Nodes, DistinctC, Operations, #Controls and Time over 40 runs per row.
//
// Expected against the paper: Nodes, Operations and #Controls match the
// printed values on the structured rows exactly (see EXPERIMENTS.md for the
// four small-row control medians); absolute times are faster (C++ vs the
// authors' Python) but stay sub-second per run, matching the paper's claim.

#include "bench_common.hpp"

#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    std::printf("Table 1 — Exact synthesis (averaged over %d runs)\n\n", kPaperRuns);
    std::printf("%-14s %3s %-22s %10s %10s %12s %10s %10s\n", "Name", "#Q", "Qudits",
                "Nodes", "DistinctC", "Operations", "#Controls", "Time[s]");

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        double nodes = 0.0;
        double distinct = 0.0;
        double operations = 0.0;
        double controls = 0.0;
        double seconds = 0.0;
        for (int run = 0; run < kPaperRuns; ++run) {
            Rng rng(seeder.childSeed());
            const StateVector state = makeState(workload, rng);
            const WallTimer timer;
            const auto result = prepareExact(state);
            seconds += timer.elapsedSeconds();
            nodes += static_cast<double>(
                result.diagram.nodeCount(NodeCountMode::DenseTree));
            distinct += static_cast<double>(result.diagram.distinctComplexCount());
            operations += static_cast<double>(result.circuit.numOperations());
            controls += result.circuit.stats().medianControls;
        }
        const double inv = 1.0 / kPaperRuns;
        std::printf("%-14s %3zu %-22s %10.1f %10.1f %12.1f %10.1f %10.4f\n",
                    workload.family.c_str(), workload.dims.size(),
                    formatDimensionSpec(workload.dims).c_str(), nodes * inv,
                    distinct * inv, operations * inv, controls * inv, seconds * inv);
    }
    return 0;
}
