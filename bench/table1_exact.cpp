// Regenerates the "Exact (Averaged)" column group of the paper's Table 1:
// Nodes, DistinctC, Operations, #Controls and Time over 40 runs per row.
//
// Expected against the paper: Nodes, Operations and #Controls match the
// printed values on the structured rows exactly (see EXPERIMENTS.md for the
// four small-row control medians); absolute times are faster (C++ vs the
// authors' Python) but stay sub-second per run, matching the paper's claim.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/synth/synthesizer.hpp"


int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    Harness harness("table1_exact");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        const bool flagship =
            workload.family == "GHZ State" && workload.dims.size() == 3;
        // The paper's rows stay pinned to one thread (their medians predate
        // the parallel layer); the flagship row re-registers at 4 workers so
        // pool overhead on the synthesis path is tracked per push.
        for (const unsigned threads : {1U, 4U}) {
            if (threads != 1 && !flagship) {
                continue;
            }
            CaseSpec spec;
            spec.name = workload.family;
            spec.dims = workload.dims;
            spec.threads = threads;
            spec.reps = kPaperRuns;
            spec.smoke = flagship && threads == 1;
            spec.body = [workload, caseSeed](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector state = makeState(workload, rng);
                PreparationResult result;
                rep.time([&] { result = prepareExact(state); });
                rep.metric("nodes",
                           static_cast<double>(
                               result.diagram.nodeCount(NodeCountMode::DenseTree)));
                // The actual DAG/tree size of the synthesis diagram — the
                // dd_nodes metric the CI deterministic-metrics gate pins.
                rep.metric("dd_nodes",
                           static_cast<double>(
                               result.diagram.nodeCount(NodeCountMode::Internal)));
                rep.metric("distinct_complex",
                           static_cast<double>(result.diagram.distinctComplexCount()));
                rep.metric("operations",
                           static_cast<double>(result.circuit.numOperations()));
                rep.metric("median_controls", result.circuit.stats().medianControls);
            };
            harness.add(std::move(spec));
        }
    }
    return harness.main(argc, argv);
}
