// Baseline comparison: DD-aware synthesis (zero sub-trees never produce
// operations — the paper's method) against the dense multiplexed-rotation
// baseline (the exhaustive uniformly-controlled cascade that visits every
// node of the full splitting tree, as classical qubit state preparation
// does). The gap is the abstract's claim made concrete: "performance
// directly linked to the size of the decision diagram".

#include "bench_common.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    std::printf("DD-aware synthesis vs dense multiplexor baseline\n\n");
    std::printf("%-14s %-22s %10s %10s %10s %12s\n", "Name", "Qudits", "DD ops",
                "dense ops", "speedup", "verified");

    SynthesisOptions options; // paper-faithful emission for both
    options.elideTensorProductControls = false;

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        Rng rng(seeder.childSeed());
        const StateVector state = makeState(workload, rng);

        const DecisionDiagram sparse = DecisionDiagram::fromStateVector(state);
        const Circuit ddCircuit = synthesize(sparse, options);

        const DecisionDiagram dense = DecisionDiagram::fromStateVectorDense(state);
        const Circuit baseline = synthesize(dense, options);

        // Verify both on registers small enough to simulate instantly.
        const char* verified = "-";
        if (state.size() <= 1024) {
            const bool okA =
                Simulator::preparationFidelity(ddCircuit, state) > 1.0 - 1e-8;
            const bool okB =
                Simulator::preparationFidelity(baseline, state) > 1.0 - 1e-8;
            verified = (okA && okB) ? "both" : "FAILED";
        }
        std::printf("%-14s %-22s %10zu %10zu %9.1fx %12s\n", workload.family.c_str(),
                    formatDimensionSpec(workload.dims).c_str(),
                    ddCircuit.numOperations(), baseline.numOperations(),
                    static_cast<double>(baseline.numOperations()) /
                        static_cast<double>(ddCircuit.numOperations()),
                    verified);
    }
    std::printf("\nStructured states: the DD skips every zero sub-tree (GHZ 6-qudit:\n"
                "73 vs 8656 ops). Dense random states: no zeros to skip, ratio 1.\n");
    return 0;
}
