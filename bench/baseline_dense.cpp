// Baseline comparison: DD-aware synthesis (zero sub-trees never produce
// operations — the paper's method) against the dense multiplexed-rotation
// baseline (the exhaustive uniformly-controlled cascade that visits every
// node of the full splitting tree, as classical qubit state preparation
// does). The gap is the abstract's claim made concrete: "performance
// directly linked to the size of the decision diagram" (structured states:
// the DD skips every zero sub-tree; dense random states: ratio 1). Both
// circuits are verified on registers small enough to simulate instantly;
// a verification failure fails the case. The timed region covers both
// syntheses.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/sim/backend.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <stdexcept>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions options; // paper-faithful emission for both
    options.elideTensorProductControls = false;

    Harness harness("baseline_dense");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = workload.family;
        spec.dims = workload.dims;
        spec.backend = "dense";
        spec.reps = 5;
        spec.smoke = workload.family == "GHZ State" && workload.dims.size() == 3;
        spec.body = [workload, caseSeed, options](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            const StateVector state = makeState(workload, rng);

            Circuit ddCircuit;
            Circuit baseline;
            rep.time([&] {
                const DecisionDiagram sparse = DecisionDiagram::fromStateVector(state);
                ddCircuit = synthesize(sparse, options);
                const DecisionDiagram dense = DecisionDiagram::fromStateVectorDense(state);
                baseline = synthesize(dense, options);
            });

            rep.metric("dd_ops", static_cast<double>(ddCircuit.numOperations()));
            rep.metric("dense_ops", static_cast<double>(baseline.numOperations()));
            rep.metric("speedup", static_cast<double>(baseline.numOperations()) /
                                      static_cast<double>(ddCircuit.numOperations()));
            if (rep.index() == 0 && state.size() <= 1024) {
                // Verification goes through the backend interface; this
                // driver's provenance is the dense backend.
                const DenseBackend verifier;
                const EvalState target(state);
                const bool okA =
                    verifier.preparationFidelity(ddCircuit, target) > 1.0 - 1e-8;
                const bool okB =
                    verifier.preparationFidelity(baseline, target) > 1.0 - 1e-8;
                if (!okA || !okB) {
                    throw std::runtime_error("synthesized circuit failed verification");
                }
                rep.metric("verified", 1.0);
            }
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
