// Baseline comparison: DD-aware synthesis (zero sub-trees never produce
// operations — the paper's method) against the dense multiplexed-rotation
// baseline (the exhaustive uniformly-controlled cascade that visits every
// node of the full splitting tree, as classical qubit state preparation
// does). The gap is the abstract's claim made concrete: "performance
// directly linked to the size of the decision diagram" (structured states:
// the DD skips every zero sub-tree; dense random states: ratio 1). Both
// circuits are verified on registers small enough to simulate instantly;
// a verification failure fails the case. The timed region covers both
// syntheses.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

using namespace mqsp;
using namespace mqsp::bench;

namespace {

/// Dense-backend replay at scale: prepare a structured state on a register
/// of >= 2^24 amplitudes and time the dense simulation of its preparation
/// circuit — the workload the parallel amplitude kernels exist for. One
/// case per pinned thread count, so the wall-vs-cpu columns read as a
/// speedup curve across the t1/tN variants.
void addDenseReplayCase(Harness& harness, const Dimensions& dims, unsigned threads) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    CaseSpec spec;
    spec.name = "GHZ dense replay";
    spec.dims = dims;
    spec.backend = "dense";
    spec.threads = threads;
    spec.reps = 3;
    spec.body = [dims, lean](Repetition& rep) {
        // Target and circuit come from the DD-native pipeline (cheap); the
        // timed region is the dense replay of the circuit. The 2^24-entry
        // target moves straight into its EvalState — no 256 MB copy per rep.
        const Circuit circuit = synthesize(DecisionDiagram::ghzState(dims), lean);
        const EvalState target(states::ghz(dims));
        const auto backend = makeBackend(BackendKind::Dense);

        EvalState out;
        rep.time([&] { out = backend->runFromZero(circuit); });
        rep.metric("amplitudes", static_cast<double>(target.totalDimension()));
        rep.metric("ops", static_cast<double>(circuit.numOperations()));
        const double fidelity = out.fidelityWith(target);
        rep.metric("fidelity", fidelity);
        if (std::abs(fidelity - 1.0) > 1e-6) {
            throw std::runtime_error("dense replay failed verification");
        }
    };
    harness.add(std::move(spec));
}

} // namespace

int main(int argc, char** argv) {
    SynthesisOptions options; // paper-faithful emission for both
    options.elideTensorProductControls = false;

    Harness harness("baseline_dense");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = workload.family;
        spec.dims = workload.dims;
        spec.backend = "dense";
        // Pinned to one thread: these medians predate the parallel layer
        // and stay comparable against the historical baseline.
        spec.threads = 1;
        spec.reps = 5;
        spec.smoke = workload.family == "GHZ State" && workload.dims.size() == 3;
        spec.body = [workload, caseSeed, options](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            const StateVector state = makeState(workload, rng);

            Circuit ddCircuit;
            Circuit baseline;
            rep.time([&] {
                const DecisionDiagram sparse = DecisionDiagram::fromStateVector(state);
                ddCircuit = synthesize(sparse, options);
                const DecisionDiagram dense = DecisionDiagram::fromStateVectorDense(state);
                baseline = synthesize(dense, options);
            });

            rep.metric("dd_ops", static_cast<double>(ddCircuit.numOperations()));
            rep.metric("dense_ops", static_cast<double>(baseline.numOperations()));
            rep.metric("speedup", static_cast<double>(baseline.numOperations()) /
                                      static_cast<double>(ddCircuit.numOperations()));
            if (rep.index() == 0 && state.size() <= 1024) {
                // Verification goes through the backend interface; this
                // driver's provenance is the dense backend.
                const DenseBackend verifier;
                const EvalState target(state);
                const bool okA =
                    verifier.preparationFidelity(ddCircuit, target) > 1.0 - 1e-8;
                const bool okB =
                    verifier.preparationFidelity(baseline, target) > 1.0 - 1e-8;
                if (!okA || !okB) {
                    throw std::runtime_error("synthesized circuit failed verification");
                }
                rep.metric("verified", 1.0);
            }
        };
        harness.add(std::move(spec));
    }

    // The parallel-kernel headline: dense replay on 2^24 amplitudes, once
    // single-threaded and once on four workers (compare the two rows — the
    // harness keys them apart by thread count).
    const Dimensions bigRegister(24, 2);
    addDenseReplayCase(harness, bigRegister, 1);
    addDenseReplayCase(harness, bigRegister, 4);
    return harness.main(argc, argv);
}
