// Ablation E: the peephole optimizer on synthesized circuits. Quantifies
// how much of the paper-faithful operation count the optimizer recovers
// (identity stripping should match the synthesizer's own elision mode) and
// what rotation merging / control-fan collapsing add on top: 'optimized_ops'
// at or below 'elided_ops' everywhere. The timed region is the optimizer
// pass alone (synthesis is setup).

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/opt/optimizer.hpp"
#include "mqsp/synth/synthesizer.hpp"


int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions faithful;
    faithful.emitIdentityOperations = true;
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Harness harness("ablation_optimizer");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = workload.family;
        spec.dims = workload.dims;
        spec.reps = 5;
        spec.smoke = workload.family == "GHZ State" && workload.dims.size() == 3;
        spec.body = [workload, caseSeed, faithful, lean](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            const StateVector state = makeState(workload, rng);
            const auto full = prepareExact(state, faithful);
            const auto slim = prepareExact(state, lean);

            Circuit optimized = full.circuit;
            OptimizerReport report;
            rep.time([&] { report = optimizeCircuit(optimized); });

            rep.metric("faithful_ops",
                       static_cast<double>(full.circuit.numOperations()));
            rep.metric("elided_ops", static_cast<double>(slim.circuit.numOperations()));
            rep.metric("optimized_ops", static_cast<double>(optimized.numOperations()));
            rep.metric("merged_rotations", static_cast<double>(report.mergedRotations));
            rep.metric("dropped_identities",
                       static_cast<double>(report.droppedIdentities));
            rep.metric("merged_control_fans",
                       static_cast<double>(report.mergedControlFans));
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
