// Ablation E: the peephole optimizer on synthesized circuits. Quantifies
// how much of the paper-faithful operation count the optimizer recovers
// (identity stripping should match the synthesizer's own elision mode) and
// what rotation merging / control-fan collapsing add on top.

#include "bench_common.hpp"

#include "mqsp/opt/optimizer.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    std::printf("Optimizer gains on paper-faithful synthesized circuits\n\n");
    std::printf("%-14s %-22s %10s %10s %10s %8s %8s %8s\n", "Name", "Qudits", "faithful",
                "elided", "optimized", "merges", "idents", "fans");

    SynthesisOptions faithful;
    faithful.emitIdentityOperations = true;
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        Rng rng(seeder.childSeed());
        const StateVector state = makeState(workload, rng);
        const auto full = prepareExact(state, faithful);
        const auto slim = prepareExact(state, lean);

        Circuit optimized = full.circuit;
        const auto report = optimizeCircuit(optimized);

        std::printf("%-14s %-22s %10zu %10zu %10zu %8zu %8zu %8zu\n",
                    workload.family.c_str(),
                    formatDimensionSpec(workload.dims).c_str(),
                    full.circuit.numOperations(), slim.circuit.numOperations(),
                    optimized.numOperations(), report.mergedRotations,
                    report.droppedIdentities, report.mergedControlFans);
    }
    std::printf("\n'optimized' at or below 'elided' everywhere: the optimizer subsumes\n"
                "the synthesizer's identity elision and additionally merges rotations\n"
                "and collapses full control fans where the state structure allows.\n");
    return 0;
}
