// Google-benchmark microbenchmarks for the library's kernels: decision
// diagram construction, amplitude reconstruction, dense export, reduction,
// pruning, synthesis and simulation. These underpin the "Time" columns of
// Table 1 and the scaling bench.

#include "mqsp/approx/approximation.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace mqsp;

const Dimensions& registerForIndex(std::int64_t index) {
    static const std::vector<Dimensions> registers{
        {3, 6, 2}, {9, 5, 6, 3}, {6, 6, 5, 3, 3}, {4, 7, 4, 4, 3, 5}};
    return registers[static_cast<std::size_t>(index)];
}

StateVector benchState(std::int64_t index) {
    Rng rng(Rng::kDefaultSeed + static_cast<std::uint64_t>(index));
    return states::random(registerForIndex(index), rng);
}

void BM_DDConstruct(benchmark::State& state) {
    const StateVector target = benchState(state.range(0));
    for (auto _ : state) {
        auto dd = DecisionDiagram::fromStateVector(target);
        benchmark::DoNotOptimize(dd.rootNode());
    }
    state.SetComplexityN(static_cast<std::int64_t>(target.size()));
}
BENCHMARK(BM_DDConstruct)->DenseRange(0, 3)->Complexity(benchmark::oN);

void BM_DDAmplitude(benchmark::State& state) {
    const StateVector target = benchState(state.range(0));
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    const auto digits = target.radix().digitsOf(target.size() / 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dd.amplitudeOf(digits));
    }
}
BENCHMARK(BM_DDAmplitude)->DenseRange(0, 3);

void BM_DDToVector(benchmark::State& state) {
    const StateVector target = benchState(state.range(0));
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    for (auto _ : state) {
        auto vec = dd.toStateVector();
        benchmark::DoNotOptimize(vec.amplitudes().data());
    }
}
BENCHMARK(BM_DDToVector)->DenseRange(0, 3);

void BM_DDReduce(benchmark::State& state) {
    const StateVector target = states::uniform(registerForIndex(state.range(0)));
    for (auto _ : state) {
        state.PauseTiming();
        DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
        state.ResumeTiming();
        benchmark::DoNotOptimize(dd.reduce());
    }
}
BENCHMARK(BM_DDReduce)->DenseRange(0, 3);

void BM_Approximate(benchmark::State& state) {
    const StateVector target = benchState(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
        state.ResumeTiming();
        const auto report = approximate(dd);
        benchmark::DoNotOptimize(report.removedMass);
    }
}
BENCHMARK(BM_Approximate)->DenseRange(0, 3);

void BM_Synthesize(benchmark::State& state) {
    const StateVector target = benchState(state.range(0));
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    for (auto _ : state) {
        const Circuit circuit = synthesize(dd);
        benchmark::DoNotOptimize(circuit.numOperations());
    }
    state.SetComplexityN(
        static_cast<std::int64_t>(dd.nodeCount(NodeCountMode::Internal)));
}
BENCHMARK(BM_Synthesize)->DenseRange(0, 3)->Complexity(benchmark::oN);

void BM_SimulatePreparation(benchmark::State& state) {
    // Simulation cost is gate count x Hilbert dimension; use the smaller
    // registers only.
    const StateVector target = benchState(state.range(0));
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    for (auto _ : state) {
        const StateVector out = Simulator::runFromZero(prep.circuit);
        benchmark::DoNotOptimize(out.amplitudes().data());
    }
}
BENCHMARK(BM_SimulatePreparation)->DenseRange(0, 1);

void BM_StateFidelity(benchmark::State& state) {
    const StateVector a = benchState(state.range(0));
    Rng rng(99);
    const StateVector b = states::random(registerForIndex(state.range(0)), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.fidelityWith(b));
    }
}
BENCHMARK(BM_StateFidelity)->DenseRange(0, 3);

} // namespace
