// Serving-layer throughput: spin a VerificationService in-process and fan
// N synthetic clients over the TaskPool, each draining its share of one
// fixed command storm against the shared session. The t1/t2/t4/t8 rows
// read as the dispatcher's scaling curve — under the old single-mutex
// dispatch every row would flatline at t1 throughput; reader-writer
// dispatch lets the VERIFY/STATS? traffic overlap while PREP/GC writers
// serialize.
//
// The storm is one command list dealt round-robin to the clients, so the
// deterministic outcomes — request and per-verb counts, zero errors, and
// the post-GC pool size — are identical at every thread count and every
// interleaving: those are the metrics the CI gate pins (the t4 row runs
// in smoke). requests_per_sec is the throughput measurement itself —
// noisy by nature, reported for humans, and deliberately stripped from
// the gated smoke baseline (see bench/baselines/README.md).

#include "harness.hpp"

#include "mqsp/serve/service.hpp"
#include "mqsp/support/parallel.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace mqsp;
using namespace mqsp::bench;

/// Value of `key=` in a reply line ("OK dd_nodes=41 ..."); throws when absent.
std::uint64_t uintField(const std::string& reply, const std::string& key) {
    const std::string needle = " " + key + "=";
    const auto pos = reply.find(needle);
    if (pos == std::string::npos) {
        throw std::runtime_error("reply lacks field " + key + ": " + reply);
    }
    return std::stoull(reply.substr(pos + needle.size()));
}

/// Issue one command and require an "OK ..." reply.
std::string ok(serve::VerificationService& service, const std::string& line) {
    serve::Response response = service.handleLine(line);
    if (response.line.rfind("OK ", 0) != 0) {
        throw std::runtime_error("command '" + line + "' replied: " + response.line);
    }
    return std::move(response.line);
}

/// The fixed storm: read-heavy traffic (VERIFY, STATS?, LIMITS?) with a
/// write mix (PREP, GC) that forces the dispatcher through its writer
/// path — the shape a resident verification service actually sees.
std::vector<std::string> buildStorm() {
    std::vector<std::string> storm;
    for (int cycle = 0; cycle < 25; ++cycle) {
        storm.emplace_back("VERIFY --id 1");
        storm.emplace_back("STATS?");
        storm.emplace_back("VERIFY --id 2 --repeat 2");
        storm.emplace_back("LIMITS?");
        storm.emplace_back("VERIFY --id 1");
        storm.emplace_back("VERIFY --id 2");
        storm.emplace_back("BATCH");
        if (cycle % 5 == 0) {
            // A sparse write mix: serving traffic is read-dominated, and a
            // GC every cycle would serialize the whole storm — but zero
            // writers would never exercise the writer path at all. The GC
            // also evicts the compute cache, so the verifications that
            // follow redo real replay work instead of degenerating into
            // pure cache lookups.
            storm.emplace_back("PREP:UNIFORM --dims 2,2");
            storm.emplace_back("GC");
        }
    }
    return storm;
}

void addThroughputCase(Harness& harness, unsigned clients, bool smoke) {
    CaseSpec spec;
    spec.name = "serve storm";
    spec.backend = std::string("dd");
    spec.threads = clients;
    spec.reps = 10;
    spec.smoke = smoke;
    spec.body = [clients](Repetition& rep) {
        // Fresh service per repetition: the deterministic metrics below
        // describe exactly one storm, so they are repetition-invariant.
        // The service captures the harness-pinned thread width, so BATCH
        // fan-out inside a client is the no-op nested case.
        serve::VerificationService service;
        ok(service, "PREP:GHZ --dims 3,6,2");
        ok(service, "PREP:W --dims 3,6,2");

        const std::vector<std::string> storm = buildStorm();
        rep.time([&] {
            // One pool task per client; each drains its round-robin share
            // of the storm, so total work is fixed regardless of width.
            parallel::parallelFor(0, clients, 1, [&](std::uint64_t begin,
                                                     std::uint64_t end) {
                for (std::uint64_t client = begin; client < end; ++client) {
                    for (std::size_t i = client; i < storm.size(); i += clients) {
                        const serve::Response response = service.handleLine(storm[i]);
                        if (response.line.rfind("OK ", 0) != 0) {
                            throw std::runtime_error("storm command '" + storm[i] +
                                                     "' replied: " + response.line);
                        }
                    }
                }
            });
        });

        // Serial epilogue: compact to the live set and read the
        // deterministic outcomes back through the wire protocol.
        const std::string gc = ok(service, "GC");
        const std::string stats = ok(service, "STATS?");
        if (uintField(stats, "errors") != 0) {
            throw std::runtime_error("storm produced errors: " + stats);
        }
        rep.metric("requests", static_cast<double>(storm.size()));
        rep.metric("requests_per_sec", static_cast<double>(storm.size()) * 1e9 /
                                           static_cast<double>(rep.elapsedNs()));
        rep.metric("dd_nodes", static_cast<double>(uintField(gc, "nodes_after")));
        rep.metric("verify_count", static_cast<double>(uintField(stats, "verify.count")));
        rep.metric("prep_count", static_cast<double>(uintField(stats, "prep.count")));
        rep.metric("batch_count", static_cast<double>(uintField(stats, "batch.count")));
        rep.metric("gc_count", static_cast<double>(uintField(stats, "gc.count")));
        rep.metric("stats_count", static_cast<double>(uintField(stats, "stats.count")));
    };
    harness.add(std::move(spec));
}

} // namespace

int main(int argc, char** argv) {
    Harness harness("serve_throughput");
    for (const unsigned clients : {1U, 2U, 4U, 8U}) {
        addThroughputCase(harness, clients, clients == 4);
    }
    return harness.main(argc, argv);
}
