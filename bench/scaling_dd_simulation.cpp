// DD-native simulation scaling (the substrate of the paper's reference
// [12]): replay synthesized preparation circuits on the decision diagram
// and compare wall time against the dense state-vector simulator. On
// structured states the DD stays small and DD simulation wins as the
// register grows; on dense random states the DD degenerates to the full
// tree and the dense simulator is the better tool — the classic
// DD-simulation trade-off. Each workload registers a "/dense" and a "/dd"
// case so the two simulators are timed under the same methodology; both
// verify their output against the target state.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace {

mqsp::StateVector makeTarget(const std::string& family, const mqsp::Dimensions& dims,
                             mqsp::Rng& rng) {
    using namespace mqsp;
    if (family == "GHZ") {
        return states::ghz(dims);
    }
    if (family == "W") {
        return states::wState(dims);
    }
    return states::random(dims, rng);
}

} // namespace

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    struct Row {
        const char* family;
        Dimensions dims;
        bool smoke = false;
    };
    const Row rows[] = {
        {"GHZ", {3, 3, 3}, true},
        {"GHZ", {3, 3, 3, 3, 3}, false},
        {"GHZ", {3, 3, 3, 3, 3, 3, 3}, false},
        {"GHZ", {4, 4, 4, 4, 4, 4}, false},
        {"W", {3, 3, 3, 3, 3}, false},
        {"W", {2, 2, 2, 2, 2, 2, 2, 2}, false},
        {"random", {3, 6, 2}, false},
        {"random", {9, 5, 6, 3}, false},
    };

    Harness harness("scaling_dd_simulation");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& row : rows) {
        {
            const std::uint64_t caseSeed = driverSeeder.childSeed();
            CaseSpec spec;
            spec.name = std::string(row.family) + "/dense";
            spec.dims = row.dims;
            spec.reps = 10;
            spec.smoke = row.smoke;
            spec.body = [family = std::string(row.family), dims = row.dims, caseSeed,
                         lean](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector target = makeTarget(family, dims, rng);
                const auto prep = prepareExact(target, lean);
                StateVector dense({2});
                rep.time([&] { dense = Simulator::runFromZero(prep.circuit); });
                rep.metric("amplitudes", static_cast<double>(target.size()));
                rep.metric("ops", static_cast<double>(prep.circuit.numOperations()));
                const double fidelity = dense.fidelityWith(target);
                rep.metric("fidelity", fidelity);
                if (std::abs(fidelity - 1.0) > 1e-6) {
                    throw std::runtime_error("dense simulation failed verification");
                }
            };
            harness.add(std::move(spec));
        }
        {
            const std::uint64_t caseSeed = driverSeeder.childSeed();
            CaseSpec spec;
            spec.name = std::string(row.family) + "/dd";
            spec.dims = row.dims;
            spec.reps = 10;
            spec.smoke = row.smoke;
            spec.body = [family = std::string(row.family), dims = row.dims, caseSeed,
                         lean](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector target = makeTarget(family, dims, rng);
                const auto prep = prepareExact(target, lean);
                DecisionDiagram simulated;
                rep.time(
                    [&] { simulated = DecisionDiagram::simulateCircuit(prep.circuit); });
                rep.metric("amplitudes", static_cast<double>(target.size()));
                rep.metric("ops", static_cast<double>(prep.circuit.numOperations()));
                // Verify DD-natively against the target's diagram.
                const DecisionDiagram targetDD = DecisionDiagram::fromStateVector(target);
                const double fidelity =
                    squaredMagnitude(targetDD.innerProductWith(simulated));
                rep.metric("fidelity", fidelity);
                if (std::abs(fidelity - 1.0) > 1e-6) {
                    throw std::runtime_error("DD simulation failed verification");
                }
            };
            harness.add(std::move(spec));
        }
    }
    return harness.main(argc, argv);
}
