// Evaluation-backend scaling (the substrate of the paper's reference [12]):
// replay synthesized preparation circuits through the pluggable
// EvaluationBackend interface (sim/backend.hpp) and compare the dense
// state-vector backend against the decision-diagram backend under one
// methodology. On structured states the DD stays small and the dd backend
// wins as the register grows; on dense random states the DD degenerates to
// the full tree and the dense backend is the better tool — the classic
// DD-simulation trade-off. Each small-register workload registers the same
// case under both backends (the `backend` provenance field keeps them apart
// in reports); the past-the-ceiling rows (>= 10^8 amplitudes, far beyond
// what the dense backend will allocate) register dd-only and demonstrate
// preparation + verification that never materializes an amplitude vector.
// Every case verifies its output against the target state and fails on
// mismatch.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace {

using namespace mqsp;
using namespace mqsp::bench;

StateVector makeDenseTarget(const std::string& family, const Dimensions& dims, Rng& rng) {
    if (family == "GHZ") {
        return states::ghz(dims);
    }
    if (family == "W") {
        return states::wState(dims);
    }
    return states::random(dims, rng);
}

/// DD-native target for the structured families — the only construction
/// path that works past the dense ceiling. With a session, the target is
/// built straight into the backend's shared uniquing table, so the replay
/// that follows re-finds these very nodes.
DecisionDiagram makeDiagramTarget(const std::string& family, const Dimensions& dims,
                                  const dd::DdSession* session) {
    if (family == "GHZ") {
        return session ? session->ghzState(dims) : DecisionDiagram::ghzState(dims);
    }
    if (family == "W") {
        return session ? session->wState(dims) : DecisionDiagram::wState(dims);
    }
    if (family == "Emb. W") {
        return session ? session->embeddedWState(dims)
                       : DecisionDiagram::embeddedWState(dims);
    }
    if (family == "Cyclic") {
        // All distinct shifts of |0...0>; lcm of the benchmark registers'
        // dims is small, so pass the max dimension as the count cap.
        const Dimension maxDim = *std::max_element(dims.begin(), dims.end());
        const Digits start(dims.size(), 0);
        return session ? session->cyclicState(dims, start, maxDim)
                       : DecisionDiagram::cyclicState(dims, start, maxDim);
    }
    if (family == "Dicke-2") {
        return session ? session->dickeState(dims, 2) : DecisionDiagram::dickeState(dims, 2);
    }
    throw std::runtime_error("no diagram builder for family " + family);
}

/// Record the DD-session memory metrics alongside a case's timings: the
/// live diagram size plus the uniquing-table and compute-cache hit rates
/// of the backend session the repetition ran on.
void recordSessionMetrics(Repetition& rep, const EvaluationBackend& backend,
                          const EvalState& out) {
    const auto session = backend.ddSession();
    if (!session || !out.isDiagram()) {
        return;
    }
    const auto stats = session->stats();
    rep.metric("dd_nodes",
               static_cast<double>(out.diagram().nodeCount(NodeCountMode::Internal)));
    rep.metric("unique_hit_rate", stats.uniqueHitRate());
    rep.metric("cache_hit_rate", stats.cacheHitRate());
}

/// Register one backend's case for a workload whose target fits in memory,
/// pinned to `threads` workers (1 = the historical single-threaded rows;
/// higher counts register speedup-curve variants of the same workload).
void addSmallRegisterCase(Harness& harness, const std::string& family,
                          const Dimensions& dims, BackendKind kind,
                          std::uint64_t caseSeed, bool smoke, unsigned threads = 1) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    CaseSpec spec;
    spec.name = family;
    spec.dims = dims;
    spec.backend = backendName(kind);
    spec.threads = threads;
    spec.reps = 10;
    spec.smoke = smoke;
    spec.body = [family, dims, kind, caseSeed, lean](Repetition& rep) {
        Rng rng = repetitionRng(caseSeed, rep.index());
        const StateVector target = makeDenseTarget(family, dims, rng);
        const auto prep = prepareExact(target, lean);
        const auto backend = makeBackend(kind);

        EvalState out;
        rep.time([&] { out = backend->runFromZero(prep.circuit); });
        rep.metric("amplitudes", static_cast<double>(target.size()));
        rep.metric("ops", static_cast<double>(prep.circuit.numOperations()));
        const double fidelity = out.fidelityWith(EvalState(target));
        rep.metric("fidelity", fidelity);
        recordSessionMetrics(rep, *backend, out);
        if (std::abs(fidelity - 1.0) > 1e-6) {
            throw std::runtime_error(std::string(backendName(kind)) +
                                     " simulation failed verification");
        }
    };
    harness.add(std::move(spec));
}

/// Register a dd-only case on a register past the dense ceiling: target,
/// synthesis, replay and fidelity all stay on diagrams.
void addPastCeilingCase(Harness& harness, const std::string& family,
                        const Dimensions& dims, bool smoke) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    CaseSpec spec;
    spec.name = family;
    spec.dims = dims;
    spec.backend = "dd";
    spec.threads = 1;
    spec.reps = 10;
    spec.smoke = smoke;
    spec.body = [family, dims, lean](Repetition& rep) {
        // One backend per repetition: the session statistics below describe
        // exactly one cold target-build + replay + verification, so the
        // recorded metrics are repetition-count-invariant (and CI can gate
        // on them).
        const auto backend = makeBackend(BackendKind::Dd);
        const DecisionDiagram target =
            makeDiagramTarget(family, dims, backend->ddSession().get());
        const Circuit circuit = synthesize(target, lean);

        EvalState out;
        rep.time([&] { out = backend->runFromZero(circuit); });
        rep.metric("amplitudes",
                   static_cast<double>(MixedRadix(dims).totalDimension()));
        rep.metric("ops", static_cast<double>(circuit.numOperations()));
        rep.metric("nodes", static_cast<double>(
                                target.nodeCount(NodeCountMode::Internal)));
        const double fidelity = EvalState(target).fidelityWith(out);
        rep.metric("fidelity", fidelity);
        recordSessionMetrics(rep, *backend, out);
        if (std::abs(fidelity - 1.0) > 1e-6) {
            throw std::runtime_error("past-ceiling dd preparation failed verification");
        }
    };
    harness.add(std::move(spec));
}

/// Register a batch case: `count` independent prepare-and-verify items
/// through EvaluationBackend::verifyBatch. With threads pinned
/// above 1 the items fan out across the pool workers (and each item's
/// kernels run serially inside its worker — the nested-use contract);
/// at 1 thread the same batch runs sequentially, so the t1/tN pair is the
/// batch-level speedup curve. (Single-item dd replays get *intra*-diagram
/// concurrency instead — see addIntraApplyCase below.)
void addBatchCase(Harness& harness, const std::string& family, const Dimensions& dims,
                  BackendKind kind, std::size_t count, unsigned threads, bool smoke) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    CaseSpec spec;
    spec.name = family + " batch" + std::to_string(count);
    spec.dims = dims;
    spec.backend = backendName(kind);
    spec.threads = threads;
    spec.reps = 10;
    spec.smoke = smoke;
    spec.body = [family, dims, kind, count, lean](Repetition& rep) {
        Rng rng(Rng::kDefaultSeed);
        std::vector<StateVector> targets;
        std::vector<EvalState> evalTargets;
        std::vector<Circuit> circuits;
        std::vector<VerifyRequest> items;
        targets.reserve(count);
        circuits.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            targets.push_back(makeDenseTarget(family, dims, rng));
            circuits.push_back(prepareExact(targets.back(), lean).circuit);
        }
        evalTargets.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            evalTargets.emplace_back(targets[i]);
            items.push_back({&circuits[i], &evalTargets[i]});
        }
        const auto backend = makeBackend(kind);

        std::vector<VerifyReport> results;
        rep.time([&] { results = backend->verifyBatch(items); });
        rep.metric("batch_items", static_cast<double>(count));
        if (const auto session = backend->ddSession()) {
            // Shared-session batch: every item interned into this one
            // session. The final pool size is a function of the work alone
            // — invariant under thread count and item interleaving — so it
            // is the session metric a concurrent case records; the batch's
            // cache hit rates depend on the interleaving and stay out of
            // the gated report.
            rep.metric("dd_nodes", static_cast<double>(session->stats().poolNodes));
        }
        for (const auto& result : results) {
            if (result.failed || std::abs(result.fidelity - 1.0) > 1e-6) {
                throw std::runtime_error("batch item failed verification: " + result.error);
            }
        }
    };
    harness.add(std::move(spec));
}

/// Register an intra-apply case: ONE session-backed replay of a dense
/// random-state preparation circuit, where the concurrency lives *inside*
/// each gate application (dd/apply.cpp fans the target-level rebuild out
/// across the sharded session tables) rather than across batch items. The
/// t1/t2/t4/t8 rows read as the intra-diagram speedup curve; `dd_nodes`
/// and `fidelity` are thread-count-invariant by the determinism contract
/// and feed the CI metrics gate. The interleaving-dependent hit rates are
/// deliberately NOT recorded on these rows.
void addIntraApplyCase(Harness& harness, const Dimensions& dims, std::uint64_t caseSeed,
                       unsigned threads, bool smoke) {
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    CaseSpec spec;
    spec.name = "random intra-apply";
    spec.dims = dims;
    spec.backend = "dd";
    spec.threads = threads;
    spec.reps = 10;
    spec.smoke = smoke;
    spec.body = [dims, caseSeed, lean](Repetition& rep) {
        Rng rng = repetitionRng(caseSeed, rep.index());
        const StateVector target = states::random(dims, rng);
        const auto prep = prepareExact(target, lean);
        // One backend per repetition: the session pool below describes
        // exactly one cold replay, so dd_nodes is repetition-count- and
        // thread-count-invariant.
        const auto backend = makeBackend(BackendKind::Dd);

        EvalState out;
        rep.time([&] { out = backend->runFromZero(prep.circuit); });
        rep.metric("amplitudes", static_cast<double>(target.size()));
        rep.metric("ops", static_cast<double>(prep.circuit.numOperations()));
        const double fidelity = out.fidelityWith(EvalState(target));
        rep.metric("fidelity", fidelity);
        rep.metric("dd_nodes",
                   static_cast<double>(backend->ddSession()->stats().poolNodes));
        if (std::abs(fidelity - 1.0) > 1e-6) {
            throw std::runtime_error("intra-apply dd replay failed verification");
        }
    };
    harness.add(std::move(spec));
}

} // namespace

int main(int argc, char** argv) {
    struct Row {
        const char* family;
        Dimensions dims;
        bool smoke = false;
    };
    const Row rows[] = {
        {"GHZ", {3, 3, 3}, true},
        {"GHZ", {3, 3, 3, 3, 3}, false},
        {"GHZ", {3, 3, 3, 3, 3, 3, 3}, false},
        {"GHZ", {4, 4, 4, 4, 4, 4}, false},
        {"W", {3, 3, 3, 3, 3}, false},
        {"W", {2, 2, 2, 2, 2, 2, 2, 2}, false},
        {"random", {3, 6, 2}, false},
        {"random", {9, 5, 6, 3}, false},
    };

    // Structured states on registers the dense backend refuses outright
    // (>= 10^8 amplitudes): the headline workloads of the dd backend.
    const Row pastCeiling[] = {
        {"GHZ", Dimensions(27, 2), true},       // 2^27 ≈ 1.34e8
        {"GHZ", Dimensions(17, 3), false},      // 3^17 ≈ 1.29e8
        {"W", Dimensions(17, 3), false},
        {"Emb. W", Dimensions(27, 2), true},
        {"GHZ", Dimensions(14, 4), false},      // 4^14 ≈ 2.68e8
        // The session-scoped DD memory additions: both families exist only
        // as DD-native DAG builders (their tree forms are combinatorial),
        // and both run in CI smoke so the merged artifact always carries
        // their dd_nodes / unique_hit_rate / cache_hit_rate metrics.
        {"Cyclic", Dimensions(27, 2), true},
        {"Dicke-2", Dimensions(27, 2), true},
    };

    Harness harness("scaling_dd_simulation");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& row : rows) {
        const std::uint64_t denseSeed = driverSeeder.childSeed();
        addSmallRegisterCase(harness, row.family, row.dims, BackendKind::Dense,
                             denseSeed, row.smoke);
        const std::uint64_t ddSeed = driverSeeder.childSeed();
        addSmallRegisterCase(harness, row.family, row.dims, BackendKind::Dd, ddSeed,
                             row.smoke);
    }
    for (const auto& row : pastCeiling) {
        addPastCeilingCase(harness, row.family, row.dims, row.smoke);
    }

    // Thread-count variants. In-state parallelism: the same 2^20-amplitude
    // dense replay at 1 and at 4 workers. Batch parallelism: eight
    // independent prepare-and-verify items on each backend, sequential vs
    // fanned out across four workers.
    const Dimensions megaRegister(20, 2);
    const std::uint64_t megaSeed = driverSeeder.childSeed();
    addSmallRegisterCase(harness, "GHZ", megaRegister, BackendKind::Dense, megaSeed, false,
                         1);
    addSmallRegisterCase(harness, "GHZ", megaRegister, BackendKind::Dense, megaSeed, false,
                         4);
    const Dimensions batchRegister{3, 3, 3, 3, 3};
    for (const unsigned threads : {1U, 4U}) {
        addBatchCase(harness, "GHZ", batchRegister, BackendKind::Dense, 8, threads,
                     threads == 4);
    }
    // The dd batch interns all eight items into one shared session (the
    // sharded uniquing table) from every worker; the t1/t2/t4/t8 rows read
    // as the shared-session speedup curve, and each row's dd_nodes must be
    // identical — the concurrency-determinism contract, gated in CI via
    // the smoke baseline (t4) and recorded as a curve in bench/baselines/.
    for (const unsigned threads : {1U, 2U, 4U, 8U}) {
        addBatchCase(harness, "GHZ", batchRegister, BackendKind::Dd, 8, threads,
                     threads == 4);
    }
    // Intra-diagram apply: one session replay whose parallelism lives
    // inside each gate (dd/apply.cpp), on a dense random register whose
    // diagram degenerates toward the full tree — the worst case for
    // structure, the best case for intra-gate fan-out.
    const Dimensions intraRegister{9, 5, 6, 3};
    const std::uint64_t intraSeed = driverSeeder.childSeed();
    for (const unsigned threads : {1U, 2U, 4U, 8U}) {
        addIntraApplyCase(harness, intraRegister, intraSeed, threads, threads == 4);
    }
    return harness.main(argc, argv);
}
