// DD-native simulation scaling (the substrate of the paper's reference
// [12]): replay synthesized preparation circuits on the decision diagram
// and compare wall time against the dense state-vector simulator. On
// structured states the DD stays small and DD simulation wins by orders of
// magnitude as the register grows; on dense random states the DD degenerates
// to the full tree and the dense simulator is the better tool — the
// classic DD-simulation trade-off.

#include "bench_common.hpp"

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    struct Row {
        const char* family;
        Dimensions dims;
    };
    const Row rows[] = {
        {"GHZ", {3, 3, 3}},
        {"GHZ", {3, 3, 3, 3, 3}},
        {"GHZ", {3, 3, 3, 3, 3, 3, 3}},
        {"GHZ", {4, 4, 4, 4, 4, 4}},
        {"W", {3, 3, 3, 3, 3}},
        {"W", {2, 2, 2, 2, 2, 2, 2, 2}},
        {"random", {3, 6, 2}},
        {"random", {9, 5, 6, 3}},
    };

    std::printf("DD-native vs dense simulation of preparation circuits\n\n");
    std::printf("%-8s %-24s %10s %8s %12s %12s %10s\n", "state", "register", "dim",
                "ops", "dense[ms]", "dd[ms]", "fidelity");

    Rng rng(Rng::kDefaultSeed);
    for (const auto& row : rows) {
        StateVector target({2});
        const std::string family = row.family;
        if (family == "GHZ") {
            target = states::ghz(row.dims);
        } else if (family == "W") {
            target = states::wState(row.dims);
        } else {
            target = states::random(row.dims, rng);
        }
        const auto prep = prepareExact(target, lean);

        const WallTimer denseTimer;
        const StateVector dense = Simulator::runFromZero(prep.circuit);
        const double denseMs = denseTimer.elapsedSeconds() * 1e3;

        const WallTimer ddTimer;
        const DecisionDiagram simulated = DecisionDiagram::simulateCircuit(prep.circuit);
        const double ddMs = ddTimer.elapsedSeconds() * 1e3;

        // Verify both agree with the target, DD-natively for the DD run.
        const DecisionDiagram targetDD = DecisionDiagram::fromStateVector(target);
        const double fidelity =
            squaredMagnitude(targetDD.innerProductWith(simulated));

        std::printf("%-8s %-24s %10llu %8zu %12.3f %12.3f %10.6f\n", row.family,
                    formatDimensionSpec(row.dims).c_str(),
                    static_cast<unsigned long long>(target.size()),
                    prep.circuit.numOperations(), denseMs, ddMs, fidelity);
        if (std::abs(dense.fidelityWith(target) - 1.0) > 1e-6) {
            std::printf("dense verification failed!\n");
            return 1;
        }
    }
    return 0;
}
