// Streaming replay and incremental re-verification: the two new
// verification entry points (sim/backend.hpp verifyStream /
// reverifyAppended) measured end to end on the dd backend.
//
// The streamed workload is an OperationSource that yields repeated
// (block, block⁻¹) pairs of an entangling preparation block — many more
// operations than the diagram ever holds, so the replay demonstrates the
// O(diagram) space contract: the stream is never materialized as a
// Circuit, and the state returns to |0...0> at every pair boundary. With
// the checkpoint interval aligned to the pair length, every checkpoint
// probes fidelity 1.0 against the zero-state target — a deterministic
// outcome the CI metrics gate pins at every thread count, alongside the
// operation/checkpoint counts and the session dd_nodes (bit-identical
// across widths by the deterministic-interning contract).
//
// The delta phase replays one pair as a grown Circuit through
// reverifyAppended: first the base replay, then one appended pair
// re-verified incrementally. The appended gates hit the session compute
// cache (the same (gate, state) applications were just interned), so the
// t1 rows additionally gate the raw cache hit/lookup counts — the
// measured proof that incremental re-verification reuses the session
// cache instead of redoing the replay. At t2/t4/t8 the intra-diagram
// apply fan-out makes raw cache counts interleaving-dependent, so those
// rows gate only the invariant metrics (see docs/BENCHMARKS.md).

#include "harness.hpp"

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/sim/backend.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace mqsp;
using namespace mqsp::bench;

/// Pairs of (block, block⁻¹) streamed per repetition. The diagram is
/// bounded by the block's entanglement however large this grows.
constexpr std::uint64_t kPairs = 32;

/// The entangling forward block: superpose the first qudit, fan the
/// superposition out through controlled rotations, and stir the levels
/// with phase/swap work. Only invertible kinds (no Hadamard, no Shift)
/// so the inverse block exists in the gate alphabet.
Circuit forwardBlock(const Dimensions& dims) {
    const double pi = std::acos(-1.0);
    Circuit block(dims, "stream_block");
    block.append(Operation::givens(0, 0, 1, pi / 2.0, 0.0));
    block.append(Operation::givens(1, 0, 1, pi, 0.0, {{0, 1}}));
    block.append(Operation::givens(2, 0, 1, pi, 0.0, {{1, 1}}));
    block.append(Operation::phase(1, 0, 1, pi / 4.0, {{0, 1}}));
    block.append(Operation::levelSwap(1, 1, 2, {{0, 1}}));
    block.append(Operation::givens(1, 2, 3, pi / 3.0, pi / 7.0));
    return block;
}

/// OperationSource yielding `pairs` copies of (block, block⁻¹) from O(1)
/// storage — one pair's worth of operations, cycled. This is the honest
/// streaming setting: the full operation sequence never exists in memory.
class PairSource final : public OperationSource {
public:
    PairSource(const Circuit& pair, std::uint64_t pairs)
        : dims_(pair.dimensions()), ops_(pair.operations()),
          total_(pairs * pair.numOperations()) {}

    [[nodiscard]] const Dimensions& dimensions() const override { return dims_; }

    [[nodiscard]] std::optional<Operation> next() override {
        if (emitted_ == total_) {
            return std::nullopt;
        }
        const Operation& op = ops_[emitted_ % ops_.size()];
        ++emitted_;
        return op;
    }

private:
    Dimensions dims_;
    std::vector<Operation> ops_;
    std::uint64_t total_ = 0;
    std::uint64_t emitted_ = 0;
};

void requireNear(double value, double expected, const std::string& what) {
    if (std::abs(value - expected) > 1e-9) {
        throw std::runtime_error(what + ": expected " + std::to_string(expected) +
                                 ", got " + std::to_string(value));
    }
}

void addStreamingCase(Harness& harness, unsigned threads, bool smoke) {
    CaseSpec spec;
    spec.name = "stream+delta";
    spec.dims = {3, 6, 2};
    spec.backend = "dd";
    spec.threads = threads;
    spec.reps = 10;
    spec.smoke = smoke;
    spec.body = [threads, dims = spec.dims](Repetition& rep) {
        // Fresh backend (and so fresh session) per repetition: the cache
        // counters below describe exactly one stream + one delta, so the
        // t1 metrics are repetition-invariant.
        const auto backend = makeBackend(BackendKind::Dd);
        const Circuit forward = forwardBlock(dims);
        Circuit pair = forward;
        pair.append(forward.inverted());

        const EvalState target = backend->zeroState(dims);
        VerifyRequest request;
        request.target = &target;
        request.checkpointInterval = pair.numOperations();

        // Phase 1 — streaming replay, timed. Every checkpoint lands on a
        // pair boundary where the state is back at |0...0>.
        PairSource source(pair, kPairs);
        VerifyReport stream;
        rep.time([&] { stream = backend->verifyStream(source, request); });
        if (stream.ops != kPairs * pair.numOperations()) {
            throw std::runtime_error("stream replayed " + std::to_string(stream.ops) +
                                     " ops, expected " +
                                     std::to_string(kPairs * pair.numOperations()));
        }
        requireNear(stream.fidelity, 1.0, "final stream fidelity");
        double checkpointFidelityMin = 1.0;
        for (const ReplayCheckpoint& checkpoint : stream.checkpoints) {
            requireNear(checkpoint.fidelity, 1.0,
                        "checkpoint at op " + std::to_string(checkpoint.opIndex));
            checkpointFidelityMin = std::min(checkpointFidelityMin, checkpoint.fidelity);
        }

        // Phase 2 — incremental re-verification: replay one pair as a
        // Circuit, append a second pair, and re-verify just the delta.
        // The appended applications repeat (gate, state) keys the session
        // cache already holds, so the delta resolves from cache.
        Circuit grown = pair;
        EvalState replayed = backend->zeroState(dims);
        const VerifyReport base =
            backend->reverifyAppended(grown, 0, replayed, target);
        requireNear(base.fidelity, 1.0, "base replay fidelity");
        const std::uint64_t fromOp = grown.numOperations();
        grown.append(pair);
        const VerifyReport delta =
            backend->reverifyAppended(grown, fromOp, replayed, target);
        requireNear(delta.fidelity, 1.0, "delta replay fidelity");
        if (delta.ops != pair.numOperations()) {
            throw std::runtime_error("delta replayed " + std::to_string(delta.ops) +
                                     " ops, expected " +
                                     std::to_string(pair.numOperations()));
        }
        if (threads == 1 && delta.cacheHits == 0) {
            throw std::runtime_error(
                "appended-delta re-verification produced zero session-cache hits");
        }

        // Deterministic at every width: counts, fidelities, dd_nodes.
        rep.metric("stream_ops", static_cast<double>(stream.ops));
        rep.metric("stream_checkpoints", static_cast<double>(stream.checkpoints.size()));
        rep.metric("stream_fidelity", stream.fidelity);
        rep.metric("checkpoint_fidelity_min", checkpointFidelityMin);
        rep.metric("stream_dd_nodes", static_cast<double>(stream.ddNodes));
        rep.metric("delta_ops", static_cast<double>(delta.ops));
        rep.metric("delta_fidelity", delta.fidelity);
        rep.metric("dd_nodes", static_cast<double>(delta.ddNodes));
        rep.metric("ops_per_sec", static_cast<double>(stream.ops) * 1e9 /
                                      static_cast<double>(rep.elapsedNs()));
        // Raw cache counters are deterministic only single-threaded (the
        // intra-diagram fan-out makes fills interleaving-dependent), so
        // only the t1 row feeds them to the gate.
        if (threads == 1) {
            rep.metric("stream_cache_lookups", static_cast<double>(stream.cacheLookups));
            rep.metric("stream_cache_hits", static_cast<double>(stream.cacheHits));
            rep.metric("delta_cache_lookups", static_cast<double>(delta.cacheLookups));
            rep.metric("delta_cache_hits", static_cast<double>(delta.cacheHits));
        }
    };
    harness.add(std::move(spec));
}

} // namespace

int main(int argc, char** argv) {
    Harness harness("streaming_replay");
    for (const unsigned threads : {1U, 2U, 4U, 8U}) {
        addStreamingCase(harness, threads, threads == 1 || threads == 4);
    }
    return harness.main(argc, argv);
}
