// Ablation A: sweep the approximation fidelity threshold on dense random
// states and report how diagram size, operation count, control count and
// achieved fidelity respond. The paper evaluates one point (98%); this bench
// maps the whole trade-off curve that §4.3 advertises.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    constexpr int kRuns = 20;
    const std::vector<double> thresholds{1.0, 0.999, 0.99, 0.98, 0.95, 0.90, 0.80, 0.70};
    const std::vector<Dimensions> registers{{3, 6, 2}, {9, 5, 6, 3}, {6, 6, 5, 3, 3}};

    Harness harness("ablation_approx_sweep");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& dims : registers) {
        for (const double threshold : thresholds) {
            const std::uint64_t caseSeed = driverSeeder.childSeed();
            char label[32];
            std::snprintf(label, sizeof(label), "random t=%.3f", threshold);
            CaseSpec spec;
            spec.name = label;
            spec.dims = dims;
            spec.reps = kRuns;
            spec.smoke = dims.size() == 3 && threshold == 0.98;
            spec.body = [dims, threshold, caseSeed](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector state = states::random(dims, rng);
                PreparationResult result;
                rep.time([&] { result = prepareApproximated(state, threshold); });
                rep.metric("nodes",
                           static_cast<double>(
                               result.diagram.nodeCount(NodeCountMode::TreeSlots)));
                rep.metric("operations",
                           static_cast<double>(result.circuit.numOperations()));
                rep.metric("median_controls", result.circuit.stats().medianControls);
                rep.metric("fidelity", result.approx.fidelity);
            };
            harness.add(std::move(spec));
        }
    }
    return harness.main(argc, argv);
}
