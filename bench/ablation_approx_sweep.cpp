// Ablation A: sweep the approximation fidelity threshold on dense random
// states and report how diagram size, operation count, control count and
// achieved fidelity respond. The paper evaluates one point (98%); this bench
// maps the whole trade-off curve that §4.3 advertises.

#include "bench_common.hpp"

#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    constexpr int kRuns = 20;
    const std::vector<double> thresholds{1.0, 0.999, 0.99, 0.98, 0.95, 0.90, 0.80, 0.70};
    const std::vector<Dimensions> registers{{3, 6, 2}, {9, 5, 6, 3}, {6, 6, 5, 3, 3}};

    for (const auto& dims : registers) {
        std::printf("Random states on %s (%d runs per threshold)\n",
                    formatDimensionSpec(dims).c_str(), kRuns);
        std::printf("%10s %10s %12s %10s %10s %10s\n", "threshold", "nodes", "operations",
                    "#controls", "fidelity", "time[s]");
        Rng seeder(Rng::kDefaultSeed);
        for (const double threshold : thresholds) {
            double nodes = 0.0;
            double operations = 0.0;
            double controls = 0.0;
            double fidelity = 0.0;
            double seconds = 0.0;
            for (int run = 0; run < kRuns; ++run) {
                Rng rng(seeder.childSeed());
                const StateVector state = states::random(dims, rng);
                const WallTimer timer;
                const auto result = prepareApproximated(state, threshold);
                seconds += timer.elapsedSeconds();
                nodes += static_cast<double>(
                    result.diagram.nodeCount(NodeCountMode::TreeSlots));
                operations += static_cast<double>(result.circuit.numOperations());
                controls += result.circuit.stats().medianControls;
                fidelity += result.approx.fidelity;
            }
            const double inv = 1.0 / kRuns;
            std::printf("%10.3f %10.1f %12.1f %10.2f %10.4f %10.4f\n", threshold,
                        nodes * inv, operations * inv, controls * inv, fidelity * inv,
                        seconds * inv);
        }
        std::printf("\n");
    }
    return 0;
}
