// Ablation F: qubit-to-qudit compression (the paper's reference [15]).
// Prepare the same n-qubit state twice — natively on qubits, and packed
// into higher-dimensional qudits — and compare synthesis cost. Packing
// trades control count (circuit "width" of conditions) for local dimension:
// fewer, wider rotations with fewer controls, exactly the compression
// effect ref [15] exploits.

#include "bench_common.hpp"

#include "mqsp/statevec/regroup.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    struct Workload2 {
        const char* label;
        Dimensions qubits;
        std::vector<std::size_t> grouping;
    };
    const std::vector<Workload2> workloads = {
        {"GHZ 6 qubits -> 3 ququarts", {2, 2, 2, 2, 2, 2}, {2, 2, 2}},
        {"GHZ 6 qubits -> 2 octits", {2, 2, 2, 2, 2, 2}, {3, 3}},
        {"W 6 qubits -> 3 ququarts", {2, 2, 2, 2, 2, 2}, {2, 2, 2}},
        {"random 6 qubits -> 3 ququarts", {2, 2, 2, 2, 2, 2}, {2, 2, 2}},
        {"random 8 qubits -> 4 ququarts", {2, 2, 2, 2, 2, 2, 2, 2}, {2, 2, 2, 2}},
    };

    std::printf("Qubit-native vs qudit-packed preparation of the same state\n\n");
    std::printf("%-32s | %8s %9s %9s | %8s %9s %9s\n", "workload", "ops", "medCtl",
                "2q-cost", "ops", "medCtl", "2q-cost");
    std::printf("%-32s | %28s | %28s\n", "", "qubit-native", "qudit-packed");

    Rng rng(Rng::kDefaultSeed);
    for (const auto& workload : workloads) {
        StateVector state({2});
        const std::string label = workload.label;
        if (label.rfind("GHZ", 0) == 0) {
            state = states::ghz(workload.qubits);
        } else if (label.rfind("W", 0) == 0) {
            state = states::wState(workload.qubits);
        } else {
            state = states::random(workload.qubits, rng);
        }
        const StateVector packed = groupSites(state, workload.grouping);

        const auto native = prepareExact(state, lean);
        const auto grouped = prepareExact(packed, lean);

        std::printf("%-32s | %8zu %9.1f %9zu | %8zu %9.1f %9zu\n", workload.label,
                    native.circuit.numOperations(),
                    native.circuit.stats().medianControls,
                    estimateTwoQuditCost(native.circuit),
                    grouped.circuit.numOperations(),
                    grouped.circuit.stats().medianControls,
                    estimateTwoQuditCost(grouped.circuit));
    }
    std::printf("\nPacking shortens control chains (fewer sites above each node) at\n"
                "the price of larger local rotations — the ref [15] trade-off.\n");
    return 0;
}
