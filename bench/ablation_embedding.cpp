// Ablation F: qubit-to-qudit compression (the paper's reference [15]).
// Prepare the same n-qubit state twice — natively on qubits, and packed
// into higher-dimensional qudits — and compare synthesis cost. Packing
// trades control count (circuit "width" of conditions) for local dimension:
// fewer, wider rotations with fewer controls, exactly the compression
// effect ref [15] exploits. The timed region covers both syntheses.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/statevec/regroup.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <string>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    struct PackedWorkload {
        const char* label;
        Dimensions qubits;
        std::vector<std::size_t> grouping;
    };
    const std::vector<PackedWorkload> workloads = {
        {"GHZ 6 qubits -> 3 ququarts", {2, 2, 2, 2, 2, 2}, {2, 2, 2}},
        {"GHZ 6 qubits -> 2 octits", {2, 2, 2, 2, 2, 2}, {3, 3}},
        {"W 6 qubits -> 3 ququarts", {2, 2, 2, 2, 2, 2}, {2, 2, 2}},
        {"random 6 qubits -> 3 ququarts", {2, 2, 2, 2, 2, 2}, {2, 2, 2}},
        {"random 8 qubits -> 4 ququarts", {2, 2, 2, 2, 2, 2, 2, 2}, {2, 2, 2, 2}},
    };

    Harness harness("ablation_embedding");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : workloads) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = workload.label;
        spec.dims = workload.qubits;
        spec.reps = 5;
        spec.smoke = std::string(workload.label).rfind("GHZ 6 qubits -> 3", 0) == 0;
        spec.body = [workload, caseSeed, lean](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            StateVector state({2});
            const std::string label = workload.label;
            if (label.rfind("GHZ", 0) == 0) {
                state = states::ghz(workload.qubits);
            } else if (label.rfind("W", 0) == 0) {
                state = states::wState(workload.qubits);
            } else {
                state = states::random(workload.qubits, rng);
            }
            const StateVector packed = groupSites(state, workload.grouping);

            PreparationResult native;
            PreparationResult grouped;
            rep.time([&] {
                native = prepareExact(state, lean);
                grouped = prepareExact(packed, lean);
            });
            rep.metric("native_ops",
                       static_cast<double>(native.circuit.numOperations()));
            rep.metric("native_median_controls", native.circuit.stats().medianControls);
            rep.metric("native_2q_cost",
                       static_cast<double>(estimateTwoQuditCost(native.circuit)));
            rep.metric("packed_ops",
                       static_cast<double>(grouped.circuit.numOperations()));
            rep.metric("packed_median_controls", grouped.circuit.stats().medianControls);
            rep.metric("packed_2q_cost",
                       static_cast<double>(estimateTwoQuditCost(grouped.circuit)));
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
