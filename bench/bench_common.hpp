#pragma once

// Shared benchmark configuration: the exact workloads of the paper's
// Table 1. Register orders for the two 6-qudit rows are the ones implied by
// the paper's own node counts (see DESIGN.md).

#include "mqsp/states/states.hpp"
#include "mqsp/support/mixed_radix.hpp"
#include "mqsp/support/rng.hpp"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace mqsp::bench {

/// One benchmark row: a state family on a register.
struct Workload {
    std::string family;   ///< "Emb. W-State", "GHZ State", ...
    Dimensions dims;      ///< most significant qudit first
    bool randomized;      ///< true when every run draws a fresh state
};

/// The 14 rows of Table 1, in paper order.
inline std::vector<Workload> table1Workloads() {
    const Dimensions r3{3, 6, 2};
    const Dimensions r4{9, 5, 6, 3};
    const Dimensions r5{6, 6, 5, 3, 3};
    const Dimensions r6a{5, 4, 2, 5, 5, 2};
    const Dimensions r6b{4, 7, 4, 4, 3, 5};
    return {
        {"Emb. W-State", r3, false}, {"Emb. W-State", r4, false},
        {"Emb. W-State", r6b, false},
        {"GHZ State", r3, false},    {"GHZ State", r4, false},
        {"GHZ State", r6b, false},
        {"W-State", r3, false},      {"W-State", r4, false},
        {"W-State", r6b, false},
        {"Random State", r3, true},  {"Random State", r4, true},
        {"Random State", r5, true},  {"Random State", r6a, true},
        {"Random State", r6b, true},
    };
}

/// Deterministic per-repetition RNG: the same (caseSeed, repIndex) pair
/// always yields the same stream, so a case's recorded metrics are invariant
/// to --warmup and --reps, and paired cases (e.g. table1_full's exact and
/// approx98 columns) evaluate the same sampled state per repetition by
/// sharing a caseSeed. Warmup repetitions use negative indices and land on
/// distinct streams without shifting the measured ones.
inline Rng repetitionRng(std::uint64_t caseSeed, int repIndex) {
    const auto stride = 0x9E37'79B9'7F4A'7C15ULL; // golden-ratio increment
    const auto offset = static_cast<std::uint64_t>(static_cast<std::int64_t>(repIndex));
    return Rng(caseSeed + stride * (offset + 1));
}

/// Instantiate the workload's target state. For randomized workloads the
/// caller provides a per-run RNG.
inline StateVector makeState(const Workload& workload, Rng& rng) {
    if (workload.family == "GHZ State") {
        return states::ghz(workload.dims);
    }
    if (workload.family == "W-State") {
        return states::wState(workload.dims);
    }
    if (workload.family == "Emb. W-State") {
        return states::embeddedWState(workload.dims);
    }
    return states::random(workload.dims, rng);
}

} // namespace mqsp::bench
