#pragma once

// Shared benchmark configuration: the exact workloads of the paper's
// Table 1. Register orders for the two 6-qudit rows are the ones implied by
// the paper's own node counts (see DESIGN.md).

#include "mqsp/states/states.hpp"
#include "mqsp/support/mixed_radix.hpp"
#include "mqsp/support/rng.hpp"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace mqsp::bench {

/// One benchmark row: a state family on a register.
struct Workload {
    std::string family;   ///< "Emb. W-State", "GHZ State", ...
    Dimensions dims;      ///< most significant qudit first
    bool randomized;      ///< true when every run draws a fresh state
};

/// The 14 rows of Table 1, in paper order.
inline std::vector<Workload> table1Workloads() {
    const Dimensions r3{3, 6, 2};
    const Dimensions r4{9, 5, 6, 3};
    const Dimensions r5{6, 6, 5, 3, 3};
    const Dimensions r6a{5, 4, 2, 5, 5, 2};
    const Dimensions r6b{4, 7, 4, 4, 3, 5};
    return {
        {"Emb. W-State", r3, false}, {"Emb. W-State", r4, false},
        {"Emb. W-State", r6b, false},
        {"GHZ State", r3, false},    {"GHZ State", r4, false},
        {"GHZ State", r6b, false},
        {"W-State", r3, false},      {"W-State", r4, false},
        {"W-State", r6b, false},
        {"Random State", r3, true},  {"Random State", r4, true},
        {"Random State", r5, true},  {"Random State", r6a, true},
        {"Random State", r6b, true},
    };
}

/// Instantiate the workload's target state. For randomized workloads the
/// caller provides a per-run RNG.
inline StateVector makeState(const Workload& workload, Rng& rng) {
    if (workload.family == "GHZ State") {
        return states::ghz(workload.dims);
    }
    if (workload.family == "W-State") {
        return states::wState(workload.dims);
    }
    if (workload.family == "Emb. W-State") {
        return states::embeddedWState(workload.dims);
    }
    return states::random(workload.dims, rng);
}

/// Number of repetitions the paper averages over.
inline constexpr int kPaperRuns = 40;

} // namespace mqsp::bench
