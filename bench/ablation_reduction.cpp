// Ablation C: the reduction (sub-tree sharing) rule of §4.3. Measures, for
// states with exploitable structure, (a) the memory saving — distinct nodes
// stored once instead of per path — and (b) the control saving from the
// tensor-product elision rule, reported both as control counts and as the
// estimated two-qudit cost after transpilation (the paper's "more
// resource-efficient sequences of operations").

#include "bench_common.hpp"

#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <cstdio>

namespace {

void reportRow(const char* name, const mqsp::StateVector& state) {
    using namespace mqsp;

    DecisionDiagram tree = DecisionDiagram::fromStateVector(state);
    const auto nodesTree = tree.nodeCount(NodeCountMode::Internal);

    DecisionDiagram dag = DecisionDiagram::fromStateVector(state);
    dag.reduce();
    const auto nodesDag = dag.nodeCount(NodeCountMode::Internal);

    SynthesisOptions with;
    with.emitIdentityOperations = false;
    with.elideTensorProductControls = true;
    SynthesisOptions without = with;
    without.elideTensorProductControls = false;

    const Circuit elided = synthesize(dag, with);
    const Circuit plain = synthesize(dag, without);

    std::printf("%-24s %10llu %10llu %10zu %10zu %12zu %12zu\n", name,
                static_cast<unsigned long long>(nodesTree),
                static_cast<unsigned long long>(nodesDag),
                plain.stats().totalControls, elided.stats().totalControls,
                estimateTwoQuditCost(plain), estimateTwoQuditCost(elided));
}

} // namespace

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    std::printf("Reduction (sharing) ablation\n\n");
    std::printf("%-24s %10s %10s %10s %10s %12s %12s\n", "state", "nodes", "nodes",
                "controls", "controls", "2q-cost", "2q-cost");
    std::printf("%-24s %10s %10s %10s %10s %12s %12s\n", "", "(tree)", "(reduced)",
                "(plain)", "(elided)", "(plain)", "(elided)");

    Rng rng(Rng::kDefaultSeed);
    reportRow("uniform [3,6,2]", states::uniform({3, 6, 2}));
    reportRow("uniform [9,5,6,3]", states::uniform({9, 5, 6, 3}));
    reportRow("uniform [4,7,4,4,3,5]", states::uniform({4, 7, 4, 4, 3, 5}));
    reportRow("ghz [3,6,2]", states::ghz({3, 6, 2}));
    reportRow("ghz [9,5,6,3]", states::ghz({9, 5, 6, 3}));
    reportRow("w [9,5,6,3]", states::wState({9, 5, 6, 3}));
    reportRow("embw [4,7,4,4,3,5]", states::embeddedWState({4, 7, 4, 4, 3, 5}));
    reportRow("random [3,6,2]", states::random({3, 6, 2}, rng));
    reportRow("product(u3 x rand)", [] {
        Rng inner(7);
        return states::uniform({3}).kron(states::random({4, 2}, inner));
    }());

    std::printf("\nUniform/product states collapse to one node per level and lose "
                "all controls;\nrandom dense states have no redundancy and gain "
                "nothing — the paper's expected shape.\n");
    return 0;
}
