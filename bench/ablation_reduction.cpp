// Ablation C: the reduction (sub-tree sharing) rule of §4.3. Measures, for
// states with exploitable structure, (a) the memory saving — distinct nodes
// stored once instead of per path — and (b) the control saving from the
// tensor-product elision rule, reported both as control counts and as the
// estimated two-qudit cost after transpilation (the paper's "more
// resource-efficient sequences of operations"). Uniform/product states
// collapse to one node per level and lose all controls; random dense states
// have no redundancy and gain nothing. The timed region covers reduce()
// plus both syntheses.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <functional>
#include <utility>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    struct ReductionCase {
        const char* label;
        Dimensions dims;
        std::function<StateVector()> make;
        bool smoke = false;
    };
    const std::vector<ReductionCase> cases = {
        {"uniform", {3, 6, 2}, [] { return states::uniform({3, 6, 2}); }, true},
        {"uniform", {9, 5, 6, 3}, [] { return states::uniform({9, 5, 6, 3}); }, false},
        {"uniform",
         {4, 7, 4, 4, 3, 5},
         [] { return states::uniform({4, 7, 4, 4, 3, 5}); },
         false},
        {"ghz", {3, 6, 2}, [] { return states::ghz({3, 6, 2}); }, false},
        {"ghz", {9, 5, 6, 3}, [] { return states::ghz({9, 5, 6, 3}); }, false},
        {"w", {9, 5, 6, 3}, [] { return states::wState({9, 5, 6, 3}); }, false},
        {"embw",
         {4, 7, 4, 4, 3, 5},
         [] { return states::embeddedWState({4, 7, 4, 4, 3, 5}); },
         false},
        {"random",
         {3, 6, 2},
         [] {
             Rng rng(Rng::kDefaultSeed);
             return states::random({3, 6, 2}, rng);
         },
         false},
        {"product(u3 x rand)",
         {3, 4, 2},
         [] {
             Rng inner(7);
             return states::uniform({3}).kron(states::random({4, 2}, inner));
         },
         false},
    };

    Harness harness("ablation_reduction");
    for (const auto& reductionCase : cases) {
        CaseSpec spec;
        spec.name = reductionCase.label;
        spec.dims = reductionCase.dims;
        spec.reps = 5;
        spec.smoke = reductionCase.smoke;
        spec.body = [make = reductionCase.make](Repetition& rep) {
            const StateVector state = make();

            DecisionDiagram tree = DecisionDiagram::fromStateVector(state);
            const auto nodesTree = tree.nodeCount(NodeCountMode::Internal);

            SynthesisOptions with;
            with.emitIdentityOperations = false;
            with.elideTensorProductControls = true;
            SynthesisOptions without = with;
            without.elideTensorProductControls = false;

            DecisionDiagram dag = DecisionDiagram::fromStateVector(state);
            Circuit elided;
            Circuit plain;
            rep.time([&] {
                dag.reduce();
                elided = synthesize(dag, with);
                plain = synthesize(dag, without);
            });
            const auto nodesDag = dag.nodeCount(NodeCountMode::Internal);

            rep.metric("nodes_tree", static_cast<double>(nodesTree));
            rep.metric("nodes_reduced", static_cast<double>(nodesDag));
            rep.metric("controls_plain",
                       static_cast<double>(plain.stats().totalControls));
            rep.metric("controls_elided",
                       static_cast<double>(elided.stats().totalControls));
            rep.metric("2q_cost_plain", static_cast<double>(estimateTwoQuditCost(plain)));
            rep.metric("2q_cost_elided",
                       static_cast<double>(estimateTwoQuditCost(elided)));
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
