// Noise-model validation: the product-form fidelity estimator
// (hardware/router.hpp) against the depolarizing density-matrix simulation
// (sim/density_simulator.hpp) on synthesized preparation circuits, across a
// sweep of two-qudit error rates. Agreement at small rates justifies using
// the cheap estimator to rank routed circuits in the hardware ablation.

#include "bench_common.hpp"

#include "mqsp/hardware/router.hpp"
#include "mqsp/sim/density_simulator.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    struct Case {
        const char* label;
        Dimensions dims;
    };
    const Case cases[] = {
        {"GHZ [3,3]", {3, 3}},
        {"W [3,3]", {3, 3}},
        {"GHZ [3,6,2]", {3, 6, 2}},
        {"random [3,2,2]", {3, 2, 2}},
    };

    std::printf("Estimator vs density-matrix simulation (depolarizing noise)\n\n");
    std::printf("%-16s %8s | %10s %10s %10s\n", "circuit", "eps2", "estimated",
                "simulated", "|delta|");

    Rng rng(Rng::kDefaultSeed);
    for (const auto& testCase : cases) {
        StateVector target({2});
        const std::string label = testCase.label;
        if (label.rfind("GHZ", 0) == 0) {
            target = states::ghz(testCase.dims);
        } else if (label.rfind("W", 0) == 0) {
            target = states::wState(testCase.dims);
        } else {
            target = states::random(testCase.dims, rng);
        }
        const auto prep = prepareExact(target, lean);
        for (const double eps : {1e-4, 1e-3, 5e-3, 2e-2}) {
            NoiseModel noise;
            noise.singleQuditError = eps / 10.0;
            noise.twoQuditError = eps;
            const double estimated = estimateCircuitFidelity(prep.circuit, noise);
            const double simulated =
                NoisySimulator::run(prep.circuit, noise).fidelityWithPure(target);
            std::printf("%-16s %8.0e | %10.5f %10.5f %10.2e\n", testCase.label, eps,
                        estimated, simulated, std::abs(estimated - simulated));
        }
    }
    std::printf("\nThe estimator is exact to first order in eps; the gap is the\n"
                "O(eps^2) depolarizing back-action the product form ignores.\n");
    return 0;
}
