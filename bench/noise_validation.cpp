// Noise-model validation: the product-form fidelity estimator
// (hardware/router.hpp) against the depolarizing density-matrix simulation
// (sim/density_simulator.hpp) on synthesized preparation circuits, across a
// sweep of two-qudit error rates. Agreement at small rates justifies using
// the cheap estimator to rank routed circuits in the hardware ablation: the
// estimator is exact to first order in eps, the gap is the O(eps^2)
// depolarizing back-action the product form ignores. The timed region is
// the density-matrix simulation.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/hardware/router.hpp"
#include "mqsp/sim/density_simulator.hpp"
#include "mqsp/support/parallel.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cmath>
#include <cstdio>
#include <string>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    struct NoiseCase {
        const char* label;
        Dimensions dims;
    };
    const NoiseCase cases[] = {
        {"GHZ", {3, 3}},
        {"W", {3, 3}},
        {"GHZ", {3, 6, 2}},
        {"random", {3, 2, 2}},
    };

    Harness harness("noise_validation");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& noiseCase : cases) {
        for (const double eps : {1e-4, 1e-3, 5e-3, 2e-2}) {
            const std::uint64_t caseSeed = driverSeeder.childSeed();
            char label[48];
            std::snprintf(label, sizeof(label), "%s eps=%.0e", noiseCase.label, eps);
            CaseSpec spec;
            spec.name = label;
            spec.dims = noiseCase.dims;
            spec.reps = 5;
            spec.smoke =
                std::string(noiseCase.label) == "GHZ" && noiseCase.dims.size() == 2 &&
                eps == 1e-3;
            spec.body = [family = std::string(noiseCase.label), dims = noiseCase.dims,
                         eps, caseSeed, lean](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                StateVector target({2});
                if (family == "GHZ") {
                    target = states::ghz(dims);
                } else if (family == "W") {
                    target = states::wState(dims);
                } else {
                    target = states::random(dims, rng);
                }
                const auto prep = prepareExact(target, lean);

                NoiseModel noise;
                noise.singleQuditError = eps / 10.0;
                noise.twoQuditError = eps;
                const double estimated = estimateCircuitFidelity(prep.circuit, noise);
                double simulated = 0.0;
                rep.time([&] {
                    simulated =
                        NoisySimulator().run(prep.circuit, noise).fidelityWithPure(target);
                });
                rep.metric("estimated_fidelity", estimated);
                rep.metric("simulated_fidelity", simulated);
                rep.metric("abs_delta", std::abs(estimated - simulated));
            };
            harness.add(std::move(spec));
        }
    }

    // Thread-scaling rows on a register past the largest sweep case
    // ({3, 6, 2} = 36 amplitudes): GHZ on {4, 3, 3, 2} = 72 amplitudes, a
    // 72 x 72 density matrix replayed by the now-parallel kernels. The
    // fidelity metrics are bit-identical across thread counts (disjoint
    // writes + ordered-chunk reductions), so every row is metrics-gateable;
    // only the timings vary with width.
    {
        const Dimensions scalingDims{4, 3, 3, 2};
        const double scalingEps = 1e-3;
        for (const unsigned threads : {1U, 2U, 4U, 8U}) {
            CaseSpec spec;
            spec.name = "GHZ scaling eps=1e-03";
            spec.dims = scalingDims;
            spec.threads = threads;
            spec.reps = 5;
            spec.smoke = threads == 4;
            spec.body = [dims = scalingDims, eps = scalingEps, lean,
                         threads](Repetition& rep) {
                const StateVector target = states::ghz(dims);
                const auto prep = prepareExact(target, lean);

                NoiseModel noise;
                noise.singleQuditError = eps / 10.0;
                noise.twoQuditError = eps;
                const double estimated = estimateCircuitFidelity(prep.circuit, noise);
                const NoisySimulator simulator(parallel::ExecutionConfig{threads});
                double simulated = 0.0;
                double traceValue = 0.0;
                rep.time([&] {
                    const DensityMatrix rho = simulator.run(prep.circuit, noise);
                    simulated = rho.fidelityWithPure(target);
                    traceValue = rho.trace();
                });
                rep.metric("estimated_fidelity", estimated);
                rep.metric("simulated_fidelity", simulated);
                rep.metric("trace", traceValue);
                rep.metric("abs_delta", std::abs(estimated - simulated));
            };
            harness.add(std::move(spec));
        }
    }
    return harness.main(argc, argv);
}
