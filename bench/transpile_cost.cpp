// Transpile-cost extension of Table 1: for every benchmark row, the number
// of one- and two-qudit operations after lowering the synthesized circuit
// with the [35]/[36]-style decomposition, exact vs approximated. This makes
// the paper's §4.3 claim ("reduction in the number of controls ... enabling
// the translation to more resource-efficient sequences of operations")
// quantitative at the two-qudit gate level.

#include "bench_common.hpp"

#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    std::printf("Two-qudit cost after transpilation (identity-elided circuits)\n\n");
    std::printf("%-14s %-22s | %10s %12s | %10s %12s %9s\n", "Name", "Qudits", "hl-ops",
                "2q-cost", "hl-ops", "2q-cost", "saved");
    std::printf("%-14s %-22s | %23s | %s\n", "", "", "exact", "approximated 98%");

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        Rng rng(seeder.childSeed());
        const StateVector state = makeState(workload, rng);
        const auto exact = prepareExact(state, lean);
        const auto approx = prepareApproximated(state, 0.98, lean);
        const std::size_t exactCost = estimateTwoQuditCost(exact.circuit);
        const std::size_t approxCost = estimateTwoQuditCost(approx.circuit);
        const double saved = exactCost == 0
                                 ? 0.0
                                 : 100.0 * (1.0 - static_cast<double>(approxCost) /
                                                      static_cast<double>(exactCost));
        std::printf("%-14s %-22s | %10zu %12zu | %10zu %12zu %8.1f%%\n",
                    workload.family.c_str(),
                    formatDimensionSpec(workload.dims).c_str(),
                    exact.circuit.numOperations(), exactCost,
                    approx.circuit.numOperations(), approxCost, saved);
    }
    return 0;
}
