// Transpile-cost extension of Table 1: for every benchmark row, the number
// of one- and two-qudit operations after lowering the synthesized circuit
// with the [35]/[36]-style decomposition, exact vs approximated. This makes
// the paper's §4.3 claim ("reduction in the number of controls ... enabling
// the translation to more resource-efficient sequences of operations")
// quantitative at the two-qudit gate level. The timed region is the cost
// estimation of both circuits (synthesis is setup).

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"


int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Harness harness("transpile_cost");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = workload.family;
        spec.dims = workload.dims;
        spec.reps = 5;
        spec.smoke = workload.family == "GHZ State" && workload.dims.size() == 3;
        spec.body = [workload, caseSeed, lean](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            const StateVector state = makeState(workload, rng);
            const auto exact = prepareExact(state, lean);
            const auto approx = prepareApproximated(state, 0.98, lean);
            std::size_t exactCost = 0;
            std::size_t approxCost = 0;
            rep.time([&] {
                exactCost = estimateTwoQuditCost(exact.circuit);
                approxCost = estimateTwoQuditCost(approx.circuit);
            });
            rep.metric("exact_hl_ops",
                       static_cast<double>(exact.circuit.numOperations()));
            rep.metric("exact_2q_cost", static_cast<double>(exactCost));
            rep.metric("approx_hl_ops",
                       static_cast<double>(approx.circuit.numOperations()));
            rep.metric("approx_2q_cost", static_cast<double>(approxCost));
            rep.metric("saved_percent",
                       exactCost == 0 ? 0.0
                                      : 100.0 * (1.0 - static_cast<double>(approxCost) /
                                                           static_cast<double>(exactCost)));
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
