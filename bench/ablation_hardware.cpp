// Ablation D (beyond the paper; its stated future work): hardware-aware
// cost of the synthesized circuits. For each benchmark family, lower the
// state-preparation circuit to two-level operations and map it onto device
// topologies, reporting routing overhead and the noise-model fidelity
// estimate. A second case group shows how approximation (fewer ops and
// controls) propagates into the routed cost — the paper's "more
// resource-efficient sequences of operations" made quantitative. The timed
// region covers transpilation plus routing.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/hardware/router.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    NoiseModel noise;
    noise.singleQuditError = 1e-4;
    noise.twoQuditError = 5e-3;

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Harness harness("ablation_hardware");

    // Uniform-dimension registers so chain routing is dimension-compatible.
    const std::vector<Dimensions> registers{{3, 3, 3}, {3, 3, 3, 3}, {4, 4, 4, 4}};
    const char* families[] = {"GHZ", "W", "random"};
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& dims : registers) {
        for (const char* family : families) {
            const std::uint64_t caseSeed = driverSeeder.childSeed();
            CaseSpec spec;
            spec.name = family;
            spec.dims = dims;
            spec.reps = 5;
            spec.smoke = std::string(family) == "GHZ" && dims.size() == 3;
            spec.body = [dims, family = std::string(family), caseSeed, lean,
                         noise](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                StateVector state({2});
                if (family == "GHZ") {
                    state = states::ghz(dims);
                } else if (family == "W") {
                    state = states::wState(dims);
                } else {
                    state = states::random(dims, rng);
                }
                const auto prep = prepareExact(state, lean);
                TranspileResult lowered;
                RoutingResult full;
                rep.time([&] {
                    lowered = transpileToTwoQudit(prep.circuit);
                    full = routeCircuit(lowered.circuit,
                                        Architecture::allToAll(
                                            lowered.circuit.dimensions(), noise));
                });
                rep.metric("hl_ops", static_cast<double>(prep.circuit.numOperations()));
                rep.metric("2l_ops",
                           static_cast<double>(lowered.circuit.numOperations()));
                rep.metric("a2a_2q_ops", static_cast<double>(full.twoQuditOps));
                rep.metric("a2a_est_fidelity",
                           estimateCircuitFidelity(full.circuit, noise));
                // Ancillas are qubits; chains over mixed dims cannot swap
                // across them, so chain routing only applies without ancillas.
                if (lowered.numAncillas == 0) {
                    const auto chain =
                        routeCircuit(lowered.circuit,
                                     Architecture::linearChain(
                                         lowered.circuit.dimensions(), noise));
                    rep.metric("chain_2q_ops", static_cast<double>(chain.twoQuditOps));
                    rep.metric("chain_est_fidelity",
                               estimateCircuitFidelity(chain.circuit, noise));
                }
            };
            harness.add(std::move(spec));
        }
    }

    // Approximation propagating into routed cost (random state on [4x4]).
    const Dimensions sweepDims{4, 4, 4, 4};
    for (const double threshold : {1.0, 0.98, 0.90, 0.80}) {
        char label[40];
        std::snprintf(label, sizeof(label), "random routed t=%.2f", threshold);
        CaseSpec spec;
        spec.name = label;
        spec.dims = sweepDims;
        spec.reps = 5;
        spec.body = [sweepDims, threshold, lean, noise](Repetition& rep) {
            Rng rng(7);
            const StateVector state = states::random(sweepDims, rng);
            const auto prep = threshold == 1.0
                                  ? prepareExact(state, lean)
                                  : prepareApproximated(state, threshold, lean);
            TranspileResult lowered;
            RoutingResult routed;
            rep.time([&] {
                lowered = transpileToTwoQudit(prep.circuit);
                routed = routeCircuit(lowered.circuit,
                                      Architecture::allToAll(
                                          lowered.circuit.dimensions(), noise));
            });
            rep.metric("hl_ops", static_cast<double>(prep.circuit.numOperations()));
            rep.metric("routed_2q_ops", static_cast<double>(routed.twoQuditOps));
            rep.metric("est_fidelity", estimateCircuitFidelity(routed.circuit, noise));
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
