// Ablation D (beyond the paper; its stated future work): hardware-aware
// cost of the synthesized circuits. For each benchmark family, lower the
// state-preparation circuit to two-level operations and map it onto three
// device topologies, reporting routing overhead and the noise-model
// fidelity estimate. Also shows how approximation (fewer ops and controls)
// propagates into the routed cost — the paper's "more resource-efficient
// sequences of operations" made quantitative.

#include "bench_common.hpp"

#include "mqsp/hardware/router.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    NoiseModel noise;
    noise.singleQuditError = 1e-4;
    noise.twoQuditError = 5e-3;

    // Uniform-dimension registers so chain routing is dimension-compatible.
    const std::vector<Dimensions> registers{{3, 3, 3}, {3, 3, 3, 3}, {4, 4, 4, 4}};
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    std::printf("Routing overhead and noise-estimated fidelity per topology\n\n");
    std::printf("%-14s %-14s %9s %9s | %21s | %21s\n", "", "", "", "", "all-to-all",
                "linear chain");
    std::printf("%-14s %-14s %9s %9s | %9s %11s | %9s %11s\n", "state", "register",
                "hl-ops", "2l-ops", "2q-ops", "est.fid", "2q-ops", "est.fid");

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& dims : registers) {
        struct Case {
            const char* label;
            StateVector state;
        };
        Rng rng(seeder.childSeed());
        const Case cases[] = {
            {"GHZ", states::ghz(dims)},
            {"W", states::wState(dims)},
            {"random", states::random(dims, rng)},
        };
        for (const auto& [label, state] : cases) {
            const auto prep = prepareExact(state, lean);
            const auto lowered = transpileToTwoQudit(prep.circuit);
            const Dimensions device = lowered.circuit.dimensions();
            // Ancillas are qubits; chains over mixed dims cannot swap across
            // them, so route on all-to-all when ancillas exist, and on both
            // when the register is uniform without ancillas.
            const auto full =
                routeCircuit(lowered.circuit, Architecture::allToAll(device, noise));
            std::printf("%-14s %-14s %9zu %9zu | %9zu %11.4f | ", label,
                        formatDimensionSpec(dims).c_str(), prep.circuit.numOperations(),
                        lowered.circuit.numOperations(), full.twoQuditOps,
                        estimateCircuitFidelity(full.circuit, noise));
            if (lowered.numAncillas == 0) {
                const auto chain = routeCircuit(lowered.circuit,
                                                Architecture::linearChain(device, noise));
                std::printf("%9zu %11.4f\n", chain.twoQuditOps,
                            estimateCircuitFidelity(chain.circuit, noise));
            } else {
                std::printf("%9s %11s\n", "(anc)", "(anc)");
            }
        }
    }

    std::printf("\nApproximation propagates into routed cost (random state, %s):\n",
                "[4x4]");
    const Dimensions dims{4, 4, 4, 4};
    Rng rng(7);
    const StateVector state = states::random(dims, rng);
    std::printf("%10s %9s %9s %11s\n", "threshold", "hl-ops", "2q-ops", "est.fid");
    for (const double threshold : {1.0, 0.98, 0.90, 0.80}) {
        const auto prep = threshold == 1.0 ? prepareExact(state, lean)
                                           : prepareApproximated(state, threshold, lean);
        const auto lowered = transpileToTwoQudit(prep.circuit);
        const auto routed = routeCircuit(
            lowered.circuit, Architecture::allToAll(lowered.circuit.dimensions(), noise));
        std::printf("%10.2f %9zu %9zu %11.4f\n", threshold, prep.circuit.numOperations(),
                    routed.twoQuditOps, estimateCircuitFidelity(routed.circuit, noise));
    }
    return 0;
}
