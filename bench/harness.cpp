#include "harness.hpp"

#include "cli_args.hpp"

#include "mqsp/support/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <exception>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mqsp::bench {

namespace {

using SteadyClock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t elapsedNsSince(const SteadyClock::time_point& start) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() - start)
        .count();
}


/// JSON string escaping for the small character set our labels use.
[[nodiscard]] std::string escapeJson(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// Shortest round-trippable representation of a metric value.
[[nodiscard]] std::string formatJsonNumber(double value) {
    if (!std::isfinite(value)) {
        return "null";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    double reparsed = 0.0;
    std::sscanf(buf, "%lf", &reparsed);
    for (int precision = 6; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
        std::sscanf(shorter, "%lf", &reparsed);
        if (reparsed == value) {
            return shorter;
        }
    }
    return buf;
}

[[nodiscard]] double metricMean(const MetricSample& metric) {
    return metric.count == 0 ? 0.0 : metric.sum / metric.count;
}

void printHumanReport(const std::string& driver, const RunOptions& options,
                      const std::vector<CaseResult>& results) {
    std::printf("%s — %zu case(s), %s mode\n\n", driver.c_str(), results.size(),
                options.smoke ? "smoke" : "full");
    std::printf("%-32s %-18s %-7s %3s %5s %10s %10s %10s %10s %10s\n", "case", "dims",
                "backend", "thr", "reps", "min[ms]", "med[ms]", "mean[ms]", "sd[ms]",
                "cpu md[ms]");
    for (const auto& result : results) {
        std::printf("%-32s %-18s %-7s %3u %5d %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                    result.name.c_str(), result.dims.empty() ? "-" : result.dims.c_str(),
                    result.backend.empty() ? "-" : result.backend.c_str(), result.threads,
                    result.reps, result.stats.minNs * 1e-6, result.stats.medianNs * 1e-6,
                    result.stats.meanNs * 1e-6, result.stats.stddevNs * 1e-6,
                    result.cpuStats.medianNs * 1e-6);
        if (!result.metrics.empty()) {
            std::printf("  ");
            for (const auto& metric : result.metrics) {
                std::printf(" %s=%.4g", metric.name.c_str(), metricMean(metric));
            }
            std::printf("\n");
        }
        if (result.failed) {
            std::printf("   FAILED: %s\n", result.error.c_str());
        }
    }
}

void usage(const std::string& driver) {
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --smoke          run only smoke-marked cases, 1 rep, no warmup\n"
                 "  --reps <n>       override the repetition count for every case\n"
                 "  --warmup <n>     untimed warmup repetitions per case (default 1)\n"
                 "  --threads <n>    worker threads for cases not pinned by their spec\n"
                 "                   (default: MQSP_THREADS, else hardware concurrency)\n"
                 "  --case <substr>  run only cases whose name, dims or backend contain\n"
                 "                   <substr>, or whose tN thread tag equals it (--case t4)\n"
                 "  --json <path>    also write the mqsp-bench-v1 JSON report to <path>\n"
                 "  --list           print the registered case names and exit\n",
                 driver.c_str());
}

} // namespace

std::int64_t processCpuNs() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
    }
#endif
    // Fallback: std::clock is process CPU time on POSIX (coarser tick).
    return static_cast<std::int64_t>(static_cast<double>(std::clock()) *
                                     (1e9 / CLOCKS_PER_SEC));
}

void Repetition::time(const std::function<void()>& timedSection) {
    if (timed_) {
        throw std::logic_error("Repetition::time() called twice in one repetition");
    }
    const std::int64_t cpuStart = processCpuNs();
    const auto start = SteadyClock::now();
    timedSection();
    elapsedNs_ = elapsedNsSince(start);
    cpuNs_ = processCpuNs() - cpuStart;
    timed_ = true;
}

void Repetition::metric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
}

CaseStats computeStats(const std::vector<std::int64_t>& timesNs) {
    CaseStats stats;
    if (timesNs.empty()) {
        return stats;
    }
    std::vector<std::int64_t> sorted(timesNs);
    std::sort(sorted.begin(), sorted.end());
    stats.minNs = static_cast<double>(sorted.front());
    const std::size_t n = sorted.size();
    stats.medianNs = n % 2 == 1 ? static_cast<double>(sorted[n / 2])
                                : 0.5 * (static_cast<double>(sorted[n / 2 - 1]) +
                                         static_cast<double>(sorted[n / 2]));
    double sum = 0.0;
    for (const auto t : sorted) {
        sum += static_cast<double>(t);
    }
    stats.meanNs = sum / static_cast<double>(n);
    if (n >= 2) {
        double accum = 0.0;
        for (const auto t : sorted) {
            const double delta = static_cast<double>(t) - stats.meanNs;
            accum += delta * delta;
        }
        stats.stddevNs = std::sqrt(accum / static_cast<double>(n - 1));
    }
    return stats;
}

void writeJsonReport(std::ostream& out, const std::string& driver, const RunOptions& options,
                     const std::vector<CaseResult>& results) {
    out << "{\n";
    out << "  \"schema\": \"mqsp-bench-v1\",\n";
    out << "  \"driver\": \"" << escapeJson(driver) << "\",\n";
    out << "  \"mode\": \"" << (options.smoke ? "smoke" : "full") << "\",\n";
    out << "  \"filter\": \"" << escapeJson(options.caseFilter) << "\",\n";
    out << "  \"cases\": [";
    bool firstCase = true;
    for (const auto& result : results) {
        out << (firstCase ? "\n" : ",\n");
        firstCase = false;
        out << "    {\n";
        out << "      \"driver\": \"" << escapeJson(driver) << "\",\n";
        out << "      \"case\": \"" << escapeJson(result.name) << "\",\n";
        out << "      \"dims\": \"" << escapeJson(result.dims) << "\",\n";
        if (!result.backend.empty()) {
            out << "      \"backend\": \"" << escapeJson(result.backend) << "\",\n";
        }
        out << "      \"threads\": " << result.threads << ",\n";
        out << "      \"reps\": " << result.reps << ",\n";
        out << "      \"warmup\": " << result.warmup << ",\n";
        out << "      \"times_ns\": [";
        for (std::size_t i = 0; i < result.timesNs.size(); ++i) {
            out << (i == 0 ? "" : ", ") << result.timesNs[i];
        }
        out << "],\n";
        out << "      \"times_cpu_ns\": [";
        for (std::size_t i = 0; i < result.cpuTimesNs.size(); ++i) {
            out << (i == 0 ? "" : ", ") << result.cpuTimesNs[i];
        }
        out << "],\n";
        out << "      \"stats\": {\"min_ns\": " << formatJsonNumber(result.stats.minNs)
            << ", \"median_ns\": " << formatJsonNumber(result.stats.medianNs)
            << ", \"mean_ns\": " << formatJsonNumber(result.stats.meanNs)
            << ", \"stddev_ns\": " << formatJsonNumber(result.stats.stddevNs) << "},\n";
        out << "      \"cpu_stats\": {\"min_ns\": " << formatJsonNumber(result.cpuStats.minNs)
            << ", \"median_ns\": " << formatJsonNumber(result.cpuStats.medianNs)
            << ", \"mean_ns\": " << formatJsonNumber(result.cpuStats.meanNs)
            << ", \"stddev_ns\": " << formatJsonNumber(result.cpuStats.stddevNs) << "},\n";
        out << "      \"metrics\": {";
        bool firstMetric = true;
        for (const auto& metric : result.metrics) {
            out << (firstMetric ? "" : ", ");
            firstMetric = false;
            out << "\"" << escapeJson(metric.name)
                << "\": " << formatJsonNumber(metricMean(metric));
        }
        out << "}";
        if (result.failed) {
            out << ",\n      \"failed\": true,\n";
            out << "      \"error\": \"" << escapeJson(result.error) << "\"\n";
        } else {
            out << "\n";
        }
        out << "    }";
    }
    out << "\n  ]\n}\n";
}

std::vector<CaseResult> Harness::execute(const RunOptions& options) const {
    std::vector<CaseResult> results;
    for (const auto& spec : cases_) {
        const std::string dims = spec.dims.empty() ? "" : formatDimensionSpec(spec.dims);
        // A spec pinned to a thread count always runs there; everything else
        // follows the run-level --threads (or the process-wide default).
        const unsigned effectiveThreads =
            spec.threads != 0  ? spec.threads
            : options.threads != 0 ? options.threads
                                   : parallel::globalThreads();
        if (options.smoke && !spec.smoke) {
            continue;
        }
        // (Built by append: GCC 12's -Wrestrict false-positives on the
        // temporary produced by operator+ here.)
        std::string threadTag = "t";
        threadTag += std::to_string(effectiveThreads);
        if (!options.caseFilter.empty() &&
            spec.name.find(options.caseFilter) == std::string::npos &&
            dims.find(options.caseFilter) == std::string::npos &&
            spec.backend.find(options.caseFilter) == std::string::npos &&
            threadTag != options.caseFilter) {
            continue;
        }
        CaseResult result;
        result.name = spec.name;
        result.dims = dims;
        result.backend = spec.backend;
        result.threads = effectiveThreads;
        result.reps = options.smoke            ? 1
                      : options.repsOverride > 0 ? options.repsOverride
                                                 : spec.reps;
        result.warmup = options.smoke ? 0 : options.warmup;
        try {
            // Per-case pin, restored even when the body throws.
            const parallel::ScopedThreadCount threadScope(effectiveThreads);
            for (int warm = 0; warm < result.warmup; ++warm) {
                Repetition rep(-1 - warm);
                spec.body(rep);
            }
            for (int run = 0; run < result.reps; ++run) {
                Repetition rep(run);
                const std::int64_t bodyCpuStart = processCpuNs();
                const auto bodyStart = SteadyClock::now();
                spec.body(rep);
                const std::int64_t bodyNs = elapsedNsSince(bodyStart);
                const std::int64_t bodyCpuNs = processCpuNs() - bodyCpuStart;
                result.timesNs.push_back(rep.timed() ? rep.elapsedNs() : bodyNs);
                result.cpuTimesNs.push_back(rep.timed() ? rep.cpuNs() : bodyCpuNs);
                for (const auto& [name, value] : rep.metrics()) {
                    auto existing = std::find_if(
                        result.metrics.begin(), result.metrics.end(),
                        [&name = name](const MetricSample& m) { return m.name == name; });
                    if (existing == result.metrics.end()) {
                        result.metrics.push_back({name, value, 1});
                    } else {
                        existing->sum += value;
                        existing->count += 1;
                    }
                }
            }
        } catch (const std::exception& error) {
            result.failed = true;
            result.error = error.what();
        }
        result.stats = computeStats(result.timesNs);
        result.cpuStats = computeStats(result.cpuTimesNs);
        results.push_back(std::move(result));
    }
    return results;
}

int Harness::main(int argc, char** argv) const {
    try {
        if (cli::argFlag(argc, argv, "--help") || cli::argFlag(argc, argv, "-h")) {
            usage(driver_);
            return 0;
        }
        RunOptions options;
        options.smoke = cli::argFlag(argc, argv, "--smoke");
        options.repsOverride =
            static_cast<int>(cli::argUint(argc, argv, "--reps", 0));
        options.warmup = static_cast<int>(cli::argUint(argc, argv, "--warmup", 1));
        options.threads = cli::argThreads(argc, argv);
        options.caseFilter = cli::argValue(argc, argv, "--case").value_or("");
        options.jsonPath = cli::argValue(argc, argv, "--json").value_or("");
        options.list = cli::argFlag(argc, argv, "--list");

        if (options.list) {
            for (const auto& spec : cases_) {
                const std::string threadTag =
                    spec.threads == 0 ? "" : " t" + std::to_string(spec.threads);
                std::printf("%s%s%s%s%s%s%s\n", spec.name.c_str(),
                            spec.dims.empty() ? "" : " ",
                            spec.dims.empty() ? "" : formatDimensionSpec(spec.dims).c_str(),
                            spec.backend.empty() ? "" : " @", spec.backend.c_str(),
                            threadTag.c_str(), spec.smoke ? "  [smoke]" : "");
            }
            return 0;
        }

        const std::vector<CaseResult> results = execute(options);
        printHumanReport(driver_, options, results);

        if (!options.jsonPath.empty()) {
            std::ofstream out(options.jsonPath);
            if (!out.good()) {
                std::fprintf(stderr, "%s: cannot write JSON report to %s\n", driver_.c_str(),
                             options.jsonPath.c_str());
                return 1;
            }
            writeJsonReport(out, driver_, options, results);
        }

        const bool anyFailed = std::any_of(results.begin(), results.end(),
                                           [](const CaseResult& r) { return r.failed; });
        if (results.empty()) {
            std::fprintf(stderr, "%s: no cases matched the selection\n", driver_.c_str());
            return 1;
        }
        return anyFailed ? 1 : 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "%s: %s\n", driver_.c_str(), error.what());
        usage(driver_);
        return 2;
    }
}

} // namespace mqsp::bench
