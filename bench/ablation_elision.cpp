// Ablation B: paper-faithful operation emission (every node contributes
// dim-many ops, matching Table 1's counting) versus identity elision (skip
// theta=0 rotations and zero phases). Both circuits prepare the same state;
// the difference is pure overhead, largest on sparse structured states.

#include "bench_common.hpp"

#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    std::printf("Operation counts: paper-faithful emission vs identity elision\n\n");
    std::printf("%-14s %-22s %12s %12s %10s\n", "Name", "Qudits", "faithful", "elided",
                "saved");

    SynthesisOptions faithful;
    faithful.emitIdentityOperations = true;
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        Rng rng(seeder.childSeed());
        const StateVector state = makeState(workload, rng);
        const auto full = prepareExact(state, faithful);
        const auto slim = prepareExact(state, lean);
        const auto saved = full.circuit.numOperations() - slim.circuit.numOperations();
        std::printf("%-14s %-22s %12zu %12zu %9.1f%%\n", workload.family.c_str(),
                    formatDimensionSpec(workload.dims).c_str(),
                    full.circuit.numOperations(), slim.circuit.numOperations(),
                    100.0 * static_cast<double>(saved) /
                        static_cast<double>(full.circuit.numOperations()));
    }
    std::printf("\nStructured states save the most: their cascades are mostly "
                "identities.\nRandom dense states save only the zero-phase ops.\n");
    return 0;
}
