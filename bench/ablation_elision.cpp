// Ablation B: paper-faithful operation emission (every node contributes
// dim-many ops, matching Table 1's counting) versus identity elision (skip
// theta=0 rotations and zero phases). Both circuits prepare the same state;
// the difference is pure overhead, largest on sparse structured states
// (their cascades are mostly identities; random dense states save only the
// zero-phase ops). The timed region covers both syntheses.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/synth/synthesizer.hpp"


int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    SynthesisOptions faithful;
    faithful.emitIdentityOperations = true;
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;

    Harness harness("ablation_elision");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        CaseSpec spec;
        spec.name = workload.family;
        spec.dims = workload.dims;
        spec.reps = 5;
        spec.smoke = workload.family == "GHZ State" && workload.dims.size() == 3;
        spec.body = [workload, caseSeed, faithful, lean](Repetition& rep) {
            Rng rng = repetitionRng(caseSeed, rep.index());
            const StateVector state = makeState(workload, rng);
            PreparationResult full;
            PreparationResult slim;
            rep.time([&] {
                full = prepareExact(state, faithful);
                slim = prepareExact(state, lean);
            });
            const auto faithfulOps = full.circuit.numOperations();
            const auto elidedOps = slim.circuit.numOperations();
            rep.metric("faithful_ops", static_cast<double>(faithfulOps));
            rep.metric("elided_ops", static_cast<double>(elidedOps));
            rep.metric("saved_percent",
                       100.0 * static_cast<double>(faithfulOps - elidedOps) /
                           static_cast<double>(faithfulOps));
        };
        harness.add(std::move(spec));
    }
    return harness.main(argc, argv);
}
