#pragma once

// Shared benchmark harness: every driver in bench/ registers its cases here
// and delegates main() to Harness::main(). The harness owns the methodology
// (warmup, repetitions, per-case min/median/mean/stddev) and the output
// contract (a human table on stdout, one JSON schema across all drivers via
// --json). `--smoke` runs the smoke-marked subset once with no warmup so
// each driver doubles as a ctest target; see docs/BENCHMARKS.md.

#include "mqsp/support/mixed_radix.hpp"

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace mqsp::bench {

/// Number of repetitions the paper averages over (Table 1); the default
/// repetition count for registered cases.
inline constexpr int kPaperRuns = 40;

/// One named metric sample: circuit/diagram quantities a case reports
/// alongside its timing (operation counts, fidelities, node counts, ...).
struct MetricSample {
    std::string name;
    double sum = 0.0;
    int count = 0;
};

/// Handle passed to a case body for one repetition. The body wraps the
/// region to be timed in `time()` (setup such as state construction stays
/// untimed); if `time()` is never called the harness falls back to the wall
/// time of the whole body. Alongside wall time every measured region also
/// records process CPU time (all threads), so parallel efficiency is
/// visible as the cpu/wall ratio per case. Metrics recorded on any
/// repetition are averaged over the repetitions that recorded them.
class Repetition {
public:
    explicit Repetition(int index) : index_(index) {}

    /// Repetition number, 0-based (warmup repetitions use negative indices).
    [[nodiscard]] int index() const noexcept { return index_; }

    /// Execute and time `timedSection`; at most one call per repetition.
    void time(const std::function<void()>& timedSection);

    /// Record a named metric value for this repetition.
    void metric(const std::string& name, double value);

    /// Harness-side accessors.
    [[nodiscard]] bool timed() const noexcept { return timed_; }
    [[nodiscard]] std::int64_t elapsedNs() const noexcept { return elapsedNs_; }
    [[nodiscard]] std::int64_t cpuNs() const noexcept { return cpuNs_; }
    [[nodiscard]] const std::vector<std::pair<std::string, double>>& metrics() const noexcept {
        return metrics_;
    }

private:
    int index_ = 0;
    bool timed_ = false;
    std::int64_t elapsedNs_ = 0;
    std::int64_t cpuNs_ = 0;
    std::vector<std::pair<std::string, double>> metrics_;
};

/// Process CPU time (all threads) in nanoseconds — the counterpart of the
/// wall clock in every timing record.
[[nodiscard]] std::int64_t processCpuNs();

/// The body of a benchmark case: one repetition of the measured workload.
/// Throwing marks the case (and the whole run) as failed.
using CaseBody = std::function<void(Repetition&)>;

/// A registered benchmark case.
struct CaseSpec {
    std::string name;       ///< workload label, unique together with dims+backend+threads
    Dimensions dims;        ///< register (empty when not register-shaped)
    std::string backend;    ///< evaluation-backend provenance ("dense"/"dd";
                            ///< "" for cases not tied to a backend)
    unsigned threads = 0;   ///< worker threads this case is pinned to
                            ///< (0 = the run-level / process-wide setting);
                            ///< part of the case identity in reports
    int reps = kPaperRuns;  ///< full-mode repetitions
    bool smoke = false;     ///< included in --smoke runs
    CaseBody body;
};

/// Aggregate statistics over a case's repetition times.
struct CaseStats {
    double minNs = 0.0;
    double medianNs = 0.0;
    double meanNs = 0.0;
    double stddevNs = 0.0;  ///< sample stddev (n-1); 0 when fewer than 2 reps
};

/// Compute min/median/mean/stddev of the given times (empty input -> zeros).
[[nodiscard]] CaseStats computeStats(const std::vector<std::int64_t>& timesNs);

/// Result of executing one case.
struct CaseResult {
    std::string name;
    std::string dims;     ///< formatted register spec, "" when dimension-less
    std::string backend;  ///< backend provenance, "" when not backend-tied
    unsigned threads = 0; ///< the resolved worker-thread count the case ran at
    int reps = 0;
    int warmup = 0;
    std::vector<std::int64_t> timesNs;
    std::vector<std::int64_t> cpuTimesNs;  ///< process CPU time per repetition
    std::vector<MetricSample> metrics;  ///< registration order, summed
    CaseStats stats;
    CaseStats cpuStats;
    bool failed = false;
    std::string error;
};

/// Execution options, normally parsed from argv by Harness::main().
struct RunOptions {
    bool smoke = false;      ///< smoke cases only, 1 rep, no warmup
    int repsOverride = 0;    ///< > 0 forces this repetition count
    int warmup = 1;          ///< untimed warmup repetitions per case
    unsigned threads = 0;    ///< worker threads for cases not pinned by their
                             ///< spec (0 = the process-wide default)
    std::string caseFilter;  ///< substring match on case name, dims or
                             ///< backend; exact match on the "tN" thread tag
    std::string jsonPath;    ///< write the JSON report here when non-empty
    bool list = false;       ///< print case names and exit
};

/// Write the machine-readable report: one schema across all drivers
/// ("mqsp-bench-v1"; see docs/BENCHMARKS.md).
void writeJsonReport(std::ostream& out, const std::string& driver, const RunOptions& options,
                     const std::vector<CaseResult>& results);

/// The driver runner. Typical use:
///
///   Harness harness("table1_exact");
///   CaseSpec spec;
///   spec.name = "GHZ State";
///   spec.dims = {3, 6, 2};
///   spec.smoke = true;
///   spec.body = body;
///   harness.add(std::move(spec));
///   return harness.main(argc, argv);
class Harness {
public:
    explicit Harness(std::string driver) : driver_(std::move(driver)) {}

    /// Register one case. Cases run in registration order.
    void add(CaseSpec spec) { cases_.push_back(std::move(spec)); }

    [[nodiscard]] const std::string& driver() const noexcept { return driver_; }
    [[nodiscard]] std::size_t numCases() const noexcept { return cases_.size(); }

    /// Execute the selected cases (no argv parsing, no printing) — the
    /// testable core of the runner.
    [[nodiscard]] std::vector<CaseResult> execute(const RunOptions& options) const;

    /// Parse flags, run, print the human table, emit JSON when requested.
    /// Returns the process exit code (1 when any case failed).
    int main(int argc, char** argv) const;

private:
    std::string driver_;
    std::vector<CaseSpec> cases_;
};

} // namespace mqsp::bench
