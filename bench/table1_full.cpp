// Regenerates the paper's complete Table 1 in its original layout: both the
// "Exact (Averaged)" and "Approximated 98% (Averaged)" column groups, all 14
// benchmark rows, averaged over 40 runs.

#include "bench_common.hpp"

#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

namespace {

struct Columns {
    double nodes = 0.0;
    double distinct = 0.0;
    double operations = 0.0;
    double controls = 0.0;
    double seconds = 0.0;
    double fidelity = 0.0;

    void scale(double factor) {
        nodes *= factor;
        distinct *= factor;
        operations *= factor;
        controls *= factor;
        seconds *= factor;
        fidelity *= factor;
    }
};

} // namespace

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    std::printf("Table 1: Evaluation of the proposed approach comparing the average "
                "results over %d runs of the synthesis method per benchmark\n\n",
                kPaperRuns);
    std::printf("%-14s %3s %-22s | %8s %9s %10s %9s %8s | %8s %9s %10s %9s %8s %8s\n",
                "Name", "#Q", "Qudits", "Nodes", "DistinctC", "Operations", "#Controls",
                "Time[s]", "Nodes", "DistinctC", "Operations", "#Controls", "Time[s]",
                "Fidelity");

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        Columns exact;
        Columns approx;
        for (int run = 0; run < kPaperRuns; ++run) {
            Rng rng(seeder.childSeed());
            const StateVector state = makeState(workload, rng);

            {
                const WallTimer timer;
                const auto result = prepareExact(state);
                exact.seconds += timer.elapsedSeconds();
                exact.nodes += static_cast<double>(
                    result.diagram.nodeCount(NodeCountMode::DenseTree));
                exact.distinct +=
                    static_cast<double>(result.diagram.distinctComplexCount());
                exact.operations += static_cast<double>(result.circuit.numOperations());
                exact.controls += result.circuit.stats().medianControls;
                exact.fidelity += 1.0;
            }
            {
                const WallTimer timer;
                const auto result = prepareApproximated(state, 0.98);
                approx.seconds += timer.elapsedSeconds();
                approx.nodes += static_cast<double>(
                    result.diagram.nodeCount(NodeCountMode::TreeSlots));
                approx.distinct +=
                    static_cast<double>(result.diagram.distinctComplexCount());
                approx.operations +=
                    static_cast<double>(result.circuit.numOperations());
                approx.controls += result.circuit.stats().medianControls;
                approx.fidelity += result.approx.fidelity;
            }
        }
        exact.scale(1.0 / kPaperRuns);
        approx.scale(1.0 / kPaperRuns);
        std::printf("%-14s %3zu %-22s | %8.1f %9.1f %10.1f %9.1f %8.4f | %8.2f %9.2f "
                    "%10.2f %9.2f %8.4f %8.2f\n",
                    workload.family.c_str(), workload.dims.size(),
                    formatDimensionSpec(workload.dims).c_str(), exact.nodes,
                    exact.distinct, exact.operations, exact.controls, exact.seconds,
                    approx.nodes, approx.distinct, approx.operations, approx.controls,
                    approx.seconds, approx.fidelity);
    }
    return 0;
}
