// Regenerates the paper's complete Table 1: both the "Exact (Averaged)" and
// "Approximated 98% (Averaged)" column groups, all 14 benchmark rows,
// averaged over 40 runs. Each row registers two harness cases ("<family>
// exact" and "<family> approx98") so the two pipelines are timed separately.

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/synth/synthesizer.hpp"


int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    constexpr double kThreshold = 0.98;

    Harness harness("table1_full");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const bool flagship =
            workload.family == "GHZ State" && workload.dims.size() == 3;
        // One seed for both column groups: repetition k of the exact and the
        // approx98 case evaluates the same sampled state, as in the paper.
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        // Paper rows pinned to one thread for baseline continuity; the
        // flagship row's exact column re-registers at 4 workers.
        for (const unsigned threads : {1U, 4U}) {
            if (threads != 1 && !flagship) {
                continue;
            }
            const bool smoke = flagship && threads == 1;
            CaseSpec spec;
            spec.name = workload.family + " exact";
            spec.dims = workload.dims;
            spec.threads = threads;
            spec.reps = kPaperRuns;
            spec.smoke = smoke;
            spec.body = [workload, caseSeed](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector state = makeState(workload, rng);
                PreparationResult result;
                rep.time([&] { result = prepareExact(state); });
                rep.metric("nodes",
                           static_cast<double>(
                               result.diagram.nodeCount(NodeCountMode::DenseTree)));
                rep.metric("distinct_complex",
                           static_cast<double>(result.diagram.distinctComplexCount()));
                rep.metric("operations",
                           static_cast<double>(result.circuit.numOperations()));
                rep.metric("median_controls", result.circuit.stats().medianControls);
            };
            harness.add(std::move(spec));
        }
        {
            CaseSpec spec;
            spec.name = workload.family + " approx98";
            spec.dims = workload.dims;
            spec.threads = 1;
            spec.reps = kPaperRuns;
            spec.smoke = flagship;
            spec.body = [workload, caseSeed](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector state = makeState(workload, rng);
                PreparationResult result;
                rep.time([&] { result = prepareApproximated(state, kThreshold); });
                rep.metric("nodes",
                           static_cast<double>(
                               result.diagram.nodeCount(NodeCountMode::TreeSlots)));
                rep.metric("distinct_complex",
                           static_cast<double>(result.diagram.distinctComplexCount()));
                rep.metric("operations",
                           static_cast<double>(result.circuit.numOperations()));
                rep.metric("median_controls", result.circuit.stats().medianControls);
                rep.metric("fidelity", result.approx.fidelity);
            };
            harness.add(std::move(spec));
        }
    }
    return harness.main(argc, argv);
}
