// Regenerates the "Approximated 98% (Averaged)" column group of the paper's
// Table 1: Nodes, DistinctC, Operations, #Controls, Time and Fidelity over
// 40 runs per row, using the 0.98 fidelity threshold.
//
// Fidelity is the approximation guarantee (1 - removed mass); the test suite
// verifies on the simulator that the synthesized circuits reach exactly this
// value, and this bench re-verifies one run per row on registers small
// enough to simulate quickly.

#include "bench_common.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/support/timing.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;
    using namespace mqsp::bench;

    constexpr double kThreshold = 0.98;
    std::printf("Table 1 — Approximated %.0f%% synthesis (averaged over %d runs)\n\n",
                kThreshold * 100, kPaperRuns);
    std::printf("%-14s %3s %-22s %10s %10s %12s %10s %10s %10s %10s\n", "Name", "#Q",
                "Qudits", "Nodes", "DistinctC", "Operations", "#Controls", "Time[s]",
                "Fidelity", "SimFid");

    Rng seeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        double nodes = 0.0;
        double distinct = 0.0;
        double operations = 0.0;
        double controls = 0.0;
        double seconds = 0.0;
        double fidelity = 0.0;
        double simFidelity = -1.0;
        for (int run = 0; run < kPaperRuns; ++run) {
            Rng rng(seeder.childSeed());
            const StateVector state = makeState(workload, rng);
            const WallTimer timer;
            const auto result = prepareApproximated(state, kThreshold);
            seconds += timer.elapsedSeconds();
            nodes += static_cast<double>(
                result.diagram.nodeCount(NodeCountMode::TreeSlots));
            distinct += static_cast<double>(result.diagram.distinctComplexCount());
            operations += static_cast<double>(result.circuit.numOperations());
            controls += result.circuit.stats().medianControls;
            fidelity += result.approx.fidelity;
            if (run == 0 && state.size() <= 2048) {
                simFidelity = Simulator::preparationFidelity(result.circuit, state);
            }
        }
        const double inv = 1.0 / kPaperRuns;
        std::printf("%-14s %3zu %-22s %10.2f %10.2f %12.2f %10.2f %10.4f %10.4f ",
                    workload.family.c_str(), workload.dims.size(),
                    formatDimensionSpec(workload.dims).c_str(), nodes * inv,
                    distinct * inv, operations * inv, controls * inv, seconds * inv,
                    fidelity * inv);
        if (simFidelity >= 0.0) {
            std::printf("%10.4f\n", simFidelity);
        } else {
            std::printf("%10s\n", "(large)");
        }
    }
    std::printf("\nSimFid: simulator-verified fidelity of the first run "
                "(registers up to 2048 amplitudes).\n");
    return 0;
}
