// Regenerates the "Approximated 98% (Averaged)" column group of the paper's
// Table 1: Nodes, DistinctC, Operations, #Controls, Time and Fidelity over
// 40 runs per row, using the 0.98 fidelity threshold.
//
// Fidelity is the approximation guarantee (1 - removed mass); the test suite
// verifies on the simulator that the synthesized circuits reach exactly this
// value, and this bench re-verifies one run per row on registers small
// enough to simulate quickly (reported as sim_fidelity).

#include "bench_common.hpp"
#include "harness.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/synth/synthesizer.hpp"


int main(int argc, char** argv) {
    using namespace mqsp;
    using namespace mqsp::bench;

    constexpr double kThreshold = 0.98;

    Harness harness("table1_approx");
    Rng driverSeeder(Rng::kDefaultSeed);
    for (const auto& workload : table1Workloads()) {
        const std::uint64_t caseSeed = driverSeeder.childSeed();
        const bool flagship =
            workload.family == "GHZ State" && workload.dims.size() == 3;
        // Paper rows pinned to one thread for baseline continuity; the
        // flagship row re-registers at 4 workers (see table1_exact).
        for (const unsigned threads : {1U, 4U}) {
            if (threads != 1 && !flagship) {
                continue;
            }
            CaseSpec spec;
            spec.name = workload.family;
            spec.dims = workload.dims;
            spec.threads = threads;
            spec.reps = kPaperRuns;
            spec.smoke = flagship && threads == 1;
            spec.body = [workload, caseSeed](Repetition& rep) {
                Rng rng = repetitionRng(caseSeed, rep.index());
                const StateVector state = makeState(workload, rng);
                PreparationResult result;
                rep.time([&] { result = prepareApproximated(state, kThreshold); });
                rep.metric("nodes",
                           static_cast<double>(
                               result.diagram.nodeCount(NodeCountMode::TreeSlots)));
                rep.metric("dd_nodes",
                           static_cast<double>(
                               result.diagram.nodeCount(NodeCountMode::Internal)));
                rep.metric("distinct_complex",
                           static_cast<double>(result.diagram.distinctComplexCount()));
                rep.metric("operations",
                           static_cast<double>(result.circuit.numOperations()));
                rep.metric("median_controls", result.circuit.stats().medianControls);
                rep.metric("fidelity", result.approx.fidelity);
                if (rep.index() == 0 && state.size() <= 2048) {
                    rep.metric("sim_fidelity",
                               Simulator::preparationFidelity(result.circuit, state));
                }
            };
            harness.add(std::move(spec));
        }
    }
    return harness.main(argc, argv);
}
