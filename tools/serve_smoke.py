#!/usr/bin/env python3
"""Scripted-session smoke test for mqsp_serve, the resident verifier.

Drives one stdio session through the daemon — prepare GHZ/W/Dicke targets
on the paper's [3,6,2] register, verify each, survive a garbage line, drop
two targets, collect — and asserts the session-GC contract end to end:

  * GC shrinks the node pool (nodes_after < nodes_before) down to the
    live-root reachable set, with exactly the resident targets as roots;
  * a second GC is a no-op (the compaction is idempotent);
  * STATS? reports exactly the post-GC pool (dd_nodes == nodes_after);
  * verification still answers fidelity 1.0 after compaction;
  * a malformed line gets one ERR reply and the daemon keeps serving.

Writes an mqsp-bench-v1 JSON report whose integer metrics (nodes before /
after GC, live roots) are deterministic, so the CI metrics gate
(tools/bench_compare.py compare --metrics-only) pins the compacted pool
size against bench/baselines/dev-container-smoke.json forever.

With --clients N the script instead exercises the concurrent dispatch
path: the daemon listens on an ephemeral TCP port and N threads run one
full session each over their own connection — prepare, verify their own
target, send a garbage line, read stats, quit. Every command must answer
exactly one whole reply line (the thread-per-connection write path may
never tear a reply), the N PREP ids must come back as a permutation of
1..N (the id counter is race-free under the writer lock), and the daemon
must exit cleanly once all N connections close.

Usage: serve_smoke.py --serve <mqsp_serve binary> [--json <report path>]
                      [--clients N]
"""

import argparse
import json
import os
import re
import socket
import subprocess
import sys
import threading
import time

DIMS = "3,6,2"

# One reply line per command; blank lines and comments would get none, so
# the script avoids them and the reply list maps 1:1 onto this list.
COMMANDS = [
    "PREP:GHZ --dims " + DIMS,
    "PREP:W --dims " + DIMS,
    "PREP:DICKE --dims " + DIMS + " --weight 3",
    "VERIFY --id 1 --repeat 3",
    "VERIFY --id 2",
    "VERIFY --id 3",
    "THIS IS NOT A COMMAND",
    "DROP --id 2",
    "DROP --id 3",
    "GC",
    "GC",
    "STATS?",
    "VERIFY --id 1",
    "QUIT",
]

# Second scripted session: the streaming verbs. One STREAM session fed
# gate-by-gate (checkpoint cadence 2), then a prepared target grown with
# APPEND and incrementally re-verified — the second REVERIFY replays only
# the two appended gates, and because they are an identity pair the root
# diff reports pure sharing (new_nodes == dropped_nodes == 0).
STREAM_COMMANDS = [
    "STREAM --dims " + DIMS + " --checkpoint 2",  # id 1
    "APPEND --gate swp q[0] (0, 1);",
    "APPEND --gate rxy q[1] (0, 1, 0.7, 0.1) ctl q[0]=1;",  # checkpoint 1
    "APPEND --gate rz q[2] (0, 1, 0.5);",
    "APPEND --gate swp q[0] (0, 1);",  # checkpoint 2
    "REVERIFY",
    "PREP:GHZ --dims " + DIMS,  # id 2
    "REVERIFY --id 2",  # full replay: cursor starts at 0
    "APPEND --id 2 --gate swp q[0] (0, 1);",
    "APPEND --id 2 --gate swp q[0] (0, 1);",
    "REVERIFY --id 2",  # delta replay: exactly the appended pair
    "STATS?",
    "QUIT",
]


def fail(message):
    print("serve_smoke: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def field(reply, key):
    """Extract `key=value` from an OK reply."""
    match = re.search(r"\b" + re.escape(key) + r"=(\S+)", reply)
    if match is None:
        fail("reply lacks field '%s': %s" % (key, reply))
    return match.group(1)


def run_session(serve_binary, commands):
    script = "\n".join(commands) + "\n"
    wall_start = time.perf_counter_ns()
    proc = subprocess.run(
        [serve_binary, "--threads", "1"],
        input=script,
        capture_output=True,
        text=True,
        timeout=240,
    )
    wall_ns = time.perf_counter_ns() - wall_start
    if proc.returncode != 0:
        fail("daemon exited %d\nstderr: %s" % (proc.returncode, proc.stderr))
    replies = proc.stdout.splitlines()
    if len(replies) != len(commands):
        fail(
            "expected %d reply lines, got %d:\n%s"
            % (len(commands), len(replies), proc.stdout)
        )
    return replies, wall_ns


def check_session(replies):
    for command, reply in zip(COMMANDS, replies):
        expected_err = command.startswith("THIS")
        if expected_err and not reply.startswith("ERR "):
            fail("garbage line did not answer ERR: %s" % reply)
        if not expected_err and not reply.startswith("OK "):
            fail("command '%s' answered: %s" % (command, reply))

    for index in (0, 1, 2):
        if field(replies[index], "id") != str(index + 1):
            fail("PREP ids are not sequential: %s" % replies[index])
    amplitudes = int(field(replies[0], "amplitudes"))

    for index in (3, 4, 5, 12):
        if field(replies[index], "fidelity") != "1.000000000":
            fail("exact verification drifted from 1.0: %s" % replies[index])

    gc_first, gc_second = replies[9], replies[10]
    nodes_before = int(field(gc_first, "nodes_before"))
    nodes_after = int(field(gc_first, "nodes_after"))
    live_roots = int(field(gc_first, "live_roots"))
    if live_roots != 1:
        fail("expected 1 live root after the drops: %s" % gc_first)
    if nodes_after >= nodes_before:
        fail("GC did not shrink the pool: %s" % gc_first)
    if int(field(gc_second, "nodes_before")) != nodes_after or int(
        field(gc_second, "nodes_after")
    ) != nodes_after:
        fail("second GC is not idempotent: %s then %s" % (gc_first, gc_second))

    stats = replies[11]
    if int(field(stats, "dd_nodes")) != nodes_after:
        fail("STATS? dd_nodes disagrees with GC nodes_after: %s" % stats)
    if field(stats, "errors") != "1":
        fail("expected exactly the one seeded error: %s" % stats)
    if replies[13] != "OK bye":
        fail("QUIT did not close the session: %s" % replies[13])

    return {
        "amplitudes": amplitudes,
        "nodes_before_gc": nodes_before,
        "nodes_after_gc": nodes_after,
        "live_roots": live_roots,
        "fidelity": 1.0,
    }


def check_stream_session(replies):
    for command, reply in zip(STREAM_COMMANDS, replies):
        if not reply.startswith("OK "):
            fail("command '%s' answered: %s" % (command, reply))

    # Checkpoints land exactly on cadence, each holding unitarity.
    for index, checkpoint in ((2, "1"), (4, "2")):
        if field(replies[index], "checkpoint") != checkpoint:
            fail("APPEND checkpoint cadence drifted: %s" % replies[index])
        if field(replies[index], "fidelity") != "1.000000000":
            fail("streamed norm2 drifted from 1.0: %s" % replies[index])
    if "checkpoint=" in replies[1]:
        fail("off-cadence APPEND emitted a checkpoint: %s" % replies[1])

    stream = replies[5]
    if field(stream, "kind") != "stream" or field(stream, "ops") != "4":
        fail("stream REVERIFY miscounted: %s" % stream)
    if field(stream, "fidelity") != "1.000000000":
        fail("stream REVERIFY norm2 drifted: %s" % stream)
    stream_nodes = int(field(stream, "dd_nodes"))

    full, delta = replies[7], replies[10]
    total_ops = int(field(full, "total_ops"))
    if int(field(full, "delta_ops")) != total_ops:
        fail("first REVERIFY did not replay the whole circuit: %s" % full)
    if field(delta, "fidelity") != "1.000000000":
        fail("incremental re-verification drifted from 1.0: %s" % delta)
    if int(field(delta, "delta_ops")) != 2:
        fail("REVERIFY after APPEND x2 must replay exactly 2 ops: %s" % delta)
    if int(field(delta, "new_nodes")) != 0 or int(field(delta, "dropped_nodes")) != 0:
        fail("identity delta must leave the replay root shared: %s" % delta)

    stats = replies[11]
    for key, expected in (("streams", "1"), ("appended", "6"), ("reverified", "3")):
        if field(stats, key) != expected:
            fail("STATS? %s counter drifted: %s" % (key, stats))

    return {
        "stream_ops": 4,
        "stream_checkpoints": int(field(stream, "checkpoints")),
        "stream_dd_nodes": stream_nodes,
        "delta_ops": 2,
        "delta_shared_nodes": int(field(delta, "shared_nodes")),
        "delta_new_nodes": 0,
        "fidelity": 1.0,
    }


def write_report(path, cases):
    def stat_block(value):
        return {"min_ns": value, "median_ns": value, "mean_ns": value, "stddev_ns": 0}

    report = {
        "schema": "mqsp-bench-v1",
        "driver": "serve_smoke",
        "mode": "smoke",
        "cases": [
            {
                "driver": "serve_smoke",
                "case": case_name,
                "dims": "[1x3,1x6,1x2]",
                "backend": "dd",
                "threads": 1,
                "reps": 1,
                "warmup": 0,
                "times_ns": [wall_ns],
                "times_cpu_ns": [cpu_ns],
                "stats": stat_block(wall_ns),
                "cpu_stats": stat_block(cpu_ns),
                "metrics": metrics,
            }
            for case_name, metrics, wall_ns, cpu_ns in cases
        ],
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")


class ClientSession(threading.Thread):
    """One synthetic client: a full scripted session over its own TCP
    connection. Failures are collected (never sys.exit'd — that would only
    kill this thread) and re-raised by the coordinator."""

    def __init__(self, index, port):
        super().__init__(name="client-%d" % index)
        self.index = index
        self.port = port
        self.prep_id = None
        self.failures = []

    def _check(self, condition, message):
        if not condition:
            self.failures.append("client %d: %s" % (self.index, message))

    def run(self):
        try:
            with socket.create_connection(("127.0.0.1", self.port), timeout=120) as sock:
                reader = sock.makefile("r", encoding="utf-8", newline="\n")

                def exchange(command):
                    sock.sendall((command + "\n").encode())
                    reply = reader.readline()
                    # A whole line, exactly one OK/ERR reply, no torn
                    # fragments: the framing contract of the wire protocol.
                    self._check(reply.endswith("\n"), "reply not newline-terminated: %r" % reply)
                    reply = reply.rstrip("\n")
                    self._check(
                        re.fullmatch(r"(OK|ERR) .*", reply) is not None,
                        "torn or malformed reply line: %r" % reply,
                    )
                    return reply

                prep = exchange("PREP:GHZ --dims " + DIMS)
                self._check(prep.startswith("OK "), "PREP answered: %s" % prep)
                match = re.search(r"\bid=(\d+)", prep)
                self._check(match is not None, "PREP reply lacks an id: %s" % prep)
                if match:
                    self.prep_id = int(match.group(1))
                    verify = exchange("VERIFY --id %d" % self.prep_id)
                    self._check(
                        "fidelity=1.000000000" in verify,
                        "verification drifted: %s" % verify,
                    )
                garbage = exchange("CLIENT %d GARBAGE" % self.index)
                self._check(garbage.startswith("ERR "), "garbage line answered: %s" % garbage)
                stats = exchange("STATS?")
                self._check("dd_nodes=" in stats, "STATS? reply lacks dd_nodes: %s" % stats)
                quit_reply = exchange("QUIT")
                self._check(quit_reply == "OK bye", "QUIT answered: %s" % quit_reply)
                trailing = reader.readline()
                self._check(trailing == "", "bytes after QUIT: %r" % trailing)
        except OSError as error:
            self.failures.append("client %d: connection failed: %s" % (self.index, error))


def run_clients(serve_binary, clients):
    """Fan `clients` concurrent TCP sessions at one daemon instance."""
    proc = subprocess.Popen(
        [serve_binary, "--threads", "1", "--port", "0", "--max-requests", str(clients)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stderr.readline()
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", banner)
        if match is None:
            proc.kill()
            fail("daemon did not announce a port: %r" % banner)
        port = int(match.group(1))

        sessions = [ClientSession(index, port) for index in range(clients)]
        for session in sessions:
            session.start()
        for session in sessions:
            session.join(timeout=240)
            if session.is_alive():
                proc.kill()
                fail("client %d hung" % session.index)
        try:
            returncode = proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("daemon did not exit after %d connections" % clients)
        if returncode != 0:
            fail("daemon exited %d\nstderr: %s" % (returncode, proc.stderr.read()))
    finally:
        if proc.poll() is None:
            proc.kill()

    failures = [message for session in sessions for message in session.failures]
    if failures:
        fail("\n".join(failures))
    ids = sorted(session.prep_id for session in sessions)
    if ids != list(range(1, clients + 1)):
        fail("PREP ids are not a permutation of 1..%d: %s" % (clients, ids))
    print("serve_smoke OK: %d concurrent clients, ids %s, no torn replies" % (clients, ids))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True, help="path to the mqsp_serve binary")
    parser.add_argument("--json", help="mqsp-bench-v1 report output path (stdio mode)")
    parser.add_argument(
        "--clients",
        type=int,
        default=0,
        help="run N concurrent TCP client sessions instead of the stdio session",
    )
    args = parser.parse_args()

    if args.clients > 0:
        run_clients(args.serve, args.clients)
        return
    if not args.json:
        parser.error("--json is required in stdio mode")

    def child_cpu_ns(cpu_start):
        # The interesting CPU time burns in the child; rusage of terminated
        # children is the honest measure where available.
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_CHILDREN)
            return int((usage.ru_utime + usage.ru_stime) * 1e9)
        except ImportError:
            return time.process_time_ns() - cpu_start

    cpu_start = time.process_time_ns()
    replies, wall_ns = run_session(args.serve, COMMANDS)
    cpu_ns = max(child_cpu_ns(cpu_start), 1)
    metrics = check_session(replies)

    cpu_start = time.process_time_ns()
    stream_replies, stream_wall_ns = run_session(args.serve, STREAM_COMMANDS)
    stream_cpu_ns = max(child_cpu_ns(cpu_start) - cpu_ns, 1)
    stream_metrics = check_stream_session(stream_replies)

    write_report(
        args.json,
        [
            ("resident session prep/verify/gc", metrics, wall_ns, cpu_ns),
            (
                "streaming session stream/append/reverify",
                stream_metrics,
                stream_wall_ns,
                stream_cpu_ns,
            ),
        ],
    )
    print(
        "serve_smoke OK: pool %d -> %d nodes, %d live root(s), "
        "streamed %d ops (%d checkpoints), delta replay %d ops, report %s"
        % (
            metrics["nodes_before_gc"],
            metrics["nodes_after_gc"],
            metrics["live_roots"],
            stream_metrics["stream_ops"],
            stream_metrics["stream_checkpoints"],
            stream_metrics["delta_ops"],
            args.json,
        )
    )


if __name__ == "__main__":
    main()
