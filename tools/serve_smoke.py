#!/usr/bin/env python3
"""Scripted-session smoke test for mqsp_serve, the resident verifier.

Drives one stdio session through the daemon — prepare GHZ/W/Dicke targets
on the paper's [3,6,2] register, verify each, survive a garbage line, drop
two targets, collect — and asserts the session-GC contract end to end:

  * GC shrinks the node pool (nodes_after < nodes_before) down to the
    live-root reachable set, with exactly the resident targets as roots;
  * a second GC is a no-op (the compaction is idempotent);
  * STATS? reports exactly the post-GC pool (dd_nodes == nodes_after);
  * verification still answers fidelity 1.0 after compaction;
  * a malformed line gets one ERR reply and the daemon keeps serving.

Writes an mqsp-bench-v1 JSON report whose integer metrics (nodes before /
after GC, live roots) are deterministic, so the CI metrics gate
(tools/bench_compare.py compare --metrics-only) pins the compacted pool
size against bench/baselines/dev-container-smoke.json forever.

Usage: serve_smoke.py --serve <mqsp_serve binary> --json <report path>
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time

DIMS = "3,6,2"

# One reply line per command; blank lines and comments would get none, so
# the script avoids them and the reply list maps 1:1 onto this list.
COMMANDS = [
    "PREP:GHZ --dims " + DIMS,
    "PREP:W --dims " + DIMS,
    "PREP:DICKE --dims " + DIMS + " --weight 3",
    "VERIFY --id 1 --repeat 3",
    "VERIFY --id 2",
    "VERIFY --id 3",
    "THIS IS NOT A COMMAND",
    "DROP --id 2",
    "DROP --id 3",
    "GC",
    "GC",
    "STATS?",
    "VERIFY --id 1",
    "QUIT",
]


def fail(message):
    print("serve_smoke: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def field(reply, key):
    """Extract `key=value` from an OK reply."""
    match = re.search(r"\b" + re.escape(key) + r"=(\S+)", reply)
    if match is None:
        fail("reply lacks field '%s': %s" % (key, reply))
    return match.group(1)


def run_session(serve_binary):
    script = "\n".join(COMMANDS) + "\n"
    wall_start = time.perf_counter_ns()
    proc = subprocess.run(
        [serve_binary, "--threads", "1"],
        input=script,
        capture_output=True,
        text=True,
        timeout=240,
    )
    wall_ns = time.perf_counter_ns() - wall_start
    if proc.returncode != 0:
        fail("daemon exited %d\nstderr: %s" % (proc.returncode, proc.stderr))
    replies = proc.stdout.splitlines()
    if len(replies) != len(COMMANDS):
        fail(
            "expected %d reply lines, got %d:\n%s"
            % (len(COMMANDS), len(replies), proc.stdout)
        )
    return replies, wall_ns


def check_session(replies):
    for command, reply in zip(COMMANDS, replies):
        expected_err = command.startswith("THIS")
        if expected_err and not reply.startswith("ERR "):
            fail("garbage line did not answer ERR: %s" % reply)
        if not expected_err and not reply.startswith("OK "):
            fail("command '%s' answered: %s" % (command, reply))

    for index in (0, 1, 2):
        if field(replies[index], "id") != str(index + 1):
            fail("PREP ids are not sequential: %s" % replies[index])
    amplitudes = int(field(replies[0], "amplitudes"))

    for index in (3, 4, 5, 12):
        if field(replies[index], "fidelity") != "1.000000000":
            fail("exact verification drifted from 1.0: %s" % replies[index])

    gc_first, gc_second = replies[9], replies[10]
    nodes_before = int(field(gc_first, "nodes_before"))
    nodes_after = int(field(gc_first, "nodes_after"))
    live_roots = int(field(gc_first, "live_roots"))
    if live_roots != 1:
        fail("expected 1 live root after the drops: %s" % gc_first)
    if nodes_after >= nodes_before:
        fail("GC did not shrink the pool: %s" % gc_first)
    if int(field(gc_second, "nodes_before")) != nodes_after or int(
        field(gc_second, "nodes_after")
    ) != nodes_after:
        fail("second GC is not idempotent: %s then %s" % (gc_first, gc_second))

    stats = replies[11]
    if int(field(stats, "dd_nodes")) != nodes_after:
        fail("STATS? dd_nodes disagrees with GC nodes_after: %s" % stats)
    if field(stats, "errors") != "1":
        fail("expected exactly the one seeded error: %s" % stats)
    if replies[13] != "OK bye":
        fail("QUIT did not close the session: %s" % replies[13])

    return {
        "amplitudes": amplitudes,
        "nodes_before_gc": nodes_before,
        "nodes_after_gc": nodes_after,
        "live_roots": live_roots,
        "fidelity": 1.0,
    }


def write_report(path, metrics, wall_ns, cpu_ns):
    def stat_block(value):
        return {"min_ns": value, "median_ns": value, "mean_ns": value, "stddev_ns": 0}

    report = {
        "schema": "mqsp-bench-v1",
        "driver": "serve_smoke",
        "mode": "smoke",
        "cases": [
            {
                "driver": "serve_smoke",
                "case": "resident session prep/verify/gc",
                "dims": "[1x3,1x6,1x2]",
                "backend": "dd",
                "threads": 1,
                "reps": 1,
                "warmup": 0,
                "times_ns": [wall_ns],
                "times_cpu_ns": [cpu_ns],
                "stats": stat_block(wall_ns),
                "cpu_stats": stat_block(cpu_ns),
                "metrics": metrics,
            }
        ],
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True, help="path to the mqsp_serve binary")
    parser.add_argument("--json", required=True, help="mqsp-bench-v1 report output path")
    args = parser.parse_args()

    cpu_start = time.process_time_ns()
    replies, wall_ns = run_session(args.serve)
    # The interesting CPU time burns in the child; rusage of terminated
    # children is the honest measure where available.
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_CHILDREN)
        cpu_ns = int((usage.ru_utime + usage.ru_stime) * 1e9)
    except ImportError:
        cpu_ns = time.process_time_ns() - cpu_start
    metrics = check_session(replies)
    write_report(args.json, metrics, wall_ns, max(cpu_ns, 1))
    print(
        "serve_smoke OK: pool %d -> %d nodes, %d live root(s), report %s"
        % (
            metrics["nodes_before_gc"],
            metrics["nodes_after_gc"],
            metrics["live_roots"],
            args.json,
        )
    )


if __name__ == "__main__":
    main()
