#!/usr/bin/env python3
"""Merge and compare mqsp-bench-v1 benchmark reports.

Every bench driver emits the same JSON schema (see docs/BENCHMARKS.md):

    {"schema": "mqsp-bench-v1", "driver": ..., "mode": ..., "cases": [...]}

with one entry per case carrying `driver`, `case`, `dims`, an optional
`backend` (evaluation-backend provenance: "dense" or "dd"), `threads`
(the worker-thread count the case ran at), `reps`, `times_ns` and
`times_cpu_ns`, `stats`/`cpu_stats` (min/median/mean/stddev in ns) and
`metrics`.

Cases are identified by (driver, case, dims, backend, threads)
everywhere: a dense-backend case and a dd-backend case of the same driver
measure different substrates, and a 1-thread and a 4-thread run of the
same workload measure different execution widths — neither pair is ever
compared against each other, and every report line spells out the
provenance (`...@dd#t4`) so a regression is attributable at a glance.
(Reports predating the parallel layer carry no `threads` field; their
cases only match other thread-less reports.)

Subcommands:

    merge   -o merged.json a.json b.json ...
        Concatenate the case lists of several reports into one file (the
        format of bench/baselines/*.json).

    compare baseline.json current.json [--threshold 0.30] [--stat median_ns]
            [--metrics] [--metrics-only]
        Match cases by (driver, case, dims, backend, threads) and flag every case whose
        timing statistic regressed by more than the threshold fraction.
        With --metrics, also flag any metric whose value drifted (metrics
        are counts/fidelities, so any change beyond 1e-9 is reported).
        Exit code 1 when at least one regression or metric drift is found.

        --metrics-only ignores timings entirely (shared CI runners are too
        noisy to gate on) and compares metric values with per-class
        tolerances instead: integer-valued metrics (node counts, operation
        counts, amplitudes) must match exactly; *_hit_rate metrics are
        ratio-bounded (absolute drift <= 0.02); fidelities within 1e-6;
        everything else within 1e-6 relative. A metric or a whole case
        missing from the current report also fails. This is the CI
        deterministic-metrics gate: a DD-size or circuit-cost regression
        fails the build even when every timing is noise.
        Compare like against like: record the baseline in the same mode
        (smoke vs full) as the runs it will gate, since metrics are
        averaged over repetitions and randomized workloads draw a fresh
        state per repetition.

Record a baseline by running every driver with --json and merging:

    for b in build/bench/bench_*; do "$b" --json "$b.json"; done
    tools/bench_compare.py merge -o bench/baselines/dev-container.json \
        build/bench/bench_*.json
"""

import argparse
import json
import sys


SCHEMA = "mqsp-bench-v1"


def load_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        sys.exit(f"{path}: expected schema '{SCHEMA}', got '{report.get('schema')}'")
    if not isinstance(report.get("cases"), list):
        sys.exit(f"{path}: missing 'cases' list")
    return report


def case_key(case):
    # `backend` and `threads` are part of the identity: same-named cases on
    # different evaluation backends (dense vs dd) or at different worker
    # counts (t1 vs t4) are distinct measurements.
    threads = case.get("threads")
    return (case.get("driver", ""), case.get("case", ""), case.get("dims", ""),
            case.get("backend", ""), "" if threads is None else str(threads))


def case_label(key):
    driver, name, dims, backend, threads = key
    label = "/".join(part for part in (driver, name, dims) if part)
    if backend:
        label = f"{label}@{backend}"
    return f"{label}#t{threads}" if threads else label


def merge(args):
    cases = []
    seen = set()
    for path in args.inputs:
        for case in load_report(path)["cases"]:
            key = case_key(case)
            if key in seen:
                sys.exit(f"{path}: duplicate case {key} while merging")
            seen.add(key)
            cases.append(case)
    merged = {"schema": SCHEMA, "driver": "merged", "mode": "merged", "cases": cases}
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"merged {len(cases)} case(s) from {len(args.inputs)} report(s) "
          f"into {args.output}")
    return 0


def format_ns(value):
    if value >= 1e9:
        return f"{value / 1e9:.3f}s"
    if value >= 1e6:
        return f"{value / 1e6:.3f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.3f}us"
    return f"{value:.0f}ns"


def metric_drifted(name, base_value, cur_value):
    """Per-class deterministic-metrics comparison (see --metrics-only)."""
    base_value = float(base_value)
    cur_value = float(cur_value)
    if base_value.is_integer() and cur_value.is_integer():
        # Counts (dd_nodes, ops, amplitudes, ...): bit-exact or broken.
        return base_value != cur_value
    if name.endswith("_hit_rate"):
        # Ratio-bounded: the rates are deterministic in exact arithmetic,
        # but last-ulp weight-bucket flips across compilers may move a
        # handful of lookups.
        return abs(cur_value - base_value) > 0.02
    if "fidelity" in name:
        return abs(cur_value - base_value) > 1e-6
    return abs(cur_value - base_value) > max(1e-9, 1e-6 * abs(base_value))


def compare(args):
    baseline = {case_key(c): c for c in load_report(args.baseline)["cases"]}
    current_report = load_report(args.current)
    current = {case_key(c): c for c in current_report["cases"]}
    # A smoke or --case-filtered run deliberately covers a subset, so absent
    # baseline cases are not a coverage loss there.
    partial_run = (current_report.get("mode") == "smoke"
                   or bool(current_report.get("filter")))

    regressions = []
    improvements = []
    drifted = []
    failed = []

    for key in sorted(current):
        case = current[key]
        label = case_label(key)
        if case.get("failed"):
            failed.append(f"{label}: FAILED ({case.get('error', 'unknown error')})")
            continue
        base = baseline.get(key)
        if base is None:
            continue
        if not args.metrics_only:
            base_stat = base["stats"].get(args.stat, 0.0)
            cur_stat = case["stats"].get(args.stat, 0.0)
            if base_stat > 0:
                ratio = cur_stat / base_stat
                line = (f"{label}: {args.stat} {format_ns(base_stat)} -> "
                        f"{format_ns(cur_stat)} ({(ratio - 1) * 100:+.1f}%)")
                if ratio > 1.0 + args.threshold:
                    regressions.append(line)
                elif ratio < 1.0 - args.threshold:
                    improvements.append(line)
        if args.metrics or args.metrics_only:
            for name, base_value in base.get("metrics", {}).items():
                cur_value = case.get("metrics", {}).get(name)
                if cur_value is None:
                    drifted.append(f"{label}: metric '{name}' disappeared")
                    continue
                if args.metrics_only:
                    if metric_drifted(name, base_value, cur_value):
                        drifted.append(f"{label}: metric '{name}' "
                                       f"{base_value:.6g} -> {cur_value:.6g}")
                elif abs(cur_value - base_value) > 1e-9:
                    drifted.append(f"{label}: metric '{name}' "
                                   f"{base_value:.6g} -> {cur_value:.6g}")

    # When a single driver's report is compared against a merged baseline,
    # only that driver's cases can meaningfully be missing — and none can in
    # a deliberately partial (smoke / --case-filtered) run.
    current_drivers = {key[0] for key in current}
    # The metrics-only gate compares a dedicated baseline whose every case
    # is expected in the current report: a case silently dropping out of
    # the artifact is itself a regression, partial run or not.
    check_missing = args.metrics_only or not partial_run
    missing = sorted(key for key in set(baseline) - set(current)
                     if key[0] in current_drivers) if check_missing else []
    new = sorted(set(current) - set(baseline))

    mode_note = ("metrics-only, per-class tolerances" if args.metrics_only
                 else f"threshold {args.threshold * 100:.0f}% on {args.stat}")
    print(f"compared {len(set(baseline) & set(current))} matching case(s) ({mode_note})"
          + ("" if check_missing else " — partial run, missing-case check skipped"))
    for section, lines in (("REGRESSIONS", regressions), ("improvements", improvements),
                           ("metric drift", drifted), ("failed cases", failed)):
        if lines:
            print(f"\n{section}:")
            for line in lines:
                print(f"  {line}")
    if missing:
        print(f"\nmissing from current ({len(missing)}):")
        for key in missing:
            print(f"  {case_label(key)}")
    if new:
        print(f"\nnew in current ({len(new)}):")
        for key in new:
            print(f"  {case_label(key)}")
    if args.metrics_only and missing:
        return 1
    if not regressions and not drifted and not failed:
        print("\nno regressions")
        return 0
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    merge_parser = subparsers.add_parser("merge", help="merge reports into one file")
    merge_parser.add_argument("-o", "--output", required=True)
    merge_parser.add_argument("inputs", nargs="+")
    merge_parser.set_defaults(func=merge)

    compare_parser = subparsers.add_parser("compare",
                                           help="flag regressions against a baseline")
    compare_parser.add_argument("baseline")
    compare_parser.add_argument("current")
    compare_parser.add_argument("--threshold", type=float, default=0.30,
                                help="regression threshold as a fraction (default 0.30)")
    compare_parser.add_argument("--stat", default="median_ns",
                                choices=["min_ns", "median_ns", "mean_ns"],
                                help="which statistic to compare (default median_ns)")
    compare_parser.add_argument("--metrics", action="store_true",
                                help="also flag drifted metric values")
    compare_parser.add_argument("--metrics-only", action="store_true",
                                help="ignore timings; gate on deterministic metrics "
                                     "with per-class tolerances (exact counts, "
                                     "ratio-bounded hit rates) and on case coverage")
    compare_parser.set_defaults(func=compare)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
