#pragma once

// Minimal shared command-line helpers for the mqsp executables (the CLI
// tools and the benchmark harness). Flags are matched literally; values
// follow their flag as the next argv entry. Numeric parsers delegate to
// mqsp::parse — whole-token validation naming the offending flag instead
// of dying with a bare std::stoull exception.

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"
#include "mqsp/support/parse.hpp"

#include <cstdint>
#include <optional>
#include <string>

namespace mqsp::cli {

/// The value following `flag`, or nullopt when the flag is absent. The last
/// occurrence wins so that appended overrides behave as expected.
inline std::optional<std::string> argValue(int argc, char** argv, const std::string& flag) {
    std::optional<std::string> value;
    for (int i = 1; i + 1 < argc; ++i) {
        if (flag == argv[i]) {
            value = std::string(argv[i + 1]);
        }
    }
    return value;
}

/// True when `flag` appears anywhere on the command line.
inline bool argFlag(int argc, char** argv, const std::string& flag) {
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i]) {
            return true;
        }
    }
    return false;
}

/// Parse a non-negative integer value for `flag`, or `fallback` when absent.
/// Throws InvalidArgumentError naming the flag on malformed input.
inline std::uint64_t argUint(int argc, char** argv, const std::string& flag,
                             std::uint64_t fallback) {
    const auto text = argValue(argc, argv, flag);
    if (!text) {
        return fallback;
    }
    return parse::uint64(*text, flag);
}

/// Parse a floating-point value for `flag`, or `fallback` when absent.
/// Throws InvalidArgumentError naming the flag on malformed input.
inline double argDouble(int argc, char** argv, const std::string& flag, double fallback) {
    const auto text = argValue(argc, argv, flag);
    if (!text) {
        return fallback;
    }
    return parse::real(*text, flag);
}

/// Parse `--threads N` (0 or absent = automatic). Shared by the CLI tools
/// and the bench harness so the flag spells and validates identically
/// everywhere.
inline unsigned argThreads(int argc, char** argv) {
    return static_cast<unsigned>(argUint(argc, argv, "--threads", 0));
}

/// Resolve and install the process-wide worker-thread count: `--threads N`
/// wins, else the MQSP_THREADS environment variable, else the hardware
/// concurrency. Returns the resolved count. Call once at tool startup,
/// before any simulation work.
inline unsigned configureThreads(int argc, char** argv) {
    parallel::setGlobalThreads(argThreads(argc, argv));
    return parallel::globalThreads();
}

} // namespace mqsp::cli
