// mqsp_prep — command-line state preparation.
//
// Synthesizes a mixed-dimensional state-preparation circuit and prints its
// statistics, QASM, and (optionally) a simulator verification:
//
//   mqsp_prep --dims 3,6,2 --state ghz --qasm
//   mqsp_prep --dims 1x9,1x5,1x6,1x3 --state random --seed 7 --approx 0.98 --verify
//   mqsp_prep --dims 3,2 --amplitudes psi.txt --optimize --qasm
//
// The amplitude file format is one "re im" pair per line, in mixed-radix
// order (most significant qudit first); the vector is normalized on load.

#include "cli_args.hpp"

#include "mqsp/circuit/qasm.hpp"
#include "mqsp/opt/optimizer.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

namespace {

using namespace mqsp;
using cli::argFlag;
using cli::argValue;

void usage() {
    std::fprintf(stderr, R"(usage: mqsp_prep --dims <spec> (--state <name> | --amplitudes <file>) [options]

  --dims <spec>        register, e.g. "3,6,2" or "[1x3,1x6,1x2]" (msq first)
  --state <name>       ghz | w | embw | uniform | random | dicke=<weight>
  --amplitudes <file>  dense amplitude vector, one "re im" per line
  --seed <n>           RNG seed for --state random (default: library seed)
  --approx <f>         approximate with fidelity threshold f in (0, 1]
  --faithful           paper-faithful op emission (default: elide identities)
  --optimize           run the peephole optimizer on the result
  --qasm               print the circuit in MQSP-QASM
  --verify             replay on the simulator and report the fidelity
)");
}

StateVector loadAmplitudes(const Dimensions& dims, const std::string& path) {
    std::ifstream in(path);
    requireThat(in.good(), "cannot open amplitude file: " + path);
    std::vector<Complex> amps;
    double re = 0.0;
    double im = 0.0;
    while (in >> re >> im) {
        amps.emplace_back(re, im);
    }
    StateVector state(dims, std::move(amps));
    state.normalize();
    return state;
}

StateVector makeNamedState(const std::string& name, const Dimensions& dims,
                           std::uint64_t seed) {
    if (name == "ghz") {
        return states::ghz(dims);
    }
    if (name == "w") {
        return states::wState(dims);
    }
    if (name == "embw") {
        return states::embeddedWState(dims);
    }
    if (name == "uniform") {
        return states::uniform(dims);
    }
    if (name == "random") {
        Rng rng(seed);
        return states::random(dims, rng);
    }
    if (name.rfind("dicke=", 0) == 0) {
        return states::dicke(dims, std::stoull(name.substr(6)));
    }
    detail::throwInvalidArgument("unknown state '" + name + "'");
}

} // namespace

int main(int argc, char** argv) {
    try {
        const auto dimsSpec = argValue(argc, argv, "--dims");
        if (!dimsSpec) {
            usage();
            return 2;
        }
        const Dimensions dims = parseDimensionSpec(*dimsSpec);

        const auto stateName = argValue(argc, argv, "--state");
        const auto amplitudePath = argValue(argc, argv, "--amplitudes");
        if (!stateName && !amplitudePath) {
            usage();
            return 2;
        }
        const std::uint64_t seed = cli::argUint(argc, argv, "--seed", Rng::kDefaultSeed);
        const StateVector target = amplitudePath ? loadAmplitudes(dims, *amplitudePath)
                                                 : makeNamedState(*stateName, dims, seed);

        SynthesisOptions options;
        options.emitIdentityOperations = argFlag(argc, argv, "--faithful");
        options.circuitName = stateName.value_or("from_file");

        PreparationResult result;
        const auto approx = argValue(argc, argv, "--approx");
        const double threshold = cli::argDouble(argc, argv, "--approx", 1.0);
        if (approx) {
            result = prepareApproximated(target, threshold, options);
        } else {
            result = prepareExact(target, options);
        }

        // Statistics go to stderr so that `--qasm` leaves a clean, pipeable
        // circuit on stdout (`mqsp_prep --qasm > f && mqsp_sim --qasm f`).
        if (argFlag(argc, argv, "--optimize")) {
            const auto report = optimizeCircuit(result.circuit);
            std::fprintf(stderr,
                         "optimizer: %zu -> %zu ops (%zu merges, %zu identities, "
                         "%zu fans)\n",
                         report.opsBefore, report.opsAfter, report.mergedRotations,
                         report.droppedIdentities, report.mergedControlFans);
        }

        const auto stats = result.circuit.stats();
        std::fprintf(stderr, "register          : %s (%llu amplitudes)\n",
                     formatDimensionSpec(dims).c_str(),
                     static_cast<unsigned long long>(target.size()));
        std::fprintf(stderr, "diagram nodes     : %llu internal, %llu tree slots\n",
                     static_cast<unsigned long long>(
                         result.diagram.nodeCount(NodeCountMode::Internal)),
                     static_cast<unsigned long long>(
                         result.diagram.nodeCount(NodeCountMode::TreeSlots)));
        std::fprintf(stderr, "distinct complex  : %zu\n",
                     result.diagram.distinctComplexCount());
        std::fprintf(stderr,
                     "operations        : %zu (median controls %.1f, max %zu, depth ~%zu)\n",
                     stats.numOperations, stats.medianControls, stats.maxControls,
                     stats.depthEstimate);
        if (approx) {
            std::fprintf(stderr, "approx fidelity   : %.6f (threshold %.4f)\n",
                         result.approx.fidelity, threshold);
        }
        if (argFlag(argc, argv, "--verify")) {
            const double fidelity =
                Simulator::preparationFidelity(result.circuit, target);
            std::fprintf(stderr, "verified fidelity : %.9f\n", fidelity);
        }
        if (argFlag(argc, argv, "--qasm")) {
            emitQasm(std::cout, result.circuit);
        }
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "mqsp_prep: %s\n", error.what());
        return 1;
    }
}
