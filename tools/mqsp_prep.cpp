// mqsp_prep — command-line state preparation.
//
// Synthesizes a mixed-dimensional state-preparation circuit and prints its
// statistics, QASM, and (optionally) a verification replay:
//
//   mqsp_prep --dims 3,6,2 --state ghz --qasm
//   mqsp_prep --dims 1x9,1x5,1x6,1x3 --state random --seed 7 --approx 0.98 --verify
//   mqsp_prep --dims 3,2 --amplitudes psi.txt --optimize --qasm
//   mqsp_prep --dims 27x2 --state ghz --verify --backend dd
//
// The amplitude file format is one "re im" pair per line, in mixed-radix
// order (most significant qudit first); the vector is normalized on load.
//
// `--backend` selects the evaluation substrate (sim/backend.hpp): `dense`
// replays on the state-vector simulator, `dd` stays on decision diagrams
// end-to-end — structured targets (ghz/w/embw/uniform) are built natively
// as diagrams, so preparation AND verification work on registers far past
// the dense O(∏dims) ceiling. `auto` (the default) picks dense on small
// registers and dd beyond kAutoBackendThreshold amplitudes.

#include "cli_args.hpp"

#include "mqsp/circuit/qasm.hpp"
#include "mqsp/hardware/router.hpp"
#include "mqsp/opt/optimizer.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/sim/density_simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/parse.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <numeric>
#include <optional>
#include <string>
#include <utility>

namespace {

using namespace mqsp;
using cli::argFlag;
using cli::argValue;

void usage() {
    std::fprintf(stderr, R"(usage: mqsp_prep --dims <spec> (--state <name> | --amplitudes <file>) [options]

  --dims <spec>        register, e.g. "3,6,2" or "[1x3,1x6,1x2]" (msq first)
  --state <name>       ghz | w | embw | uniform | random | dicke[=<weight>]
                       | cyclic[=<count>]  (dicke defaults to weight 2;
                       cyclic defaults to all lcm(dims) shifts of |0...0>)
  --amplitudes <file>  dense amplitude vector, one "re im" per line
  --seed <n>           RNG seed for --state random (default: library seed)
  --approx <f>         approximate with fidelity threshold f in (0, 1]
  --faithful           paper-faithful op emission (default: elide identities)
  --optimize           run the peephole optimizer on the result
  --backend <name>     evaluation substrate: dense | dd | auto (default auto;
                       dd scales past the dense memory ceiling)
  --threads <n>        worker threads for the dense kernels and the DD
                       session builders (default: the MQSP_THREADS env var,
                       else hardware concurrency; 1 = single-threaded —
                       results are bit-identical at any count)
  --qasm               print the circuit in MQSP-QASM
  --verify             replay on the selected backend and report the fidelity
  --noise <eps>        replay under depolarizing noise on the density-matrix
                       simulator (two-qudit rate eps, single-qudit rate
                       eps/10) and report simulated vs estimated fidelity;
                       dense only — total dimension must be <= 1024. The
                       kernels honor --threads; results are bit-identical
                       at any thread count.
)");
}

/// Default Dicke excitation weight for a bare `--state dicke`: 2 keeps the
/// term count (and therefore the synthesized circuit) quadratic in the
/// register size, so the family stays usable on 10^8-amplitude registers.
std::uint64_t defaultDickeWeight(const Dimensions& dims) {
    std::uint64_t maxWeight = 0;
    for (const auto dim : dims) {
        maxWeight += dim - 1;
    }
    return std::min<std::uint64_t>(2, maxWeight);
}

/// Default cyclic shift count for a bare `--state cyclic`: every distinct
/// shift, i.e. lcm(dims) (saturated — shifts repeat beyond the lcm anyway).
std::uint32_t defaultCyclicCount(const Dimensions& dims) {
    std::uint64_t lcmSoFar = 1;
    constexpr std::uint64_t kCap = std::numeric_limits<std::uint32_t>::max();
    for (const auto dim : dims) {
        lcmSoFar = std::lcm(lcmSoFar, static_cast<std::uint64_t>(dim));
        if (lcmSoFar >= kCap) {
            return static_cast<std::uint32_t>(kCap);
        }
    }
    return static_cast<std::uint32_t>(lcmSoFar);
}

StateVector loadAmplitudes(const Dimensions& dims, const std::string& path) {
    std::ifstream in(path);
    requireThat(in.good(), "cannot open amplitude file: " + path);
    std::vector<Complex> amps;
    double re = 0.0;
    double im = 0.0;
    while (in >> re >> im) {
        amps.emplace_back(re, im);
    }
    StateVector state(dims, std::move(amps));
    state.normalize();
    return state;
}

/// A parsed `--state` spec: the family plus its optional `=<n>` parameter
/// (dicke weight / cyclic shift count), resolved against the register once
/// so every consumer agrees on the interpretation.
struct StateSpec {
    enum class Family { Ghz, W, EmbW, Uniform, Random, Dicke, Cyclic };

    Family family = Family::Ghz;
    std::uint64_t parameter = 0; ///< dicke weight or cyclic count

    /// DD-native builder exists (everything except random)?
    [[nodiscard]] bool hasDiagramBuilder() const {
        return family != Family::Random;
    }

    /// Native form is a DAG, not a tree (uniform's shared chain, dicke's
    /// (site, weight) lattice, cyclic's shift-set sharing): the
    /// approximation pass needs a tree, so these fall back to the dense
    /// constructor under --approx.
    [[nodiscard]] bool isDagOnly() const {
        return family == Family::Uniform || family == Family::Dicke ||
               family == Family::Cyclic;
    }
};

StateSpec parseStateSpec(const std::string& name, const Dimensions& dims) {
    if (name == "ghz") {
        return {StateSpec::Family::Ghz, 0};
    }
    if (name == "w") {
        return {StateSpec::Family::W, 0};
    }
    if (name == "embw") {
        return {StateSpec::Family::EmbW, 0};
    }
    if (name == "uniform") {
        return {StateSpec::Family::Uniform, 0};
    }
    if (name == "random") {
        return {StateSpec::Family::Random, 0};
    }
    if (name == "dicke") {
        return {StateSpec::Family::Dicke, defaultDickeWeight(dims)};
    }
    if (name.rfind("dicke=", 0) == 0) {
        // Strict parse: "dicke=junk" and "dicke=-1" must fail with a named
        // error, not a bare stoull exception or a wrapped huge weight; the
        // weight is then range-checked against the register's maximum
        // excitation count, mirroring the cyclic= bounds check below.
        const std::uint64_t weight = parse::uint64(name.substr(6), "--state dicke=<weight>");
        std::uint64_t maxWeight = 0;
        for (const auto dim : dims) {
            maxWeight += dim - 1;
        }
        requireThat(weight <= maxWeight,
                    "dicke=<weight> needs a weight in [0, " + std::to_string(maxWeight) +
                        "] for this register (sum of dim_i - 1), got " +
                        std::to_string(weight));
        return {StateSpec::Family::Dicke, weight};
    }
    if (name == "cyclic") {
        return {StateSpec::Family::Cyclic, defaultCyclicCount(dims)};
    }
    if (name.rfind("cyclic=", 0) == 0) {
        const std::uint64_t count = parse::uint64(name.substr(7), "--state cyclic=<count>");
        requireThat(count >= 1 && count <= std::numeric_limits<std::uint32_t>::max(),
                    "cyclic=<count> needs a count in [1, 2^32)");
        return {StateSpec::Family::Cyclic, count};
    }
    detail::throwInvalidArgument("unknown state '" + name + "'");
}

StateVector makeNamedState(const StateSpec& spec, const Dimensions& dims,
                           std::uint64_t seed) {
    switch (spec.family) {
    case StateSpec::Family::Ghz:
        return states::ghz(dims);
    case StateSpec::Family::W:
        return states::wState(dims);
    case StateSpec::Family::EmbW:
        return states::embeddedWState(dims);
    case StateSpec::Family::Uniform:
        return states::uniform(dims);
    case StateSpec::Family::Random: {
        Rng rng(seed);
        return states::random(dims, rng);
    }
    case StateSpec::Family::Dicke:
        return states::dicke(dims, spec.parameter);
    case StateSpec::Family::Cyclic:
        return states::cyclic(dims, Digits(dims.size(), 0),
                              static_cast<std::uint32_t>(spec.parameter));
    }
    detail::throwInternal("makeNamedState: unhandled family");
}

/// Build the target as a diagram — on the backend's DD session when one is
/// given (hash-consed into the shared store, so the verification replay
/// later hits the very nodes built here), else on a private store.
DecisionDiagram buildNamedDiagram(const StateSpec& spec, const Dimensions& dims,
                                  const dd::DdSession* session) {
    switch (spec.family) {
    case StateSpec::Family::Ghz:
        return session ? session->ghzState(dims) : DecisionDiagram::ghzState(dims);
    case StateSpec::Family::W:
        return session ? session->wState(dims) : DecisionDiagram::wState(dims);
    case StateSpec::Family::EmbW:
        return session ? session->embeddedWState(dims)
                       : DecisionDiagram::embeddedWState(dims);
    case StateSpec::Family::Uniform:
        return session ? session->uniformState(dims)
                       : DecisionDiagram::uniformState(dims);
    case StateSpec::Family::Dicke:
        return session ? session->dickeState(dims, spec.parameter)
                       : DecisionDiagram::dickeState(dims, spec.parameter);
    case StateSpec::Family::Cyclic: {
        const Digits start(dims.size(), 0);
        const auto count = static_cast<std::uint32_t>(spec.parameter);
        return session ? session->cyclicState(dims, start, count)
                       : DecisionDiagram::cyclicState(dims, start, count);
    }
    case StateSpec::Family::Random:
        break;
    }
    detail::throwInvalidArgument("no diagram builder for a random state");
}

} // namespace

int main(int argc, char** argv) {
    try {
        cli::configureThreads(argc, argv);
        const auto dimsSpec = argValue(argc, argv, "--dims");
        if (!dimsSpec) {
            usage();
            return 2;
        }
        const Dimensions dims = parseDimensionSpec(*dimsSpec);
        const MixedRadix radix(dims);

        const auto stateName = argValue(argc, argv, "--state");
        const auto amplitudePath = argValue(argc, argv, "--amplitudes");
        if (!stateName && !amplitudePath) {
            usage();
            return 2;
        }
        const std::uint64_t seed = cli::argUint(argc, argv, "--seed", Rng::kDefaultSeed);

        const auto approx = argValue(argc, argv, "--approx");
        const double threshold = cli::argDouble(argc, argv, "--approx", 1.0);

        // Does the dd pipeline have a native diagram builder for this
        // target? (The DAG-form builders — uniform, dicke, cyclic — are not
        // usable under --approx: the approximation pass needs a tree.)
        const std::optional<StateSpec> stateSpec =
            amplitudePath ? std::nullopt
                          : std::optional<StateSpec>(parseStateSpec(*stateName, dims));
        const bool hasNativeDiagram = stateSpec && stateSpec->hasDiagramBuilder() &&
                                      !(approx && stateSpec->isDagOnly());

        const std::string backendSpec =
            argValue(argc, argv, "--backend").value_or("auto");
        // `auto` policy: dense below the threshold; above it, dd — except
        // that a target with no diagram builder must construct its dense
        // vector anyway, so while the register still fits the dense
        // ceiling, the dense pipeline is the strictly better tool for it.
        const BackendKind backendKind =
            (backendSpec == "auto" && !hasNativeDiagram &&
             radix.totalDimension() <= kDenseBackendCeiling)
                ? BackendKind::Dense
                : resolveBackendKind(backendSpec, radix.totalDimension());
        const auto backend = makeBackend(backendKind);

        SynthesisOptions options;
        options.emitIdentityOperations = argFlag(argc, argv, "--faithful");
        options.circuitName = stateName.value_or("from_file");

        PreparationResult result;
        EvalState target;
        if (backendKind == BackendKind::Dense) {
            // Dense pipeline, exactly as before the backend layer existed —
            // refusing up front past the ceiling instead of dying in the
            // allocator while building the target.
            requireThat(radix.totalDimension() <= kDenseBackendCeiling,
                        "register has " + std::to_string(radix.totalDimension()) +
                            " amplitudes, past the dense backend ceiling of " +
                            std::to_string(kDenseBackendCeiling) +
                            " — use --backend dd");
            const StateVector state = amplitudePath
                                          ? loadAmplitudes(dims, *amplitudePath)
                                          : makeNamedState(*stateSpec, dims, seed);
            result = approx ? prepareApproximated(state, threshold, options)
                            : prepareExact(state, options);
            target = EvalState(state);
        } else {
            // DD pipeline: structured targets are built natively as
            // diagrams — exact ones on the backend's DD session, so the
            // verification replay later allocates into (and hits) the same
            // uniquing table the target was built through; everything else
            // goes dense -> diagram under the dense ceiling guard. (The
            // DAG-form builders + --approx land on the dense path too: the
            // approximation pass needs a tree-shaped diagram, which also
            // rules out the session store — pruning mutates nodes in
            // place.)
            const auto session = backend->ddSession();
            DecisionDiagram diagram;
            if (hasNativeDiagram) {
                diagram = buildNamedDiagram(*stateSpec, dims,
                                            approx ? nullptr : session.get());
            }
            if (diagram.rootNode() == kNoNode) {
                requireThat(radix.totalDimension() <= kDenseBackendCeiling,
                            approx && stateSpec && stateSpec->isDagOnly()
                                ? std::string(
                                      "--approx needs a tree-shaped diagram, and the " +
                                      *stateName +
                                      " state's native diagram is a DAG — drop "
                                      "--approx or stay within the dense ceiling")
                                : "state '" + stateName.value_or("from_file") +
                                      "' needs a dense amplitude vector to construct, "
                                      "and the register is past the dense ceiling — "
                                      "use ghz, w, embw, uniform, cyclic, or dicke "
                                      "with --backend dd on registers this large");
                const StateVector state = amplitudePath
                                              ? loadAmplitudes(dims, *amplitudePath)
                                              : makeNamedState(*stateSpec, dims, seed);
                diagram = DecisionDiagram::fromStateVector(state, options.tolerance);
            }
            target = EvalState(diagram); // pre-approximation copy: the verify target
            result = approx ? prepareApproximated(std::move(diagram), threshold, options)
                            : prepareExact(std::move(diagram), options);
        }

        // Statistics go to stderr so that `--qasm` leaves a clean, pipeable
        // circuit on stdout (`mqsp_prep --qasm > f && mqsp_sim --qasm f`).
        if (argFlag(argc, argv, "--optimize")) {
            const auto report = optimizeCircuit(result.circuit);
            std::fprintf(stderr,
                         "optimizer: %zu -> %zu ops (%zu merges, %zu identities, "
                         "%zu fans)\n",
                         report.opsBefore, report.opsAfter, report.mergedRotations,
                         report.droppedIdentities, report.mergedControlFans);
        }

        const auto stats = result.circuit.stats();
        std::fprintf(stderr, "register          : %s (%llu amplitudes)\n",
                     formatDimensionSpec(dims).c_str(),
                     static_cast<unsigned long long>(radix.totalDimension()));
        std::fprintf(stderr, "backend           : %s%s\n", backend->name(),
                     backendSpec == "auto" ? " (auto)" : "");
        std::fprintf(stderr, "diagram nodes     : %llu internal, %llu tree slots\n",
                     static_cast<unsigned long long>(
                         result.diagram.nodeCount(NodeCountMode::Internal)),
                     static_cast<unsigned long long>(
                         result.diagram.nodeCount(NodeCountMode::TreeSlots)));
        std::fprintf(stderr, "distinct complex  : %zu\n",
                     result.diagram.distinctComplexCount());
        std::fprintf(stderr,
                     "operations        : %zu (median controls %.1f, max %zu, depth ~%zu)\n",
                     stats.numOperations, stats.medianControls, stats.maxControls,
                     stats.depthEstimate);
        if (approx) {
            std::fprintf(stderr, "approx fidelity   : %.6f (threshold %.4f)\n",
                         result.approx.fidelity, threshold);
        }
        if (argFlag(argc, argv, "--verify")) {
            const VerifyReport report =
                backend->verify(VerifyRequest{&result.circuit, &target, 1, 0});
            requireThat(!report.failed, report.error);
            std::fprintf(stderr, "verified fidelity : %.9f\n", report.fidelity);
        }
        if (const auto noiseSpec = argValue(argc, argv, "--noise")) {
            const double eps = cli::argDouble(argc, argv, "--noise", 0.0);
            requireThat(eps >= 0.0 && eps <= 1.0,
                        "--noise needs an error rate in [0, 1], got " + *noiseSpec);
            // The density matrix is quadratic in the Hilbert dimension, so
            // the noisy replay only runs on registers within its own
            // (tighter) ceiling; toStateVector enforces it up front.
            const StateVector denseTarget = target.toStateVector(1024);
            NoiseModel noise;
            noise.singleQuditError = eps / 10.0;
            noise.twoQuditError = eps;
            // The simulator snapshots the process-wide execution config, so
            // --threads (applied by cli::configureThreads above) reaches the
            // density kernels.
            const DensityMatrix rho = NoisySimulator().run(result.circuit, noise);
            std::fprintf(stderr,
                         "noisy fidelity    : %.9f (estimator %.9f, eps %.3e, "
                         "trace %.9f)\n",
                         rho.fidelityWithPure(denseTarget),
                         estimateCircuitFidelity(result.circuit, noise), eps,
                         rho.trace());
        }
        if (const auto session = backend->ddSession()) {
            // Session memory report: how much structure the uniquing table
            // shared between the target build and the verification replay.
            const auto sessionStats = session->stats();
            std::fprintf(stderr,
                         "dd session        : %llu pool nodes, unique_hit_rate %.3f "
                         "(%llu/%llu), cache_hit_rate %.3f (%llu/%llu)\n",
                         static_cast<unsigned long long>(sessionStats.poolNodes),
                         sessionStats.uniqueHitRate(),
                         static_cast<unsigned long long>(sessionStats.unique.hits),
                         static_cast<unsigned long long>(sessionStats.unique.lookups),
                         sessionStats.cacheHitRate(),
                         static_cast<unsigned long long>(sessionStats.cache.hits),
                         static_cast<unsigned long long>(sessionStats.cache.lookups));
        }
        if (argFlag(argc, argv, "--qasm")) {
            emitQasm(std::cout, result.circuit);
        }
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "mqsp_prep: %s\n", error.what());
        return 1;
    }
}
