// mqsp_prep — command-line state preparation.
//
// Synthesizes a mixed-dimensional state-preparation circuit and prints its
// statistics, QASM, and (optionally) a verification replay:
//
//   mqsp_prep --dims 3,6,2 --state ghz --qasm
//   mqsp_prep --dims 1x9,1x5,1x6,1x3 --state random --seed 7 --approx 0.98 --verify
//   mqsp_prep --dims 3,2 --amplitudes psi.txt --optimize --qasm
//   mqsp_prep --dims 27x2 --state ghz --verify --backend dd
//
// The amplitude file format is one "re im" pair per line, in mixed-radix
// order (most significant qudit first); the vector is normalized on load.
//
// `--backend` selects the evaluation substrate (sim/backend.hpp): `dense`
// replays on the state-vector simulator, `dd` stays on decision diagrams
// end-to-end — structured targets (ghz/w/embw/uniform) are built natively
// as diagrams, so preparation AND verification work on registers far past
// the dense O(∏dims) ceiling. `auto` (the default) picks dense on small
// registers and dd beyond kAutoBackendThreshold amplitudes.

#include "cli_args.hpp"

#include "mqsp/circuit/qasm.hpp"
#include "mqsp/opt/optimizer.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace {

using namespace mqsp;
using cli::argFlag;
using cli::argValue;

void usage() {
    std::fprintf(stderr, R"(usage: mqsp_prep --dims <spec> (--state <name> | --amplitudes <file>) [options]

  --dims <spec>        register, e.g. "3,6,2" or "[1x3,1x6,1x2]" (msq first)
  --state <name>       ghz | w | embw | uniform | random | dicke=<weight>
  --amplitudes <file>  dense amplitude vector, one "re im" per line
  --seed <n>           RNG seed for --state random (default: library seed)
  --approx <f>         approximate with fidelity threshold f in (0, 1]
  --faithful           paper-faithful op emission (default: elide identities)
  --optimize           run the peephole optimizer on the result
  --backend <name>     evaluation substrate: dense | dd | auto (default auto;
                       dd scales past the dense memory ceiling)
  --threads <n>        worker threads for the dense kernels (default: the
                       MQSP_THREADS env var, else hardware concurrency;
                       1 = single-threaded)
  --qasm               print the circuit in MQSP-QASM
  --verify             replay on the selected backend and report the fidelity
)");
}

StateVector loadAmplitudes(const Dimensions& dims, const std::string& path) {
    std::ifstream in(path);
    requireThat(in.good(), "cannot open amplitude file: " + path);
    std::vector<Complex> amps;
    double re = 0.0;
    double im = 0.0;
    while (in >> re >> im) {
        amps.emplace_back(re, im);
    }
    StateVector state(dims, std::move(amps));
    state.normalize();
    return state;
}

StateVector makeNamedState(const std::string& name, const Dimensions& dims,
                           std::uint64_t seed) {
    if (name == "ghz") {
        return states::ghz(dims);
    }
    if (name == "w") {
        return states::wState(dims);
    }
    if (name == "embw") {
        return states::embeddedWState(dims);
    }
    if (name == "uniform") {
        return states::uniform(dims);
    }
    if (name == "random") {
        Rng rng(seed);
        return states::random(dims, rng);
    }
    if (name.rfind("dicke=", 0) == 0) {
        return states::dicke(dims, std::stoull(name.substr(6)));
    }
    detail::throwInvalidArgument("unknown state '" + name + "'");
}

/// DD-native construction for the structured families — the targets that
/// stay compact past the dense ceiling. One table serves both the "is a
/// native builder available?" question (backend auto-selection) and the
/// construction itself; states without a builder (random, dicke) return
/// nullptr and must go through a dense vector.
using DiagramBuilder = DecisionDiagram (*)(const Dimensions&);

DiagramBuilder namedDiagramBuilder(const std::string& name) {
    if (name == "ghz") {
        return &DecisionDiagram::ghzState;
    }
    if (name == "w") {
        return &DecisionDiagram::wState;
    }
    if (name == "embw") {
        return &DecisionDiagram::embeddedWState;
    }
    if (name == "uniform") {
        return &DecisionDiagram::uniformState;
    }
    return nullptr;
}

} // namespace

int main(int argc, char** argv) {
    try {
        cli::configureThreads(argc, argv);
        const auto dimsSpec = argValue(argc, argv, "--dims");
        if (!dimsSpec) {
            usage();
            return 2;
        }
        const Dimensions dims = parseDimensionSpec(*dimsSpec);
        const MixedRadix radix(dims);

        const auto stateName = argValue(argc, argv, "--state");
        const auto amplitudePath = argValue(argc, argv, "--amplitudes");
        if (!stateName && !amplitudePath) {
            usage();
            return 2;
        }
        const std::uint64_t seed = cli::argUint(argc, argv, "--seed", Rng::kDefaultSeed);

        const auto approx = argValue(argc, argv, "--approx");
        const double threshold = cli::argDouble(argc, argv, "--approx", 1.0);

        // Does the dd pipeline have a native diagram builder for this
        // target? (uniform's reduced diagram is not usable under --approx —
        // the approximation pass needs a tree.)
        const DiagramBuilder diagramBuilder =
            amplitudePath ? nullptr : namedDiagramBuilder(*stateName);
        const bool hasNativeDiagram =
            diagramBuilder != nullptr && !(approx && *stateName == "uniform");

        const std::string backendSpec =
            argValue(argc, argv, "--backend").value_or("auto");
        // `auto` policy: dense below the threshold; above it, dd — except
        // that a target with no diagram builder must construct its dense
        // vector anyway, so while the register still fits the dense
        // ceiling, the dense pipeline is the strictly better tool for it.
        const BackendKind backendKind =
            (backendSpec == "auto" && !hasNativeDiagram &&
             radix.totalDimension() <= kDenseBackendCeiling)
                ? BackendKind::Dense
                : resolveBackendKind(backendSpec, radix.totalDimension());
        const auto backend = makeBackend(backendKind);

        SynthesisOptions options;
        options.emitIdentityOperations = argFlag(argc, argv, "--faithful");
        options.circuitName = stateName.value_or("from_file");

        PreparationResult result;
        EvalState target;
        if (backendKind == BackendKind::Dense) {
            // Dense pipeline, exactly as before the backend layer existed —
            // refusing up front past the ceiling instead of dying in the
            // allocator while building the target.
            requireThat(radix.totalDimension() <= kDenseBackendCeiling,
                        "register has " + std::to_string(radix.totalDimension()) +
                            " amplitudes, past the dense backend ceiling of " +
                            std::to_string(kDenseBackendCeiling) +
                            " — use --backend dd");
            const StateVector state = amplitudePath
                                          ? loadAmplitudes(dims, *amplitudePath)
                                          : makeNamedState(*stateName, dims, seed);
            result = approx ? prepareApproximated(state, threshold, options)
                            : prepareExact(state, options);
            target = EvalState(state);
        } else {
            // DD pipeline: structured targets are built natively as
            // diagrams; everything else goes dense -> diagram under the
            // dense ceiling guard. (uniform + --approx lands on the dense
            // path too: the approximation pass needs a tree-shaped diagram,
            // and uniformState's tree form is the full dense tree — routed
            // through the dense constructor, the semantics match the dense
            // backend exactly.)
            DecisionDiagram diagram;
            if (hasNativeDiagram) {
                diagram = diagramBuilder(dims);
            }
            if (diagram.rootNode() == kNoNode) {
                requireThat(radix.totalDimension() <= kDenseBackendCeiling,
                            approx && !amplitudePath && *stateName == "uniform"
                                ? std::string(
                                      "--approx needs a tree-shaped diagram, and the "
                                      "uniform state's tree is the full dense tree — "
                                      "drop --approx (it cannot prune the uniform "
                                      "state) or stay within the dense ceiling")
                                : "state '" + stateName.value_or("from_file") +
                                      "' needs a dense amplitude vector to construct, "
                                      "and the register is past the dense ceiling — "
                                      "use ghz, w, embw, or uniform with --backend dd "
                                      "on registers this large");
                const StateVector state = amplitudePath
                                              ? loadAmplitudes(dims, *amplitudePath)
                                              : makeNamedState(*stateName, dims, seed);
                diagram = DecisionDiagram::fromStateVector(state, options.tolerance);
            }
            target = EvalState(diagram); // pre-approximation copy: the verify target
            result = approx ? prepareApproximated(std::move(diagram), threshold, options)
                            : prepareExact(std::move(diagram), options);
        }

        // Statistics go to stderr so that `--qasm` leaves a clean, pipeable
        // circuit on stdout (`mqsp_prep --qasm > f && mqsp_sim --qasm f`).
        if (argFlag(argc, argv, "--optimize")) {
            const auto report = optimizeCircuit(result.circuit);
            std::fprintf(stderr,
                         "optimizer: %zu -> %zu ops (%zu merges, %zu identities, "
                         "%zu fans)\n",
                         report.opsBefore, report.opsAfter, report.mergedRotations,
                         report.droppedIdentities, report.mergedControlFans);
        }

        const auto stats = result.circuit.stats();
        std::fprintf(stderr, "register          : %s (%llu amplitudes)\n",
                     formatDimensionSpec(dims).c_str(),
                     static_cast<unsigned long long>(radix.totalDimension()));
        std::fprintf(stderr, "backend           : %s%s\n", backend->name(),
                     backendSpec == "auto" ? " (auto)" : "");
        std::fprintf(stderr, "diagram nodes     : %llu internal, %llu tree slots\n",
                     static_cast<unsigned long long>(
                         result.diagram.nodeCount(NodeCountMode::Internal)),
                     static_cast<unsigned long long>(
                         result.diagram.nodeCount(NodeCountMode::TreeSlots)));
        std::fprintf(stderr, "distinct complex  : %zu\n",
                     result.diagram.distinctComplexCount());
        std::fprintf(stderr,
                     "operations        : %zu (median controls %.1f, max %zu, depth ~%zu)\n",
                     stats.numOperations, stats.medianControls, stats.maxControls,
                     stats.depthEstimate);
        if (approx) {
            std::fprintf(stderr, "approx fidelity   : %.6f (threshold %.4f)\n",
                         result.approx.fidelity, threshold);
        }
        if (argFlag(argc, argv, "--verify")) {
            const double fidelity =
                backend->preparationFidelity(result.circuit, target);
            std::fprintf(stderr, "verified fidelity : %.9f\n", fidelity);
        }
        if (argFlag(argc, argv, "--qasm")) {
            emitQasm(std::cout, result.circuit);
        }
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "mqsp_prep: %s\n", error.what());
        return 1;
    }
}
