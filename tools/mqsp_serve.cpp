// mqsp_serve — resident preparation/verification daemon.
//
// Speaks the line-oriented mqsp_serve protocol (serve/protocol.hpp) over
// stdio (default) or a local TCP socket, multiplexing every client onto
// one shared VerificationService — one DdBackend, one hot DdSession,
// session GC on demand:
//
//   mqsp_serve                          # stdio: one command per line
//   mqsp_serve --port 7878              # TCP on 127.0.0.1:7878
//   mqsp_serve --port 0                 # TCP on an ephemeral port (printed)
//   echo 'PREP:GHZ --dims 3,6,2
//   VERIFY
//   GC
//   STATS?' | mqsp_serve
//
// Streaming/incremental verbs (see docs/USER_GUIDE.md): STREAM opens a
// resident gate-by-gate session (--checkpoint k reports a norm² probe
// every k gates), APPEND feeds it one MQSP-QASM statement per command
// (--gate captures the rest of the line), and on PREP'd targets
// APPEND grows the circuit while REVERIFY re-verifies just the appended
// delta, reporting the structural root diff and the session-cache hits
// the unchanged subtrees resolved from:
//
//   echo 'STREAM --dims 3,6,2 --checkpoint 2
//   APPEND --gate h q[0];
//   APPEND --gate x q[1] (+1) ctl q[0]=1;
//   REVERIFY' | mqsp_serve
//
// Flags:
//   --port <n>            listen on 127.0.0.1:<n> instead of stdio (0 =
//                         ephemeral; the chosen port prints to stderr as
//                         "listening on 127.0.0.1:<port>")
//   --max-amplitudes <n>  per-PREP register ceiling (admission limit)
//   --max-nodes <n>       session node budget gating new PREPs
//   --gc-watermark <n>    automatic-GC trigger in session nodes (default
//                         0 = 80% of --max-nodes); crossing it runs the
//                         mark-and-compact without an explicit GC verb
//   --max-line <n>        longest accepted command line, bytes
//   --max-requests <n>    exit after n connections (TCP test hook; 0 = run
//                         until terminated)
//   --threads <n>         worker threads; inherited by BATCH (item fan-out),
//                         PREP (parallel cascade solves in synthesis) and
//                         VERIFY (intra-diagram apply + fidelity kernels).
//                         Replies are identical at any width
//
// Every command yields exactly one "OK ..." / "ERR ..." line; errors leave
// the daemon serving (see docs/USER_GUIDE.md "mqsp_serve").

#include "cli_args.hpp"

#include "mqsp/serve/service.hpp"
#include "mqsp/support/version.hpp"

#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define MQSP_SERVE_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define MQSP_SERVE_HAS_SOCKETS 0
#endif

namespace {

using namespace mqsp;

/// Run one stdio session: read a command per line, write a reply per line.
int serveStdio(serve::VerificationService& service) {
    std::string line;
    while (std::getline(std::cin, line)) {
        const serve::Response response = service.handleLine(line);
        if (!response.line.empty()) {
            std::cout << response.line << '\n' << std::flush;
        }
        if (response.closeConnection) {
            break;
        }
    }
    return 0;
}

#if MQSP_SERVE_HAS_SOCKETS

/// Serve one TCP client: split the byte stream on '\n', guard each line's
/// length *while buffering* (an attacker streaming one endless line gets an
/// ERR and a resynchronization to the next newline, not unbounded memory),
/// and write one reply line per command.
void serveClient(serve::VerificationService& service, int fd) {
    const std::size_t maxLine = service.limits().maxLineLength;
    std::string buffer;
    bool discarding = false; // inside an oversized line, waiting for '\n'
    char chunk[4096];
    const auto send = [fd](const std::string& text) {
        std::size_t sent = 0;
        while (sent < text.size()) {
            const ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
            if (n <= 0) {
                return false;
            }
            sent += static_cast<std::size_t>(n);
        }
        return true;
    };
    for (;;) {
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got <= 0) {
            break;
        }
        for (ssize_t i = 0; i < got; ++i) {
            const char ch = chunk[i];
            if (ch == '\n') {
                if (discarding) {
                    discarding = false;
                    buffer.clear();
                    if (!send("ERR line too long (over " + std::to_string(maxLine) +
                              " bytes)\n")) {
                        ::close(fd);
                        return;
                    }
                    continue;
                }
                const serve::Response response = service.handleLine(buffer);
                buffer.clear();
                if (!response.line.empty() && !send(response.line + "\n")) {
                    ::close(fd);
                    return;
                }
                if (response.closeConnection) {
                    ::close(fd);
                    return;
                }
            } else if (!discarding) {
                buffer.push_back(ch);
                if (buffer.size() > maxLine) {
                    discarding = true;
                    buffer.clear();
                }
            }
        }
    }
    ::close(fd);
}

int serveTcp(serve::VerificationService& service, std::uint16_t port,
             std::uint64_t maxRequests) {
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("mqsp_serve: socket");
        return 1;
    }
    const int reuse = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::bind(listener, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
        std::perror("mqsp_serve: bind");
        ::close(listener);
        return 1;
    }
    socklen_t addressLength = sizeof(address);
    ::getsockname(listener, reinterpret_cast<sockaddr*>(&address), &addressLength);
    if (::listen(listener, 16) != 0) {
        std::perror("mqsp_serve: listen");
        ::close(listener);
        return 1;
    }
    std::fprintf(stderr, "listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(ntohs(address.sin_port)));

    std::vector<std::thread> clients;
    std::uint64_t accepted = 0;
    while (maxRequests == 0 || accepted < maxRequests) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            break;
        }
        ++accepted;
        clients.emplace_back([&service, fd] { serveClient(service, fd); });
    }
    ::close(listener);
    for (std::thread& client : clients) {
        client.join();
    }
    return 0;
}

#endif // MQSP_SERVE_HAS_SOCKETS

} // namespace

int main(int argc, char** argv) {
    try {
        const unsigned threads = cli::configureThreads(argc, argv);

        serve::ServiceLimits limits;
        limits.maxAmplitudes =
            cli::argUint(argc, argv, "--max-amplitudes", limits.maxAmplitudes);
        limits.maxSessionNodes = cli::argUint(argc, argv, "--max-nodes", limits.maxSessionNodes);
        limits.maxLineLength = cli::argUint(argc, argv, "--max-line", limits.maxLineLength);
        limits.gcWatermarkNodes =
            cli::argUint(argc, argv, "--gc-watermark", limits.gcWatermarkNodes);

        serve::VerificationService service(limits, parallel::ExecutionConfig{threads});

        const auto port = cli::argValue(argc, argv, "--port");
        if (!port) {
            std::fprintf(stderr, "mqsp_serve %s ready (stdio); HELP lists commands\n",
                         versionString());
            return serveStdio(service);
        }
#if MQSP_SERVE_HAS_SOCKETS
        const std::uint64_t portNumber = cli::argUint(argc, argv, "--port", 0);
        requireThat(portNumber <= 65535, "--port expects a value in [0, 65535]");
        const std::uint64_t maxRequests = cli::argUint(argc, argv, "--max-requests", 0);
        return serveTcp(service, static_cast<std::uint16_t>(portNumber), maxRequests);
#else
        std::fprintf(stderr, "mqsp_serve: --port is unsupported on this platform; use stdio\n");
        return 2;
#endif
    } catch (const std::exception& error) {
        std::fprintf(stderr, "mqsp_serve: %s\n", error.what());
        return 1;
    }
}
