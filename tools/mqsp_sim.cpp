// mqsp_sim — command-line simulator for MQSP-QASM circuits.
//
//   mqsp_sim --qasm circuit.qasm [--shots 1000] [--print-state] [--seed 7]
//
// Reads a circuit in the MQSP-QASM dialect (as emitted by mqsp_prep --qasm),
// simulates it from |0...0>, and prints the final state and/or a sampled
// measurement histogram (sampled from the decision diagram of the output).

#include "cli_args.hpp"

#include "mqsp/circuit/qasm.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace mqsp;
using cli::argFlag;
using cli::argValue;

} // namespace

int main(int argc, char** argv) {
    try {
        const auto path = argValue(argc, argv, "--qasm");
        if (!path) {
            std::fprintf(stderr,
                         "usage: mqsp_sim --qasm <file|-> [--shots n] [--print-state] "
                         "[--seed n]\n");
            return 2;
        }

        Circuit circuit({2});
        if (*path == "-") {
            circuit = parseQasm(std::cin);
        } else {
            std::ifstream in(*path);
            requireThat(in.good(), "cannot open QASM file: " + *path);
            circuit = parseQasm(in);
        }

        const auto stats = circuit.stats();
        std::printf("circuit on %s: %zu ops (depth ~%zu)\n",
                    formatDimensionSpec(circuit.dimensions()).c_str(),
                    stats.numOperations, stats.depthEstimate);

        const StateVector out = Simulator::runFromZero(circuit);

        if (argFlag(argc, argv, "--print-state")) {
            const MixedRadix& radix = out.radix();
            std::printf("\nfinal state (amplitudes above 1e-9):\n");
            for (std::uint64_t i = 0; i < out.size(); ++i) {
                if (approxZero(out[i], 1e-9)) {
                    continue;
                }
                std::printf("  %-14s %s   (p = %.6f)\n",
                            MixedRadix::toKetString(radix.digitsOf(i)).c_str(),
                            toString(out[i]).c_str(), squaredMagnitude(out[i]));
            }
        }

        if (argValue(argc, argv, "--shots")) {
            const std::uint64_t count = cli::argUint(argc, argv, "--shots", 0);
            const std::uint64_t seed =
                cli::argUint(argc, argv, "--seed", Rng::kDefaultSeed);
            const DecisionDiagram dd = DecisionDiagram::fromStateVector(out);
            Rng rng(seed);
            const auto histogram = dd.sampleHistogram(rng, count);
            std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(histogram.begin(),
                                                                        histogram.end());
            std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
                return a.second > b.second;
            });
            std::printf("\n%llu shots:\n", static_cast<unsigned long long>(count));
            const MixedRadix& radix = out.radix();
            for (const auto& [index, hits] : sorted) {
                std::printf("  %-14s %8llu  (%.4f)\n",
                            MixedRadix::toKetString(radix.digitsOf(index)).c_str(),
                            static_cast<unsigned long long>(hits),
                            static_cast<double>(hits) / static_cast<double>(count));
            }
        }
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "mqsp_sim: %s\n", error.what());
        return 1;
    }
}
