// mqsp_sim — command-line simulator for MQSP-QASM circuits.
//
//   mqsp_sim --qasm circuit.qasm [--shots 1000] [--print-state] [--seed 7]
//            [--backend dense|dd|auto] [--noise 1e-3]
//   mqsp_sim --qasm - --stream [--checkpoint 64]   # gate-by-gate off stdin
//   mqsp_sim --circuit-json circuit.jsonl ...
//
// Reads a circuit in the MQSP-QASM dialect (as emitted by mqsp_prep --qasm)
// or the JSON-lines circuit format (printer.hpp; --circuit-json) and
// simulates it from |0...0> on the selected evaluation backend
// (sim/backend.hpp): `dense` replays on the state-vector simulator, `dd`
// replays natively on decision diagrams — amplitudes, sampling and the
// printed state all come straight off the diagram, so circuits on registers
// far past the dense O(∏dims) ceiling simulate in milliseconds. `auto` (the
// default) picks dense below kAutoBackendThreshold amplitudes, dd beyond.
//
// `--qasm -` reads stdin, so preparation pipes without a temp file:
//   mqsp_prep --target ghz --dims 3,6,2 --qasm | mqsp_sim --qasm - --shots 100
//
// --stream replays the QASM text gate-by-gate as it is parsed (the
// GateStream reader) instead of materializing the whole circuit first —
// memory stays O(state), never O(circuit text), so circuit files far larger
// than memory replay straight off a file or pipe. --checkpoint k prints a
// norm²/dd_nodes probe line every k gates. (Whole-circuit-only features —
// --noise, --circuit-json — do not combine with it.)

#include "cli_args.hpp"

#include "mqsp/circuit/printer.hpp"
#include "mqsp/circuit/qasm.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/sim/density_simulator.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/rng.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace mqsp;
using cli::argFlag;
using cli::argValue;

/// Cap on --print-state lines from a diagram-backed state: a DD can hold
/// more nonzero amplitudes than any terminal wants to scroll.
constexpr std::uint64_t kMaxPrintedAmplitudes = 1U << 16U;

void printAmplitudeLine(const Digits& digits, const Complex& amplitude) {
    std::printf("  %-14s %s   (p = %.6f)\n", MixedRadix::toKetString(digits).c_str(),
                toString(amplitude).c_str(), squaredMagnitude(amplitude));
}

} // namespace

int main(int argc, char** argv) {
    try {
        cli::configureThreads(argc, argv);
        const auto path = argValue(argc, argv, "--qasm");
        const auto jsonPath = argValue(argc, argv, "--circuit-json");
        const bool streaming = argFlag(argc, argv, "--stream");
        if (static_cast<bool>(path) == static_cast<bool>(jsonPath)) {
            std::fprintf(stderr,
                         "usage: mqsp_sim (--qasm <file|-> | --circuit-json <file|->) "
                         "[--stream [--checkpoint k]] [--shots n] [--print-state] "
                         "[--seed n] [--backend dense|dd|auto] [--threads n] "
                         "[--noise eps]\n");
            return 2;
        }
        requireThat(!streaming || path,
                    "--stream replays MQSP-QASM gate-by-gate — pass --qasm <file|->");
        requireThat(!streaming || !argValue(argc, argv, "--noise"),
                    "--stream cannot combine with --noise (the density simulator "
                    "replays the whole circuit)");
        requireThat(streaming || !argValue(argc, argv, "--checkpoint"),
                    "--checkpoint only applies to --stream");

        const std::string& input = path ? *path : *jsonPath;
        const std::string backendSpec =
            argValue(argc, argv, "--backend").value_or("auto");

        Circuit circuit({2});
        EvalState out;
        std::unique_ptr<EvaluationBackend> backend;
        if (streaming) {
            const auto runStream = [&](std::istream& in) {
                GateStream stream(in);
                backend = makeBackend(backendSpec, stream.radix().totalDimension());
                std::printf("streaming circuit on %s: %s backend\n",
                            formatDimensionSpec(stream.dimensions()).c_str(),
                            backend->name());
                VerifyRequest request;
                request.checkpointInterval =
                    cli::argUint(argc, argv, "--checkpoint", 0);
                const VerifyReport report = backend->verifyStream(stream, request, &out);
                for (const ReplayCheckpoint& checkpoint : report.checkpoints) {
                    std::printf("  checkpoint op %llu: norm2 %.9f, dd_nodes %llu\n",
                                static_cast<unsigned long long>(checkpoint.opIndex),
                                checkpoint.fidelity,
                                static_cast<unsigned long long>(checkpoint.ddNodes));
                }
                std::printf("streamed %llu ops: norm2 %.9f\n",
                            static_cast<unsigned long long>(report.ops), report.fidelity);
            };
            if (input == "-") {
                runStream(std::cin);
            } else {
                std::ifstream in(input);
                requireThat(in.good(), "cannot open QASM file: " + input);
                runStream(in);
            }
        } else {
            const auto parseFrom = [&](std::istream& in) {
                return path ? parseQasm(in) : parseCircuitJsonLines(in);
            };
            if (input == "-") {
                circuit = parseFrom(std::cin);
            } else {
                std::ifstream in(input);
                requireThat(in.good(), std::string("cannot open ") +
                                           (path ? "QASM" : "circuit-JSON") +
                                           " file: " + input);
                circuit = parseFrom(in);
            }

            backend = makeBackend(backendSpec, circuit.radix().totalDimension());

            const auto stats = circuit.stats();
            std::printf("circuit on %s: %zu ops (depth ~%zu), %s backend\n",
                        formatDimensionSpec(circuit.dimensions()).c_str(),
                        stats.numOperations, stats.depthEstimate, backend->name());

            out = backend->runFromZero(circuit);
        }
        const MixedRadix& radix = out.radix();

        if (argFlag(argc, argv, "--print-state")) {
            std::printf("\nfinal state (amplitudes above 1e-9):\n");
            if (out.isDense()) {
                const StateVector& state = out.dense();
                for (std::uint64_t i = 0; i < state.size(); ++i) {
                    if (approxZero(state[i], 1e-9)) {
                        continue;
                    }
                    printAmplitudeLine(radix.digitsOf(i), state[i]);
                }
            } else {
                // Walk the diagram's nonzero paths in the same flat-index
                // order the dense loop uses, capped for sanity.
                std::uint64_t printed = 0;
                bool truncated = false;
                out.diagram().forEachNonZero(
                    [&](const Digits& digits, const Complex& amplitude) {
                        if (approxZero(amplitude, 1e-9)) {
                            return true;
                        }
                        if (printed == kMaxPrintedAmplitudes) {
                            truncated = true;
                            return false;
                        }
                        printAmplitudeLine(digits, amplitude);
                        ++printed;
                        return true;
                    });
                if (truncated) {
                    std::printf("  ... (further amplitudes elided after %llu lines)\n",
                                static_cast<unsigned long long>(kMaxPrintedAmplitudes));
                }
            }
        }

        if (argValue(argc, argv, "--shots")) {
            const std::uint64_t count = cli::argUint(argc, argv, "--shots", 0);
            const std::uint64_t seed =
                cli::argUint(argc, argv, "--seed", Rng::kDefaultSeed);
            // Sampling always happens on a diagram: dense output is
            // converted once; diagram output samples in O(depth) directly.
            const DecisionDiagram dd = out.toDiagram();
            Rng rng(seed);
            const auto histogram = dd.sampleHistogram(rng, count);
            std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(histogram.begin(),
                                                                        histogram.end());
            std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
                return a.second > b.second;
            });
            std::printf("\n%llu shots:\n", static_cast<unsigned long long>(count));
            for (const auto& [index, hits] : sorted) {
                std::printf("  %-14s %8llu  (%.4f)\n",
                            MixedRadix::toKetString(radix.digitsOf(index)).c_str(),
                            static_cast<unsigned long long>(hits),
                            static_cast<double>(hits) / static_cast<double>(count));
            }
        }
        if (const auto noiseSpec = argValue(argc, argv, "--noise")) {
            const double eps = cli::argDouble(argc, argv, "--noise", 0.0);
            requireThat(eps >= 0.0 && eps <= 1.0,
                        "--noise needs an error rate in [0, 1], got " + *noiseSpec);
            requireThat(radix.totalDimension() <= 1024,
                        "--noise replays on a dense density matrix, which needs "
                        "total dimension <= 1024");
            NoiseModel noise;
            noise.singleQuditError = eps / 10.0;
            noise.twoQuditError = eps;
            // Snapshot of the process-wide execution config: --threads
            // (applied by cli::configureThreads above) reaches the density
            // kernels; the reported numbers are bit-identical at any width.
            const DensityMatrix rho = NoisySimulator().run(circuit, noise);
            const StateVector ideal = out.toStateVector(1024);
            std::printf("\nnoisy replay (eps %.3e): fidelity %.9f, purity %.9f, "
                        "trace %.9f\n",
                        eps, rho.fidelityWithPure(ideal), rho.purity(), rho.trace());
        }
        if (const auto session = backend->ddSession()) {
            // DD memory report on stderr (stdout stays pipeable): the pool
            // the replay interned into and the table/cache hit rates.
            const auto sessionStats = session->stats();
            std::fprintf(stderr,
                         "dd session: %llu pool nodes, unique_hit_rate %.3f, "
                         "cache_hit_rate %.3f\n",
                         static_cast<unsigned long long>(sessionStats.poolNodes),
                         sessionStats.uniqueHitRate(), sessionStats.cacheHitRate());
        }
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "mqsp_sim: %s\n", error.what());
        return 1;
    }
}
