// Hardware-aware preparation (the paper's stated future work: "taking the
// capabilities of the targeted quantum hardware in account"): synthesize a
// state, lower it to two-qudit gates, map it onto different device
// topologies, and compare the noise-model fidelity estimates.

#include "mqsp/hardware/router.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <complex>
#include <cstdio>

int main() {
    using namespace mqsp;

    // Three qutrits: deep enough for two-control ops (which transpile
    // without ancillas, keeping the device register uniform so chain
    // routing is dimension-compatible).
    const Dimensions dims{3, 3, 3};
    const StateVector target = states::ghz(dims);

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    const auto lowered = transpileToTwoQudit(prep.circuit);
    std::printf("GHZ on %s: %zu high-level ops -> %zu two-level ops (%zu ancillas)\n\n",
                formatDimensionSpec(dims).c_str(), prep.circuit.numOperations(),
                lowered.circuit.numOperations(), lowered.numAncillas);

    NoiseModel noise;
    noise.singleQuditError = 1e-4;
    noise.twoQuditError = 5e-3;

    const Dimensions device = lowered.circuit.dimensions();
    struct Topology {
        const char* label;
        Architecture arch;
    };
    const Topology topologies[] = {
        {"all-to-all (trapped ions)", Architecture::allToAll(device, noise)},
        {"ring", Architecture::ring(device, noise)},
        {"linear chain", Architecture::linearChain(device, noise)},
    };

    std::printf("%-28s %10s %10s %14s %12s\n", "topology", "ops", "swaps", "2q ops",
                "est. fid");
    for (const auto& [label, arch] : topologies) {
        const auto routed = routeCircuit(lowered.circuit, arch);
        std::printf("%-28s %10zu %10zu %14zu %12.4f\n", label,
                    routed.circuit.numOperations(), routed.swapsInserted,
                    routed.twoQuditOps,
                    estimateCircuitFidelity(routed.circuit, noise));
    }

    // Verify the worst case (chain) end-to-end on the simulator.
    const auto routed = routeCircuit(lowered.circuit, Architecture::linearChain(device));
    const StateVector out = Simulator::runFromZero(routed.circuit);
    std::uint64_t scale = 1;
    for (std::size_t a = 0; a < lowered.numAncillas; ++a) {
        scale *= 2;
    }
    Complex overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < target.size(); ++i) {
        overlap += std::conj(target[i]) * out[i * scale];
    }
    std::printf("\nchain-routed circuit verified on the simulator: |overlap| = %.9f\n",
                std::abs(overlap));
    return std::abs(overlap) > 0.999999 ? 0 : 1;
}
