// Spin-boson ground-state preparation — the paper's motivating application
// (§1: "Simulations of models representing fermion-boson interactions on
// mixed-dimensional quantum computers"). A two-level atom coupled to a
// truncated bosonic mode is natively a mixed-dimensional register: a qubit
// next to a d-level qudit. This example
//   1. builds the quantum Rabi Hamiltonian on [2, d],
//   2. finds its ground state with the library's Hermitian eigensolver,
//   3. synthesizes the preparation circuit from the decision diagram,
//   4. verifies it on the simulator, and
//   5. measures physical observables of the prepared state.

#include "mqsp/analysis/entanglement.hpp"
#include "mqsp/analysis/observables.hpp"
#include "mqsp/linalg/eigen.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cmath>
#include <cstdio>

namespace {

using namespace mqsp;

/// Quantum Rabi Hamiltonian on qubit (x) boson(d):
///   H = delta/2 sz + omega n + g (s+ + s-)(a + a^dagger),
/// in the mixed-radix basis |spin, fock>.
DenseMatrix rabiHamiltonian(Dimension bosonLevels, double delta, double omega, double g) {
    const std::size_t dim = 2U * bosonLevels;
    DenseMatrix h(dim);
    const auto index = [bosonLevels](std::size_t spin, std::size_t fock) {
        return spin * bosonLevels + fock;
    };
    for (std::size_t spin = 0; spin < 2; ++spin) {
        for (std::size_t fock = 0; fock < bosonLevels; ++fock) {
            const std::size_t i = index(spin, fock);
            // Diagonal: spin splitting + photon number.
            h(i, i) += Complex{(spin == 0 ? 0.5 : -0.5) * delta +
                                   omega * static_cast<double>(fock),
                               0.0};
            // Coupling: spin flip with photon creation/annihilation.
            const std::size_t flipped = 1 - spin;
            if (fock + 1 < bosonLevels) {
                const double amp = g * std::sqrt(static_cast<double>(fock + 1));
                h(index(flipped, fock + 1), i) += Complex{amp, 0.0};
                h(i, index(flipped, fock + 1)) += Complex{amp, 0.0};
            }
            if (fock > 0) {
                const double amp = g * std::sqrt(static_cast<double>(fock));
                h(index(flipped, fock - 1), i) += Complex{amp, 0.0};
                h(i, index(flipped, fock - 1)) += Complex{amp, 0.0};
            }
        }
    }
    return h;
}

} // namespace

int main() {
    const Dimension bosonLevels = 6; // truncate the mode at 6 Fock states
    const double delta = 1.0;        // qubit splitting
    const double omega = 0.8;        // mode frequency
    const double g = 0.6;            // ultrastrong coupling: entangled ground state

    const DenseMatrix h = rabiHamiltonian(bosonLevels, delta, omega, g);
    const EigenResult eigen = eigenHermitian(h);
    std::printf("Rabi model on [2 x %u]: ground energy E0 = %.6f (gap %.6f)\n",
                bosonLevels, eigen.values[0], eigen.values[1] - eigen.values[0]);

    // The ground eigenvector, as a mixed-dimensional state |spin, fock>.
    const Dimensions dims{2, bosonLevels};
    std::vector<Complex> amplitudes(2U * bosonLevels);
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
        amplitudes[i] = eigen.vectors(i, 0);
    }
    StateVector ground(dims, std::move(amplitudes));
    ground.normalize();

    // Synthesize and verify the preparation circuit.
    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    lean.circuitName = "rabi_ground_state";
    const auto prep = prepareExact(ground, lean);
    const double fidelity = Simulator::preparationFidelity(prep.circuit, ground);
    const auto stats = prep.circuit.stats();
    std::printf("preparation circuit: %zu ops, median controls %.1f, fidelity %.9f\n\n",
                stats.numOperations, stats.medianControls, fidelity);

    // Physics of the prepared state.
    const StateVector prepared = Simulator::runFromZero(prep.circuit);
    DenseMatrix number(bosonLevels);
    for (Level n = 0; n < bosonLevels; ++n) {
        number(n, n) = Complex{static_cast<double>(n), 0.0};
    }
    const double occupation = analysis::expectation(prepared, 1, number);
    const double occupationVar = analysis::variance(prepared, 1, number);
    const double sz = analysis::expectation(prepared, 0, analysis::gellMannDiagonal(2, 1));
    const double entropy = analysis::entanglementEntropy(prepared, {0});
    const auto energyVec = h.apply(prepared.amplitudes());
    Complex energy{0.0, 0.0};
    for (std::size_t i = 0; i < energyVec.size(); ++i) {
        energy += std::conj(prepared.amplitudes()[i]) * energyVec[i];
    }

    std::printf("observables of the prepared state:\n");
    std::printf("  <H>                  : %.6f (ground energy reproduced)\n",
                energy.real());
    std::printf("  <n> photon number    : %.6f (+- %.6f)\n", occupation,
                std::sqrt(occupationVar));
    std::printf("  <sigma_z>            : %.6f\n", sz);
    std::printf("  S(spin : mode)       : %.6f bits of spin-mode entanglement\n", entropy);

    const bool ok = fidelity > 0.999999 &&
                    std::abs(energy.real() - eigen.values[0]) < 1e-6;
    std::printf("\n%s\n", ok ? "ground state prepared and verified."
                             : "verification FAILED");
    return ok ? 0 : 1;
}
