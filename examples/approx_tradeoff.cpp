// Approximation trade-off (§4.3): sweep the fidelity threshold on a dense
// random mixed-dimensional state and watch diagram size, operation count and
// verified fidelity trade against each other. This is the knob the paper
// exposes for "a finely controlled trade-off between accuracy, memory
// complexity, and number of operations".

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>

int main() {
    using namespace mqsp;

    const Dimensions dims{3, 6, 2};
    Rng rng; // library default seed: reproducible output
    const StateVector target = states::random(dims, rng);

    std::printf("Random state on %s (%llu amplitudes)\n\n",
                formatDimensionSpec(dims).c_str(),
                static_cast<unsigned long long>(target.size()));
    std::printf("%-10s %8s %8s %10s %12s %12s\n", "threshold", "nodes", "ops",
                "controls", "fid(target)", "fid(claimed)");

    const auto exact = prepareExact(target);
    std::printf("%-10s %8llu %8zu %10.2f %12.6f %12s\n", "exact",
                static_cast<unsigned long long>(
                    exact.diagram.nodeCount(NodeCountMode::TreeSlots)),
                exact.circuit.numOperations(), exact.circuit.stats().medianControls,
                Simulator::preparationFidelity(exact.circuit, target), "1.000000");

    for (const double threshold : {0.999, 0.99, 0.98, 0.95, 0.90, 0.80}) {
        const auto result = prepareApproximated(target, threshold);
        const double verified = Simulator::preparationFidelity(result.circuit, target);
        std::printf("%-10.3f %8llu %8zu %10.2f %12.6f %12.6f\n", threshold,
                    static_cast<unsigned long long>(
                        result.diagram.nodeCount(NodeCountMode::TreeSlots)),
                    result.circuit.numOperations(),
                    result.circuit.stats().medianControls, verified,
                    result.approx.fidelity);
    }

    std::printf("\nfid(target):  fidelity of the simulated circuit output "
                "against the original state\nfid(claimed): the approximation "
                "report's guarantee (1 - removed mass); the two must agree\n");
    return 0;
}
