// Quickstart: prepare a two-qutrit GHZ state (the paper's Figure 1 /
// Example 3 scenario) with the full pipeline:
//   target state -> decision diagram -> synthesized circuit -> verification.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include "mqsp/circuit/printer.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <iostream>

int main() {
    using namespace mqsp;

    // 1. The target: a GHZ state on two qutrits, 1/sqrt(3)(|00> + |11> + |22>).
    const Dimensions dims{3, 3};
    const StateVector target = states::ghz(dims);
    std::cout << "Target state: " << target << "\n\n";

    // 2. Represent it as an edge-weighted decision diagram.
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(target);
    std::cout << "Decision diagram: " << dd.nodeCount(NodeCountMode::Internal)
              << " internal nodes, " << dd.distinctComplexCount()
              << " distinct complex values\n\n";

    // 3. Synthesize the state-preparation circuit. The lean options skip
    //    identity rotations (the paper-faithful mode emits them for its
    //    operation counting; both prepare the state exactly).
    SynthesisOptions options;
    options.emitIdentityOperations = false;
    options.circuitName = "ghz_qutrit_pair";
    const Circuit circuit = synthesize(dd, options);
    printCircuitText(std::cout, circuit);

    // 4. Verify on the simulator: |<target | circuit |0...0>|^2 must be 1.
    const double fidelity = Simulator::preparationFidelity(circuit, target);
    std::cout << "\nPreparation fidelity: " << fidelity << "\n";
    return fidelity > 0.999999 ? 0 : 1;
}
