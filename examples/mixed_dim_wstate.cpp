// Mixed-dimensional W states: the paper's motivating workload for
// quantum-simulation-style registers where every qudit has a different
// dimension. Prepares the W state and the embedded W state on the paper's
// [1x3,1x6,1x2] and [1x9,1x5,1x6,1x3] registers, shows the decision-diagram
// statistics, and emits a Graphviz rendering of the 3-qudit diagram.

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <iostream>

namespace {

void report(const std::string& label, const mqsp::StateVector& target) {
    using namespace mqsp;
    const auto result = prepareExact(target);
    const auto stats = result.circuit.stats();
    const double fidelity = Simulator::preparationFidelity(result.circuit, target);
    std::cout << label << " on " << formatDimensionSpec(target.dimensions()) << ":\n"
              << "  terms in superposition : " << target.countNonZero() << "\n"
              << "  DD internal nodes      : "
              << result.diagram.nodeCount(NodeCountMode::Internal) << "\n"
              << "  distinct complex values: " << result.diagram.distinctComplexCount()
              << "\n"
              << "  multi-controlled ops   : " << stats.numOperations << "\n"
              << "  median controls        : " << stats.medianControls << "\n"
              << "  verified fidelity      : " << fidelity << "\n\n";
}

} // namespace

int main() {
    using namespace mqsp;

    const Dimensions small{3, 6, 2};
    const Dimensions large{9, 5, 6, 3};

    report("W state", states::wState(small));
    report("W state", states::wState(large));
    report("Embedded W state", states::embeddedWState(small));
    report("Embedded W state", states::embeddedWState(large));

    std::cout << "Graphviz rendering of the W-state diagram on "
              << formatDimensionSpec(small) << ":\n\n";
    const DecisionDiagram dd =
        DecisionDiagram::fromStateVector(states::wState(small));
    std::cout << dd.toDot() << "\n";
    return 0;
}
