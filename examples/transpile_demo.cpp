// Transpilation demo (§3.3): lower a synthesized multi-controlled circuit to
// one- and two-qudit operations (the paper's references [35], [36] justify
// that this is always possible with linear overhead) and verify the lowered
// circuit end-to-end on the simulator.

#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"
#include "mqsp/transpile/transpiler.hpp"

#include <complex>
#include <cstdio>

int main() {
    using namespace mqsp;

    const Dimensions dims{3, 3, 2};
    Rng rng;
    const StateVector target = states::random(dims, rng);

    SynthesisOptions lean;
    lean.emitIdentityOperations = false;
    const auto prep = prepareExact(target, lean);
    const auto highStats = prep.circuit.stats();
    std::printf("High-level circuit on %s:\n", formatDimensionSpec(dims).c_str());
    std::printf("  ops: %zu   median controls: %.1f   max controls: %zu\n\n",
                highStats.numOperations, highStats.medianControls,
                highStats.maxControls);

    const auto lowered = transpileToTwoQudit(prep.circuit);
    const auto lowStats = lowered.circuit.stats();
    std::printf("Lowered circuit (every op has <= 1 control):\n");
    std::printf("  ops: %zu   ancilla qubits: %zu   max controls: %zu\n",
                lowStats.numOperations, lowered.numAncillas, lowStats.maxControls);
    std::printf("  estimator agrees: %s\n\n",
                estimateTwoQuditCost(prep.circuit) == lowStats.numOperations ? "yes"
                                                                             : "no");

    // Verify: run the lowered circuit from |0...0> and project onto the
    // target on the original register (ancillas must return to |0>).
    const StateVector out = Simulator::runFromZero(lowered.circuit);
    std::uint64_t scale = 1;
    for (std::size_t a = 0; a < lowered.numAncillas; ++a) {
        scale *= 2;
    }
    Complex overlap{0.0, 0.0};
    for (std::uint64_t i = 0; i < target.size(); ++i) {
        overlap += std::conj(target[i]) * out[i * scale];
    }
    const double fidelity = squaredMagnitude(overlap);
    std::printf("Verified fidelity after lowering: %.9f\n", fidelity);
    return fidelity > 0.999999 ? 0 : 1;
}
