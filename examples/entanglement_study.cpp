// Entanglement study: the paper's introduction motivates state preparation
// as the gateway to "gaining insights into the behavior of specific states
// that have not yet been extensively studied in qudit systems, including
// aspects like entanglement". This example does exactly that: it prepares
// the benchmark states on a mixed-dimensional register, verifies them, and
// measures their entanglement structure across every bipartition, plus
// samples measurement outcomes directly from the decision diagram.

#include "mqsp/analysis/entanglement.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace {

void study(const std::string& name, const mqsp::StateVector& target) {
    using namespace mqsp;
    // First make sure we can actually prepare it.
    const auto prep = prepareExact(target);
    const double fidelity = Simulator::preparationFidelity(prep.circuit, target);

    std::printf("%-18s fidelity=%.6f  ops=%zu\n", name.c_str(), fidelity,
                prep.circuit.numOperations());
    const std::size_t n = target.numQudits();
    for (std::size_t cut = 1; cut < n; ++cut) {
        std::vector<std::size_t> left;
        for (std::size_t site = 0; site < cut; ++site) {
            left.push_back(site);
        }
        const double entropy = analysis::entanglementEntropy(target, left);
        const std::size_t rank = analysis::schmidtRank(target, left);
        const double renyi = analysis::renyi2Entropy(target, left);
        std::printf("    cut after site %zu: S=%.4f bits  Renyi2=%.4f  Schmidt rank=%zu\n",
                    cut - 1, entropy, renyi, rank);
    }
}

} // namespace

int main() {
    using namespace mqsp;

    const Dimensions dims{3, 6, 2};
    std::printf("Entanglement across bipartitions on %s\n\n",
                formatDimensionSpec(dims).c_str());

    study("GHZ", states::ghz(dims));
    study("W", states::wState(dims));
    study("Embedded W", states::embeddedWState(dims));
    study("Uniform (product)", states::uniform(dims));
    Rng rng;
    study("Random dense", states::random(dims, rng));

    // Sampling straight from the decision diagram (no dense expansion).
    std::printf("\nSampling 10000 shots from the W-state diagram:\n");
    const DecisionDiagram dd = DecisionDiagram::fromStateVector(states::wState(dims));
    Rng sampler(42);
    const auto histogram = dd.sampleHistogram(sampler, 10000);
    const MixedRadix radix(dims);
    for (const auto& [index, count] : histogram) {
        std::printf("  %s : %llu\n", MixedRadix::toKetString(radix.digitsOf(index)).c_str(),
                    static_cast<unsigned long long>(count));
    }
    return 0;
}
