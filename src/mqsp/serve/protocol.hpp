#pragma once

// The mqsp_serve wire grammar: one command per line, SCPI-flavored verbs,
// long-option arguments. This is a real tokenizer/parser — every malformed
// line becomes an InvalidArgumentError naming the offending token, never a
// bare stdlib exception — because a resident service lives or dies by how
// it treats untrusted input.
//
//   PREP:<FAMILY> --dims <spec> [--weight <n>] [--count <n>]
//                 [--seed <n>] [--approx <f>]
//   VERIFY [--id <n>] [--repeat <k>]
//   BATCH
//   STREAM --dims <spec> [--checkpoint <k>]
//   APPEND [--id <n>] --gate <statement>
//   REVERIFY [--id <n>]
//   DROP --id <n>
//   GC
//   STATS?
//   LIMITS?
//   HELP
//   QUIT
//
// Verbs are case-insensitive ("prep:ghz" works); option keys are spelled
// lowercase. The parser is grammar-only: it validates shape (verb known,
// family present on PREP, options come as `--key value` pairs) and leaves
// option-set and value validation to the dispatcher, which knows which
// verb accepts what. One exception to the pair rule: `--gate` captures
// the REST OF THE LINE verbatim (gate statements contain spaces), so it
// must come last on its line.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mqsp::serve {

/// The protocol verbs. Stats/Limits are the query verbs (spelled with a
/// trailing '?' on the wire, SCPI-style; the bare spelling is accepted).
/// (Stream/Append/Reverify sit at the end so the metric indexes of the
/// original verbs — and with them the pinned STATS? field order — are
/// unchanged.)
enum class Verb : std::uint8_t {
    Prep,
    Verify,
    Batch,
    Drop,
    Gc,
    Stats,
    Limits,
    Help,
    Quit,
    Stream,
    Append,
    Reverify,
};

/// Number of verbs (the service keeps one latency histogram per verb).
inline constexpr std::size_t kVerbCount = 12;

/// Canonical wire spelling of a verb ("PREP", "STATS?", ...).
[[nodiscard]] const char* verbName(Verb verb) noexcept;

/// Lowercase metric key of a verb ("prep", "stats", ...) — the prefix of
/// its per-verb latency fields in the STATS? reply.
[[nodiscard]] const char* verbMetricKey(Verb verb) noexcept;

/// The read/write dispatch classification (see serve/service.hpp): a
/// read-path verb never mutates the registry and only touches the shared
/// DdSession through its concurrency-safe interning/lookup paths, so the
/// service runs it under shared ownership of the dispatch lock,
/// concurrently with other read-path commands. Write-path verbs (PREP,
/// STREAM, APPEND, REVERIFY, DROP, GC, QUIT) take exclusive ownership —
/// the streaming verbs mutate registry entries (the streamed state, the
/// replay cursor), so they are writers even though REVERIFY "only" reads
/// the target.
[[nodiscard]] bool isReadPathVerb(Verb verb) noexcept;

/// One parsed command line.
struct Request {
    Verb verb = Verb::Help;
    /// PREP's state family (the text after the ':'), lowercased; empty for
    /// every other verb.
    std::string family;
    /// Options in wire order, keys without the leading "--". Values are
    /// raw text — numeric validation happens at dispatch, where the field
    /// is known.
    std::vector<std::pair<std::string, std::string>> options;

    /// Last value given for `key`, or nullptr when absent (last-wins, like
    /// the CLI layer).
    [[nodiscard]] const std::string* option(std::string_view key) const noexcept;
};

/// Parse one protocol line. Throws InvalidArgumentError (never a bare
/// stdlib exception) with a message naming the offending token on: empty
/// input, an unknown verb, PREP without a family, an option token that
/// does not start with "--", or a key with no value.
[[nodiscard]] Request parseRequest(std::string_view line);

} // namespace mqsp::serve
