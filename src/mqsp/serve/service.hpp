#pragma once

// The mqsp_serve dispatcher: one resident VerificationService multiplexes
// every client (stdio or TCP) onto a single DdBackend — one shared
// DdSession stays hot across requests, so repeat verifications resolve
// from the session compute cache and structurally shared targets intern
// into one pool. Commands are serialized behind one dispatch lock
// (BATCH gets its concurrency *inside* the lock, from
// prepareAndVerifyBatch's worker fan-out), which is also what makes the
// GC verb safe: compaction runs at quiescence by construction.
//
// Admission limits make the service survivable under hostile or
// fat-fingered traffic: a per-request amplitude ceiling (one PREP of a
// 2^30 register cannot take the process down), a session node budget
// (PREP refuses when the pool is over budget, pointing at GC/DROP), and a
// line-length ceiling enforced before parsing.

#include "mqsp/serve/protocol.hpp"
#include "mqsp/serve/registry.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/support/parallel.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace mqsp::serve {

/// Admission limits of one service instance (see the flags on mqsp_serve).
struct ServiceLimits {
    /// Largest register one PREP may name, in amplitudes. Structured
    /// families build as diagrams, so this is well past the dense ceiling;
    /// it bounds digit-walk work and refuses absurd registers up front.
    std::uint64_t maxAmplitudes = std::uint64_t{1} << 28U;
    /// Session node budget: PREP refuses while the pool holds more nodes,
    /// pointing the client at GC (or DROP). Verification of already
    /// prepared targets keeps working — the budget gates new admissions,
    /// it does not kill the session.
    std::uint64_t maxSessionNodes = std::uint64_t{1} << 20U;
    /// Longest accepted command line, in bytes; longer lines are refused
    /// before the parser sees them.
    std::size_t maxLineLength = 4096;
    /// Cap on VERIFY --repeat, bounding per-command work.
    std::uint64_t maxVerifyRepeat = 10000;
};

/// One reply line plus the connection verdict (QUIT closes).
struct Response {
    std::string line;
    bool closeConnection = false;
};

/// The resident dispatcher. Thread-safe: handleLine may be called from
/// concurrent client threads; commands execute one at a time under the
/// dispatch lock. Every response is exactly one line, "OK ..." or
/// "ERR ..." — handleLine never throws.
class VerificationService {
public:
    explicit VerificationService(
        ServiceLimits limits = {},
        parallel::ExecutionConfig config = parallel::globalExecutionConfig());

    VerificationService(const VerificationService&) = delete;
    VerificationService& operator=(const VerificationService&) = delete;

    /// Execute one raw wire line. Blank lines and '#' comments produce an
    /// empty response line (nothing to send). Errors — parse failures,
    /// admission refusals, unknown ids — come back as "ERR <message>" and
    /// leave the service serving.
    [[nodiscard]] Response handleLine(const std::string& rawLine);

    [[nodiscard]] const ServiceLimits& limits() const noexcept { return limits_; }

    /// The backing DD session (tests inspect pool sizes through this).
    [[nodiscard]] std::shared_ptr<dd::DdSession> session() const {
        return backend_->ddSession();
    }

private:
    [[nodiscard]] std::string dispatch(const Request& request);
    [[nodiscard]] std::string handlePrep(const Request& request);
    [[nodiscard]] std::string handleVerify(const Request& request);
    [[nodiscard]] std::string handleBatch(const Request& request);
    [[nodiscard]] std::string handleDrop(const Request& request);
    [[nodiscard]] std::string handleGc(const Request& request);
    [[nodiscard]] std::string handleStats(const Request& request);
    [[nodiscard]] std::string handleLimits(const Request& request);

    ServiceLimits limits_;
    std::unique_ptr<EvaluationBackend> backend_;
    SessionRegistry registry_;
    std::mutex mutex_; ///< the dispatch lock: one command at a time

    // Service counters (guarded by mutex_), reported by STATS?.
    std::uint64_t commands_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t prepared_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t verified_ = 0;
    std::uint64_t gcRuns_ = 0;
};

} // namespace mqsp::serve
