#pragma once

// The mqsp_serve dispatcher: one resident VerificationService multiplexes
// every client (stdio or TCP) onto a single DdBackend — one shared
// DdSession stays hot across requests, so repeat verifications resolve
// from the session compute cache and structurally shared targets intern
// into one pool.
//
// Dispatch is a reader-writer discipline over one writer-preference
// RwLock (support/rwlock.hpp), not a single mutex: read-path verbs
// (VERIFY, BATCH, STATS?, LIMITS?, HELP) execute concurrently from
// different client threads — they never mutate the registry, and the
// shared session's uniquing table is sharded and its compute cache
// striped precisely so concurrent verifications may intern into it
// (see "DD session memory" in docs/ARCHITECTURE.md). Write-path verbs
// (PREP, STREAM, APPEND, REVERIFY, DROP, GC, QUIT) take exclusive
// ownership: they append to / erase from the registry (invalidating
// entry references readers may hold), mutate entry state (the streamed
// diagram, the replay cursor), or remap diagram roots (GC's compaction),
// so they run at quiescence. Writer preference is what keeps GC schedulable under a
// stream of readers — a waiting writer stops new readers and drains the
// active ones instead of starving.
//
// Observability: every dispatched command records its wall latency into
// a per-verb lock-free LatencyHistogram (support/latency_histogram.hpp);
// STATS? reports <verb>.count/.p50_us/.p99_us/.max_us for every verb
// seen. The counts are deterministic (they depend only on the commands
// issued, never on timing), so bench baselines gate them; the latencies
// themselves are not.
//
// Session GC runs in two modes: the explicit GC verb, and an automatic
// high-water-mark policy — when the pool grows past the watermark
// (default 80% of the --max-nodes budget, override with --gc-watermark)
// the service takes the writer lock at the next opportunity and runs the
// same mark-and-compact, so a long-lived session stays under budget
// without any client ever issuing GC.
//
// Admission limits make the service survivable under hostile or
// fat-fingered traffic: a per-request amplitude ceiling (one PREP of a
// 2^30 register cannot take the process down), a session node budget
// (PREP refuses when the pool is over budget, pointing at GC/DROP), and a
// line-length ceiling enforced before parsing.

#include "mqsp/serve/protocol.hpp"
#include "mqsp/serve/registry.hpp"
#include "mqsp/sim/backend.hpp"
#include "mqsp/support/latency_histogram.hpp"
#include "mqsp/support/parallel.hpp"
#include "mqsp/support/rwlock.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace mqsp::serve {

/// Admission limits of one service instance (see the flags on mqsp_serve).
struct ServiceLimits {
    /// Largest register one PREP may name, in amplitudes. Structured
    /// families build as diagrams, so this is well past the dense ceiling;
    /// it bounds digit-walk work and refuses absurd registers up front.
    std::uint64_t maxAmplitudes = std::uint64_t{1} << 28U;
    /// Session node budget: PREP refuses while the pool holds more nodes,
    /// pointing the client at GC (or DROP). Verification of already
    /// prepared targets keeps working — the budget gates new admissions,
    /// it does not kill the session.
    std::uint64_t maxSessionNodes = std::uint64_t{1} << 20U;
    /// Longest accepted command line, in bytes; longer lines are refused
    /// before the parser sees them.
    std::size_t maxLineLength = 4096;
    /// Cap on VERIFY --repeat, bounding per-command work.
    std::uint64_t maxVerifyRepeat = 10000;
    /// Automatic-GC high-water mark in session nodes: when the pool grows
    /// past it, the service runs a mark-and-compact under the writer lock
    /// without waiting for an explicit GC. 0 = automatic (80% of
    /// maxSessionNodes).
    std::uint64_t gcWatermarkNodes = 0;
};

/// One reply line plus the connection verdict (QUIT closes).
struct Response {
    std::string line;
    bool closeConnection = false;
};

/// The resident dispatcher. Thread-safe: handleLine may be called from
/// concurrent client threads; read-path commands (VERIFY, BATCH, STATS?,
/// LIMITS?, HELP) from different clients execute concurrently, write-path
/// commands (PREP, STREAM, APPEND, REVERIFY, DROP, GC, QUIT) exclusively.
/// Every response is exactly one line, "OK ..." or "ERR ..." — handleLine
/// never throws.
class VerificationService {
public:
    explicit VerificationService(
        ServiceLimits limits = {},
        parallel::ExecutionConfig config = parallel::globalExecutionConfig());

    VerificationService(const VerificationService&) = delete;
    VerificationService& operator=(const VerificationService&) = delete;

    /// Execute one raw wire line. Blank lines and '#' comments produce an
    /// empty response line (nothing to send). Errors — parse failures,
    /// admission refusals, unknown ids — come back as "ERR <message>" and
    /// leave the service serving.
    [[nodiscard]] Response handleLine(const std::string& rawLine);

    [[nodiscard]] const ServiceLimits& limits() const noexcept { return limits_; }

    /// The automatic-GC trigger in effect (nodes; resolved from
    /// ServiceLimits::gcWatermarkNodes at construction).
    [[nodiscard]] std::uint64_t gcWatermark() const noexcept { return gcWatermark_; }

    /// The backing DD session (tests inspect pool sizes through this).
    [[nodiscard]] std::shared_ptr<dd::DdSession> session() const {
        return backend_->ddSession();
    }

    /// Test-only: `hook(verb)` runs on the read path while the shared
    /// lock is held, before the verb executes — the pin for the
    /// overlapping-readers contract (a hook that blocks one VERIFY must
    /// not stop a second reader from completing). Set before serving
    /// starts; never call handleLine from the hook.
    void setReadPathHookForTests(std::function<void(Verb)> hook) {
        readPathHook_ = std::move(hook);
    }

private:
    /// Point-in-time copy of everything STATS? reports, taken under the
    /// shared lock; the reply string is formatted after release so the
    /// read path never holds the lock across string building.
    struct StatsSnapshot {
        dd::DdSessionStats dd;
        std::uint64_t resident = 0;
        std::uint64_t prepared = 0;
        std::uint64_t dropped = 0;
        std::uint64_t verified = 0;
        std::uint64_t streams = 0;
        std::uint64_t appended = 0;
        std::uint64_t reverified = 0;
        std::uint64_t gcRuns = 0;
        std::uint64_t autoGcRuns = 0;
        std::uint64_t commands = 0;
        std::uint64_t errors = 0;
        struct VerbLatency {
            const char* key = "";
            std::uint64_t count = 0;
            std::uint64_t p50Ns = 0;
            std::uint64_t p99Ns = 0;
            std::uint64_t maxNs = 0;
        };
        std::array<VerbLatency, kVerbCount> verbs{};
    };

    [[nodiscard]] std::string dispatchRead(const Request& request);
    [[nodiscard]] std::string dispatchWrite(const Request& request);
    [[nodiscard]] std::string handlePrep(const Request& request);
    [[nodiscard]] std::string handleVerify(const Request& request);
    [[nodiscard]] std::string handleBatch(const Request& request);
    [[nodiscard]] std::string handleStream(const Request& request);
    [[nodiscard]] std::string handleAppend(const Request& request);
    [[nodiscard]] std::string handleReverify(const Request& request);
    [[nodiscard]] std::string handleDrop(const Request& request);
    [[nodiscard]] std::string handleGc(const Request& request);
    [[nodiscard]] std::string handleLimits(const Request& request);
    /// Entry named by --id, or the newest one; throws when absent.
    [[nodiscard]] PreparedTarget& residentEntry(const Request& request);
    [[nodiscard]] StatsSnapshot snapshotStats() const;
    [[nodiscard]] static std::string formatStats(const StatsSnapshot& snapshot);

    /// Run the mark-and-compact if the pool is over the current trigger;
    /// caller must hold the writer lock. Returns whether a collection ran.
    bool collectIfOverWatermarkLocked();
    /// Read-path epilogue: re-check the watermark and, when crossed,
    /// take the writer lock and collect (VERIFY/BATCH replays intern new
    /// nodes, so reads can push the pool over the mark too).
    void maybeAutoGc();

    ServiceLimits limits_;
    std::uint64_t gcWatermark_ = 0;
    /// The pool size a collection must exceed to fire. Normally equal to
    /// gcWatermark_, but ratcheted up to the post-collection live-set size
    /// when a collection cannot get back under the mark — otherwise a
    /// saturated live set (live roots alone over the watermark) would make
    /// every subsequent command run a futile mark-and-compact. Any
    /// collection (automatic or the explicit GC verb) re-derives it as
    /// max(gcWatermark_, nodesAfter), so the trigger falls back to the
    /// watermark as soon as DROPs shrink the live set.
    std::atomic<std::uint64_t> gcTrigger_{0};
    std::unique_ptr<EvaluationBackend> backend_;
    SessionRegistry registry_;
    support::RwLock dispatchLock_; ///< readers share, writers exclude (writer-preference)
    std::function<void(Verb)> readPathHook_; ///< test-only (see setter)

    // Service counters, reported by STATS?. Relaxed atomics: read-path
    // commands bump them concurrently under the shared lock.
    std::atomic<std::uint64_t> commands_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> prepared_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> verified_{0};
    std::atomic<std::uint64_t> streams_{0};
    std::atomic<std::uint64_t> appended_{0};
    std::atomic<std::uint64_t> reverified_{0};
    std::atomic<std::uint64_t> gcRuns_{0};
    std::atomic<std::uint64_t> autoGcRuns_{0};

    /// Per-verb command latency (lock-free; indexed by the verb's enum
    /// value). Recorded after a command completes — including ERR replies,
    /// which are dispatched work like any other — never while a lock is
    /// held.
    std::array<support::LatencyHistogram, kVerbCount> latency_{};
};

} // namespace mqsp::serve
