#include "mqsp/serve/service.hpp"

#include "mqsp/circuit/qasm.hpp"
#include "mqsp/states/states.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/parse.hpp"
#include "mqsp/support/rng.hpp"
#include "mqsp/synth/synthesizer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <numeric>
#include <utility>

namespace mqsp::serve {

namespace {

constexpr const char* kHelpLine =
    "OK commands: PREP:<ghz|w|embw|uniform|dicke|cyclic|random> --dims <spec> "
    "[--weight n] [--count n] [--seed n] [--approx f] | VERIFY [--id n] [--repeat k] | "
    "BATCH | STREAM --dims <spec> [--checkpoint k] | APPEND [--id n] --gate <stmt> | "
    "REVERIFY [--id n] | DROP --id n | GC | STATS? | LIMITS? | HELP | QUIT";

[[nodiscard]] std::string fixed(double value, int precision) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

[[nodiscard]] std::string u64(std::uint64_t value) { return std::to_string(value); }

/// Reject options the verb does not define, so a typo ("--wieght") fails
/// loudly instead of silently using the default.
void rejectUnknownOptions(const Request& request,
                          std::initializer_list<std::string_view> allowed) {
    for (const auto& [key, value] : request.options) {
        const bool known = std::any_of(allowed.begin(), allowed.end(),
                                       [&key](std::string_view name) { return key == name; });
        requireThat(known, std::string(verbName(request.verb)) +
                               " does not take option --" + parse::clipForMessage(key));
    }
}

[[nodiscard]] std::uint64_t uintOption(const Request& request, const char* key,
                                       std::uint64_t fallback) {
    const std::string* text = request.option(key);
    return text == nullptr ? fallback : parse::uint64(*text, std::string("--") + key);
}

/// Σ(dim_i − 1): the largest Dicke excitation weight the register admits.
[[nodiscard]] std::uint64_t maxDickeWeight(const Dimensions& dims) {
    std::uint64_t maxWeight = 0;
    for (const auto dim : dims) {
        maxWeight += dim - 1;
    }
    return maxWeight;
}

/// Default cyclic shift count: every distinct shift, lcm(dims) saturated
/// to the 32-bit count range (shifts repeat beyond the lcm anyway).
[[nodiscard]] std::uint32_t defaultCyclicCount(const Dimensions& dims) {
    std::uint64_t lcmSoFar = 1;
    constexpr std::uint64_t kCap = std::numeric_limits<std::uint32_t>::max();
    for (const auto dim : dims) {
        lcmSoFar = std::lcm(lcmSoFar, static_cast<std::uint64_t>(dim));
        if (lcmSoFar >= kCap) {
            return static_cast<std::uint32_t>(kCap);
        }
    }
    return static_cast<std::uint32_t>(lcmSoFar);
}

struct FamilySpec {
    std::string name;
    std::uint64_t weight = 0; ///< dicke
    std::uint32_t count = 0;  ///< cyclic
    std::uint64_t seed = 0;   ///< random
    [[nodiscard]] bool isRandom() const noexcept { return name == "random"; }
};

[[nodiscard]] StateVector makeDenseState(const FamilySpec& spec, const Dimensions& dims) {
    if (spec.name == "ghz") {
        return states::ghz(dims);
    }
    if (spec.name == "w") {
        return states::wState(dims);
    }
    if (spec.name == "embw") {
        return states::embeddedWState(dims);
    }
    if (spec.name == "uniform") {
        return states::uniform(dims);
    }
    if (spec.name == "dicke") {
        return states::dicke(dims, spec.weight);
    }
    if (spec.name == "cyclic") {
        return states::cyclic(dims, Digits(dims.size(), 0), spec.count);
    }
    if (spec.name == "random") {
        Rng rng(spec.seed);
        return states::random(dims, rng);
    }
    detail::throwInternal("makeDenseState: unhandled family " + spec.name);
}

[[nodiscard]] DecisionDiagram makeSessionDiagram(const FamilySpec& spec, const Dimensions& dims,
                                                 const dd::DdSession& session) {
    if (spec.name == "ghz") {
        return session.ghzState(dims);
    }
    if (spec.name == "w") {
        return session.wState(dims);
    }
    if (spec.name == "embw") {
        return session.embeddedWState(dims);
    }
    if (spec.name == "uniform") {
        return session.uniformState(dims);
    }
    if (spec.name == "dicke") {
        return session.dickeState(dims, spec.weight);
    }
    if (spec.name == "cyclic") {
        return session.cyclicState(dims, Digits(dims.size(), 0), spec.count);
    }
    detail::throwInternal("makeSessionDiagram: unhandled family " + spec.name);
}

} // namespace

VerificationService::VerificationService(ServiceLimits limits, parallel::ExecutionConfig config)
    : limits_(limits),
      gcWatermark_(limits.gcWatermarkNodes != 0 ? limits.gcWatermarkNodes
                                                : limits.maxSessionNodes * 8 / 10),
      gcTrigger_(gcWatermark_),
      backend_(makeBackend(BackendKind::Dd, config)) {}

Response VerificationService::handleLine(const std::string& rawLine) {
    // Blank lines and '#' comments are script sugar, not commands.
    const auto firstGlyph = rawLine.find_first_not_of(" \t\r");
    if (firstGlyph == std::string::npos || rawLine[firstGlyph] == '#') {
        return Response{};
    }
    commands_.fetch_add(1, std::memory_order_relaxed);
    // The latency clock starts before parsing and stops after dispatch —
    // lock wait is part of what a client experiences, so it is part of
    // the number. Parse failures have no verb to attribute to and are
    // visible through the `errors` counter instead.
    const auto started = std::chrono::steady_clock::now();
    bool verbKnown = false;
    Verb verb = Verb::Help;
    const auto recordLatency = [&]() noexcept {
        if (!verbKnown) {
            return;
        }
        const auto elapsed = std::chrono::steady_clock::now() - started;
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
        latency_[static_cast<std::size_t>(verb)].record(
            ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    };
    try {
        requireThat(rawLine.size() <= limits_.maxLineLength,
                    "line too long (" + u64(rawLine.size()) + " > " +
                        u64(limits_.maxLineLength) + " bytes)");
        // Parsing is pure on the line text: it runs outside any lock.
        const Request request = parseRequest(rawLine);
        verb = request.verb;
        verbKnown = true;
        std::string reply;
        if (isReadPathVerb(verb)) {
            if (verb == Verb::Stats) {
                // Snapshot under the shared lock, format after release —
                // the read path never holds the lock across string
                // building (rejectUnknownOptions is pure on the request).
                rejectUnknownOptions(request, {});
                StatsSnapshot snapshot;
                {
                    const support::SharedLockGuard guard(dispatchLock_);
                    if (readPathHook_) {
                        readPathHook_(verb);
                    }
                    snapshot = snapshotStats();
                }
                reply = formatStats(snapshot);
            } else {
                const support::SharedLockGuard guard(dispatchLock_);
                if (readPathHook_) {
                    readPathHook_(verb);
                }
                reply = dispatchRead(request);
            }
            // VERIFY/BATCH replays intern fresh intermediates, so reads
            // can push the pool over the watermark; collect outside the
            // shared section (the writer lock is taken inside).
            maybeAutoGc();
        } else {
            const support::ExclusiveLockGuard guard(dispatchLock_);
            reply = dispatchWrite(request);
        }
        recordLatency();
        return Response{std::move(reply), verb == Verb::Quit};
    } catch (const std::exception& error) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        recordLatency();
        return Response{std::string("ERR ") + error.what(), false};
    }
}

std::string VerificationService::dispatchRead(const Request& request) {
    switch (request.verb) {
    case Verb::Verify:
        return handleVerify(request);
    case Verb::Batch:
        return handleBatch(request);
    case Verb::Limits:
        return handleLimits(request);
    case Verb::Help:
        rejectUnknownOptions(request, {});
        return kHelpLine;
    case Verb::Stats: // snapshot/format split lives in handleLine
    default:
        break;
    }
    detail::throwInternal("dispatchRead: unhandled verb");
}

std::string VerificationService::dispatchWrite(const Request& request) {
    switch (request.verb) {
    case Verb::Prep: {
        std::string reply = handlePrep(request);
        // The watermark policy runs while the writer lock is already
        // held: a PREP that pushes the pool over the mark pays for its
        // own collection.
        collectIfOverWatermarkLocked();
        return reply;
    }
    case Verb::Stream: {
        std::string reply = handleStream(request);
        collectIfOverWatermarkLocked();
        return reply;
    }
    case Verb::Append: {
        std::string reply = handleAppend(request);
        collectIfOverWatermarkLocked();
        return reply;
    }
    case Verb::Reverify: {
        std::string reply = handleReverify(request);
        collectIfOverWatermarkLocked();
        return reply;
    }
    case Verb::Drop:
        return handleDrop(request);
    case Verb::Gc:
        return handleGc(request);
    case Verb::Quit:
        rejectUnknownOptions(request, {});
        return "OK bye";
    default:
        break;
    }
    detail::throwInternal("dispatchWrite: unhandled verb");
}

bool VerificationService::collectIfOverWatermarkLocked() {
    const auto session = backend_->ddSession();
    if (session->stats().poolNodes <= gcTrigger_.load(std::memory_order_relaxed)) {
        return false;
    }
    const dd::DdSessionGcStats stats = session->garbageCollect(registry_.liveDiagrams());
    autoGcRuns_.fetch_add(1, std::memory_order_relaxed);
    // Ratchet: if the live set alone is over the watermark, collecting
    // again before the pool grows would be futile — require growth past
    // what this collection could not reclaim.
    gcTrigger_.store(std::max(gcWatermark_, stats.nodesAfter), std::memory_order_relaxed);
    return true;
}

void VerificationService::maybeAutoGc() {
    // Cheap unlocked check first — the common case is "under the mark".
    if (backend_->ddSession()->stats().poolNodes <=
        gcTrigger_.load(std::memory_order_relaxed)) {
        return;
    }
    const support::ExclusiveLockGuard guard(dispatchLock_);
    // Re-check under the writer lock: another thread may have collected
    // between the check and the acquisition.
    collectIfOverWatermarkLocked();
}

std::string VerificationService::handlePrep(const Request& request) {
    rejectUnknownOptions(request, {"dims", "weight", "count", "seed", "approx"});
    const std::string* dimsText = request.option("dims");
    requireThat(dimsText != nullptr, "PREP requires --dims <spec> (e.g. --dims 3,6,2)");
    const Dimensions dims = parseDimensionSpec(*dimsText);
    const MixedRadix radix(dims);

    // Admission: per-request amplitude ceiling, then the session node
    // budget — a full pool refuses new work but keeps serving the old.
    requireThat(radix.totalDimension() <= limits_.maxAmplitudes,
                "admission: register has " + u64(radix.totalDimension()) +
                    " amplitudes, over the service limit of " + u64(limits_.maxAmplitudes) +
                    " (see LIMITS?)");
    const auto session = backend_->ddSession();
    const std::uint64_t poolNodes = session->stats().poolNodes;
    requireThat(poolNodes <= limits_.maxSessionNodes,
                "admission: session node budget exhausted (" + u64(poolNodes) + " > " +
                    u64(limits_.maxSessionNodes) + " dd nodes) — run GC or DROP idle targets");

    FamilySpec family;
    family.name = request.family;
    const bool known = family.name == "ghz" || family.name == "w" || family.name == "embw" ||
                       family.name == "uniform" || family.name == "dicke" ||
                       family.name == "cyclic" || family.name == "random";
    requireThat(known, "unknown state family '" + parse::clipForMessage(family.name) +
                           "' (ghz, w, embw, uniform, dicke, cyclic, random)");
    family.weight = uintOption(request, "weight",
                               std::min<std::uint64_t>(2, maxDickeWeight(dims)));
    requireThat(family.name == "dicke" || request.option("weight") == nullptr,
                "--weight only applies to PREP:DICKE");
    requireThat(family.weight <= maxDickeWeight(dims),
                "--weight needs a value in [0, " + u64(maxDickeWeight(dims)) +
                    "] for this register (sum of dim_i - 1), got " + u64(family.weight));
    const std::uint64_t countRaw = uintOption(request, "count", defaultCyclicCount(dims));
    requireThat(family.name == "cyclic" || request.option("count") == nullptr,
                "--count only applies to PREP:CYCLIC");
    requireThat(countRaw >= 1 && countRaw <= std::numeric_limits<std::uint32_t>::max(),
                "--count needs a value in [1, 2^32)");
    family.count = static_cast<std::uint32_t>(countRaw);
    family.seed = uintOption(request, "seed", Rng::kDefaultSeed);
    requireThat(family.name == "random" || request.option("seed") == nullptr,
                "--seed only applies to PREP:RANDOM");

    const std::string* approxText = request.option("approx");
    double threshold = 1.0;
    if (approxText != nullptr) {
        threshold = parse::real(*approxText, "--approx");
        requireThat(threshold > 0.0 && threshold <= 1.0, "--approx needs a fidelity in (0, 1]");
    }

    SynthesisOptions options;
    options.emitIdentityOperations = false;
    options.circuitName = family.name;
    options.tolerance = session->tolerance();

    PreparedTarget entry;
    entry.family = family.name;
    entry.dims = formatDimensionSpec(dims);
    entry.approx = approxText != nullptr;
    entry.threshold = threshold;

    PreparationResult result;
    if (approxText != nullptr || family.isRandom()) {
        // Dense path: random states have no diagram builder, and the
        // approximation pass needs a tree-shaped private diagram (it
        // prunes in place — impossible on immutable session nodes). The
        // *verify target* is the exact state interned into the session
        // either way, so GC and the compute cache govern it like any
        // other resident target.
        requireThat(radix.totalDimension() <= kDenseBackendCeiling,
                    std::string(approxText != nullptr ? "--approx" : "PREP:RANDOM") +
                        " builds a dense amplitude vector, and the register has " +
                        u64(radix.totalDimension()) + " amplitudes (dense ceiling " +
                        u64(kDenseBackendCeiling) + ")");
        const StateVector state = makeDenseState(family, dims);
        entry.target =
            EvalState(session->intern(DecisionDiagram::fromStateVector(state, options.tolerance)));
        result = approxText != nullptr ? prepareApproximated(state, threshold, options)
                                       : prepareExact(state, options);
    } else {
        DecisionDiagram diagram = makeSessionDiagram(family, dims, *session);
        entry.target = EvalState(diagram);
        result = prepareExact(std::move(diagram), options);
    }
    entry.circuit = std::move(result.circuit);

    const PreparedTarget& stored = registry_.add(std::move(entry));
    prepared_.fetch_add(1, std::memory_order_relaxed);
    std::string reply = "OK id=" + u64(stored.id) + " family=" + stored.family +
                        " dims=" + stored.dims + " amplitudes=" + u64(radix.totalDimension()) +
                        " ops=" + u64(stored.circuit.operations().size()) +
                        " dd_nodes=" + u64(session->stats().poolNodes);
    if (approxText != nullptr) {
        reply += " approx_fidelity=" + fixed(result.approx.fidelity, 9);
    }
    return reply;
}

PreparedTarget& VerificationService::residentEntry(const Request& request) {
    PreparedTarget* entry = nullptr;
    if (const std::string* idText = request.option("id")) {
        const std::uint64_t id = parse::uint64(*idText, "--id");
        entry = registry_.find(id);
        requireThat(entry != nullptr, "no prepared target with id " + u64(id) +
                                          " (dropped, collected, or never prepared)");
    } else {
        entry = registry_.newest();
        requireThat(entry != nullptr, "nothing prepared yet — run PREP:<FAMILY> first");
    }
    return *entry;
}

std::string VerificationService::handleVerify(const Request& request) {
    rejectUnknownOptions(request, {"id", "repeat"});
    PreparedTarget* entry = &residentEntry(request);
    requireThat(entry->kind == PreparedTarget::Kind::Prepared,
                "target " + u64(entry->id) +
                    " is a STREAM session — use REVERIFY to check it");
    const std::uint64_t repeat = uintOption(request, "repeat", 1);
    requireThat(repeat >= 1 && repeat <= limits_.maxVerifyRepeat,
                "--repeat needs a value in [1, " + u64(limits_.maxVerifyRepeat) + "]");

    double fidelity = 0.0;
    for (std::uint64_t i = 0; i < repeat; ++i) {
        fidelity = backend_->preparationFidelity(entry->circuit, entry->target);
    }
    verified_.fetch_add(repeat, std::memory_order_relaxed);
    return "OK id=" + u64(entry->id) + " fidelity=" + fixed(fidelity, 9) +
           " repeats=" + u64(repeat);
}

std::string VerificationService::handleBatch(const Request& request) {
    rejectUnknownOptions(request, {});
    requireThat(registry_.size() > 0, "nothing prepared yet — run PREP:<FAMILY> first");
    std::vector<VerifyRequest> items;
    items.reserve(registry_.size());
    for (const PreparedTarget& entry : registry_.entries()) {
        // Stream sessions have no preparation circuit to replay — they are
        // REVERIFY's business, not the batch's.
        if (entry.kind != PreparedTarget::Kind::Prepared) {
            continue;
        }
        items.push_back(VerifyRequest{&entry.circuit, &entry.target, 1, 0});
    }
    requireThat(!items.empty(), "nothing prepared yet — run PREP:<FAMILY> first");
    const std::vector<VerifyReport> results = backend_->verifyBatch(items);
    std::size_t failures = 0;
    double minFidelity = 1.0;
    for (const VerifyReport& result : results) {
        if (result.failed) {
            ++failures;
        } else {
            minFidelity = std::min(minFidelity, result.fidelity);
        }
    }
    verified_.fetch_add(results.size(), std::memory_order_relaxed);
    std::string reply = "OK items=" + u64(items.size()) + " failures=" + u64(failures);
    if (failures < results.size()) {
        reply += " min_fidelity=" + fixed(minFidelity, 9);
    }
    return reply;
}

std::string VerificationService::handleStream(const Request& request) {
    rejectUnknownOptions(request, {"dims", "checkpoint"});
    const std::string* dimsText = request.option("dims");
    requireThat(dimsText != nullptr, "STREAM requires --dims <spec> (e.g. --dims 3,6,2)");
    const Dimensions dims = parseDimensionSpec(*dimsText);
    const MixedRadix radix(dims);

    // Same admission gates as PREP: the streamed state lives in the shared
    // session like any prepared target.
    requireThat(radix.totalDimension() <= limits_.maxAmplitudes,
                "admission: register has " + u64(radix.totalDimension()) +
                    " amplitudes, over the service limit of " + u64(limits_.maxAmplitudes) +
                    " (see LIMITS?)");
    const auto session = backend_->ddSession();
    const std::uint64_t poolNodes = session->stats().poolNodes;
    requireThat(poolNodes <= limits_.maxSessionNodes,
                "admission: session node budget exhausted (" + u64(poolNodes) + " > " +
                    u64(limits_.maxSessionNodes) + " dd nodes) — run GC or DROP idle targets");

    PreparedTarget entry;
    entry.kind = PreparedTarget::Kind::Stream;
    entry.family = "stream";
    entry.dims = formatDimensionSpec(dims);
    entry.circuit = Circuit(dims, "stream"); // empty: carries the register only
    entry.target = backend_->zeroState(dims);
    entry.checkpointInterval = uintOption(request, "checkpoint", 0);

    const PreparedTarget& stored = registry_.add(std::move(entry));
    streams_.fetch_add(1, std::memory_order_relaxed);
    return "OK id=" + u64(stored.id) + " family=stream dims=" + stored.dims +
           " checkpoint=" + u64(stored.checkpointInterval) +
           " dd_nodes=" + u64(session->stats().poolNodes);
}

std::string VerificationService::handleAppend(const Request& request) {
    rejectUnknownOptions(request, {"id", "gate"});
    PreparedTarget& entry = residentEntry(request);
    const std::string* gateText = request.option("gate");
    requireThat(gateText != nullptr, "APPEND requires --gate <statement> "
                                     "(e.g. --gate h q[0];)");
    const Operation op = parseQasmStatement(*gateText, entry.circuit.radix());

    std::string reply = "OK id=" + u64(entry.id);
    if (entry.kind == PreparedTarget::Kind::Stream) {
        // Streaming replay: the gate goes straight into the resident state
        // — O(diagram) space however many gates arrive.
        backend_->apply(entry.target, op);
        ++entry.streamOps;
        reply += " kind=stream ops=" + u64(entry.streamOps);
        if (entry.checkpointInterval != 0 &&
            entry.streamOps % entry.checkpointInterval == 0) {
            ++entry.checkpointCount;
            reply += " checkpoint=" + u64(entry.checkpointCount) +
                     " fidelity=" + fixed(entry.target.normSquared(), 9);
        }
    } else {
        // Prepared target: the delta grows the circuit AND advances the
        // target, leaving the replay cursor behind for REVERIFY to catch
        // up on incrementally.
        entry.circuit.append(op);
        backend_->apply(entry.target, op);
        reply += " kind=prepared ops=" + u64(entry.circuit.numOperations());
    }
    appended_.fetch_add(1, std::memory_order_relaxed);
    reply += " dd_nodes=" + u64(backend_->ddSession()->stats().poolNodes);
    return reply;
}

std::string VerificationService::handleReverify(const Request& request) {
    rejectUnknownOptions(request, {"id"});
    PreparedTarget& entry = residentEntry(request);
    reverified_.fetch_add(1, std::memory_order_relaxed);
    if (entry.kind == PreparedTarget::Kind::Stream) {
        // A stream has no independent target; the check is the unitarity
        // invariant — the streamed state's norm² must still be 1.
        return "OK id=" + u64(entry.id) + " kind=stream fidelity=" +
               fixed(entry.target.normSquared(), 9) + " ops=" + u64(entry.streamOps) +
               " checkpoints=" + u64(entry.checkpointCount) +
               " dd_nodes=" + u64(backend_->ddSession()->stats().poolNodes);
    }
    if (!entry.hasReplay) {
        entry.replay = backend_->zeroState(entry.circuit.dimensions());
        entry.hasReplay = true;
        entry.replayedOps = 0;
    }
    // O(1) root snapshot (same store) — the diff measures what the delta
    // replay changed structurally.
    const DecisionDiagram before = entry.replay.diagram();
    const VerifyReport report =
        backend_->reverifyAppended(entry.circuit, entry.replayedOps, entry.replay, entry.target);
    const std::uint64_t deltaOps = entry.circuit.numOperations() - entry.replayedOps;
    entry.replayedOps = entry.circuit.numOperations();
    const dd::DiagramDiffStats diff = dd::diffDiagrams(before, entry.replay.diagram());
    return "OK id=" + u64(entry.id) + " kind=prepared fidelity=" + fixed(report.fidelity, 9) +
           " delta_ops=" + u64(deltaOps) + " total_ops=" + u64(entry.replayedOps) +
           " shared_nodes=" + u64(diff.shared) + " new_nodes=" + u64(diff.added) +
           " dropped_nodes=" + u64(diff.removed) + " cache_lookups=" + u64(report.cacheLookups) +
           " cache_hits=" + u64(report.cacheHits) + " dd_nodes=" + u64(report.ddNodes);
}

std::string VerificationService::handleDrop(const Request& request) {
    rejectUnknownOptions(request, {"id"});
    const std::string* idText = request.option("id");
    requireThat(idText != nullptr, "DROP requires --id <n>");
    const std::uint64_t id = parse::uint64(*idText, "--id");
    requireThat(registry_.drop(id), "no prepared target with id " + u64(id));
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return "OK dropped=" + u64(id) + " resident=" + u64(registry_.size());
}

std::string VerificationService::handleGc(const Request& request) {
    rejectUnknownOptions(request, {});
    const auto session = backend_->ddSession();
    const dd::DdSessionGcStats stats = session->garbageCollect(registry_.liveDiagrams());
    gcRuns_.fetch_add(1, std::memory_order_relaxed);
    // An explicit GC re-derives the auto-trigger too: if it shrank the
    // live set's footprint, automatic collection resumes at the watermark.
    gcTrigger_.store(std::max(gcWatermark_, stats.nodesAfter), std::memory_order_relaxed);
    return "OK nodes_before=" + u64(stats.nodesBefore) + " nodes_after=" + u64(stats.nodesAfter) +
           " cache_evicted=" + u64(stats.cacheEntriesEvicted) +
           " live_roots=" + u64(stats.liveRoots);
}

VerificationService::StatsSnapshot VerificationService::snapshotStats() const {
    StatsSnapshot snapshot;
    snapshot.dd = backend_->ddSession()->stats();
    snapshot.resident = registry_.size();
    snapshot.prepared = prepared_.load(std::memory_order_relaxed);
    snapshot.dropped = dropped_.load(std::memory_order_relaxed);
    snapshot.verified = verified_.load(std::memory_order_relaxed);
    snapshot.streams = streams_.load(std::memory_order_relaxed);
    snapshot.appended = appended_.load(std::memory_order_relaxed);
    snapshot.reverified = reverified_.load(std::memory_order_relaxed);
    snapshot.gcRuns = gcRuns_.load(std::memory_order_relaxed);
    snapshot.autoGcRuns = autoGcRuns_.load(std::memory_order_relaxed);
    snapshot.commands = commands_.load(std::memory_order_relaxed);
    snapshot.errors = errors_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kVerbCount; ++i) {
        const support::LatencyHistogram& histogram = latency_[i];
        StatsSnapshot::VerbLatency& verb = snapshot.verbs[i];
        verb.key = verbMetricKey(static_cast<Verb>(i));
        verb.count = histogram.count();
        verb.p50Ns = histogram.quantileNs(0.50);
        verb.p99Ns = histogram.quantileNs(0.99);
        verb.maxNs = histogram.maxNs();
    }
    return snapshot;
}

std::string VerificationService::formatStats(const StatsSnapshot& snapshot) {
    std::string reply =
        "OK dd_nodes=" + u64(snapshot.dd.poolNodes) +
        " unique_hit_rate=" + fixed(snapshot.dd.uniqueHitRate(), 3) +
        " cache_hit_rate=" + fixed(snapshot.dd.cacheHitRate(), 3) +
        " cache_hits=" + u64(snapshot.dd.cache.hits) +
        " cache_evictions=" + u64(snapshot.dd.cache.evictions) +
        " resident=" + u64(snapshot.resident) + " prepared=" + u64(snapshot.prepared) +
        " dropped=" + u64(snapshot.dropped) + " verified=" + u64(snapshot.verified) +
        " streams=" + u64(snapshot.streams) + " appended=" + u64(snapshot.appended) +
        " reverified=" + u64(snapshot.reverified) +
        " gc_runs=" + u64(snapshot.gcRuns) + " auto_gc_runs=" + u64(snapshot.autoGcRuns) +
        " commands=" + u64(snapshot.commands) + " errors=" + u64(snapshot.errors);
    // Per-verb latency, only for verbs actually seen. Counts are
    // deterministic; latencies are measurements. A command's latency is
    // recorded after its reply is built, so a STATS? never reports itself.
    for (const StatsSnapshot::VerbLatency& verb : snapshot.verbs) {
        if (verb.count == 0) {
            continue;
        }
        const std::string key = verb.key;
        reply += " " + key + ".count=" + u64(verb.count) +
                 " " + key + ".p50_us=" + fixed(static_cast<double>(verb.p50Ns) / 1000.0, 1) +
                 " " + key + ".p99_us=" + fixed(static_cast<double>(verb.p99Ns) / 1000.0, 1) +
                 " " + key + ".max_us=" + fixed(static_cast<double>(verb.maxNs) / 1000.0, 1);
    }
    return reply;
}

std::string VerificationService::handleLimits(const Request& request) {
    rejectUnknownOptions(request, {});
    return "OK max_amplitudes=" + u64(limits_.maxAmplitudes) +
           " max_nodes=" + u64(limits_.maxSessionNodes) +
           " max_line=" + u64(limits_.maxLineLength) +
           " max_repeat=" + u64(limits_.maxVerifyRepeat) +
           " gc_watermark=" + u64(gcWatermark_);
}

} // namespace mqsp::serve
