#include "mqsp/serve/protocol.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parse.hpp"

#include <algorithm>
#include <cctype>

namespace mqsp::serve {

namespace {

[[nodiscard]] std::string lowercased(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
    return out;
}

/// A token plus where it ended in the raw line — the end offset is what
/// lets `--gate` capture the rest of the line verbatim.
struct Token {
    std::string text;
    std::size_t end = 0;
};

[[nodiscard]] std::vector<Token> tokenize(std::string_view line) {
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
            ++i;
        }
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != '\r') {
            ++i;
        }
        if (i > start) {
            tokens.push_back({std::string(line.substr(start, i - start)), i});
        }
    }
    return tokens;
}

/// The raw line from `offset` on, trimmed of surrounding whitespace.
[[nodiscard]] std::string restOfLine(std::string_view line, std::size_t offset) {
    std::string_view rest = line.substr(offset);
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
        rest.remove_prefix(1);
    }
    while (!rest.empty() &&
           (rest.back() == ' ' || rest.back() == '\t' || rest.back() == '\r')) {
        rest.remove_suffix(1);
    }
    return std::string(rest);
}

[[nodiscard]] Verb verbFromName(const std::string& name, std::string_view token) {
    if (name == "prep") {
        return Verb::Prep;
    }
    if (name == "verify") {
        return Verb::Verify;
    }
    if (name == "batch") {
        return Verb::Batch;
    }
    if (name == "drop") {
        return Verb::Drop;
    }
    if (name == "gc") {
        return Verb::Gc;
    }
    if (name == "stats?" || name == "stats") {
        return Verb::Stats;
    }
    if (name == "limits?" || name == "limits") {
        return Verb::Limits;
    }
    if (name == "stream") {
        return Verb::Stream;
    }
    if (name == "append") {
        return Verb::Append;
    }
    if (name == "reverify") {
        return Verb::Reverify;
    }
    if (name == "help") {
        return Verb::Help;
    }
    if (name == "quit" || name == "exit") {
        return Verb::Quit;
    }
    detail::throwInvalidArgument("unknown command '" + parse::clipForMessage(token) +
                                 "' (try HELP)");
}

} // namespace

const char* verbName(Verb verb) noexcept {
    switch (verb) {
    case Verb::Prep:
        return "PREP";
    case Verb::Verify:
        return "VERIFY";
    case Verb::Batch:
        return "BATCH";
    case Verb::Drop:
        return "DROP";
    case Verb::Gc:
        return "GC";
    case Verb::Stats:
        return "STATS?";
    case Verb::Limits:
        return "LIMITS?";
    case Verb::Help:
        return "HELP";
    case Verb::Quit:
        return "QUIT";
    case Verb::Stream:
        return "STREAM";
    case Verb::Append:
        return "APPEND";
    case Verb::Reverify:
        return "REVERIFY";
    }
    return "?";
}

const char* verbMetricKey(Verb verb) noexcept {
    switch (verb) {
    case Verb::Prep:
        return "prep";
    case Verb::Verify:
        return "verify";
    case Verb::Batch:
        return "batch";
    case Verb::Drop:
        return "drop";
    case Verb::Gc:
        return "gc";
    case Verb::Stats:
        return "stats";
    case Verb::Limits:
        return "limits";
    case Verb::Help:
        return "help";
    case Verb::Quit:
        return "quit";
    case Verb::Stream:
        return "stream";
    case Verb::Append:
        return "append";
    case Verb::Reverify:
        return "reverify";
    }
    return "?";
}

bool isReadPathVerb(Verb verb) noexcept {
    switch (verb) {
    case Verb::Verify:
    case Verb::Batch:
    case Verb::Stats:
    case Verb::Limits:
    case Verb::Help:
        return true;
    case Verb::Prep:
    case Verb::Drop:
    case Verb::Gc:
    case Verb::Quit:
    case Verb::Stream:
    case Verb::Append:
    case Verb::Reverify:
        return false;
    }
    return false;
}

const std::string* Request::option(std::string_view key) const noexcept {
    const std::string* found = nullptr;
    for (const auto& [name, value] : options) {
        if (name == key) {
            found = &value;
        }
    }
    return found;
}

Request parseRequest(std::string_view line) {
    const std::vector<Token> tokens = tokenize(line);
    requireThat(!tokens.empty(), "empty command line (try HELP)");

    Request request;
    const std::string head = lowercased(tokens.front().text);
    const auto colon = head.find(':');
    if (colon != std::string::npos) {
        const std::string verb = head.substr(0, colon);
        requireThat(verb == "prep", "only PREP takes a :<FAMILY> suffix, got '" +
                                        parse::clipForMessage(tokens.front().text) + "'");
        request.verb = Verb::Prep;
        request.family = head.substr(colon + 1);
        requireThat(!request.family.empty(),
                    "PREP requires a state family: PREP:<FAMILY> (e.g. PREP:GHZ)");
        requireThat(request.family.find(':') == std::string::npos,
                    "malformed family in '" + parse::clipForMessage(tokens.front().text) + "'");
    } else {
        request.verb = verbFromName(head, tokens.front().text);
        requireThat(request.verb != Verb::Prep,
                    "PREP requires a state family: PREP:<FAMILY> (e.g. PREP:GHZ)");
    }

    std::size_t i = 1;
    while (i < tokens.size()) {
        const std::string& token = tokens[i].text;
        requireThat(token.rfind("--", 0) == 0 && token.size() > 2,
                    "expected an option (--key value), got '" + parse::clipForMessage(token) +
                        "'");
        const std::string key = token.substr(2);
        for (const char ch : key) {
            requireThat((std::isalnum(static_cast<unsigned char>(ch)) != 0) || ch == '-' ||
                            ch == '_',
                        "malformed option name '" + parse::clipForMessage(token) + "'");
        }
        if (key == "gate") {
            // Gate statements contain spaces: capture everything after the
            // key verbatim (which is why --gate must come last).
            const std::string value = restOfLine(line, tokens[i].end);
            requireThat(!value.empty(),
                        "option '--gate' expects a gate statement to end the line");
            request.options.emplace_back(key, value);
            break;
        }
        requireThat(i + 1 < tokens.size(),
                    "option '" + parse::clipForMessage(token) + "' expects a value");
        request.options.emplace_back(key, tokens[i + 1].text);
        i += 2;
    }
    return request;
}

} // namespace mqsp::serve
