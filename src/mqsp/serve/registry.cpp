#include "mqsp/serve/registry.hpp"

#include <algorithm>
#include <utility>

namespace mqsp::serve {

PreparedTarget& SessionRegistry::add(PreparedTarget entry) {
    entry.id = nextId_++;
    entries_.push_back(std::move(entry));
    return entries_.back();
}

PreparedTarget* SessionRegistry::find(std::uint64_t id) {
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [id](const PreparedTarget& e) { return e.id == id; });
    return it == entries_.end() ? nullptr : &*it;
}

PreparedTarget* SessionRegistry::newest() {
    return entries_.empty() ? nullptr : &entries_.back();
}

bool SessionRegistry::drop(std::uint64_t id) {
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [id](const PreparedTarget& e) { return e.id == id; });
    if (it == entries_.end()) {
        return false;
    }
    entries_.erase(it);
    return true;
}

std::vector<DecisionDiagram*> SessionRegistry::liveDiagrams() {
    std::vector<DecisionDiagram*> live;
    live.reserve(entries_.size() * 2);
    for (PreparedTarget& entry : entries_) {
        live.push_back(&entry.target.diagram());
        if (entry.hasReplay) {
            live.push_back(&entry.replay.diagram());
        }
    }
    return live;
}

} // namespace mqsp::serve
