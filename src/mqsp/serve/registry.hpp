#pragma once

// The session registry: every target a resident mqsp_serve session has
// prepared and not yet dropped. Entries pair the synthesized circuit with
// its session-backed target diagram — the registry's diagram list IS the
// live-root set a session GC must preserve, which is why the registry is
// its own layer rather than a map inside the dispatcher.

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/sim/backend.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mqsp::serve {

/// One target resident in the service — either a PREP'd family state or a
/// STREAM session's evolving state.
///
/// Prepared entries pair the synthesized circuit with its target diagram;
/// APPEND grows the circuit (one gate per call) and REVERIFY advances the
/// lazily-created `replay` state by just the appended delta, so the replay
/// cursor `replayedOps` trails `circuit.numOperations()` between calls.
/// Stream entries have no synthesized target: `target` IS the streamed
/// state (seeded at |0...0>), `circuit` stays empty and only carries the
/// register, and APPEND applies gates to it directly in O(diagram) space.
struct PreparedTarget {
    enum class Kind : std::uint8_t { Prepared, Stream };

    std::uint64_t id = 0; ///< assigned by the registry, never reused
    Kind kind = Kind::Prepared;
    std::string family;
    std::string dims; ///< formatted register spec, e.g. "[1x3,1x6,1x2]"
    Circuit circuit;
    EvalState target; ///< session-backed diagram (GC remaps its root)
    bool approx = false;
    double threshold = 1.0;

    // Streaming state (Kind::Stream).
    std::uint64_t streamOps = 0;           ///< gates applied to the streamed state
    std::uint64_t checkpointInterval = 0;  ///< 0 = no checkpoint fields in replies
    std::uint64_t checkpointCount = 0;     ///< checkpoints crossed so far

    // Incremental re-verification state (Kind::Prepared).
    bool hasReplay = false;       ///< replay holds a live diagram
    EvalState replay;             ///< the incrementally advanced replay state
    std::uint64_t replayedOps = 0; ///< ops of `circuit` already applied to it
};

/// Insertion-ordered store of prepared targets. Not internally
/// synchronized: the service guards it with its reader-writer dispatch
/// lock — read-path commands (which only look entries up) hold shared
/// ownership, and every mutation (add's potential reallocation, drop's
/// erase, GC's root remap through liveDiagrams()) happens under exclusive
/// ownership, so references handed to readers stay valid for as long as
/// they hold the shared lock.
class SessionRegistry {
public:
    /// Register `entry` (its id field is overwritten with a fresh id) and
    /// return the stored copy.
    PreparedTarget& add(PreparedTarget entry);

    /// Entry by id; nullptr when absent (dropped or never existed).
    [[nodiscard]] PreparedTarget* find(std::uint64_t id);

    /// Most recently added entry; nullptr when empty. VERIFY's default.
    [[nodiscard]] PreparedTarget* newest();

    /// Remove by id. False when absent.
    bool drop(std::uint64_t id);

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] std::vector<PreparedTarget>& entries() noexcept { return entries_; }

    /// Every registered target diagram plus every live replay diagram —
    /// the live roots a session GC keeps (a collected replay state would
    /// silently invalidate the next REVERIFY's incremental baseline).
    [[nodiscard]] std::vector<DecisionDiagram*> liveDiagrams();

private:
    std::vector<PreparedTarget> entries_;
    std::uint64_t nextId_ = 1;
};

} // namespace mqsp::serve
