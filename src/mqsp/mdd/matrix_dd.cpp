#include "mqsp/mdd/matrix_dd.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <cmath>
#include <functional>
#include <utility>

namespace mqsp {

namespace {
constexpr std::uint32_t kTerminalSite = 0xffffffffU;

/// Per-thread scratch split of an edge list into the (children, weights)
/// layout the shared table hashes — thread-local so concurrent interners
/// never share buffers.
thread_local std::vector<MatrixDdStore::NodeRef> tlsChildren;
thread_local std::vector<Complex> tlsWeights;
} // namespace

// --- MatrixDdStore ---------------------------------------------------------

MatrixDdStore::MatrixDdStore(double tolerance, dd::UniqueTable::Concurrency concurrency)
    : table_(tolerance, /*initialCapacity=*/256, concurrency) {
    // Pool slot 0 is the unique terminal node.
    pool_.append(Node{kTerminalSite, {}});
}

const MatrixDdStore::Node& MatrixDdStore::node(NodeRef ref) const {
    requireThat(ref < pool_.size(), "MatrixDD: invalid node reference");
    return pool_.at(ref);
}

MatrixDdStore::NodeRef MatrixDdStore::intern(std::uint32_t site, std::vector<Edge> edges) {
    ensureThat(pool_.size() < MatrixDD::kNull, "MatrixDD: node pool exhausted");
    tlsChildren.resize(edges.size());
    tlsWeights.resize(edges.size());
    for (std::size_t k = 0; k < edges.size(); ++k) {
        tlsChildren[k] = edges[k].node;
        tlsWeights[k] = edges[k].weight;
    }
    // Probe and append under the key's shard lock (see DdNodeStore::
    // allocate): `makeFresh` runs only on a genuine miss.
    const auto makeFresh = [&]() -> NodeRef {
        return pool_.append(Node{site, std::move(edges)});
    };
    return table_.findOrInsertRaw(site, tlsChildren.data(), tlsWeights.data(),
                                  tlsChildren.size(), dd::detail::MakeNodeFnRef(makeFresh));
}

// --- MatrixDD --------------------------------------------------------------

MatrixDD::MatrixDD(std::shared_ptr<MatrixDdStore> store) : store_(std::move(store)) {
    if (!store_) {
        store_ = std::make_shared<MatrixDdStore>();
    }
}

const MatrixDD::Node& MatrixDD::node(NodeRef ref) const {
    return store_->node(ref);
}

MatrixDD::NodeRef MatrixDD::makeNode(std::uint32_t site, std::vector<Edge> edges,
                                     Complex& weightOut, double tol) {
    // Normalize by the largest-magnitude weight (QMDD scheme); all-zero
    // nodes collapse to the null edge.
    double best = 0.0;
    std::size_t bestIndex = edges.size();
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].isZero()) {
            edges[i].weight = Complex{0.0, 0.0};
            continue;
        }
        const double magnitude = std::abs(edges[i].weight);
        if (magnitude <= tol) {
            edges[i] = Edge{};
            continue;
        }
        if (magnitude > best) {
            best = magnitude;
            bestIndex = i;
        }
    }
    if (bestIndex == edges.size()) {
        weightOut = Complex{0.0, 0.0};
        return kNull;
    }
    const Complex norm = edges[bestIndex].weight;
    for (auto& edge : edges) {
        if (!edge.isZero()) {
            edge.weight /= norm;
        }
    }
    weightOut = norm;
    return store_->intern(site, std::move(edges));
}

MatrixDD::Edge MatrixDD::buildIdentity(std::size_t site) {
    if (identitySuffix_.size() <= site) {
        identitySuffix_.resize(radix_.numQudits() + 1);
    }
    if (!identitySuffix_[site].isZero()) {
        return identitySuffix_[site];
    }
    if (site == radix_.numQudits()) {
        identitySuffix_[site] = Edge{0, Complex{1.0, 0.0}};
        return identitySuffix_[site];
    }
    const Dimension dim = radix_.dimensionAt(site);
    const Edge below = buildIdentity(site + 1);
    std::vector<Edge> edges(static_cast<std::size_t>(dim) * dim);
    for (Dimension r = 0; r < dim; ++r) {
        edges[static_cast<std::size_t>(r) * dim + r] = below;
    }
    Complex weight;
    const NodeRef ref = makeNode(static_cast<std::uint32_t>(site), std::move(edges),
                                 weight, Tolerance::kDefault);
    identitySuffix_[site] = Edge{ref, weight};
    return identitySuffix_[site];
}

MatrixDD::Edge MatrixDD::buildProjector(std::size_t site, const Operation& op, double tol) {
    if (site == radix_.numQudits()) {
        return Edge{0, Complex{1.0, 0.0}};
    }
    const Dimension dim = radix_.dimensionAt(site);
    const Control* control = nullptr;
    for (const auto& ctrl : op.controls) {
        if (ctrl.qudit == site) {
            control = &ctrl;
            break;
        }
    }
    const Edge below = buildProjector(site + 1, op, tol);
    std::vector<Edge> edges(static_cast<std::size_t>(dim) * dim);
    for (Dimension r = 0; r < dim; ++r) {
        if (control == nullptr || control->level == r) {
            edges[static_cast<std::size_t>(r) * dim + r] = below;
        }
    }
    Complex weight;
    const NodeRef ref =
        makeNode(static_cast<std::uint32_t>(site), std::move(edges), weight, tol);
    return Edge{ref, weight};
}

MatrixDD::Edge MatrixDD::buildOperation(std::size_t site, const Operation& op,
                                        const DenseMatrix& local, double tol) {
    if (site == radix_.numQudits()) {
        return Edge{0, Complex{1.0, 0.0}};
    }
    const Dimension dim = radix_.dimensionAt(site);
    std::vector<Edge> edges(static_cast<std::size_t>(dim) * dim);

    if (site == op.target) {
        // Below-target controls modulate the application:
        //   edge(r, c) = delta_rc * I_below + (U(r,c) - delta_rc) * P_below.
        // Without below controls P == I and this is U(r,c) * I_below.
        const Edge identityBelow = buildIdentity(site + 1);
        const Edge projectorBelow = buildProjector(site + 1, op, tol);
        for (Dimension r = 0; r < dim; ++r) {
            for (Dimension c = 0; c < dim; ++c) {
                const Complex u = local(r, c);
                const Complex delta = (r == c) ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
                Edge sum = addEdges(
                    Edge{identityBelow.node, identityBelow.weight * delta},
                    Edge{projectorBelow.node, projectorBelow.weight * (u - delta)}, tol);
                edges[static_cast<std::size_t>(r) * dim + c] = sum;
            }
        }
    } else {
        const Control* control = nullptr;
        for (const auto& ctrl : op.controls) {
            if (ctrl.qudit == site) {
                control = &ctrl;
                break;
            }
        }
        const Edge identityBelow = buildIdentity(site + 1);
        for (Dimension r = 0; r < dim; ++r) {
            if (control != nullptr && control->level != r) {
                edges[static_cast<std::size_t>(r) * dim + r] = identityBelow;
            } else {
                edges[static_cast<std::size_t>(r) * dim + r] =
                    buildOperation(site + 1, op, local, tol);
            }
        }
    }
    Complex weight;
    const NodeRef ref =
        makeNode(static_cast<std::uint32_t>(site), std::move(edges), weight, tol);
    return Edge{ref, weight};
}

MatrixDD::Edge MatrixDD::addEdges(Edge a, Edge b, double tol) {
    if (a.isZero() || std::abs(a.weight) <= tol) {
        return b;
    }
    if (b.isZero() || std::abs(b.weight) <= tol) {
        return a;
    }
    if (node(a.node).site == kTerminalSite) {
        ensureThat(node(b.node).site == kTerminalSite,
                   "MatrixDD::addEdges: level mismatch");
        const Complex sum = a.weight + b.weight;
        if (std::abs(sum) <= tol) {
            return Edge{};
        }
        return Edge{0, sum};
    }
    ensureThat(node(a.node).site == node(b.node).site,
               "MatrixDD::addEdges: site mismatch");
    // Node addresses are stable (chunked pool), so holding references
    // across the allocating recursion below would be safe; per-edge
    // re-fetches through the NodeRefs are kept for uniformity.
    const std::uint32_t site = node(a.node).site;
    const std::size_t arity = node(a.node).edges.size();
    std::vector<Edge> edges(arity);
    for (std::size_t k = 0; k < arity; ++k) {
        const Edge ea{node(a.node).edges[k].node, a.weight * node(a.node).edges[k].weight};
        const Edge eb{node(b.node).edges[k].node, b.weight * node(b.node).edges[k].weight};
        edges[k] = addEdges(ea, eb, tol);
    }
    Complex weight;
    const NodeRef ref = makeNode(site, std::move(edges), weight, tol);
    return Edge{ref, weight};
}

MatrixDD MatrixDD::identity(const Dimensions& dims, std::shared_ptr<MatrixDdStore> store) {
    MatrixDD dd(std::move(store));
    dd.radix_ = MixedRadix(dims);
    dd.root_ = dd.buildIdentity(0);
    return dd;
}

MatrixDD MatrixDD::fromOperation(const Dimensions& dims, const Operation& op, double tol,
                                 std::shared_ptr<MatrixDdStore> store) {
    if (!store) {
        store = std::make_shared<MatrixDdStore>(tol);
    }
    MatrixDD dd(std::move(store));
    dd.radix_ = MixedRadix(dims);
    requireThat(op.target < dd.radix_.numQudits(),
                "MatrixDD::fromOperation: target out of range");
    const DenseMatrix local = op.localMatrix(dd.radix_.dimensionAt(op.target));
    dd.root_ = dd.buildOperation(0, op, local, tol);
    return dd;
}

MatrixDD MatrixDD::fromCircuit(const Circuit& circuit, double tol,
                               std::shared_ptr<MatrixDdStore> store) {
    // One store for the whole compilation: per-gate operators and every
    // running product hash-cons into the same table, so the identity
    // scaffolding and repeated gate structure are built exactly once —
    // whether the store is this call's own or a session-lived one.
    if (!store) {
        store = std::make_shared<MatrixDdStore>(tol);
    }
    MatrixDD result = identity(circuit.dimensions(), store);
    for (const auto& op : circuit.operations()) {
        const MatrixDD gate = fromOperation(circuit.dimensions(), op, tol, store);
        result = gate.multiply(result, tol); // op applied after what came before
    }
    return result;
}

MatrixDD MatrixDD::multiply(const MatrixDD& rhs, double tol) const {
    requireThat(radix_ == rhs.radix_, "MatrixDD::multiply: registers differ");
    // The product lives on the operands' shared store when they have one
    // (cross-diagram sharing); operands on unrelated stores multiply onto a
    // fresh private store bucketing at this call's tolerance, as before.
    MatrixDD result(store_ == rhs.store_ ? store_ : std::make_shared<MatrixDdStore>(tol));
    result.radix_ = radix_;

    // product(aRef, bRef) of canonical (weight-1) nodes, memoized; weights
    // factor out linearly. The memo is a parameter so the top-level fan-out
    // below can run cells against per-worker memos.
    using ProductMemo = std::unordered_map<std::uint64_t, Edge>;
    const std::function<Edge(NodeRef, NodeRef, ProductMemo&)> product =
        [&](NodeRef aRef, NodeRef bRef, ProductMemo& memo) -> Edge {
        if (node(aRef).site == kTerminalSite) {
            ensureThat(rhs.node(bRef).site == kTerminalSite,
                       "MatrixDD::multiply: level mismatch");
            return Edge{0, Complex{1.0, 0.0}};
        }
        ensureThat(node(aRef).site == rhs.node(bRef).site,
                   "MatrixDD::multiply: site mismatch");
        const std::uint64_t key =
            (static_cast<std::uint64_t>(aRef) << 32U) | static_cast<std::uint64_t>(bRef);
        if (const auto it = memo.find(key); it != memo.end()) {
            return it->second;
        }
        // Copy both operands' shapes up front (cheap, and keeps the inner
        // loops independent of the allocating product/addEdges recursion).
        const std::uint32_t siteA = node(aRef).site;
        const std::vector<Edge> aEdges = node(aRef).edges;
        const std::vector<Edge> bEdges = rhs.node(bRef).edges;
        const Dimension dim = radix_.dimensionAt(siteA);
        std::vector<Edge> edges(static_cast<std::size_t>(dim) * dim);
        for (Dimension r = 0; r < dim; ++r) {
            for (Dimension c = 0; c < dim; ++c) {
                Edge acc;
                for (Dimension k = 0; k < dim; ++k) {
                    const Edge& ea = aEdges[static_cast<std::size_t>(r) * dim + k];
                    const Edge& eb = bEdges[static_cast<std::size_t>(k) * dim + c];
                    if (ea.isZero() || eb.isZero()) {
                        continue;
                    }
                    const Edge sub = product(ea.node, eb.node, memo);
                    if (sub.isZero()) {
                        continue;
                    }
                    acc = result.addEdges(
                        acc, Edge{sub.node, sub.weight * ea.weight * eb.weight}, tol);
                }
                edges[static_cast<std::size_t>(r) * dim + c] = acc;
            }
        }
        Complex weight;
        const NodeRef ref = result.makeNode(siteA, std::move(edges), weight, tol);
        const Edge edge{ref, weight};
        memo.emplace(key, edge);
        return edge;
    };

    if (root_.isZero() || rhs.root_.isZero()) {
        result.root_ = Edge{};
        return result;
    }

    // Intra-diagram fan-out: the root node's dim^2 product cells are
    // independent add-chains — compute them in parallel with per-worker
    // memos against the shared Sharded store, then intern the root
    // sequentially. Recomputation across workers (lost memo sharing) is
    // bit-identical — product and addEdges are pure functions of canonical
    // node structure and interning dedupes — so the result diagram and the
    // store's node set match the serial recursion exactly. Gated on one
    // shared concurrent store; operands on private (Serial) stores keep the
    // historical single-threaded recursion.
    const bool fanOut = store_ == rhs.store_ && store_->concurrent() &&
                        parallel::globalThreads() > 1 &&
                        !parallel::insideParallelRegion() &&
                        node(root_.node).site != kTerminalSite;
    Edge top;
    if (fanOut) {
        const NodeRef aRef = root_.node;
        const NodeRef bRef = rhs.root_.node;
        ensureThat(node(aRef).site == rhs.node(bRef).site,
                   "MatrixDD::multiply: site mismatch");
        const std::uint32_t siteA = node(aRef).site;
        const std::vector<Edge> aEdges = node(aRef).edges;
        const std::vector<Edge> bEdges = rhs.node(bRef).edges;
        const Dimension dim = radix_.dimensionAt(siteA);
        std::vector<Edge> cells(static_cast<std::size_t>(dim) * dim);
        parallel::parallelFor(
            0, cells.size(), /*grainSize=*/1,
            [&](std::uint64_t begin, std::uint64_t end) {
                ProductMemo localMemo;
                for (std::uint64_t idx = begin; idx < end; ++idx) {
                    const auto r = static_cast<Dimension>(idx / dim);
                    const auto c = static_cast<Dimension>(idx % dim);
                    Edge acc;
                    for (Dimension k = 0; k < dim; ++k) {
                        const Edge& ea = aEdges[static_cast<std::size_t>(r) * dim + k];
                        const Edge& eb = bEdges[static_cast<std::size_t>(k) * dim + c];
                        if (ea.isZero() || eb.isZero()) {
                            continue;
                        }
                        const Edge sub = product(ea.node, eb.node, localMemo);
                        if (sub.isZero()) {
                            continue;
                        }
                        acc = result.addEdges(
                            acc, Edge{sub.node, sub.weight * ea.weight * eb.weight}, tol);
                    }
                    cells[idx] = acc;
                }
            });
        Complex weight;
        const NodeRef ref = result.makeNode(siteA, std::move(cells), weight, tol);
        top = Edge{ref, weight};
    } else {
        ProductMemo memo;
        top = product(root_.node, rhs.root_.node, memo);
    }
    result.root_ = Edge{top.node, top.weight * root_.weight * rhs.root_.weight};
    return result;
}

MatrixDD::Edge MatrixDD::importFrom(const MatrixDD& source, NodeRef ref,
                                    std::unordered_map<NodeRef, Edge>& memo,
                                    bool conjugateTranspose, double tol) {
    if (source.node(ref).site == kTerminalSite) {
        return Edge{0, Complex{1.0, 0.0}};
    }
    if (const auto it = memo.find(ref); it != memo.end()) {
        return it->second;
    }
    // Copy the source shape up front (keeps the loop independent of the
    // allocating recursion below).
    const std::uint32_t site = source.node(ref).site;
    const std::vector<Edge> sourceEdges = source.node(ref).edges;
    const Dimension dim = radix_.dimensionAt(site);
    std::vector<Edge> edges(static_cast<std::size_t>(dim) * dim);
    for (Dimension r = 0; r < dim; ++r) {
        for (Dimension c = 0; c < dim; ++c) {
            const std::size_t from = conjugateTranspose
                                         ? static_cast<std::size_t>(c) * dim + r
                                         : static_cast<std::size_t>(r) * dim + c;
            const Edge& edge = sourceEdges[from];
            if (edge.isZero()) {
                continue;
            }
            const Edge sub = importFrom(source, edge.node, memo, conjugateTranspose, tol);
            const Complex w = conjugateTranspose ? std::conj(edge.weight) : edge.weight;
            edges[static_cast<std::size_t>(r) * dim + c] = Edge{sub.node, sub.weight * w};
        }
    }
    Complex weight;
    const NodeRef newRef = makeNode(site, std::move(edges), weight, tol);
    const Edge result{newRef, weight};
    memo.emplace(ref, result);
    return result;
}

MatrixDD MatrixDD::adjoint() const {
    MatrixDD result(store_);
    result.radix_ = radix_;
    if (root_.isZero()) {
        return result;
    }
    std::unordered_map<NodeRef, Edge> memo;
    const Edge top =
        result.importFrom(*this, root_.node, memo, /*conjugateTranspose=*/true,
                          Tolerance::kDefault);
    result.root_ = Edge{top.node, top.weight * std::conj(root_.weight)};
    return result;
}

Complex MatrixDD::hilbertSchmidtOverlap(const MatrixDD& other) const {
    requireThat(radix_ == other.radix_,
                "MatrixDD::hilbertSchmidtOverlap: registers differ");
    if (root_.isZero() || other.root_.isZero()) {
        return Complex{0.0, 0.0};
    }
    std::unordered_map<std::uint64_t, Complex> memo;
    const std::function<Complex(NodeRef, NodeRef)> visit = [&](NodeRef a,
                                                               NodeRef b) -> Complex {
        const Node& na = node(a);
        const Node& nb = other.node(b);
        if (na.site == kTerminalSite) {
            ensureThat(nb.site == kTerminalSite, "hilbertSchmidtOverlap: level mismatch");
            return Complex{1.0, 0.0};
        }
        ensureThat(na.site == nb.site, "hilbertSchmidtOverlap: site mismatch");
        const std::uint64_t key =
            (static_cast<std::uint64_t>(a) << 32U) | static_cast<std::uint64_t>(b);
        if (const auto it = memo.find(key); it != memo.end()) {
            return it->second;
        }
        Complex sum{0.0, 0.0};
        for (std::size_t k = 0; k < na.edges.size(); ++k) {
            const Edge& ea = na.edges[k];
            const Edge& eb = nb.edges[k];
            if (ea.isZero() || eb.isZero()) {
                continue;
            }
            sum += std::conj(ea.weight) * eb.weight * visit(ea.node, eb.node);
        }
        memo.emplace(key, sum);
        return sum;
    };
    return std::conj(root_.weight) * other.root_.weight * visit(root_.node, other.root_.node);
}

bool MatrixDD::equivalentUpToGlobalPhase(const MatrixDD& other, double tol) const {
    if (store_ == other.store_ && store_ != nullptr && !root_.isZero() &&
        root_.node == other.root_.node &&
        std::abs(std::abs(root_.weight) - std::abs(other.root_.weight)) <= tol) {
        // One shared hash-consed store: equal canonical roots mean the
        // operators differ at most by their root weights, so matching
        // magnitudes prove equivalence up to a global phase outright. A
        // magnitude mismatch is NOT a verdict — it falls through to the
        // overlap check below, whose tolerances scale with the register,
        // so shared-store and separate-store comparisons always agree.
        return true;
    }
    const double total = static_cast<double>(radix_.totalDimension());
    const double normA = hilbertSchmidtOverlap(*this).real();
    const double normB = other.hilbertSchmidtOverlap(other).real();
    const double overlap = std::abs(hilbertSchmidtOverlap(other));
    // Cauchy-Schwarz equality <=> proportional; equal norms pin the factor
    // to a pure phase.
    return std::abs(normA - normB) <= tol * total &&
           std::abs(overlap - std::sqrt(normA * normB)) <= tol * total;
}

Complex MatrixDD::entry(const Digits& row, const Digits& col) const {
    requireThat(row.size() == radix_.numQudits() && col.size() == radix_.numQudits(),
                "MatrixDD::entry: digit count mismatch");
    if (root_.isZero()) {
        return Complex{0.0, 0.0};
    }
    Complex product = root_.weight;
    NodeRef current = root_.node;
    for (std::size_t site = 0; site < row.size(); ++site) {
        const Node& n = node(current);
        ensureThat(n.site == site, "MatrixDD::entry: malformed levels");
        const Dimension dim = radix_.dimensionAt(site);
        requireThat(row[site] < dim && col[site] < dim, "MatrixDD::entry: digit range");
        const Edge& edge =
            n.edges[static_cast<std::size_t>(row[site]) * dim + col[site]];
        if (edge.isZero()) {
            return Complex{0.0, 0.0};
        }
        product *= edge.weight;
        current = edge.node;
    }
    return product;
}

DenseMatrix MatrixDD::toDenseMatrix() const {
    const std::uint64_t total = radix_.totalDimension();
    requireThat(total <= 512, "MatrixDD::toDenseMatrix: register too large");
    DenseMatrix m(static_cast<std::size_t>(total));
    for (std::uint64_t r = 0; r < total; ++r) {
        const Digits row = radix_.digitsOf(r);
        for (std::uint64_t c = 0; c < total; ++c) {
            m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
                entry(row, radix_.digitsOf(c));
        }
    }
    return m;
}

std::uint64_t MatrixDD::nodeCount() const {
    if (root_.isZero()) {
        return 0;
    }
    std::vector<bool> seen(store_->size(), false);
    std::vector<NodeRef> stack{root_.node};
    seen[root_.node] = true;
    std::uint64_t count = 0;
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        const Node& n = node(ref);
        if (n.site == kTerminalSite) {
            continue;
        }
        ++count;
        for (const auto& edge : n.edges) {
            if (!edge.isZero() && !seen[edge.node]) {
                seen[edge.node] = true;
                stack.push_back(edge.node);
            }
        }
    }
    return count;
}

} // namespace mqsp
