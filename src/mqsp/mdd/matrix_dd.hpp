#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/circuit/matrix.hpp"
#include "mqsp/complexnum/complex.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mqsp {

/// Edge-weighted matrix decision diagram for operators on mixed-dimensional
/// registers — the operator-side companion of DecisionDiagram, in the
/// tradition of QMDDs (the paper's references [28], [31]) generalized to a
/// variable number of successors per level.
///
/// A node at site s has dim(s)^2 out-edges in row-major order; the operator
/// it represents is M = sum_{r,c} w_{rc} |r><c| (x) M_{rc}. Nodes are
/// normalized by their largest-magnitude weight (pushed into the in-edge)
/// and hash-consed, so structurally equal operators share sub-graphs and
/// the zero operator is a null edge.
///
/// Supported workflow:
///   MatrixDD::fromCircuit(c)                 — compile a circuit
///   a.multiply(b)                            — compose operators
///   a.adjoint()                              — dagger
///   hilbertSchmidtOverlap / equivalence      — DD-native circuit checking
///   toDenseMatrix / entry                    — small-register inspection
class MatrixDD {
public:
    using NodeRef = std::uint32_t;
    static constexpr NodeRef kNull = 0xffffffffU;

    struct Edge {
        NodeRef node = kNull;
        Complex weight{0.0, 0.0};
        [[nodiscard]] bool isZero() const noexcept { return node == kNull; }
    };

    /// The identity operator on a register.
    [[nodiscard]] static MatrixDD identity(const Dimensions& dims);

    /// One (possibly multi-controlled) operation as an operator. Controls
    /// may sit anywhere (above or below the target).
    [[nodiscard]] static MatrixDD fromOperation(const Dimensions& dims, const Operation& op,
                                                double tol = Tolerance::kDefault);

    /// The whole circuit as an operator (ops composed in application order).
    [[nodiscard]] static MatrixDD fromCircuit(const Circuit& circuit,
                                              double tol = Tolerance::kDefault);

    /// Operator composition: (*this) after `rhs` — i.e. the matrix product
    /// this * rhs. Registers must match.
    [[nodiscard]] MatrixDD multiply(const MatrixDD& rhs, double tol = Tolerance::kDefault) const;

    /// Conjugate transpose.
    [[nodiscard]] MatrixDD adjoint() const;

    /// Tr(this^dagger * other) — the Hilbert-Schmidt inner product, computed
    /// natively on the diagrams.
    [[nodiscard]] Complex hilbertSchmidtOverlap(const MatrixDD& other) const;

    /// True when the operators are equal up to a global phase within tol:
    /// |Tr(a^dagger b)| == sqrt(Tr(a^dagger a) Tr(b^dagger b)) and both
    /// norms match the full register dimension for unitaries.
    [[nodiscard]] bool equivalentUpToGlobalPhase(const MatrixDD& other,
                                                 double tol = 1e-9) const;

    /// Matrix element <row| M |col>.
    [[nodiscard]] Complex entry(const Digits& row, const Digits& col) const;

    /// Dense export (register total dimension <= 4096).
    [[nodiscard]] DenseMatrix toDenseMatrix() const;

    /// Distinct reachable internal nodes.
    [[nodiscard]] std::uint64_t nodeCount() const;

    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const Edge& root() const noexcept { return root_; }

private:
    struct Node {
        std::uint32_t site = 0;
        std::vector<Edge> edges; // dim(site)^2, row-major
    };

    MatrixDD() = default;

    [[nodiscard]] const Node& node(NodeRef ref) const;
    NodeRef makeNode(std::uint32_t site, std::vector<Edge> edges, Complex& weightOut,
                     double tol);

    /// Hash-consing key helpers.
    struct NodeKey {
        std::uint32_t site = 0;
        std::vector<NodeRef> children;
        std::vector<std::int64_t> re;
        std::vector<std::int64_t> im;
        friend bool operator==(const NodeKey&, const NodeKey&) = default;
    };
    struct NodeKeyHash {
        std::size_t operator()(const NodeKey& key) const noexcept;
    };

    Edge buildIdentity(std::size_t site);
    Edge buildOperation(std::size_t site, const Operation& op, const DenseMatrix& local,
                        double tol);
    Edge buildProjector(std::size_t site, const Operation& op, double tol);
    Edge addEdges(Edge a, Edge b, double tol);
    Edge importFrom(const MatrixDD& source, NodeRef ref,
                    std::unordered_map<NodeRef, Edge>& memo, bool conjugateTranspose,
                    double tol);

    MixedRadix radix_;
    std::vector<Node> nodes_;
    std::unordered_map<NodeKey, NodeRef, NodeKeyHash> unique_;
    Edge root_;
    // Memo caches for identity suffixes (one per site).
    std::vector<Edge> identitySuffix_;
};

} // namespace mqsp
