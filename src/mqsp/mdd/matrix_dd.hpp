#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/circuit/matrix.hpp"
#include "mqsp/complexnum/complex.hpp"
#include "mqsp/dd/unique_table.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace mqsp {

/// Node pool + uniquing table for matrix decision diagrams — the
/// operator-side counterpart of dd::DdNodeStore. A store can back one
/// MatrixDD (the historical per-diagram pool) or be shared across every
/// operator a session touches (DdBackend's equivalence path): nodes are
/// append-only and immutable, all allocation goes through the same
/// open-addressed dd::UniqueTable as the vector-DD session store, and
/// copying a MatrixDD aliases the store in O(1). A store constructed
/// `Sharded` is safe for concurrent interning from batch items: the probe
/// and the pool append run under the key's shard mutex, and the chunked
/// pool keeps node addresses stable so readers never lock.
class MatrixDdStore {
public:
    using NodeRef = std::uint32_t;

    struct Edge {
        NodeRef node = 0xffffffffU;
        Complex weight{0.0, 0.0};
        [[nodiscard]] bool isZero() const noexcept { return node == 0xffffffffU; }
    };

    struct Node {
        std::uint32_t site = 0;
        std::vector<Edge> edges; // dim(site)^2, row-major
    };

    explicit MatrixDdStore(
        double tolerance = Tolerance::kDefault,
        dd::UniqueTable::Concurrency concurrency = dd::UniqueTable::Concurrency::Serial);

    MatrixDdStore(const MatrixDdStore&) = delete;
    MatrixDdStore& operator=(const MatrixDdStore&) = delete;

    [[nodiscard]] const Node& node(NodeRef ref) const;
    [[nodiscard]] std::size_t size() const noexcept { return pool_.size(); }
    [[nodiscard]] double tolerance() const noexcept { return table_.tolerance(); }
    /// True when the store was built Sharded — safe to intern from
    /// concurrent workers; multiply's intra-diagram fan-out gates on it.
    [[nodiscard]] bool concurrent() const noexcept { return table_.sharded(); }

    /// Hash-consed allocation: the canonical ref of an existing structural
    /// twin, or a freshly appended node. On a Sharded store, exactly one
    /// node is created per distinct structural key however many threads
    /// race on it.
    NodeRef intern(std::uint32_t site, std::vector<Edge> edges);

    [[nodiscard]] dd::UniqueTableStats uniqueStats() const { return table_.stats(); }

private:
    dd::detail::ChunkedNodePool<Node> pool_;
    dd::UniqueTable table_;
};

/// Edge-weighted matrix decision diagram for operators on mixed-dimensional
/// registers — the operator-side companion of DecisionDiagram, in the
/// tradition of QMDDs (the paper's references [28], [31]) generalized to a
/// variable number of successors per level.
///
/// A node at site s has dim(s)^2 out-edges in row-major order; the operator
/// it represents is M = sum_{r,c} w_{rc} |r><c| (x) M_{rc}. Nodes are
/// normalized by their largest-magnitude weight (pushed into the in-edge)
/// and hash-consed through the store's uniquing table, so structurally
/// equal operators share sub-graphs and the zero operator is a null edge.
/// With one shared store (pass it to the factories, as DdBackend does for
/// its whole lifetime) the sharing crosses diagram boundaries: per-gate
/// operators, their products, and both sides of an equivalence check build
/// each sub-operator once.
///
/// Supported workflow:
///   MatrixDD::fromCircuit(c)                 — compile a circuit
///   a.multiply(b)                            — compose operators
///   a.adjoint()                              — dagger
///   hilbertSchmidtOverlap / equivalence      — DD-native circuit checking
///   toDenseMatrix / entry                    — small-register inspection
class MatrixDD {
public:
    using NodeRef = MatrixDdStore::NodeRef;
    static constexpr NodeRef kNull = 0xffffffffU;
    using Edge = MatrixDdStore::Edge;

    /// The identity operator on a register.
    [[nodiscard]] static MatrixDD identity(const Dimensions& dims,
                                           std::shared_ptr<MatrixDdStore> store = nullptr);

    /// One (possibly multi-controlled) operation as an operator. Controls
    /// may sit anywhere (above or below the target).
    [[nodiscard]] static MatrixDD fromOperation(const Dimensions& dims, const Operation& op,
                                                double tol = Tolerance::kDefault,
                                                std::shared_ptr<MatrixDdStore> store = nullptr);

    /// The whole circuit as an operator (ops composed in application order).
    /// Every intermediate (per-gate operators and running products) lives
    /// on one store — the given one, or a fresh private one.
    [[nodiscard]] static MatrixDD fromCircuit(const Circuit& circuit,
                                              double tol = Tolerance::kDefault,
                                              std::shared_ptr<MatrixDdStore> store = nullptr);

    /// Operator composition: (*this) after `rhs` — i.e. the matrix product
    /// this * rhs. Registers must match. The product lives on the shared
    /// store when the operands share one, else on a fresh private store.
    [[nodiscard]] MatrixDD multiply(const MatrixDD& rhs, double tol = Tolerance::kDefault) const;

    /// Conjugate transpose.
    [[nodiscard]] MatrixDD adjoint() const;

    /// Tr(this^dagger * other) — the Hilbert-Schmidt inner product, computed
    /// natively on the diagrams.
    [[nodiscard]] Complex hilbertSchmidtOverlap(const MatrixDD& other) const;

    /// True when the operators are equal up to a global phase within tol:
    /// |Tr(a^dagger b)| == sqrt(Tr(a^dagger a) Tr(b^dagger b)) and both
    /// norms match the full register dimension for unitaries. Two diagrams
    /// sharing a store that landed on the same canonical root node
    /// short-circuit to a weight comparison.
    [[nodiscard]] bool equivalentUpToGlobalPhase(const MatrixDD& other,
                                                 double tol = 1e-9) const;

    /// Matrix element <row| M |col>.
    [[nodiscard]] Complex entry(const Digits& row, const Digits& col) const;

    /// Dense export (register total dimension <= 4096).
    [[nodiscard]] DenseMatrix toDenseMatrix() const;

    /// Distinct reachable internal nodes.
    [[nodiscard]] std::uint64_t nodeCount() const;

    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const Edge& root() const noexcept { return root_; }
    [[nodiscard]] const std::shared_ptr<MatrixDdStore>& store() const noexcept {
        return store_;
    }

private:
    using Node = MatrixDdStore::Node;

    MatrixDD() = default;
    explicit MatrixDD(std::shared_ptr<MatrixDdStore> store);

    [[nodiscard]] const Node& node(NodeRef ref) const;
    NodeRef makeNode(std::uint32_t site, std::vector<Edge> edges, Complex& weightOut,
                     double tol);

    Edge buildIdentity(std::size_t site);
    Edge buildOperation(std::size_t site, const Operation& op, const DenseMatrix& local,
                        double tol);
    Edge buildProjector(std::size_t site, const Operation& op, double tol);
    Edge addEdges(Edge a, Edge b, double tol);
    Edge importFrom(const MatrixDD& source, NodeRef ref,
                    std::unordered_map<NodeRef, Edge>& memo, bool conjugateTranspose,
                    double tol);

    MixedRadix radix_;
    std::shared_ptr<MatrixDdStore> store_;
    Edge root_;
    // Memo cache for identity suffixes (one per site; refs into store_).
    std::vector<Edge> identitySuffix_;
};

} // namespace mqsp
