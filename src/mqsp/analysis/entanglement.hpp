#pragma once

#include "mqsp/circuit/matrix.hpp"
#include "mqsp/statevec/state_vector.hpp"

#include <cstddef>
#include <vector>

namespace mqsp {
/// Entanglement analysis for mixed-dimensional registers. The paper's
/// introduction motivates state preparation precisely to enable "gaining
/// insights into the behavior of specific states that have not yet been
/// extensively studied in qudit systems, including aspects like
/// entanglement" — these routines provide that analysis layer on top of the
/// preparation pipeline.
namespace analysis {

/// Reduced density matrix of the sub-register `keepSites` (site indices into
/// the state's register, most significant = 0), tracing out every other
/// qudit. The result is Hermitian, positive semi-definite, trace 1 for a
/// normalized input; its row/column index enumerates the kept sites in the
/// order given, mixed-radix (first kept site most significant).
///
/// Throws InvalidArgumentError when keepSites is empty, contains duplicates
/// or out-of-range sites.
[[nodiscard]] DenseMatrix reducedDensityMatrix(const StateVector& state,
                                               const std::vector<std::size_t>& keepSites);

/// Schmidt spectrum across the bipartition (keepSites | rest): the
/// eigenvalues of the reduced density matrix, descending, clipped at 0.
[[nodiscard]] std::vector<double> schmidtSpectrum(const StateVector& state,
                                                  const std::vector<std::size_t>& keepSites);

/// Von Neumann entanglement entropy S = -sum p log2 p across the bipartition,
/// in bits. Zero for product states; log2(min local dim count) at most.
[[nodiscard]] double entanglementEntropy(const StateVector& state,
                                         const std::vector<std::size_t>& keepSites);

/// Renyi-2 entropy -log2 Tr(rho^2) across the bipartition, in bits.
[[nodiscard]] double renyi2Entropy(const StateVector& state,
                                   const std::vector<std::size_t>& keepSites);

/// Number of Schmidt coefficients above `tol` — 1 iff the bipartition is a
/// product state.
[[nodiscard]] std::size_t schmidtRank(const StateVector& state,
                                      const std::vector<std::size_t>& keepSites,
                                      double tol = 1e-10);

/// Purity Tr(rho^2) of a density matrix (1 for pure states).
[[nodiscard]] double purity(const DenseMatrix& rho);

} // namespace analysis
} // namespace mqsp
