#include "mqsp/analysis/entanglement.hpp"

#include "mqsp/linalg/eigen.hpp"
#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace mqsp::analysis {

namespace {

void validateKeepSites(const StateVector& state, const std::vector<std::size_t>& keepSites) {
    requireThat(!keepSites.empty(), "analysis: keepSites must not be empty");
    std::unordered_set<std::size_t> seen;
    for (const auto site : keepSites) {
        requireThat(site < state.numQudits(), "analysis: keep site out of range");
        requireThat(seen.insert(site).second, "analysis: duplicate keep site");
    }
}

} // namespace

DenseMatrix reducedDensityMatrix(const StateVector& state,
                                 const std::vector<std::size_t>& keepSites) {
    validateKeepSites(state, keepSites);
    const MixedRadix& radix = state.radix();

    // Geometry of the kept sub-register.
    std::uint64_t keptDim = 1;
    for (const auto site : keepSites) {
        keptDim *= radix.dimensionAt(site);
    }
    requireThat(keptDim <= 4096,
                "analysis: kept sub-register too large for a dense density matrix");

    // Map each full index to (kept index, traced index); group amplitudes by
    // traced index so that rho[i][j] = sum_b psi[i,b] conj(psi[j,b]).
    const bool keepAll = keepSites.size() == radix.numQudits();
    std::vector<std::uint64_t> keptOf(radix.totalDimension());
    std::vector<std::uint64_t> tracedOf(radix.totalDimension());
    std::vector<bool> isKept(radix.numQudits(), false);
    for (const auto site : keepSites) {
        isKept[site] = true;
    }
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        std::uint64_t kept = 0;
        for (const auto site : keepSites) {
            kept = kept * radix.dimensionAt(site) + radix.digitAt(index, site);
        }
        std::uint64_t traced = 0;
        if (!keepAll) {
            for (std::size_t site = 0; site < radix.numQudits(); ++site) {
                if (!isKept[site]) {
                    traced = traced * radix.dimensionAt(site) + radix.digitAt(index, site);
                }
            }
        }
        keptOf[index] = kept;
        tracedOf[index] = traced;
    }

    const std::uint64_t tracedDim = radix.totalDimension() / keptDim;
    // amplitudesBy[b * keptDim + i] = psi at (kept=i, traced=b).
    std::vector<Complex> grouped(radix.totalDimension(), Complex{0.0, 0.0});
    for (std::uint64_t index = 0; index < radix.totalDimension(); ++index) {
        grouped[tracedOf[index] * keptDim + keptOf[index]] = state[index];
    }

    DenseMatrix rho(static_cast<std::size_t>(keptDim));
    for (std::uint64_t b = 0; b < tracedDim; ++b) {
        const Complex* block = grouped.data() + b * keptDim;
        for (std::uint64_t i = 0; i < keptDim; ++i) {
            if (block[i] == Complex{0.0, 0.0}) {
                continue;
            }
            for (std::uint64_t j = 0; j < keptDim; ++j) {
                rho(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) +=
                    block[i] * std::conj(block[j]);
            }
        }
    }
    return rho;
}

std::vector<double> schmidtSpectrum(const StateVector& state,
                                    const std::vector<std::size_t>& keepSites) {
    const DenseMatrix rho = reducedDensityMatrix(state, keepSites);
    auto eigen = eigenHermitian(rho);
    std::vector<double>& values = eigen.values;
    for (auto& value : values) {
        value = std::max(value, 0.0);
    }
    std::sort(values.begin(), values.end(), std::greater<>());
    return values;
}

double entanglementEntropy(const StateVector& state,
                           const std::vector<std::size_t>& keepSites) {
    double entropy = 0.0;
    for (const double p : schmidtSpectrum(state, keepSites)) {
        if (p > 1e-15) {
            entropy -= p * std::log2(p);
        }
    }
    return entropy;
}

double renyi2Entropy(const StateVector& state, const std::vector<std::size_t>& keepSites) {
    const double p2 = purity(reducedDensityMatrix(state, keepSites));
    return -std::log2(std::max(p2, 1e-300));
}

std::size_t schmidtRank(const StateVector& state, const std::vector<std::size_t>& keepSites,
                        double tol) {
    std::size_t rank = 0;
    for (const double p : schmidtSpectrum(state, keepSites)) {
        if (p > tol) {
            ++rank;
        }
    }
    return rank;
}

double purity(const DenseMatrix& rho) {
    // Tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2 for Hermitian rho.
    double sum = 0.0;
    for (std::size_t i = 0; i < rho.size(); ++i) {
        for (std::size_t j = 0; j < rho.size(); ++j) {
            sum += std::norm(rho(i, j));
        }
    }
    return sum;
}

} // namespace mqsp::analysis
