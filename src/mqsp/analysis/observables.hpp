#pragma once

#include "mqsp/circuit/matrix.hpp"
#include "mqsp/statevec/state_vector.hpp"

#include <cstddef>
#include <vector>

namespace mqsp {
namespace analysis {

/// Generalized Gell-Mann matrices — the standard Hermitian operator basis
/// of su(d), the qudit analogue of the Pauli basis. For dimension d there
/// are d^2 - 1 of them: d(d-1)/2 symmetric, d(d-1)/2 antisymmetric, and
/// d - 1 diagonal, all traceless and orthogonal under the Hilbert-Schmidt
/// inner product with Tr(G_a G_b) = 2 delta_ab.

/// Symmetric element: |j><k| + |k><j| for j < k.
[[nodiscard]] DenseMatrix gellMannSymmetric(Dimension dim, Level j, Level k);

/// Antisymmetric element: -i |j><k| + i |k><j| for j < k.
[[nodiscard]] DenseMatrix gellMannAntisymmetric(Dimension dim, Level j, Level k);

/// Diagonal element with index l in [1, d-1]:
/// sqrt(2 / (l (l+1))) * (sum_{m<l} |m><m| - l |l><l|).
[[nodiscard]] DenseMatrix gellMannDiagonal(Dimension dim, Level l);

/// The full basis in a fixed order: all symmetric (j<k lexicographic), all
/// antisymmetric, all diagonal — d^2 - 1 matrices.
[[nodiscard]] std::vector<DenseMatrix> gellMannBasis(Dimension dim);

/// Expectation value <psi| O_site |psi> of a single-qudit observable acting
/// on `site` (identity elsewhere). O must be Hermitian of the site's
/// dimension; the returned value is real up to rounding.
[[nodiscard]] double expectation(const StateVector& state, std::size_t site,
                                 const DenseMatrix& observable);

/// Variance <O^2> - <O>^2 of a single-qudit observable.
[[nodiscard]] double variance(const StateVector& state, std::size_t site,
                              const DenseMatrix& observable);

/// The generalized Bloch vector of the qudit at `site`: the expectation of
/// every Gell-Mann basis element, in gellMannBasis order. Its squared norm
/// is 2(1 - 1/d) for a pure reduced state and shrinks with mixedness —
/// a compact entanglement witness.
[[nodiscard]] std::vector<double> blochVector(const StateVector& state, std::size_t site);

/// Squared norm of the Bloch vector (see above).
[[nodiscard]] double blochNormSquared(const StateVector& state, std::size_t site);

} // namespace analysis
} // namespace mqsp
