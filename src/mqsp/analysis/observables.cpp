#include "mqsp/analysis/observables.hpp"

#include "mqsp/linalg/eigen.hpp"
#include "mqsp/support/error.hpp"

#include <cmath>

namespace mqsp::analysis {

DenseMatrix gellMannSymmetric(Dimension dim, Level j, Level k) {
    requireThat(j < k && k < dim, "gellMannSymmetric: need j < k < dim");
    DenseMatrix m(dim);
    m(j, k) = Complex{1.0, 0.0};
    m(k, j) = Complex{1.0, 0.0};
    return m;
}

DenseMatrix gellMannAntisymmetric(Dimension dim, Level j, Level k) {
    requireThat(j < k && k < dim, "gellMannAntisymmetric: need j < k < dim");
    DenseMatrix m(dim);
    m(j, k) = Complex{0.0, -1.0};
    m(k, j) = Complex{0.0, 1.0};
    return m;
}

DenseMatrix gellMannDiagonal(Dimension dim, Level l) {
    requireThat(l >= 1 && l < dim, "gellMannDiagonal: need 1 <= l < dim");
    DenseMatrix m(dim);
    const double scale = std::sqrt(2.0 / (static_cast<double>(l) * (l + 1.0)));
    for (Level i = 0; i < l; ++i) {
        m(i, i) = Complex{scale, 0.0};
    }
    m(l, l) = Complex{-scale * static_cast<double>(l), 0.0};
    return m;
}

std::vector<DenseMatrix> gellMannBasis(Dimension dim) {
    requireThat(dim >= 2, "gellMannBasis: dimension must be >= 2");
    std::vector<DenseMatrix> basis;
    basis.reserve(static_cast<std::size_t>(dim) * dim - 1);
    for (Level j = 0; j < dim; ++j) {
        for (Level k = j + 1; k < dim; ++k) {
            basis.push_back(gellMannSymmetric(dim, j, k));
        }
    }
    for (Level j = 0; j < dim; ++j) {
        for (Level k = j + 1; k < dim; ++k) {
            basis.push_back(gellMannAntisymmetric(dim, j, k));
        }
    }
    for (Level l = 1; l < dim; ++l) {
        basis.push_back(gellMannDiagonal(dim, l));
    }
    return basis;
}

namespace {

/// |phi> = (O acting on `site`) |psi>.
StateVector applyLocal(const StateVector& state, std::size_t site,
                       const DenseMatrix& observable) {
    const MixedRadix& radix = state.radix();
    requireThat(site < radix.numQudits(), "expectation: site out of range");
    const Dimension dim = radix.dimensionAt(site);
    requireThat(observable.size() == dim,
                "expectation: observable size does not match the site dimension");
    const auto stride = radix.strideAt(site);
    const auto total = radix.totalDimension();
    StateVector result = state;
    const std::uint64_t blockSize = stride * dim;
    std::vector<Complex> fiber(dim);
    for (std::uint64_t block = 0; block < total; block += blockSize) {
        for (std::uint64_t inner = 0; inner < stride; ++inner) {
            const std::uint64_t base = block + inner;
            for (Dimension k = 0; k < dim; ++k) {
                fiber[k] = state[base + static_cast<std::uint64_t>(k) * stride];
            }
            const auto out = observable.apply(fiber);
            for (Dimension k = 0; k < dim; ++k) {
                result[base + static_cast<std::uint64_t>(k) * stride] = out[k];
            }
        }
    }
    return result;
}

} // namespace

double expectation(const StateVector& state, std::size_t site,
                   const DenseMatrix& observable) {
    requireThat(isHermitian(observable), "expectation: observable must be Hermitian");
    const StateVector transformed = applyLocal(state, site, observable);
    return state.innerProduct(transformed).real();
}

double variance(const StateVector& state, std::size_t site, const DenseMatrix& observable) {
    requireThat(isHermitian(observable), "variance: observable must be Hermitian");
    const StateVector once = applyLocal(state, site, observable);
    const double mean = state.innerProduct(once).real();
    const double meanSquare = once.innerProduct(once).real(); // <psi|O^2|psi>
    return meanSquare - mean * mean;
}

std::vector<double> blochVector(const StateVector& state, std::size_t site) {
    const Dimension dim = state.radix().dimensionAt(site);
    std::vector<double> components;
    for (const auto& element : gellMannBasis(dim)) {
        components.push_back(expectation(state, site, element));
    }
    return components;
}

double blochNormSquared(const StateVector& state, std::size_t site) {
    double sum = 0.0;
    for (const double component : blochVector(state, site)) {
        sum += component * component;
    }
    return sum;
}

} // namespace mqsp::analysis
