#pragma once

#include "mqsp/dd/decision_diagram.hpp"

#include <cstddef>

namespace mqsp {

/// Options of the approximation pass (§4.3 of the paper).
struct ApproximationOptions {
    /// Lower bound on the fidelity of the approximated state against the
    /// original ("Approximated 98%" uses 0.98). Must be in (0, 1].
    double fidelityThreshold = 0.98;

    /// Merge identical sub-trees after pruning (the paper's reduction rule,
    /// which also enables control elision during synthesis).
    bool reduceAfterPruning = true;

    /// Numerical tolerance for zero/merge decisions.
    double tolerance = Tolerance::kDefault;
};

/// Outcome of the approximation pass.
struct ApproximationReport {
    /// Probability mass removed from the state (sum of pruned contributions).
    double removedMass = 0.0;

    /// Fidelity of the pruned-and-renormalized state against the original:
    /// exactly 1 - removedMass for disjoint tree prunes.
    double fidelity = 1.0;

    /// Internal decision nodes pruned (their whole sub-tree went with them).
    std::size_t removedInternalNodes = 0;

    /// Terminal edges pruned (single amplitudes zeroed) — the leaf "nodes"
    /// of the paper's tree-shaped counting.
    std::size_t removedLeafEdges = 0;

    /// Nodes eliminated by the reduction (sharing) step.
    std::size_t mergedNodes = 0;
};

/// Prune the decision diagram until removing anything further would push the
/// fidelity below `options.fidelityThreshold` (§4.3): contributions are
/// computed per node, candidates are removed greedily smallest-first, the
/// diagram is renormalized, and — if requested — reduced by merging identical
/// sub-trees. The input diagram must be tree-shaped (fresh from
/// DecisionDiagram::fromStateVector); the output is the approximated diagram
/// the synthesizer consumes.
ApproximationReport approximate(DecisionDiagram& dd, const ApproximationOptions& options = {});

} // namespace mqsp
