#include "mqsp/approx/approximation.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace mqsp {

namespace {

/// A prunable unit: either an internal node (cut the edge from its parent)
/// or a single terminal edge (zero one amplitude). In the paper's tree view
/// both are "nodes"; terminal edges are its leaf nodes.
struct Candidate {
    double contribution = 0.0;
    NodeRef parent = kNoNode;
    std::size_t edgeIndex = 0;
    NodeRef child = kNoNode; // kNoNode for terminal-edge candidates
    bool isLeafEdge = false;
};

} // namespace

ApproximationReport approximate(DecisionDiagram& dd, const ApproximationOptions& options) {
    requireThat(options.fidelityThreshold > 0.0 && options.fidelityThreshold <= 1.0,
                "approximate: fidelityThreshold must lie in (0, 1]");
    ApproximationReport report;
    if (dd.rootNode() == kNoNode) {
        return report;
    }

    const auto contributions = dd.nodeContributions();

    // Gather candidates and the parent map (tree => unique parent).
    std::vector<Candidate> candidates;
    std::unordered_map<NodeRef, NodeRef> parentOf;
    {
        std::vector<NodeRef> stack{dd.rootNode()};
        std::vector<bool> seen(dd.poolSize(), false);
        seen[dd.rootNode()] = true;
        while (!stack.empty()) {
            const NodeRef ref = stack.back();
            stack.pop_back();
            const DDNode& n = dd.node(ref);
            for (std::size_t k = 0; k < n.edges.size(); ++k) {
                const DDEdge& edge = n.edges[k];
                if (edge.isZeroStub()) {
                    continue;
                }
                const DDNode& child = dd.node(edge.node);
                const double mass =
                    contributions[ref] * squaredMagnitude(edge.weight);
                if (child.isTerminal()) {
                    candidates.push_back(
                        {mass, ref, k, kNoNode, /*isLeafEdge=*/true});
                } else {
                    candidates.push_back({mass, ref, k, edge.node, /*isLeafEdge=*/false});
                    const bool inserted = parentOf.emplace(edge.node, ref).second;
                    requireThat(inserted || parentOf.at(edge.node) == ref,
                                "approximate: diagram must be tree-shaped (run the "
                                "approximation before reduce(); prune bookkeeping "
                                "relies on unique parents)");
                    if (!seen[edge.node]) {
                        seen[edge.node] = true;
                        stack.push_back(edge.node);
                    }
                }
            }
        }
    }

    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                         return a.contribution < b.contribution;
                     });

    const double budget = 1.0 - options.fidelityThreshold;
    std::vector<bool> nodeRemoved(dd.poolSize(), false);
    const auto inRemovedSubtree = [&](NodeRef ref) {
        // Walk up the parent chain; tree depth bounds the cost.
        for (NodeRef cur = ref; cur != kNoNode;) {
            if (nodeRemoved[cur]) {
                return true;
            }
            const auto it = parentOf.find(cur);
            cur = (it == parentOf.end()) ? kNoNode : it->second;
        }
        return false;
    };

    // Mass already removed underneath each node: an internal candidate's
    // effective cost is its contribution minus what its pruned descendants
    // already gave up, otherwise the budget would be double-charged.
    std::unordered_map<NodeRef, double> removedWithin;
    const auto chargeAncestors = [&](NodeRef from, double mass) {
        for (NodeRef cur = from; cur != kNoNode;) {
            removedWithin[cur] += mass;
            const auto it = parentOf.find(cur);
            cur = (it == parentOf.end()) ? kNoNode : it->second;
        }
    };

    double removed = 0.0;
    for (const auto& candidate : candidates) {
        if (inRemovedSubtree(candidate.parent)) {
            continue; // already gone with an ancestor
        }
        if (!candidate.isLeafEdge && nodeRemoved[candidate.child]) {
            continue;
        }
        double effective = candidate.contribution;
        if (!candidate.isLeafEdge) {
            if (const auto it = removedWithin.find(candidate.child);
                it != removedWithin.end()) {
                effective -= it->second;
            }
        }
        if (effective <= 0.0) {
            continue; // nothing (new) gained by pruning this
        }
        if (removed + effective > budget) {
            // Candidates are sorted ascending, but a later candidate can
            // still fit after this one overshoots (ties, partially-pruned
            // sub-trees); keep scanning to fill the budget greedily.
            continue;
        }
        dd.cutEdge(candidate.parent, candidate.edgeIndex);
        removed += effective;
        chargeAncestors(candidate.parent, effective);
        if (candidate.isLeafEdge) {
            ++report.removedLeafEdges;
        } else {
            nodeRemoved[candidate.child] = true;
            ++report.removedInternalNodes;
        }
    }

    report.removedMass = removed;
    report.fidelity = 1.0 - removed;

    dd.renormalize(options.tolerance);
    dd.normalizeRoot();

    if (options.reduceAfterPruning) {
        report.mergedNodes = dd.reduce(options.tolerance);
        dd.garbageCollect();
    }
    return report;
}

} // namespace mqsp
