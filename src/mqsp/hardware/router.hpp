#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/hardware/architecture.hpp"

#include <cstddef>

namespace mqsp {

/// Result of mapping a circuit onto a device topology.
struct RoutingResult {
    /// The routed circuit: semantically identical to the input (every
    /// inserted SWAP pair cancels), with every controlled operation acting
    /// on a coupled site pair.
    Circuit circuit;

    /// Full-qudit SWAPs inserted (each costs 3(d-1) two-qudit controlled
    /// shifts plus local level swaps).
    std::size_t swapsInserted = 0;

    /// Ops in the routed circuit that act on two sites.
    std::size_t twoQuditOps = 0;
};

/// Append a full-qudit SWAP between sites a and b to `circuit`. Requires
/// equal dimensions on both sites (exchanging qudits of different
/// dimensionality is not a unitary on the local spaces — the physical
/// constraint mixed-dimensional devices live with). Built from the qudit
/// identity SWAP = CX(a->b) . CX(b->a)^-1 . CX(a->b) . NEG(a), where
/// CX(a->b)|x,y> = |x, y+x mod d> is a ladder of d-1 controlled shifts and
/// NEG is the local negation permutation |z> -> |-z mod d>.
void appendSwap(Circuit& circuit, std::size_t a, std::size_t b);

/// Map a (<= 1 control per op) circuit onto the architecture: operations on
/// uncoupled pairs are preceded by SWAP chains moving the control site next
/// to the target along the shortest coupling path, and followed by the
/// inverse chain. Throws InvalidArgumentError when the circuit register and
/// architecture disagree, when an op carries two or more controls (lower
/// with transpileToTwoQudit first), or when routing would have to swap
/// qudits of different dimensionality.
[[nodiscard]] RoutingResult routeCircuit(const Circuit& circuit, const Architecture& arch);

/// Multiplicative fidelity estimate under the architecture's noise model:
/// product over ops of (1 - eps), with eps the single-qudit error for local
/// ops, the two-qudit error for singly-controlled ops, and the two-qudit
/// error charged k times for k-controlled ops (the cost of their eventual
/// decomposition, cf. transpile::estimateTwoQuditCost for the exact figure).
[[nodiscard]] double estimateCircuitFidelity(const Circuit& circuit, const NoiseModel& noise);

} // namespace mqsp
