#pragma once

#include "mqsp/support/mixed_radix.hpp"

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mqsp {

/// Depolarizing-style error rates per operation class. Used by the fidelity
/// estimator to rank routed circuits — the paper's concluding future-work
/// item ("taking the capabilities of the targeted quantum hardware into
/// account").
struct NoiseModel {
    double singleQuditError = 1e-4; ///< uncontrolled local gate
    double twoQuditError = 1e-2;    ///< singly-controlled (entangling) gate
};

/// A target quantum device: qudit dimensions, which site pairs support
/// two-qudit gates (the coupling graph), and a noise model.
///
/// Factories cover the common topologies: trapped-ion style all-to-all,
/// a linear chain, and a ring.
class Architecture {
public:
    Architecture() = default;

    /// Custom architecture. Edges are unordered site pairs; the coupling
    /// graph must be connected over all sites. Throws InvalidArgumentError
    /// on out-of-range or self-loop edges or a disconnected graph.
    Architecture(std::string name, Dimensions dims,
                 std::vector<std::pair<std::size_t, std::size_t>> edges,
                 NoiseModel noise = {});

    /// Every pair coupled (e.g. trapped ions with a shared bus).
    [[nodiscard]] static Architecture allToAll(Dimensions dims, NoiseModel noise = {});

    /// Nearest-neighbour chain: i -- i+1.
    [[nodiscard]] static Architecture linearChain(Dimensions dims, NoiseModel noise = {});

    /// Chain plus the wrap-around edge.
    [[nodiscard]] static Architecture ring(Dimensions dims, NoiseModel noise = {});

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const Dimensions& dimensions() const noexcept { return dims_; }
    [[nodiscard]] std::size_t numSites() const noexcept { return dims_.size(); }
    [[nodiscard]] const NoiseModel& noise() const noexcept { return noise_; }

    /// True when a two-qudit gate between a and b is native.
    [[nodiscard]] bool connected(std::size_t a, std::size_t b) const;

    /// Shortest coupling path from a to b (inclusive of both endpoints),
    /// via breadth-first search. a == b yields {a}.
    [[nodiscard]] std::vector<std::size_t> shortestPath(std::size_t a, std::size_t b) const;

    /// Number of edges in the coupling graph.
    [[nodiscard]] std::size_t numEdges() const noexcept { return edges_.size(); }

private:
    [[nodiscard]] std::pair<std::size_t, std::size_t> canonical(std::size_t a,
                                                                std::size_t b) const;
    void validateConnectivity() const;

    std::string name_ = "unnamed";
    Dimensions dims_;
    std::set<std::pair<std::size_t, std::size_t>> edges_;
    NoiseModel noise_;
};

} // namespace mqsp
