#include "mqsp/hardware/router.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>

namespace mqsp {

namespace {

/// CX(a->b): |x, y> -> |x, (y + x) mod d> as d-1 controlled shifts.
void appendControlledAdd(Circuit& circuit, std::size_t a, std::size_t b, bool inverse) {
    const Dimension dim = circuit.radix().dimensionAt(b);
    for (Level x = 1; x < circuit.radix().dimensionAt(a); ++x) {
        // Shift amount on b: +x (or its inverse d - x), reduced mod dim(b).
        const Level amount = static_cast<Level>(
            (inverse ? dim - (x % dim) : x) % dim);
        if (amount == 0) {
            continue;
        }
        circuit.append(Operation::shift(b, amount, {{a, x}}));
    }
}

/// NEG(a): |z> -> |-z mod d| as floor((d-1)/2) level transpositions.
void appendNegation(Circuit& circuit, std::size_t a) {
    const Dimension dim = circuit.radix().dimensionAt(a);
    for (Level z = 1; 2 * z < dim; ++z) {
        circuit.append(Operation::levelSwap(a, z, static_cast<Level>(dim - z)));
    }
}

} // namespace

void appendSwap(Circuit& circuit, std::size_t a, std::size_t b) {
    const Dimension dimA = circuit.radix().dimensionAt(a);
    const Dimension dimB = circuit.radix().dimensionAt(b);
    requireThat(dimA == dimB,
                "appendSwap: cannot exchange qudits of different dimensionality (" +
                    std::to_string(dimA) + " vs " + std::to_string(dimB) + ")");
    // |x,y> -> |x, x+y> -> |x-(x+y), x+y> = |-y, x+y> -> |-y, x> -> |y, x>.
    appendControlledAdd(circuit, a, b, /*inverse=*/false);
    appendControlledAdd(circuit, b, a, /*inverse=*/true);
    appendControlledAdd(circuit, a, b, /*inverse=*/false);
    appendNegation(circuit, a);
}

RoutingResult routeCircuit(const Circuit& circuit, const Architecture& arch) {
    requireThat(circuit.dimensions() == arch.dimensions(),
                "routeCircuit: circuit register and architecture disagree");
    RoutingResult result;
    result.circuit = Circuit(circuit.dimensions(), circuit.name() + "_routed");

    for (const auto& op : circuit.operations()) {
        requireThat(op.numControls() <= 1,
                    "routeCircuit: lower multi-controlled ops with transpileToTwoQudit "
                    "before routing");
        if (op.numControls() == 0) {
            result.circuit.append(op);
            continue;
        }
        const std::size_t control = op.controls[0].qudit;
        const std::size_t target = op.target;
        if (arch.connected(control, target)) {
            result.circuit.append(op);
            ++result.twoQuditOps;
            continue;
        }
        // Move the control qudit adjacent to the target along the shortest
        // coupling path, apply, and move it back.
        const auto path = arch.shortestPath(control, target);
        ensureThat(path.size() >= 3, "routeCircuit: unexpected short path");
        const std::size_t hops = path.size() - 2; // swaps one way
        for (std::size_t i = 0; i < hops; ++i) {
            appendSwap(result.circuit, path[i], path[i + 1]);
        }
        Operation moved = op;
        moved.controls[0].qudit = path[path.size() - 2];
        // If the op's target happened to be relocated... it cannot be: the
        // path endpoints are control and target, interior sites differ from
        // the target, and only path[0..k-1] were swapped.
        result.circuit.append(std::move(moved));
        for (std::size_t i = hops; i-- > 0;) {
            appendSwap(result.circuit, path[i], path[i + 1]);
        }
        result.swapsInserted += 2 * hops;
        ++result.twoQuditOps;
    }

    // Recount two-qudit ops over the final circuit (SWAP ladders included).
    result.twoQuditOps = 0;
    for (const auto& op : result.circuit.operations()) {
        if (op.numControls() > 0) {
            ++result.twoQuditOps;
        }
    }
    return result;
}

double estimateCircuitFidelity(const Circuit& circuit, const NoiseModel& noise) {
    double fidelity = 1.0;
    for (const auto& op : circuit.operations()) {
        const std::size_t k = op.numControls();
        if (k == 0) {
            fidelity *= 1.0 - noise.singleQuditError;
        } else {
            fidelity *= std::pow(1.0 - noise.twoQuditError, static_cast<double>(k));
        }
    }
    return fidelity;
}

} // namespace mqsp
