#include "mqsp/hardware/architecture.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <deque>

namespace mqsp {

Architecture::Architecture(std::string name, Dimensions dims,
                           std::vector<std::pair<std::size_t, std::size_t>> edges,
                           NoiseModel noise)
    : name_(std::move(name)), dims_(std::move(dims)), noise_(noise) {
    requireThat(!dims_.empty(), "Architecture: need at least one site");
    for (const auto dim : dims_) {
        requireThat(dim >= 2, "Architecture: every site dimension must be >= 2");
    }
    for (const auto& [a, b] : edges) {
        requireThat(a < dims_.size() && b < dims_.size(),
                    "Architecture: edge site out of range");
        requireThat(a != b, "Architecture: self-loop edge");
        edges_.insert(canonical(a, b));
    }
    if (dims_.size() > 1) {
        validateConnectivity();
    }
}

Architecture Architecture::allToAll(Dimensions dims, NoiseModel noise) {
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t a = 0; a < dims.size(); ++a) {
        for (std::size_t b = a + 1; b < dims.size(); ++b) {
            edges.emplace_back(a, b);
        }
    }
    return Architecture("all-to-all", std::move(dims), std::move(edges), noise);
}

Architecture Architecture::linearChain(Dimensions dims, NoiseModel noise) {
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t a = 0; a + 1 < dims.size(); ++a) {
        edges.emplace_back(a, a + 1);
    }
    return Architecture("linear-chain", std::move(dims), std::move(edges), noise);
}

Architecture Architecture::ring(Dimensions dims, NoiseModel noise) {
    requireThat(dims.size() >= 3, "Architecture::ring: need at least three sites");
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t a = 0; a + 1 < dims.size(); ++a) {
        edges.emplace_back(a, a + 1);
    }
    edges.emplace_back(dims.size() - 1, 0);
    return Architecture("ring", std::move(dims), std::move(edges), noise);
}

bool Architecture::connected(std::size_t a, std::size_t b) const {
    requireThat(a < dims_.size() && b < dims_.size(), "Architecture: site out of range");
    if (a == b) {
        return false;
    }
    return edges_.count(canonical(a, b)) > 0;
}

std::vector<std::size_t> Architecture::shortestPath(std::size_t a, std::size_t b) const {
    requireThat(a < dims_.size() && b < dims_.size(), "Architecture: site out of range");
    if (a == b) {
        return {a};
    }
    std::vector<std::size_t> previous(dims_.size(), dims_.size());
    std::deque<std::size_t> frontier{a};
    previous[a] = a;
    while (!frontier.empty()) {
        const std::size_t site = frontier.front();
        frontier.pop_front();
        if (site == b) {
            break;
        }
        for (std::size_t next = 0; next < dims_.size(); ++next) {
            if (previous[next] == dims_.size() && connected(site, next)) {
                previous[next] = site;
                frontier.push_back(next);
            }
        }
    }
    ensureThat(previous[b] != dims_.size(),
               "Architecture::shortestPath: coupling graph is disconnected");
    std::vector<std::size_t> path{b};
    while (path.back() != a) {
        path.push_back(previous[path.back()]);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::pair<std::size_t, std::size_t> Architecture::canonical(std::size_t a,
                                                            std::size_t b) const {
    return {std::min(a, b), std::max(a, b)};
}

void Architecture::validateConnectivity() const {
    std::vector<bool> seen(dims_.size(), false);
    std::deque<std::size_t> frontier{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!frontier.empty()) {
        const std::size_t site = frontier.front();
        frontier.pop_front();
        for (const auto& [a, b] : edges_) {
            const std::size_t other = (a == site) ? b : (b == site) ? a : dims_.size();
            if (other != dims_.size() && !seen[other]) {
                seen[other] = true;
                ++visited;
                frontier.push_back(other);
            }
        }
    }
    requireThat(visited == dims_.size(), "Architecture: coupling graph is disconnected");
}

} // namespace mqsp
