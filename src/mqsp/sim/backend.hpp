#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/dd/unique_table.hpp"
#include "mqsp/statevec/state_vector.hpp"
#include "mqsp/support/parallel.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace mqsp {

class MatrixDdStore;

/// Which evaluation substrate a backend runs on.
enum class BackendKind {
    Dense, ///< dense state vector (O(∏dims) memory, exact reference)
    Dd,    ///< decision diagram (memory ∝ diagram size, scales past dense)
};

/// Human-readable backend name ("dense" / "dd") — also the CLI spelling.
[[nodiscard]] const char* backendName(BackendKind kind) noexcept;

/// Total dimension above which `auto` backend selection switches from the
/// dense simulator to the decision-diagram backend: 2^22 ≈ 4.2M amplitudes
/// (64 MiB of Complex), comfortably inside any dev machine while keeping
/// the asymptotically safe choice for everything larger.
inline constexpr std::uint64_t kAutoBackendThreshold = std::uint64_t{1} << 22U;

/// Largest register the DenseBackend agrees to materialize: 2^26 amplitudes
/// (1 GiB of Complex). Beyond this the dense backend *refuses* with a clear
/// error instead of dying in the allocator — `--backend dd` is the tool for
/// those registers.
inline constexpr std::uint64_t kDenseBackendCeiling = std::uint64_t{1} << 26U;

/// Resolve a CLI backend spec ("dense" | "dd" | "auto") against a register's
/// total dimension. "auto" picks Dense up to `autoThreshold` and Dd beyond;
/// anything else throws InvalidArgumentError.
[[nodiscard]] BackendKind resolveBackendKind(const std::string& spec,
                                             std::uint64_t totalDimension,
                                             std::uint64_t autoThreshold = kAutoBackendThreshold);

/// A quantum state as handled by the evaluation backends: either a dense
/// StateVector or a DecisionDiagram, with the common read-side operations
/// (amplitudes, norms, overlaps) dispatched to the native representation.
/// Mixed-representation overlaps convert the *dense* side to a diagram —
/// never the diagram to a dense vector — so a huge DD state is never
/// materialized by accident.
class EvalState {
public:
    EvalState() = default;
    explicit EvalState(StateVector state) : value_(std::move(state)) {}
    explicit EvalState(DecisionDiagram diagram) : value_(std::move(diagram)) {}

    [[nodiscard]] bool isDense() const noexcept {
        return std::holds_alternative<StateVector>(value_);
    }
    [[nodiscard]] bool isDiagram() const noexcept { return !isDense(); }

    /// Register geometry (shared by both representations).
    [[nodiscard]] const MixedRadix& radix() const;
    [[nodiscard]] const Dimensions& dimensions() const { return radix().dimensions(); }
    [[nodiscard]] std::uint64_t totalDimension() const { return radix().totalDimension(); }

    /// Native accessors; throw InvalidArgumentError on representation
    /// mismatch (callers branch on isDense()/isDiagram()).
    [[nodiscard]] const StateVector& dense() const;
    [[nodiscard]] const DecisionDiagram& diagram() const;
    [[nodiscard]] StateVector& dense();
    [[nodiscard]] DecisionDiagram& diagram();

    /// Amplitude of one basis state, whatever the representation.
    [[nodiscard]] Complex amplitudeOf(const Digits& digits) const;

    /// Sum of squared amplitude magnitudes.
    [[nodiscard]] double normSquared() const;

    /// <this|other>. Registers must match; a mixed pair converts the dense
    /// side to a diagram first.
    [[nodiscard]] Complex overlapWith(const EvalState& other) const;

    /// |<this|other>|^2 — the fidelity metric of Table 1.
    [[nodiscard]] double fidelityWith(const EvalState& other) const;

    /// This state as a diagram (identity when already one; O(∏dims) build
    /// from a dense vector).
    [[nodiscard]] DecisionDiagram toDiagram() const;

    /// This state as a dense vector. Refuses (InvalidArgumentError) when the
    /// register exceeds `ceiling` amplitudes — the guard that keeps huge DD
    /// states from being expanded by accident.
    [[nodiscard]] StateVector toStateVector(std::uint64_t ceiling = kDenseBackendCeiling) const;

private:
    std::variant<StateVector, DecisionDiagram> value_;
};

/// One fidelity / `dd_nodes` probe taken mid-replay by the streaming verify
/// path: after `opIndex` operations the replayed state had fidelity
/// `fidelity` against the request target (its norm² when no target was
/// given) and the backing session held `ddNodes` nodes (0 on dense).
struct ReplayCheckpoint {
    std::uint64_t opIndex = 0;
    double fidelity = 0.0;
    std::uint64_t ddNodes = 0;
};

/// One verify work item — the shared request shape of every verification
/// entry point (single, batch, streaming). Replay `circuit` from |0...0>
/// and measure the fidelity against `target`; the pointed-to objects must
/// outlive the call.
///
/// `target == nullptr` (streaming only) reports the replayed state's norm²
/// as the fidelity — the unitarity self-check. `repeat` re-runs the verify
/// that many times (cache-warming studies; the report carries the last
/// run). `checkpointInterval > 0` (streaming only) records a
/// ReplayCheckpoint every that-many operations.
struct VerifyRequest {
    const Circuit* circuit = nullptr;
    const EvalState* target = nullptr;
    std::uint64_t repeat = 1;
    std::uint64_t checkpointInterval = 0;
};

/// Outcome of one verify item: the fidelity plus the observability the
/// CLIs, serve verbs and bench drivers previously re-derived ad hoc —
/// operations replayed, session `dd_nodes` after the run, and the session
/// compute-cache lookup/hit deltas attributable to this item (all zero on
/// the dense backend). A throwing item (e.g. a register past the dense
/// ceiling) is reported in `failed`/`error` instead of aborting its batch
/// siblings.
struct VerifyReport {
    double fidelity = 0.0;
    std::uint64_t ops = 0;
    std::uint64_t ddNodes = 0;
    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheHits = 0;
    std::vector<ReplayCheckpoint> checkpoints;
    bool failed = false;
    std::string error;
};

/// The pluggable evaluation substrate: everything the toolchain needs to
/// *run* and *verify* circuits — replay from |0...0>, single-op application,
/// preparation fidelity against a target, and whole-unitary equivalence —
/// behind one interface, so callers (CLI tools, bench drivers, tests) are
/// written once and switch substrate with a flag.
///
/// Verification goes through the shared VerifyRequest/VerifyReport shapes:
/// `verify` (one item), `verifyBatch` (independent items fanned out across
/// the pool), `verifyStream` (replay an OperationSource one gate at a time
/// in O(state) space with periodic checkpoints), and `reverifyAppended`
/// (advance an already-replayed state by just the delta of a grown
/// circuit). All are built on the substrate virtuals below.
///
/// Threading: each backend carries an ExecutionConfig (default: a snapshot
/// of the process-wide one at construction; `threads == 0` = follow the
/// ambient setting) and pins the process width to it for the duration of
/// its evaluation entry points — a 1-thread backend is genuinely
/// single-threaded whatever the ambient width. Within one evaluation the
/// dense backend parallelizes the amplitude walks of its kernels;
/// `verifyBatch` additionally fans *independent* items out
/// across the pool workers — whereupon each item's inner kernels run
/// serially (nested-use refusal), which is the right split for many small
/// cases. The dd backend parallelizes *within* one diagram on single-item
/// calls: gate application fans the target-level rebuild out across the
/// session's sharded tables (dd/apply.cpp), and equivalence checking fans
/// multiply's top-level product cells out on the shared operator store
/// (mdd/matrix_dd.cpp) — both with deterministic sequential interning, so
/// fidelities and `dd_nodes` stay bit-identical across thread counts. On
/// batch workers (inside a region) those fan-outs stay serial and the
/// concurrency comes from the batch level. (`apply`, the per-operation
/// primitive, is the one exception: it is called in tight loops and
/// follows the ambient width rather than re-pinning per call.)
///
/// Because the width is process-wide, evaluation entry points on backends
/// with *different* configs must not overlap from different application
/// threads — their width pins would interleave. Drive backends from one
/// coordinating thread (as the tools, bench drivers and tests do) and get
/// concurrency from `verifyBatch`, not from racing backends.
class EvaluationBackend {
public:
    EvaluationBackend() : config_(parallel::globalExecutionConfig()) {}
    explicit EvaluationBackend(parallel::ExecutionConfig config) : config_(config) {}
    virtual ~EvaluationBackend() = default;

    [[nodiscard]] virtual BackendKind kind() const noexcept = 0;
    [[nodiscard]] const char* name() const noexcept { return backendName(kind()); }

    /// The execution configuration this backend was constructed under.
    [[nodiscard]] const parallel::ExecutionConfig& executionConfig() const noexcept {
        return config_;
    }

    /// Replay + verify one item, with the full report (fidelity, ops,
    /// dd_nodes, session cache deltas; honors `repeat`). Exceptions land in
    /// the report's failed/error instead of propagating.
    [[nodiscard]] VerifyReport verify(const VerifyRequest& request) const;

    /// Replay + verify every item. Items are independent: with more than
    /// one item and more than one configured thread they run concurrently
    /// across the pool workers; a single item keeps the whole pool for its
    /// own kernels. Per-item exceptions land in the item's report. (Cache
    /// deltas of concurrent items overlap and are reported as observed —
    /// gate on them only single-threaded.)
    [[nodiscard]] std::vector<VerifyReport>
    verifyBatch(const std::vector<VerifyRequest>& items) const;

    /// Streaming verify: drain `source` one operation at a time into a
    /// fresh |0...0> state — memory stays O(state), never O(circuit text) —
    /// recording a ReplayCheckpoint every `request.checkpointInterval` ops
    /// and the fidelity against `request.target` (the state's norm² when
    /// the target is null) at the end. `request.circuit` is ignored; the
    /// register comes from `source.dimensions()`. When `finalState` is
    /// non-null the replayed state is moved out through it so callers can
    /// keep sampling / printing from where the stream ended. Unlike the
    /// batch paths this throws on error: a torn stream has no meaningful
    /// partial report.
    [[nodiscard]] VerifyReport verifyStream(OperationSource& source,
                                            const VerifyRequest& request,
                                            EvalState* finalState = nullptr) const;

    /// Incremental re-verify after `circuit` grew by appended gates:
    /// advance `replayed` — the live replay state, previously advanced
    /// through `fromOp` operations — by just the delta `[fromOp, end)` and
    /// measure the fidelity against `target`. Time is proportional to the
    /// delta, and on the dd backend unchanged subtrees resolve from the
    /// session caches (the report's cacheHits measure exactly that).
    [[nodiscard]] VerifyReport reverifyAppended(const Circuit& circuit, std::uint64_t fromOp,
                                                EvalState& replayed,
                                                const EvalState& target) const;

    /// |0...0> over `dims` in this backend's native representation — the
    /// seed of every streaming replay.
    [[nodiscard]] virtual EvalState zeroState(const Dimensions& dims) const = 0;

    /// Replay the circuit from |0...0> — the state-preparation setting.
    [[nodiscard]] virtual EvalState runFromZero(const Circuit& circuit) const = 0;

    /// Apply a single (possibly multi-controlled) operation in place. The
    /// state must be in this backend's native representation.
    virtual void apply(EvalState& state, const Operation& op) const = 0;

    /// |<target|circuit(|0...0>)>|^2 — the verification metric.
    [[nodiscard]] virtual double preparationFidelity(const Circuit& circuit,
                                                     const EvalState& target) const = 0;

    /// True when the two circuits implement the same unitary up to a global
    /// phase (full-operator equivalence, not merely equal action on |0>).
    [[nodiscard]] virtual bool circuitsEquivalent(const Circuit& a, const Circuit& b,
                                                  double tol = 1e-9) const = 0;

    /// The DD memory session backing this backend's evaluations, when it
    /// has one (the dd backend does, for its whole lifetime); callers use
    /// it to build targets on the shared store and to read the
    /// dd_nodes / unique_hit_rate / cache_hit_rate statistics.
    [[nodiscard]] virtual std::shared_ptr<dd::DdSession> ddSession() const { return nullptr; }

private:
    parallel::ExecutionConfig config_;
};

/// Dense state-vector backend: wraps the existing Simulator. Exact and
/// fast on small registers; refuses registers beyond `maxAmplitudes` with
/// a clear error pointing at the DD backend.
class DenseBackend final : public EvaluationBackend {
public:
    explicit DenseBackend(std::uint64_t maxAmplitudes = kDenseBackendCeiling)
        : maxAmplitudes_(maxAmplitudes) {}
    DenseBackend(std::uint64_t maxAmplitudes, parallel::ExecutionConfig config)
        : EvaluationBackend(config), maxAmplitudes_(maxAmplitudes) {}

    [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::Dense; }
    [[nodiscard]] EvalState zeroState(const Dimensions& dims) const override;
    [[nodiscard]] EvalState runFromZero(const Circuit& circuit) const override;
    void apply(EvalState& state, const Operation& op) const override;
    [[nodiscard]] double preparationFidelity(const Circuit& circuit,
                                             const EvalState& target) const override;
    [[nodiscard]] bool circuitsEquivalent(const Circuit& a, const Circuit& b,
                                          double tol = 1e-9) const override;

    [[nodiscard]] std::uint64_t maxAmplitudes() const noexcept { return maxAmplitudes_; }

private:
    void requireWithinCeiling(std::uint64_t totalDimension, const char* what) const;

    std::uint64_t maxAmplitudes_ = kDenseBackendCeiling;
};

/// Decision-diagram backend: replay on DecisionDiagram (dd/apply.cpp),
/// fidelity as a DD-DD overlap, equivalence on matrix decision diagrams
/// (mdd/MatrixDD) — memory and time scale with diagram size, not with
/// ∏dims, so structured states verify on registers of 10^8+ amplitudes.
///
/// Memory model: the backend owns one dd::DdSession (and one shared
/// MatrixDdStore for the equivalence path) for its whole lifetime. Every
/// target, replayed state, and per-gate intermediate evaluated on this
/// backend allocates through the session's uniquing table, so identical
/// sub-trees are built once per backend, repeated verifications hit the
/// session compute cache, and `ddSession()->stats()` reports the
/// dd_nodes / unique_hit_rate / cache_hit_rate metrics.
///
/// Concurrency: the session's uniquing table is sharded and its compute
/// cache striped (dd/unique_table.hpp), so batch items fanned out by
/// `verifyBatch` intern into this one shared session from every
/// worker — cross-item sharing is exactly where the table pays most. The
/// distinct structural key set (dd_nodes) is invariant under thread count
/// and item order; cache hit rates of concurrent batches depend on the
/// interleaving and are reported as observed.
class DdBackend final : public EvaluationBackend {
public:
    explicit DdBackend(double tolerance = Tolerance::kDefault);
    DdBackend(double tolerance, parallel::ExecutionConfig config);

    [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::Dd; }
    [[nodiscard]] EvalState zeroState(const Dimensions& dims) const override;
    [[nodiscard]] EvalState runFromZero(const Circuit& circuit) const override;
    void apply(EvalState& state, const Operation& op) const override;
    [[nodiscard]] double preparationFidelity(const Circuit& circuit,
                                             const EvalState& target) const override;
    [[nodiscard]] bool circuitsEquivalent(const Circuit& a, const Circuit& b,
                                          double tol = 1e-9) const override;

    [[nodiscard]] std::shared_ptr<dd::DdSession> ddSession() const override {
        return session_;
    }

private:
    double tolerance_ = Tolerance::kDefault;
    std::shared_ptr<dd::DdSession> session_;
    std::shared_ptr<MatrixDdStore> matrixStore_;
};

/// Factory for a backend of the given kind (process-wide ExecutionConfig).
[[nodiscard]] std::unique_ptr<EvaluationBackend> makeBackend(BackendKind kind);

/// Factory for a backend of the given kind under an explicit configuration.
[[nodiscard]] std::unique_ptr<EvaluationBackend> makeBackend(BackendKind kind,
                                                             parallel::ExecutionConfig config);

/// Convenience: resolve a CLI spec against a register and construct.
[[nodiscard]] std::unique_ptr<EvaluationBackend> makeBackend(const std::string& spec,
                                                             std::uint64_t totalDimension);

} // namespace mqsp
