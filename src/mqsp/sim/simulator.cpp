#include "mqsp/sim/simulator.hpp"

#include "mqsp/support/error.hpp"

#include <vector>

namespace mqsp {

namespace {

/// True when `index` satisfies all control conditions.
bool controlsSatisfied(const MixedRadix& radix, std::uint64_t index,
                       const std::vector<Control>& controls) {
    for (const auto& ctrl : controls) {
        if (radix.digitAt(index, ctrl.qudit) != ctrl.level) {
            return false;
        }
    }
    return true;
}

/// Apply a two-level update (rows/cols a,b of a 2x2 block) across the
/// register. `m00..m11` is the block in the (a, b) basis.
void applyTwoLevel(StateVector& state, std::size_t target, Level a, Level b, Complex m00,
                   Complex m01, Complex m10, Complex m11,
                   const std::vector<Control>& controls) {
    const auto& radix = state.radix();
    const auto total = radix.totalDimension();
    const auto stride = radix.strideAt(target);
    const auto dim = radix.dimensionAt(target);
    auto& amps = state.amplitudes();
    // Walk indices whose target digit is `a`; the partner index differs only
    // in the target digit (a -> b).
    const std::uint64_t offsetA = static_cast<std::uint64_t>(a) * stride;
    const std::uint64_t offsetB = static_cast<std::uint64_t>(b) * stride;
    const std::uint64_t blockSize = stride * dim;
    for (std::uint64_t block = 0; block < total; block += blockSize) {
        for (std::uint64_t inner = 0; inner < stride; ++inner) {
            const std::uint64_t idxA = block + inner + offsetA;
            if (!controls.empty() && !controlsSatisfied(radix, idxA, controls)) {
                continue;
            }
            const std::uint64_t idxB = block + inner + offsetB;
            const Complex va = amps[idxA];
            const Complex vb = amps[idxB];
            amps[idxA] = m00 * va + m01 * vb;
            amps[idxB] = m10 * va + m11 * vb;
        }
    }
}

/// Apply a full dxd single-qudit matrix (Hadamard, Shift) across the register.
void applyDense(StateVector& state, std::size_t target, const DenseMatrix& matrix,
                const std::vector<Control>& controls) {
    const auto& radix = state.radix();
    const auto total = radix.totalDimension();
    const auto stride = radix.strideAt(target);
    const auto dim = radix.dimensionAt(target);
    auto& amps = state.amplitudes();
    std::vector<Complex> scratch(dim);
    const std::uint64_t blockSize = stride * dim;
    for (std::uint64_t block = 0; block < total; block += blockSize) {
        for (std::uint64_t inner = 0; inner < stride; ++inner) {
            const std::uint64_t base = block + inner;
            if (!controls.empty() && !controlsSatisfied(radix, base, controls)) {
                continue;
            }
            for (Dimension k = 0; k < dim; ++k) {
                scratch[k] = amps[base + static_cast<std::uint64_t>(k) * stride];
            }
            for (Dimension r = 0; r < dim; ++r) {
                Complex acc{0.0, 0.0};
                for (Dimension c = 0; c < dim; ++c) {
                    acc += matrix(r, c) * scratch[c];
                }
                amps[base + static_cast<std::uint64_t>(r) * stride] = acc;
            }
        }
    }
}

} // namespace

void Simulator::apply(StateVector& state, const Operation& op) {
    const auto& radix = state.radix();
    requireThat(op.target < radix.numQudits(), "Simulator: operation target out of range");
    const Dimension dim = radix.dimensionAt(op.target);
    switch (op.kind) {
    case GateKind::GivensRotation: {
        requireThat(op.levelA < dim && op.levelB < dim, "Simulator: rotation level out of range");
        const DenseMatrix m = givensMatrix(2, 0, 1, op.theta, op.phi);
        applyTwoLevel(state, op.target, op.levelA, op.levelB, m(0, 0), m(0, 1), m(1, 0), m(1, 1),
                      op.controls);
        return;
    }
    case GateKind::PhaseRotation: {
        requireThat(op.levelA < dim && op.levelB < dim, "Simulator: phase level out of range");
        const DenseMatrix m = phaseMatrix(2, 0, 1, op.theta);
        applyTwoLevel(state, op.target, op.levelA, op.levelB, m(0, 0), m(0, 1), m(1, 0), m(1, 1),
                      op.controls);
        return;
    }
    case GateKind::LevelSwap: {
        requireThat(op.levelA < dim && op.levelB < dim, "Simulator: swap level out of range");
        applyTwoLevel(state, op.target, op.levelA, op.levelB, Complex{0.0, 0.0},
                      Complex{1.0, 0.0}, Complex{1.0, 0.0}, Complex{0.0, 0.0}, op.controls);
        return;
    }
    case GateKind::Hadamard:
    case GateKind::Shift:
        applyDense(state, op.target, op.localMatrix(dim), op.controls);
        return;
    }
    detail::throwInternal("Simulator::apply: unknown gate kind");
}

StateVector Simulator::run(const Circuit& circuit, const StateVector& initial) {
    requireThat(circuit.radix() == initial.radix(),
                "Simulator::run: circuit and state registers differ");
    StateVector state = initial;
    for (const auto& op : circuit.operations()) {
        apply(state, op);
    }
    return state;
}

StateVector Simulator::runFromZero(const Circuit& circuit) {
    return run(circuit, StateVector(circuit.dimensions()));
}

double Simulator::preparationFidelity(const Circuit& circuit, const StateVector& target) {
    return target.fidelityWith(runFromZero(circuit));
}

} // namespace mqsp
