#include "mqsp/sim/simulator.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <vector>

namespace mqsp {

namespace {

/// Minimum work items per chunk when the gate kernels fan out over the
/// pool. Registers whose (block, inner) walk fits one grain run inline with
/// zero dispatch overhead, so small-register circuits behave exactly as the
/// single-threaded code did.
constexpr std::uint64_t kKernelGrain = 4096;

/// One precomputed control test: flat index `x` satisfies the control iff
/// (x / stride) % dim == level. Splitting the controls by stride lets the
/// inner loops test only the digits that can actually vary there, instead
/// of calling MixedRadix::digitAt per control per amplitude.
struct DigitCheck {
    std::uint64_t stride = 1;
    std::uint64_t dim = 2;
    std::uint64_t level = 0;
};

[[nodiscard]] bool satisfies(const std::vector<DigitCheck>& checks, std::uint64_t index) {
    for (const auto& check : checks) {
        if ((index / check.stride) % check.dim != check.level) {
            return false;
        }
    }
    return true;
}

/// The control tests of one gate, partitioned by where the controlled digit
/// lives relative to the target's (block, inner) decomposition: a control on
/// a more-significant qudit (stride >= blockSize) is constant per block; a
/// control on a less-significant qudit (stride < target stride) is constant
/// per inner offset. A control on the target itself (forbidden by Circuit,
/// but legal to hand to Simulator::apply directly) depends only on the fixed
/// level offset the kernel walks, so it collapses to a gate-level yes/no.
struct ControlSplit {
    std::vector<DigitCheck> perBlock;  ///< test against the block base index
    std::vector<DigitCheck> perInner;  ///< test against the inner offset
    bool neverFires = false;           ///< a target-site control missed the walked level
};

[[nodiscard]] ControlSplit splitControls(const MixedRadix& radix, std::size_t target,
                                         Level walkedLevel,
                                         const std::vector<Control>& controls) {
    const std::uint64_t targetStride = radix.strideAt(target);
    const std::uint64_t blockSize =
        targetStride * static_cast<std::uint64_t>(radix.dimensionAt(target));
    ControlSplit split;
    for (const auto& ctrl : controls) {
        // Qudit bounds mirror the digitAt() check of the historical walk; an
        // out-of-range *level* stays what it always was — a condition no
        // digit ever satisfies, i.e. a silent no-op gate.
        requireThat(ctrl.qudit < radix.numQudits(), "Simulator: control qudit out of range");
        if (ctrl.qudit == target) {
            if (ctrl.level != walkedLevel) {
                split.neverFires = true;
            }
            continue;
        }
        const DigitCheck check{radix.strideAt(ctrl.qudit),
                               static_cast<std::uint64_t>(radix.dimensionAt(ctrl.qudit)),
                               static_cast<std::uint64_t>(ctrl.level)};
        if (check.stride >= blockSize) {
            split.perBlock.push_back(check);
        } else {
            split.perInner.push_back(check);
        }
    }
    return split;
}

/// Apply a two-level update (rows/cols a,b of a 2x2 block) across the
/// register. `m00..m11` is the block in the (a, b) basis. The (block, inner)
/// pairs are independent, so they fan out over the thread pool; control
/// checks are hoisted to one test per block and cheap stride arithmetic per
/// inner offset.
void applyTwoLevel(StateVector& state, std::size_t target, Level a, Level b, Complex m00,
                   Complex m01, Complex m10, Complex m11,
                   const std::vector<Control>& controls) {
    const auto& radix = state.radix();
    const auto total = radix.totalDimension();
    const auto stride = radix.strideAt(target);
    const auto dim = radix.dimensionAt(target);
    auto& amps = state.amplitudes();
    // Walk indices whose target digit is `a`; the partner index differs only
    // in the target digit (a -> b).
    const ControlSplit split = splitControls(radix, target, a, controls);
    if (split.neverFires) {
        return;
    }
    const std::uint64_t offsetA = static_cast<std::uint64_t>(a) * stride;
    const std::uint64_t offsetB = static_cast<std::uint64_t>(b) * stride;
    const std::uint64_t blockSize = stride * dim;
    const std::uint64_t numPairs = (total / blockSize) * stride;
    parallel::parallelFor(0, numPairs, kKernelGrain, [&](std::uint64_t chunkBegin,
                                                         std::uint64_t chunkEnd) {
        std::uint64_t pair = chunkBegin;
        while (pair < chunkEnd) {
            const std::uint64_t block = pair / stride;
            const std::uint64_t blockBase = block * blockSize;
            const std::uint64_t segmentEnd =
                chunkEnd < (block + 1) * stride ? chunkEnd : (block + 1) * stride;
            if (!satisfies(split.perBlock, blockBase)) {
                pair = segmentEnd;
                continue;
            }
            for (; pair < segmentEnd; ++pair) {
                const std::uint64_t inner = pair - block * stride;
                if (!satisfies(split.perInner, inner)) {
                    continue;
                }
                const std::uint64_t idxA = blockBase + inner + offsetA;
                const std::uint64_t idxB = blockBase + inner + offsetB;
                const Complex va = amps[idxA];
                const Complex vb = amps[idxB];
                amps[idxA] = m00 * va + m01 * vb;
                amps[idxB] = m10 * va + m11 * vb;
            }
        }
    });
}

/// Apply a full dxd single-qudit matrix (Hadamard, Shift) across the
/// register. Each (block, inner) base owns its d-entry column, so bases fan
/// out over the pool with a per-chunk scratch column.
void applyDense(StateVector& state, std::size_t target, const DenseMatrix& matrix,
                const std::vector<Control>& controls) {
    const auto& radix = state.radix();
    const auto total = radix.totalDimension();
    const auto stride = radix.strideAt(target);
    const auto dim = radix.dimensionAt(target);
    auto& amps = state.amplitudes();
    // The historical dense walk tests controls against the base index, whose
    // target digit is 0.
    const ControlSplit split = splitControls(radix, target, 0, controls);
    if (split.neverFires) {
        return;
    }
    const std::uint64_t blockSize = stride * dim;
    const std::uint64_t numBases = (total / blockSize) * stride;
    parallel::parallelFor(0, numBases, kKernelGrain, [&](std::uint64_t chunkBegin,
                                                         std::uint64_t chunkEnd) {
        std::vector<Complex> scratch(dim);
        std::uint64_t item = chunkBegin;
        while (item < chunkEnd) {
            const std::uint64_t block = item / stride;
            const std::uint64_t blockBase = block * blockSize;
            const std::uint64_t segmentEnd =
                chunkEnd < (block + 1) * stride ? chunkEnd : (block + 1) * stride;
            if (!satisfies(split.perBlock, blockBase)) {
                item = segmentEnd;
                continue;
            }
            for (; item < segmentEnd; ++item) {
                const std::uint64_t inner = item - block * stride;
                if (!satisfies(split.perInner, inner)) {
                    continue;
                }
                const std::uint64_t base = blockBase + inner;
                for (Dimension k = 0; k < dim; ++k) {
                    scratch[k] = amps[base + static_cast<std::uint64_t>(k) * stride];
                }
                for (Dimension r = 0; r < dim; ++r) {
                    Complex acc{0.0, 0.0};
                    for (Dimension c = 0; c < dim; ++c) {
                        acc += matrix(r, c) * scratch[c];
                    }
                    amps[base + static_cast<std::uint64_t>(r) * stride] = acc;
                }
            }
        }
    });
}

} // namespace

void Simulator::apply(StateVector& state, const Operation& op) {
    const auto& radix = state.radix();
    requireThat(op.target < radix.numQudits(), "Simulator: operation target out of range");
    const Dimension dim = radix.dimensionAt(op.target);
    switch (op.kind) {
    case GateKind::GivensRotation: {
        requireThat(op.levelA < dim && op.levelB < dim, "Simulator: rotation level out of range");
        const DenseMatrix m = givensMatrix(2, 0, 1, op.theta, op.phi);
        applyTwoLevel(state, op.target, op.levelA, op.levelB, m(0, 0), m(0, 1), m(1, 0), m(1, 1),
                      op.controls);
        return;
    }
    case GateKind::PhaseRotation: {
        requireThat(op.levelA < dim && op.levelB < dim, "Simulator: phase level out of range");
        const DenseMatrix m = phaseMatrix(2, 0, 1, op.theta);
        applyTwoLevel(state, op.target, op.levelA, op.levelB, m(0, 0), m(0, 1), m(1, 0), m(1, 1),
                      op.controls);
        return;
    }
    case GateKind::LevelSwap: {
        requireThat(op.levelA < dim && op.levelB < dim, "Simulator: swap level out of range");
        applyTwoLevel(state, op.target, op.levelA, op.levelB, Complex{0.0, 0.0},
                      Complex{1.0, 0.0}, Complex{1.0, 0.0}, Complex{0.0, 0.0}, op.controls);
        return;
    }
    case GateKind::Hadamard:
    case GateKind::Shift:
        applyDense(state, op.target, op.localMatrix(dim), op.controls);
        return;
    }
    detail::throwInternal("Simulator::apply: unknown gate kind");
}

StateVector Simulator::run(const Circuit& circuit, const StateVector& initial) {
    requireThat(circuit.radix() == initial.radix(),
                "Simulator::run: circuit and state registers differ");
    StateVector state = initial;
    // Gates are sequential (each reads the previous one's output); the
    // parallelism lives inside each application's amplitude walk.
    for (const auto& op : circuit.operations()) {
        apply(state, op);
    }
    return state;
}

StateVector Simulator::runFromZero(const Circuit& circuit) {
    return run(circuit, StateVector(circuit.dimensions()));
}

double Simulator::preparationFidelity(const Circuit& circuit, const StateVector& target) {
    return target.fidelityWith(runFromZero(circuit));
}

} // namespace mqsp
