#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/statevec/state_vector.hpp"

#include <cstdint>

namespace mqsp {

/// Dense state-vector simulator for mixed-dimensional qudit circuits.
///
/// This is the verification substrate of the repository: every synthesized
/// circuit is replayed here and its output compared against the target state
/// (Table 1's "Fidelity" column). Multi-controlled two-level rotations are
/// applied in O(total_dimension) per gate without materializing the full
/// operator.
class Simulator {
public:
    /// Apply a single (possibly multi-controlled) operation in place.
    /// The state's register must match the operation's targets.
    static void apply(StateVector& state, const Operation& op);

    /// Run the whole circuit on a caller-provided initial state (copied).
    [[nodiscard]] static StateVector run(const Circuit& circuit, const StateVector& initial);

    /// Run the circuit on |0...0> — the state-preparation setting.
    [[nodiscard]] static StateVector runFromZero(const Circuit& circuit);

    /// Fidelity |<target|circuit(|0...0>)>|^2 — the verification metric.
    [[nodiscard]] static double preparationFidelity(const Circuit& circuit,
                                                    const StateVector& target);
};

} // namespace mqsp
