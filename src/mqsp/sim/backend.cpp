#include "mqsp/sim/backend.hpp"

#include "mqsp/mdd/matrix_dd.hpp"
#include "mqsp/sim/simulator.hpp"
#include "mqsp/support/error.hpp"

#include <cmath>
#include <string>
#include <utility>

namespace mqsp {

namespace {

/// Register ceiling of the dense *equivalence* check: it walks all ∏dims
/// columns of both unitaries, so it is quadratic where dense simulation is
/// linear (mirrors MatrixDD::toDenseMatrix's small-register limit).
constexpr std::uint64_t kDenseEquivalenceCeiling = 4096;

std::string formatAmplitudeCount(std::uint64_t count) {
    return std::to_string(count);
}

} // namespace

const char* backendName(BackendKind kind) noexcept {
    return kind == BackendKind::Dense ? "dense" : "dd";
}

BackendKind resolveBackendKind(const std::string& spec, std::uint64_t totalDimension,
                               std::uint64_t autoThreshold) {
    if (spec == "dense") {
        return BackendKind::Dense;
    }
    if (spec == "dd") {
        return BackendKind::Dd;
    }
    if (spec == "auto") {
        return totalDimension > autoThreshold ? BackendKind::Dd : BackendKind::Dense;
    }
    detail::throwInvalidArgument("unknown evaluation backend '" + spec +
                                 "' (expected dense, dd, or auto)");
}

// --- EvalState -------------------------------------------------------------

const MixedRadix& EvalState::radix() const {
    return isDense() ? std::get<StateVector>(value_).radix()
                     : std::get<DecisionDiagram>(value_).radix();
}

const StateVector& EvalState::dense() const {
    requireThat(isDense(), "EvalState::dense: state is a decision diagram");
    return std::get<StateVector>(value_);
}

StateVector& EvalState::dense() {
    requireThat(isDense(), "EvalState::dense: state is a decision diagram");
    return std::get<StateVector>(value_);
}

const DecisionDiagram& EvalState::diagram() const {
    requireThat(isDiagram(), "EvalState::diagram: state is a dense vector");
    return std::get<DecisionDiagram>(value_);
}

DecisionDiagram& EvalState::diagram() {
    requireThat(isDiagram(), "EvalState::diagram: state is a dense vector");
    return std::get<DecisionDiagram>(value_);
}

Complex EvalState::amplitudeOf(const Digits& digits) const {
    if (isDense()) {
        return dense().at(digits);
    }
    return diagram().amplitudeOf(digits);
}

double EvalState::normSquared() const {
    return isDense() ? dense().normSquared() : diagram().normSquared();
}

Complex EvalState::overlapWith(const EvalState& other) const {
    requireThat(radix() == other.radix(), "EvalState::overlapWith: registers differ");
    if (isDense() && other.isDense()) {
        return dense().innerProduct(other.dense());
    }
    if (isDiagram() && other.isDiagram()) {
        return diagram().innerProductWith(other.diagram());
    }
    // Mixed pair: lift the dense side into a diagram (linear in its size);
    // the diagram side is never expanded.
    if (isDiagram()) {
        return diagram().innerProductWith(DecisionDiagram::fromStateVector(other.dense()));
    }
    return DecisionDiagram::fromStateVector(dense()).innerProductWith(other.diagram());
}

double EvalState::fidelityWith(const EvalState& other) const {
    return squaredMagnitude(overlapWith(other));
}

DecisionDiagram EvalState::toDiagram() const {
    return isDiagram() ? diagram() : DecisionDiagram::fromStateVector(dense());
}

StateVector EvalState::toStateVector(std::uint64_t ceiling) const {
    if (isDense()) {
        return dense();
    }
    requireThat(totalDimension() <= ceiling,
                "EvalState::toStateVector: register has " +
                    formatAmplitudeCount(totalDimension()) +
                    " amplitudes, past the dense ceiling of " +
                    formatAmplitudeCount(ceiling) + " — keep it as a diagram");
    return diagram().toStateVector();
}

// --- EvaluationBackend -----------------------------------------------------

namespace {

/// Lift a target into the backend's session (when it has one) so repeated
/// overlaps against it are same-store traversals that resolve through the
/// session caches. Without a session the target passes through untouched.
EvalState liftTarget(const std::shared_ptr<dd::DdSession>& session, const EvalState& target) {
    if (session == nullptr) {
        return target;
    }
    if (target.isDiagram()) {
        return EvalState(session->intern(target.diagram()));
    }
    return EvalState(session->intern(DecisionDiagram::fromStateVector(target.dense())));
}

/// Session compute-cache counters, or zeros on a session-less backend.
dd::ComputeCacheStats cacheCounters(const std::shared_ptr<dd::DdSession>& session) {
    return session == nullptr ? dd::ComputeCacheStats{} : session->stats().cache;
}

std::uint64_t poolNodesOf(const std::shared_ptr<dd::DdSession>& session) {
    return session == nullptr ? 0 : session->stats().poolNodes;
}

/// Stamp the session-side observability (dd_nodes, cache deltas since
/// `before`) onto a report.
void stampSessionMetrics(VerifyReport& report, const std::shared_ptr<dd::DdSession>& session,
                         const dd::ComputeCacheStats& before) {
    if (session == nullptr) {
        return;
    }
    const dd::ComputeCacheStats after = cacheCounters(session);
    report.ddNodes = poolNodesOf(session);
    report.cacheLookups = after.lookups - before.lookups;
    report.cacheHits = after.hits - before.hits;
}

} // namespace

VerifyReport EvaluationBackend::verify(const VerifyRequest& request) const {
    VerifyReport report;
    if (request.circuit == nullptr || request.target == nullptr) {
        report.failed = true;
        report.error = "verify: null circuit or target";
        return report;
    }
    const std::shared_ptr<dd::DdSession> session = ddSession();
    const dd::ComputeCacheStats before = cacheCounters(session);
    report.ops = request.circuit->numOperations();
    try {
        const std::uint64_t repeats = request.repeat == 0 ? 1 : request.repeat;
        for (std::uint64_t run = 0; run < repeats; ++run) {
            report.fidelity = preparationFidelity(*request.circuit, *request.target);
        }
    } catch (const std::exception& error) {
        report.failed = true;
        report.error = error.what();
    }
    stampSessionMetrics(report, session, before);
    return report;
}

std::vector<VerifyReport>
EvaluationBackend::verifyBatch(const std::vector<VerifyRequest>& items) const {
    std::vector<VerifyReport> results(items.size());
    // Grain 1: every item is its own unit of work. With one item (or one
    // configured thread) this runs inline on the caller — *outside* any
    // parallel region — so a dense single-item batch still parallelizes its
    // amplitude walks; with many items the pool workers each take items
    // whole and the nested kernels run serially on their worker.
    const std::shared_ptr<dd::DdSession> session = ddSession();
    const auto runItem = [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
            if (items[i].circuit == nullptr || items[i].target == nullptr) {
                // A null item is that item's failure, not the batch's: a
                // throw here would tear down every sibling mid-flight.
                results[i].failed = true;
                results[i].error = "verifyBatch: null circuit or target";
                continue;
            }
            const dd::ComputeCacheStats before = cacheCounters(session);
            results[i].ops = items[i].circuit->numOperations();
            try {
                const std::uint64_t repeats = items[i].repeat == 0 ? 1 : items[i].repeat;
                for (std::uint64_t run = 0; run < repeats; ++run) {
                    results[i].fidelity =
                        preparationFidelity(*items[i].circuit, *items[i].target);
                }
            } catch (const std::exception& error) {
                results[i].failed = true;
                results[i].error = error.what();
            }
            stampSessionMetrics(results[i], session, before);
        }
    };
    // Pin the process width to this backend's configuration for the whole
    // batch: a 1-thread backend runs items (and their kernels) serially, a
    // 4-thread one fans the items out 4-wide.
    const parallel::ScopedThreadCount scope(executionConfig().threads);
    parallel::parallelFor(std::uint64_t{0}, items.size(), 1, runItem);
    return results;
}

VerifyReport EvaluationBackend::verifyStream(OperationSource& source,
                                             const VerifyRequest& request,
                                             EvalState* finalState) const {
    const parallel::ScopedThreadCount scope(executionConfig().threads);
    const std::shared_ptr<dd::DdSession> session = ddSession();
    const dd::ComputeCacheStats before = cacheCounters(session);
    VerifyReport report;
    EvalState state = zeroState(source.dimensions());
    // Lift the target once so every checkpoint overlap is a same-store
    // traversal; the per-checkpoint fidelity then reuses whatever the
    // replay already interned.
    EvalState lifted;
    if (request.target != nullptr) {
        lifted = liftTarget(session, *request.target);
    }
    const auto fidelityNow = [&]() {
        return request.target == nullptr ? state.normSquared() : lifted.fidelityWith(state);
    };
    while (auto op = source.next()) {
        apply(state, *op);
        ++report.ops;
        if (request.checkpointInterval != 0 &&
            report.ops % request.checkpointInterval == 0) {
            report.checkpoints.push_back({report.ops, fidelityNow(), poolNodesOf(session)});
        }
    }
    report.fidelity = fidelityNow();
    stampSessionMetrics(report, session, before);
    if (finalState != nullptr) {
        *finalState = std::move(state);
    }
    return report;
}

VerifyReport EvaluationBackend::reverifyAppended(const Circuit& circuit, std::uint64_t fromOp,
                                                 EvalState& replayed,
                                                 const EvalState& target) const {
    requireThat(fromOp <= circuit.numOperations(),
                "reverifyAppended: replay cursor is past the end of the circuit");
    const parallel::ScopedThreadCount scope(executionConfig().threads);
    const std::shared_ptr<dd::DdSession> session = ddSession();
    const dd::ComputeCacheStats before = cacheCounters(session);
    VerifyReport report;
    for (std::uint64_t i = fromOp; i < circuit.numOperations(); ++i) {
        apply(replayed, circuit[static_cast<std::size_t>(i)]);
        ++report.ops;
    }
    report.fidelity = liftTarget(session, target).fidelityWith(replayed);
    stampSessionMetrics(report, session, before);
    return report;
}

// --- DenseBackend ----------------------------------------------------------

void DenseBackend::requireWithinCeiling(std::uint64_t totalDimension,
                                        const char* what) const {
    requireThat(totalDimension <= maxAmplitudes_,
                std::string(what) + ": register has " +
                    formatAmplitudeCount(totalDimension) +
                    " amplitudes, past the dense backend ceiling of " +
                    formatAmplitudeCount(maxAmplitudes_) +
                    " — use the dd backend (--backend dd)");
}

EvalState DenseBackend::zeroState(const Dimensions& dims) const {
    const MixedRadix radix(dims);
    requireWithinCeiling(radix.totalDimension(), "DenseBackend::zeroState");
    return EvalState(StateVector::basis(dims, Digits(dims.size(), 0)));
}

EvalState DenseBackend::runFromZero(const Circuit& circuit) const {
    requireWithinCeiling(circuit.radix().totalDimension(), "DenseBackend::runFromZero");
    const parallel::ScopedThreadCount scope(executionConfig().threads);
    return EvalState(Simulator::runFromZero(circuit));
}

void DenseBackend::apply(EvalState& state, const Operation& op) const {
    Simulator::apply(state.dense(), op);
}

double DenseBackend::preparationFidelity(const Circuit& circuit,
                                         const EvalState& target) const {
    requireWithinCeiling(circuit.radix().totalDimension(),
                         "DenseBackend::preparationFidelity");
    const parallel::ScopedThreadCount scope(executionConfig().threads);
    if (target.isDense()) {
        return Simulator::preparationFidelity(circuit, target.dense());
    }
    return Simulator::preparationFidelity(circuit, target.toStateVector(maxAmplitudes_));
}

bool DenseBackend::circuitsEquivalent(const Circuit& a, const Circuit& b,
                                      double tol) const {
    requireThat(a.radix() == b.radix(),
                "DenseBackend::circuitsEquivalent: registers differ");
    const parallel::ScopedThreadCount scope(executionConfig().threads);
    const std::uint64_t total = a.radix().totalDimension();
    requireThat(total <= kDenseEquivalenceCeiling,
                "DenseBackend::circuitsEquivalent: register has " +
                    formatAmplitudeCount(total) +
                    " amplitudes; dense equivalence walks every column (limit " +
                    formatAmplitudeCount(kDenseEquivalenceCeiling) +
                    ") — use the dd backend");

    // Column-by-column comparison of the two unitaries up to one global
    // phase. The phase is fixed by the *largest*-magnitude entry of the
    // first column — for a unitary column (norm 1) that entry is at least
    // 1/sqrt(total), far above tol, so the quotient is never dominated by
    // rounding noise the way a barely-above-tolerance entry would be.
    Complex phase{0.0, 0.0};
    bool havePhase = false;
    for (std::uint64_t column = 0; column < total; ++column) {
        const StateVector basis =
            StateVector::basis(a.dimensions(), a.radix().digitsOf(column));
        const StateVector columnA = Simulator::run(a, basis);
        const StateVector columnB = Simulator::run(b, basis);
        if (!havePhase) {
            std::uint64_t anchor = 0;
            double best = 0.0;
            for (std::uint64_t row = 0; row < total; ++row) {
                const double magnitude = std::abs(columnA[row]);
                if (magnitude > best) {
                    best = magnitude;
                    anchor = row;
                }
            }
            if (best > tol) {
                phase = columnB[anchor] / columnA[anchor];
                if (std::abs(std::abs(phase) - 1.0) > tol) {
                    return false;
                }
                havePhase = true;
            } else {
                // Column A vanishes (non-unitary input); B must vanish too.
                for (std::uint64_t row = 0; row < total; ++row) {
                    if (std::abs(columnB[row]) > tol) {
                        return false;
                    }
                }
                continue;
            }
        }
        for (std::uint64_t row = 0; row < total; ++row) {
            if (std::abs(columnB[row] - phase * columnA[row]) > tol) {
                return false;
            }
        }
    }
    return true;
}

// --- DdBackend -------------------------------------------------------------

DdBackend::DdBackend(double tolerance)
    : tolerance_(tolerance),
      session_(std::make_shared<dd::DdSession>(tolerance)),
      matrixStore_(std::make_shared<MatrixDdStore>(
          tolerance, dd::UniqueTable::Concurrency::Sharded)) {}

DdBackend::DdBackend(double tolerance, parallel::ExecutionConfig config)
    : EvaluationBackend(config),
      tolerance_(tolerance),
      session_(std::make_shared<dd::DdSession>(tolerance)),
      matrixStore_(std::make_shared<MatrixDdStore>(
          tolerance, dd::UniqueTable::Concurrency::Sharded)) {}

EvalState DdBackend::zeroState(const Dimensions& dims) const {
    return EvalState(session_->zeroState(dims));
}

EvalState DdBackend::runFromZero(const Circuit& circuit) const {
    // Pin the configured width so the intra-diagram apply fan-out
    // (dd/apply.cpp) sees it. No-op when called from inside a parallel
    // region (e.g. batch workers), where the fan-out stays serial anyway.
    const parallel::ScopedThreadCount threadScope(executionConfig().threads);
    return EvalState(session_->simulate(circuit));
}

void DdBackend::apply(EvalState& state, const Operation& op) const {
    // Per-gate hygiene on a *private* diagram: applyOperation's
    // copy-on-write rebuild does not hash-cons there, so without re-sharing
    // and compaction a sequence of apply() calls would grow the diagram
    // toward the full exponential tree on DAG-shaped states (e.g. the
    // uniform superposition mid-preparation). On a session-backed diagram
    // interning already keeps every allocation canonical and both calls
    // are structural no-ops.
    DecisionDiagram& diagram = state.diagram();
    diagram.applyOperation(op, tolerance_);
    diagram.reduce(tolerance_);
    diagram.garbageCollect();
}

double DdBackend::preparationFidelity(const Circuit& circuit,
                                      const EvalState& target) const {
    // Concurrent batch items land here on pool workers and intern into the
    // same shared session: the table is sharded and safe for this
    // (dd/unique_table.hpp), and cross-item sharing is the point.
    // Single-item callers get the intra-diagram apply fan-out instead: pin
    // the configured width (a no-op on pool workers, which are already
    // inside a region — there the fan-out stays serial).
    const parallel::ScopedThreadCount threadScope(executionConfig().threads);
    const std::shared_ptr<dd::DdSession>& session = session_;
    const DecisionDiagram prepared = session->simulate(circuit);
    // Interning the target into the same session makes the overlap a
    // same-store traversal: sub-trees the replay reproduced exactly compare
    // by NodeRef identity instead of by descent.
    const DecisionDiagram targetDiagram =
        target.isDiagram() ? session->intern(target.diagram())
                           : session->intern(DecisionDiagram::fromStateVector(target.dense()));
    return squaredMagnitude(targetDiagram.innerProductWith(prepared));
}

bool DdBackend::circuitsEquivalent(const Circuit& a, const Circuit& b, double tol) const {
    requireThat(a.radix() == b.radix(), "DdBackend::circuitsEquivalent: registers differ");
    // Both sides compile onto the backend's shared operator store (a
    // Sharded MatrixDdStore, so concurrent batch items intern safely):
    // identity scaffolding and common gate structure are built once, and
    // two circuits that reduce to the same canonical operator
    // short-circuit on root identity. The pinned width reaches multiply's
    // intra-diagram fan-out (mdd/matrix_dd.cpp).
    const parallel::ScopedThreadCount threadScope(executionConfig().threads);
    const MatrixDD lhs = MatrixDD::fromCircuit(a, tolerance_, matrixStore_);
    const MatrixDD rhs = MatrixDD::fromCircuit(b, tolerance_, matrixStore_);
    return lhs.equivalentUpToGlobalPhase(rhs, tol);
}

// --- factories -------------------------------------------------------------

std::unique_ptr<EvaluationBackend> makeBackend(BackendKind kind) {
    return makeBackend(kind, parallel::globalExecutionConfig());
}

std::unique_ptr<EvaluationBackend> makeBackend(BackendKind kind,
                                               parallel::ExecutionConfig config) {
    if (kind == BackendKind::Dense) {
        return std::make_unique<DenseBackend>(kDenseBackendCeiling, config);
    }
    return std::make_unique<DdBackend>(Tolerance::kDefault, config);
}

std::unique_ptr<EvaluationBackend> makeBackend(const std::string& spec,
                                               std::uint64_t totalDimension) {
    return makeBackend(resolveBackendKind(spec, totalDimension));
}

} // namespace mqsp
