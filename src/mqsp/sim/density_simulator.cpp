#include "mqsp/sim/density_simulator.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/support/error.hpp"

#include <vector>

namespace mqsp {

DensityMatrix DensityMatrix::fromPure(const StateVector& state) {
    DensityMatrix rho;
    rho.radix_ = state.radix();
    const auto dim = static_cast<std::size_t>(state.size());
    requireThat(dim <= 1024, "DensityMatrix: register too large for dense simulation");
    rho.rho_ = DenseMatrix(dim);
    for (std::size_t i = 0; i < dim; ++i) {
        if (state[i] == Complex{0.0, 0.0}) {
            continue;
        }
        for (std::size_t j = 0; j < dim; ++j) {
            rho.rho_(i, j) = state[i] * std::conj(state[j]);
        }
    }
    return rho;
}

DensityMatrix::DensityMatrix(Dimensions dimensions)
    : radix_(std::move(dimensions)),
      rho_([this] {
          requireThat(radix_.totalDimension() <= 1024,
                      "DensityMatrix: register too large for dense simulation");
          DenseMatrix m(static_cast<std::size_t>(radix_.totalDimension()));
          m(0, 0) = Complex{1.0, 0.0};
          return m;
      }()) {}

double DensityMatrix::trace() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < rho_.size(); ++i) {
        sum += rho_(i, i).real();
    }
    return sum;
}

double DensityMatrix::purity() const {
    // Tr(rho^2) = sum |rho_ij|^2 for Hermitian rho.
    double sum = 0.0;
    for (std::size_t i = 0; i < rho_.size(); ++i) {
        for (std::size_t j = 0; j < rho_.size(); ++j) {
            sum += squaredMagnitude(rho_(i, j));
        }
    }
    return sum;
}

double DensityMatrix::fidelityWithPure(const StateVector& target) const {
    requireThat(target.radix() == radix_,
                "DensityMatrix::fidelityWithPure: register mismatch");
    Complex sum{0.0, 0.0};
    const auto dim = static_cast<std::size_t>(size());
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
            sum += std::conj(target[i]) * rho_(i, j) * target[j];
        }
    }
    return sum.real();
}

void NoisySimulator::applyUnitary(DensityMatrix& rho, const Operation& op) {
    const auto dim = static_cast<std::size_t>(rho.size());
    DenseMatrix& m = rho.matrix();
    const Dimensions& dims = rho.radix().dimensions();

    // rho -> U rho: apply the op to every column.
    for (std::size_t col = 0; col < dim; ++col) {
        std::vector<Complex> column(dim);
        for (std::size_t row = 0; row < dim; ++row) {
            column[row] = m(row, col);
        }
        StateVector vec(dims, std::move(column));
        Simulator::apply(vec, op);
        for (std::size_t row = 0; row < dim; ++row) {
            m(row, col) = vec[row];
        }
    }
    // (U rho) -> (U rho) U^dagger: conjugate rows, apply, conjugate back
    // (x -> conj(U conj(x)) implements x -> U* x = (x^T U^dagger)^T).
    for (std::size_t row = 0; row < dim; ++row) {
        std::vector<Complex> rowVec(dim);
        for (std::size_t col = 0; col < dim; ++col) {
            rowVec[col] = std::conj(m(row, col));
        }
        StateVector vec(dims, std::move(rowVec));
        Simulator::apply(vec, op);
        for (std::size_t col = 0; col < dim; ++col) {
            m(row, col) = std::conj(vec[col]);
        }
    }
}

void NoisySimulator::applyDepolarizing(DensityMatrix& rho, std::size_t site,
                                       double strength) {
    requireThat(strength >= 0.0 && strength <= 1.0,
                "applyDepolarizing: strength must lie in [0, 1]");
    if (strength == 0.0) {
        return;
    }
    const MixedRadix& radix = rho.radix();
    requireThat(site < radix.numQudits(), "applyDepolarizing: site out of range");
    const Dimension d = radix.dimensionAt(site);
    const auto stride = radix.strideAt(site);
    const auto total = radix.totalDimension();
    DenseMatrix& m = rho.matrix();

    // Phi(rho)[i, j] = delta_{digit(i), digit(j)} * (1/d) sum_k rho[i_k, j_k]
    // where i_k replaces the site digit with k. Entries whose site digits
    // differ are killed; matching-digit entries are replaced by the average
    // over the diagonal shift.
    const std::uint64_t blockSize = stride * d;
    for (std::uint64_t bi = 0; bi < total; bi += blockSize) {
        for (std::uint64_t ii = 0; ii < stride; ++ii) {
            for (std::uint64_t bj = 0; bj < total; bj += blockSize) {
                for (std::uint64_t jj = 0; jj < stride; ++jj) {
                    const std::uint64_t i0 = bi + ii;
                    const std::uint64_t j0 = bj + jj;
                    Complex average{0.0, 0.0};
                    for (Dimension k = 0; k < d; ++k) {
                        average += m(static_cast<std::size_t>(i0 + k * stride),
                                     static_cast<std::size_t>(j0 + k * stride));
                    }
                    average /= static_cast<double>(d);
                    for (Dimension ki = 0; ki < d; ++ki) {
                        for (Dimension kj = 0; kj < d; ++kj) {
                            const auto i = static_cast<std::size_t>(i0 + ki * stride);
                            const auto j = static_cast<std::size_t>(j0 + kj * stride);
                            const Complex phi =
                                (ki == kj) ? average : Complex{0.0, 0.0};
                            m(i, j) = (1.0 - strength) * m(i, j) + strength * phi;
                        }
                    }
                }
            }
        }
    }
}

DensityMatrix NoisySimulator::run(const Circuit& circuit, const NoiseModel& noise) {
    DensityMatrix rho(circuit.dimensions());
    for (const auto& op : circuit.operations()) {
        applyUnitary(rho, op);
        // One noise event per op on its target, at the op-class rate — the
        // same accounting estimateCircuitFidelity uses for k <= 1 controls
        // (for k >= 2 the estimator charges the decomposition cost instead
        // and is the more pessimistic of the two).
        const double strength =
            op.controls.empty() ? noise.singleQuditError : noise.twoQuditError;
        applyDepolarizing(rho, op.target, strength);
    }
    return rho;
}

} // namespace mqsp
