#include "mqsp/sim/density_simulator.hpp"

#include "mqsp/sim/simulator.hpp"
#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <algorithm>
#include <vector>

namespace mqsp {

namespace {

/// Grain of the density-matrix reductions (flattened (i, j) entries): the
/// same ballpark as the state-vector kernels. Chunk boundaries are fixed by
/// the grain alone, so every reduction below is bit-identical across thread
/// counts — including 1 — by the parallelReduce contract.
constexpr std::uint64_t kReduceGrain = 4096;

/// Grain for sweeps whose items are whole columns/rows/blocks of `work`
/// amplitudes each: target ~4096 amplitudes per chunk so small matrices
/// run inline and large ones amortize the dispatch.
[[nodiscard]] std::uint64_t sweepGrain(std::uint64_t work) noexcept {
    return std::max<std::uint64_t>(1, kReduceGrain / std::max<std::uint64_t>(1, work));
}

} // namespace

DensityMatrix DensityMatrix::fromPure(const StateVector& state) {
    DensityMatrix rho;
    rho.radix_ = state.radix();
    const auto dim = static_cast<std::size_t>(state.size());
    requireThat(dim <= 1024, "DensityMatrix: register too large for dense simulation");
    rho.rho_ = DenseMatrix(dim);
    for (std::size_t i = 0; i < dim; ++i) {
        if (state[i] == Complex{0.0, 0.0}) {
            continue;
        }
        for (std::size_t j = 0; j < dim; ++j) {
            rho.rho_(i, j) = state[i] * std::conj(state[j]);
        }
    }
    return rho;
}

DensityMatrix::DensityMatrix(Dimensions dimensions)
    : radix_(std::move(dimensions)),
      rho_([this] {
          requireThat(radix_.totalDimension() <= 1024,
                      "DensityMatrix: register too large for dense simulation");
          DenseMatrix m(static_cast<std::size_t>(radix_.totalDimension()));
          m(0, 0) = Complex{1.0, 0.0};
          return m;
      }()) {}

double DensityMatrix::trace() const {
    return parallel::parallelReduce<double>(
        0, rho_.size(), kReduceGrain, 0.0,
        [&](std::uint64_t begin, std::uint64_t end) {
            double partial = 0.0;
            for (std::uint64_t i = begin; i < end; ++i) {
                partial += rho_(static_cast<std::size_t>(i), static_cast<std::size_t>(i))
                               .real();
            }
            return partial;
        },
        [](double acc, double partial) { return acc + partial; });
}

double DensityMatrix::purity() const {
    // Tr(rho^2) = sum |rho_ij|^2 for Hermitian rho, reduced over the
    // flattened row-major entries (the historical i-outer, j-inner order).
    const auto dim = static_cast<std::uint64_t>(rho_.size());
    return parallel::parallelReduce<double>(
        0, dim * dim, kReduceGrain, 0.0,
        [&](std::uint64_t begin, std::uint64_t end) {
            double partial = 0.0;
            for (std::uint64_t idx = begin; idx < end; ++idx) {
                partial += squaredMagnitude(rho_(static_cast<std::size_t>(idx / dim),
                                                 static_cast<std::size_t>(idx % dim)));
            }
            return partial;
        },
        [](double acc, double partial) { return acc + partial; });
}

double DensityMatrix::fidelityWithPure(const StateVector& target) const {
    requireThat(target.radix() == radix_,
                "DensityMatrix::fidelityWithPure: register mismatch");
    const auto dim = static_cast<std::uint64_t>(size());
    const Complex sum = parallel::parallelReduce<Complex>(
        0, dim * dim, kReduceGrain, Complex{0.0, 0.0},
        [&](std::uint64_t begin, std::uint64_t end) {
            Complex partial{0.0, 0.0};
            for (std::uint64_t idx = begin; idx < end; ++idx) {
                const auto i = static_cast<std::size_t>(idx / dim);
                const auto j = static_cast<std::size_t>(idx % dim);
                partial += std::conj(target[i]) * rho_(i, j) * target[j];
            }
            return partial;
        },
        [](Complex acc, Complex partial) { return acc + partial; });
    return sum.real();
}

void NoisySimulator::applyUnitary(DensityMatrix& rho, const Operation& op) {
    const auto dim = static_cast<std::size_t>(rho.size());
    DenseMatrix& m = rho.matrix();
    const Dimensions& dims = rho.radix().dimensions();
    const std::uint64_t grain = sweepGrain(dim);

    // rho -> U rho: apply the op to every column. Columns are independent
    // (each chunk owns its columns' entries outright), so the sweep fans
    // out; each column's Simulator::apply then runs inline on its worker
    // (nested-use refusal) in the historical amplitude order, keeping every
    // entry bit-identical across thread counts.
    parallel::parallelFor(0, dim, grain, [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t col = begin; col < end; ++col) {
            std::vector<Complex> column(dim);
            for (std::size_t row = 0; row < dim; ++row) {
                column[row] = m(row, static_cast<std::size_t>(col));
            }
            StateVector vec(dims, std::move(column));
            Simulator::apply(vec, op);
            for (std::size_t row = 0; row < dim; ++row) {
                m(row, static_cast<std::size_t>(col)) = vec[row];
            }
        }
    });
    // (U rho) -> (U rho) U^dagger: conjugate rows, apply, conjugate back
    // (x -> conj(U conj(x)) implements x -> U* x = (x^T U^dagger)^T).
    // parallelFor is a barrier, so the row sweep reads the finished U rho.
    parallel::parallelFor(0, dim, grain, [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t row = begin; row < end; ++row) {
            std::vector<Complex> rowVec(dim);
            for (std::size_t col = 0; col < dim; ++col) {
                rowVec[col] = std::conj(m(static_cast<std::size_t>(row), col));
            }
            StateVector vec(dims, std::move(rowVec));
            Simulator::apply(vec, op);
            for (std::size_t col = 0; col < dim; ++col) {
                m(static_cast<std::size_t>(row), col) = std::conj(vec[col]);
            }
        }
    });
}

void NoisySimulator::applyDepolarizing(DensityMatrix& rho, std::size_t site,
                                       double strength) {
    requireThat(strength >= 0.0 && strength <= 1.0,
                "applyDepolarizing: strength must lie in [0, 1]");
    if (strength == 0.0) {
        return;
    }
    const MixedRadix& radix = rho.radix();
    requireThat(site < radix.numQudits(), "applyDepolarizing: site out of range");
    const Dimension d = radix.dimensionAt(site);
    const auto stride = radix.strideAt(site);
    const auto total = radix.totalDimension();
    DenseMatrix& m = rho.matrix();

    // Phi(rho)[i, j] = delta_{digit(i), digit(j)} * (1/d) sum_k rho[i_k, j_k]
    // where i_k replaces the site digit with k. Entries whose site digits
    // differ are killed; matching-digit entries are replaced by the average
    // over the diagonal shift.
    //
    // The (bi, ii) x (bj, jj) nest flattens to base-pair items (the same
    // flattening trick as the state-vector kernels in simulator.cpp): base
    // index r encodes (block r / stride, inner r % stride) and each item
    // owns its d x d entry set {(i0 + ki*stride, j0 + kj*stride)} outright —
    // distinct items touch disjoint entries, so the sweep fans out with no
    // synchronization and each item computes exactly the historical
    // arithmetic in the historical order.
    const std::uint64_t blockSize = stride * d;
    const std::uint64_t bases = (total / blockSize) * stride;
    const auto baseAt = [blockSize, stride](std::uint64_t r) {
        return (r / stride) * blockSize + (r % stride);
    };
    const std::uint64_t grain =
        sweepGrain(static_cast<std::uint64_t>(d) * static_cast<std::uint64_t>(d));
    parallel::parallelFor(
        0, bases * bases, grain, [&](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t item = begin; item < end; ++item) {
                const std::uint64_t i0 = baseAt(item / bases);
                const std::uint64_t j0 = baseAt(item % bases);
                Complex average{0.0, 0.0};
                for (Dimension k = 0; k < d; ++k) {
                    average += m(static_cast<std::size_t>(i0 + k * stride),
                                 static_cast<std::size_t>(j0 + k * stride));
                }
                average /= static_cast<double>(d);
                for (Dimension ki = 0; ki < d; ++ki) {
                    for (Dimension kj = 0; kj < d; ++kj) {
                        const auto i = static_cast<std::size_t>(i0 + ki * stride);
                        const auto j = static_cast<std::size_t>(j0 + kj * stride);
                        const Complex phi = (ki == kj) ? average : Complex{0.0, 0.0};
                        m(i, j) = (1.0 - strength) * m(i, j) + strength * phi;
                    }
                }
            }
        });
}

DensityMatrix NoisySimulator::run(const Circuit& circuit, const NoiseModel& noise) const {
    const parallel::ScopedThreadCount threadScope(config_.threads);
    DensityMatrix rho(circuit.dimensions());
    for (const auto& op : circuit.operations()) {
        applyUnitary(rho, op);
        // One noise event per op on its target, at the op-class rate — the
        // same accounting estimateCircuitFidelity uses for k <= 1 controls
        // (for k >= 2 the estimator charges the decomposition cost instead
        // and is the more pessimistic of the two).
        const double strength =
            op.controls.empty() ? noise.singleQuditError : noise.twoQuditError;
        applyDepolarizing(rho, op.target, strength);
    }
    return rho;
}

} // namespace mqsp
