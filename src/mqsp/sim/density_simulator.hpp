#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/circuit/matrix.hpp"
#include "mqsp/hardware/architecture.hpp"
#include "mqsp/statevec/state_vector.hpp"

#include <cstdint>

namespace mqsp {

/// A mixed state of a mixed-dimensional register, stored densely. Memory is
/// quadratic in the Hilbert dimension, so this is for the small registers
/// where noisy verification is feasible (total dimension <= a few hundred).
class DensityMatrix {
public:
    DensityMatrix() = default;

    /// rho = |0...0><0...0| on the register.
    explicit DensityMatrix(Dimensions dimensions);

    /// rho = |psi><psi|.
    [[nodiscard]] static DensityMatrix fromPure(const StateVector& state);

    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const DenseMatrix& matrix() const noexcept { return rho_; }
    [[nodiscard]] DenseMatrix& matrix() noexcept { return rho_; }
    [[nodiscard]] std::uint64_t size() const noexcept { return radix_.totalDimension(); }

    /// Tr(rho) — 1 for a valid state (trace is preserved by all channels
    /// implemented here).
    [[nodiscard]] double trace() const;

    /// Tr(rho^2) — 1 iff pure.
    [[nodiscard]] double purity() const;

    /// <psi| rho |psi> — the fidelity against a pure target, the quantity
    /// the NoiseModel-based estimator (hardware/router.hpp) predicts.
    [[nodiscard]] double fidelityWithPure(const StateVector& target) const;

private:
    MixedRadix radix_;
    DenseMatrix rho_;
};

/// Density-matrix simulator with a depolarizing noise channel after every
/// gate. This is the empirical check behind estimateCircuitFidelity: for
/// small error rates the simulated fidelity approaches the product of the
/// per-op (1 - eps) factors.
class NoisySimulator {
public:
    /// rho -> U rho U^dagger for one (possibly multi-controlled) operation.
    static void applyUnitary(DensityMatrix& rho, const Operation& op);

    /// Local depolarizing channel on one site:
    /// rho -> (1 - strength) rho + strength * (I_d / d) (x) Tr_site(rho).
    static void applyDepolarizing(DensityMatrix& rho, std::size_t site, double strength);

    /// Run the circuit from |0...0>: each op is applied unitarily, followed
    /// by one depolarizing noise event on its target (the single-qudit rate
    /// for local ops, the two-qudit rate for controlled ops) — the same
    /// per-op accounting as estimateCircuitFidelity.
    [[nodiscard]] static DensityMatrix run(const Circuit& circuit, const NoiseModel& noise);
};

} // namespace mqsp
