#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/circuit/matrix.hpp"
#include "mqsp/hardware/architecture.hpp"
#include "mqsp/statevec/state_vector.hpp"
#include "mqsp/support/parallel.hpp"

#include <cstdint>

namespace mqsp {

/// A mixed state of a mixed-dimensional register, stored densely. Memory is
/// quadratic in the Hilbert dimension, so this is for the small registers
/// where noisy verification is feasible (total dimension <= a few hundred).
class DensityMatrix {
public:
    DensityMatrix() = default;

    /// rho = |0...0><0...0| on the register.
    explicit DensityMatrix(Dimensions dimensions);

    /// rho = |psi><psi|.
    [[nodiscard]] static DensityMatrix fromPure(const StateVector& state);

    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const DenseMatrix& matrix() const noexcept { return rho_; }
    [[nodiscard]] DenseMatrix& matrix() noexcept { return rho_; }
    [[nodiscard]] std::uint64_t size() const noexcept { return radix_.totalDimension(); }

    /// Tr(rho) — 1 for a valid state (trace is preserved by all channels
    /// implemented here). An ordered-chunk reduction: bit-identical at any
    /// thread count.
    [[nodiscard]] double trace() const;

    /// Tr(rho^2) — 1 iff pure. Ordered-chunk reduction over the flattened
    /// entries; bit-identical at any thread count.
    [[nodiscard]] double purity() const;

    /// <psi| rho |psi> — the fidelity against a pure target, the quantity
    /// the NoiseModel-based estimator (hardware/router.hpp) predicts.
    /// Ordered-chunk reduction; bit-identical at any thread count.
    [[nodiscard]] double fidelityWithPure(const StateVector& target) const;

private:
    MixedRadix radix_;
    DenseMatrix rho_;
};

/// Density-matrix simulator with a depolarizing noise channel after every
/// gate. This is the empirical check behind estimateCircuitFidelity: for
/// small error rates the simulated fidelity approaches the product of the
/// per-op (1 - eps) factors.
///
/// Threading mirrors the evaluation backends (sim/backend.hpp): the
/// simulator carries an ExecutionConfig (default: a snapshot of the
/// process-wide one at construction; `threads == 0` = follow the ambient
/// setting) and `run` pins the process width to it for the whole replay.
/// The kernels parallelize the column/row sweeps of `applyUnitary` and the
/// disjoint (i, j) blocks of `applyDepolarizing`; every write set is
/// disjoint and every accumulation ordered-chunk, so results are
/// bit-identical across thread counts. The static per-channel primitives
/// follow the ambient width (like `Simulator::apply`).
class NoisySimulator {
public:
    NoisySimulator() : config_(parallel::globalExecutionConfig()) {}
    explicit NoisySimulator(parallel::ExecutionConfig config) : config_(config) {}

    /// The execution configuration this simulator was constructed under.
    [[nodiscard]] const parallel::ExecutionConfig& executionConfig() const noexcept {
        return config_;
    }

    /// rho -> U rho U^dagger for one (possibly multi-controlled) operation.
    static void applyUnitary(DensityMatrix& rho, const Operation& op);

    /// Local depolarizing channel on one site:
    /// rho -> (1 - strength) rho + strength * (I_d / d) (x) Tr_site(rho).
    static void applyDepolarizing(DensityMatrix& rho, std::size_t site, double strength);

    /// Run the circuit from |0...0>: each op is applied unitarily, followed
    /// by one depolarizing noise event on its target (the single-qudit rate
    /// for local ops, the two-qudit rate for controlled ops) — the same
    /// per-op accounting as estimateCircuitFidelity. Pins the process width
    /// to this simulator's configuration for the whole replay.
    [[nodiscard]] DensityMatrix run(const Circuit& circuit, const NoiseModel& noise) const;

private:
    parallel::ExecutionConfig config_;
};

} // namespace mqsp
