#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace mqsp {

namespace {

/// A weighted reference to a sub-tree; the building block of DD addition.
struct WeightedEdge {
    NodeRef node = kNoNode;
    Complex weight{0.0, 0.0};

    [[nodiscard]] bool isZero(double tol) const {
        return node == kNoNode || approxZero(weight, tol);
    }
};

} // namespace

DecisionDiagram DecisionDiagram::zeroState(const Dimensions& dims) {
    return fromStateVector(StateVector(dims));
}

void DecisionDiagram::applyOperation(const Operation& op, double tol) {
    requireThat(op.target < radix_.numQudits(), "applyOperation: target out of range");
    for (const auto& ctrl : op.controls) {
        requireThat(ctrl.qudit < radix_.numQudits(),
                    "applyOperation: control out of range");
        requireThat(ctrl.qudit < op.target,
                    "applyOperation: controls must be more significant than the target "
                    "(true for all synthesized preparation circuits)");
        requireThat(ctrl.level < radix_.dimensionAt(ctrl.qudit),
                    "applyOperation: control level out of range");
    }
    if (root_ == kNoNode) {
        return; // the zero vector is fixed by every linear map
    }

    const Dimension targetDim = radix_.dimensionAt(op.target);
    const DenseMatrix local = op.localMatrix(targetDim);

    // Normalized addition of weighted sub-trees (the classic DD add). The
    // result edge's weight carries the norm; the node below is normalized.
    const std::function<WeightedEdge(WeightedEdge, WeightedEdge)> add =
        [&](WeightedEdge x, WeightedEdge y) -> WeightedEdge {
        const bool xZero = x.isZero(tol);
        const bool yZero = y.isZero(tol);
        if (xZero && yZero) {
            return {};
        }
        if (xZero) {
            return y;
        }
        if (yZero) {
            return x;
        }
        const DDNode& nx = node(x.node);
        const DDNode& ny = node(y.node);
        if (nx.isTerminal()) {
            ensureThat(ny.isTerminal(), "applyOperation: level mismatch in addition");
            const Complex sum = x.weight + y.weight;
            if (approxZero(sum, tol)) {
                return {};
            }
            return {/*terminal=*/0, sum};
        }
        ensureThat(nx.site == ny.site, "applyOperation: site mismatch in addition");
        const std::size_t arity = nx.edges.size();
        std::vector<DDEdge> edges(arity);
        double sumSquares = 0.0;
        bool any = false;
        for (std::size_t k = 0; k < arity; ++k) {
            const WeightedEdge xk{nx.edges[k].node, x.weight * nx.edges[k].weight};
            const WeightedEdge yk{ny.edges[k].node, y.weight * ny.edges[k].weight};
            const WeightedEdge sum = add(xk, yk);
            if (sum.isZero(tol)) {
                edges[k] = DDEdge{};
                continue;
            }
            edges[k] = DDEdge{sum.node, sum.weight};
            sumSquares += squaredMagnitude(sum.weight);
            any = true;
        }
        if (!any) {
            return {};
        }
        const double norm = std::sqrt(sumSquares);
        for (auto& edge : edges) {
            if (!edge.isZeroStub()) {
                edge.weight /= norm;
            }
        }
        const NodeRef ref = allocate(nx.site, std::move(edges));
        return {ref, Complex{norm, 0.0}};
    };

    // Rebuild the diagram along affected paths (copy-on-write: shared nodes
    // on unaffected paths are reused). Returns the replacement edge for a
    // sub-tree rooted at `ref` whose in-edge weight was `weight`.
    const std::function<WeightedEdge(NodeRef, Complex)> visit =
        [&](NodeRef ref, Complex weight) -> WeightedEdge {
        const DDNode& n = node(ref);
        ensureThat(!n.isTerminal(), "applyOperation: traversal reached the terminal");

        if (n.site == op.target) {
            // Mix the out-edges by the local matrix:
            // new_edge_r = sum_c local(r, c) * edge_c.
            const std::size_t arity = n.edges.size();
            std::vector<DDEdge> edges(arity);
            double sumSquares = 0.0;
            bool any = false;
            for (std::size_t r = 0; r < arity; ++r) {
                WeightedEdge acc;
                for (std::size_t c = 0; c < arity; ++c) {
                    const Complex coefficient = local(r, c);
                    if (coefficient == Complex{0.0, 0.0} || n.edges[c].isZeroStub()) {
                        continue;
                    }
                    acc = add(acc, WeightedEdge{n.edges[c].node,
                                                coefficient * n.edges[c].weight});
                }
                if (acc.isZero(tol)) {
                    edges[r] = DDEdge{};
                    continue;
                }
                edges[r] = DDEdge{acc.node, acc.weight};
                sumSquares += squaredMagnitude(acc.weight);
                any = true;
            }
            if (!any) {
                return {};
            }
            const double norm = std::sqrt(sumSquares);
            for (auto& edge : edges) {
                if (!edge.isZeroStub()) {
                    edge.weight /= norm;
                }
            }
            const NodeRef newRef = allocate(n.site, std::move(edges));
            return {newRef, weight * norm};
        }

        // Above the target: check whether this site carries a control.
        const Control* control = nullptr;
        for (const auto& ctrl : op.controls) {
            if (ctrl.qudit == n.site) {
                control = &ctrl;
                break;
            }
        }
        std::vector<DDEdge> edges = n.edges;
        double sumSquares = 0.0;
        bool any = false;
        for (std::size_t k = 0; k < edges.size(); ++k) {
            if (edges[k].isZeroStub()) {
                continue;
            }
            if (control == nullptr || control->level == k) {
                const WeightedEdge replaced = visit(edges[k].node, edges[k].weight);
                if (replaced.isZero(tol)) {
                    edges[k] = DDEdge{};
                    continue;
                }
                edges[k] = DDEdge{replaced.node, replaced.weight};
            }
            sumSquares += squaredMagnitude(edges[k].weight);
            any = true;
        }
        if (!any) {
            return {};
        }
        const double norm = std::sqrt(sumSquares);
        for (auto& edge : edges) {
            if (!edge.isZeroStub()) {
                edge.weight /= norm;
            }
        }
        const NodeRef newRef = allocate(n.site, std::move(edges));
        return {newRef, weight * norm};
    };

    const WeightedEdge newRoot = visit(root_, rootWeight_);
    if (newRoot.isZero(tol)) {
        cutRoot();
        return;
    }
    root_ = newRoot.node;
    rootWeight_ = newRoot.weight;
}

DecisionDiagram DecisionDiagram::simulateCircuit(const Circuit& circuit, double tol) {
    DecisionDiagram dd = zeroState(circuit.dimensions());
    for (const auto& op : circuit.operations()) {
        dd.applyOperation(op, tol);
        // applyOperation rebuilds affected paths copy-on-write; compact the
        // pool so a long circuit does not accumulate garbage nodes.
        dd.garbageCollect();
    }
    return dd;
}

} // namespace mqsp
