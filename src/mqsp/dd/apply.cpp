#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace mqsp {

namespace {

/// A weighted reference to a sub-tree; the building block of DD addition.
struct WeightedEdge {
    NodeRef node = kNoNode;
    Complex weight{0.0, 0.0};

    [[nodiscard]] bool isZero(double tol) const {
        return node == kNoNode || approxZero(weight, tol);
    }
};

} // namespace

DecisionDiagram DecisionDiagram::zeroState(const Dimensions& dims) {
    // Built natively as a weight-1 chain (structured.cpp), NOT via a dense
    // round trip: this is the starting point of DD simulation, which must
    // work on registers whose total dimension exceeds memory.
    return basisState(dims, Digits(MixedRadix(dims).numQudits(), 0));
}

void DecisionDiagram::applyOperation(const Operation& op, double tol) {
    requireThat(op.target < radix_.numQudits(), "applyOperation: target out of range");
    for (const auto& ctrl : op.controls) {
        requireThat(ctrl.qudit < radix_.numQudits(),
                    "applyOperation: control out of range");
        requireThat(ctrl.qudit < op.target,
                    "applyOperation: controls must be more significant than the target "
                    "(true for all synthesized preparation circuits)");
        requireThat(ctrl.level < radix_.dimensionAt(ctrl.qudit),
                    "applyOperation: control level out of range");
    }
    if (root_ == kNoNode) {
        return; // the zero vector is fixed by every linear map
    }

    const Dimension targetDim = radix_.dimensionAt(op.target);
    const DenseMatrix local = op.localMatrix(targetDim);

    // Session compute cache: addition results keyed on the *canonical* call
    // (x's weight factored out). Entries persist across
    // gates and diagrams of the owning session — private diagrams carry no
    // cache and always recompute. Cached results embed the tolerance they
    // were pruned at, so a call at a tolerance other than the session's
    // bypasses the cache instead of consuming entries computed under a
    // different pruning regime.
    dd::ComputeCache* cache = (store_ != nullptr && store_->interning() &&
                               tol == store_->tolerance())
                                  ? &store_->computeCache()
                                  : nullptr;

    // Normalized addition of weighted sub-trees (the classic DD add). The
    // result edge's weight carries the norm; the node below is normalized.
    // The recursion is evaluated in the canonical frame (in-weights (1,
    // y/x)): addition is linear, so the absolute result is the canonical
    // result scaled by x.weight — which makes one cache entry serve every
    // scaled recurrence of the same structural addition.
    const std::function<WeightedEdge(WeightedEdge, WeightedEdge)> add =
        [&](WeightedEdge x, WeightedEdge y) -> WeightedEdge {
        const bool xZero = x.isZero(tol);
        const bool yZero = y.isZero(tol);
        if (xZero && yZero) {
            return {};
        }
        if (xZero) {
            return y;
        }
        if (yZero) {
            return x;
        }
        if (node(x.node).isTerminal()) {
            ensureThat(node(y.node).isTerminal(),
                       "applyOperation: level mismatch in addition");
            const Complex sum = x.weight + y.weight;
            if (approxZero(sum, tol)) {
                return {};
            }
            return {/*terminal=*/0, sum};
        }
        ensureThat(node(x.node).site == node(y.node).site,
                   "applyOperation: site mismatch in addition");
        // No operand reordering: addition commutes mathematically, but
        // NodeRef order is allocation order — scheduling-dependent in a
        // concurrent session — and swapping changes the floating-point
        // evaluation order, which would break bit-identical results across
        // thread counts. The cache simply keys (x, y) as called.
        const Complex scale = x.weight;
        const Complex ratio = y.weight / scale;
        if (cache != nullptr) {
            if (const auto hit =
                    cache->lookup(dd::ComputeCache::Op::Add, x.node, y.node, ratio)) {
                if (hit->node == kNoNode) {
                    return {};
                }
                return {hit->node, scale * hit->value};
            }
        }
        // Node addresses are stable (chunked pool), so holding references
        // across the allocating recursion below would be safe; per-edge
        // re-fetches through the NodeRefs are kept for uniformity.
        const std::uint32_t site = node(x.node).site;
        const std::size_t arity = node(x.node).edges.size();
        std::vector<DDEdge> edges(arity);
        double sumSquares = 0.0;
        bool any = false;
        for (std::size_t k = 0; k < arity; ++k) {
            const DDEdge ex = node(x.node).edges[k];
            const DDEdge ey = node(y.node).edges[k];
            const WeightedEdge xk{ex.node, ex.weight};
            const WeightedEdge yk{ey.node, ratio * ey.weight};
            const WeightedEdge sum = add(xk, yk);
            if (sum.isZero(tol)) {
                edges[k] = DDEdge{};
                continue;
            }
            edges[k] = DDEdge{sum.node, sum.weight};
            sumSquares += squaredMagnitude(sum.weight);
            any = true;
        }
        if (!any) {
            if (cache != nullptr) {
                cache->store(dd::ComputeCache::Op::Add, x.node, y.node, ratio,
                             dd::ComputeCache::Result{});
            }
            return {};
        }
        const double norm = std::sqrt(sumSquares);
        for (auto& edge : edges) {
            if (!edge.isZeroStub()) {
                edge.weight /= norm;
            }
        }
        const NodeRef ref = allocate(site, std::move(edges));
        const Complex relativeWeight{norm, 0.0};
        if (cache != nullptr) {
            cache->store(dd::ComputeCache::Op::Add, x.node, y.node, ratio,
                         dd::ComputeCache::Result{ref, relativeWeight});
        }
        return {ref, scale * relativeWeight};
    };

    // Rebuild the diagram along affected paths (copy-on-write: shared nodes
    // on unaffected paths are reused). Returns the replacement edge for a
    // sub-tree rooted at `ref` whose in-edge weight was `weight`. The
    // rebuild of a sub-tree is independent of the path that reached it (the
    // in-weight only scales the returned edge linearly), so results are
    // memoized per node for in-weight 1 — on a reduced (shared) diagram a
    // node is rebuilt once, not once per root-to-node path, which keeps
    // gate application polynomial on DAG-shaped states like the uniform
    // superposition.
    std::unordered_map<NodeRef, WeightedEdge> visitMemo;
    const std::function<WeightedEdge(NodeRef, Complex)> visit =
        [&](NodeRef ref, Complex weight) -> WeightedEdge {
        if (const auto it = visitMemo.find(ref); it != visitMemo.end()) {
            const WeightedEdge& base = it->second;
            if (base.node == kNoNode) {
                return {};
            }
            return {base.node, weight * base.weight};
        }
        ensureThat(!node(ref).isTerminal(),
                   "applyOperation: traversal reached the terminal");
        // Copy this node's shape up front (keeps the loops independent of
        // the allocating add()/visit() recursion below).
        const std::uint32_t site = node(ref).site;
        const std::vector<DDEdge> sourceEdges = node(ref).edges;

        if (site == op.target) {
            // Mix the out-edges by the local matrix:
            // new_edge_r = sum_c local(r, c) * edge_c.
            const std::size_t arity = sourceEdges.size();
            std::vector<DDEdge> edges(arity);
            double sumSquares = 0.0;
            bool any = false;
            for (std::size_t r = 0; r < arity; ++r) {
                WeightedEdge acc;
                for (std::size_t c = 0; c < arity; ++c) {
                    const Complex coefficient = local(r, c);
                    if (coefficient == Complex{0.0, 0.0} || sourceEdges[c].isZeroStub()) {
                        continue;
                    }
                    acc = add(acc, WeightedEdge{sourceEdges[c].node,
                                                coefficient * sourceEdges[c].weight});
                }
                if (acc.isZero(tol)) {
                    edges[r] = DDEdge{};
                    continue;
                }
                edges[r] = DDEdge{acc.node, acc.weight};
                sumSquares += squaredMagnitude(acc.weight);
                any = true;
            }
            if (!any) {
                visitMemo.emplace(ref, WeightedEdge{});
                return {};
            }
            const double norm = std::sqrt(sumSquares);
            for (auto& edge : edges) {
                if (!edge.isZeroStub()) {
                    edge.weight /= norm;
                }
            }
            const NodeRef newRef = allocate(site, std::move(edges));
            visitMemo.emplace(ref, WeightedEdge{newRef, Complex{norm, 0.0}});
            return {newRef, weight * norm};
        }

        // Above the target: check whether this site carries a control.
        const Control* control = nullptr;
        for (const auto& ctrl : op.controls) {
            if (ctrl.qudit == site) {
                control = &ctrl;
                break;
            }
        }
        std::vector<DDEdge> edges = sourceEdges;
        double sumSquares = 0.0;
        bool any = false;
        for (std::size_t k = 0; k < edges.size(); ++k) {
            if (edges[k].isZeroStub()) {
                continue;
            }
            if (control == nullptr || control->level == k) {
                const WeightedEdge replaced = visit(edges[k].node, edges[k].weight);
                if (replaced.isZero(tol)) {
                    edges[k] = DDEdge{};
                    continue;
                }
                edges[k] = DDEdge{replaced.node, replaced.weight};
            }
            sumSquares += squaredMagnitude(edges[k].weight);
            any = true;
        }
        if (!any) {
            visitMemo.emplace(ref, WeightedEdge{});
            return {};
        }
        const double norm = std::sqrt(sumSquares);
        for (auto& edge : edges) {
            if (!edge.isZeroStub()) {
                edge.weight /= norm;
            }
        }
        const NodeRef newRef = allocate(site, std::move(edges));
        visitMemo.emplace(ref, WeightedEdge{newRef, Complex{norm, 0.0}});
        return {newRef, weight * norm};
    };

    // Intra-diagram fan-out (the PR 6 level-synchronous idiom applied
    // *inside* one gate): the expensive part of a gate is the target-level
    // rebuild — every target-site node mixes its out-edges through `local`,
    // one independent add-chain per output row. Collect the distinct
    // target-level nodes reachable through control-eligible paths, compute
    // all (node, row) add-chains in parallel against the session's sharded
    // uniquing table and striped compute cache, then normalize and intern
    // sequentially in canonical (DFS collection) order, seeding visitMemo
    // so the serial spine rebuild below hits every target node.
    //
    // Determinism: add() is a pure function of canonical node structure, so
    // a parallel recomputation that misses a memo/cache entry the serial
    // order would have hit produces bit-identical weights, and the interned
    // node set — dd_nodes — is invariant under thread count and schedule
    // (same argument as the level-synchronous session builders). Gated on
    // sessionBacked(): a private store's table is Serial and must keep the
    // historical single-threaded recursion.
    if (sessionBacked() && parallel::globalThreads() > 1 &&
        !parallel::insideParallelRegion()) {
        std::vector<NodeRef> targets;
        std::unordered_set<NodeRef> seen;
        std::vector<NodeRef> stack{root_};
        bool regular = true; // no path hits the terminal above the target
        while (!stack.empty() && regular) {
            const NodeRef ref = stack.back();
            stack.pop_back();
            if (!seen.insert(ref).second) {
                continue;
            }
            if (node(ref).isTerminal()) {
                regular = false;
                break;
            }
            const std::uint32_t site = node(ref).site;
            if (site == op.target) {
                targets.push_back(ref);
                continue;
            }
            const Control* control = nullptr;
            for (const auto& ctrl : op.controls) {
                if (ctrl.qudit == site) {
                    control = &ctrl;
                    break;
                }
            }
            const auto& sourceEdges = node(ref).edges;
            for (std::size_t k = 0; k < sourceEdges.size(); ++k) {
                if (sourceEdges[k].isZeroStub()) {
                    continue;
                }
                if (control == nullptr || control->level == k) {
                    stack.push_back(sourceEdges[k].node);
                }
            }
        }
        const std::size_t arity = targetDim;
        if (regular && targets.size() * arity > 1) {
            std::vector<WeightedEdge> rows(targets.size() * arity);
            parallel::parallelFor(
                0, rows.size(), /*grainSize=*/1,
                [&](std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t idx = begin; idx < end; ++idx) {
                        const NodeRef target = targets[idx / arity];
                        const auto r = static_cast<std::size_t>(idx % arity);
                        const auto& sourceEdges = node(target).edges;
                        WeightedEdge acc;
                        for (std::size_t c = 0; c < arity; ++c) {
                            const Complex coefficient = local(r, c);
                            if (coefficient == Complex{0.0, 0.0} ||
                                sourceEdges[c].isZeroStub()) {
                                continue;
                            }
                            acc = add(acc,
                                      WeightedEdge{sourceEdges[c].node,
                                                   coefficient * sourceEdges[c].weight});
                        }
                        rows[idx] = acc;
                    }
                });
            // Sequential intern in canonical order — byte-for-byte the
            // site == op.target body of visit(), fed from the slots.
            for (std::size_t t = 0; t < targets.size(); ++t) {
                std::vector<DDEdge> edges(arity);
                double sumSquares = 0.0;
                bool any = false;
                for (std::size_t r = 0; r < arity; ++r) {
                    const WeightedEdge& acc = rows[t * arity + r];
                    if (acc.isZero(tol)) {
                        edges[r] = DDEdge{};
                        continue;
                    }
                    edges[r] = DDEdge{acc.node, acc.weight};
                    sumSquares += squaredMagnitude(acc.weight);
                    any = true;
                }
                if (!any) {
                    visitMemo.emplace(targets[t], WeightedEdge{});
                    continue;
                }
                const double norm = std::sqrt(sumSquares);
                for (auto& edge : edges) {
                    if (!edge.isZeroStub()) {
                        edge.weight /= norm;
                    }
                }
                const NodeRef newRef = allocate(op.target, std::move(edges));
                visitMemo.emplace(targets[t], WeightedEdge{newRef, Complex{norm, 0.0}});
            }
        }
    }

    const WeightedEdge newRoot = visit(root_, rootWeight_);
    if (newRoot.isZero(tol)) {
        cutRoot();
        return;
    }
    root_ = newRoot.node;
    rootWeight_ = newRoot.weight;
}

DecisionDiagram DecisionDiagram::simulateCircuit(const Circuit& circuit, double tol) {
    DecisionDiagram dd = zeroState(circuit.dimensions());
    for (const auto& op : circuit.operations()) {
        dd.applyOperation(op, tol);
        // On a private store applyOperation rebuilds affected paths
        // copy-on-write without hash-consing, so identical sub-trees
        // proliferate: without re-sharing, a product-state superposition
        // (e.g. the uniform state mid-preparation) would blow up to the
        // full exponential tree. Reduce after every gate to keep the
        // diagram canonical-small, then drop the disconnected garbage.
        dd.reduce(tol);
        dd.garbageCollect();
    }
    return dd;
}

DecisionDiagram DecisionDiagram::simulateCircuitOn(
    const std::shared_ptr<dd::DdNodeStore>& store, const Circuit& circuit) {
    const double tol = store->tolerance();
    DecisionDiagram dd =
        basisStateOn(store, circuit.dimensions(),
                     Digits(MixedRadix(circuit.dimensions()).numQudits(), 0));
    for (const auto& op : circuit.operations()) {
        // Interning keeps every allocation canonical, so the per-gate
        // reduce of the private path is structurally a no-op here, and
        // intermediates stay in the session pool for later gates (and
        // later diagrams) to hit.
        dd.applyOperation(op, tol);
    }
    return dd;
}

} // namespace mqsp
