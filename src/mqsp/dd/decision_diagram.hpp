#pragma once

#include "mqsp/circuit/circuit.hpp"
#include "mqsp/complexnum/complex.hpp"
#include "mqsp/dd/unique_table.hpp"
#include "mqsp/statevec/state_vector.hpp"
#include "mqsp/support/mixed_radix.hpp"
#include "mqsp/support/rng.hpp"

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mqsp {

/// How reachable structure should be counted; see `nodeCount`.
enum class NodeCountMode {
    /// Internal decision nodes reachable from the root (terminal excluded).
    Internal,
    /// The paper's "Nodes" metric for *exact* synthesis: the size of the
    /// unreduced splitting tree including one leaf per amplitude — a pure
    /// function of the register dimensions (Table 1 reports 58/1135/8657/...
    /// for every state on the same register).
    DenseTree,
    /// Root plus every child slot (leaf, structural zero stub, or inner
    /// node) of reachable internal nodes, excluding slots emptied by
    /// pruning; equals 1 + sum of dim(v) over reachable internal v. On a
    /// reduced (shared) diagram each node is counted once — the memory
    /// footprint of the DAG.
    Slots,
    /// The paper's "Nodes" metric for the *approximated* column: like
    /// Slots, but with tree semantics — a shared node is counted once per
    /// incoming path, so the value is invariant under reduction (the
    /// paper's counts show no sharing discount; see DESIGN.md).
    TreeSlots,
};

/// Edge-weighted decision diagram with a variable number of successors per
/// level (§4.1 of the paper) — the representation of a mixed-dimensional
/// quantum state.
///
/// Invariants maintained by construction and all transforms:
///  * every internal node's out-edge weights satisfy sum |w|^2 == 1
///    (within tolerance), unless the node is unreachable garbage;
///  * the amplitude of basis state (k_{n-1},...,k_0) is the product of the
///    root weight and the edge weights along the path root -> terminal;
///  * zero-amplitude sub-spaces are represented by zero stubs, never nodes.
///
/// `fromStateVector` builds the *tree*-shaped diagram the synthesis
/// traversal expects (§4.2: "the decision diagram forms a weighted tree");
/// `reduce()` (see transform.cpp) merges structurally identical sub-trees,
/// turning it into a DAG (§4.3's reduction rule).
class DecisionDiagram {
public:
    DecisionDiagram() = default;

    /// Node storage: diagrams built by the static constructors own a
    /// private store (deep-copied on diagram copy — the historical value
    /// semantics); diagrams built by a dd::DdSession alias the session's
    /// shared interning store (copied O(1), immutable in place).
    DecisionDiagram(const DecisionDiagram& other);
    DecisionDiagram& operator=(const DecisionDiagram& other);
    DecisionDiagram(DecisionDiagram&&) noexcept = default;
    DecisionDiagram& operator=(DecisionDiagram&&) noexcept = default;
    ~DecisionDiagram() = default;

    /// Decompose a dense state vector into a weighted tree. Amplitudes with
    /// |a| <= tol (componentwise) are treated as exact zeros.
    [[nodiscard]] static DecisionDiagram fromStateVector(const StateVector& state,
                                                         double tol = Tolerance::kDefault);

    /// Decompose WITHOUT zero-pruning: every node of the dense splitting
    /// tree is materialized, zero sub-vectors included (their edges carry
    /// weight 0 and their nodes are unnormalized). Synthesizing from this
    /// diagram yields the dense multiplexed-rotation baseline — the
    /// exhaustive uniformly-controlled cascade classical qubit state
    /// preparation uses — against which the DD-aware synthesis of the paper
    /// is compared (the abstract's "performance directly linked to the size
    /// of the decision diagram"). Baseline diagrams are not canonical:
    /// checkInvariants() flags their all-zero nodes by design.
    [[nodiscard]] static DecisionDiagram fromStateVectorDense(const StateVector& state);

    /// Register geometry.
    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const Dimensions& dimensions() const noexcept { return radix_.dimensions(); }
    [[nodiscard]] std::size_t numQudits() const noexcept { return radix_.numQudits(); }

    /// Root edge. A diagram for the zero vector has rootNode() == kNoNode.
    [[nodiscard]] NodeRef rootNode() const noexcept { return root_; }
    [[nodiscard]] const Complex& rootWeight() const noexcept { return rootWeight_; }

    /// Node-pool access (sentinels excluded; callers use NodeRef handles).
    /// On a session-backed diagram the pool is the *session's* pool, so
    /// poolSize() counts every node the session has interned, not just the
    /// ones reachable from this diagram's root.
    [[nodiscard]] const DDNode& node(NodeRef ref) const;
    [[nodiscard]] std::size_t poolSize() const noexcept {
        return store_ ? store_->size() : 0;
    }

    /// True when this diagram lives on a session's shared interning store
    /// (built canonical, immutable in place, O(1) to copy).
    [[nodiscard]] bool sessionBacked() const noexcept {
        return store_ != nullptr && store_->interning();
    }

    /// True when both diagrams allocate from the same store — the
    /// precondition for NodeRef-identity shortcuts across diagrams.
    [[nodiscard]] bool sharesStoreWith(const DecisionDiagram& other) const noexcept {
        return store_ != nullptr && store_ == other.store_;
    }

    /// --- evaluation (evaluate.cpp) -------------------------------------

    /// Amplitude of one basis state: product of weights along the path.
    [[nodiscard]] Complex amplitudeOf(const Digits& digits) const;

    /// Reconstruct the dense state vector.
    [[nodiscard]] StateVector toStateVector() const;

    /// |<target|this>|^2 against a dense target.
    [[nodiscard]] double fidelityWith(const StateVector& target) const;

    /// <this|other> computed natively on the diagrams (no dense expansion),
    /// by the recursive pairwise traversal of DD packages (cf. the paper's
    /// reference [12] on mixed-dimensional DD simulation). Registers must
    /// match. Memoized per node pair: linear in the product of diagram
    /// sizes, independent of the Hilbert dimension.
    [[nodiscard]] Complex innerProductWith(const DecisionDiagram& other) const;

    /// Sum of squared amplitude magnitudes (1 for a normalized diagram),
    /// computed natively on the diagram (memoized per node, no dense
    /// expansion) — safe on registers far past the dense ceiling.
    [[nodiscard]] double normSquared() const;

    /// Visit every nonzero amplitude in flat mixed-radix (lexicographic
    /// digit) order without materializing the dense vector. The visitor
    /// receives the digit string and the amplitude; returning false stops
    /// the traversal early. Cost is linear in the number of nonzero
    /// amplitudes visited, independent of the Hilbert dimension.
    void forEachNonZero(
        const std::function<bool(const Digits&, const Complex&)>& visitor) const;

    /// --- metrics (metrics.cpp) -----------------------------------------

    /// Count nodes under the chosen convention (see NodeCountMode).
    [[nodiscard]] std::uint64_t nodeCount(NodeCountMode mode) const;

    /// The DenseTree count as a standalone function of dimensions.
    [[nodiscard]] static std::uint64_t denseTreeNodeCount(const Dimensions& dims);

    /// Number of distinct complex values among the root weight and all edge
    /// weights of reachable internal nodes (zero stubs contribute 0) — the
    /// paper's "DistinctC".
    [[nodiscard]] std::size_t distinctComplexCount(double tol = Tolerance::kDefault) const;

    /// Per-node fidelity contribution (§4.3): the probability mass of all
    /// basis states whose path crosses the node. Indexed by NodeRef; entries
    /// for unreachable pool slots are 0. On a DAG, mass is accumulated over
    /// every incoming path.
    [[nodiscard]] std::vector<double> nodeContributions() const;

    /// True when all nonzero out-edges of `ref` point to one shared child —
    /// the tensor-product pattern of §4.3 (only meaningful after reduce()).
    [[nodiscard]] bool isTensorProductNode(NodeRef ref) const;

    /// Structural invariant check (normalization, edge counts, acyclicity by
    /// level). Returns an empty string when healthy, else a description.
    [[nodiscard]] std::string checkInvariants(double tol = 1e-8) const;

    /// --- transforms (transform.cpp) ------------------------------------

    /// Zero out the sub-tree hanging off `parent`'s `edgeIndex` (used by the
    /// approximation pass). Renormalization is the caller's responsibility.
    void cutEdge(NodeRef parent, std::size_t edgeIndex);

    /// Zero out the root edge, making this the empty diagram.
    void cutRoot();

    /// Re-establish per-node normalization after edges were cut; the lost
    /// probability mass moves into the root weight (rootWeight < 1 after
    /// pruning). Drops nodes whose out-edges all became zero stubs.
    void renormalize(double tol = Tolerance::kDefault);

    /// Rescale the root weight to 1 (after pruning, this makes the diagram
    /// represent the renormalized approximate state).
    void normalizeRoot();

    /// Merge structurally identical sub-trees bottom-up (hash-consing); the
    /// diagram becomes a DAG and shared sub-trees are stored once (§4.3's
    /// reduction). Returns the number of nodes eliminated.
    std::size_t reduce(double tol = Tolerance::kDefault);

    /// Drop unreachable pool entries, compacting storage.
    void garbageCollect();

    /// --- gate application (apply.cpp) -------------------------------------

    /// Apply a (possibly controlled) operation to the represented state
    /// natively on the diagram (the DD-simulation substrate of the paper's
    /// reference [12]): edges at the target level are linearly combined via
    /// recursive normalized DD addition, and control conditions restrict the
    /// affected paths. Controls must sit on sites more significant than the
    /// target (always true for synthesized preparation circuits); an
    /// InvalidArgumentError is thrown otherwise. The diagram stays
    /// normalized (|rootWeight| is preserved up to rounding).
    void applyOperation(const Operation& op, double tol = Tolerance::kDefault);

    /// Run a whole circuit on the |0...0> diagram — DD-native simulation.
    [[nodiscard]] static DecisionDiagram simulateCircuit(const Circuit& circuit,
                                                         double tol = Tolerance::kDefault);

    /// The |0...0> diagram on a register.
    [[nodiscard]] static DecisionDiagram zeroState(const Dimensions& dims);

    /// --- structured-state construction (structured.cpp) -------------------
    ///
    /// DD-native builders for the paper's structured benchmark families (§5):
    /// the diagrams are assembled node-by-node in O(numQudits^2) time and
    /// space, without ever materializing the dense amplitude vector — the
    /// entry point for registers past the dense O(∏dims) ceiling. The
    /// builders reproduce exactly the tree `fromStateVector` would return on
    /// the same state (same shape, same canonical weights), so synthesis
    /// from either source emits the identical circuit.

    /// Mixed-dimensional GHZ state 1/sqrt(m) sum_k |k...k>, m = min(dims).
    [[nodiscard]] static DecisionDiagram ghzState(const Dimensions& dims);

    /// Mixed-dimensional W state: equal superposition of every basis state
    /// with exactly one qudit in some nonzero level, all others |0>.
    [[nodiscard]] static DecisionDiagram wState(const Dimensions& dims);

    /// Embedded W state: the qubit W state in the qudit register — exactly
    /// one qudit in level |1>, all others |0>.
    [[nodiscard]] static DecisionDiagram embeddedWState(const Dimensions& dims);

    /// A single basis state |digits> as a weight-1 chain.
    [[nodiscard]] static DecisionDiagram basisState(const Dimensions& dims,
                                                    const Digits& digits);

    /// The uniform superposition, returned *reduced* (one shared chain of
    /// numQudits nodes — the tree form would be the full dense tree, which
    /// is exactly what these builders exist to avoid). Synthesis handles the
    /// sharing via the §4.3 tensor-product control elision.
    [[nodiscard]] static DecisionDiagram uniformState(const Dimensions& dims);

    /// Cyclic state (cf. states::cyclic): equal superposition of the
    /// distinct cyclic shifts of `start`, shift k adding k to every digit
    /// modulo its own dimension. Returned *reduced*: shifts that agree on a
    /// digit prefix share the node deciding it (memoized on the surviving
    /// shift set), so the diagram is O(#shifts * numQudits) worst case and
    /// usually far smaller.
    [[nodiscard]] static DecisionDiagram cyclicState(const Dimensions& dims,
                                                     const Digits& start,
                                                     std::uint32_t count);

    /// Generalized Dicke state (cf. states::dicke): equal superposition of
    /// every basis state whose digits sum to `weight`. Returned *reduced*,
    /// as the standard (site, remaining-weight) DAG of O(numQudits * weight)
    /// nodes — the tree form would hold one leaf per term, which is
    /// combinatorial. Throws when no basis state has the requested weight.
    [[nodiscard]] static DecisionDiagram dickeState(const Dimensions& dims,
                                                    std::uint64_t weight);

    /// --- sampling (sample.cpp) ------------------------------------------

    /// Draw one measurement outcome in the computational basis directly from
    /// the diagram, without expanding the dense vector: descend from the
    /// root, at each node choosing edge k with probability |w_k|^2 (the
    /// out-edges are normalized, so the local weights are exactly the
    /// conditional distribution). O(depth) per sample.
    /// Requires a normalized diagram (|rootWeight| == 1 within 1e-6).
    [[nodiscard]] Digits sampleOutcome(Rng& rng) const;

    /// Draw `count` outcomes and return per-basis-state counts, keyed by
    /// flat mixed-radix index (only observed outcomes appear).
    [[nodiscard]] std::unordered_map<std::uint64_t, std::uint64_t>
    sampleHistogram(Rng& rng, std::uint64_t count) const;

    /// --- serialization (serialize.cpp) -----------------------------------

    /// Line-oriented text serialization of the diagram (register, root edge,
    /// one line per node). Round-trips through `deserialize` exactly.
    void serialize(std::ostream& out) const;

    /// Parse the format emitted by serialize(). Throws InvalidArgumentError
    /// on malformed input; the result passes checkInvariants() whenever the
    /// serialized diagram did.
    [[nodiscard]] static DecisionDiagram deserialize(std::istream& in);

    /// --- export (dot.cpp) ----------------------------------------------

    /// Graphviz rendering for debugging and documentation.
    [[nodiscard]] std::string toDot() const;

private:
    friend class dd::DdSession;

    /// Diagram on an explicit store (nullptr -> fresh private store); the
    /// hook every builder funnels through, and the only way a session hands
    /// its shared store to a diagram.
    DecisionDiagram(std::shared_ptr<dd::DdNodeStore> store, const Dimensions& dims);

    /// Make sure a store exists (fresh private one when default-constructed).
    void ensureStore(double tol = Tolerance::kDefault);

    [[nodiscard]] DDNode& mutableNode(NodeRef ref);
    NodeRef allocate(std::uint32_t site, std::vector<DDEdge> edges);

    /// Reachable-only deep copy onto a fresh private store (the diagram a
    /// session-backed one serializes as; identical semantics to
    /// garbageCollect on a private diagram).
    [[nodiscard]] DecisionDiagram compactedCopy() const;

    /// Store-parameterized builder cores (structured.cpp / apply.cpp); the
    /// public statics pass nullptr (fresh private store), dd::DdSession
    /// passes its shared interning store.
    [[nodiscard]] static DecisionDiagram basisStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                                      const Dimensions& dims,
                                                      const Digits& digits);
    [[nodiscard]] static DecisionDiagram ghzStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                                    const Dimensions& dims);
    /// Shared W-family builder; familyTag 0 = full W, 1 = embedded W.
    [[nodiscard]] static DecisionDiagram wStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                                  const Dimensions& dims, int familyTag);
    [[nodiscard]] static DecisionDiagram uniformStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                                        const Dimensions& dims);
    [[nodiscard]] static DecisionDiagram cyclicStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                                       const Dimensions& dims,
                                                       const Digits& start,
                                                       std::uint32_t count);
    [[nodiscard]] static DecisionDiagram dickeStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                                      const Dimensions& dims,
                                                      std::uint64_t weight);
    [[nodiscard]] static DecisionDiagram
    simulateCircuitOn(const std::shared_ptr<dd::DdNodeStore>& store, const Circuit& circuit);

    DDEdge buildTree(std::size_t site, const Complex* amps, std::uint64_t count, double tol);
    DDEdge buildDenseTree(std::size_t site, const Complex* amps, std::uint64_t count);

    MixedRadix radix_;
    std::shared_ptr<dd::DdNodeStore> store_;
    NodeRef root_ = kNoNode;
    Complex rootWeight_{0.0, 0.0};
};

namespace dd {

/// Structural diff of two same-store diagrams, counted over the *reachable
/// node sets* of their roots (terminal excluded). Because session-backed
/// diagrams are hash-consed, NodeRef identity IS structural identity: a
/// node reachable from both roots is a subtree the two states share
/// verbatim, so `shared` measures exactly what an incremental re-verify
/// can reuse, `added` what the delta built, and `removed` what it
/// abandoned.
struct DiagramDiffStats {
    std::uint64_t nodesA = 0;   ///< nodes reachable from a's root
    std::uint64_t nodesB = 0;   ///< nodes reachable from b's root
    std::uint64_t shared = 0;   ///< reachable from both
    std::uint64_t added = 0;    ///< reachable from b only
    std::uint64_t removed = 0;  ///< reachable from a only
};

/// Diff two diagrams on the SAME store (throws InvalidArgumentError
/// otherwise — cross-store refs are not comparable). O(nodesA + nodesB)
/// time and space; empty diagrams diff as all-zero against themselves.
[[nodiscard]] DiagramDiffStats diffDiagrams(const DecisionDiagram& a, const DecisionDiagram& b);

} // namespace dd

} // namespace mqsp
