#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>

namespace mqsp {

Digits DecisionDiagram::sampleOutcome(Rng& rng) const {
    requireThat(root_ != kNoNode, "sampleOutcome: cannot sample the zero diagram");
    requireThat(std::abs(std::abs(rootWeight_) - 1.0) <= 1e-6,
                "sampleOutcome: diagram must be normalized (|rootWeight| == 1)");
    Digits outcome(radix_.numQudits(), 0);
    NodeRef current = root_;
    for (std::size_t site = 0; site < radix_.numQudits(); ++site) {
        const DDNode& n = node(current);
        ensureThat(!n.isTerminal(), "sampleOutcome: diagram too shallow");
        // Out-edge weights are normalized: |w_k|^2 is the conditional
        // probability of level k given the path so far.
        double u = rng.uniform01();
        std::size_t chosen = n.edges.size();
        for (std::size_t k = 0; k < n.edges.size(); ++k) {
            if (n.edges[k].isZeroStub()) {
                continue;
            }
            const double p = squaredMagnitude(n.edges[k].weight);
            if (u < p) {
                chosen = k;
                break;
            }
            u -= p;
        }
        if (chosen == n.edges.size()) {
            // Rounding left a sliver of probability; take the last nonzero.
            for (std::size_t k = n.edges.size(); k-- > 0;) {
                if (!n.edges[k].isZeroStub()) {
                    chosen = k;
                    break;
                }
            }
            ensureThat(chosen != n.edges.size(), "sampleOutcome: node without children");
        }
        outcome[site] = static_cast<Level>(chosen);
        current = n.edges[chosen].node;
    }
    ensureThat(node(current).isTerminal(), "sampleOutcome: path missed the terminal");
    return outcome;
}

std::unordered_map<std::uint64_t, std::uint64_t>
DecisionDiagram::sampleHistogram(Rng& rng, std::uint64_t count) const {
    std::unordered_map<std::uint64_t, std::uint64_t> histogram;
    for (std::uint64_t i = 0; i < count; ++i) {
        ++histogram[radix_.indexOf(sampleOutcome(rng))];
    }
    return histogram;
}

} // namespace mqsp
