#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/support/error.hpp"

#include <vector>

namespace mqsp::dd {

namespace {

/// Mark every internal node reachable from the diagram's root in `seen`
/// (indexed by NodeRef; the terminal and zero stubs are skipped).
void markReachable(const DecisionDiagram& diagram, std::vector<bool>& seen) {
    if (diagram.rootNode() == kNoNode) {
        return;
    }
    std::vector<NodeRef> stack{diagram.rootNode()};
    std::vector<bool> visited(seen.size(), false);
    visited[diagram.rootNode()] = true;
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        const DDNode& node = diagram.node(ref);
        if (node.isTerminal()) {
            continue;
        }
        seen[ref] = true;
        for (const auto& edge : node.edges) {
            if (!edge.isZeroStub() && !visited[edge.node]) {
                visited[edge.node] = true;
                stack.push_back(edge.node);
            }
        }
    }
}

} // namespace

DiagramDiffStats diffDiagrams(const DecisionDiagram& a, const DecisionDiagram& b) {
    requireThat(a.sharesStoreWith(b),
                "diffDiagrams: diagrams live on different stores — NodeRefs are only "
                "comparable within one session");
    const std::size_t pool = std::max(a.poolSize(), b.poolSize());
    std::vector<bool> inA(pool, false);
    std::vector<bool> inB(pool, false);
    markReachable(a, inA);
    markReachable(b, inB);
    DiagramDiffStats stats;
    for (std::size_t ref = 0; ref < pool; ++ref) {
        if (inA[ref]) {
            ++stats.nodesA;
        }
        if (inB[ref]) {
            ++stats.nodesB;
        }
        if (inA[ref] && inB[ref]) {
            ++stats.shared;
        } else if (inB[ref]) {
            ++stats.added;
        } else if (inA[ref]) {
            ++stats.removed;
        }
    }
    return stats;
}

} // namespace mqsp::dd
