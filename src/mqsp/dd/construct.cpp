#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

namespace mqsp {

DecisionDiagram::DecisionDiagram(std::shared_ptr<dd::DdNodeStore> store,
                                 const Dimensions& dims)
    : radix_(dims), store_(std::move(store)) {
    if (!store_) {
        store_ = std::make_shared<dd::DdNodeStore>(dd::DdNodeStore::Mode::Private);
    }
}

DecisionDiagram::DecisionDiagram(const DecisionDiagram& other)
    : radix_(other.radix_), root_(other.root_), rootWeight_(other.rootWeight_) {
    if (!other.store_) {
        return;
    }
    if (other.store_->interning()) {
        // Session-backed diagrams are immutable in place; copies alias the
        // shared store (O(1)) instead of deep-copying the session pool.
        store_ = other.store_;
    } else {
        store_ = std::make_shared<dd::DdNodeStore>(*other.store_);
    }
}

DecisionDiagram& DecisionDiagram::operator=(const DecisionDiagram& other) {
    if (this != &other) {
        DecisionDiagram copy(other);
        *this = std::move(copy);
    }
    return *this;
}

void DecisionDiagram::ensureStore(double tol) {
    if (!store_) {
        store_ = std::make_shared<dd::DdNodeStore>(dd::DdNodeStore::Mode::Private, tol);
    }
}

NodeRef DecisionDiagram::allocate(std::uint32_t site, std::vector<DDEdge> edges) {
    return store_->allocate(site, std::move(edges));
}

const DDNode& DecisionDiagram::node(NodeRef ref) const {
    requireThat(store_ != nullptr, "DecisionDiagram::node: empty diagram");
    return store_->node(ref);
}

DDNode& DecisionDiagram::mutableNode(NodeRef ref) {
    requireThat(store_ != nullptr, "DecisionDiagram::node: empty diagram");
    return store_->mutableNode(ref);
}

DecisionDiagram DecisionDiagram::compactedCopy() const {
    DecisionDiagram result(nullptr, radix_.dimensions());
    if (root_ == kNoNode) {
        return result;
    }
    std::unordered_map<NodeRef, NodeRef> remap;
    const std::function<NodeRef(NodeRef)> visit = [&](NodeRef ref) -> NodeRef {
        if (node(ref).isTerminal()) {
            return 0;
        }
        if (const auto it = remap.find(ref); it != remap.end()) {
            return it->second;
        }
        DDNode copy = node(ref);
        for (auto& edge : copy.edges) {
            if (!edge.isZeroStub()) {
                edge.node = visit(edge.node);
            }
        }
        const NodeRef fresh = result.allocate(copy.site, std::move(copy.edges));
        remap.emplace(ref, fresh);
        return fresh;
    };
    result.root_ = visit(root_);
    result.rootWeight_ = rootWeight_;
    return result;
}

/// Recursive splitter for `fromStateVector`: builds the node for the
/// `count`-long amplitude block at `site` and returns the edge (node +
/// weight) the parent should store. The weight is the block's norm except at
/// the terminal, where it is the amplitude itself; normalization pushes all
/// phases into the lowest-level edges and keeps every upper weight real
/// non-negative — the paper's fixed canonical scheme ("each weight is
/// divided by the norm ... the norm is then multiplied to all weights on
/// in-edges", §4.2).
DDEdge DecisionDiagram::buildTree(std::size_t site, const Complex* amps, std::uint64_t count,
                                  double tol) {
    if (site == radix_.numQudits()) {
        ensureThat(count == 1, "DecisionDiagram::buildTree: leaf block must hold one value");
        if (approxZero(amps[0], tol)) {
            return DDEdge{};
        }
        return DDEdge{/*terminal=*/0, amps[0]};
    }
    const Dimension dim = radix_.dimensionAt(site);
    const std::uint64_t part = count / dim;
    ensureThat(part * dim == count, "DecisionDiagram::buildTree: block not divisible");

    std::vector<DDEdge> edges(dim);
    double sumSquares = 0.0;
    bool any = false;
    for (Dimension k = 0; k < dim; ++k) {
        edges[k] = buildTree(site + 1, amps + static_cast<std::uint64_t>(k) * part, part, tol);
        if (!edges[k].isZeroStub()) {
            any = true;
            sumSquares += squaredMagnitude(edges[k].weight);
        }
    }
    if (!any) {
        return DDEdge{};
    }
    const double norm = std::sqrt(sumSquares);
    for (auto& edge : edges) {
        if (!edge.isZeroStub()) {
            edge.weight /= norm;
        }
    }
    const NodeRef ref = allocate(static_cast<std::uint32_t>(site), std::move(edges));
    return DDEdge{ref, Complex{norm, 0.0}};
}

DecisionDiagram DecisionDiagram::fromStateVector(const StateVector& state, double tol) {
    DecisionDiagram dd;
    dd.radix_ = state.radix();
    dd.ensureStore(tol); // private store; slot 0 is the unique terminal
    const DDEdge rootEdge =
        dd.buildTree(0, state.amplitudes().data(), state.size(), tol);
    dd.root_ = rootEdge.node;
    dd.rootWeight_ = rootEdge.weight;
    return dd;
}

/// Dense-tree splitter for `fromStateVectorDense`: like buildTree but
/// zero sub-vectors still become nodes (with zero in-edge weight), so the
/// result is the full multiplexor tree of classical state preparation.
DDEdge DecisionDiagram::buildDenseTree(std::size_t site, const Complex* amps,
                                       std::uint64_t count) {
    if (site == radix_.numQudits()) {
        ensureThat(count == 1, "DecisionDiagram::buildDenseTree: bad leaf block");
        return DDEdge{/*terminal=*/0, amps[0]};
    }
    const Dimension dim = radix_.dimensionAt(site);
    const std::uint64_t part = count / dim;
    std::vector<DDEdge> edges(dim);
    double sumSquares = 0.0;
    for (Dimension k = 0; k < dim; ++k) {
        edges[k] = buildDenseTree(site + 1, amps + static_cast<std::uint64_t>(k) * part,
                                  part);
        sumSquares += squaredMagnitude(edges[k].weight);
    }
    const double norm = std::sqrt(sumSquares);
    if (norm > 0.0) {
        for (auto& edge : edges) {
            edge.weight /= norm;
        }
    }
    const NodeRef ref = allocate(static_cast<std::uint32_t>(site), std::move(edges));
    return DDEdge{ref, Complex{norm, 0.0}};
}

DecisionDiagram DecisionDiagram::fromStateVectorDense(const StateVector& state) {
    DecisionDiagram dd;
    dd.radix_ = state.radix();
    dd.ensureStore();
    const DDEdge rootEdge = dd.buildDenseTree(0, state.amplitudes().data(), state.size());
    dd.root_ = rootEdge.node;
    dd.rootWeight_ = rootEdge.weight;
    return dd;
}

} // namespace mqsp
