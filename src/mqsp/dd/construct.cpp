#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>

namespace mqsp {

NodeRef DecisionDiagram::allocate(std::uint32_t site, std::vector<DDEdge> edges) {
    nodes_.push_back(DDNode{site, std::move(edges)});
    ensureThat(nodes_.size() - 1 < kNoNode, "DecisionDiagram: node pool exhausted");
    return static_cast<NodeRef>(nodes_.size() - 1);
}

const DDNode& DecisionDiagram::node(NodeRef ref) const {
    requireThat(ref < nodes_.size(), "DecisionDiagram::node: invalid reference");
    return nodes_[ref];
}

DDNode& DecisionDiagram::mutableNode(NodeRef ref) {
    requireThat(ref < nodes_.size(), "DecisionDiagram::node: invalid reference");
    return nodes_[ref];
}

/// Recursive splitter for `fromStateVector`: builds the node for the
/// `count`-long amplitude block at `site` and returns the edge (node +
/// weight) the parent should store. The weight is the block's norm except at
/// the terminal, where it is the amplitude itself; normalization pushes all
/// phases into the lowest-level edges and keeps every upper weight real
/// non-negative — the paper's fixed canonical scheme ("each weight is
/// divided by the norm ... the norm is then multiplied to all weights on
/// in-edges", §4.2).
DDEdge DecisionDiagram::buildTree(std::size_t site, const Complex* amps, std::uint64_t count,
                                  double tol) {
    if (site == radix_.numQudits()) {
        ensureThat(count == 1, "DecisionDiagram::buildTree: leaf block must hold one value");
        if (approxZero(amps[0], tol)) {
            return DDEdge{};
        }
        return DDEdge{/*terminal=*/0, amps[0]};
    }
    const Dimension dim = radix_.dimensionAt(site);
    const std::uint64_t part = count / dim;
    ensureThat(part * dim == count, "DecisionDiagram::buildTree: block not divisible");

    std::vector<DDEdge> edges(dim);
    double sumSquares = 0.0;
    bool any = false;
    for (Dimension k = 0; k < dim; ++k) {
        edges[k] = buildTree(site + 1, amps + static_cast<std::uint64_t>(k) * part, part, tol);
        if (!edges[k].isZeroStub()) {
            any = true;
            sumSquares += squaredMagnitude(edges[k].weight);
        }
    }
    if (!any) {
        return DDEdge{};
    }
    const double norm = std::sqrt(sumSquares);
    for (auto& edge : edges) {
        if (!edge.isZeroStub()) {
            edge.weight /= norm;
        }
    }
    const NodeRef ref = allocate(static_cast<std::uint32_t>(site), std::move(edges));
    return DDEdge{ref, Complex{norm, 0.0}};
}

DecisionDiagram DecisionDiagram::fromStateVector(const StateVector& state, double tol) {
    DecisionDiagram dd;
    dd.radix_ = state.radix();
    // Pool slot 0 is the unique terminal node.
    dd.nodes_.push_back(DDNode{DDNode::kTerminalSite, {}});
    const DDEdge rootEdge =
        dd.buildTree(0, state.amplitudes().data(), state.size(), tol);
    dd.root_ = rootEdge.node;
    dd.rootWeight_ = rootEdge.weight;
    return dd;
}

/// Dense-tree splitter for `fromStateVectorDense`: like buildTree but
/// zero sub-vectors still become nodes (with zero in-edge weight), so the
/// result is the full multiplexor tree of classical state preparation.
DDEdge DecisionDiagram::buildDenseTree(std::size_t site, const Complex* amps,
                                       std::uint64_t count) {
    if (site == radix_.numQudits()) {
        ensureThat(count == 1, "DecisionDiagram::buildDenseTree: bad leaf block");
        return DDEdge{/*terminal=*/0, amps[0]};
    }
    const Dimension dim = radix_.dimensionAt(site);
    const std::uint64_t part = count / dim;
    std::vector<DDEdge> edges(dim);
    double sumSquares = 0.0;
    for (Dimension k = 0; k < dim; ++k) {
        edges[k] = buildDenseTree(site + 1, amps + static_cast<std::uint64_t>(k) * part,
                                  part);
        sumSquares += squaredMagnitude(edges[k].weight);
    }
    const double norm = std::sqrt(sumSquares);
    if (norm > 0.0) {
        for (auto& edge : edges) {
            edge.weight /= norm;
        }
    }
    const NodeRef ref = allocate(static_cast<std::uint32_t>(site), std::move(edges));
    return DDEdge{ref, Complex{norm, 0.0}};
}

DecisionDiagram DecisionDiagram::fromStateVectorDense(const StateVector& state) {
    DecisionDiagram dd;
    dd.radix_ = state.radix();
    dd.nodes_.push_back(DDNode{DDNode::kTerminalSite, {}});
    const DDEdge rootEdge = dd.buildDenseTree(0, state.amplitudes().data(), state.size());
    dd.root_ = rootEdge.node;
    dd.rootWeight_ = rootEdge.weight;
    return dd;
}

} // namespace mqsp
